package parallel

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewMeshValidation(t *testing.T) {
	cases := []struct {
		p, g, npp int
		ok        bool
	}{
		{48, 8, 1, true},
		{48, 8, 2, true},
		{48, 8, 3, true},
		{48, 8, 4, false}, // 6 nodes not divisible by 4 stages
		{32, 4, 1, true},
		{32, 4, 2, true},
		{31, 4, 1, false}, // not divisible into nodes
		{0, 4, 1, false},
		{16, 4, 0, false},
	}
	for _, c := range cases {
		_, err := NewMesh(c.p, c.g, c.npp)
		if (err == nil) != c.ok {
			t.Errorf("NewMesh(%d,%d,%d): err=%v, want ok=%v", c.p, c.g, c.npp, err, c.ok)
		}
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		configs := [][3]int{{48, 8, 1}, {48, 8, 2}, {32, 4, 1}, {32, 4, 2}, {16, 8, 1}}
		cfg := configs[r.Intn(len(configs))]
		m, err := NewMesh(cfg[0], cfg[1], cfg[2])
		if err != nil {
			return false
		}
		rank := r.Intn(m.P)
		c, err := m.Coord(rank)
		if err != nil {
			return false
		}
		back, err := m.Rank(c)
		return err == nil && back == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordBounds(t *testing.T) {
	m, _ := NewMesh(32, 4, 1)
	if _, err := m.Coord(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := m.Coord(32); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := m.Rank(Coord{Stage: 1}); err == nil {
		t.Error("coordinate beyond stages accepted")
	}
}

func TestGroupProperties(t *testing.T) {
	// For each kind: groups partition the ranks, every member's group is
	// identical, and the size matches the paper's formulas.
	for _, cfg := range [][3]int{{48, 8, 1}, {48, 8, 2}, {32, 4, 2}} {
		m, err := NewMesh(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatal(err)
		}
		sizes := map[GroupKind]int{
			GroupMP: m.GPUsPerNode, GroupESP: m.GPUsPerNode,
			GroupEP: m.NodesPer, GroupDP: m.NodesPer,
			GroupPP: m.NPP,
		}
		for kind, wantSize := range sizes {
			seen := map[int]bool{}
			for rank := 0; rank < m.P; rank++ {
				grp, err := m.Group(kind, rank)
				if err != nil {
					t.Fatal(err)
				}
				if len(grp) != wantSize {
					t.Fatalf("%v group of rank %d has %d members, want %d (cfg %v)", kind, rank, len(grp), wantSize, cfg)
				}
				found := false
				for _, g := range grp {
					if g == rank {
						found = true
					}
					// Group must be consistent: every member maps to the
					// same group.
					grp2, err := m.Group(kind, g)
					if err != nil {
						t.Fatal(err)
					}
					for i := range grp {
						if grp[i] != grp2[i] {
							t.Fatalf("%v group not consistent between %d and %d", kind, rank, g)
						}
					}
				}
				if !found {
					t.Fatalf("%v group of rank %d does not contain it", kind, rank)
				}
				seen[rank] = true
			}
			if len(seen) != m.P {
				t.Fatalf("%v groups do not cover all ranks", kind)
			}
		}
	}
}

func TestIntraInterClassification(t *testing.T) {
	// The premise of §4: MP/ESP groups are intra-node; EP/DP are not
	// (unless the stage has a single node).
	m, _ := NewMesh(48, 8, 1)
	for rank := 0; rank < m.P; rank += 7 {
		mp, _ := m.Group(GroupMP, rank)
		if !m.IntraNode(mp) {
			t.Fatalf("MP group of %d is not intra-node", rank)
		}
		esp, _ := m.Group(GroupESP, rank)
		if !m.IntraNode(esp) {
			t.Fatalf("ESP group of %d is not intra-node", rank)
		}
		ep, _ := m.Group(GroupEP, rank)
		if m.IntraNode(ep) {
			t.Fatalf("EP group of %d should span nodes", rank)
		}
	}
}

func TestMPAndESPAreTheSameGPUs(t *testing.T) {
	m, _ := NewMesh(32, 4, 1)
	for rank := 0; rank < m.P; rank++ {
		mp, _ := m.Group(GroupMP, rank)
		esp, _ := m.Group(GroupESP, rank)
		for i := range mp {
			if mp[i] != esp[i] {
				t.Fatalf("MP and ESP groups differ at rank %d", rank)
			}
		}
	}
}

func TestPPGroupsWithTwoStages(t *testing.T) {
	m, _ := NewMesh(48, 8, 2)
	pp, err := m.Group(GroupPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp) != 2 {
		t.Fatalf("PP group size %d, want 2", len(pp))
	}
	// The stage peer of rank 0 is the same (node, local) in stage 1:
	// stage size = 3 nodes × 8 = 24.
	if pp[1] != 24 {
		t.Fatalf("PP peer of rank 0 = %d, want 24", pp[1])
	}
}

func TestExpertOwnerRoundRobin(t *testing.T) {
	m, _ := NewMesh(48, 8, 1) // 6 nodes
	for e := 0; e < 12; e++ {
		if m.ExpertOwner(e) != e%6 {
			t.Fatalf("expert %d owner %d", e, m.ExpertOwner(e))
		}
	}
}

func TestUnknownGroupKind(t *testing.T) {
	m, _ := NewMesh(8, 4, 1)
	if _, err := m.Group("bogus", 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestDerivedSizes(t *testing.T) {
	m, _ := NewMesh(48, 8, 2)
	if m.NEP() != 3 || m.NDP() != 3 || m.NESP() != 8 {
		t.Fatalf("derived sizes: NEP=%d NDP=%d NESP=%d", m.NEP(), m.NDP(), m.NESP())
	}
}

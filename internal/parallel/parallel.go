// Package parallel constructs the hybrid-parallel device mesh of §2.2:
// DP + MP + EP + ESP (+ PP), mapping global ranks to coordinates and
// deriving the communicator groups each collective runs over.
//
// The paper's canonical scenario (§4) fixes the layout: the MP group and
// the ESP group are the same set of GPUs — one full node — while EP and DP
// share the node dimension (experts are spread across nodes; each node is
// simultaneously one DP replica of the expert shards it hosts, as in
// Fig. 2 where EP groups run across the DP direction). Pipeline stages, if
// any, split the node dimension first.
//
// Mesh coordinates are (stage, node, local):
//
//	MP group  = ESP group = all locals of one (stage, node)   — intra-node
//	EP group  = DP group  = all nodes of one (stage, local)   — inter-node
//	PP group  = all stages of one (node, local)
//
// This package models the *inter-device* mesh only. Intra-process compute
// parallelism — the worker pool that shards experts, attention heads and
// GEMM rows across cores on the real tensor path — lives in
// internal/tensor (ParallelFor/ParallelRange).
package parallel

import "fmt"

// Mesh is a validated device mesh.
type Mesh struct {
	P           int // total GPUs
	GPUsPerNode int
	NPP         int // pipeline stages
	NodesPer    int // nodes per stage (= N_EP = N_DP)
	NMP         int // = N_ESP = GPUsPerNode in the canonical scenario
}

// Coord locates a rank on the mesh.
type Coord struct {
	Stage int // pipeline stage
	Node  int // node within the stage
	Local int // GPU within the node
}

// NewMesh validates and builds a mesh for p GPUs grouped g per node with
// npp pipeline stages. The MP/ESP group size is g, matching §4's scenario;
// use NewMeshExplicit for other layouts.
func NewMesh(p, g, npp int) (*Mesh, error) {
	return NewMeshExplicit(p, g, g, npp)
}

// NewMeshExplicit builds a mesh with an MP/ESP group size of nmp, which
// must divide the node size for the intra-node property the scheduler
// depends on to hold.
func NewMeshExplicit(p, g, nmp, npp int) (*Mesh, error) {
	if p <= 0 || g <= 0 || npp <= 0 {
		return nil, fmt.Errorf("parallel: sizes must be positive (P=%d g=%d NPP=%d)", p, g, npp)
	}
	if p%g != 0 {
		return nil, fmt.Errorf("parallel: %d GPUs not divisible into nodes of %d", p, g)
	}
	if nmp != g {
		return nil, fmt.Errorf("parallel: this mesh models the §4 scenario N_MP=N_ESP=%d GPUs/node, got N_MP=%d", g, nmp)
	}
	nodes := p / g
	if nodes%npp != 0 {
		return nil, fmt.Errorf("parallel: %d nodes not divisible into %d pipeline stages", nodes, npp)
	}
	return &Mesh{P: p, GPUsPerNode: g, NPP: npp, NodesPer: nodes / npp, NMP: nmp}, nil
}

// NEP returns the expert-parallel group size (nodes per stage).
func (m *Mesh) NEP() int { return m.NodesPer }

// NDP returns the data-parallel group size (nodes per stage).
func (m *Mesh) NDP() int { return m.NodesPer }

// NESP returns the expert-sharding group size.
func (m *Mesh) NESP() int { return m.NMP }

// Coord maps a global rank to its mesh coordinate. Ranks are laid out
// stage-major, then node, then local — consecutive ranks share a node.
func (m *Mesh) Coord(rank int) (Coord, error) {
	if rank < 0 || rank >= m.P {
		return Coord{}, fmt.Errorf("parallel: rank %d out of %d", rank, m.P)
	}
	perStage := m.NodesPer * m.GPUsPerNode
	return Coord{
		Stage: rank / perStage,
		Node:  (rank % perStage) / m.GPUsPerNode,
		Local: rank % m.GPUsPerNode,
	}, nil
}

// Rank maps a coordinate back to the global rank.
func (m *Mesh) Rank(c Coord) (int, error) {
	if c.Stage < 0 || c.Stage >= m.NPP || c.Node < 0 || c.Node >= m.NodesPer || c.Local < 0 || c.Local >= m.GPUsPerNode {
		return 0, fmt.Errorf("parallel: coordinate %+v outside mesh", c)
	}
	return (c.Stage*m.NodesPer+c.Node)*m.GPUsPerNode + c.Local, nil
}

// GroupKind names a communicator group.
type GroupKind string

const (
	GroupMP  GroupKind = "mp"  // model parallel (intra-node)
	GroupESP GroupKind = "esp" // expert sharding (intra-node; same GPUs as MP)
	GroupEP  GroupKind = "ep"  // expert parallel (inter-node)
	GroupDP  GroupKind = "dp"  // data parallel (inter-node; same GPUs as EP)
	GroupPP  GroupKind = "pp"  // pipeline stages
)

// Group returns the ranks of the given group containing rank, in ascending
// order.
func (m *Mesh) Group(kind GroupKind, rank int) ([]int, error) {
	c, err := m.Coord(rank)
	if err != nil {
		return nil, err
	}
	var out []int
	switch kind {
	case GroupMP, GroupESP:
		for l := 0; l < m.GPUsPerNode; l++ {
			r, _ := m.Rank(Coord{Stage: c.Stage, Node: c.Node, Local: l})
			out = append(out, r)
		}
	case GroupEP, GroupDP:
		for n := 0; n < m.NodesPer; n++ {
			r, _ := m.Rank(Coord{Stage: c.Stage, Node: n, Local: c.Local})
			out = append(out, r)
		}
	case GroupPP:
		for s := 0; s < m.NPP; s++ {
			r, _ := m.Rank(Coord{Stage: s, Node: c.Node, Local: c.Local})
			out = append(out, r)
		}
	default:
		return nil, fmt.Errorf("parallel: unknown group kind %q", kind)
	}
	return out, nil
}

// IntraNode reports whether every pair of ranks in group shares a node.
func (m *Mesh) IntraNode(group []int) bool {
	if len(group) == 0 {
		return true
	}
	first, err := m.Coord(group[0])
	if err != nil {
		return false
	}
	for _, r := range group[1:] {
		c, err := m.Coord(r)
		if err != nil {
			return false
		}
		if c.Stage != first.Stage || c.Node != first.Node {
			return false
		}
	}
	return true
}

// ExpertOwner returns the (stage-relative) node hosting expert e when
// experts are distributed round-robin over the EP group, the standard EP
// placement (§2.2).
func (m *Mesh) ExpertOwner(e int) int {
	if m.NodesPer == 0 {
		return 0
	}
	return e % m.NodesPer
}

package lint

// Golden-fixture driver: each package under testdata/src/ carries
// `// want `regexp`` comments naming the diagnostic its line must
// produce. The driver loads the fixture through the real loader, runs one
// analyzer through the real Run pipeline (so the allowlist applies
// exactly as in production), and requires a one-to-one match between
// produced and expected diagnostics.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backquoted pattern of a want comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	for _, te := range p.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", name, te)
	}
	if t.Failed() {
		t.FailNow()
	}
	return p
}

// expectationsOf scans the fixture's comments for want patterns.
func expectationsOf(t *testing.T, p *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for i, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", p.Filenames[i], m[1], err)
				}
				out = append(out, &expectation{
					file: p.Filenames[i],
					line: p.Fset.Position(c.Pos()).Line,
					re:   re,
				})
			}
		}
	}
	if len(out) == 0 {
		t.Fatalf("fixture %s has no want expectations", p.Path)
	}
	return out
}

func checkFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	p := loadFixture(t, name)
	wants := expectationsOf(t, p)
	diags := Run([]*Package{p}, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.re)
		}
	}
}

func TestPoolCheckFixture(t *testing.T) { checkFixture(t, "poolbad", PoolCheck) }
func TestKindCheckFixture(t *testing.T) { checkFixture(t, "kindbad", KindCheck) }

func TestGuardCheckFixture(t *testing.T) {
	// The fixture stands in for a plan-builder package: widen the
	// analyzer's scope to include it for the duration of the test.
	old := guardScopes
	guardScopes = append(append([]string(nil), old...),
		"repro/internal/lint/testdata/src/guardbad")
	defer func() { guardScopes = old }()
	checkFixture(t, "guardbad", GuardCheck)
}

// TestRepoIsLintClean is the self-test the CI gate mirrors: the whole
// module must load, type-check and produce zero findings under the full
// analyzer suite.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var typeErrs []string
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			typeErrs = append(typeErrs, fmt.Sprintf("%s: %v", p.Path, te))
		}
	}
	if len(typeErrs) > 0 {
		t.Fatalf("type errors:\n%s", strings.Join(typeErrs, "\n"))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

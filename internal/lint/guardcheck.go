package lint

// guardcheck: guarded-comm discipline. PR 6's in-collective fault
// injection reaches a collective only through the comm.*Guarded entry
// points (the guard runs before the first byte moves, so a transient
// failure retries bit-safely). A strategy plan-builder that calls the
// unguarded twin compiles and passes every bit-identity test — and
// silently opts its collective out of chaos coverage. Inside the
// plan-builder packages, any direct call to a comm function F for which
// comm declares FGuarded is therefore a diagnostic.
//
// Deliberate exceptions (e.g. a sequential-baseline tail that receives its
// fault injection at the task level instead) carry an explicit
//
//	//fsmoe:allow guardcheck <reason>
//
// comment; there is no implicit allowlist.

import (
	"fmt"
	"go/ast"
	"strings"
)

// commPkgPath is the collective library whose Guarded twins the rule keys
// on.
const commPkgPath = "repro/internal/comm"

// guardScopes lists the packages whose plan-building code must call
// guarded collectives: the strategy builders in internal/moe and the
// AllReduce-slice emission in internal/gradsync. (Tests may widen this
// for fixtures.)
var guardScopes = []string{
	"repro/internal/moe",
	"repro/internal/gradsync",
}

// GuardCheck is the guarded-collective analyzer.
var GuardCheck = &Analyzer{
	Name: "guardcheck",
	Doc:  "flag unguarded comm collectives (where a *Guarded variant exists) in strategy plan-builders",
	Run:  runGuardCheck,
}

func inGuardScope(path string) bool {
	for _, s := range guardScopes {
		if path == s {
			return true
		}
	}
	return false
}

func runGuardCheck(p *Package) []Diagnostic {
	if !inGuardScope(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgSelector(p.Info, call, commPkgPath)
			if !ok || strings.HasSuffix(name, "Guarded") {
				return true
			}
			obj := p.Info.Uses[call.Fun.(*ast.SelectorExpr).Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Scope().Lookup(name+"Guarded") == nil {
				return true // no guarded twin; plain helper
			}
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "guardcheck",
				Message: fmt.Sprintf("unguarded collective comm.%s: call comm.%sGuarded so in-collective fault injection reaches it (or annotate //fsmoe:allow guardcheck <reason>)",
					name, name),
			})
			return true
		})
	}
	return out
}

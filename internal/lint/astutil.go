package lint

// Small AST/type helpers shared by the analyzers. Everything here is
// best-effort on partial type information: when the type-checker could not
// resolve a name, the helpers return false and the analyzers stay silent
// rather than guessing (a lint gate must not produce false positives on
// code that compiles).

import (
	"go/ast"
	"go/types"
)

// walkStack traverses the AST in source order, calling fn with each node
// and the stack of its ancestors (outermost first, not including n). If fn
// returns false, n's children are skipped.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, but Inspect still sends the nil pop for
			// n only if we return true; keep the stack consistent by not
			// pushing skipped nodes.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgPath.name, resolving the selector through the type info (so renamed
// imports are handled and same-named local identifiers are not).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// pkgSelector resolves a call of the form pkg.Name where pkg is an import
// of pkgPath, returning the selected name.
func pkgSelector(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodCallOn reports whether call is a method invocation named one of
// names on a receiver whose (possibly pointered) named type lives in
// pkgPath with type name typeName.
func methodCallOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// objectOf returns the object an identifier denotes (definition or use).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// usesObject reports whether any identifier inside n denotes obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

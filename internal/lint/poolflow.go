package lint

// Flow helpers for poolcheck: classifying every use of a tracked pooled
// tensor inside its function body, and walking the statement path from
// the Get to each return to decide whether the buffer was consumed (Put
// or handed off) before control leaves.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// useKind classifies one identifier occurrence of a tracked variable.
type useKind int

const (
	useNone   useKind = iota // non-consuming read (method receiver, comparison, index)
	usePut                   // argument of tensor.Put / fsmoe.PutTensor
	useEscape                // ownership hand-off: call arg, return, store, capture, &, send
)

// useSummary aggregates a variable's uses across the unit.
type useSummary struct {
	put         bool
	escape      bool
	deferredPut bool // a defer runs Put (directly or via a captured closure)
}

// classifyUses walks the whole unit (including nested function literals —
// a capture is an escape) and classifies every occurrence of obj after
// the Get position.
func classifyUses(p *Package, body *ast.BlockStmt, obj types.Object, getPos token.Pos) useSummary {
	var sum useSummary
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= getPos || objectOf(p.Info, id) != obj {
			return true
		}
		switch classifyIdentUse(p, id, stack) {
		case usePut:
			sum.put = true
			if underDefer(stack) {
				sum.deferredPut = true
			}
		case useEscape:
			sum.escape = true
			if capturedInDeferredClosure(p, id, stack, obj) {
				sum.deferredPut = true
			}
		}
		return true
	})
	return sum
}

// classifyIdentUse decides what one occurrence of the variable does with
// the buffer. The default for unrecognized contexts is useEscape: poolcheck
// must not report a leak for a use form it does not understand.
func classifyIdentUse(p *Package, id *ast.Ident, stack []ast.Node) useKind {
	// A capture inside a nested function literal transfers ownership to
	// the closure.
	for _, a := range stack {
		if _, ok := a.(*ast.FuncLit); ok {
			return useEscape
		}
	}
	parent := parentSkippingParens(stack)
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		if pn.X == ast.Expr(id) {
			return useNone // t.Data(), t.Shape() — a read, not a hand-off
		}
		return useEscape
	case *ast.BinaryExpr, *ast.CaseClause, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt:
		return useNone // comparisons and conditions
	case *ast.IndexExpr:
		return useNone
	case *ast.CallExpr:
		for _, arg := range pn.Args {
			if ast.Unparen(arg) == ast.Expr(id) {
				if isPutCall(p, pn) {
					return usePut
				}
				return useEscape
			}
		}
		return useNone // the callee position (impossible for a tensor) or type conversion base
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if ast.Unparen(l) == ast.Expr(id) {
				return useNone // reassignment of the variable itself
			}
		}
		return useEscape // appears in an RHS: the value is stored somewhere
	default:
		return useEscape
	}
}

// underDefer reports whether the innermost enclosing call of the stack is
// the direct call of a DeferStmt (defer tensor.Put(t)).
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			return false // inside a closure body, not the deferred call itself
		}
	}
	return false
}

// capturedInDeferredClosure reports the `defer func() { ... tensor.Put(t)
// ... }()` pattern: the identifier sits inside a function literal that is
// the deferred call, and the closure body Puts the object.
func capturedInDeferredClosure(p *Package, id *ast.Ident, stack []ast.Node, obj types.Object) bool {
	var lit *ast.FuncLit
	deferred := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch t := stack[i].(type) {
		case *ast.FuncLit:
			lit = t
		case *ast.DeferStmt:
			deferred = lit != nil && ast.Unparen(t.Call.Fun) == ast.Expr(lit)
		}
	}
	if !deferred || lit == nil {
		return false
	}
	// The closure must actually Put the object (any occurrence as a Put
	// argument suffices; the closure may do so through a loop variable, in
	// which case the capture was an append-style escape handled elsewhere).
	puts := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPutCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && objectOf(p.Info, aid) == obj {
				puts = true
			}
		}
		return true
	})
	return puts
}

// viewAssigned reports whether the variable id denotes was (anywhere in
// the unit) assigned the result of a view call — making a later Put of it
// a static error.
func viewAssigned(p *Package, body *ast.BlockStmt, id *ast.Ident) (string, bool) {
	obj := objectOf(p.Info, id)
	if obj == nil {
		return "", false
	}
	method := ""
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) != len(t.Rhs) {
				return true
			}
			for i, l := range t.Lhs {
				lid, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || objectOf(p.Info, lid) != obj {
					continue
				}
				if m, ok := isViewCall(p, t.Rhs[i]); ok {
					method = m
				}
			}
		case *ast.ValueSpec:
			for i, name := range t.Names {
				if objectOf(p.Info, name) != obj || i >= len(t.Values) {
					continue
				}
				if m, ok := isViewCall(p, t.Values[i]); ok {
					method = m
				}
			}
		}
		return true
	})
	return method, method != ""
}

// returnsAfter collects the unit's own return statements (not those of
// nested function literals) located after pos.
func returnsAfter(body *ast.BlockStmt, pos token.Pos) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > pos {
			out = append(out, ret)
		}
		return true
	})
	return out
}

// stmtConsumes reports whether any use of obj inside n (including nested
// closures and conditional branches — optimistically) is a Put or an
// escape. Optimism here trades false negatives for zero false positives:
// a conditionally-consuming statement exonerates later returns.
func stmtConsumes(p *Package, n ast.Node, obj types.Object) bool {
	consumed := false
	walkStack(n, func(c ast.Node, stack []ast.Node) bool {
		if consumed {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok || objectOf(p.Info, id) != obj {
			return true
		}
		if k := classifyIdentUse(p, id, stack); k == usePut || k == useEscape {
			consumed = true
		}
		return true
	})
	return consumed
}

// containsNode reports whether outer's source range covers inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// pathConsumes walks the statement path from the top of the unit to the
// target return and reports whether obj is consumed before control
// reaches it.
func pathConsumes(p *Package, body *ast.BlockStmt, target *ast.ReturnStmt, obj types.Object) bool {
	consumed, _ := walkPath(p, body.List, target, obj, false)
	return consumed
}

// walkPath scans stmts in order: statements wholly before the one
// containing target contribute their (possibly conditional) consumption;
// the containing statement is descended into. Returns (consumed, found).
func walkPath(p *Package, stmts []ast.Stmt, target *ast.ReturnStmt, obj types.Object, consumed bool) (bool, bool) {
	for _, s := range stmts {
		if !containsNode(s, target) {
			if !consumed && stmtConsumes(p, s, obj) {
				consumed = true
			}
			continue
		}
		if s == ast.Stmt(target) {
			return consumed, true
		}
		return descendPath(p, s, target, obj, consumed)
	}
	return consumed, false
}

// descendPath recurses into the compound statement containing target.
func descendPath(p *Package, s ast.Stmt, target *ast.ReturnStmt, obj types.Object, consumed bool) (bool, bool) {
	switch t := s.(type) {
	case *ast.BlockStmt:
		return walkPath(p, t.List, target, obj, consumed)
	case *ast.LabeledStmt:
		return descendPath(p, t.Stmt, target, obj, consumed)
	case *ast.IfStmt:
		if t.Init != nil && !consumed && stmtConsumes(p, t.Init, obj) {
			consumed = true
		}
		if containsNode(t.Body, target) {
			return walkPath(p, t.Body.List, target, obj, consumed)
		}
		if t.Else != nil && containsNode(t.Else, target) {
			return descendPath(p, t.Else, target, obj, consumed)
		}
	case *ast.ForStmt:
		if t.Init != nil && !consumed && stmtConsumes(p, t.Init, obj) {
			consumed = true
		}
		if containsNode(t.Body, target) {
			return walkPath(p, t.Body.List, target, obj, consumed)
		}
	case *ast.RangeStmt:
		if containsNode(t.Body, target) {
			return walkPath(p, t.Body.List, target, obj, consumed)
		}
	case *ast.SwitchStmt:
		return descendCases(p, t.Body, target, obj, consumed)
	case *ast.TypeSwitchStmt:
		return descendCases(p, t.Body, target, obj, consumed)
	case *ast.SelectStmt:
		return descendCases(p, t.Body, target, obj, consumed)
	}
	// Unknown containing statement: be safe and treat the path as
	// consuming (never report through structure we do not model).
	return true, true
}

// descendCases finds the case/comm clause containing target.
func descendCases(p *Package, body *ast.BlockStmt, target *ast.ReturnStmt, obj types.Object, consumed bool) (bool, bool) {
	for _, cs := range body.List {
		if !containsNode(cs, target) {
			continue
		}
		switch t := cs.(type) {
		case *ast.CaseClause:
			return walkPath(p, t.Body, target, obj, consumed)
		case *ast.CommClause:
			return walkPath(p, t.Body, target, obj, consumed)
		}
	}
	return true, true // not found in any clause: stay silent
}

package lint

// The loader is a minimal, module-aware replacement for
// golang.org/x/tools/go/packages, built on the stdlib alone. It discovers
// the module root (go.mod), maps module-internal import paths to
// directories, parses each package's non-test files and type-checks them
// with go/types. Module-internal imports are resolved recursively through
// the loader itself; everything else (the standard library) goes through
// the "source" compiler importer, which type-checks GOROOT sources and
// therefore works offline. Test files (_test.go) are not analyzed: the
// rules protect production aggregation and execution paths, and fixtures
// legitimately assert on raw literals.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files, sorted by file name
	Filenames []string    // absolute names parallel to Files
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-checker complaints. The analyzers run
	// best-effort on partial type information, but callers gating a build
	// should treat these as fatal.
	TypeErrors []error
}

// Loader loads and caches the module's packages.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader locates the enclosing module of dir (walking up to the go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load expands the patterns ("./...", "./internal/...", or plain package
// directories, all relative to the module root or absolute) and loads each
// matched package. Directories without non-test Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.ModRoot
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, dir := range dirs {
		hasGo, err := dirHasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && analyzableFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func analyzableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// LoadDir loads the package in one directory, type-checking it (and,
// transitively, its module-internal imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && analyzableFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	p := &Package{Path: path, Dir: abs, Fset: l.Fset}
	for _, name := range names {
		full := filepath.Join(abs, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
		p.Filenames = append(p.Filenames, full)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(path, l.Fset, p.Files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module-internal paths load through the
// loader, everything else through the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s: %w", path, p.TypeErrors[0])
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Package lint is fsmoe's project-specific static-analysis suite: the
// compile-time enforcement of the conventions the runtime can only catch
// late (or not at all). It is dependency-free by design — stdlib go/ast,
// go/parser and go/types only, no golang.org/x/tools — so it builds and
// runs offline, and cmd/fsmoe-lint can gate CI without network access.
//
// Three analyzers ship today:
//
//   - poolcheck: pooled-tensor ownership. Every tensor.Get/GetUninit
//     result must reach a tensor.Put or escape (return, field/element
//     store, call argument, closure capture) within its function, with no
//     early return that abandons a still-owned buffer; and tensor.Put of
//     a View/Slice/Reshape result is a static error — the compile-time
//     twin of the runtime tensor.SetPoolDebug guard.
//
//   - kindcheck: task-kind/event vocabulary. String literals equal to a
//     canonical sim.Kind*/sim.Event* value are forbidden everywhere
//     except internal/sim/vocab.go, where the vocabulary is declared.
//     A raw "AlltoAll" compiles fine and silently mis-aggregates every
//     breakdown keyed on the canonical constants; the analyzer turns it
//     into a build-time diagnostic.
//
//   - guardcheck: guarded-comm discipline. Inside the strategy
//     plan-builder packages, a direct call to an unguarded collective
//     (comm.F) for which a comm.FGuarded variant exists bypasses
//     in-collective fault injection; the analyzer flags it.
//
// Findings can be suppressed with an explicit allowlist comment on the
// offending line or the line directly above it:
//
//	//fsmoe:allow guardcheck sequential tail; injection arrives at task level
//
// The comment names one or more analyzers (comma-separated) and should
// state a reason. Allowlisting is deliberate and visible in review — the
// analyzers have no silent exceptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named rule over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PoolCheck, KindCheck, GuardCheck}
}

// allowPrefix introduces an allowlist comment.
const allowPrefix = "//fsmoe:allow "

// allowedLines maps source line numbers to the analyzer names allowed on
// them for one file. A comment allows its own line and the line directly
// below it (comment-above-statement style).
func allowedLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	var out map[int]map[string]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			// First field is the analyzer list; anything after is the reason.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			if out == nil {
				out = make(map[int]map[string]bool)
			}
			line := fset.Position(c.Pos()).Line
			for _, name := range strings.Split(fields[0], ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				for _, l := range [2]int{line, line + 1} {
					if out[l] == nil {
						out[l] = make(map[string]bool)
					}
					out[l][name] = true
				}
			}
		}
	}
	return out
}

// Run applies the analyzers to every package and returns the surviving
// (non-allowlisted) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		// Allow tables are per file, keyed by the file name the positions
		// report.
		allow := make(map[string]map[int]map[string]bool)
		for i, f := range p.Files {
			allow[p.Filenames[i]] = allowedLines(p.Fset, f)
		}
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if lines := allow[d.Pos.Filename]; lines != nil {
					if names := lines[d.Pos.Line]; names != nil && names[a.Name] {
						continue
					}
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

package lint

// kindcheck: the canonical task-kind/event vocabulary (internal/sim's
// Kind* and Event* constants, declared in internal/sim/vocab.go) must be
// referenced through the constants, never re-typed as raw string literals.
// A raw "AlltoAll" compiles, runs, and silently fails to aggregate with
// the canonical kind the moment anyone renames or extends the vocabulary;
// keyed breakdowns, fault filters and retry allowlists all depend on exact
// string equality. The only file allowed to spell the literals is the
// vocabulary declaration itself.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"

	"repro/internal/sim"
)

// vocabConst maps each canonical string to the constant expression that
// should be used instead. Built from the sim package itself, so the
// analyzer can never drift from the vocabulary it enforces.
var vocabConst = map[string]string{
	sim.KindAlltoAll:      "sim.KindAlltoAll",
	sim.KindAllGather:     "sim.KindAllGather",
	sim.KindReduceScatter: "sim.KindReduceScatter",
	sim.KindAllReduce:     "sim.KindAllReduce",
	sim.KindExperts:       "sim.KindExperts",
	sim.KindPack:          "sim.KindPack",
	sim.KindOthers:        "sim.KindOthers",
	sim.EventFault:        "sim.EventFault",
	sim.EventRetry:        "sim.EventRetry",
	sim.EventStraggler:    "sim.EventStraggler",
	sim.EventSkip:         "sim.EventSkip",
}

// simPkgPath is the package whose vocab.go declares the canonical strings.
const simPkgPath = "repro/internal/sim"

// KindCheck is the vocabulary analyzer.
var KindCheck = &Analyzer{
	Name: "kindcheck",
	Doc:  "forbid raw task-kind/event string literals outside internal/sim/vocab.go",
	Run:  runKindCheck,
}

func runKindCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	for i, f := range p.Files {
		if p.Path == simPkgPath && filepath.Base(p.Filenames[i]) == "vocab.go" {
			continue // the declaration site
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			c, hit := vocabConst[s]
			if !hit {
				return true
			}
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(lit.Pos()),
				Analyzer: "kindcheck",
				Message: fmt.Sprintf("raw vocabulary literal %q: use the canonical constant %s (internal/sim/vocab.go)",
					s, c),
			})
			return true
		})
	}
	return out
}

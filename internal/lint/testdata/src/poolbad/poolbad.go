// Package poolbad is a poolcheck golden fixture: each `want` comment names
// the diagnostic the analyzer must produce on that line, and the clean
// functions at the bottom must produce none.
package poolbad

import "repro/internal/tensor"

// leak never Puts and never hands the buffer off.
func leak(n int) float64 {
	t := tensor.Get(n) // want `pooled tensor "t" is never Put and never escapes`
	return t.Data()[0]
}

// discard drops the Get result on the floor.
func discard(n int) {
	tensor.Get(n) // want `pooled tensor discarded`
}

// blank assigns the Get result to the blank identifier.
func blank(n int) {
	_ = tensor.GetUninit(n) // want `pooled tensor assigned to _`
}

// earlyReturn abandons a still-owned buffer on the error path.
func earlyReturn(n int, bad bool) int {
	t := tensor.GetUninit(n)
	if bad {
		return -1 // want `return leaks pooled tensor "t"`
	}
	tensor.Put(t)
	return n
}

// putDirectView feeds Put an aliasing view directly.
func putDirectView(n int) {
	t := tensor.Get(2 * n)
	tensor.Put(t.Slice(0, n)) // want `Put of a Slice result`
	tensor.Put(t)
}

// putViewVar feeds Put a variable holding a view.
func putViewVar(n int) {
	t := tensor.Get(2 * n)
	v := t.View(0, n)
	v.Data()[0] = 1
	tensor.Put(v) // want `Put of "v", which holds a View view`
	tensor.Put(t)
}

// allowed carries an explicit allowlist comment and must stay silent.
func allowed(n int) float64 {
	//fsmoe:allow poolcheck fixture: ownership parked in a global elsewhere
	t := tensor.Get(n)
	return t.Data()[0]
}

// --- clean patterns the analyzer must not flag ---

// cleanDefer uses the deferred-Put idiom across an early return.
func cleanDefer(n int, bad bool) int {
	t := tensor.Get(n)
	defer tensor.Put(t)
	if bad {
		return -1
	}
	return n
}

// cleanDeferClosure Puts through a deferred closure.
func cleanDeferClosure(n int, bad bool) int {
	t := tensor.Get(n)
	defer func() { tensor.Put(t) }()
	if bad {
		return -1
	}
	return n
}

// cleanReturn hands ownership to the caller.
func cleanReturn(n int) *tensor.Tensor {
	return tensor.Get(n)
}

// cleanStaged appends staging buffers to a slice reclaimed by a deferred
// closure — the comm gather/scatter idiom.
func cleanStaged(n, k int) {
	var staged []*tensor.Tensor
	defer func() {
		for _, t := range staged {
			tensor.Put(t)
		}
	}()
	for i := 0; i < k; i++ {
		t := tensor.GetUninit(n)
		staged = append(staged, t)
	}
}

// cleanStore parks the buffer in a longer-lived structure.
type holder struct{ t *tensor.Tensor }

func cleanStore(h *holder, n int) {
	h.t = tensor.GetUninit(n)
}

// cleanConditional Puts on one branch and escapes on the other before
// returning.
func cleanConditional(n int, keep bool) *tensor.Tensor {
	t := tensor.Get(n)
	if keep {
		return t
	}
	tensor.Put(t)
	return nil
}

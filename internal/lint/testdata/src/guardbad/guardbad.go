// Package guardbad is a guardcheck golden fixture. The test widens the
// analyzer's scope to include this package, standing in for a strategy
// plan-builder: unguarded collectives with Guarded twins are findings,
// guarded calls and twin-less helpers are not, and the allowlist works.
package guardbad

import "repro/internal/comm"

// planChunk builds one chunk's collectives the wrong way round.
func planChunk(g comm.Guard, data, out [][]float64, gpn int, dims comm.BlockDims, rr comm.RowRange) error {
	if _, err := comm.AlltoAllRows(comm.A2ADirect, data, out, gpn, dims, rr); err != nil { // want `unguarded collective comm.AlltoAllRows`
		return err
	}
	if _, err := comm.RingAllReduceChunk(data, gpn, rr); err != nil { // want `unguarded collective comm.RingAllReduceChunk`
		return err
	}
	// Broadcast gained a Guarded twin with elastic recovery's weight
	// re-placement; the plain entry point is now a finding too.
	if _, err := comm.Broadcast(data, 0, gpn); err != nil { // want `unguarded collective comm.Broadcast`
		return err
	}
	// The guarded twin is the sanctioned path — no finding.
	if _, err := comm.RingAllGatherIntoGuarded(g, out, data, gpn); err != nil {
		return err
	}
	// RingAllGather has no Guarded twin; plain helpers stay silent.
	if _, _, err := comm.RingAllGather(data, gpn); err != nil {
		return err
	}
	return nil
}

// sequentialTail is the sanctioned exception: task-level injection covers
// it, and the allowlist comment says so.
func sequentialTail(data [][]float64, gpn int, rr comm.RowRange) error {
	//fsmoe:allow guardcheck fixture: sequential tail, injection arrives at task level
	_, err := comm.RingAllReduceChunk(data, gpn, rr)
	return err
}

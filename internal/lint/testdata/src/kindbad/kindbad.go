// Package kindbad is a kindcheck golden fixture: raw task-kind and
// event-type literals must be flagged with a pointer at the canonical
// constant, and non-vocabulary strings must not.
package kindbad

// kinds maps raw vocabulary literals — every one a finding.
var kinds = map[string]int{
	"AlltoAll":      1, // want `raw vocabulary literal "AlltoAll"`
	"AllGather":     2, // want `raw vocabulary literal "AllGather"`
	"ReduceScatter": 3, // want `raw vocabulary literal "ReduceScatter"`
	"Experts":       4, // want `raw vocabulary literal "Experts"`
}

// events re-types the event vocabulary.
func events() []string {
	return []string{
		"fault", // want `raw vocabulary literal "fault"`
		"retry", // want `raw vocabulary literal "retry"`
	}
}

// allowed is explicitly allowlisted and must stay silent.
func allowed() string {
	//fsmoe:allow kindcheck fixture: documenting the wire value itself
	return "AllReduce"
}

// clean strings share words with the vocabulary without matching a
// canonical value exactly — no findings.
var clean = []string{"AlltoAll(2DH)", "alltoall", "GEMM", "Pack it up", ""}

package lint

// poolcheck: static ownership checking for the tensor buffer free-list.
// The contract (internal/tensor/pool.go): whoever calls Get/GetUninit owns
// the buffer and must either Put it exactly once or hand ownership on
// (return it, store it into a longer-lived structure, pass it to another
// function); and Put must never be fed a View/Slice/Reshape result,
// because a view aliases its parent's backing array. The runtime
// SetPoolDebug guard catches the view case, but only when the guard is on
// and the path actually executes; this analyzer is its compile-time twin.
//
// The analysis is per function body (each closure is its own unit —
// ownership that crosses a closure boundary does so through a capture or
// a store, which counts as an escape). It is deliberately conservative in
// what it *reports*: any call argument, return, store, capture or
// address-of counts as the buffer escaping to a new owner, so a
// diagnostic means no Put and no plausible ownership hand-off exists —
// or, for the path check, that an early return abandons a buffer the
// function demonstrably still owns. False negatives are accepted; a lint
// gate must not flag code that is merely clever.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const tensorPkgPath = "repro/internal/tensor"
const fsmoePkgPath = "repro/fsmoe"

// viewMethods are the *tensor.Tensor methods returning aliasing views.
// (Row returns a raw []float64, which Put cannot accept, so it is not
// listed.)
var viewMethods = []string{"View", "Slice", "Reshape"}

// PoolCheck is the pooled-tensor ownership analyzer.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled tensors must reach Put or escape on every path; Put of a view is an error",
	Run:  runPoolCheck,
}

func runPoolCheck(p *Package) []Diagnostic {
	if p.Path == tensorPkgPath {
		return nil // the pool's own implementation
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, unit := range unitsOf(f) {
			out = append(out, checkUnit(p, unit)...)
		}
	}
	return out
}

// unitsOf returns every function body in the file: declared functions and
// every function literal, each analyzed independently.
func unitsOf(f *ast.File) []*ast.BlockStmt {
	var units []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				units = append(units, fn.Body)
			}
		case *ast.FuncLit:
			units = append(units, fn.Body)
		}
		return true
	})
	return units
}

// isGetCall / isPutCall match the free-list entry points, including the
// public fsmoe re-exports.
func isGetCall(p *Package, call *ast.CallExpr) bool {
	if _, ok := pkgFuncCall(p.Info, call, tensorPkgPath, "Get", "GetUninit"); ok {
		return true
	}
	_, ok := pkgFuncCall(p.Info, call, fsmoePkgPath, "GetTensor")
	return ok
}

func isPutCall(p *Package, call *ast.CallExpr) bool {
	if _, ok := pkgFuncCall(p.Info, call, tensorPkgPath, "Put"); ok {
		return true
	}
	_, ok := pkgFuncCall(p.Info, call, fsmoePkgPath, "PutTensor")
	return ok
}

// isViewCall reports whether e is a direct View/Slice/Reshape method call
// on a tensor.
func isViewCall(p *Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return methodCallOn(p.Info, call, tensorPkgPath, "Tensor", viewMethods...)
}

// checkUnit analyzes one function body. Nested function literals are
// separate units: their Get calls are skipped here, and a tracked
// variable's appearance inside one counts as an escape.
func checkUnit(p *Package, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic

	type tracked struct {
		obj     types.Object
		name    string
		getPos  token.Pos
		getCall *ast.CallExpr
	}
	var vars []tracked

	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // separate unit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// Put-of-view: tensor.Put(x.View(...)) or Put of a var assigned
		// from a view call.
		if isPutCall(p, call) && len(call.Args) == 1 {
			arg := ast.Unparen(call.Args[0])
			if m, ok := isViewCall(p, arg); ok {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(call.Pos()),
					Analyzer: "poolcheck",
					Message:  fmt.Sprintf("Put of a %s result: views alias their parent's backing array and are never pool-owned (runtime twin: tensor.SetPoolDebug)", m),
				})
			} else if id, ok := arg.(*ast.Ident); ok {
				if m, ok := viewAssigned(p, body, id); ok {
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(call.Pos()),
						Analyzer: "poolcheck",
						Message:  fmt.Sprintf("Put of %q, which holds a %s view: views alias their parent's backing array and are never pool-owned", id.Name, m),
					})
				}
			}
			return true
		}

		if !isGetCall(p, call) {
			return true
		}

		// Classify the Get by its immediate syntactic context.
		parent := parentSkippingParens(stack)
		switch pn := parent.(type) {
		case *ast.ExprStmt:
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "poolcheck",
				Message:  "pooled tensor discarded: the Get result must be Put or handed to an owner",
			})
		case *ast.AssignStmt:
			if len(pn.Lhs) == len(pn.Rhs) {
				for i, rhs := range pn.Rhs {
					if ast.Unparen(rhs) != ast.Node(call) {
						continue
					}
					if id, ok := pn.Lhs[i].(*ast.Ident); ok {
						if id.Name == "_" {
							out = append(out, Diagnostic{
								Pos:      p.Fset.Position(call.Pos()),
								Analyzer: "poolcheck",
								Message:  "pooled tensor assigned to _: the Get result must be Put or handed to an owner",
							})
						} else if obj := objectOf(p.Info, id); obj != nil {
							vars = append(vars, tracked{obj: obj, name: id.Name, getPos: call.Pos(), getCall: call})
						}
					}
					// Non-ident LHS (slice element, field) is a store —
					// ownership escapes; fine.
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range pn.Values {
				if ast.Unparen(rhs) != ast.Node(call) || i >= len(pn.Names) {
					continue
				}
				id := pn.Names[i]
				if id.Name == "_" {
					continue
				}
				if obj := objectOf(p.Info, id); obj != nil {
					vars = append(vars, tracked{obj: obj, name: id.Name, getPos: call.Pos(), getCall: call})
				}
			}
		}
		// Every other context (call argument, return, composite literal,
		// store, channel send) hands the buffer to a new owner.
		return true
	})

	for _, v := range vars {
		obj := v.obj
		use := classifyUses(p, body, obj, v.getPos)
		if !use.put && !use.escape {
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(v.getPos),
				Analyzer: "poolcheck",
				Message:  fmt.Sprintf("pooled tensor %q is never Put and never escapes this function: the buffer leaks from the free-list", v.name),
			})
			continue
		}
		if use.deferredPut {
			continue // a deferred Put covers every return path
		}
		// Early-return leak: a return after the Get, on a path where the
		// buffer was not yet Put or handed off, abandons it.
		for _, ret := range returnsAfter(body, v.getCall.End()) {
			if usesObject(p.Info, ret, obj) {
				continue // returned (or used in the return) — ownership moves out
			}
			if pathConsumes(p, body, ret, obj) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(ret.Pos()),
				Analyzer: "poolcheck",
				Message:  fmt.Sprintf("return leaks pooled tensor %q (Get at line %d): Put it (or hand it off) before this return", v.name, p.Fset.Position(v.getPos).Line),
			})
		}
	}
	return out
}

// parentSkippingParens returns the nearest non-paren ancestor.
func parentSkippingParens(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

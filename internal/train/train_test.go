package train

import (
	"math"
	"testing"

	"repro/internal/moe"
	"repro/internal/tensor"
	"repro/internal/transformer"
	"repro/internal/xrand"
)

func newMoEModel(t *testing.T, rng *xrand.RNG, gateKind string) MoEModel {
	t.Helper()
	const m, e = 8, 4
	cfg := moe.GateConfig{Experts: e, TopK: 2, Factor: 0}
	var gate moe.Gate
	var err error
	switch gateKind {
	case "sigmoid":
		gate, err = moe.NewSigmoidGate(cfg, m, rng)
	case "ec":
		gate, err = moe.NewECGate(cfg, m, rng)
	case "softmoe":
		gate, err = moe.NewSoftMoEGate(cfg, m, 2, rng)
	case "xmoe":
		gate, err = moe.NewXMoEGate(cfg, m, 4, 0.3, rng)
	default:
		gate, err = moe.NewGShardGate(cfg, m, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	experts := make([]moe.Expert, e)
	for i := range experts {
		ex, err := moe.NewGPTFFN(m, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		experts[i] = ex
	}
	layer, err := moe.NewMOELayer(moe.LayerConfig{M: m, Gate: gate, Order: moe.TutelOrder{}, Experts: experts})
	if err != nil {
		t.Fatal(err)
	}
	return MoEModel{Layer: layer}
}

// TestMoELayerLearns: every gate's full stack must reduce MSE on a fixed
// regression task — the functional end-to-end check that backward passes,
// optimizers and routing all compose.
func TestMoELayerLearns(t *testing.T) {
	for _, gate := range []string{"gshard", "sigmoid", "ec", "softmoe", "xmoe"} {
		gate := gate
		t.Run(gate, func(t *testing.T) {
			rng := xrand.New(42)
			model := newMoEModel(t, rng, gate)
			x := tensor.RandN(xrand.New(1), 1, 32, 8)
			target := tensor.RandN(xrand.New(2), 0.5, 32, 8)
			res, err := Fit(model, NewAdam(5e-3), x, target, 60)
			if err != nil {
				t.Fatal(err)
			}
			if !(res.Last() < res.First()*0.7) {
				t.Fatalf("loss did not drop: %.5f -> %.5f", res.First(), res.Last())
			}
			for _, l := range res.Losses {
				if math.IsNaN(l) || math.IsInf(l, 0) {
					t.Fatal("loss diverged")
				}
			}
		})
	}
}

func TestTransformerBlockLearns(t *testing.T) {
	rng := xrand.New(7)
	const m = 8
	gate, err := moe.NewGShardGate(moe.GateConfig{Experts: 2, TopK: 1, Factor: 0}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	experts := []moe.Expert{}
	for i := 0; i < 2; i++ {
		ex, err := moe.NewGPTFFN(m, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		experts = append(experts, ex)
	}
	block, err := transformer.NewBlock(transformer.BlockConfig{
		M: m, Heads: 2, Causal: true,
		MoE: moe.LayerConfig{M: m, Gate: gate, Order: moe.TutelOrder{}, Experts: experts},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := blockModel{b: block}
	x := tensor.RandN(xrand.New(3), 1, 2, 8, m)
	target := tensor.RandN(xrand.New(4), 0.3, 2, 8, m)
	res, err := Fit(model, NewAdam(3e-3), x, target, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Last() < res.First()*0.8) {
		t.Fatalf("transformer block did not learn: %.5f -> %.5f", res.First(), res.Last())
	}
}

type blockModel struct{ b *transformer.Block }

func (m blockModel) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, func(*tensor.Tensor) error, error) {
	y, cache, err := m.b.Forward(x, train)
	if err != nil {
		return nil, nil, err
	}
	return y, func(dy *tensor.Tensor) error {
		_, err := m.b.Backward(cache, dy)
		return err
	}, nil
}
func (m blockModel) Params() []*moe.Param { return m.b.Params() }
func (m blockModel) ZeroGrad()            { m.b.ZeroGrad() }

func TestSGDMomentumBeatsPlainOnQuadratic(t *testing.T) {
	// Single scalar parameter, loss = ½(w−3)²: both optimizers must
	// converge; momentum at least as fast.
	run := func(opt Optimizer) float64 {
		w := tensor.FromData([]float64{0}, 1)
		p := &moe.Param{Name: "w", W: w, G: tensor.New(1)}
		for i := 0; i < 100; i++ {
			p.G.Set(w.At(0)-3, 0)
			opt.Step([]*moe.Param{p})
		}
		return math.Abs(w.At(0) - 3)
	}
	plain := run(NewSGD(0.1, 0))
	mom := run(NewSGD(0.1, 0.5))
	if plain > 0.1 {
		t.Fatalf("plain SGD did not converge: %v", plain)
	}
	if mom > 0.1 {
		t.Fatalf("momentum SGD did not converge: %v", mom)
	}
}

func TestAdamConvergesOnIllConditioned(t *testing.T) {
	// Two-parameter quadratic with 1000:1 conditioning; Adam normalizes
	// per-coordinate and must converge where plain SGD at the same LR
	// barely moves the flat coordinate.
	adam := NewAdam(0.1)
	w := tensor.FromData([]float64{5, 5}, 2)
	p := &moe.Param{Name: "w", W: w, G: tensor.New(2)}
	for i := 0; i < 300; i++ {
		p.G.Set(1000*w.At(0), 0)
		p.G.Set(w.At(1), 1)
		adam.Step([]*moe.Param{p})
	}
	if math.Abs(w.At(0)) > 0.1 || math.Abs(w.At(1)) > 1.0 {
		t.Fatalf("adam did not converge: %v", w.Data())
	}
}

func TestMSELossGradient(t *testing.T) {
	y := tensor.FromData([]float64{1, 2, 3}, 3)
	target := tensor.FromData([]float64{0, 2, 5}, 3)
	loss, dy := MSELoss(y, target)
	want := (1.0 + 0 + 4) / 6
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
	const eps = 1e-7
	for i := 0; i < 3; i++ {
		orig := y.Data()[i]
		y.Data()[i] = orig + eps
		up, _ := MSELoss(y, target)
		y.Data()[i] = orig - eps
		down, _ := MSELoss(y, target)
		y.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dy.At(i)) > 1e-6 {
			t.Fatalf("dLoss[%d]: %v vs %v", i, num, dy.At(i))
		}
	}
}

func TestFitValidation(t *testing.T) {
	rng := xrand.New(9)
	model := newMoEModel(t, rng, "gshard")
	x := tensor.RandN(rng, 1, 4, 8)
	if _, err := Fit(model, NewSGD(0.1, 0), x, x, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

// Package train provides the optimizers and training loop used to verify
// that the MoE stack actually learns — the functional counterpart of the
// scheduling experiments. It deliberately mirrors the PyTorch workflow the
// paper's Listing 2 plugs into: forward, loss, backward, optimizer step.
package train

import (
	"fmt"
	"math"

	"repro/internal/moe"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*moe.Param)
	Name() string
}

// SGD is plain (optionally momentum) stochastic gradient descent.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*moe.Param]*tensor.Tensor
}

// NewSGD constructs SGD with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*moe.Param]*tensor.Tensor{}}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*moe.Param) {
	for _, p := range params {
		w, g := p.W.Data(), p.G.Data()
		if s.Momentum == 0 {
			for i := range w {
				w[i] -= s.LR * g[i]
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			s.velocity[p] = v
		}
		vd := v.Data()
		for i := range w {
			vd[i] = s.Momentum*vd[i] + g[i]
			w[i] -= s.LR * vd[i]
		}
	}
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*moe.Param]*tensor.Tensor
}

// NewAdam constructs Adam with standard defaults for zero-valued options.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*moe.Param]*tensor.Tensor{}, v: map[*moe.Param]*tensor.Tensor{},
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*moe.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		v := a.v[p]
		w, g, md, vd := p.W.Data(), p.G.Data(), m.Data(), v.Data()
		for i := range w {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g[i]*g[i]
			w[i] -= a.LR * (md[i] / c1) / (math.Sqrt(vd[i]/c2) + a.Eps)
		}
	}
}

// MSELoss returns ½·mean((y−target)²) and its gradient w.r.t. y.
func MSELoss(y, target *tensor.Tensor) (float64, *tensor.Tensor) {
	diff := tensor.Sub(y, target)
	n := float64(diff.Size())
	loss := 0.0
	for _, d := range diff.Data() {
		loss += d * d
	}
	return loss / (2 * n), tensor.Scale(diff, 1/n)
}

// Model is anything trainable with the forward/backward/params contract
// (moe.MOELayer and transformer.Block both satisfy it via small adapters).
type Model interface {
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, func(dy *tensor.Tensor) error, error)
	Params() []*moe.Param
	ZeroGrad()
}

// MoEModel adapts a moe.MOELayer to the Model contract.
type MoEModel struct{ Layer *moe.MOELayer }

// Forward implements Model.
func (m MoEModel) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, func(*tensor.Tensor) error, error) {
	y, cache, err := m.Layer.Forward(x, train)
	if err != nil {
		return nil, nil, err
	}
	return y, func(dy *tensor.Tensor) error {
		_, err := m.Layer.Backward(cache, dy)
		return err
	}, nil
}

// Params implements Model.
func (m MoEModel) Params() []*moe.Param { return m.Layer.Params() }

// ZeroGrad implements Model.
func (m MoEModel) ZeroGrad() { m.Layer.ZeroGrad() }

// Result summarizes a training run.
type Result struct {
	Losses []float64
}

// First and Last return the initial and final loss.
func (r *Result) First() float64 { return r.Losses[0] }

// Last returns the final loss.
func (r *Result) Last() float64 { return r.Losses[len(r.Losses)-1] }

// Fit runs steps full-batch optimization steps of model on (x, target)
// under opt, recording the loss per step.
func Fit(model Model, opt Optimizer, x, target *tensor.Tensor, steps int) (*Result, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("train: steps must be positive")
	}
	res := &Result{}
	for s := 0; s < steps; s++ {
		model.ZeroGrad()
		y, backward, err := model.Forward(x, true)
		if err != nil {
			return nil, err
		}
		loss, dy := MSELoss(y, target)
		res.Losses = append(res.Losses, loss)
		if err := backward(dy); err != nil {
			return nil, err
		}
		opt.Step(model.Params())
	}
	return res, nil
}

// Package xrand provides a small, fast, deterministic random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement for this system: simulated
// measurements feed performance-model fitting, which feeds the scheduler,
// so every run of every experiment must observe identical pseudo-random
// streams. math/rand would work, but a local implementation guarantees the
// stream is stable across Go releases and lets us derive independent
// sub-streams cheaply (Split), which the workload generator and the
// differential-evolution solver rely on.
package xrand

import "math"

// RNG is a splittable 64-bit pseudo-random generator based on the
// SplitMix64 output function over a Weyl sequence. The zero value is not
// useful; construct with New.
type RNG struct {
	state uint64
	gamma uint64
}

const goldenGamma = 0x9e3779b97f4a7c15

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed, gamma: goldenGamma}
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixGamma derives an odd gamma with enough bit transitions to keep the
// Weyl sequence well distributed.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1
	// If the candidate has too few bit transitions, scramble it.
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += r.gamma
	return mix64(r.state)
}

// State exposes the generator's full internal state (state word and Weyl
// increment) for checkpointing; SetState restores it. A generator whose
// state was restored replays exactly the stream it would have produced —
// the property crash-consistent snapshots of noisy-gating RNGs rely on.
func (r *RNG) State() (state, gamma uint64) { return r.state, r.gamma }

// SetState overwrites the generator's internal state with a pair
// previously obtained from State.
func (r *RNG) SetState(state, gamma uint64) { r.state, r.gamma = state, gamma }

// Split returns a new generator whose stream is statistically independent
// of the receiver's. Both generators remain usable.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	g := mixGamma(r.Uint64())
	return &RNG{state: s, gamma: g}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal deviate using the Box–Muller
// transform. It is slightly slower than a ziggurat but has no tables and is
// trivially deterministic.
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(seed uint64) bool {
		rr := New(seed)
		n := 1 + rr.Intn(50)
		p := rr.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The two streams should not be trivially equal.
	equal := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("parent and child streams agree too often: %d/64", equal)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(2024)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

// TestStateRoundTrip: State/SetState capture the generator completely —
// a restored generator replays the identical stream, including one whose
// gamma came from Split.
func TestStateRoundTrip(t *testing.T) {
	r := New(42).Split()
	r.Uint64()
	s, g := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	fresh := New(0)
	fresh.SetState(s, g)
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d after restore = %#x, want %#x", i, got, w)
		}
	}
}

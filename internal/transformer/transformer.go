// Package transformer assembles the paper's full generalized layer
// (Fig. 1): pre-norm multi-head attention followed by a pre-norm MoE
// block, both with residual connections — the structure every model in §6
// trains. All paths have exact manual backward passes.
package transformer

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/moe"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// BlockConfig assembles one transformer-MoE block.
type BlockConfig struct {
	M      int  // embedding size
	Heads  int  // attention heads
	Causal bool // causal (decoder) masking
	MoE    moe.LayerConfig
}

// Block is one attention+MoE layer:
//
//	h = x + Attn(LN1(x))
//	y = h + MoE(LN2(h))
type Block struct {
	m    int
	ln1  *attention.LayerNorm
	attn *attention.MultiHead
	ln2  *attention.LayerNorm
	moe  *moe.MOELayer
}

// BlockCache carries every sub-module cache for Backward.
type BlockCache struct {
	ln1C  *attention.LNCache
	attnC *attention.Cache
	ln2C  *attention.LNCache
	moeC  *moe.LayerCache
}

// NewBlock builds the block; the MoE config's M must match.
func NewBlock(cfg BlockConfig, rng *xrand.RNG) (*Block, error) {
	if cfg.MoE.M != cfg.M {
		return nil, fmt.Errorf("transformer: MoE embedding %d != block embedding %d", cfg.MoE.M, cfg.M)
	}
	attn, err := attention.NewMultiHead(cfg.M, cfg.Heads, cfg.Causal, rng)
	if err != nil {
		return nil, err
	}
	moeLayer, err := moe.NewMOELayer(cfg.MoE)
	if err != nil {
		return nil, err
	}
	return &Block{
		m:    cfg.M,
		ln1:  attention.NewLayerNorm(cfg.M),
		attn: attn,
		ln2:  attention.NewLayerNorm(cfg.M),
		moe:  moeLayer,
	}, nil
}

// MoE exposes the inner MoE layer.
func (b *Block) MoE() *moe.MOELayer { return b.moe }

// Params returns every trainable parameter of the block. The two
// parameter vocabularies (attention.Param and moe.Param) are unified into
// moe.Param values sharing storage.
func (b *Block) Params() []*moe.Param {
	var out []*moe.Param
	add := func(ps []*attention.Param) {
		for _, p := range ps {
			out = append(out, &moe.Param{Name: p.Name, W: p.W, G: p.G})
		}
	}
	add(b.ln1.Params())
	add(b.attn.Params())
	add(b.ln2.Params())
	out = append(out, b.moe.Params()...)
	return out
}

// ZeroGrad clears every gradient in the block.
func (b *Block) ZeroGrad() {
	b.ln1.ZeroGrad()
	b.attn.ZeroGrad()
	b.ln2.ZeroGrad()
	b.moe.ZeroGrad()
}

// Forward runs the block on x (B, L, M).
func (b *Block) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, *BlockCache, error) {
	if x.Rank() != 3 || x.Dim(2) != b.m {
		return nil, nil, fmt.Errorf("transformer: input must be (B, L, %d), got %v", b.m, x.Shape())
	}
	cache := &BlockCache{}
	n1, c1, err := b.ln1.Forward(x)
	if err != nil {
		return nil, nil, err
	}
	cache.ln1C = c1
	a, ca, err := b.attn.Forward(n1)
	if err != nil {
		return nil, nil, err
	}
	cache.attnC = ca
	h := tensor.Add(x, a)
	n2, c2, err := b.ln2.Forward(h)
	if err != nil {
		return nil, nil, err
	}
	cache.ln2C = c2
	mo, cm, err := b.moe.Forward(n2, train)
	if err != nil {
		return nil, nil, err
	}
	cache.moeC = cm
	return tensor.Add(h, mo), cache, nil
}

// Backward propagates dy (B, L, M) through the block and returns dx.
func (b *Block) Backward(cache *BlockCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	// y = h + MoE(LN2(h)); dh = dy + LN2ᵀ(MoEᵀ(dy)).
	dMoEOut, err := b.moe.Backward(cache.moeC, dy)
	if err != nil {
		return nil, err
	}
	dN2, err := b.ln2.Backward(cache.ln2C, dMoEOut)
	if err != nil {
		return nil, err
	}
	dh := tensor.Add(dy, dN2)
	// h = x + Attn(LN1(x)); dx = dh + LN1ᵀ(Attnᵀ(dh)).
	dAttnOut, err := b.attn.Backward(cache.attnC, dh)
	if err != nil {
		return nil, err
	}
	dN1, err := b.ln1.Backward(cache.ln1C, dAttnOut)
	if err != nil {
		return nil, err
	}
	return tensor.Add(dh, dN1), nil
}

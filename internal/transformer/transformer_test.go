package transformer

import (
	"math"
	"testing"

	"repro/internal/moe"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func testBlock(t *testing.T, rng *xrand.RNG) *Block {
	t.Helper()
	const m = 8
	gate, err := moe.NewGShardGate(moe.GateConfig{Experts: 4, TopK: 2, Factor: 0}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	experts := make([]moe.Expert, 4)
	for i := range experts {
		e, err := moe.NewGPTFFN(m, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		experts[i] = e
	}
	b, err := NewBlock(BlockConfig{
		M: m, Heads: 2, Causal: true,
		MoE: moe.LayerConfig{M: m, Gate: gate, Order: moe.TutelOrder{}, Experts: experts},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBlockForwardShape(t *testing.T) {
	rng := xrand.New(1)
	b := testBlock(t, rng)
	x := tensor.RandN(rng, 1, 2, 5, 8)
	y, _, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 5 || y.Dim(2) != 8 {
		t.Fatalf("shape %v", y.Shape())
	}
}

func TestBlockValidation(t *testing.T) {
	rng := xrand.New(2)
	gate, _ := moe.NewSigmoidGate(moe.GateConfig{Experts: 2, TopK: 1}, 4, rng)
	e, _ := moe.NewGPTFFN(4, 8, rng)
	if _, err := NewBlock(BlockConfig{
		M: 8, Heads: 2,
		MoE: moe.LayerConfig{M: 4, Gate: gate, Order: moe.TutelOrder{}, Experts: []moe.Expert{e, e}},
	}, rng); err == nil {
		t.Fatal("embedding mismatch accepted")
	}
	b := testBlock(t, rng)
	if _, _, err := b.Forward(tensor.New(3, 8), false); err == nil {
		t.Fatal("rank-2 input accepted")
	}
}

// TestBlockGradients verifies the full residual+LN+attention+MoE chain
// end to end against central differences.
func TestBlockGradients(t *testing.T) {
	rng := xrand.New(3)
	b := testBlock(t, rng)
	rx := xrand.New(4)
	x := tensor.RandN(rx, 1, 2, 4, 8)
	r := tensor.RandN(rx, 1, 2, 4, 8)

	loss := func(xx *tensor.Tensor) float64 {
		y, _, err := b.Forward(xx, false)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Sum(tensor.Mul(y, r))
	}
	b.ZeroGrad()
	_, cache, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := b.Backward(cache, r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for i := 0; i < x.Size(); i += 5 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := loss(x)
		x.Data()[i] = orig - eps
		down := loss(x)
		x.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 2e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: numeric %v vs analytic %v", i, num, dx.Data()[i])
		}
	}
	for _, p := range b.Params() {
		stride := p.W.Size()/3 + 1
		for i := 0; i < p.W.Size(); i += stride {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			up := loss(x)
			p.W.Data()[i] = orig - eps
			down := loss(x)
			p.W.Data()[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.G.Data()[i]) > 2e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", p.Name, i, num, p.G.Data()[i])
			}
		}
	}
}

func TestBlockParamsCoverAllModules(t *testing.T) {
	rng := xrand.New(5)
	b := testBlock(t, rng)
	names := map[string]bool{}
	for _, p := range b.Params() {
		names[p.Name] = true
	}
	for _, want := range []string{"ln.gamma", "attn.wq", "attn.wo", "gshard.wg", "ffn.w1"} {
		if !names[want] {
			t.Fatalf("missing param family %q in %v", want, names)
		}
	}
}

func TestResidualPathIdentityAtZeroWeights(t *testing.T) {
	// Zeroing the attention output projection and the experts' second
	// matrices turns the block into the identity function.
	rng := xrand.New(6)
	b := testBlock(t, rng)
	for _, p := range b.Params() {
		if p.Name == "attn.wo" || p.Name == "ffn.w2" || p.Name == "ffn.b2" {
			p.W.Zero()
		}
	}
	x := tensor.RandN(rng, 1, 1, 4, 8)
	y, _, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !y.AllClose(x, 1e-12) {
		t.Fatalf("block should be identity, max diff %v", y.MaxAbsDiff(x))
	}
}

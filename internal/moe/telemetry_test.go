package moe

import (
	"math"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// zipfLayer builds a layer routed by the deterministic skewed ZipfGate —
// the known-ground-truth load distribution the telemetry assertions need.
func zipfLayer(t *testing.T, skew float64) *MOELayer {
	t.Helper()
	const m, e, topK, h = 32, 8, 2, 48
	rng := xrand.New(17)
	g, err := NewZipfGate(GateConfig{Experts: e, TopK: topK, Factor: 0}, m, skew, 99)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		if exps[i], err = NewGPTFFN(m, h, rng); err != nil {
			t.Fatal(err)
		}
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: g, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	return layer
}

func TestZipfGateDeterministicSkew(t *testing.T) {
	const n, m = 64, 32
	g, err := NewZipfGate(GateConfig{Experts: 8, TopK: 2, Factor: 0}, m, 1.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(3), 1, n, m)
	p1, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Validate(n); err != nil {
		t.Fatal(err)
	}
	l1, l2 := p1.ExpertLoad(), p2.ExpertLoad()
	total := 0
	for e := range l1 {
		if l1[e] != l2[e] {
			t.Fatalf("routing not deterministic: %v vs %v", l1, l2)
		}
		total += l1[e]
	}
	if total != n*2 {
		t.Fatalf("routed %d assignments, want %d (f=∗ never drops)", total, n*2)
	}
	// Zipf skew: expert 0 must carry strictly more than the tail expert.
	if l1[0] <= l1[len(l1)-1] {
		t.Fatalf("no skew: load %v", l1)
	}
}

func TestExpertLoadDense(t *testing.T) {
	p := &DispatchPlan{Experts: 3, Capacity: 5, DispatchW: tensor.New(15, 4), CombineW: tensor.New(4, 15)}
	for _, l := range p.ExpertLoad() {
		if l != 5 {
			t.Fatalf("dense load = %v, want Capacity per expert", p.ExpertLoad())
		}
	}
}

// TestStepMetricsStrategies is the acceptance matrix: a skewed Zipf-routed
// step under EP, ESP and Hybrid must emit StepMetrics whose overlap ratio
// and per-expert load histogram reflect the measured run.
func TestStepMetricsStrategies(t *testing.T) {
	const n, m = 48, 32
	cases := []struct {
		name string
		cfg  WorldConfig
	}{
		{"ep", WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyEP}},
		{"esp", WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyESP}},
		{"hybrid", WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2}},
	}
	x := tensor.RandN(xrand.New(5), 1, n, m)
	dy := tensor.RandN(xrand.New(6), 1, n, m)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			cfg := tc.cfg
			cfg.Sink = telemetry.NewRegistrySink(reg)
			w, err := NewWorld(zipfLayer(t, 1.2), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			res, err := w.Step(x, dy, StepConfig{LR: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			mtr := res.Metrics
			if mtr == nil {
				t.Fatal("sink configured but Metrics is nil")
			}
			if mtr.Strategy != string(cfg.Strategy) || mtr.Ranks != 4 || mtr.Layers != 1 {
				t.Fatalf("identity mismatch: %+v", mtr)
			}
			if tc.name == "hybrid" && mtr.GroupSize != 2 {
				t.Fatalf("hybrid group size = %d, want 2", mtr.GroupSize)
			}
			// Overlap ratio: SerialMS over the pipelined wall, consistent
			// with its own ingredients. (At toy sizes goroutine scheduling
			// overhead can outweigh the overlap win, so we assert
			// definition and positivity here and the sequential-baseline
			// invariant below, not a fixed threshold.)
			if mtr.OverlapRatio <= 0 || mtr.SerialMS <= 0 {
				t.Fatalf("degenerate overlap: ratio=%v serial=%v", mtr.OverlapRatio, mtr.SerialMS)
			}
			if want := mtr.SerialMS / (mtr.ForwardMS + mtr.BackwardMS); math.Abs(mtr.OverlapRatio-want) > 1e-9 {
				t.Fatalf("overlap ratio %v inconsistent with serial/wall = %v", mtr.OverlapRatio, want)
			}
			// Sequential execution cannot overlap anything: its wall is at
			// least the serial task time, so the ratio tops out at 1.
			seqRes, err := w.Step(x, dy, StepConfig{LR: 0.01, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if r := seqRes.Metrics.OverlapRatio; r <= 0 || r > 1+1e-9 {
				t.Fatalf("sequential overlap ratio = %v, want in (0, 1]", r)
			}
			// Per-expert load: one layer, all n*topK assignments routed
			// (f=∗), visibly skewed.
			if len(mtr.ExpertTokens) != 1 {
				t.Fatalf("expert token layers = %d, want 1", len(mtr.ExpertTokens))
			}
			total := 0
			for _, l := range mtr.ExpertTokens[0] {
				total += l
			}
			if total != n*2 {
				t.Fatalf("routed tokens = %d, want %d", total, n*2)
			}
			if mtr.ExpertImbalance <= 1 || mtr.ExpertEntropy >= 1 || mtr.ExpertEntropy <= 0 {
				t.Fatalf("zipf load not skewed: entropy=%v imbalance=%v tokens=%v",
					mtr.ExpertEntropy, mtr.ExpertImbalance, mtr.ExpertTokens[0])
			}
			if mtr.DroppedTokens != 0 {
				t.Fatalf("f=∗ dropped %d tokens", mtr.DroppedTokens)
			}
			if mtr.ComputeWorkers < 1 || mtr.CommWorkers < 1 {
				t.Fatalf("resource plan missing: %+v", mtr)
			}
			// The registry sink saw both steps (concurrent + sequential):
			// 8 load-histogram samples each, gauges holding the last step.
			snap := reg.Snapshot()
			if snap.Counters["step_total"] != 2 {
				t.Fatalf("step_total = %d, want 2", snap.Counters["step_total"])
			}
			if snap.Histograms["expert_load_tokens"].Count != 16 {
				t.Fatalf("load histogram samples = %d, want 16 (one per expert per step)",
					snap.Histograms["expert_load_tokens"].Count)
			}
			if got := snap.Gauges["step_overlap_ratio"]; math.Abs(got-seqRes.Metrics.OverlapRatio) > 1e-12 {
				t.Fatalf("gauge overlap %v != last step's overlap %v", got, seqRes.Metrics.OverlapRatio)
			}
		})
	}
}

// TestStepMetricsStack: a two-layer stack emits one record covering both
// layers, to each distinct sink exactly once.
func TestStepMetricsStack(t *testing.T) {
	const n, m = 48, 32
	var got []*telemetry.StepMetrics
	sink := telemetry.SinkFunc(func(sm *telemetry.StepMetrics) { got = append(got, sm) })
	mkWorld := func() *World {
		w, err := NewWorld(zipfLayer(t, 1.0), WorldConfig{Ranks: 2, ChunksFwd: 2, Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w0, w1 := mkWorld(), mkWorld()
	defer w0.Close()
	defer w1.Close()
	x := tensor.RandN(xrand.New(5), 1, n, m)
	dy := tensor.RandN(xrand.New(6), 1, n, m)
	for step := 0; step < 2; step++ {
		res, err := StepWorlds([]*World{w0, w1}, x, dy, StepConfig{LR: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Step != step {
			t.Fatalf("step ordinal = %d, want %d", res.Metrics.Step, step)
		}
		if res.Metrics.Layers != 2 || len(res.Metrics.ExpertTokens) != 2 {
			t.Fatalf("stack metrics cover %d layers, %d load rows; want 2, 2",
				res.Metrics.Layers, len(res.Metrics.ExpertTokens))
		}
	}
	// Same sink on both worlds: one emission per step, not one per world.
	if len(got) != 2 {
		t.Fatalf("sink saw %d emissions, want 2", len(got))
	}
	if w0.Steps() != 2 || w1.Steps() != 2 {
		t.Fatalf("step counters = %d/%d, want 2/2", w0.Steps(), w1.Steps())
	}
}

// TestStepNoSinkNoMetrics: without a sink the step must not build metrics,
// and the telemetry guard itself (stepSinks) must not allocate.
func TestStepNoSinkNoMetrics(t *testing.T) {
	const n, m = 48, 32
	w, err := NewWorld(zipfLayer(t, 1.0), WorldConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	x := tensor.RandN(xrand.New(5), 1, n, m)
	dy := tensor.RandN(xrand.New(6), 1, n, m)
	res, err := w.Step(x, dy, StepConfig{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatal("no sink configured but Metrics is non-nil")
	}
	worlds := []*World{w, w}
	if a := testing.AllocsPerRun(100, func() {
		if stepSinks(worlds) != nil {
			t.Fatal("phantom sink")
		}
	}); a != 0 {
		t.Fatalf("no-sink telemetry guard allocated %v times per run, want 0", a)
	}
}

package moe

import (
	"repro/internal/tensor"
)

// ChunkedExpert is the chunk-granular execution contract the stream
// runtime drives (§4.1): forward and backward run over disjoint row ranges
// of one (n, M) block — so a pipeline can start computing as soon as the
// first dispatch chunk lands — while every parameter-gradient reduction is
// deferred to one full-block pass. Row-wise operations (GEMM output rows,
// activations, bias adds) are computed per chunk; reductions over the row
// dimension (weight gradients, bias column sums) happen once in
// FinishBackward over the complete buffers. That split is what makes the
// chunked pass bit-identical to the monolithic IntoExpert pass at every
// pipeline degree: no floating-point reduction is ever re-associated.
//
// Contract: BeginChunked is called once per block; ForwardChunk calls must
// tile [0, n) with disjoint [lo, hi) ranges before any BackwardChunk;
// BackwardChunk ranges must tile [0, n) before the single FinishBackward
// call, which releases the cache's pooled buffers. Calls on one cache must
// not run concurrently (the runtime serializes them on the owning rank's
// compute stream). Forward-only callers may drop the cache and leak its
// pooled buffers to the GC, as with ForwardInto.
//
// The pool passed to BeginChunked is the worker budget of the stream that
// will drive the cache: every GEMM the chunk methods run must fan out onto
// it (nil designates the process-default pool), so concurrent compute
// streams stay inside their planned allotments instead of oversubscribing
// one shared queue. The pool never changes a result — kernels are
// bit-identical at any width.
type ChunkedExpert interface {
	Expert
	// BeginChunked prepares a chunked pass over the full (n, M) input view
	// x writing into the full (n, M) output view out, with the chunk
	// methods' kernels bound to pool (nil = default).
	BeginChunked(x, out *tensor.Tensor, pool *tensor.Pool) ChunkedCache
	// ForwardChunk computes output rows [lo, hi).
	ForwardChunk(cc ChunkedCache, lo, hi int)
	// BackwardChunk computes input-gradient rows [lo, hi) of dx from rows
	// [lo, hi) of dy (both full (n, M) views), stashing what the deferred
	// parameter-gradient pass needs.
	BackwardChunk(cc ChunkedCache, dy, dx *tensor.Tensor, lo, hi int)
	// FinishBackward performs the deferred full-block parameter-gradient
	// reductions (given the full dy view) and releases pooled state.
	FinishBackward(cc ChunkedCache, dy *tensor.Tensor)
}

// ChunkedCache is the opaque full-block state of one chunked pass.
type ChunkedCache interface{}

// gptChunkCache is GPTFFN's chunked-pass state: full-block views supplied
// by the caller plus pooled full-block activation buffers that chunks fill
// range by range.
type gptChunkCache struct {
	x, out *tensor.Tensor // (n, M) views owned by the caller
	h, a   *tensor.Tensor // (n, H) pooled
	da     *tensor.Tensor // (n, H) pooled, lazily on first BackwardChunk
	pool   *tensor.Pool   // the driving stream's worker budget (nil = default)
}

// BeginChunked implements ChunkedExpert.
func (f *GPTFFN) BeginChunked(x, out *tensor.Tensor, pool *tensor.Pool) ChunkedCache {
	n := x.Dim(0)
	return &gptChunkCache{x: x, out: out, h: tensor.GetUninit(n, f.h), a: tensor.GetUninit(n, f.h), pool: pool}
}

// ForwardChunk implements ChunkedExpert. Every step is row-wise, so the
// rows it produces are bit-identical to a monolithic ForwardInto.
func (f *GPTFFN) ForwardChunk(cc ChunkedCache, lo, hi int) {
	if lo >= hi {
		return
	}
	c := cc.(*gptChunkCache)
	xv, hv, av, ov := c.x.Slice(lo, hi), c.h.Slice(lo, hi), c.a.Slice(lo, hi), c.out.Slice(lo, hi)
	c.pool.MatMulInto(hv, xv, f.w1.W)
	tensor.AddRowVectorInPlace(hv, f.b1.W)
	tensor.GeLUInto(av, hv)
	c.pool.MatMulInto(ov, av, f.w2.W)
	tensor.AddRowVectorInPlace(ov, f.b2.W)
}

// BackwardChunk implements ChunkedExpert: dX rows only; gradients of W1,
// W2, b1, b2 wait for FinishBackward.
func (f *GPTFFN) BackwardChunk(cc ChunkedCache, dy, dx *tensor.Tensor, lo, hi int) {
	c := cc.(*gptChunkCache)
	if c.da == nil {
		c.da = tensor.GetUninit(c.x.Dim(0), f.h)
	}
	if lo >= hi {
		return
	}
	dyv, dav, dxv := dy.Slice(lo, hi), c.da.Slice(lo, hi), dx.Slice(lo, hi)
	c.pool.MatMulT2Into(dav, dyv, f.w2.W)
	hd := c.h.Slice(lo, hi).Data()
	dd := dav.Data()
	for i := range dd {
		dd[i] *= tensor.GeLUGrad(hd[i])
	}
	c.pool.MatMulT2Into(dxv, dav, f.w1.W)
}

// FinishBackward implements ChunkedExpert: the same full-block GEMMs and
// column sums as BackwardInto, in the same accumulation order.
func (f *GPTFFN) FinishBackward(cc ChunkedCache, dy *tensor.Tensor) {
	c := cc.(*gptChunkCache)
	if c.da == nil {
		c.da = tensor.Get(dy.Dim(0), f.h)
	}
	gw2 := tensor.GetUninit(f.h, f.m)
	c.pool.MatMulT1Into(gw2, c.a, dy)
	tensor.AddInPlace(f.w2.G, gw2)
	tensor.Put(gw2)
	addColSum(f.b2.G, dy)
	gw1 := tensor.GetUninit(f.m, f.h)
	c.pool.MatMulT1Into(gw1, c.x, c.da)
	tensor.AddInPlace(f.w1.G, gw1)
	tensor.Put(gw1)
	addColSum(f.b1.G, c.da)
	tensor.Put(c.da)
	tensor.Put(c.a)
	tensor.Put(c.h)
}

// mixtralChunkCache is MixtralFFN's chunked-pass state.
type mixtralChunkCache struct {
	x, out  *tensor.Tensor // (n, M) views owned by the caller
	g, u, a *tensor.Tensor // (n, H) pooled
	da, du  *tensor.Tensor // (n, H) pooled, lazily on first BackwardChunk
	pool    *tensor.Pool   // the driving stream's worker budget (nil = default)
}

// BeginChunked implements ChunkedExpert.
func (f *MixtralFFN) BeginChunked(x, out *tensor.Tensor, pool *tensor.Pool) ChunkedCache {
	n := x.Dim(0)
	return &mixtralChunkCache{
		x: x, out: out,
		g:    tensor.GetUninit(n, f.h),
		u:    tensor.GetUninit(n, f.h),
		a:    tensor.GetUninit(n, f.h),
		pool: pool,
	}
}

// ForwardChunk implements ChunkedExpert.
func (f *MixtralFFN) ForwardChunk(cc ChunkedCache, lo, hi int) {
	if lo >= hi {
		return
	}
	c := cc.(*mixtralChunkCache)
	xv, ov := c.x.Slice(lo, hi), c.out.Slice(lo, hi)
	gv, uv, av := c.g.Slice(lo, hi), c.u.Slice(lo, hi), c.a.Slice(lo, hi)
	c.pool.MatMulInto(gv, xv, f.w1.W)
	c.pool.MatMulInto(uv, xv, f.w3.W)
	tensor.SiLUInto(av, gv)
	p := tensor.GetUninit(hi-lo, f.h)
	tensor.MulInto(p, av, uv)
	c.pool.MatMulInto(ov, p, f.w2.W)
	tensor.Put(p)
}

// BackwardChunk implements ChunkedExpert.
func (f *MixtralFFN) BackwardChunk(cc ChunkedCache, dy, dx *tensor.Tensor, lo, hi int) {
	c := cc.(*mixtralChunkCache)
	if c.da == nil {
		c.da = tensor.GetUninit(c.x.Dim(0), f.h)
		c.du = tensor.GetUninit(c.x.Dim(0), f.h)
	}
	if lo >= hi {
		return
	}
	dyv, dxv := dy.Slice(lo, hi), dx.Slice(lo, hi)
	gv, uv, av := c.g.Slice(lo, hi), c.u.Slice(lo, hi), c.a.Slice(lo, hi)
	dav, duv := c.da.Slice(lo, hi), c.du.Slice(lo, hi)
	dp := tensor.GetUninit(hi-lo, f.h)
	c.pool.MatMulT2Into(dp, dyv, f.w2.W)
	tensor.MulInto(dav, dp, uv)
	tensor.MulInto(duv, dp, av)
	tensor.Put(dp)
	gd := gv.Data()
	dd := dav.Data()
	for i := range dd {
		dd[i] *= tensor.SiLUGrad(gd[i])
	}
	c.pool.MatMulT2Into(dxv, dav, f.w1.W)
	dxu := tensor.GetUninit(hi-lo, f.m)
	c.pool.MatMulT2Into(dxu, duv, f.w3.W)
	tensor.AddInPlace(dxv, dxu)
	tensor.Put(dxu)
}

// FinishBackward implements ChunkedExpert.
func (f *MixtralFFN) FinishBackward(cc ChunkedCache, dy *tensor.Tensor) {
	c := cc.(*mixtralChunkCache)
	n := dy.Dim(0)
	if c.da == nil {
		c.da = tensor.Get(n, f.h)
		c.du = tensor.Get(n, f.h)
	}
	p := tensor.GetUninit(n, f.h)
	tensor.MulInto(p, c.a, c.u)
	gw := tensor.GetUninit(f.h, f.m)
	c.pool.MatMulT1Into(gw, p, dy)
	tensor.AddInPlace(f.w2.G, gw)
	tensor.Put(gw)
	tensor.Put(p)
	gw13 := tensor.GetUninit(f.m, f.h)
	c.pool.MatMulT1Into(gw13, c.x, c.da)
	tensor.AddInPlace(f.w1.G, gw13)
	c.pool.MatMulT1Into(gw13, c.x, c.du)
	tensor.AddInPlace(f.w3.G, gw13)
	tensor.Put(gw13)
	tensor.Put(c.da)
	tensor.Put(c.du)
	tensor.Put(c.a)
	tensor.Put(c.g)
	tensor.Put(c.u)
}

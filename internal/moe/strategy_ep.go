package moe

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// epStrategy is pure expert parallelism (§4.1), the scheme the original
// World hard-coded: rank j owns experts [j·E/R, (j+1)·E/R) and computes
// them whole; the dispatch AlltoAll moves rank i's slot rows for expert
// group j to rank j. Because the AlltoAll orders arrivals by source rank
// and the shards are contiguous row ranges, every expert sees exactly the
// rows of the single-rank layer in the same order, making the whole pass
// bit-identical to MOELayer.Forward/Backward at any (R, r).
//
// Streams: one global "inter" stream serializes the AlltoAll chunk
// collectives (the NIC of Figs. 3–4); each rank owns an "intra:<rank>"
// stream for local (un)packing between the wire layout and the expert
// blocks and a "compute:<rank>" stream for expert math. Expert chunk c
// can compute while chunk c+1 is on the wire — measured, not simulated.
type epStrategy struct {
	chunked bool // every expert implements ChunkedExpert
}

// epCache is the EP forward state Backward consumes.
type epCache struct {
	xBlocks   []*tensor.Tensor // per rank (Eg, Tpad, M) expert inputs
	outBlocks []*tensor.Tensor // per rank (Eg, Tpad, M) expert outputs
	ccs       [][]ChunkedCache // [rank][local expert], chunked mode
	expCaches [][]ExpertCache  // [rank][local expert], fallback mode
}

// Name implements ParallelStrategy.
func (s *epStrategy) Name() Strategy { return StrategyEP }

// Chunked implements ParallelStrategy.
func (s *epStrategy) Chunked() bool { return s.chunked }

// Validate implements ParallelStrategy: EP works with any expert; the
// chunk-granular path needs the ChunkedExpert contract from every expert,
// otherwise compute falls back to whole blocks per rank.
func (s *epStrategy) Validate(l *MOELayer, cfg WorldConfig) error {
	s.chunked = true
	for _, ex := range l.cfg.Experts {
		if _, ok := ex.(ChunkedExpert); !ok {
			s.chunked = false
			break
		}
	}
	return nil
}

// PlanCheck implements ParallelStrategy.
func (s *epStrategy) PlanCheck(plan *DispatchPlan) error {
	if plan.IsDense() {
		return fmt.Errorf("moe: strategy %q supports hard routing only (dense SoftMoE plans have no token rows to chunk); dense plans run under strategy %q",
			StrategyEP, StrategyDenseSlots)
	}
	return nil
}

// wireOff is the offset of (t, el, m) inside one (S rows × Eg·M wide)
// wire block.
func wireOff(t, el, m, eg, mdim int) int { return (t*eg+el)*mdim + m }

// xferGlobal copies chunk rows [rr.Lo, rr.Hi) of token-side rank i's slot
// shard between the padded global (E, Tpad, M) expert-major buffer and
// rank i's wire buffer, whose per-peer blocks are keyed by expert group.
// toWire selects the direction. Every forward/backward pack stage on the
// token side is this one loop, so wire-layout fixes cannot drift between
// the passes. Peers shard over pool (the comm staging allotment): each
// peer touches a disjoint wire block and a disjoint set of expert blocks,
// and the work is pure copies, so any width is bit-identical.
func xferGlobal(pool *tensor.Pool, wire, global []float64, ranks, eg, mdim, spad, tpad, i int, rr comm.RowRange, toWire bool) {
	blk := spad * eg * mdim
	pool.ParallelFor(ranks, func(p int) {
		wb := wire[p*blk : (p+1)*blk]
		for el := 0; el < eg; el++ {
			e := p*eg + el
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := wireOff(t, el, 0, eg, mdim)
				goff := (e*tpad + i*spad + t) * mdim
				if toWire {
					copy(wb[woff:woff+mdim], global[goff:goff+mdim])
				} else {
					copy(global[goff:goff+mdim], wb[woff:woff+mdim])
				}
			}
		}
	})
}

// xferLocal copies chunk rows between expert-side rank j's (Eg, Tpad, M)
// block and rank j's wire buffer, whose per-peer blocks are keyed by the
// token-side rank that owns each row segment. Peers shard over pool as in
// xferGlobal (disjoint wire blocks, disjoint row segments).
func xferLocal(pool *tensor.Pool, wire, block []float64, ranks, eg, mdim, spad, tpad int, rr comm.RowRange, toWire bool) {
	blk := spad * eg * mdim
	pool.ParallelFor(ranks, func(i int) {
		wb := wire[i*blk : (i+1)*blk]
		for el := 0; el < eg; el++ {
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := wireOff(t, el, 0, eg, mdim)
				boff := (el*tpad + i*spad + t) * mdim
				if toWire {
					copy(wb[woff:woff+mdim], block[boff:boff+mdim])
				} else {
					copy(block[boff:boff+mdim], wb[woff:woff+mdim])
				}
			}
		}
	})
}

// a2aTask wraps one chunk collective, accumulating traffic stats (safe:
// all A2A tasks share the serialized "inter" stream). The fault guard is
// minted at plan-build time so in-collective injection is deterministic.
func (s *epStrategy) a2aTask(w *World, send, recv [][]float64, dims comm.BlockDims, rr comm.RowRange) func() error {
	g := w.collGuard("inter", KindA2A)
	return func() error {
		st, err := comm.AlltoAllRowsGuarded(g, w.cfg.Algo, send, recv, w.cfg.GPUsPerNode, dims, rr)
		if err != nil {
			return err
		}
		w.addStats(st)
		return nil
	}
}

// BuildForward implements ParallelStrategy.
func (s *epStrategy) BuildForward(w *World, p *runtime.Plan, cache *WorldCache, scatPad, combinedPad *tensor.Tensor) {
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksFwd)
	dims := comm.BlockDims{Rows: spad, Width: eg * mdim}
	blk := dims.Elems()

	// Wire and block buffers.
	send := wireBuffers(R, R*blk)
	recv := wireBuffers(R, R*blk)
	csend := wireBuffers(R, R*blk)
	crecv := wireBuffers(R, R*blk)
	ec := &epCache{
		xBlocks:   rankBlocks(R, eg, tpad, mdim),
		outBlocks: rankBlocks(R, eg, tpad, mdim),
	}
	cache.sc = ec

	// Per-expert chunk caches (chunked mode) span the full padded block.
	if s.chunked {
		ec.ccs = make([][]ChunkedCache, R)
		for j := 0; j < R; j++ {
			ec.ccs[j] = make([]ChunkedCache, eg)
			for el := 0; el < eg; el++ {
				ec.ccs[j][el] = w.expert(j, el).(ChunkedExpert).BeginChunked(
					expertView(ec.xBlocks[j], el, tpad, mdim),
					expertView(ec.outBlocks[j], el, tpad, mdim),
					w.computePool(j))
			}
		}
	} else {
		ec.expCaches = make([][]ExpertCache, R)
		for j := 0; j < R; j++ {
			ec.expCaches[j] = make([]ExpertCache, eg)
		}
	}

	scatData := scatPad.Data()

	// Phase 1 — pack + dispatch for every chunk. Enqueueing all dispatch
	// collectives before any combine keeps the inter stream issuing them
	// back to back (the Fig. 3c/d ordering core.buildForwardLayer uses):
	// chunk c+1 is on the wire while chunk c computes, which is the whole
	// point of the pipeline. Interleaving D and C per chunk would serialize
	// D[c+1] behind C[c] — and C[c] waits on expert chunk c.
	dispIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), send[i], scatData, R, eg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		dispIDs[c] = p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), s.a2aTask(w, send, recv, dims, rr), packIDs...)
	}

	// Phase 2 — unpack + expert compute per chunk. expTask[c][j] is the
	// task the chunk's combine pack on rank j must wait for.
	expTask := s.emitForwardExperts(w, p, ec, cache, recv, dispIDs, ranges)

	// Phase 3 — combine every chunk back to the token side.
	for c, rr := range ranges {
		s.emitCombine(w, p, ec, cache, combinedPad, csend, crecv, dims, rr, c, expTask[c])
	}
}

// emitForwardExperts adds phase 2 of the forward plan: per-chunk unpack of
// the dispatch arrivals into the expert blocks and the expert compute on
// them. It returns expTask[c][j], the task id chunk c's combine pack on
// rank j depends on. Chunk-capable experts compute per chunk; fallback
// experts compute the whole block once every chunk has landed (so every
// expTask[c][j] is the same whole-block task).
func (s *epStrategy) emitForwardExperts(w *World, p *runtime.Plan, ec *epCache, cache *WorldCache, recv [][]float64, dispIDs []int, ranges []comm.RowRange) [][]int {
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	expTask := make([][]int, len(ranges))
	for c := range expTask {
		expTask[c] = make([]int, R)
	}
	unpackDeps := make([][]int, R) // fallback mode: all unpack ids per rank
	for c, rr := range ranges {
		rr := rr
		for j := 0; j < R; j++ {
			j := j
			unpack := p.Add(fmt.Sprintf("U%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(w.stagingPool(), recv[j], ec.xBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, false)
					return nil
				}, dispIDs[c])
			if !s.chunked {
				unpackDeps[j] = append(unpackDeps[j], unpack)
				continue
			}
			expTask[c][j] = p.Add(fmt.Sprintf("E%d[%d]", c, j), KindExpert, computeStream(j),
				w.expertEst(j, rr.Len()*R), func() error {
					for el := 0; el < eg; el++ {
						cc := ec.ccs[j][el]
						ce := w.expert(j, el).(ChunkedExpert)
						for i := 0; i < R; i++ {
							ce.ForwardChunk(cc, i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
	}
	if !s.chunked {
		for j := 0; j < R; j++ {
			j := j
			id := p.Add(fmt.Sprintf("E[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, tpad), func() error {
					for el := 0; el < eg; el++ {
						in := expertView(ec.xBlocks[j], el, tpad, mdim)
						out := expertView(ec.outBlocks[j], el, tpad, mdim)
						ex := w.expert(j, el)
						if ie, ok := ex.(IntoExpert); ok {
							ec.expCaches[j][el] = ie.ForwardInto(in, out)
							continue
						}
						y, c := ex.Forward(in)
						ec.expCaches[j][el] = c
						copy(out.Data(), y.Data())
					}
					return nil
				}, unpackDeps[j]...)
			for c := range expTask {
				expTask[c][j] = id
			}
		}
	}
	return expTask
}

// emitCombine adds the combine-side tasks for chunk c: per-rank pack of
// the expert outputs into wire order (behind that rank's expert task for
// the chunk), the chunk's combine AlltoAll on the shared inter stream, and
// per-rank landing of the arrivals in the global padded combine buffer.
func (s *epStrategy) emitCombine(w *World, p *runtime.Plan, ec *epCache, cache *WorldCache, combinedPad *tensor.Tensor,
	csend, crecv [][]float64, dims comm.BlockDims, rr comm.RowRange, c int, expDone []int) {
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	packIDs := make([]int, R)
	for j := 0; j < R; j++ {
		j := j
		packIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
			estElems(R*eg*rr.Len()*mdim), func() error {
				xferLocal(w.stagingPool(), csend[j], ec.outBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, true)
				return nil
			}, expDone[j])
	}
	comb := p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
		estElems(R*R*eg*rr.Len()*mdim), s.a2aTask(w, csend, crecv, dims, rr), packIDs...)
	for i := 0; i < R; i++ {
		i := i
		p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
			estElems(R*eg*rr.Len()*mdim), func() error {
				xferGlobal(w.stagingPool(), crecv[i], combinedPad.Data(), R, eg, mdim, spad, tpad, i, rr, false)
				return nil
			}, comb)
	}
}

// BuildBackward implements ParallelStrategy.
func (s *epStrategy) BuildBackward(w *World, p *runtime.Plan, cache *WorldCache, dpad, dScatteredPad *tensor.Tensor) {
	ec := cache.sc.(*epCache)
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksBwd)
	dims := comm.BlockDims{Rows: spad, Width: eg * mdim}
	blk := dims.Elems()

	dyBlocks := rankBlocks(R, eg, tpad, mdim)
	dxBlocks := rankBlocks(R, eg, tpad, mdim)
	gsend := wireBuffers(R, R*blk)
	grecv := wireBuffers(R, R*blk)
	dsend := wireBuffers(R, R*blk)
	drecv := wireBuffers(R, R*blk)

	dpd := dpad.Data()

	// Phase 1 — pack + combine-gradient AlltoAll for every chunk (the
	// adjoint of the forward combine), issued back to back on the inter
	// stream like the forward dispatches: the same Fig. 3c/d ordering,
	// here "all C, then all D", matching core.buildBackwardLayer.
	combIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), gsend[i], dpd, R, eg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		combIDs[c] = p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), s.a2aTask(w, gsend, grecv, dims, rr), packIDs...)
	}

	// Gradient-sync emit point 0: AllReduce slices enqueued here run on the
	// inter stream after the combine chain, in the slack while the expert
	// chunks compute, before the first dispatch-gradient AlltoAll.
	if w.sync != nil {
		w.sync.BeginLayer(len(ranges) + 1)
		w.sync.EmitAt(p, "inter", 0)
	}

	// Phase 2 — unpack + expert backward per chunk (dX rows only; weight
	// gradients wait for phase 4).
	expTask := make([][]int, len(ranges))
	for c := range expTask {
		expTask[c] = make([]int, R)
	}
	unpackDeps := make([][]int, R) // fallback mode
	for c, rr := range ranges {
		rr := rr
		for j := 0; j < R; j++ {
			j := j
			unpack := p.Add(fmt.Sprintf("U%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(w.stagingPool(), grecv[j], dyBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, false)
					return nil
				}, combIDs[c])
			if !s.chunked {
				unpackDeps[j] = append(unpackDeps[j], unpack)
				continue
			}
			expTask[c][j] = p.Add(fmt.Sprintf("E%d[%d]", c, j), KindExpert, computeStream(j),
				w.expertEst(j, 2*rr.Len()*R), func() error {
					for el := 0; el < eg; el++ {
						ce := w.expert(j, el).(ChunkedExpert)
						dyv := expertView(dyBlocks[j], el, tpad, mdim)
						dxv := expertView(dxBlocks[j], el, tpad, mdim)
						for i := 0; i < R; i++ {
							ce.BackwardChunk(ec.ccs[j][el], dyv, dxv, i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
	}
	if !s.chunked {
		for j := 0; j < R; j++ {
			j := j
			id := p.Add(fmt.Sprintf("E[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, 2*tpad), func() error {
					for el := 0; el < eg; el++ {
						ex := w.expert(j, el)
						dyv := expertView(dyBlocks[j], el, tpad, mdim)
						dxv := expertView(dxBlocks[j], el, tpad, mdim)
						if ie, ok := ex.(IntoExpert); ok {
							ie.BackwardInto(ec.expCaches[j][el], dyv, dxv)
							continue
						}
						dxe := ex.Backward(ec.expCaches[j][el], dyv)
						copy(dxv.Data(), dxe.Data())
					}
					return nil
				}, unpackDeps[j]...)
			for c := range expTask {
				expTask[c][j] = id
			}
		}
	}

	// Phase 3 — dX pack + dispatch-gradient AlltoAll + landing per chunk.
	for c, rr := range ranges {
		rr := rr
		dgPackIDs := make([]int, R)
		for j := 0; j < R; j++ {
			j := j
			dgPackIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(w.stagingPool(), dsend[j], dxBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, true)
					return nil
				}, expTask[c][j])
		}
		dgrad := p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), s.a2aTask(w, dsend, drecv, dims, rr), dgPackIDs...)
		// Emit point c+1: slices here trail the c-th dispatch-gradient
		// chunk, overlapping the landing packs and later expert chunks.
		if w.sync != nil {
			w.sync.EmitAt(p, "inter", c+1)
		}
		for i := 0; i < R; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), drecv[i], dScatteredPad.Data(), R, eg, mdim, spad, tpad, i, rr, false)
					return nil
				}, dgrad)
		}
	}

	// Phase 4 — deferred full-block parameter-gradient reductions, off the
	// communication critical path (§4.1's W-grad tasks). The last expert
	// chunk on a rank implies every earlier one (stream order).
	if s.chunked {
		for j := 0; j < R; j++ {
			j := j
			p.Add(fmt.Sprintf("W[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, tpad), func() error {
					for el := 0; el < eg; el++ {
						ce := w.expert(j, el).(ChunkedExpert)
						ce.FinishBackward(ec.ccs[j][el], expertView(dyBlocks[j], el, tpad, mdim))
					}
					return nil
				}, expTask[len(ranges)-1][j])
		}
	}
}

// denseSlotsStrategy runs dense (SoftMoE) plans through the EP pipeline
// chunked over expert slots instead of token rows. A dense plan's
// (E, T, M) scattered buffer carries convex token mixtures in its slot
// rows; those rows shard, dispatch, compute and combine exactly like hard
// slots — the token mixing itself lives in the replicated gate/order
// prolog and epilog, outside the pipeline. Lifting the old "world
// supports hard routing only" rejection is therefore a plan-validation
// change, not a new data path: the schedules are the EP ones over slot
// rows.
type denseSlotsStrategy struct {
	epStrategy
}

// Name implements ParallelStrategy.
func (s *denseSlotsStrategy) Name() Strategy { return StrategyDenseSlots }

// PlanCheck implements ParallelStrategy.
func (s *denseSlotsStrategy) PlanCheck(plan *DispatchPlan) error {
	if !plan.IsDense() {
		return fmt.Errorf("moe: strategy %q requires a dense (SoftMoE) routing plan; hard top-k gates run under strategy %q or %q",
			StrategyDenseSlots, StrategyEP, StrategyESP)
	}
	return nil
}

package moe

import (
	"fmt"
	"testing"

	"repro/internal/gradsync"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// stepStack builds L identical-seeded layers (per gate construction in
// worldLayer) wrapped in Worlds. Rebuilding with the same arguments
// always yields bit-identical initial parameters.
func stepStack(t *testing.T, layers, ranks, chunks int, wrap bool) []*World {
	t.Helper()
	ws := make([]*World, layers)
	for i := 0; i < layers; i++ {
		l := worldLayer(t, "gshard", TutelOrder{}, false, wrap)
		w, err := NewWorld(l, WorldConfig{Ranks: ranks, ChunksFwd: chunks})
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return ws
}

// refStep runs the sequential single-rank reference: forward/backward
// through L MOELayers and an SGD step, returning the flattened post-step
// parameters in the stack's GradElems layout.
func refStep(t *testing.T, layers []*MOELayer, x, dy *tensor.Tensor, lr float64) []float64 {
	t.Helper()
	caches := make([]*LayerCache, len(layers))
	cur := x
	for i, l := range layers {
		l.ZeroGrad()
		y, c, err := l.Forward(cur, false)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
		cur = y
	}
	dcur := dy
	for i := len(layers) - 1; i >= 0; i-- {
		dx, err := layers[i].Backward(caches[i], dcur)
		if err != nil {
			t.Fatal(err)
		}
		dcur = dx
	}
	var flat []float64
	for _, l := range layers {
		for _, p := range l.Params() {
			wd, gd := p.W.Data(), p.G.Data()
			for k := range wd {
				flat = append(flat, wd[k]-lr*gd[k])
			}
		}
	}
	return flat
}

// TestWorldStepBitIdentical is the §5 acceptance matrix: World.Step (via
// StepWorlds) must leave every rank with bit-identical post-step
// parameter replicas — equal across ranks, across all three strategies,
// across (R, r), and equal to the sequential single-rank reference step.
// The token count makes the per-expert capacity (30) indivisible by R=4,
// exercising the slot-padding path.
func TestWorldStepBitIdentical(t *testing.T) {
	const layers, lr = 2, 0.05
	x := tensor.RandN(xrand.New(61), 1, 96, 32)
	dy := tensor.RandN(xrand.New(62), 1, 96, 32)

	refLayers := make([]*MOELayer, layers)
	for i := range refLayers {
		refLayers[i] = worldLayer(t, "gshard", TutelOrder{}, false, false)
	}
	want := refStep(t, refLayers, x, dy, lr)

	strategies := []gradsync.Strategy{
		gradsync.StrategyFSMoE, gradsync.StrategyFixedChunk, gradsync.StrategyNoOverlap,
	}
	for _, ranks := range []int{1, 4} {
		for _, chunks := range []int{1, 3} {
			for _, strat := range strategies {
				label := fmt.Sprintf("R=%d r=%d strategy=%s", ranks, chunks, strat)
				ws := stepStack(t, layers, ranks, chunks, false)
				res, err := StepWorlds(ws, x, dy, StepConfig{
					LR: lr, Strategy: strat, ChunkBytes: 64 << 10, Slices: 3,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(res.RankParams) != ranks {
					t.Fatalf("%s: %d replicas, want %d", label, len(res.RankParams), ranks)
				}
				for r := 1; r < ranks; r++ {
					for k := range res.RankParams[0] {
						if res.RankParams[r][k] != res.RankParams[0][k] {
							t.Fatalf("%s: rank %d param %d diverges from rank 0", label, r, k)
						}
					}
				}
				if len(res.RankParams[0]) != len(want) {
					t.Fatalf("%s: %d params, reference has %d", label, len(res.RankParams[0]), len(want))
				}
				for k := range want {
					if res.RankParams[0][k] != want[k] {
						t.Fatalf("%s: param %d = %v, reference %v", label, k, res.RankParams[0][k], want[k])
					}
				}
				total := res.Report.HiddenBytes + res.Report.TailBytes
				if total != res.Report.TotalBytes {
					t.Fatalf("%s: synced %v of %v bytes", label, total, res.Report.TotalBytes)
				}
			}
		}
	}
}

// TestWorldStepFallbackExperts: the whole-block fallback path (custom
// experts without the chunked contract) steps to the same parameters.
func TestWorldStepFallbackExperts(t *testing.T) {
	const lr = 0.1
	x := tensor.RandN(xrand.New(71), 1, 96, 32)
	dy := tensor.RandN(xrand.New(72), 1, 96, 32)
	ref := []*MOELayer{worldLayer(t, "gshard", TutelOrder{}, false, true)}
	want := refStep(t, ref, x, dy, lr)
	ws := stepStack(t, 1, 4, 2, true)
	if ws[0].Chunked() {
		t.Fatal("wrapped experts must route through the fallback path")
	}
	res, err := ws[0].Step(x, dy, StepConfig{LR: lr})
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if res.RankParams[0][k] != want[k] {
			t.Fatalf("fallback param %d = %v, reference %v", k, res.RankParams[0][k], want[k])
		}
	}
}

// TestWorldStepOverlapStructure: with the adaptive strategy over multiple
// layers, AllReduce tasks must actually appear inside earlier layers'
// backward plans, interleaved on the inter stream — not only in the tail.
func TestWorldStepOverlapStructure(t *testing.T) {
	const layers = 3
	x := tensor.RandN(xrand.New(81), 1, 96, 32)
	dy := tensor.RandN(xrand.New(82), 1, 96, 32)
	ws := stepStack(t, layers, 4, 2, false)
	res, err := StepWorlds(ws, x, dy, StepConfig{LR: 0.01, Strategy: gradsync.StrategyFSMoE})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HiddenBytes <= 0 {
		t.Fatalf("adaptive step hid nothing: %+v", res.Report)
	}
	arTasks := 0
	for _, tr := range res.Traces {
		for _, iv := range tr.Intervals {
			if iv.Task.Kind == gradsync.KindAllReduce {
				if iv.Task.Stream != "inter" {
					t.Fatalf("AllReduce slice on stream %q, want inter", iv.Task.Stream)
				}
				arTasks++
			}
		}
	}
	if arTasks == 0 {
		t.Fatal("no AllReduce tasks embedded in any backward plan")
	}
	if arTasks != res.Report.Slices {
		t.Fatalf("%d AllReduce tasks in traces, report says %d", arTasks, res.Report.Slices)
	}
	// The no-overlap strategy on an identical stack must expose everything.
	ws2 := stepStack(t, layers, 4, 2, false)
	res2, err := StepWorlds(ws2, x, dy, StepConfig{LR: 0.01, Strategy: gradsync.StrategyNoOverlap})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.HiddenBytes != 0 || res2.Report.TailBytes != res2.Report.TotalBytes {
		t.Fatalf("no-overlap report: %+v", res2.Report)
	}
}

// TestSyncWorlds: the blocking entry point reconstructs the accumulated
// layer gradients bit-exactly on every rank.
func TestSyncWorlds(t *testing.T) {
	x := tensor.RandN(xrand.New(91), 1, 96, 32)
	dy := tensor.RandN(xrand.New(92), 1, 96, 32)
	ws := stepStack(t, 1, 4, 2, false)
	w := ws[0]
	w.layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	rep, err := SyncWorlds(ws, StepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, p := range w.layer.Params() {
		want = append(want, p.G.Data()...)
	}
	for r, g := range rep.LayerGrads[0] {
		for k := range want {
			if g[k] != want[k] {
				t.Fatalf("rank %d grad %d = %v, accumulated %v", r, k, g[k], want[k])
			}
		}
	}
	if rep.Report.TailBytes != rep.Report.TotalBytes {
		t.Fatalf("standalone sync must be all tail: %+v", rep.Report)
	}
}

// TestStepScopesExecutorAndTrainMode: Step's sequential-executor override
// is scoped to the step (the caller's mode is restored), every rank still
// agrees within a run, and the Train knob reaches the gate.
func TestStepScopesExecutorAndTrainMode(t *testing.T) {
	x := tensor.RandN(xrand.New(97), 1, 96, 32)
	dy := tensor.RandN(xrand.New(98), 1, 96, 32)
	ws := stepStack(t, 2, 4, 2, false)
	ws[0].SetSequential(false)
	ws[1].SetSequential(true)
	res, err := StepWorlds(ws, x, dy, StepConfig{LR: 0.01, Sequential: true, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].seq || !ws[1].seq {
		t.Fatal("step must restore each world's executor mode")
	}
	for r := 1; r < len(res.RankParams); r++ {
		for k := range res.RankParams[0] {
			if res.RankParams[r][k] != res.RankParams[0][k] {
				t.Fatalf("train-mode step: rank %d param %d diverges", r, k)
			}
		}
	}
}

// TestStepWorldsRejects covers step validation.
func TestStepWorldsRejects(t *testing.T) {
	x := tensor.RandN(xrand.New(95), 1, 96, 32)
	dy := tensor.RandN(xrand.New(96), 1, 96, 32)
	if _, err := StepWorlds(nil, x, dy, StepConfig{}); err == nil {
		t.Fatal("empty stack must fail")
	}
	mixed := append(stepStack(t, 1, 4, 1, false), stepStack(t, 1, 2, 1, false)...)
	if _, err := StepWorlds(mixed, x, dy, StepConfig{}); err == nil {
		t.Fatal("mismatched rank counts must fail")
	}
	ws := stepStack(t, 1, 4, 1, false)
	if _, err := StepWorlds(ws, x, dy, StepConfig{Strategy: "warp-drive"}); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

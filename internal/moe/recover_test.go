package moe

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestWorldSnapshotRestore: Snapshot/Restore round-trips the full mutable
// training state — parameters, counters, gate RNG — and a restored world
// replays the snapshot timeline bit-for-bit even after later steps
// mutated everything.
func TestWorldSnapshotRestore(t *testing.T) {
	x := tensor.RandN(xrand.New(201), 1, 96, 32)
	dy := tensor.RandN(xrand.New(202), 1, 96, 32)
	cfg := StepConfig{LR: 0.05, Train: true, ChunkBytes: 64 << 10, Slices: 3}

	w := stepStack(t, 1, 4, 2, false)[0]
	if _, err := w.Step(x, dy, cfg); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if snap.Steps != 1 {
		t.Fatalf("snapshot Steps = %d, want 1", snap.Steps)
	}
	if len(snap.GateRNG) != 1 {
		t.Fatal("gshard gate RNG state not captured")
	}

	// Two more (noisy, so RNG-consuming) steps from the snapshot point,
	// recording the post-step replicas.
	r1, err := w.Step(x, dy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Step(x, dy, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Roll back and replay: the same two steps must be bit-identical —
	// parameters AND the gate's noise stream were restored.
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if w.steps != 1 {
		t.Fatalf("restored steps = %d, want 1", w.steps)
	}
	for i, want := range []*StepResult{r1, r2} {
		got, err := w.Step(x, dy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.RankParams[0] {
			if got.RankParams[0][k] != want.RankParams[0][k] {
				t.Fatalf("replayed step %d param %d diverges from original timeline", i, k)
			}
		}
	}

	// A shape-mismatched snapshot is rejected wholesale, not half-applied.
	bad := w.Snapshot()
	bad.Experts = bad.Experts[:len(bad.Experts)-1]
	if err := w.Restore(bad); err == nil {
		t.Fatal("restore of a mismatched snapshot must fail")
	}
}

// TestWorldStepCheckpointCadence: StepConfig.Checkpoint writes snapshots
// on the configured cadence through the atomic manager.
func TestWorldStepCheckpointCadence(t *testing.T) {
	x := tensor.RandN(xrand.New(203), 1, 96, 32)
	dy := tensor.RandN(xrand.New(204), 1, 96, 32)
	mgr := &ckpt.Manager{Dir: t.TempDir()}
	w := stepStack(t, 1, 4, 2, false)[0]
	cfg := StepConfig{LR: 0.05, ChunkBytes: 64 << 10, Slices: 3, Checkpoint: mgr, CheckpointEvery: 2}
	for s := 0; s < 4; s++ {
		res, err := w.Step(x, dy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if wantPath := s%2 == 1; (res.CheckpointPath != "") != wantPath {
			t.Fatalf("step %d: CheckpointPath = %q, cadence is every 2nd step", s, res.CheckpointPath)
		}
	}
	paths, err := mgr.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("%d checkpoints on disk, want 2 (steps 2 and 4)", len(paths))
	}
	snap, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 4 {
		t.Fatalf("latest checkpoint is step %d, want 4", snap.Step)
	}
}

// TestWorldRecoverBitIdentical is the headline elastic-recovery contract:
// kill a rank mid-run under chaos injection, recover the stack from the
// latest checkpoint onto the surviving topology, keep training — and the
// recovered run is bit-identical to a reference run restarted from the
// same checkpoint on the same surviving topology.
func TestWorldRecoverBitIdentical(t *testing.T) {
	const layers, ranks, lr = 2, 4, 0.05
	x := tensor.RandN(xrand.New(205), 1, 96, 32)
	dy := tensor.RandN(xrand.New(206), 1, 96, 32)
	mgr := &ckpt.Manager{Dir: t.TempDir()}
	cfg := StepConfig{LR: lr, Train: true, ChunkBytes: 64 << 10, Slices: 3}

	// Two healthy checkpointed steps (noisy gating on, so recovery must
	// restore the gates' RNG streams too).
	ws := stepStack(t, layers, ranks, 2, false)
	ckptCfg := cfg
	ckptCfg.Checkpoint = mgr
	for s := 0; s < 2; s++ {
		if _, err := StepWorlds(ws, x, dy, ckptCfg); err != nil {
			t.Fatal(err)
		}
	}

	// Kill rank 1 permanently; the next step survives on the degraded path
	// (checkpointing off, so the pre-failure snapshot stays latest).
	ws[0].SetFaultPlan(fault.New(fault.Spec{Seed: 7, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	res, err := StepWorlds(ws, x, dy, cfg)
	if err != nil {
		t.Fatalf("degraded step must complete, got %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("rank-down never fired")
	}

	// Recover: roll back to the checkpoint, shrink onto the survivors.
	snap, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 2 {
		t.Fatalf("latest checkpoint is step %d, want 2", snap.Step)
	}
	reports, err := RecoverWorlds(ws, snap, RecoveryPolicy{Mode: RecoverShrink})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != layers {
		t.Fatalf("%d recovery reports, want %d", len(reports), layers)
	}
	for i, rep := range reports {
		if rep.DownRank != 1 || rep.OldRanks != ranks || rep.NewRanks != 2 {
			t.Fatalf("layer %d report = %+v, want down=1 4→2 ranks", i, rep)
		}
		if rep.RestoredStep != 2 {
			t.Fatalf("layer %d restored to step %d, want 2", i, rep.RestoredStep)
		}
		if len(rep.MovedExperts) == 0 || rep.Traffic.IntraMessages+rep.Traffic.InterMessages == 0 {
			t.Fatalf("layer %d moved no expert weights: %+v", i, rep)
		}
		if rep.RecoveryMS <= 0 {
			t.Fatalf("layer %d RecoveryMS not measured", i)
		}
	}
	for _, w := range ws {
		if w.Ranks() != 2 {
			t.Fatalf("recovered world has %d ranks, want 2", w.Ranks())
		}
		for r, ok := range w.Health() {
			if !ok {
				t.Fatalf("recovered world still reports rank %d down", r)
			}
		}
		if w.LastDegraded() != nil || w.LastPlan() != nil || w.LastTrace() != nil {
			t.Fatal("recovery left degraded/plan/trace residue")
		}
	}

	// Reference: a fresh stack built directly at the surviving topology and
	// restored from the very same checkpoint.
	ref := stepStack(t, layers, 2, 2, false)
	if err := RestoreWorlds(ref, snap); err != nil {
		t.Fatal(err)
	}

	// Keep training both; every post-recovery step must match bit-for-bit.
	for s := 0; s < 3; s++ {
		got, err := StepWorlds(ws, x, dy, cfg)
		if err != nil {
			t.Fatalf("post-recovery step %d: %v", s, err)
		}
		want, err := StepWorlds(ref, x, dy, cfg)
		if err != nil {
			t.Fatalf("reference step %d: %v", s, err)
		}
		if got.Y.MaxAbsDiff(want.Y) != 0 {
			t.Fatalf("step %d: recovered output diverges from reference restart", s)
		}
		if len(got.RankParams) != len(want.RankParams) {
			t.Fatalf("step %d: %d vs %d replicas", s, len(got.RankParams), len(want.RankParams))
		}
		for r := range want.RankParams {
			for k := range want.RankParams[r] {
				if got.RankParams[r][k] != want.RankParams[r][k] {
					t.Fatalf("step %d: rank %d param %d diverges from reference restart", s, r, k)
				}
			}
		}
	}
}

// TestWorldRecoverRejoin: rejoin mode keeps the rank count — the dead
// rank is replaced and its expert shard restored from the checkpoint —
// and the recovered world is bit-identical to the sequential reference.
func TestWorldRecoverRejoin(t *testing.T) {
	x := tensor.RandN(xrand.New(207), 1, 96, 32)
	dy := tensor.RandN(xrand.New(208), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()

	w.SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Recover(snap, RecoveryPolicy{Mode: RecoverRejoin})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OldRanks != 4 || rep.NewRanks != 4 {
		t.Fatalf("rejoin changed the rank count: %+v", rep)
	}
	if fmt.Sprint(rep.MovedExperts) != fmt.Sprint([]int{2, 3}) {
		t.Fatalf("MovedExperts = %v, want the dead rank's shard [2 3]", rep.MovedExperts)
	}

	// The replacement rank steps at full strength, bit-identical to the
	// sequential reference on the restored parameters.
	want := runSequentialLayer(t, worldLayer(t, "gshard", TutelOrder{}, false, false), x, dy)
	layer.ZeroGrad()
	y, cache2, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := w.Backward(cache2, dy)
	if err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "post-rejoin", want, worldSnapshot{y: y, dx: dx, grads: snapGrads(layer)})
}

// TestWorldRecoverHybridFallsBackToEP: a hybrid EP×ESP world recovers by
// conservatively rebuilding as pure EP on the survivors, and the fallback
// still steps bit-identically to the sequential reference.
func TestWorldRecoverHybridFallsBackToEP(t *testing.T) {
	x := tensor.RandN(xrand.New(209), 1, 96, 32)
	dy := tensor.RandN(xrand.New(210), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	w.SetFaultPlan(fault.New(fault.Spec{Seed: 11, Down: &fault.Down{Rank: 2, Kind: KindExpert}}))
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Recover(snap, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OldStrategy != StrategyHybrid || rep.NewStrategy != StrategyEP {
		t.Fatalf("strategy transition = %s→%s, want hybrid→EP", rep.OldStrategy, rep.NewStrategy)
	}
	if rep.NewRanks != 2 || w.Ranks() != 2 || w.Strategy() != StrategyEP || w.GroupSize() != 0 {
		t.Fatalf("fallback topology = R=%d %s g=%d, want R=2 EP g=0", w.Ranks(), w.Strategy(), w.GroupSize())
	}

	want := runSequentialLayer(t, worldLayer(t, "gshard", TutelOrder{}, false, false), x, dy)
	layer.ZeroGrad()
	y, cache2, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := w.Backward(cache2, dy)
	if err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "post-hybrid-fallback", want, worldSnapshot{y: y, dx: dx, grads: snapGrads(layer)})
}

// TestWorldRecoverMatchesResetHealth is the residue audit: elastic
// recovery and a manual ResetHealth must leave the identical health
// surface — down cleared, no degraded report, no aborted plan or trace
// lingering from the failed pass.
func TestWorldRecoverMatchesResetHealth(t *testing.T) {
	x := tensor.RandN(xrand.New(211), 1, 96, 32)
	dy := tensor.RandN(xrand.New(212), 1, 96, 32)
	surface := func(w *World) [4]bool {
		healthy := true
		for _, ok := range w.Health() {
			healthy = healthy && ok
		}
		return [4]bool{healthy, w.LastDegraded() == nil, w.LastPlan() == nil, w.LastTrace() == nil}
	}
	degrade := func() *World {
		layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
		w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
		layer.ZeroGrad()
		_, cache, err := w.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Backward(cache, dy); err != nil {
			t.Fatal(err)
		}
		return w
	}

	manual := degrade()
	snap := manual.Snapshot()
	manual.SetFaultPlan(nil)
	manual.ResetHealth()

	recovered := degrade()
	if _, err := recovered.Recover(snap, RecoveryPolicy{Mode: RecoverRejoin}); err != nil {
		t.Fatal(err)
	}

	want := [4]bool{true, true, true, true}
	if got := surface(manual); got != want {
		t.Fatalf("ResetHealth leaves residue: healthy/degraded-nil/plan-nil/trace-nil = %v", got)
	}
	if got := surface(recovered); got != want {
		t.Fatalf("Recover leaves residue: healthy/degraded-nil/plan-nil/trace-nil = %v", got)
	}
}

// TestWorldRecoverGuards: recovery demands an actual failure, a matching
// snapshot, and a loadable checkpoint — and a corrupted checkpoint file
// surfaces the typed ckpt error instead of garbage state.
func TestWorldRecoverGuards(t *testing.T) {
	x := tensor.RandN(xrand.New(213), 1, 96, 32)
	dy := tensor.RandN(xrand.New(214), 1, 96, 32)
	ws := stepStack(t, 1, 4, 2, false)
	snap := SnapshotWorlds(ws)

	// No rank is down: recovery refuses.
	if _, err := RecoverWorlds(ws, snap, RecoveryPolicy{}); err == nil {
		t.Fatal("recovery without a failure must error")
	}
	if _, err := ws[0].Recover(&snap.Worlds[0], RecoveryPolicy{}); err == nil {
		t.Fatal("single-world recovery without a failure must error")
	}

	// Down a rank, then hand recovery a stack-shape-mismatched snapshot.
	ws[0].SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	if _, err := StepWorlds(ws, x, dy, StepConfig{LR: 0.05, ChunkBytes: 64 << 10, Slices: 3}); err != nil {
		t.Fatal(err)
	}
	bad := &ckpt.Snapshot{Worlds: append(append([]ckpt.WorldState{}, snap.Worlds...), snap.Worlds...)}
	if _, err := RecoverWorlds(ws, bad, RecoveryPolicy{}); err == nil {
		t.Fatal("recovery with a mismatched snapshot must error")
	}

	// A corrupted checkpoint file fails loudly with the typed error before
	// any recovery can consume it.
	mgr := &ckpt.Manager{Dir: t.TempDir()}
	path, err := mgr.Save(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadLatest(); !errors.Is(err, ckpt.ErrChecksum) {
		t.Fatalf("corrupted checkpoint load = %v, want ErrChecksum", err)
	}
}

// TestWorldRecoverTelemetry: the step after a recovery carries the
// recovery tally and MTTR in its StepMetrics.
func TestWorldRecoverTelemetry(t *testing.T) {
	x := tensor.RandN(xrand.New(215), 1, 96, 32)
	dy := tensor.RandN(xrand.New(216), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Sink: telemetry.SinkFunc(func(*telemetry.StepMetrics) {})})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StepConfig{LR: 0.05, ChunkBytes: 64 << 10, Slices: 3}
	snap := w.Snapshot()
	w.SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	if _, err := w.Step(x, dy, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recover(snap, RecoveryPolicy{}); err != nil {
		t.Fatal(err)
	}
	res, err := w.Step(x, dy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Metrics.Recoveries != 1 || res.Metrics.RecoveryMS <= 0 {
		t.Fatalf("post-recovery StepMetrics = %+v, want 1 recovery with measured MTTR", res.Metrics)
	}
	res2, err := w.Step(x, dy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Recoveries != 0 {
		t.Fatalf("recovery tally leaked into the following step: %+v", res2.Metrics)
	}
}

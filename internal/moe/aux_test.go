package moe

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestAuxBackwardNumeric checks ∂AuxLoss/∂W_g against central differences
// (the first-choice counts are piecewise constant, so away from routing
// boundaries the analytic gradient is exact).
func TestAuxBackwardNumeric(t *testing.T) {
	rng := xrand.New(5)
	g, err := NewGShardGate(GateConfig{Experts: testE, TopK: testK, Factor: 0}, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(6), 1, testN, testM)

	auxOf := func() float64 {
		plan, _, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		return plan.AuxLoss
	}
	zeroGrads(g.Params())
	_, rc, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx := g.AuxBackward(rc, 1.0)

	wg := g.Params()[0]
	const eps = 1e-6
	for i := 0; i < wg.W.Size(); i += 7 {
		orig := wg.W.Data()[i]
		wg.W.Data()[i] = orig + eps
		up := auxOf()
		wg.W.Data()[i] = orig - eps
		down := auxOf()
		wg.W.Data()[i] = orig
		num := (up - down) / (2 * eps)
		ana := wg.G.Data()[i]
		if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("aux wg grad[%d]: numeric %v vs analytic %v", i, num, ana)
		}
	}
	// Input gradient too.
	for i := 0; i < x.Size(); i += 11 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := auxOf()
		x.Data()[i] = orig - eps
		down := auxOf()
		x.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("aux dx[%d]: numeric %v vs analytic %v", i, num, dx.Data()[i])
		}
	}
}

// TestAuxLossTrainingBalancesLoad: starting from a gate whose weights send
// nearly every token to one expert, descending the auxiliary loss alone
// must spread the load — the purpose of the §2.1 balancing term.
func TestAuxLossTrainingBalancesLoad(t *testing.T) {
	rng := xrand.New(9)
	g, err := NewGShardGate(GateConfig{Experts: 4, TopK: 1, Factor: 0}, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Bias the gate toward expert 0: shrink the competing columns so the
	// inflated expert-0 scores win for most tokens (≈2× the balanced
	// 16/64 share).
	wg := g.Params()[0]
	for i := 0; i < wg.W.Dim(0); i++ {
		wg.W.Set(wg.W.At(i, 0)+2.0, i, 0)
		for e := 1; e < 4; e++ {
			wg.W.Set(wg.W.At(i, e)*0.3, i, e)
		}
	}
	x := tensor.RandN(xrand.New(10), 1, 64, testM)

	maxLoad := func() (int, float64) {
		plan, _, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 4)
		for e := range plan.SlotToken {
			for _, tok := range plan.SlotToken[e] {
				if tok >= 0 {
					counts[e]++
				}
			}
		}
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return m, plan.AuxLoss
	}
	before, auxBefore := maxLoad()
	if before < 30 {
		t.Fatalf("setup failed: expected an imbalanced gate, max load %d/64", before)
	}
	const lr = 0.5
	for step := 0; step < 100; step++ {
		zeroGrads(g.Params())
		_, rc, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		g.AuxBackward(rc, 1.0)
		for _, p := range g.Params() {
			w, gr := p.W.Data(), p.G.Data()
			for i := range w {
				w[i] -= lr * gr[i]
			}
		}
	}
	after, auxAfter := maxLoad()
	if after >= before {
		t.Fatalf("aux training did not rebalance: max load %d -> %d", before, after)
	}
	if auxAfter >= auxBefore {
		t.Fatalf("aux loss did not decrease: %v -> %v", auxBefore, auxAfter)
	}
	if after > 26 {
		t.Fatalf("load still imbalanced after training: %d/64 on one expert", after)
	}
}

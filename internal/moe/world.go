package moe

import (
	"context"
	"errors"
	"fmt"
	"strings"
	stdsync "sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/gradsync"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// World executes one MOELayer across R in-process ranks over real comm
// collectives, driven through the stream runtime — the executable
// counterpart of the schedules internal/core builds for the simulator
// (§4.1). World itself owns only what every parallel scheme shares: the
// gate/order prolog and epilog, slot padding, plan execution and trace
// capture. How the layer's work is split across ranks — which collectives
// move what, on which streams, interleaved how — is delegated entirely to
// a ParallelStrategy (strategy.go): pure expert parallelism (EP), sharded
// expert compute with AllGather/ReduceScatter stages (ESP), or the dense
// slot-chunked SoftMoE scheme (DenseSlots).
//
// Data layout: the gate and order run once on the global batch (they are
// replicated in expert-parallel training); the resulting (E, T, M)
// expert-major tensor is sharded by slot rows — rank i owns rows
// [i·S, (i+1)·S) of every expert's block, S = ⌈T/R⌉. What happens to those
// shards from there is the strategy's business; every strategy is
// bit-identical to MOELayer.Forward/Backward at any (R, r).
type World struct {
	layer *MOELayer
	cfg   WorldConfig
	egrp  int // experts per rank (expert-sharding owner groups)
	strat ParallelStrategy

	// Resource governance: the planned worker split across live streams.
	// Each rank's compute stream owns a scoped tensor pool of
	// computeWorkers workers and runs on an OS-thread-pinned goroutine;
	// the communication streams (pack/unpack staging) share one small
	// commPool. scoped=false falls back to the process-default pool
	// everywhere — the oversubscription baseline benchmarks compare
	// against.
	scoped         bool
	computeWorkers int
	commWorkers    int
	computePools   []*tensor.Pool
	commPool       *tensor.Pool

	seq      bool // execute plans sequentially (no-overlap baseline)
	sync     BackwardSyncer
	statsMu  stdsync.Mutex
	stats    comm.Stats
	lastPlan *runtime.Plan
	lastTr   *sim.Trace

	// Fault tolerance: an optional seeded injector threaded into every
	// executed plan (and, via collGuard, into the collectives themselves),
	// the retry policy for transient collective failures, an optional
	// per-plan deadline, and the world's rank-health state. down is the
	// permanently failed rank (-1 while all ranks are healthy); once a rank
	// is down every pass runs on the degraded path until ResetHealth.
	faults   *fault.Plan
	retry    runtime.RetryPolicy
	deadline time.Duration
	collOps  int // collectives planned so far: deterministic guard op ids
	down     int
	degraded *DegradedResult
	closed   bool

	steps int // completed training steps on this world (telemetry ordinal)

	// recov accumulates elastic-recovery reports (recover.go) until the
	// next completed step drains them into telemetry.
	recov []*RecoveryReport
}

// BackwardSyncer receives inter-stream emit points while a backward plan
// is under construction — the executable seam for §5's Gradient-AllReduce
// overlap. BeginLayer announces how many points the plan will offer;
// EmitAt may then append tasks to the plan on the shared inter stream at
// each point. Every strategy offers point 0 in the slack before its first
// outbound gradient collective and point c ≥ 1 after the c-th one, so
// emitted tasks contend with the layer's own inter-node chunks exactly as
// §5 budgets for (under ESP the inter stream carries no AlltoAll at all,
// so the slices overlap the intra-stream AllGather/ReduceScatter freely —
// the §4 inter/intra co-scheduling).
type BackwardSyncer interface {
	BeginLayer(points int)
	EmitAt(p *runtime.Plan, stream string, point int)
}

// SetBackwardSyncer installs (or, with nil, removes) the gradient-sync
// hook driven by the next Backward calls.
func (w *World) SetBackwardSyncer(s BackwardSyncer) { w.sync = s }

// WorldConfig configures multi-rank execution.
type WorldConfig struct {
	Ranks       int          // R; the layer's experts are sharded E/R per rank
	ChunksFwd   int          // forward pipeline degree r (<1 means 1)
	ChunksBwd   int          // backward pipeline degree (<1 means ChunksFwd)
	Algo        comm.A2AAlgo // AlltoAll algorithm (default Direct)
	GPUsPerNode int          // node shape for 1DH/2DH and Stats (default Ranks)
	Strategy    Strategy     // parallel scheme (default StrategyEP)
	// GroupSize is the expert-sharding group width g for StrategyHybrid:
	// the R ranks split into R/g dispatch groups of g sharding members.
	// Required (in [1, Ranks], dividing Ranks) when Strategy is
	// StrategyHybrid; ignored by every other strategy.
	GroupSize int

	// Sink, when non-nil, receives one telemetry.StepMetrics per completed
	// training step (Step/StepWorlds). With a nil Sink no metrics are
	// built — the step hot path sees a single nil check and zero
	// additional allocations. When a stack's worlds carry distinct sinks,
	// each distinct sink receives the step's record once.
	Sink telemetry.Sink
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.ChunksFwd < 1 {
		c.ChunksFwd = 1
	}
	if c.ChunksBwd < 1 {
		c.ChunksBwd = c.ChunksFwd
	}
	if c.Algo == "" {
		c.Algo = comm.A2ADirect
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = c.Ranks
	}
	if c.Strategy == "" {
		c.Strategy = StrategyEP
	}
	return c
}

// NewWorld validates the pairing of a layer, a configuration and a
// parallel strategy. Requirements every strategy shares are checked here;
// strategy-specific ones (expert execution contracts, routing kinds) are
// checked by the strategy itself so the error names the strategy and the
// unsupported combination.
func NewWorld(layer *MOELayer, cfg WorldConfig) (*World, error) {
	if layer == nil {
		return nil, fmt.Errorf("moe: world needs a layer")
	}
	cfg = cfg.withDefaults()
	e := len(layer.cfg.Experts)
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("moe: world needs at least one rank, got %d", cfg.Ranks)
	}
	if e%cfg.Ranks != 0 {
		return nil, fmt.Errorf("moe: %d experts not divisible across %d ranks", e, cfg.Ranks)
	}
	if cfg.Ranks%cfg.GPUsPerNode != 0 {
		return nil, fmt.Errorf("moe: %d ranks not divisible into nodes of %d", cfg.Ranks, cfg.GPUsPerNode)
	}
	switch cfg.Algo {
	case comm.A2ADirect, comm.A2A1DH, comm.A2A2DH:
	default:
		// Fail fast: Plan.Execute drains every task even after an error, so
		// a bad algorithm discovered mid-plan would run the whole pipeline
		// on zeroed buffers first.
		return nil, fmt.Errorf("moe: unknown alltoall algorithm %q (valid: %s, %s, %s)",
			cfg.Algo, comm.A2ADirect, comm.A2A1DH, comm.A2A2DH)
	}
	if len(layer.cfg.Hooks) > 0 {
		return nil, fmt.Errorf("moe: world does not support layer hooks (they wrap the monolithic dispatch)")
	}
	if _, ok := layer.disp.(LocalDispatcher); !ok {
		return nil, fmt.Errorf("moe: world replaces the layer dispatcher with real collectives; custom dispatcher %T would be bypassed", layer.disp)
	}
	if layer.seqExperts {
		return nil, fmt.Errorf("moe: world requires provably distinct expert instances (aliased experts cannot be sharded)")
	}
	strat, err := strategyFor(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	if err := strat.Validate(layer, cfg); err != nil {
		return nil, err
	}
	w := &World{layer: layer, cfg: cfg, egrp: e / cfg.Ranks, strat: strat, scoped: true, down: -1}
	// Default retry: transient collective failures get a handful of
	// backed-off attempts; everything else fails fast. Inert until a fault
	// plan is installed — real errors are never classified transient.
	w.retry = runtime.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Jitter:      0.2,
		Kinds:       []string{KindA2A, KindAG, KindRS, gradsync.KindAllReduce},
	}
	w.planResources()
	return w, nil
}

// planResources decides the worker split across the plan's live streams
// from the machine width at construction time: the R compute streams get
// equal scoped pools, and the communication streams share one small
// dedicated allotment for their staging kernels, so nothing fans out onto
// one global queue (the Lina-style compute/comm partition, applied to
// kernel fan-out). Note the allotment caps how wide a staging copy may
// shard, not how many staging streams run at once — each stream still
// executes on its own goroutine, which is the pipeline's structural
// concurrency, not pool oversubscription. The split is a planned
// quantity: every executed plan binds it to its streams, so the measured
// trace reports it alongside the intervals.
func (w *World) planResources() {
	avail := tensor.Workers()
	R := w.cfg.Ranks
	w.commWorkers = 1
	if avail >= 4*R && avail >= 8 {
		w.commWorkers = 2
	}
	w.computeWorkers = (avail - w.commWorkers) / R
	if w.computeWorkers < 1 {
		w.computeWorkers = 1
	}
	w.computePools = make([]*tensor.Pool, R)
	for j := range w.computePools {
		w.computePools[j] = tensor.NewPool(w.computeWorkers)
	}
	w.commPool = tensor.NewPool(w.commWorkers)
}

// computePool returns rank j's scoped compute pool (nil when scoped pools
// are disabled, which designates the process-default pool).
func (w *World) computePool(j int) *tensor.Pool {
	if !w.scoped {
		return nil
	}
	return w.computePools[j]
}

// stagingPool returns the shared communication-staging pool (nil when
// scoped pools are disabled).
func (w *World) stagingPool() *tensor.Pool {
	if !w.scoped {
		return nil
	}
	return w.commPool
}

// SetScopedPools toggles resource governance: true (the default) backs
// each compute stream with its own scoped worker pool, pins compute-stream
// goroutines to OS threads and routes staging through the small comm
// allotment; false reverts every kernel to the process-default pool with
// unpinned streams — the oversubscription baseline. Results are identical
// either way. Takes effect from the next Forward (a forward/backward pair
// must run under one setting: the pools are threaded into the forward
// caches).
func (w *World) SetScopedPools(on bool) { w.scoped = on }

// ResourcePlan reports the planned per-stream worker split: workers per
// compute stream and the shared communication allotment.
func (w *World) ResourcePlan() (computeWorkers, commWorkers int) {
	return w.computeWorkers, w.commWorkers
}

// ErrWorldClosed reports use of a closed World: a second Close, or a
// Forward/Backward after Close. Match it with errors.Is.
var ErrWorldClosed = errors.New("moe: world is closed")

// Close releases the scoped pools' worker goroutines and retires the
// world: subsequent Forward/Backward/Close calls fail with ErrWorldClosed
// instead of stepping on released pools. The world must be idle.
func (w *World) Close() error {
	if w.closed {
		return fmt.Errorf("moe: double close: %w", ErrWorldClosed)
	}
	w.closed = true
	for _, p := range w.computePools {
		p.Close()
	}
	w.commPool.Close()
	return nil
}

// bindStreams records the resource plan on an executable plan: every live
// compute stream is pinned with its scoped worker share; everything else
// (the AlltoAll/AG/RS chains and the per-rank staging streams) carries the
// comm allotment.
func (w *World) bindStreams(p *runtime.Plan) {
	if !w.scoped {
		return
	}
	for _, s := range p.Streams() {
		if strings.HasPrefix(s, "compute:") {
			p.BindStream(s, runtime.Binding{Workers: w.computeWorkers, PinOS: true})
		} else {
			p.BindStream(s, runtime.Binding{Workers: w.commWorkers})
		}
	}
}

// Ranks returns R and Chunked whether the fine-grained (chunk- or
// shard-granular) expert path is in effect (false falls back to
// whole-block expert compute per rank, with the communication still
// chunked).
func (w *World) Ranks() int    { return w.cfg.Ranks }
func (w *World) Chunked() bool { return w.strat.Chunked() }

// Strategy returns the parallel scheme in effect.
func (w *World) Strategy() Strategy { return w.strat.Name() }

// Degrees returns the configured forward and backward pipeline degrees.
func (w *World) Degrees() (fwd, bwd int) { return w.cfg.ChunksFwd, w.cfg.ChunksBwd }

// Sink returns the configured per-step telemetry sink (nil when telemetry
// is disabled).
func (w *World) Sink() telemetry.Sink { return w.cfg.Sink }

// Steps returns the number of completed training steps on this world.
func (w *World) Steps() int { return w.steps }

// GroupSize returns the hybrid EP-group size in effect (0 unless the
// strategy is StrategyHybrid).
func (w *World) GroupSize() int {
	if w.strat.Name() != StrategyHybrid {
		return 0
	}
	return w.cfg.GroupSize
}

// SetSequential switches plan execution to the single-goroutine,
// no-overlap baseline (true) or the pipelined stream executor (false).
// Results are identical either way; only the wall-clock differs.
func (w *World) SetSequential(seq bool) { w.seq = seq }

// Stats returns the cumulative collective traffic of every pass so far.
func (w *World) Stats() comm.Stats { return w.stats }

// LastPlan and LastTrace return the stream plan and measured trace of the
// most recent pass — LastPlan.SimulateWith(runtime.Durations(LastTrace()))
// predicts the pipelined makespan from sequential measurements. Both are
// nil after a pass that ran entirely on the degraded sequential path (no
// stream plan exists for it).
func (w *World) LastPlan() *runtime.Plan { return w.lastPlan }
func (w *World) LastTrace() *sim.Trace   { return w.lastTr }

// SetFaultPlan installs (or, with nil, removes) a seeded fault injector.
// It is threaded into every subsequently executed plan and, through
// per-collective guards, into the comm collectives themselves. Takes
// effect from the next Forward.
func (w *World) SetFaultPlan(fp *fault.Plan) { w.faults = fp }

// SetRetry replaces the default transient-retry policy (4 attempts with
// exponential backoff, collective kinds only).
func (w *World) SetRetry(rp runtime.RetryPolicy) { w.retry = rp }

// SetDeadline bounds each subsequent plan execution: a pass whose plan
// exceeds d is cooperatively canceled and fails with context.DeadlineExceeded
// inside the joined error. Zero removes the deadline.
func (w *World) SetDeadline(d time.Duration) { w.deadline = d }

// Health reports per-rank health; false marks the permanently failed rank
// the world is degraded around.
func (w *World) Health() []bool {
	h := make([]bool, w.cfg.Ranks)
	for i := range h {
		h[i] = i != w.down
	}
	return h
}

// ResetHealth clears the rank-down state, the last degraded report, and
// the aborted pass's stream plan and trace — the "failed worker replaced"
// transition back to full-strength stepping. After ResetHealth the world
// reports exactly the health state elastic recovery leaves behind
// (recover.go), so tooling can treat the two transitions uniformly.
func (w *World) ResetHealth() {
	w.down = -1
	w.degraded = nil
	w.lastPlan = nil
	w.lastTr = nil
}

// LastDegraded returns the degraded-mode report of the most recent pass,
// or nil if the pass ran at full strength.
func (w *World) LastDegraded() *DegradedResult { return w.degraded }

// collGuard mints the fault-injection guard for the next planned
// collective on stream. Guards are created at plan-build time with a
// monotone operation id, so which collectives fail is a deterministic
// function of the fault seed and the sequence of passes, independent of
// stream interleaving. Returns nil (check nothing) when injection is off.
func (w *World) collGuard(stream, kind string) comm.Guard {
	if w.faults == nil {
		return nil
	}
	id := w.collOps
	w.collOps++
	return comm.Guard(w.faults.Guard(stream, kind, id))
}

// WorldCache carries a forward pass's state to Backward. The strategy
// that built the forward plan owns sc.
type WorldCache struct {
	pr         *forwardProlog
	spad, tpad int
	combined   *tensor.Tensor // (E, T, M), the sequential layer's expertOut
	sc         any            // strategy-private forward state
	deg        *degradedState // non-nil when the forward ran degraded
}

// Task kinds in the trace breakdown — aliases of the canonical sim
// vocabulary (sim/vocab.go), matching internal/core's Table 2 strings
// where the operations coincide.
const (
	KindA2A    = sim.KindAlltoAll
	KindAG     = sim.KindAllGather
	KindRS     = sim.KindReduceScatter
	KindExpert = sim.KindExperts
	KindPack   = sim.KindPack // wire-layout (un)packing, the local Order work
)

// streams for rank r; collStream serializes a strategy's intra-node
// collectives (the AG/RS stream of §4's inter/intra co-scheduling).
func intraStream(r int) string   { return fmt.Sprintf("intra:%d", r) }
func computeStream(r int) string { return fmt.Sprintf("compute:%d", r) }

const collStream = "intra"

// verifyPlans gates runtime.Plan.Verify on every plan the World builds: a
// debug flag (off by default — Verify walks the whole task table) tests
// and the benchmarks turn on to catch malformed schedules at construction
// instead of mid-execution.
var verifyPlans atomic.Bool

// SetVerifyPlans toggles static verification of every constructed plan
// before it executes (process-wide).
func SetVerifyPlans(on bool) { verifyPlans.Store(on) }

// run executes a plan under the current mode — threading the fault
// injector, retry policy and deadline in — records it, and returns the
// joined task errors.
func (w *World) run(p *runtime.Plan) error {
	if verifyPlans.Load() {
		if err := p.Verify(); err != nil {
			return fmt.Errorf("moe: plan verification failed: %w", err)
		}
	}
	if w.faults != nil {
		p.SetFaultPlan(w.faults)
	}
	p.SetRetry(w.retry)
	ctx := context.Background()
	if w.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.deadline)
		defer cancel()
	}
	var tr *sim.Trace
	var err error
	if w.seq {
		tr, err = p.ExecuteSequentialCtx(ctx)
	} else {
		tr, err = p.ExecuteCtx(ctx)
	}
	w.lastPlan, w.lastTr = p, tr
	return err
}

// Forward runs the pipelined multi-rank forward pass. Results are
// bit-identical to MOELayer.Forward on the same layer and input under
// every strategy. A permanent rank failure mid-plan does not abort: the
// pass completes on the degraded path (see degraded.go) and LastDegraded
// reports what was lost.
func (w *World) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, *WorldCache, error) {
	if w.closed {
		return nil, nil, fmt.Errorf("moe: forward: %w", ErrWorldClosed)
	}
	w.degraded = nil
	pr, err := w.layer.prolog(x, train)
	if err != nil {
		return nil, nil, err
	}
	if err := w.strat.PlanCheck(pr.plan); err != nil {
		return nil, nil, err
	}
	if w.down >= 0 {
		// The world is already degraded: skip plan construction entirely
		// and run the sequential fallback around the dead rank.
		w.lastPlan, w.lastTr = nil, nil
		return w.degradedForward(pr, 0, fmt.Sprintf("rank %d still down", w.down))
	}
	R, mdim := w.cfg.Ranks, w.layer.cfg.M
	plan := pr.plan
	t := plan.Capacity
	spad := (t + R - 1) / R
	cache := &WorldCache{pr: pr, spad: spad, tpad: spad * R}

	// Padding the scattered tensor once up front lets every strategy's wire
	// transfers share one slot-shard layout (pad rows are exact zeros
	// throughout, so they never perturb a result).
	scatPad := padBlocks(pr.scattered, plan.Experts, t, cache.tpad, mdim)
	combinedPad := tensor.New(plan.Experts, cache.tpad, mdim)

	p := runtime.NewPlan()
	w.strat.BuildForward(w, p, cache, scatPad, combinedPad)
	w.bindStreams(p)
	if err := w.run(p); err != nil {
		if rank, ok := fault.PermanentRank(err); ok {
			w.down = rank
			return w.degradedForward(pr, retriesIn(w.lastTr), err.Error())
		}
		return nil, nil, err
	}

	cache.combined = unpadBlocks(combinedPad, plan.Experts, t, cache.tpad, mdim)
	y := w.layer.epilog(cache.combined, plan, pr.flat.Dim(0), pr.shape)
	return y, cache, nil
}

// Backward runs the pipelined multi-rank backward pass, accumulating the
// same parameter gradients and returning the same input gradient as
// MOELayer.Backward.
func (w *World) Backward(cache *WorldCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if w.closed {
		return nil, fmt.Errorf("moe: backward: %w", ErrWorldClosed)
	}
	if cache == nil || cache.combined == nil {
		return nil, fmt.Errorf("moe: world backward needs a forward cache")
	}
	if cache.deg != nil {
		// The forward already ran degraded; its cache pairs only with the
		// degraded backward.
		w.lastPlan, w.lastTr = nil, nil
		return w.degradedBackward(cache, dy)
	}
	pr := cache.pr
	plan := pr.plan
	dExpertOut, planGrad, err := w.layer.backwardProlog(cache.combined, plan, dy)
	if err != nil {
		return nil, err
	}
	mdim := w.layer.cfg.M
	t := plan.Capacity

	dpad := padBlocks(dExpertOut, plan.Experts, t, cache.tpad, mdim)
	dScatteredPad := tensor.New(plan.Experts, cache.tpad, mdim)

	p := runtime.NewPlan()
	w.strat.BuildBackward(w, p, cache, dpad, dScatteredPad)
	w.bindStreams(p)
	if err := w.run(p); err != nil {
		if rank, ok := fault.PermanentRank(err); ok {
			w.down = rank
			return w.degradedBackwardRecover(cache, dy, retriesIn(w.lastTr), err.Error())
		}
		return nil, err
	}
	cache.combined = nil // a cache drives at most one backward

	dScattered := unpadBlocks(dScatteredPad, plan.Experts, t, cache.tpad, mdim)
	return w.layer.backwardFinish(dScattered, planGrad, pr.flat, pr.rc, plan, pr.shape), nil
}

// retriesIn counts the transient-fault retries an aborted trace spent.
func retriesIn(tr *sim.Trace) int {
	if tr == nil {
		return 0
	}
	return tr.EventCount(sim.EventRetry)
}

// expert returns rank j's el-th local expert (the expert-sharding owner
// mapping every strategy and RankGrads share).
func (w *World) expert(j, el int) Expert { return w.layer.cfg.Experts[j*w.egrp+el] }

// addStats accumulates collective traffic. Locked: the hybrid strategy
// runs its per-group intra collectives on concurrent streams (EP and ESP
// serialize all measured collectives on one stream, but pay the mutex
// anyway — it is uncontended there).
func (w *World) addStats(st comm.Stats) {
	w.statsMu.Lock()
	w.stats.Merge(st)
	w.statsMu.Unlock()
}

// expertEst is a structural duration estimate (MMACs) of rank j's local
// expert group for Simulate; the realpipe workflow replaces it with
// measured durations via SimulateWith. Per-rank summing matters when the
// expert mix is heterogeneous.
func (w *World) expertEst(j, rows int) float64 {
	macs := 0.0
	for _, ex := range w.layer.cfg.Experts[j*w.egrp : (j+1)*w.egrp] {
		macs += ex.FwdMACs(rows)
	}
	return macs / 1e6
}

// allExpertEst sums the whole layer's expert estimate for rows — the
// per-rank share of a fully sharded (ESP) stage is this divided by R.
func (w *World) allExpertEst(rows int) float64 {
	macs := 0.0
	for _, ex := range w.layer.cfg.Experts {
		macs += ex.FwdMACs(rows)
	}
	return macs / 1e6
}

// estElems scales an element count into the same arbitrary unit space.
func estElems(n int) float64 { return float64(n) / 1e6 }

func wireBuffers(p, n int) [][]float64 {
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func rankBlocks(r, eg, tpad, m int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, r)
	for i := range out {
		out[i] = tensor.New(eg, tpad, m)
	}
	return out
}

// expertView is local expert el's (Tpad, M) block inside a rank's
// (Eg, Tpad, M) buffer.
func expertView(b *tensor.Tensor, el, tpad, m int) *tensor.Tensor {
	return b.View(el*tpad*m, tpad, m)
}

// padBlocks grows (E, T, M) to (E, Tpad, M) with zero rows appended to
// each expert block; unpadBlocks is its inverse. Padding rows carry exact
// zeros through the pipeline, so they never perturb a gradient.
func padBlocks(src *tensor.Tensor, e, t, tpad, m int) *tensor.Tensor {
	if t == tpad {
		return src
	}
	dst := tensor.New(e, tpad, m)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < e; i++ {
		copy(dd[i*tpad*m:(i*tpad+t)*m], sd[i*t*m:(i+1)*t*m])
	}
	return dst
}

func unpadBlocks(src *tensor.Tensor, e, t, tpad, m int) *tensor.Tensor {
	if t == tpad {
		return src
	}
	dst := tensor.New(e, t, m)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < e; i++ {
		copy(dd[i*t*m:(i+1)*t*m], sd[i*tpad*m:(i*tpad+t)*m])
	}
	return dst
}

// GradElems returns the layer's flattened gradient length and the length
// of its leading dense (gate) prefix — the same dense/MoE split the §5
// simulator models with LayerSpec volumes. The flat layout is gate
// parameters in Params() order followed by each expert's parameters in
// expert-index order, matching MOELayer.Params.
func (w *World) GradElems() (total, dense int) {
	for _, p := range w.layer.cfg.Gate.Params() {
		dense += len(p.G.Data())
	}
	total = dense
	for _, ex := range w.layer.cfg.Experts {
		for _, p := range ex.Params() {
			total += len(p.G.Data())
		}
	}
	return total, dense
}

// RankGrads materializes the per-rank partial parameter gradients of the
// most recent backward pass in the GradElems layout: rank j contributes
// the full gradient of its own expert shard (experts [j·Eg, (j+1)·Eg))
// and a disjoint element shard of the dense (gate) gradient, zeros
// elsewhere. Every element therefore has exactly one non-zero
// contributor, so a Ring-AllReduce sum reconstructs the full-batch
// gradient bit-exactly on every rank — adding zeros never rounds. (The
// in-process ranks share one replicated gate computation, so the dense
// shard models each data-parallel rank's disjoint contribution without
// recomputing the gate backward R times; the AllReduce volume and the
// synchronized values are exactly those of the real replication. Every
// strategy accumulates an expert's parameter gradients on its owner rank
// j = e/Eg — EP computes them there, ESP designates that shard-group
// member — so the one-contributor invariant holds for all of them.)
func (w *World) RankGrads() [][]float64 {
	total, _ := w.GradElems()
	R := w.cfg.Ranks
	out := make([][]float64, R)
	for r := range out {
		out[r] = make([]float64, total)
	}
	off := 0
	for _, p := range w.layer.cfg.Gate.Params() {
		g := p.G.Data()
		for r, rr := range comm.SplitFlat(len(g), R) {
			copy(out[r][off+rr.Lo:off+rr.Hi], g[rr.Lo:rr.Hi])
		}
		off += len(g)
	}
	for e, ex := range w.layer.cfg.Experts {
		owner := e / w.egrp
		for _, p := range ex.Params() {
			g := p.G.Data()
			copy(out[owner][off:off+len(g)], g)
			off += len(g)
		}
	}
	return out
}

package moe

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// World executes one MOELayer expert-parallel across R in-process ranks
// over real comm AlltoAll collectives, with the dispatch and combine
// split into r token chunks and driven through the stream runtime — the
// executable counterpart of the schedules internal/core builds for the
// simulator (§4.1).
//
// Data layout: the gate and order run once on the global batch (they are
// replicated in expert-parallel training); the resulting (E, T, M)
// expert-major tensor is sharded by slot rows — rank i owns rows
// [i·S, (i+1)·S) of every expert's block, S = ⌈T/R⌉ — and experts are
// sharded by index — rank j owns experts [j·E/R, (j+1)·E/R). The dispatch
// AlltoAll therefore moves rank i's slot rows for expert group j to rank
// j; because the AlltoAll orders arrivals by source rank and the shards
// are contiguous row ranges, every expert sees exactly the rows of the
// single-rank layer in the same order, making the whole pass bit-identical
// to MOELayer.Forward/Backward at any (R, r).
//
// Streams: one global "inter" stream serializes the AlltoAll chunk
// collectives (the NIC of Figs. 3–4); each rank owns an "intra:<rank>"
// stream for local (un)packing between the wire layout and the expert
// blocks and a "compute:<rank>" stream for expert math. Expert chunk c
// can compute while chunk c+1 is on the wire — measured, not simulated.
type World struct {
	layer   *MOELayer
	cfg     WorldConfig
	egrp    int  // experts per rank
	chunked bool // every expert implements ChunkedExpert

	seq      bool // execute plans sequentially (no-overlap baseline)
	sync     BackwardSyncer
	stats    comm.Stats
	lastPlan *runtime.Plan
	lastTr   *sim.Trace
}

// BackwardSyncer receives inter-stream emit points while a backward plan
// is under construction — the executable seam for §5's Gradient-AllReduce
// overlap. BeginLayer announces how many points the plan will offer;
// EmitAt may then append tasks to the plan on the shared inter stream at
// each point: point 0 sits between the combine-gradient and
// dispatch-gradient AlltoAll chains (the slack while expert chunks
// compute), and point c ≥ 1 follows the c-th dispatch-gradient chunk.
// Emitted tasks contend with the layer's own AlltoAll chunks for the
// serialized inter stream, exactly the contention §5 budgets for.
type BackwardSyncer interface {
	BeginLayer(points int)
	EmitAt(p *runtime.Plan, stream string, point int)
}

// SetBackwardSyncer installs (or, with nil, removes) the gradient-sync
// hook driven by the next Backward calls.
func (w *World) SetBackwardSyncer(s BackwardSyncer) { w.sync = s }

// WorldConfig configures multi-rank execution.
type WorldConfig struct {
	Ranks       int          // R; the layer's experts are sharded E/R per rank
	ChunksFwd   int          // forward pipeline degree r (<1 means 1)
	ChunksBwd   int          // backward pipeline degree (<1 means ChunksFwd)
	Algo        comm.A2AAlgo // AlltoAll algorithm (default Direct)
	GPUsPerNode int          // node shape for 1DH/2DH and Stats (default Ranks)
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.ChunksFwd < 1 {
		c.ChunksFwd = 1
	}
	if c.ChunksBwd < 1 {
		c.ChunksBwd = c.ChunksFwd
	}
	if c.Algo == "" {
		c.Algo = comm.A2ADirect
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = c.Ranks
	}
	return c
}

// NewWorld validates the pairing of a layer and a world configuration.
func NewWorld(layer *MOELayer, cfg WorldConfig) (*World, error) {
	if layer == nil {
		return nil, fmt.Errorf("moe: world needs a layer")
	}
	cfg = cfg.withDefaults()
	e := len(layer.cfg.Experts)
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("moe: world needs at least one rank, got %d", cfg.Ranks)
	}
	if e%cfg.Ranks != 0 {
		return nil, fmt.Errorf("moe: %d experts not divisible across %d ranks", e, cfg.Ranks)
	}
	if cfg.Ranks%cfg.GPUsPerNode != 0 {
		return nil, fmt.Errorf("moe: %d ranks not divisible into nodes of %d", cfg.Ranks, cfg.GPUsPerNode)
	}
	switch cfg.Algo {
	case comm.A2ADirect, comm.A2A1DH, comm.A2A2DH:
	default:
		// Fail fast: Plan.Execute drains every task even after an error, so
		// a bad algorithm discovered mid-plan would run the whole pipeline
		// on zeroed buffers first.
		return nil, fmt.Errorf("moe: unknown alltoall algorithm %q (valid: %s, %s, %s)",
			cfg.Algo, comm.A2ADirect, comm.A2A1DH, comm.A2A2DH)
	}
	if len(layer.cfg.Hooks) > 0 {
		return nil, fmt.Errorf("moe: world does not support layer hooks (they wrap the monolithic dispatch)")
	}
	if _, ok := layer.disp.(LocalDispatcher); !ok {
		return nil, fmt.Errorf("moe: world replaces the layer dispatcher with real chunked AlltoAll; custom dispatcher %T would be bypassed", layer.disp)
	}
	if layer.seqExperts {
		return nil, fmt.Errorf("moe: world requires provably distinct expert instances (aliased experts cannot be sharded)")
	}
	chunked := true
	for _, ex := range layer.cfg.Experts {
		if _, ok := ex.(ChunkedExpert); !ok {
			chunked = false
			break
		}
	}
	return &World{layer: layer, cfg: cfg, egrp: e / cfg.Ranks, chunked: chunked}, nil
}

// Ranks returns R and Chunked whether the chunk-granular expert path is in
// effect (false falls back to whole-block expert compute per rank, with
// the communication still chunked).
func (w *World) Ranks() int    { return w.cfg.Ranks }
func (w *World) Chunked() bool { return w.chunked }

// Degrees returns the configured forward and backward pipeline degrees.
func (w *World) Degrees() (fwd, bwd int) { return w.cfg.ChunksFwd, w.cfg.ChunksBwd }

// SetSequential switches plan execution to the single-goroutine,
// no-overlap baseline (true) or the pipelined stream executor (false).
// Results are identical either way; only the wall-clock differs.
func (w *World) SetSequential(seq bool) { w.seq = seq }

// Stats returns the cumulative AlltoAll traffic of every pass so far.
func (w *World) Stats() comm.Stats { return w.stats }

// LastPlan and LastTrace return the stream plan and measured trace of the
// most recent pass — LastPlan.SimulateWith(runtime.Durations(LastTrace()))
// predicts the pipelined makespan from sequential measurements.
func (w *World) LastPlan() *runtime.Plan { return w.lastPlan }
func (w *World) LastTrace() *sim.Trace   { return w.lastTr }

// WorldCache carries a forward pass's state to Backward.
type WorldCache struct {
	pr         *forwardProlog
	spad, tpad int
	xBlocks    []*tensor.Tensor // per rank (Eg, Tpad, M) expert inputs
	outBlocks  []*tensor.Tensor // per rank (Eg, Tpad, M) expert outputs
	ccs        [][]ChunkedCache // [rank][local expert], chunked mode
	expCaches  [][]ExpertCache  // [rank][local expert], fallback mode
	combined   *tensor.Tensor   // (E, T, M), the sequential layer's expertOut
}

// Task kinds in the trace breakdown, matching internal/core's Table 2
// vocabulary where the operations coincide.
const (
	KindA2A    = "AlltoAll"
	KindExpert = "Experts"
	KindPack   = "Pack" // wire-layout (un)packing, the local Order work
)

// streams for rank r.
func intraStream(r int) string   { return fmt.Sprintf("intra:%d", r) }
func computeStream(r int) string { return fmt.Sprintf("compute:%d", r) }

// wireOff is the offset of (t, el, m) inside one (S rows × Eg·M wide)
// wire block.
func wireOff(t, el, m, eg, mdim int) int { return (t*eg+el)*mdim + m }

// xferGlobal copies chunk rows [rr.Lo, rr.Hi) of token-side rank i's slot
// shard between the padded global (E, Tpad, M) expert-major buffer and
// rank i's wire buffer, whose per-peer blocks are keyed by expert group.
// toWire selects the direction. Every forward/backward pack stage on the
// token side is this one loop, so wire-layout fixes cannot drift between
// the passes.
func xferGlobal(wire, global []float64, ranks, eg, mdim, spad, tpad, i int, rr comm.RowRange, toWire bool) {
	blk := spad * eg * mdim
	for p := 0; p < ranks; p++ {
		wb := wire[p*blk : (p+1)*blk]
		for el := 0; el < eg; el++ {
			e := p*eg + el
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := wireOff(t, el, 0, eg, mdim)
				goff := (e*tpad + i*spad + t) * mdim
				if toWire {
					copy(wb[woff:woff+mdim], global[goff:goff+mdim])
				} else {
					copy(global[goff:goff+mdim], wb[woff:woff+mdim])
				}
			}
		}
	}
}

// xferLocal copies chunk rows between expert-side rank j's (Eg, Tpad, M)
// block and rank j's wire buffer, whose per-peer blocks are keyed by the
// token-side rank that owns each row segment.
func xferLocal(wire, block []float64, ranks, eg, mdim, spad, tpad int, rr comm.RowRange, toWire bool) {
	blk := spad * eg * mdim
	for i := 0; i < ranks; i++ {
		wb := wire[i*blk : (i+1)*blk]
		for el := 0; el < eg; el++ {
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := wireOff(t, el, 0, eg, mdim)
				boff := (el*tpad + i*spad + t) * mdim
				if toWire {
					copy(wb[woff:woff+mdim], block[boff:boff+mdim])
				} else {
					copy(block[boff:boff+mdim], wb[woff:woff+mdim])
				}
			}
		}
	}
}

// run executes a plan under the current mode, records it, and returns the
// first task error.
func (w *World) run(p *runtime.Plan) error {
	var tr *sim.Trace
	var err error
	if w.seq {
		tr, err = p.ExecuteSequential()
	} else {
		tr, err = p.Execute()
	}
	w.lastPlan, w.lastTr = p, tr
	return err
}

// Forward runs the pipelined multi-rank forward pass. Results are
// bit-identical to MOELayer.Forward on the same layer and input.
func (w *World) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, *WorldCache, error) {
	pr, err := w.layer.prolog(x, train)
	if err != nil {
		return nil, nil, err
	}
	if pr.plan.IsDense() {
		return nil, nil, fmt.Errorf("moe: world supports hard routing only (dense SoftMoE plans have no token dimension to chunk)")
	}
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	plan := pr.plan
	t := plan.Capacity
	spad := (t + R - 1) / R
	tpad := spad * R
	ranges := comm.SplitRows(spad, w.cfg.ChunksFwd)
	dims := comm.BlockDims{Rows: spad, Width: eg * mdim}
	blk := dims.Elems()

	// Wire and block buffers.
	send := wireBuffers(R, R*blk)
	recv := wireBuffers(R, R*blk)
	csend := wireBuffers(R, R*blk)
	crecv := wireBuffers(R, R*blk)
	cache := &WorldCache{pr: pr, spad: spad, tpad: tpad}
	cache.xBlocks = rankBlocks(R, eg, tpad, mdim)
	cache.outBlocks = rankBlocks(R, eg, tpad, mdim)
	combinedPad := tensor.New(plan.Experts, tpad, mdim)

	// Per-expert chunk caches (chunked mode) span the full padded block.
	if w.chunked {
		cache.ccs = make([][]ChunkedCache, R)
		for j := 0; j < R; j++ {
			cache.ccs[j] = make([]ChunkedCache, eg)
			for el := 0; el < eg; el++ {
				cache.ccs[j][el] = w.expert(j, el).(ChunkedExpert).BeginChunked(
					expertView(cache.xBlocks[j], el, tpad, mdim),
					expertView(cache.outBlocks[j], el, tpad, mdim))
			}
		}
	} else {
		cache.expCaches = make([][]ExpertCache, R)
		for j := 0; j < R; j++ {
			cache.expCaches[j] = make([]ExpertCache, eg)
		}
	}

	// Padding the scattered tensor once up front lets every wire transfer
	// share the two xfer helpers (pad rows are exact zeros throughout).
	scatPad := padBlocks(pr.scattered, plan.Experts, t, tpad, mdim).Data()
	p := runtime.NewPlan()

	// Phase 1 — pack + dispatch for every chunk. Enqueueing all dispatch
	// collectives before any combine keeps the inter stream issuing them
	// back to back (the Fig. 3c/d ordering core.buildForwardLayer uses):
	// chunk c+1 is on the wire while chunk c computes, which is the whole
	// point of the pipeline. Interleaving D and C per chunk would serialize
	// D[c+1] behind C[c] — and C[c] waits on expert chunk c.
	dispIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(send[i], scatPad, R, eg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		dispIDs[c] = p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), w.a2aTask(send, recv, dims, rr), packIDs...)
	}

	// Phase 2 — unpack + expert compute per chunk. expTask[c][j] is the
	// task the chunk's combine pack on rank j must wait for.
	expTask := w.emitForwardExperts(p, cache, recv, dispIDs, ranges)

	// Phase 3 — combine every chunk back to the token side.
	for c, rr := range ranges {
		w.emitCombine(p, cache, combinedPad, csend, crecv, dims, rr, c, expTask[c])
	}
	if err := w.run(p); err != nil {
		return nil, nil, err
	}

	cache.combined = unpadBlocks(combinedPad, plan.Experts, t, tpad, mdim)
	y := w.layer.epilog(cache.combined, plan, pr.flat.Dim(0), pr.shape)
	return y, cache, nil
}

// emitForwardExperts adds phase 2 of the forward plan: per-chunk unpack of
// the dispatch arrivals into the expert blocks and the expert compute on
// them. It returns expTask[c][j], the task id chunk c's combine pack on
// rank j depends on. Chunk-capable experts compute per chunk; fallback
// experts compute the whole block once every chunk has landed (so every
// expTask[c][j] is the same whole-block task).
func (w *World) emitForwardExperts(p *runtime.Plan, cache *WorldCache, recv [][]float64, dispIDs []int, ranges []comm.RowRange) [][]int {
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	expTask := make([][]int, len(ranges))
	for c := range expTask {
		expTask[c] = make([]int, R)
	}
	unpackDeps := make([][]int, R) // fallback mode: all unpack ids per rank
	for c, rr := range ranges {
		rr := rr
		for j := 0; j < R; j++ {
			j := j
			unpack := p.Add(fmt.Sprintf("U%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(recv[j], cache.xBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, false)
					return nil
				}, dispIDs[c])
			if !w.chunked {
				unpackDeps[j] = append(unpackDeps[j], unpack)
				continue
			}
			expTask[c][j] = p.Add(fmt.Sprintf("E%d[%d]", c, j), KindExpert, computeStream(j),
				w.expertEst(j, rr.Len()*R), func() error {
					for el := 0; el < eg; el++ {
						cc := cache.ccs[j][el]
						ce := w.expert(j, el).(ChunkedExpert)
						for i := 0; i < R; i++ {
							ce.ForwardChunk(cc, i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
	}
	if !w.chunked {
		for j := 0; j < R; j++ {
			j := j
			id := p.Add(fmt.Sprintf("E[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, tpad), func() error {
					for el := 0; el < eg; el++ {
						in := expertView(cache.xBlocks[j], el, tpad, mdim)
						out := expertView(cache.outBlocks[j], el, tpad, mdim)
						ex := w.expert(j, el)
						if ie, ok := ex.(IntoExpert); ok {
							cache.expCaches[j][el] = ie.ForwardInto(in, out)
							continue
						}
						y, ec := ex.Forward(in)
						cache.expCaches[j][el] = ec
						copy(out.Data(), y.Data())
					}
					return nil
				}, unpackDeps[j]...)
			for c := range expTask {
				expTask[c][j] = id
			}
		}
	}
	return expTask
}

// emitCombine adds the combine-side tasks for chunk c: per-rank pack of
// the expert outputs into wire order (behind that rank's expert task for
// the chunk), the chunk's combine AlltoAll on the shared inter stream, and
// per-rank landing of the arrivals in the global padded combine buffer.
func (w *World) emitCombine(p *runtime.Plan, cache *WorldCache, combinedPad *tensor.Tensor,
	csend, crecv [][]float64, dims comm.BlockDims, rr comm.RowRange, c int, expDone []int) {
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	spad, tpad := cache.spad, cache.tpad
	packIDs := make([]int, R)
	for j := 0; j < R; j++ {
		j := j
		packIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
			estElems(R*eg*rr.Len()*mdim), func() error {
				xferLocal(csend[j], cache.outBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, true)
				return nil
			}, expDone[j])
	}
	comb := p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
		estElems(R*R*eg*rr.Len()*mdim), w.a2aTask(csend, crecv, dims, rr), packIDs...)
	for i := 0; i < R; i++ {
		i := i
		p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
			estElems(R*eg*rr.Len()*mdim), func() error {
				xferGlobal(crecv[i], combinedPad.Data(), R, eg, mdim, spad, tpad, i, rr, false)
				return nil
			}, comb)
	}
}

// Backward runs the pipelined multi-rank backward pass, accumulating the
// same parameter gradients and returning the same input gradient as
// MOELayer.Backward.
func (w *World) Backward(cache *WorldCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.combined == nil {
		return nil, fmt.Errorf("moe: world backward needs a forward cache")
	}
	pr := cache.pr
	plan := pr.plan
	dExpertOut, planGrad, err := w.layer.backwardProlog(cache.combined, plan, dy)
	if err != nil {
		return nil, err
	}
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	t := plan.Capacity
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksBwd)
	dims := comm.BlockDims{Rows: spad, Width: eg * mdim}
	blk := dims.Elems()

	dpad := padBlocks(dExpertOut, plan.Experts, t, tpad, mdim)
	dyBlocks := rankBlocks(R, eg, tpad, mdim)
	dxBlocks := rankBlocks(R, eg, tpad, mdim)
	dScatteredPad := tensor.New(plan.Experts, tpad, mdim)
	gsend := wireBuffers(R, R*blk)
	grecv := wireBuffers(R, R*blk)
	dsend := wireBuffers(R, R*blk)
	drecv := wireBuffers(R, R*blk)

	dpd := dpad.Data()
	p := runtime.NewPlan()

	// Phase 1 — pack + combine-gradient AlltoAll for every chunk (the
	// adjoint of the forward combine), issued back to back on the inter
	// stream like the forward dispatches: the same Fig. 3c/d ordering,
	// here "all C, then all D", matching core.buildBackwardLayer.
	combIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(gsend[i], dpd, R, eg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		combIDs[c] = p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), w.a2aTask(gsend, grecv, dims, rr), packIDs...)
	}

	// Gradient-sync emit point 0: AllReduce slices enqueued here run on the
	// inter stream after the combine chain, in the slack while the expert
	// chunks compute, before the first dispatch-gradient AlltoAll.
	if w.sync != nil {
		w.sync.BeginLayer(len(ranges) + 1)
		w.sync.EmitAt(p, "inter", 0)
	}

	// Phase 2 — unpack + expert backward per chunk (dX rows only; weight
	// gradients wait for phase 4).
	expTask := make([][]int, len(ranges))
	for c := range expTask {
		expTask[c] = make([]int, R)
	}
	unpackDeps := make([][]int, R) // fallback mode
	for c, rr := range ranges {
		rr := rr
		for j := 0; j < R; j++ {
			j := j
			unpack := p.Add(fmt.Sprintf("U%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(grecv[j], dyBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, false)
					return nil
				}, combIDs[c])
			if !w.chunked {
				unpackDeps[j] = append(unpackDeps[j], unpack)
				continue
			}
			expTask[c][j] = p.Add(fmt.Sprintf("E%d[%d]", c, j), KindExpert, computeStream(j),
				w.expertEst(j, 2*rr.Len()*R), func() error {
					for el := 0; el < eg; el++ {
						ce := w.expert(j, el).(ChunkedExpert)
						dyv := expertView(dyBlocks[j], el, tpad, mdim)
						dxv := expertView(dxBlocks[j], el, tpad, mdim)
						for i := 0; i < R; i++ {
							ce.BackwardChunk(cache.ccs[j][el], dyv, dxv, i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
	}
	if !w.chunked {
		for j := 0; j < R; j++ {
			j := j
			id := p.Add(fmt.Sprintf("E[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, 2*tpad), func() error {
					for el := 0; el < eg; el++ {
						ex := w.expert(j, el)
						dyv := expertView(dyBlocks[j], el, tpad, mdim)
						dxv := expertView(dxBlocks[j], el, tpad, mdim)
						if ie, ok := ex.(IntoExpert); ok {
							ie.BackwardInto(cache.expCaches[j][el], dyv, dxv)
							continue
						}
						dxe := ex.Backward(cache.expCaches[j][el], dyv)
						copy(dxv.Data(), dxe.Data())
					}
					return nil
				}, unpackDeps[j]...)
			for c := range expTask {
				expTask[c][j] = id
			}
		}
	}

	// Phase 3 — dX pack + dispatch-gradient AlltoAll + landing per chunk.
	for c, rr := range ranges {
		rr := rr
		dgPackIDs := make([]int, R)
		for j := 0; j < R; j++ {
			j := j
			dgPackIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferLocal(dsend[j], dxBlocks[j].Data(), R, eg, mdim, spad, tpad, rr, true)
					return nil
				}, expTask[c][j])
		}
		dgrad := p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(R*R*eg*rr.Len()*mdim), w.a2aTask(dsend, drecv, dims, rr), dgPackIDs...)
		// Emit point c+1: slices here trail the c-th dispatch-gradient
		// chunk, overlapping the landing packs and later expert chunks.
		if w.sync != nil {
			w.sync.EmitAt(p, "inter", c+1)
		}
		for i := 0; i < R; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(R*eg*rr.Len()*mdim), func() error {
					xferGlobal(drecv[i], dScatteredPad.Data(), R, eg, mdim, spad, tpad, i, rr, false)
					return nil
				}, dgrad)
		}
	}

	// Phase 4 — deferred full-block parameter-gradient reductions, off the
	// communication critical path (§4.1's W-grad tasks). The last expert
	// chunk on a rank implies every earlier one (stream order).
	if w.chunked {
		for j := 0; j < R; j++ {
			j := j
			p.Add(fmt.Sprintf("W[%d]", j), KindExpert, computeStream(j),
				w.expertEst(j, tpad), func() error {
					for el := 0; el < eg; el++ {
						ce := w.expert(j, el).(ChunkedExpert)
						ce.FinishBackward(cache.ccs[j][el], expertView(dyBlocks[j], el, tpad, mdim))
					}
					return nil
				}, expTask[len(ranges)-1][j])
		}
	}
	if err := w.run(p); err != nil {
		return nil, err
	}
	cache.combined = nil // a cache drives at most one backward

	dScattered := unpadBlocks(dScatteredPad, plan.Experts, t, tpad, mdim)
	return w.layer.backwardFinish(dScattered, planGrad, pr.flat, pr.rc, plan, pr.shape), nil
}

// expert returns rank j's el-th local expert.
func (w *World) expert(j, el int) Expert { return w.layer.cfg.Experts[j*w.egrp+el] }

// a2aTask wraps one chunk collective, accumulating traffic stats (safe:
// all A2A tasks share the serialized "inter" stream).
func (w *World) a2aTask(send, recv [][]float64, dims comm.BlockDims, rr comm.RowRange) func() error {
	return func() error {
		st, err := comm.AlltoAllRows(w.cfg.Algo, send, recv, w.cfg.GPUsPerNode, dims, rr)
		if err != nil {
			return err
		}
		w.stats.Merge(st)
		return nil
	}
}

// expertEst is a structural duration estimate (MMACs) of rank j's local
// expert group for Simulate; the realpipe workflow replaces it with
// measured durations via SimulateWith. Per-rank summing matters when the
// expert mix is heterogeneous.
func (w *World) expertEst(j, rows int) float64 {
	macs := 0.0
	for _, ex := range w.layer.cfg.Experts[j*w.egrp : (j+1)*w.egrp] {
		macs += ex.FwdMACs(rows)
	}
	return macs / 1e6
}

// estElems scales an element count into the same arbitrary unit space.
func estElems(n int) float64 { return float64(n) / 1e6 }

func wireBuffers(p, n int) [][]float64 {
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func rankBlocks(r, eg, tpad, m int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, r)
	for i := range out {
		out[i] = tensor.New(eg, tpad, m)
	}
	return out
}

// expertView is local expert el's (Tpad, M) block inside a rank's
// (Eg, Tpad, M) buffer.
func expertView(b *tensor.Tensor, el, tpad, m int) *tensor.Tensor {
	return b.View(el*tpad*m, tpad, m)
}

// padBlocks grows (E, T, M) to (E, Tpad, M) with zero rows appended to
// each expert block; unpadBlocks is its inverse. Padding rows carry exact
// zeros through the pipeline, so they never perturb a gradient.
func padBlocks(src *tensor.Tensor, e, t, tpad, m int) *tensor.Tensor {
	if t == tpad {
		return src
	}
	dst := tensor.New(e, tpad, m)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < e; i++ {
		copy(dd[i*tpad*m:(i*tpad+t)*m], sd[i*t*m:(i+1)*t*m])
	}
	return dst
}

// GradElems returns the layer's flattened gradient length and the length
// of its leading dense (gate) prefix — the same dense/MoE split the §5
// simulator models with LayerSpec volumes. The flat layout is gate
// parameters in Params() order followed by each expert's parameters in
// expert-index order, matching MOELayer.Params.
func (w *World) GradElems() (total, dense int) {
	for _, p := range w.layer.cfg.Gate.Params() {
		dense += len(p.G.Data())
	}
	total = dense
	for _, ex := range w.layer.cfg.Experts {
		for _, p := range ex.Params() {
			total += len(p.G.Data())
		}
	}
	return total, dense
}

// RankGrads materializes the per-rank partial parameter gradients of the
// most recent backward pass in the GradElems layout: rank j contributes
// the full gradient of its own expert shard (experts [j·Eg, (j+1)·Eg))
// and a disjoint element shard of the dense (gate) gradient, zeros
// elsewhere. Every element therefore has exactly one non-zero
// contributor, so a Ring-AllReduce sum reconstructs the full-batch
// gradient bit-exactly on every rank — adding zeros never rounds. (The
// in-process ranks share one replicated gate computation, so the dense
// shard models each data-parallel rank's disjoint contribution without
// recomputing the gate backward R times; the AllReduce volume and the
// synchronized values are exactly those of the real replication.)
func (w *World) RankGrads() [][]float64 {
	total, _ := w.GradElems()
	R := w.cfg.Ranks
	out := make([][]float64, R)
	for r := range out {
		out[r] = make([]float64, total)
	}
	off := 0
	for _, p := range w.layer.cfg.Gate.Params() {
		g := p.G.Data()
		for r, rr := range comm.SplitFlat(len(g), R) {
			copy(out[r][off+rr.Lo:off+rr.Hi], g[rr.Lo:rr.Hi])
		}
		off += len(g)
	}
	for e, ex := range w.layer.cfg.Experts {
		owner := e / w.egrp
		for _, p := range ex.Params() {
			g := p.G.Data()
			copy(out[owner][off:off+len(g)], g)
			off += len(g)
		}
	}
	return out
}

func unpadBlocks(src *tensor.Tensor, e, t, tpad, m int) *tensor.Tensor {
	if t == tpad {
		return src
	}
	dst := tensor.New(e, t, m)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < e; i++ {
		copy(dd[i*t*m:(i+1)*t*m], sd[i*tpad*m:(i*tpad+t)*m])
	}
	return dst
}

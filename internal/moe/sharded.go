package moe

import (
	"repro/internal/tensor"
)

// ShardedExpert is the shard-granular execution contract StrategyESP
// drives (§4's expert-sharding parallelism): every shard-group member
// computes a slice of each GEMM stage instead of owning whole experts.
// The decomposition is chosen so that no floating-point reduction is ever
// re-associated, which is what makes the sharded pass bit-identical to
// the monolithic IntoExpert pass:
//
//   - stage-1 GEMMs are sharded over their OUTPUT COLUMNS [cl, ch): each
//     hidden element is one complete dot product over M, computed wholly
//     by one member in the monolithic kernel's k-order;
//   - the column shards are AllGather'd into the full-width hidden
//     exchange buffer (pure concatenation);
//   - stage-2 GEMMs are sharded over TOKEN ROWS: each output row is one
//     complete accumulation over the hidden width.
//
// A Megatron-style k-sharded second GEMM would produce partial sums whose
// ReduceScatter re-associates the reduction; the row-sharded form instead
// leaves every output element with exactly one non-zero contributor, so
// the strategy's ReduceScatter sums are exact (the RankGrads argument:
// adding zeros never rounds) while the collective volumes keep the §4
// AG/RS structure.
//
// Exchange buffers: hf is (FwdBands·n, HiddenWidth), hb is
// (BwdBands·n, HiddenWidth) — bands are stacked n-row planes sharing the
// column sharding (Mixtral's backward exchanges d(SiLU-gated) and
// d(up-projection) as two bands). The caller owns both buffers and fills
// the columns outside [cl, ch) from the other members' AllGather'd
// shards before calling the full-width stages.
//
// Contract: BeginSharded is called once per (expert, member) with the
// member's buffers and column shard; ForwardHidden calls must tile [0, n)
// before a row's ForwardOut; BackwardHidden must tile [0, n) before a
// row's BackwardIn; FinishSharded runs once, on exactly one member per
// expert, after the full hb and dy are assembled, and releases the
// member's pooled state — other members release theirs via DropSharded.
// Calls on one cache must not run concurrently.
//
// The pool passed to BeginSharded is the member's compute-stream worker
// budget: every GEMM the shard methods run must fan out onto it (nil
// designates the process-default pool). One expert instance is driven by
// R members concurrently under ESP, each through its own cache — binding
// the pool to the cache rather than the expert is what keeps those
// members inside their own stream allotments.
type ShardedExpert interface {
	Expert
	// HiddenWidth is the sharded column dimension of the exchange buffers.
	HiddenWidth() int
	// FwdBands and BwdBands are the stacked n-row planes of hf and hb.
	FwdBands() int
	BwdBands() int
	// BeginSharded prepares one member's state for a sharded pass over the
	// full (n, M) input view x, writing the full (n, M) output view out,
	// with hidden exchange buffer hf, column shard [cl, ch) and the shard
	// methods' kernels bound to pool (nil = default).
	BeginSharded(x, out, hf *tensor.Tensor, cl, ch int, pool *tensor.Pool) ShardedCache
	// ForwardHidden computes hf columns [cl, ch) for token rows [lo, hi).
	ForwardHidden(sc ShardedCache, lo, hi int)
	// ForwardOut computes out rows [lo, hi) from full-width hf rows.
	ForwardOut(sc ShardedCache, lo, hi int)
	// BackwardHidden computes hb columns [cl, ch) for token rows [lo, hi)
	// from the full dy view (the adjoint of stage 2, column-restricted).
	BackwardHidden(sc ShardedCache, dy, hb *tensor.Tensor, lo, hi int)
	// BackwardIn computes dx rows [lo, hi) from full-width hb rows.
	BackwardIn(sc ShardedCache, dy, dx, hb *tensor.Tensor, lo, hi int)
	// FinishSharded accumulates the full-block parameter gradients from
	// the complete x, hf, hb and dy buffers — the same GEMMs in the same
	// order as the monolithic backward — and releases pooled state.
	FinishSharded(sc ShardedCache, dy, hb *tensor.Tensor)
	// DropSharded releases a non-owner member's pooled state after the
	// backward pass (forward-only callers may instead leak to the GC, as
	// with ForwardInto caches).
	DropSharded(sc ShardedCache)
}

// ShardedCache is the opaque per-member state of one sharded pass.
type ShardedCache interface{}

// copyCols copies columns [cl, ch) of a (rows, w) matrix held in src into
// a dense (rows, ch-cl) destination, or scatters back when gather is
// false. It is the local column re-layout between an expert's dense
// column-shard compute and the full-width exchange buffers.
func copyCols(dense *tensor.Tensor, full *tensor.Tensor, lo, hi, cl, ch int, toFull bool) {
	for t := lo; t < hi; t++ {
		fr := full.Row(t)[cl:ch]
		dr := dense.Row(t - lo)
		if toFull {
			copy(fr, dr)
		} else {
			copy(dr, fr)
		}
	}
}

// sliceWeightCols copies columns [cl, ch) of a (rows, w) weight matrix
// into a pooled dense (rows, ch-cl) matrix, so the column-sharded GEMM
// can run the standard kernel. Element (i, j) of dense·B equals element
// (i, cl+j) of dense·W bit for bit: the kernel accumulates each output
// element over k in an order independent of the output width.
func sliceWeightCols(w *tensor.Tensor, cl, ch int) *tensor.Tensor {
	rows := w.Dim(0)
	out := tensor.GetUninit(rows, ch-cl)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), w.Row(i)[cl:ch])
	}
	return out
}

// gptShardCache is GPTFFN's per-member sharded state.
type gptShardCache struct {
	x, out, hf *tensor.Tensor // caller-owned views/buffers
	cl, ch     int
	w1c        *tensor.Tensor // (M, cw) pooled column slice of W1
	hpre       *tensor.Tensor // (n, cw) pooled pre-activation columns
	pool       *tensor.Pool   // the member's compute-stream budget (nil = default)
}

// HiddenWidth implements ShardedExpert: the exchanged activation is
// a = GeLU(x·W1 + b1), one band of width H.
func (f *GPTFFN) HiddenWidth() int { return f.h }
func (f *GPTFFN) FwdBands() int    { return 1 }
func (f *GPTFFN) BwdBands() int    { return 1 }

// BeginSharded implements ShardedExpert.
func (f *GPTFFN) BeginSharded(x, out, hf *tensor.Tensor, cl, ch int, pool *tensor.Pool) ShardedCache {
	c := &gptShardCache{x: x, out: out, hf: hf, cl: cl, ch: ch, pool: pool}
	if ch > cl {
		c.w1c = sliceWeightCols(f.w1.W, cl, ch)
		c.hpre = tensor.GetUninit(x.Dim(0), ch-cl)
	}
	return c
}

// ForwardHidden implements ShardedExpert: the member's columns of
// h = x·W1 + b1 and a = GeLU(h), bit-identical to the same columns of the
// monolithic stage.
func (f *GPTFFN) ForwardHidden(sc ShardedCache, lo, hi int) {
	c := sc.(*gptShardCache)
	if lo >= hi || c.ch <= c.cl {
		return
	}
	hv := c.hpre.Slice(lo, hi)
	c.pool.MatMulInto(hv, c.x.Slice(lo, hi), c.w1c)
	tensor.AddRowVectorInPlace(hv, f.b1.W.Slice(c.cl, c.ch))
	av := tensor.GetUninit(hi-lo, c.ch-c.cl)
	tensor.GeLUInto(av, hv)
	copyCols(av, c.hf, lo, hi, c.cl, c.ch, true)
	tensor.Put(av)
}

// ForwardOut implements ShardedExpert: full-width stage 2 on the member's
// token rows, exactly ForwardChunk's second GEMM.
func (f *GPTFFN) ForwardOut(sc ShardedCache, lo, hi int) {
	c := sc.(*gptShardCache)
	if lo >= hi {
		return
	}
	ov := c.out.Slice(lo, hi)
	c.pool.MatMulInto(ov, c.hf.Slice(lo, hi), f.w2.W)
	tensor.AddRowVectorInPlace(ov, f.b2.W)
}

// BackwardHidden implements ShardedExpert: the member's columns of
// da = (dy·W2ᵀ) ⊙ GeLU'(h), using the row-contiguous W2 slice so no copy
// is needed.
func (f *GPTFFN) BackwardHidden(sc ShardedCache, dy, hb *tensor.Tensor, lo, hi int) {
	c := sc.(*gptShardCache)
	if lo >= hi || c.ch <= c.cl {
		return
	}
	dav := tensor.GetUninit(hi-lo, c.ch-c.cl)
	c.pool.MatMulT2Into(dav, dy.Slice(lo, hi), f.w2.W.Slice(c.cl, c.ch))
	hd := c.hpre.Slice(lo, hi).Data()
	dd := dav.Data()
	for i := range dd {
		dd[i] *= tensor.GeLUGrad(hd[i])
	}
	copyCols(dav, hb, lo, hi, c.cl, c.ch, true)
	tensor.Put(dav)
}

// BackwardIn implements ShardedExpert: dx rows from the full-width da.
func (f *GPTFFN) BackwardIn(sc ShardedCache, dy, dx, hb *tensor.Tensor, lo, hi int) {
	if lo >= hi {
		return
	}
	sc.(*gptShardCache).pool.MatMulT2Into(dx.Slice(lo, hi), hb.Slice(lo, hi), f.w1.W)
}

// FinishSharded implements ShardedExpert: the same full-block GEMMs and
// column sums as FinishBackward, in the same accumulation order, with
// a := hf and da := hb.
func (f *GPTFFN) FinishSharded(sc ShardedCache, dy, hb *tensor.Tensor) {
	c := sc.(*gptShardCache)
	gw2 := tensor.GetUninit(f.h, f.m)
	c.pool.MatMulT1Into(gw2, c.hf, dy)
	tensor.AddInPlace(f.w2.G, gw2)
	tensor.Put(gw2)
	addColSum(f.b2.G, dy)
	gw1 := tensor.GetUninit(f.m, f.h)
	c.pool.MatMulT1Into(gw1, c.x, hb)
	tensor.AddInPlace(f.w1.G, gw1)
	tensor.Put(gw1)
	addColSum(f.b1.G, hb)
	f.DropSharded(sc)
}

// DropSharded implements ShardedExpert.
func (f *GPTFFN) DropSharded(sc ShardedCache) {
	c := sc.(*gptShardCache)
	tensor.Put(c.hpre)
	tensor.Put(c.w1c)
	c.hpre, c.w1c = nil, nil
}

// mixtralShardCache is MixtralFFN's per-member sharded state.
type mixtralShardCache struct {
	x, out, hf *tensor.Tensor
	cl, ch     int
	w1c, w3c   *tensor.Tensor // (M, cw) pooled column slices
	gpre, u, a *tensor.Tensor // (n, cw) pooled member columns
	pool       *tensor.Pool   // the member's compute-stream budget (nil = default)
}

// HiddenWidth implements ShardedExpert: forward exchanges the gated
// product p = SiLU(x·W1) ⊙ (x·W3) (one band); backward exchanges da and
// du (two bands).
func (f *MixtralFFN) HiddenWidth() int { return f.h }
func (f *MixtralFFN) FwdBands() int    { return 1 }
func (f *MixtralFFN) BwdBands() int    { return 2 }

// BeginSharded implements ShardedExpert.
func (f *MixtralFFN) BeginSharded(x, out, hf *tensor.Tensor, cl, ch int, pool *tensor.Pool) ShardedCache {
	c := &mixtralShardCache{x: x, out: out, hf: hf, cl: cl, ch: ch, pool: pool}
	if ch > cl {
		n := x.Dim(0)
		c.w1c = sliceWeightCols(f.w1.W, cl, ch)
		c.w3c = sliceWeightCols(f.w3.W, cl, ch)
		c.gpre = tensor.GetUninit(n, ch-cl)
		c.u = tensor.GetUninit(n, ch-cl)
		c.a = tensor.GetUninit(n, ch-cl)
	}
	return c
}

// ForwardHidden implements ShardedExpert.
func (f *MixtralFFN) ForwardHidden(sc ShardedCache, lo, hi int) {
	c := sc.(*mixtralShardCache)
	if lo >= hi || c.ch <= c.cl {
		return
	}
	xv := c.x.Slice(lo, hi)
	gv, uv, av := c.gpre.Slice(lo, hi), c.u.Slice(lo, hi), c.a.Slice(lo, hi)
	c.pool.MatMulInto(gv, xv, c.w1c)
	c.pool.MatMulInto(uv, xv, c.w3c)
	tensor.SiLUInto(av, gv)
	pt := tensor.GetUninit(hi-lo, c.ch-c.cl)
	tensor.MulInto(pt, av, uv)
	copyCols(pt, c.hf, lo, hi, c.cl, c.ch, true)
	tensor.Put(pt)
}

// ForwardOut implements ShardedExpert.
func (f *MixtralFFN) ForwardOut(sc ShardedCache, lo, hi int) {
	c := sc.(*mixtralShardCache)
	if lo >= hi {
		return
	}
	c.pool.MatMulInto(c.out.Slice(lo, hi), c.hf.Slice(lo, hi), f.w2.W)
}

// BackwardHidden implements ShardedExpert: band 0 of hb receives the
// member's columns of da, band 1 those of du.
func (f *MixtralFFN) BackwardHidden(sc ShardedCache, dy, hb *tensor.Tensor, lo, hi int) {
	c := sc.(*mixtralShardCache)
	if lo >= hi || c.ch <= c.cl {
		return
	}
	n := c.x.Dim(0)
	cw := c.ch - c.cl
	dpt := tensor.GetUninit(hi-lo, cw)
	c.pool.MatMulT2Into(dpt, dy.Slice(lo, hi), f.w2.W.Slice(c.cl, c.ch))
	dat := tensor.GetUninit(hi-lo, cw)
	dut := tensor.GetUninit(hi-lo, cw)
	tensor.MulInto(dat, dpt, c.u.Slice(lo, hi))
	tensor.MulInto(dut, dpt, c.a.Slice(lo, hi))
	tensor.Put(dpt)
	gd := c.gpre.Slice(lo, hi).Data()
	dd := dat.Data()
	for i := range dd {
		dd[i] *= tensor.SiLUGrad(gd[i])
	}
	copyCols(dat, hb, lo, hi, c.cl, c.ch, true)
	copyCols(dut, hb, n+lo, n+hi, c.cl, c.ch, true)
	tensor.Put(dat)
	tensor.Put(dut)
}

// BackwardIn implements ShardedExpert: dx rows from the full-width da
// (band 0) and du (band 1), in the monolithic accumulation order.
func (f *MixtralFFN) BackwardIn(sc ShardedCache, dy, dx, hb *tensor.Tensor, lo, hi int) {
	c := sc.(*mixtralShardCache)
	if lo >= hi {
		return
	}
	n := c.x.Dim(0)
	dxv := dx.Slice(lo, hi)
	c.pool.MatMulT2Into(dxv, hb.Slice(lo, hi), f.w1.W)
	dxu := tensor.GetUninit(hi-lo, f.m)
	c.pool.MatMulT2Into(dxu, hb.Slice(n+lo, n+hi), f.w3.W)
	tensor.AddInPlace(dxv, dxu)
	tensor.Put(dxu)
}

// FinishSharded implements ShardedExpert: FinishBackward's GEMMs with
// p := hf, da := hb band 0, du := hb band 1.
func (f *MixtralFFN) FinishSharded(sc ShardedCache, dy, hb *tensor.Tensor) {
	c := sc.(*mixtralShardCache)
	n := c.x.Dim(0)
	gw := tensor.GetUninit(f.h, f.m)
	c.pool.MatMulT1Into(gw, c.hf, dy)
	tensor.AddInPlace(f.w2.G, gw)
	tensor.Put(gw)
	gw13 := tensor.GetUninit(f.m, f.h)
	c.pool.MatMulT1Into(gw13, c.x, hb.Slice(0, n))
	tensor.AddInPlace(f.w1.G, gw13)
	c.pool.MatMulT1Into(gw13, c.x, hb.Slice(n, 2*n))
	tensor.AddInPlace(f.w3.G, gw13)
	tensor.Put(gw13)
	f.DropSharded(sc)
}

// DropSharded implements ShardedExpert.
func (f *MixtralFFN) DropSharded(sc ShardedCache) {
	c := sc.(*mixtralShardCache)
	tensor.Put(c.gpre)
	tensor.Put(c.u)
	tensor.Put(c.a)
	tensor.Put(c.w1c)
	tensor.Put(c.w3c)
	c.gpre, c.u, c.a, c.w1c, c.w3c = nil, nil, nil, nil, nil
}

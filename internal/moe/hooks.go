package moe

import "repro/internal/tensor"

// Hooks are the six non-invasive extension points of §3.1. Each hook, when
// non-nil, receives the activation tensor at its stage and returns the
// (possibly replaced) tensor that flows onward. Multiple Hooks structs
// compose in registration order.
//
// The paper's examples map directly: multimodal reshaping lives in
// BeforeMoeStart/BeforeMoeEnd; communication compression pairs
// BeforeDispatch (compress) with AfterDispatch (decompress).
type Hooks struct {
	BeforeMoeStart func(x *tensor.Tensor) *tensor.Tensor
	BeforeDispatch func(x *tensor.Tensor) *tensor.Tensor
	AfterDispatch  func(x *tensor.Tensor) *tensor.Tensor
	BeforeCombine  func(x *tensor.Tensor) *tensor.Tensor
	AfterCombine   func(x *tensor.Tensor) *tensor.Tensor
	BeforeMoeEnd   func(x *tensor.Tensor) *tensor.Tensor
}

// hookChain applies one named stage of every registered Hooks in order.
type hookChain []Hooks

func (h hookChain) beforeMoeStart(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.BeforeMoeStart != nil {
			x = hk.BeforeMoeStart(x)
		}
	}
	return x
}

func (h hookChain) beforeDispatch(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.BeforeDispatch != nil {
			x = hk.BeforeDispatch(x)
		}
	}
	return x
}

func (h hookChain) afterDispatch(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.AfterDispatch != nil {
			x = hk.AfterDispatch(x)
		}
	}
	return x
}

func (h hookChain) beforeCombine(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.BeforeCombine != nil {
			x = hk.BeforeCombine(x)
		}
	}
	return x
}

func (h hookChain) afterCombine(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.AfterCombine != nil {
			x = hk.AfterCombine(x)
		}
	}
	return x
}

func (h hookChain) beforeMoeEnd(x *tensor.Tensor) *tensor.Tensor {
	for _, hk := range h {
		if hk.BeforeMoeEnd != nil {
			x = hk.BeforeMoeEnd(x)
		}
	}
	return x
}

// Dispatcher is the Dispatch/Combine sub-module of §3.1. On a single
// device it is the identity; internal/comm provides a multi-rank
// implementation backed by real AlltoAll collectives. Dispatch and Combine
// act on the (E, T, M) layout; the *Grad variants are their adjoints for
// the backward pass (an AlltoAll is its own adjoint up to the inverse
// permutation).
type Dispatcher interface {
	Name() string
	Dispatch(x *tensor.Tensor) *tensor.Tensor
	Combine(x *tensor.Tensor) *tensor.Tensor
	DispatchGrad(g *tensor.Tensor) *tensor.Tensor
	CombineGrad(g *tensor.Tensor) *tensor.Tensor
}

// LocalDispatcher is the single-device identity dispatcher.
type LocalDispatcher struct{}

// Name implements Dispatcher.
func (LocalDispatcher) Name() string { return "local" }

// Dispatch implements Dispatcher.
func (LocalDispatcher) Dispatch(x *tensor.Tensor) *tensor.Tensor { return x }

// Combine implements Dispatcher.
func (LocalDispatcher) Combine(x *tensor.Tensor) *tensor.Tensor { return x }

// DispatchGrad implements Dispatcher.
func (LocalDispatcher) DispatchGrad(g *tensor.Tensor) *tensor.Tensor { return g }

// CombineGrad implements Dispatcher.
func (LocalDispatcher) CombineGrad(g *tensor.Tensor) *tensor.Tensor { return g }

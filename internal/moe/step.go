package moe

// This file is the executable counterpart of the paper's §5 training
// step: backward through a stack of multi-rank MoE layers with the
// Gradient-AllReduce adaptively partitioned into the backward pipelines'
// inter-stream slack (internal/gradsync), then an SGD update that every
// rank applies to its own parameter replica. StepWorlds asserts the §5
// contract by construction: the synchronized gradients — and therefore
// the stepped replicas — are bit-identical on every rank under every
// strategy, because each flat gradient element has exactly one non-zero
// contributor (RankGrads) and the restricted ring is byte-identical under
// any slicing (comm.RingAllReduceChunk).

import (
	"fmt"
	"reflect"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/gradsync"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// gradElemBytes is the accounting size of one gradient element (fp32
// master gradients, matching Expert.ParamBytes); the executable buffers
// are float64, but the §5 byte planning runs in the simulator's units.
const gradElemBytes = 4

// actElemBytes mirrors workload.ActivationBytes (fp16 activations) for
// the AlltoAll volumes fed to the degree optimizer inside the partitioner.
const actElemBytes = 2

// StepConfig configures one overlapped training step over a stack of
// Worlds.
type StepConfig struct {
	LR       float64           // SGD learning rate (0 still validates the sync path)
	Strategy gradsync.Strategy // default StrategyFSMoE

	// Train enables training-only gate behaviour in the forward pass
	// (e.g. GShard's noisy gating). Strategy comparisons on separately
	// built stacks should leave it false: gate-internal RNG state would
	// otherwise make the routing — and so the step — run-dependent.
	Train bool

	// Models drives PartitionGradients and the emitted tasks' simulated
	// durations; the zero value defaults to Testbed A's exact models.
	Models     core.Models
	RMax       int     // Algorithm-1 degree cap inside the partitioner (default 16)
	ChunkBytes float64 // Lina fixed-chunk size (default 30 MiB)
	Slices     int     // AllReduce slices per hidden window (default 4)

	// Sequential executes every stream plan on one goroutine (the
	// no-overlap measurement baseline whose per-task durations feed
	// Plan.SimulateWith predictions). Strategies still place their
	// AllReduce slices identically; only the executor changes.
	Sequential bool

	// Checkpoint, when non-nil, snapshots the whole stack after every
	// CheckpointEvery-th completed step (default: every step) through the
	// manager's atomic, checksummed writer — the state elastic recovery
	// rolls back to after a permanent rank loss. A nil Checkpoint adds
	// nothing to the step path.
	Checkpoint      *ckpt.Manager
	CheckpointEvery int
}

func (c StepConfig) withDefaults() StepConfig {
	if c.Strategy == "" {
		c.Strategy = gradsync.StrategyFSMoE
	}
	if c.Models == (core.Models{}) {
		c.Models = core.ModelsFromCluster(topology.TestbedA())
	}
	return c
}

// StepResult is one measured training step.
type StepResult struct {
	ForwardMS  float64 // summed measured forward-plan makespans
	BackwardMS float64 // summed measured backward-plan makespans (incl. hidden AllReduce)
	TailMS     float64 // measured exposed Gradient-AllReduce tail
	Report     gradsync.Report

	// RankParams[r] is rank r's post-step parameter replica in the
	// GradElems layout, layers concatenated in stack order. All rows are
	// bit-identical across ranks and across strategies.
	RankParams [][]float64

	// Plans and Traces hold each layer's backward stream plan and measured
	// trace in backward (reverse stack) order; the AllReduce slices appear
	// as "AllReduce"-kind tasks on the inter stream. Layers that completed
	// on the degraded path contribute no plan/trace (their entries are
	// skipped — see Degraded).
	Plans  []*runtime.Plan
	Traces []*sim.Trace

	// Degraded reports every layer pass that survived a permanent rank
	// failure this step (empty when the step ran at full strength). The
	// step still completes: RankParams stay bit-identical across ranks,
	// with the dead experts' parameters frozen (zero gradient).
	Degraded []*DegradedResult

	Y  *tensor.Tensor // final forward output
	DX *tensor.Tensor // input gradient

	// CheckpointPath is the snapshot file this step wrote, when
	// StepConfig.Checkpoint was configured and the step hit the cadence.
	CheckpointPath string

	// Metrics is the step's structured telemetry record, built — and
	// emitted to every distinct configured sink — only when at least one
	// world in the stack has a WorldConfig.Sink; nil otherwise, so
	// unconfigured telemetry adds nothing to the step path.
	Metrics *telemetry.StepMetrics
}

// StepMS is the step's measured wall time: backward plus the exposed
// tail. Forward is reported separately — gradient synchronization never
// touches it.
func (r *StepResult) StepMS() float64 { return r.BackwardMS + r.TailMS }

// Step runs a single-layer training step; see StepWorlds.
func (w *World) Step(x, dy *tensor.Tensor, cfg StepConfig) (*StepResult, error) {
	return StepWorlds([]*World{w}, x, dy, cfg)
}

// StepWorlds runs one training step over a stack of Worlds (layer i's
// output feeds layer i+1): forward through the stack, backward in
// reverse with the §5 Gradient-AllReduce overlapped into each layer's
// backward plan per the strategy, the exposed tail, and an SGD update.
// Gradients of layers whose backward already finished are the pending
// pool each earlier layer's plan may hide, exactly the backward-order
// greedy fill of §5.2; layer 0's own gradients (and any unhidden
// remainder) are the tail.
func StepWorlds(worlds []*World, x, dy *tensor.Tensor, cfg StepConfig) (*StepResult, error) {
	cfg = cfg.withDefaults()
	if len(worlds) == 0 {
		return nil, fmt.Errorf("moe: step needs at least one world")
	}
	ranks := worlds[0].cfg.Ranks
	for i, w := range worlds {
		if w.cfg.Ranks != ranks {
			return nil, fmt.Errorf("moe: world %d has %d ranks, world 0 has %d", i, w.cfg.Ranks, ranks)
		}
	}
	// The executor mode is scoped to this step; restore whatever the
	// caller had configured on the worlds afterwards.
	prevSeq := make([]bool, len(worlds))
	for i, w := range worlds {
		prevSeq[i] = w.seq
		w.layer.ZeroGrad()
		w.SetSequential(cfg.Sequential)
	}
	defer func() {
		for i, w := range worlds {
			w.SetSequential(prevSeq[i])
		}
	}()

	res := &StepResult{}

	// Telemetry is pay-for-use: with no sink configured anywhere on the
	// stack, sinks is nil and every metrics branch below is a single nil
	// check — no traces retained, no metrics built, no allocations added.
	sinks := stepSinks(worlds)
	var fwdTraces []*sim.Trace

	// Forward chain.
	caches := make([]*WorldCache, len(worlds))
	cur := x
	for i, w := range worlds {
		y, cache, err := w.Forward(cur, cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("moe: step forward layer %d: %w", i, err)
		}
		caches[i] = cache
		if tr := w.LastTrace(); tr != nil {
			res.ForwardMS += tr.Makespan
			if sinks != nil {
				fwdTraces = append(fwdTraces, tr)
			}
		}
		cur = y
	}
	res.Y = cur

	// Register every layer with the syncer using live volumes (the padded
	// capacity each forward actually dispatched).
	specs := make([]gradsync.LayerSpec, len(worlds))
	for i, w := range worlds {
		total, dense := w.GradElems()
		specs[i] = gradsync.LayerSpec{Elems: total, DenseElems: dense, V: stepVolumes(w, caches[i].tpad)}
	}
	syncer, err := gradsync.New(gradsync.Config{
		Strategy:    cfg.Strategy,
		Models:      cfg.Models,
		RMax:        cfg.RMax,
		ChunkBytes:  cfg.ChunkBytes,
		Slices:      cfg.Slices,
		ElemBytes:   gradElemBytes,
		GPUsPerNode: worlds[0].cfg.GPUsPerNode,
	}, specs)
	if err != nil {
		return nil, err
	}

	// Backward chain in reverse, overlapping the pending pool into each
	// layer's plan, then collecting the layer's own partial gradients.
	dcur := dy
	for i := len(worlds) - 1; i >= 0; i-- {
		w := worlds[i]
		syncer.StartLayer(i)
		w.SetBackwardSyncer(syncer)
		dx, err := w.Backward(caches[i], dcur)
		w.SetBackwardSyncer(nil)
		if err != nil {
			return nil, fmt.Errorf("moe: step backward layer %d: %w", i, err)
		}
		if tr := w.LastTrace(); tr != nil {
			res.BackwardMS += tr.Makespan
			res.Plans = append(res.Plans, w.LastPlan())
			res.Traces = append(res.Traces, tr)
		}
		if deg := w.LastDegraded(); deg != nil {
			// RecoveryMS spans the whole degraded pass (forward fallback
			// included); charge it to the backward total once.
			res.BackwardMS += deg.RecoveryMS
			res.Degraded = append(res.Degraded, deg)
		}
		if err := syncer.Collect(i, w.RankGrads()); err != nil {
			return nil, err
		}
		dcur = dx
	}
	res.DX = dcur

	rep, err := syncer.Finish()
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.TailMS = rep.TailMS

	if err := applySGD(worlds, syncer, cfg.LR, ranks, res); err != nil {
		return nil, err
	}
	step := worlds[0].steps
	for _, w := range worlds {
		w.steps++
	}
	// Recovery reports accumulated since the previous completed step (the
	// stack recovered between steps) drain into this step's telemetry;
	// drained unconditionally so they never pile up sink-less.
	var recovs []*RecoveryReport
	for _, w := range worlds {
		recovs = append(recovs, w.drainRecoveries()...)
	}
	if cfg.Checkpoint != nil {
		every := cfg.CheckpointEvery
		if every < 1 {
			every = 1
		}
		if (step+1)%every == 0 {
			path, err := cfg.Checkpoint.Save(SnapshotWorlds(worlds))
			if err != nil {
				return nil, fmt.Errorf("moe: step checkpoint: %w", err)
			}
			res.CheckpointPath = path
		}
	}
	if sinks != nil {
		res.Metrics = buildStepMetrics(worlds, caches, fwdTraces, res, step, recovs)
		for _, s := range sinks {
			s.OnStep(res.Metrics)
		}
	}
	return res, nil
}

// stepSinks collects the distinct non-nil telemetry sinks configured
// across the stack (nil when telemetry is disabled everywhere — the
// common case, which must not allocate).
func stepSinks(worlds []*World) []telemetry.Sink {
	var sinks []telemetry.Sink
	for _, w := range worlds {
		s := w.cfg.Sink
		if s == nil {
			continue
		}
		dup := false
		for _, have := range sinks {
			if sameSink(have, s) {
				dup = true
				break
			}
		}
		if !dup {
			sinks = append(sinks, s)
		}
	}
	return sinks
}

// sameSink reports whether two sinks are the same emission target.
// Interface equality would panic on uncomparable dynamic types (SinkFunc),
// so reference kinds compare by identity instead.
func sameSink(a, b telemetry.Sink) bool {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Type() != vb.Type() {
		return false
	}
	switch va.Kind() {
	case reflect.Func, reflect.Pointer, reflect.Map, reflect.Chan, reflect.Slice:
		return va.Pointer() == vb.Pointer()
	}
	return va.Type().Comparable() && a == b
}

// buildStepMetrics assembles the step's structured record from quantities
// the step already measured: the forward and backward traces (serial time,
// per-stream busy time, fault/retry incidents), each layer's routing plan
// (the FlexMoE per-expert load signal), the §5 sync report and the PR-5
// resource plan. Called only when a sink is configured.
func buildStepMetrics(worlds []*World, caches []*WorldCache, fwdTraces []*sim.Trace, res *StepResult, step int, recovs []*RecoveryReport) *telemetry.StepMetrics {
	w0 := worlds[0]
	m := &telemetry.StepMetrics{
		Step:      step,
		Ranks:     w0.Ranks(),
		Layers:    len(worlds),
		Strategy:  string(w0.Strategy()),
		GroupSize: w0.GroupSize(),
	}
	m.DegreeFwd, m.DegreeBwd = w0.Degrees()
	m.ForwardMS, m.BackwardMS, m.TailMS = res.ForwardMS, res.BackwardMS, res.TailMS
	for _, tr := range fwdTraces {
		m.AddTrace(tr)
	}
	for _, tr := range res.Traces {
		m.AddTrace(tr)
	}
	for _, c := range caches {
		if c == nil || c.pr == nil || c.pr.plan == nil {
			continue
		}
		m.AddExpertLoad(c.pr.plan.ExpertLoad())
		m.DroppedTokens += c.pr.plan.Dropped
	}
	m.DegradedPasses = len(res.Degraded)
	m.Recoveries = len(recovs)
	for _, r := range recovs {
		m.RecoveryMS += r.RecoveryMS
	}
	m.ComputeWorkers, m.CommWorkers = w0.ResourcePlan()
	m.SyncHiddenBytes = res.Report.HiddenBytes
	m.SyncTailBytes = res.Report.TailBytes
	m.Finalize()
	return m
}

// applySGD builds every rank's post-step replica from the synchronized
// gradients and writes the (identical) rank-0 replica back into the
// shared parameters, so the stack trains for real.
func applySGD(worlds []*World, syncer *gradsync.Syncer, lr float64, ranks int, res *StepResult) error {
	total := 0
	for _, w := range worlds {
		n, _ := w.GradElems()
		total += n
	}
	res.RankParams = make([][]float64, ranks)
	for r := range res.RankParams {
		res.RankParams[r] = make([]float64, 0, total)
	}
	for i, w := range worlds {
		grads := syncer.LayerGrads(i)
		if grads == nil {
			return fmt.Errorf("moe: layer %d has no synchronized gradients", i)
		}
		off := 0
		for _, p := range w.layer.Params() {
			wd := p.W.Data()
			for r := 0; r < ranks; r++ {
				g := grads[r][off : off+len(wd)]
				buf := res.RankParams[r]
				for k, v := range wd {
					buf = append(buf, v-lr*g[k])
				}
				res.RankParams[r] = buf
			}
			off += len(wd)
		}
	}
	// The replicas are bit-identical; commit rank 0's to the live layers.
	off := 0
	for _, w := range worlds {
		for _, p := range w.layer.Params() {
			wd := p.W.Data()
			copy(wd, res.RankParams[0][off:off+len(wd)])
			off += len(wd)
		}
	}
	return nil
}

// stepVolumes derives the §5 accounting volumes for one world from its
// live shapes: per-GPU AlltoAll bytes from the padded dispatched tokens,
// expert MACs from the live expert implementations, gradient bytes from
// the flattened parameter count, and a nominal dense window (the stack
// has no real dense compute between MoE layers).
func stepVolumes(w *World, tpad int) core.Volumes {
	R, mdim := w.cfg.Ranks, w.layer.cfg.M
	experts := w.layer.cfg.Experts
	eg := w.egrp
	nA2A := float64(tpad*eg*mdim) * actElemBytes // per-rank wire volume of one A2A
	macs := 0.0
	for _, ex := range experts {
		macs += ex.FwdMACs(tpad)
	}
	macs /= float64(R) // per-GPU share
	gemms := 2
	if _, ok := experts[0].(*MixtralFFN); ok {
		gemms = 3
	}
	total, _ := w.GradElems()
	return core.Volumes{
		NA2A:      nA2A,
		NAG:       nA2A,
		NRS:       nA2A,
		ExpMACs:   macs,
		ExpGEMMs:  gemms,
		DenseFwd:  0.1,
		DenseBwd:  0.2,
		GradBytes: float64(total) * gradElemBytes,
	}
}

// SyncReport is the outcome of a standalone SyncWorlds call.
type SyncReport struct {
	Report gradsync.Report
	// LayerGrads[i][r] is layer i's synchronized flat gradient on rank r
	// (identical across ranks).
	LayerGrads [][][]float64
}

// SyncWorlds synchronizes the stack's accumulated parameter gradients
// right now, with no pipeline to hide in — the blocking entry point for
// callers that drove Forward/Backward themselves. Every rank's partial
// gradients are collected and ring-reduced to the identical full-batch
// gradient; use StepWorlds to overlap the synchronization instead.
func SyncWorlds(worlds []*World, cfg StepConfig) (*SyncReport, error) {
	cfg = cfg.withDefaults()
	if len(worlds) == 0 {
		return nil, fmt.Errorf("moe: sync needs at least one world")
	}
	specs := make([]gradsync.LayerSpec, len(worlds))
	for i, w := range worlds {
		total, dense := w.GradElems()
		// No forward cache here; account A2A volumes at the nominal padded
		// capacity of zero — only GradBytes matters for a tail-only sync.
		v := stepVolumes(w, 0)
		specs[i] = gradsync.LayerSpec{Elems: total, DenseElems: dense, V: v}
	}
	syncer, err := gradsync.New(gradsync.Config{
		Strategy:    gradsync.StrategyNoOverlap,
		Models:      cfg.Models,
		ElemBytes:   gradElemBytes,
		GPUsPerNode: worlds[0].cfg.GPUsPerNode,
	}, specs)
	if err != nil {
		return nil, err
	}
	out := &SyncReport{LayerGrads: make([][][]float64, len(worlds))}
	for i, w := range worlds {
		if err := syncer.Collect(i, w.RankGrads()); err != nil {
			return nil, err
		}
	}
	rep, err := syncer.Finish()
	if err != nil {
		return nil, err
	}
	out.Report = rep
	for i := range worlds {
		out.LayerGrads[i] = syncer.LayerGrads(i)
	}
	return out, nil
}

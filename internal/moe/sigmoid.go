package moe

import (
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// SigmoidGate is the gate of BASE layers and StableMoE (§2.1):
// scores s = x·W_g, top-k selection on the raw scores, and the expert
// output scaled by σ(s_e). Because each expert's weight is an independent
// sigmoid (no normalization across experts), increasing an expert's score
// when it helps the objective directly reinforces its selection.
type SigmoidGate struct {
	cfg GateConfig
	m   int
	wg  *Param
}

type sigmoidCache struct {
	scores *tensor.Tensor // x·W_g, (N, E)
	selIdx [][]int
	selW   [][]float64 // σ(s) at the selected experts
}

// NewSigmoidGate constructs the gate for embedding size m.
func NewSigmoidGate(cfg GateConfig, m int, rng *xrand.RNG) (*SigmoidGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SigmoidGate{cfg: cfg, m: m, wg: newParam("sigmoid.wg", tensor.Xavier(rng, m, cfg.Experts))}, nil
}

// Name implements Gate.
func (g *SigmoidGate) Name() string { return "sigmoid" }

// Params implements Gate.
func (g *SigmoidGate) Params() []*Param { return []*Param{g.wg} }

// Route implements Gate.
func (g *SigmoidGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	n, e := x.Dim(0), g.cfg.Experts
	scores := tensor.MatMul(x, g.wg.W)
	cache := &sigmoidCache{scores: scores, selIdx: make([][]int, n), selW: make([][]float64, n)}
	var asg []assignment
	for t := 0; t < n; t++ {
		row := scores.Row(t)
		sel := tensor.TopK(row, g.cfg.TopK)
		w := make([]float64, len(sel))
		for j, idx := range sel {
			w[j] = 1 / (1 + expNeg(row[idx]))
		}
		cache.selIdx[t] = sel
		cache.selW[t] = w
		for j, idx := range sel {
			asg = append(asg, assignment{token: t, expert: idx, weight: w[j], choice: j})
		}
	}
	capacity := CapacityFor(n, e, g.cfg.TopK, g.cfg.Factor)
	plan := buildHardPlan(n, e, capacity, asg)
	return plan, &RouteCache{X: x, Plan: plan, extra: cache}, nil
}

// Backward implements Gate.
func (g *SigmoidGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	cache := rc.extra.(*sigmoidCache)
	x := rc.X
	n, e := x.Dim(0), g.cfg.Experts
	dW := slotGradToTokenGrad(rc.Plan, cache.selIdx, grad.SlotWeight, n)
	dScores := tensor.New(n, e)
	for t := 0; t < n; t++ {
		for j, idx := range cache.selIdx[t] {
			s := cache.selW[t][j]
			dScores.Set(dW[t][j]*s*(1-s), t, idx) // σ' = σ(1-σ)
		}
	}
	tensor.AddInPlace(g.wg.G, tensor.MatMulT1(x, dScores))
	return tensor.MatMulT2(dScores, g.wg.W)
}

func expNeg(x float64) float64 {
	// exp(-x) via the tensor package's stable sigmoid would allocate; this
	// tiny helper keeps the hot loop allocation-free.
	if x > 700 {
		return 0
	}
	if x < -700 {
		return 1e308
	}
	return exp(-x)
}

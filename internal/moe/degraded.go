package moe

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// Degraded-mode stepping: a permanent rank-down event mid-plan does not
// abort training. The world marks the rank dead, drops its expert shard,
// and completes the pass on a sequential fallback path built around the
// survivors:
//
//   - Forward-time failure: the dead rank's experts can no longer run, so
//     every token they held is re-routed into surviving experts' free
//     capacity slots (keeping its original combine weight — the fallback
//     approximation); tokens with nowhere to go are dropped like
//     over-capacity tokens in §2.1. The forward is then recomputed
//     sequentially from the prolog under the re-routed plan.
//
//   - Backward-time failure: the forward already completed at full
//     strength, so the routing is kept and only the dead experts' slots
//     are cleared — their gradient contribution is dropped. The surviving
//     experts' forward caches are rebuilt from the cached dispatch and
//     the backward runs sequentially. The aborted plan may have partially
//     accumulated parameter gradients, so the layer's gradients are
//     zeroed first.
//
// In both modes the router is frozen: the gate backward pairs its
// RouteCache with the original plan, which no longer describes the
// executed routing, so the routing gradient is dropped for the degraded
// step. Dead experts accumulate no gradient, so an optimizer step leaves
// them untouched and a later ResetHealth resumes from consistent weights.
// Dense (SoftMoE) plans spread every token over every expert and have no
// per-token fallback, so degraded mode requires hard routing.

// DegradedResult reports how a degraded pass completed.
type DegradedResult struct {
	Rank        int    // the permanently failed rank
	Phase       string // "forward" or "backward": where the failure hit
	LostExperts []int  // global expert indices owned by the dead rank

	// ReroutedTokens counts slot assignments moved into surviving
	// experts' free capacity (forward-time failures only); DroppedTokens
	// counts assignments lost outright — no free capacity, or a
	// backward-time failure dropping the dead experts' gradient slots.
	ReroutedTokens int
	DroppedTokens  int

	// Retries is how many transient-fault retries the aborted plan spent
	// before the permanent failure; RecoveryMS is the sequential fallback
	// time the failure added on top of the aborted plan — the tail
	// inflation of surviving the fault.
	Retries    int
	RecoveryMS float64
	Cause      string
}

// degradedState carries a degraded forward's private state to Backward in
// place of the strategy caches.
type degradedState struct {
	dplan  *DispatchPlan // the re-routed (or slot-cleared) plan actually executed
	caches []ExpertCache // surviving experts' forward caches; nil for lost ones
	lo, hi int           // lost expert range [lo, hi)
	res    *DegradedResult
}

// lostRange returns the dead rank's owned expert range.
func (w *World) lostRange() (lo, hi int) { return w.down * w.egrp, (w.down + 1) * w.egrp }

func lostList(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for e := lo; e < hi; e++ {
		out = append(out, e)
	}
	return out
}

// degradedForward completes a forward pass around the dead rank: re-route
// the lost experts' tokens, then recompute sequentially from the prolog
// (the aborted pipelined buffers are never read — the prolog's flat input
// is intact).
func (w *World) degradedForward(pr *forwardProlog, retries int, cause string) (*tensor.Tensor, *WorldCache, error) {
	if pr.plan.IsDense() {
		return nil, nil, fmt.Errorf("moe: degraded mode needs hard routing; dense plans have no per-token fallback (rank %d down)", w.down)
	}
	t0 := time.Now()
	lo, hi := w.lostRange()
	dplan, rerouted, dropped := reroutePlan(pr.plan, lo, hi)
	mdim := w.layer.cfg.M
	e, t := dplan.Experts, dplan.Capacity

	scattered := w.layer.cfg.Order.Scatter(pr.flat, dplan)
	dispatched := w.layer.disp.Dispatch(scattered)
	expertOut := tensor.New(e, t, mdim)
	caches := make([]ExpertCache, e)
	blk := t * mdim
	for j := 0; j < e; j++ {
		if j >= lo && j < hi {
			continue // dead expert: slots empty, block stays zero
		}
		in := dispatched.View(j*blk, t, mdim)
		if ie, ok := w.layer.cfg.Experts[j].(IntoExpert); ok {
			caches[j] = ie.ForwardInto(in, expertOut.View(j*blk, t, mdim))
			continue
		}
		out, c := w.layer.cfg.Experts[j].Forward(in)
		caches[j] = c
		copy(expertOut.Data()[j*blk:(j+1)*blk], out.Data())
	}
	combined := w.layer.disp.Combine(expertOut)
	y := w.layer.epilog(combined, dplan, pr.flat.Dim(0), pr.shape)

	res := &DegradedResult{
		Rank:           w.down,
		Phase:          "forward",
		LostExperts:    lostList(lo, hi),
		ReroutedTokens: rerouted,
		DroppedTokens:  dropped,
		Retries:        retries,
		RecoveryMS:     time.Since(t0).Seconds() * 1e3,
		Cause:          cause,
	}
	w.degraded = res
	cache := &WorldCache{
		pr:       pr,
		combined: combined,
		deg:      &degradedState{dplan: dplan, caches: caches, lo: lo, hi: hi, res: res},
	}
	return y, cache, nil
}

// degradedBackward runs the sequential backward paired with a degraded
// forward cache: I-Order adjoint under the degraded plan, surviving
// experts only, frozen router.
func (w *World) degradedBackward(cache *WorldCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	t0 := time.Now()
	st := cache.deg
	pr := cache.pr
	dplan := st.dplan
	mdim := w.layer.cfg.M
	e, t := dplan.Experts, dplan.Capacity

	dExpertOut, _, err := w.layer.backwardProlog(cache.combined, dplan, dy)
	if err != nil {
		return nil, err
	}
	dExpertOut = w.layer.disp.CombineGrad(dExpertOut)

	dDispatched := tensor.New(e, t, mdim)
	blk := t * mdim
	for j := 0; j < e; j++ {
		if j >= st.lo && j < st.hi {
			continue // dead expert: no cache, no gradient, block stays zero
		}
		dOut := dExpertOut.View(j*blk, t, mdim)
		if ie, ok := w.layer.cfg.Experts[j].(IntoExpert); ok {
			ie.BackwardInto(st.caches[j], dOut, dDispatched.View(j*blk, t, mdim))
			continue
		}
		dIn := w.layer.cfg.Experts[j].Backward(st.caches[j], dOut)
		copy(dDispatched.Data()[j*blk:(j+1)*blk], dIn.Data())
	}

	dScattered := w.layer.disp.DispatchGrad(dDispatched)
	dx := w.layer.cfg.Order.ScatterGrad(dScattered, dplan, pr.flat.Dim(0))
	// Frozen router: no Gate.Backward — its RouteCache pairs with the
	// original plan, not the degraded one (see the package comment above).
	if len(pr.shape) == 3 {
		dx = dx.Reshape(pr.shape...)
	}
	cache.combined = nil
	st.res.RecoveryMS += time.Since(t0).Seconds() * 1e3
	w.degraded = st.res
	return dx, nil
}

// degradedBackwardRecover handles a permanent failure during a
// full-strength backward plan: the forward completed intact, so the
// routing is kept with the dead experts' gradient slots cleared, the
// surviving experts' caches are rebuilt by re-running their forward from
// the cached dispatch, and the partially accumulated gradients of the
// aborted plan are zeroed before the sequential backward recomputes them.
func (w *World) degradedBackwardRecover(cache *WorldCache, dy *tensor.Tensor, retries int, cause string) (*tensor.Tensor, error) {
	pr := cache.pr
	if pr.plan.IsDense() {
		return nil, fmt.Errorf("moe: degraded mode needs hard routing; dense plans have no per-token fallback (rank %d down)", w.down)
	}
	t0 := time.Now()
	lo, hi := w.lostRange()
	dplan, cleared := clearLostSlots(pr.plan, lo, hi)
	mdim := w.layer.cfg.M
	e, t := dplan.Experts, dplan.Capacity

	// The aborted plan's W tasks may have accumulated partial parameter
	// gradients; restart this layer's accumulation from zero.
	w.layer.ZeroGrad()

	dispatched := w.layer.disp.Dispatch(pr.scattered)
	caches := make([]ExpertCache, e)
	scratch := tensor.New(e, t, mdim) // recomputed outputs; only the caches matter
	blk := t * mdim
	for j := 0; j < e; j++ {
		if j >= lo && j < hi {
			continue
		}
		in := dispatched.View(j*blk, t, mdim)
		if ie, ok := w.layer.cfg.Experts[j].(IntoExpert); ok {
			caches[j] = ie.ForwardInto(in, scratch.View(j*blk, t, mdim))
			continue
		}
		_, c := w.layer.cfg.Experts[j].Forward(in)
		caches[j] = c
	}

	res := &DegradedResult{
		Rank:          w.down,
		Phase:         "backward",
		LostExperts:   lostList(lo, hi),
		DroppedTokens: cleared,
		Retries:       retries,
		RecoveryMS:    time.Since(t0).Seconds() * 1e3,
		Cause:         cause,
	}
	cache.deg = &degradedState{dplan: dplan, caches: caches, lo: lo, hi: hi, res: res}
	return w.degradedBackward(cache, dy)
}

// copyPlan deep-copies a hard routing plan's slot tables.
func copyPlan(plan *DispatchPlan) *DispatchPlan {
	np := &DispatchPlan{
		Experts:  plan.Experts,
		Capacity: plan.Capacity,
		Dropped:  plan.Dropped,
		AuxLoss:  plan.AuxLoss,
	}
	np.SlotToken = make([][]int, plan.Experts)
	np.SlotWeight = make([][]float64, plan.Experts)
	for e := range plan.SlotToken {
		np.SlotToken[e] = append([]int(nil), plan.SlotToken[e]...)
		np.SlotWeight[e] = append([]float64(nil), plan.SlotWeight[e]...)
	}
	return np
}

// reroutePlan moves every occupied slot of experts [lo, hi) into free
// capacity of the surviving experts: a deterministic cyclic scan with a
// rotating start spreads the refugees round-robin, and per-expert scan
// positions keep the whole pass O(slots). Tokens keep their original
// combine weights; refugees with no free slot anywhere are dropped.
func reroutePlan(plan *DispatchPlan, lo, hi int) (np *DispatchPlan, rerouted, dropped int) {
	np = copyPlan(plan)
	next := make([]int, plan.Experts) // per-expert free-slot scan position
	cursor := hi % plan.Experts
	for e := lo; e < hi; e++ {
		for s := 0; s < plan.Capacity; s++ {
			tok := np.SlotToken[e][s]
			if tok < 0 {
				continue
			}
			wgt := np.SlotWeight[e][s]
			np.SlotToken[e][s], np.SlotWeight[e][s] = -1, 0
			placed := false
			for probe := 0; probe < plan.Experts; probe++ {
				cand := (cursor + probe) % plan.Experts
				if cand >= lo && cand < hi {
					continue
				}
				for next[cand] < plan.Capacity && np.SlotToken[cand][next[cand]] >= 0 {
					next[cand]++
				}
				if next[cand] < plan.Capacity {
					np.SlotToken[cand][next[cand]] = tok
					np.SlotWeight[cand][next[cand]] = wgt
					next[cand]++
					cursor = (cand + 1) % plan.Experts
					rerouted++
					placed = true
					break
				}
			}
			if !placed {
				dropped++
				np.Dropped++
			}
		}
	}
	return np, rerouted, dropped
}

// clearLostSlots empties the slots of experts [lo, hi), dropping their
// tokens' contribution; cleared counts the occupied slots lost.
func clearLostSlots(plan *DispatchPlan, lo, hi int) (np *DispatchPlan, cleared int) {
	np = copyPlan(plan)
	for e := lo; e < hi; e++ {
		for s := range np.SlotToken[e] {
			if np.SlotToken[e][s] >= 0 {
				np.SlotToken[e][s], np.SlotWeight[e][s] = -1, 0
				cleared++
				np.Dropped++
			}
		}
	}
	return np, cleared
}

package moe

import (
	"os"
	"testing"

	"repro/internal/tensor"
)

// TestMain turns on every debug guard for the whole package: the tensor
// pool's ownership checks and static plan verification. Every plan any
// strategy builds in any test below therefore passes runtime.Plan.Verify,
// and a malformed schedule fails the test that constructed it instead of
// deadlocking.
func TestMain(m *testing.M) {
	tensor.SetPoolDebug(true)
	SetVerifyPlans(true)
	os.Exit(m.Run())
}

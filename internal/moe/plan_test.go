package moe

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestCapacityFor(t *testing.T) {
	// T = k·f·N/E (§2.1): 2 choices × 1.2 × 64 tokens / 8 experts = 19.2 → 19.
	if got := CapacityFor(64, 8, 2, 1.2); got != 19 {
		t.Fatalf("CapacityFor = %d, want 19", got)
	}
	if got := CapacityFor(64, 8, 2, 0); got != 0 {
		t.Fatalf("f=∗ must return 0 (caller sizes to realized load), got %d", got)
	}
	if got := CapacityFor(2, 64, 1, 1.0); got != 1 {
		t.Fatalf("capacity floor is 1, got %d", got)
	}
}

func TestBuildHardPlanDropsOverCapacity(t *testing.T) {
	asg := []assignment{
		{token: 0, expert: 0, weight: 0.5},
		{token: 1, expert: 0, weight: 0.6},
		{token: 2, expert: 0, weight: 0.7}, // third assignment to expert 0: dropped at T=2
	}
	p := buildHardPlan(3, 2, 2, asg)
	if p.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", p.Dropped)
	}
	if p.SlotToken[0][0] != 0 || p.SlotToken[0][1] != 1 {
		t.Fatalf("slots = %v", p.SlotToken[0])
	}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHardPlanNoDropSizesToMaxLoad(t *testing.T) {
	asg := []assignment{
		{token: 0, expert: 1, weight: 1},
		{token: 1, expert: 1, weight: 1},
		{token: 2, expert: 1, weight: 1},
		{token: 3, expert: 0, weight: 1},
	}
	p := buildHardPlan(4, 2, 0, asg)
	if p.Capacity != 3 {
		t.Fatalf("f=∗ capacity = %d, want realized max load 3", p.Capacity)
	}
	if p.Dropped != 0 {
		t.Fatalf("f=∗ dropped %d tokens", p.Dropped)
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	p := buildHardPlan(4, 2, 2, []assignment{{token: 0, expert: 0, weight: 1}})
	p.SlotToken[0][1] = 99 // out of range token
	if err := p.Validate(4); err == nil {
		t.Fatal("expected validation error for bad token index")
	}
	p2 := buildHardPlan(4, 2, 2, nil)
	p2.SlotWeight[1][0] = 0.5 // weight on empty slot
	if err := p2.Validate(4); err == nil {
		t.Fatal("expected validation error for weighted empty slot")
	}
}

func TestSlotsOfReverseIndex(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tokens := 1 + r.Intn(20)
		experts := 1 + r.Intn(6)
		var asg []assignment
		for tk := 0; tk < tokens; tk++ {
			asg = append(asg, assignment{token: tk, expert: r.Intn(experts), weight: r.Float64()})
		}
		p := buildHardPlan(tokens, experts, 0, asg)
		rev := p.slotsOf(tokens)
		// Each token appears exactly once (one assignment each, f=∗).
		for tk := 0; tk < tokens; tk++ {
			if len(rev[tk]) != 1 {
				return false
			}
			e, s := rev[tk][0][0], rev[tk][0][1]
			if p.SlotToken[e][s] != tk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSlots(t *testing.T) {
	p := &DispatchPlan{Experts: 4, Capacity: 3}
	if p.Slots() != 12 {
		t.Fatalf("Slots = %d", p.Slots())
	}
}

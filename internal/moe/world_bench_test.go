package moe

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// benchWorldLayer builds a communication-heavy layer: a wide embedding
// with a modest hidden size keeps the AlltoAll + (un)pack volume
// comparable to the expert GEMMs, the regime where pipelining pays.
func benchWorldLayer(b *testing.B, m, h, e int) *MOELayer {
	b.Helper()
	rng := xrand.New(7)
	gate, err := NewGShardGate(GateConfig{Experts: e, TopK: 2, Factor: 1.2}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		if exps[i], err = NewGPTFFN(m, h, rng); err != nil {
			b.Fatal(err)
		}
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: gate, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		b.Fatal(err)
	}
	return layer
}

// BenchmarkPipelinedMoE measures one forward+backward pass of the
// multi-rank World at R=4 ranks, sequential (r=4 chunks, single-goroutine
// executor — no overlap) versus pipelined (r=4 chunks on real streams).
// On a multi-core runner the pipelined variant's wall-clock is lower: the
// inter stream moves chunk c+1 while the compute streams process chunk c —
// the paper's Fig. 3 overlap, measured rather than simulated.
func BenchmarkPipelinedMoE(b *testing.B) {
	const m, h, e, n = 256, 64, 8, 2048
	x := tensor.RandN(xrand.New(61), 1, n, m)
	dy := tensor.RandN(xrand.New(62), 1, n, m)
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"sequential", true}, {"pipelined", false}} {
		b.Run(fmt.Sprintf("%s/R=4/r=4", mode.name), func(b *testing.B) {
			layer := benchWorldLayer(b, m, h, e)
			w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 4})
			if err != nil {
				b.Fatal(err)
			}
			w.SetSequential(mode.seq)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.ZeroGrad()
				y, cache, err := w.Forward(x, false)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Backward(cache, dy); err != nil {
					b.Fatal(err)
				}
				_ = y
			}
		})
	}
}

// BenchmarkWorldDegrees sweeps the pipeline degree at R=4 so the r
// sensitivity of the measured makespan is visible alongside Algorithm 1's
// predictions.
func BenchmarkWorldDegrees(b *testing.B) {
	const m, h, e, n = 256, 64, 8, 2048
	x := tensor.RandN(xrand.New(63), 1, n, m)
	dy := tensor.RandN(xrand.New(64), 1, n, m)
	for _, r := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			layer := benchWorldLayer(b, m, h, e)
			w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: r})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.ZeroGrad()
				y, cache, err := w.Forward(x, false)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Backward(cache, dy); err != nil {
					b.Fatal(err)
				}
				_ = y
			}
		})
	}
}

// BenchmarkStepTelemetryGuard measures the telemetry branch of the step
// path in isolation — the sink scan plus the nil guard that StepWorlds
// runs once per step when no Sink is configured. The acceptance contract
// is 0 allocs/op: unconfigured telemetry must add nothing to the step hot
// path (TestStepNoSinkNoMetrics asserts the same via AllocsPerRun).
func BenchmarkStepTelemetryGuard(b *testing.B) {
	layer := benchWorldLayer(b, 64, 96, 8)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	worlds := []*World{w}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sinks := stepSinks(worlds); sinks != nil {
			b.Fatal("phantom sink")
		}
		w.steps++
	}
}

package moe

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func newTestLayer(t *testing.T, rng *xrand.RNG, gate Gate, order Order) *MOELayer {
	t.Helper()
	experts := make([]Expert, testE)
	for i := range experts {
		e, err := NewGPTFFN(testM, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		experts[i] = e
	}
	l, err := NewMOELayer(LayerConfig{M: testM, Gate: gate, Order: order, Experts: experts})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayerConfigValidation(t *testing.T) {
	rng := xrand.New(1)
	g, _ := NewSigmoidGate(GateConfig{Experts: 2, TopK: 1}, 4, rng)
	e, _ := NewGPTFFN(4, 8, rng)
	cases := []LayerConfig{
		{M: 0, Gate: g, Order: TutelOrder{}, Experts: []Expert{e}},
		{M: 4, Order: TutelOrder{}, Experts: []Expert{e}},
		{M: 4, Gate: g, Experts: []Expert{e}},
		{M: 4, Gate: g, Order: TutelOrder{}},
	}
	for i, c := range cases {
		if _, err := NewMOELayer(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLayerForwardShapes(t *testing.T) {
	rng := xrand.New(2)
	for _, g := range allGates(t, rng) {
		l := newTestLayer(t, rng, g, TutelOrder{})
		// 3-D input.
		x3 := tensor.RandN(rng, 1, 2, 5, testM)
		y3, _, err := l.Forward(x3, false)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if y3.Rank() != 3 || y3.Dim(0) != 2 || y3.Dim(1) != 5 || y3.Dim(2) != testM {
			t.Fatalf("%s: 3-D output shape %v", g.Name(), y3.Shape())
		}
		// 2-D input.
		x2 := tensor.RandN(rng, 1, testN, testM)
		y2, _, err := l.Forward(x2, false)
		if err != nil {
			t.Fatal(err)
		}
		if y2.Rank() != 2 || y2.Dim(0) != testN {
			t.Fatalf("%s: 2-D output shape %v", g.Name(), y2.Shape())
		}
	}
}

func TestLayerRejectsBadShapes(t *testing.T) {
	rng := xrand.New(3)
	l := newTestLayer(t, rng, mustSigmoid(t, rng), TutelOrder{})
	if _, _, err := l.Forward(tensor.New(4), false); err == nil {
		t.Error("rank-1 input accepted")
	}
	if _, _, err := l.Forward(tensor.New(3, testM+2), false); err == nil {
		t.Error("wrong embedding accepted")
	}
}

func mustSigmoid(t *testing.T, rng *xrand.RNG) Gate {
	t.Helper()
	g, err := NewSigmoidGate(GateConfig{Experts: testE, TopK: testK, Factor: 0}, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLayerOrderEquivalence: the same layer must produce identical outputs
// under either ordering implementation (§3.1 interchangeability, end to
// end).
func TestLayerOrderEquivalence(t *testing.T) {
	rngA := xrand.New(42)
	rngB := xrand.New(42)
	for i, mk := range []func(*xrand.RNG) Gate{
		func(r *xrand.RNG) Gate {
			g, _ := NewGShardGate(GateConfig{Experts: testE, TopK: testK}, testM, r)
			return g
		},
		func(r *xrand.RNG) Gate {
			g, _ := NewECGate(GateConfig{Experts: testE, TopK: testK, Factor: 1.2}, testM, r)
			return g
		},
	} {
		la := newTestLayer(t, rngA, mk(rngA), GShardOrder{})
		lb := newTestLayer(t, rngB, mk(rngB), TutelOrder{})
		rx := xrand.New(77)
		x := tensor.RandN(rx, 1, testN, testM)
		ya, _, err := la.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		yb, _, err := lb.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if !ya.AllClose(yb, 1e-9) {
			t.Fatalf("case %d: outputs differ between orders: max %v", i, ya.MaxAbsDiff(yb))
		}
	}
}

// TestLayerGradientsAllGates is the heavyweight correctness test: for every
// gate, the analytic input gradient and all parameter gradients must match
// central differences on a small layer.
func TestLayerGradientsAllGates(t *testing.T) {
	rng := xrand.New(2024)
	for _, g := range allGates(t, rng) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			l := newTestLayer(t, rng, g, TutelOrder{})
			rx := xrand.New(5)
			x := tensor.RandN(rx, 1, testN, testM)
			r := tensor.RandN(rx, 1, testN, testM)

			loss := func(xx *tensor.Tensor) float64 {
				y, _, err := l.Forward(xx, false)
				if err != nil {
					t.Fatal(err)
				}
				return lossOf(y, r)
			}

			l.ZeroGrad()
			y, cache, err := l.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			_ = y
			dx, err := l.Backward(cache, r.Clone())
			if err != nil {
				t.Fatal(err)
			}

			const eps = 1e-6
			bad := 0
			for i := 0; i < x.Size(); i += 5 {
				num := numGradInput(loss, x, i, eps)
				ana := dx.Data()[i]
				if math.Abs(num-ana) > 2e-4*(1+math.Abs(num)) {
					bad++
					if bad < 4 {
						t.Errorf("input grad[%d]: numeric %v vs analytic %v", i, num, ana)
					}
				}
			}
			if bad > 0 {
				t.Fatalf("%d input-gradient mismatches", bad)
			}

			for _, p := range l.Params() {
				stride := p.W.Size()/4 + 1
				for i := 0; i < p.W.Size(); i += stride {
					orig := p.W.Data()[i]
					p.W.Data()[i] = orig + eps
					up := loss(x)
					p.W.Data()[i] = orig - eps
					down := loss(x)
					p.W.Data()[i] = orig
					num := (up - down) / (2 * eps)
					ana := p.G.Data()[i]
					if math.Abs(num-ana) > 2e-4*(1+math.Abs(num)) {
						t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", p.Name, i, num, ana)
					}
				}
			}
		})
	}
}

// TestGShardNoisyPathGradients pins the noise matrix and checks that the
// W_noise gradient path of the noisy gate is exact.
func TestGShardNoisyPathGradients(t *testing.T) {
	rng := xrand.New(31)
	cfg := GateConfig{Experts: testE, TopK: testK, Factor: 0}
	g, err := NewGShardGate(cfg, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	noise := tensor.RandN(xrand.New(99), 1, testN, testE)
	g.SetFixedNoise(noise)
	l := newTestLayer(t, rng, g, TutelOrder{})
	rx := xrand.New(6)
	x := tensor.RandN(rx, 1, testN, testM)
	r := tensor.RandN(rx, 1, testN, testM)

	loss := func(xx *tensor.Tensor) float64 {
		y, _, err := l.Forward(xx, true) // train mode: noise active
		if err != nil {
			t.Fatal(err)
		}
		return lossOf(y, r)
	}
	l.ZeroGrad()
	_, cache, err := l.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Backward(cache, r.Clone()); err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	wnoise := g.Params()[1]
	for i := 0; i < wnoise.W.Size(); i += 5 {
		orig := wnoise.W.Data()[i]
		wnoise.W.Data()[i] = orig + eps
		up := loss(x)
		wnoise.W.Data()[i] = orig - eps
		down := loss(x)
		wnoise.W.Data()[i] = orig
		num := (up - down) / (2 * eps)
		ana := wnoise.G.Data()[i]
		if math.Abs(num-ana) > 2e-4*(1+math.Abs(num)) {
			t.Fatalf("wnoise grad[%d]: numeric %v vs analytic %v", i, num, ana)
		}
	}
}

func TestHooksFireInOrder(t *testing.T) {
	rng := xrand.New(16)
	var calls []string
	mark := func(name string) func(x *tensor.Tensor) *tensor.Tensor {
		return func(x *tensor.Tensor) *tensor.Tensor {
			calls = append(calls, name)
			return x
		}
	}
	experts := []Expert{mustExpert(t, rng), mustExpert(t, rng), mustExpert(t, rng), mustExpert(t, rng)}
	l, err := NewMOELayer(LayerConfig{
		M:       testM,
		Gate:    mustSigmoid(t, rng),
		Order:   TutelOrder{},
		Experts: experts,
		Hooks: []Hooks{{
			BeforeMoeStart: mark("start"),
			BeforeDispatch: mark("before-dispatch"),
			AfterDispatch:  mark("after-dispatch"),
			BeforeCombine:  mark("before-combine"),
			AfterCombine:   mark("after-combine"),
			BeforeMoeEnd:   mark("end"),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(rng, 1, testN, testM)
	if _, _, err := l.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	want := []string{"start", "before-dispatch", "after-dispatch", "before-combine", "after-combine", "end"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func mustExpert(t *testing.T, rng *xrand.RNG) Expert {
	t.Helper()
	e, err := NewGPTFFN(testM, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHookCanTransformActivations(t *testing.T) {
	// A compression-style hook pair: scale down before dispatch, scale up
	// after. The layer output must match the hook-free layer.
	rngA := xrand.New(17)
	rngB := xrand.New(17)
	base := newTestLayer(t, rngA, mustSigmoid(t, rngA), TutelOrder{})
	hooked, err := NewMOELayer(LayerConfig{
		M:       testM,
		Gate:    mustSigmoid(t, rngB),
		Order:   TutelOrder{},
		Experts: base.Experts(), // share experts so outputs are comparable
		Hooks: []Hooks{{
			BeforeDispatch: func(x *tensor.Tensor) *tensor.Tensor { return tensor.Scale(x, 0.5) },
			AfterDispatch:  func(x *tensor.Tensor) *tensor.Tensor { return tensor.Scale(x, 2.0) },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(3), 1, testN, testM)
	y1, _, err := base.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, _, err := hooked.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !y1.AllClose(y2, 1e-9) {
		t.Fatalf("hook round trip changed output: %v", y1.MaxAbsDiff(y2))
	}
}

func TestLayerZeroGrad(t *testing.T) {
	rng := xrand.New(18)
	l := newTestLayer(t, rng, mustSigmoid(t, rng), TutelOrder{})
	x := tensor.RandN(rng, 1, testN, testM)
	_, cache, err := l.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Backward(cache, tensor.RandN(rng, 1, testN, testM)); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, p := range l.Params() {
		for _, v := range p.G.Data() {
			if v != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("backward accumulated no gradients")
	}
	l.ZeroGrad()
	for _, p := range l.Params() {
		for _, v := range p.G.Data() {
			if v != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}

func TestLayerGateExpertCountMismatch(t *testing.T) {
	rng := xrand.New(19)
	g, _ := NewSigmoidGate(GateConfig{Experts: 3, TopK: 1}, testM, rng)
	e, _ := NewGPTFFN(testM, 8, rng)
	l, err := NewMOELayer(LayerConfig{M: testM, Gate: g, Order: TutelOrder{}, Experts: []Expert{e, e}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Forward(tensor.RandN(rng, 1, 4, testM), false); err == nil {
		t.Fatal("expected expert-count mismatch error")
	}
}

package moe

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// espStrategy is expert-sharding parallelism (§4's ESP configuration of
// the generalized MoE layer): instead of moving tokens to expert owners,
// every rank participates in every expert's compute over a shard of the
// work, and the collectives are the intra-node AllGather/ReduceScatter
// stages of the generalized schedule, serialized on the shared "intra"
// stream. Per chunk c (a row range of every rank's slot shard):
//
//	AG(x)   gather the chunk's slot rows so every rank holds them all;
//	H       stage-1 GEMMs, sharded over hidden COLUMNS (ShardedExpert);
//	AG(h)   gather the hidden column shards to full width;
//	O       stage-2 GEMMs, sharded over the rank's own slot ROWS;
//	RS(y)   reduce-scatter the row-disjoint partial outputs back to the
//	        token side (each element has exactly one non-zero
//	        contributor, so the ring sum is exact).
//
// The backward pass is the adjoint chain AG(dy) → B1 (column-sharded) →
// AG(hidden grads) → B2 (row-sharded) → RS(dx), with each expert's
// full-block parameter-gradient reduction run once on its owner rank
// (j = e/Eg, the same mapping RankGrads assumes) from the assembled
// full-width buffers — bit-identical to the monolithic backward.
//
// There is no AlltoAll: the inter stream stays empty, so §5 AllReduce
// slices emitted there overlap the intra-stream collectives freely — the
// measured counterpart of the paper's inter/intra-node co-scheduling.
type espStrategy struct {
	experts []ShardedExpert // the layer's experts under the sharded contract
}

// espCache is the ESP forward state Backward consumes.
type espCache struct {
	xFull   []*tensor.Tensor   // per rank (E, tpad, M) gathered inputs
	outFull []*tensor.Tensor   // per rank (E, tpad, M) row-shard outputs
	hf      [][]*tensor.Tensor // [rank][expert] (FwdBands·tpad, W) exchange buffers
	scs     [][]ShardedCache   // [rank][expert]
}

// Name implements ParallelStrategy.
func (s *espStrategy) Name() Strategy { return StrategyESP }

// Chunked implements ParallelStrategy: ESP has no whole-block fallback —
// the sharded contract is required, so the fine-grained path is always on.
func (s *espStrategy) Chunked() bool { return true }

// Validate implements ParallelStrategy.
func (s *espStrategy) Validate(l *MOELayer, cfg WorldConfig) error {
	s.experts = make([]ShardedExpert, len(l.cfg.Experts))
	for e, ex := range l.cfg.Experts {
		se, ok := ex.(ShardedExpert)
		if !ok {
			return fmt.Errorf("moe: strategy %q requires sharded expert compute, but expert %d (%T) does not implement ShardedExpert; whole-block experts run under strategy %q",
				StrategyESP, e, ex, StrategyEP)
		}
		s.experts[e] = se
	}
	return nil
}

// PlanCheck implements ParallelStrategy.
func (s *espStrategy) PlanCheck(plan *DispatchPlan) error {
	if plan.IsDense() {
		return fmt.Errorf("moe: strategy %q supports hard routing only (dense SoftMoE plans have no token rows to shard); dense plans run under strategy %q",
			StrategyESP, StrategyDenseSlots)
	}
	return nil
}

// colShard returns member g's hidden-column range under the uniform
// ceiling allocation: every member is allotted ⌈w/R⌉ wire columns so the
// exchange blocks stay uniform, and trailing members may own fewer (or
// zero) real columns.
func colShard(w, g, ranks int) (lo, hi int) {
	per := (w + ranks - 1) / ranks
	lo = g * per
	hi = lo + per
	if lo > w {
		lo = w
	}
	if hi > w {
		hi = w
	}
	return lo, hi
}

// hiddenBlock is the per-rank wire block size of one hidden exchange
// chunk: for every expert, bands stacked planes of (R·rlen rows × ⌈W/R⌉
// allotted columns).
func (s *espStrategy) hiddenBlock(ranks, rlen int, fwd bool) int {
	rows := ranks * rlen
	blk := 0
	for _, ex := range s.experts {
		ccap := (ex.HiddenWidth() + ranks - 1) / ranks
		bands := ex.FwdBands()
		if !fwd {
			bands = ex.BwdBands()
		}
		blk += bands * rows * ccap
	}
	return blk
}

// xferHidden moves member's hidden-column shards for chunk rows between
// the full-width per-expert buffers bufs and a dense wire block: toWire
// packs the member's own computed columns, !toWire scatters an arrived
// member's columns into the full-width buffers.
func (s *espStrategy) xferHidden(bufs []*tensor.Tensor, wire []float64, member, ranks, spad, tpad int, rr comm.RowRange, fwd, toWire bool) {
	off := 0
	rlen := rr.Len()
	rows := ranks * rlen
	for e, ex := range s.experts {
		width := ex.HiddenWidth()
		ccap := (width + ranks - 1) / ranks
		bands := ex.FwdBands()
		if !fwd {
			bands = ex.BwdBands()
		}
		cl, ch := colShard(width, member, ranks)
		if ch > cl {
			for b := 0; b < bands; b++ {
				plane := off + b*rows*ccap
				for i := 0; i < ranks; i++ {
					for t := rr.Lo; t < rr.Hi; t++ {
						woff := plane + (i*rlen+(t-rr.Lo))*ccap
						row := bufs[e].Row(b*tpad + i*spad + t)[cl:ch]
						if toWire {
							copy(wire[woff:woff+ch-cl], row)
						} else {
							copy(row, wire[woff:woff+ch-cl])
						}
					}
				}
			}
		}
		off += bands * rows * ccap
	}
}

// espXfer copies chunk rows of one slot shard between an expert-major
// (E, tpad, M) buffer and the slot-major (rows × E·M) wire layout shared
// by the AG/RS collectives: wire row wireBase+t holds every expert's row
// fullBase+t side by side. Experts shard over pool (the comm staging
// allotment); each expert's rows are disjoint in both layouts, and the
// work is pure copies, so any width is bit-identical.
func espXfer(pool *tensor.Pool, wire, full []float64, experts, mdim, tpad, wireBase, fullBase int, rr comm.RowRange, toWire bool) {
	pool.ParallelFor(experts, func(e int) {
		for t := rr.Lo; t < rr.Hi; t++ {
			woff := ((wireBase+t)*experts + e) * mdim
			foff := (e*tpad + fullBase + t) * mdim
			if toWire {
				copy(wire[woff:woff+mdim], full[foff:foff+mdim])
			} else {
				copy(full[foff:foff+mdim], wire[woff:woff+mdim])
			}
		}
	})
}

// hiddenExchange appends one chunk's hidden AllGather to the plan: per-rank
// packs of the member's computed columns (pooled wire blocks), the ring
// AllGather on the shared intra stream, and per-rank scatter of every
// member's columns into the full-width buffers. bufs[g] is rank g's
// per-expert buffer list (hf forward, hb backward); deps[g] gates rank g's
// pack. It returns the per-rank unpack task ids.
func (s *espStrategy) hiddenExchange(w *World, p *runtime.Plan, label string, bufs [][]*tensor.Tensor, spad, tpad int, rr comm.RowRange, fwd bool, deps []int) []int {
	R := w.cfg.Ranks
	blk := s.hiddenBlock(R, rr.Len(), fwd)
	sendT := make([]*tensor.Tensor, R)
	send := make([][]float64, R)
	outT := make([]*tensor.Tensor, R)
	outB := make([][]float64, R)
	packIDs := make([]int, R)
	for g := 0; g < R; g++ {
		g := g
		packIDs[g] = p.Add(fmt.Sprintf("P%s[%d]", label, g), KindPack, intraStream(g),
			estElems(blk), func() error {
				t := tensor.GetUninit(blk)
				sendT[g], send[g] = t, t.Data()
				s.xferHidden(bufs[g], send[g], g, R, spad, tpad, rr, fwd, true)
				return nil
			}, deps[g])
	}
	// (R-1)·R messages of one per-rank block — the same total-bytes-moved
	// convention as the other collective estimates.
	agGuard := w.collGuard(collStream, KindAG)
	ag := p.Add(fmt.Sprintf("AG%s", label), KindAG, collStream,
		estElems((R-1)*R*blk), func() error {
			for r := 0; r < R; r++ {
				if outT[r] != nil {
					tensor.Put(outT[r]) // a prior attempt's staging, reclaimed before re-Get
				}
				t := tensor.GetUninit(R * blk)
				outT[r], outB[r] = t, t.Data()
			}
			st, err := comm.RingAllGatherIntoGuarded(agGuard, outB, send, w.cfg.GPUsPerNode)
			if err != nil {
				return err
			}
			w.addStats(st)
			return nil
		}, packIDs...)
	unpackIDs := make([]int, R)
	for g := 0; g < R; g++ {
		g := g
		unpackIDs[g] = p.Add(fmt.Sprintf("U%s[%d]", label, g), KindPack, intraStream(g),
			estElems(R*blk), func() error {
				for src := 0; src < R; src++ {
					s.xferHidden(bufs[g], outB[g][src*blk:(src+1)*blk], src, R, spad, tpad, rr, fwd, false)
				}
				tensor.Put(outT[g])
				tensor.Put(sendT[g])
				return nil
			}, ag)
	}
	return unpackIDs
}

// BuildForward implements ParallelStrategy.
func (s *espStrategy) BuildForward(w *World, p *runtime.Plan, cache *WorldCache, scatPad, combinedPad *tensor.Tensor) {
	R, mdim := w.cfg.Ranks, w.layer.cfg.M
	E := len(s.experts)
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksFwd)
	dims := comm.BlockDims{Rows: spad, Width: E * mdim}

	ec := &espCache{
		xFull:   make([]*tensor.Tensor, R),
		outFull: make([]*tensor.Tensor, R),
		hf:      make([][]*tensor.Tensor, R),
		scs:     make([][]ShardedCache, R),
	}
	cache.sc = ec
	for g := 0; g < R; g++ {
		ec.xFull[g] = tensor.New(E, tpad, mdim)
		ec.outFull[g] = tensor.New(E, tpad, mdim)
		ec.hf[g] = make([]*tensor.Tensor, E)
		ec.scs[g] = make([]ShardedCache, E)
		for e, ex := range s.experts {
			ec.hf[g][e] = tensor.New(ex.FwdBands()*tpad, ex.HiddenWidth())
			cl, ch := colShard(ex.HiddenWidth(), g, R)
			ec.scs[g][e] = ex.BeginSharded(
				expertView(ec.xFull[g], e, tpad, mdim),
				expertView(ec.outFull[g], e, tpad, mdim),
				ec.hf[g][e], cl, ch, w.computePool(g))
		}
	}

	agxData := wireBuffers(R, spad*E*mdim)
	agxOut := wireBuffers(R, tpad*E*mdim)
	rsData := wireBuffers(R, tpad*E*mdim)
	rsOut := wireBuffers(R, spad*E*mdim)
	scatD := scatPad.Data()

	// Phase 1 — pack + input AllGather for every chunk, issued back to
	// back on the intra stream (the Fig. 3c/d ordering): chunk c+1 is on
	// the wire while chunk c's stage-1 GEMMs run.
	agIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("G%d[%d]", c, i), KindPack, intraStream(i),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), agxData[i], scatD, E, mdim, tpad, 0, i*spad, rr, true)
					return nil
				})
		}
		agGuard := w.collGuard(collStream, KindAG)
		agIDs[c] = p.Add(fmt.Sprintf("AG[%d]", c), KindAG, collStream,
			estElems((R-1)*R*E*rr.Len()*mdim), func() error {
				st, err := comm.AllGatherRowsGuarded(agGuard, agxData, agxOut, w.cfg.GPUsPerNode, dims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, packIDs...)
	}

	// Phase 2 — per chunk: land the gathered rows, stage-1 GEMMs, hidden
	// exchange, stage-2 GEMMs, output ReduceScatter, land on the token
	// side.
	for c, rr := range ranges {
		rr := rr
		rows := R * rr.Len()
		hIDs := make([]int, R)
		for g := 0; g < R; g++ {
			g := g
			unpack := p.Add(fmt.Sprintf("Ux%d[%d]", c, g), KindPack, intraStream(g),
				estElems(R*E*rr.Len()*mdim), func() error {
					for i := 0; i < R; i++ {
						espXfer(w.stagingPool(), agxOut[g], ec.xFull[g].Data(), E, mdim, tpad, i*spad, i*spad, rr, false)
					}
					return nil
				}, agIDs[c])
			hIDs[g] = p.Add(fmt.Sprintf("H%d[%d]", c, g), KindExpert, computeStream(g),
				w.allExpertEst(rows)/(2*float64(R)), func() error {
					for e, ex := range s.experts {
						for i := 0; i < R; i++ {
							ex.ForwardHidden(ec.scs[g][e], i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
		unpackH := s.hiddenExchange(w, p, fmt.Sprintf("h%d", c), ec.hf, spad, tpad, rr, true, hIDs)
		packY := make([]int, R)
		for g := 0; g < R; g++ {
			g := g
			o := p.Add(fmt.Sprintf("O%d[%d]", c, g), KindExpert, computeStream(g),
				w.allExpertEst(rr.Len())/2, func() error {
					for e, ex := range s.experts {
						ex.ForwardOut(ec.scs[g][e], g*spad+rr.Lo, g*spad+rr.Hi)
					}
					return nil
				}, unpackH[g])
			packY[g] = p.Add(fmt.Sprintf("Py%d[%d]", c, g), KindPack, intraStream(g),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), rsData[g], ec.outFull[g].Data(), E, mdim, tpad, g*spad, g*spad, rr, true)
					return nil
				}, o)
		}
		rsGuard := w.collGuard(collStream, KindRS)
		rs := p.Add(fmt.Sprintf("RS[%d]", c), KindRS, collStream,
			estElems((R-1)*R*E*rr.Len()*mdim), func() error {
				st, err := comm.ReduceScatterRowsGuarded(rsGuard, rsData, rsOut, w.cfg.GPUsPerNode, dims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, packY...)
		for i := 0; i < R; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), rsOut[i], combinedPad.Data(), E, mdim, tpad, 0, i*spad, rr, false)
					return nil
				}, rs)
		}
	}
}

// BuildBackward implements ParallelStrategy.
func (s *espStrategy) BuildBackward(w *World, p *runtime.Plan, cache *WorldCache, dpad, dScatteredPad *tensor.Tensor) {
	ec := cache.sc.(*espCache)
	R, eg, mdim := w.cfg.Ranks, w.egrp, w.layer.cfg.M
	E := len(s.experts)
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksBwd)
	dims := comm.BlockDims{Rows: spad, Width: E * mdim}

	dyFull := make([]*tensor.Tensor, R)
	dxFull := make([]*tensor.Tensor, R)
	hb := make([][]*tensor.Tensor, R)
	for g := 0; g < R; g++ {
		dyFull[g] = tensor.New(E, tpad, mdim)
		dxFull[g] = tensor.New(E, tpad, mdim)
		hb[g] = make([]*tensor.Tensor, E)
		for e, ex := range s.experts {
			hb[g][e] = tensor.New(ex.BwdBands()*tpad, ex.HiddenWidth())
		}
	}

	agdData := wireBuffers(R, spad*E*mdim)
	agdOut := wireBuffers(R, tpad*E*mdim)
	rsData := wireBuffers(R, tpad*E*mdim)
	rsOut := wireBuffers(R, spad*E*mdim)
	dpd := dpad.Data()

	// Phase 1 — pack + output-gradient AllGather for every chunk, back to
	// back on the intra stream (the adjoint of the forward output path).
	agIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, R)
		for i := 0; i < R; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("G%d[%d]", c, i), KindPack, intraStream(i),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), agdData[i], dpd, E, mdim, tpad, 0, i*spad, rr, true)
					return nil
				})
		}
		agGuard := w.collGuard(collStream, KindAG)
		agIDs[c] = p.Add(fmt.Sprintf("AG[%d]", c), KindAG, collStream,
			estElems((R-1)*R*E*rr.Len()*mdim), func() error {
				st, err := comm.AllGatherRowsGuarded(agGuard, agdData, agdOut, w.cfg.GPUsPerNode, dims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, packIDs...)
	}

	// Gradient-sync emit point 0. Under ESP the inter stream carries no
	// layer collectives at all, so slices emitted here (and after every
	// chunk) genuinely co-execute with the intra-stream AG/RS chain — the
	// §4 inter/intra-node overlap, measured.
	if w.sync != nil {
		w.sync.BeginLayer(len(ranges) + 1)
		w.sync.EmitAt(p, "inter", 0)
	}

	// Phase 2 — per chunk: adjoint stage 2 (column-sharded), hidden
	// gradient exchange, adjoint stage 1 (row-sharded), dX ReduceScatter.
	b2Last := make([]int, R)
	for c, rr := range ranges {
		rr := rr
		rows := R * rr.Len()
		b1IDs := make([]int, R)
		for g := 0; g < R; g++ {
			g := g
			unpack := p.Add(fmt.Sprintf("Ud%d[%d]", c, g), KindPack, intraStream(g),
				estElems(R*E*rr.Len()*mdim), func() error {
					for i := 0; i < R; i++ {
						espXfer(w.stagingPool(), agdOut[g], dyFull[g].Data(), E, mdim, tpad, i*spad, i*spad, rr, false)
					}
					return nil
				}, agIDs[c])
			b1IDs[g] = p.Add(fmt.Sprintf("B1%d[%d]", c, g), KindExpert, computeStream(g),
				w.allExpertEst(rows)/float64(R), func() error {
					for e, ex := range s.experts {
						dyv := expertView(dyFull[g], e, tpad, mdim)
						for i := 0; i < R; i++ {
							ex.BackwardHidden(ec.scs[g][e], dyv, hb[g][e], i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpack)
		}
		unpackB := s.hiddenExchange(w, p, fmt.Sprintf("b%d", c), hb, spad, tpad, rr, false, b1IDs)
		packDx := make([]int, R)
		for g := 0; g < R; g++ {
			g := g
			b2Last[g] = p.Add(fmt.Sprintf("B2%d[%d]", c, g), KindExpert, computeStream(g),
				w.allExpertEst(rr.Len()), func() error {
					for e, ex := range s.experts {
						dyv := expertView(dyFull[g], e, tpad, mdim)
						dxv := expertView(dxFull[g], e, tpad, mdim)
						ex.BackwardIn(ec.scs[g][e], dyv, dxv, hb[g][e], g*spad+rr.Lo, g*spad+rr.Hi)
					}
					return nil
				}, unpackB[g])
			packDx[g] = p.Add(fmt.Sprintf("Pd%d[%d]", c, g), KindPack, intraStream(g),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), rsData[g], dxFull[g].Data(), E, mdim, tpad, g*spad, g*spad, rr, true)
					return nil
				}, b2Last[g])
		}
		rsGuard := w.collGuard(collStream, KindRS)
		rs := p.Add(fmt.Sprintf("RS[%d]", c), KindRS, collStream,
			estElems((R-1)*R*E*rr.Len()*mdim), func() error {
				st, err := comm.ReduceScatterRowsGuarded(rsGuard, rsData, rsOut, w.cfg.GPUsPerNode, dims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, packDx...)
		if w.sync != nil {
			w.sync.EmitAt(p, "inter", c+1)
		}
		for i := 0; i < R; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(E*rr.Len()*mdim), func() error {
					espXfer(w.stagingPool(), rsOut[i], dScatteredPad.Data(), E, mdim, tpad, 0, i*spad, rr, false)
					return nil
				}, rs)
		}
	}

	// Phase 3 — each expert's full-block parameter-gradient reduction on
	// its owner rank (the RankGrads mapping), from the assembled full
	// buffers; non-owner members release their pooled shard state. Every
	// rank's last adjoint task gates these: the owner's full-width hb and
	// dy are complete, and no member state is still in use.
	for j := 0; j < R; j++ {
		j := j
		p.Add(fmt.Sprintf("W[%d]", j), KindExpert, computeStream(j),
			w.expertEst(j, tpad), func() error {
				for el := 0; el < eg; el++ {
					e := j*eg + el
					ex := s.experts[e]
					ex.FinishSharded(ec.scs[j][e], expertView(dyFull[j], e, tpad, mdim), hb[j][e])
					for g := 0; g < R; g++ {
						if g != j {
							ex.DropSharded(ec.scs[g][e])
						}
					}
				}
				return nil
			}, b2Last...)
	}
}

package moe

import (
	"math"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// ZipfGate routes tokens to experts drawn from a Zipf distribution over
// expert rank — p(e) ∝ 1/(e+1)^s — independent of the input. It is a
// measurement gate, not a trainable one: real MoE gates converge to
// heavily skewed expert popularity (the imbalance FlexMoE re-places
// experts to fix), and this gate reproduces that skew deterministically so
// telemetry and load-balancing mechanisms can be exercised with a known
// ground-truth distribution. Routing depends only on (seed, token index):
// repeated Route calls — and separately built stacks in a strategy
// comparison — see bit-identical plans.
type ZipfGate struct {
	cfg  GateConfig
	m    int
	seed uint64
	cdf  []float64 // cumulative p(e), strictly increasing to 1
}

// NewZipfGate constructs the gate for embedding size m with skew exponent
// s (s = 0 degenerates to uniform routing; larger s concentrates load on
// low-indexed experts; s ≈ 1 is the classic Zipf popularity curve).
func NewZipfGate(cfg GateConfig, m int, s float64, seed uint64) (*ZipfGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, cfg.Experts)
	total := 0.0
	for e := 0; e < cfg.Experts; e++ {
		total += 1 / math.Pow(float64(e+1), s)
		cdf[e] = total
	}
	for e := range cdf {
		cdf[e] /= total
	}
	return &ZipfGate{cfg: cfg, m: m, seed: seed, cdf: cdf}, nil
}

// Name implements Gate.
func (g *ZipfGate) Name() string { return "zipf" }

// Params implements Gate (the gate is parameter-free).
func (g *ZipfGate) Params() []*Param { return nil }

// Route implements Gate. Each token draws TopK distinct experts from the
// Zipf popularity distribution with equal combine weights 1/TopK.
func (g *ZipfGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	n, e, k := x.Dim(0), g.cfg.Experts, g.cfg.TopK
	rng := xrand.New(g.seed) // re-seeded per Route: routing is a pure function
	w := 1 / float64(k)
	asg := make([]assignment, 0, n*k)
	for t := 0; t < n; t++ {
		chosen := make([]int, 0, k)
		for len(chosen) < k {
			idx := g.draw(rng)
			dup := false
			for _, c := range chosen {
				if c == idx {
					dup = true
					break
				}
			}
			if dup {
				// Duplicate draw: walk to the nearest unchosen expert so the
				// loop terminates even under extreme skew.
				for d := 1; d < e; d++ {
					for _, cand := range []int{(idx + d) % e, (idx - d + e) % e} {
						dup = false
						for _, c := range chosen {
							if c == cand {
								dup = true
								break
							}
						}
						if !dup {
							idx = cand
							d = e
							break
						}
					}
					if !dup {
						break
					}
				}
			}
			chosen = append(chosen, idx)
		}
		for j, idx := range chosen {
			asg = append(asg, assignment{token: t, expert: idx, weight: w, choice: j})
		}
	}
	capacity := CapacityFor(n, e, k, g.cfg.Factor)
	plan := buildHardPlan(n, e, capacity, asg)
	return plan, &RouteCache{X: x, Plan: plan}, nil
}

// draw samples one expert index from the Zipf CDF.
func (g *ZipfGate) draw(rng *xrand.RNG) int {
	u := rng.Float64()
	for e, c := range g.cdf {
		if u <= c {
			return e
		}
	}
	return len(g.cdf) - 1
}

// Backward implements Gate: routing ignores x, so the gradient through the
// gate is zero and there are no parameters to accumulate into.
func (g *ZipfGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	return tensor.New(rc.X.Shape()...)
}

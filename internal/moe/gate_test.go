package moe

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

const (
	testM = 6
	testE = 4
	testK = 2
	testN = 10
)

func allGates(t *testing.T, rng *xrand.RNG) []Gate {
	t.Helper()
	cfg := GateConfig{Experts: testE, TopK: testK, Factor: 0} // f=∗: no drops
	gs, err := NewGShardGate(cfg, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSigmoidGate(cfg, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	xm, err := NewXMoEGate(cfg, testM, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := NewECGate(cfg, testM, rng)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSoftMoEGate(cfg, testM, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return []Gate{gs, sg, xm, ec, sm}
}

func TestGateConfigValidation(t *testing.T) {
	if err := (GateConfig{Experts: 0, TopK: 1}).Validate(); err == nil {
		t.Error("E=0 should fail")
	}
	if err := (GateConfig{Experts: 4, TopK: 5}).Validate(); err == nil {
		t.Error("k>E should fail")
	}
	if err := (GateConfig{Experts: 4, TopK: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAllGatesRouteStructure(t *testing.T) {
	rng := xrand.New(100)
	x := tensor.RandN(rng, 1, testN, testM)
	for _, g := range allGates(t, rng) {
		plan, rc, err := g.Route(x, false)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if err := plan.Validate(testN); err != nil {
			t.Fatalf("%s: invalid plan: %v", g.Name(), err)
		}
		if rc.Plan != plan {
			t.Fatalf("%s: cache must reference the plan", g.Name())
		}
		if plan.Experts != testE {
			t.Fatalf("%s: plan has %d experts", g.Name(), plan.Experts)
		}
		if !plan.IsDense() {
			// Combine weights must be positive and bounded by 1.
			for e := range plan.SlotWeight {
				for s, w := range plan.SlotWeight[e] {
					if plan.SlotToken[e][s] >= 0 && (w <= 0 || w > 1+1e-12) {
						t.Fatalf("%s: weight %v out of (0,1]", g.Name(), w)
					}
				}
			}
		}
	}
}

func TestGateDeterminism(t *testing.T) {
	rng := xrand.New(7)
	x := tensor.RandN(rng, 1, testN, testM)
	for _, g := range allGates(t, rng) {
		p1, _, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		p2, _, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if p1.IsDense() {
			if !p1.DispatchW.AllClose(p2.DispatchW, 0) {
				t.Fatalf("%s: dense routing not deterministic", g.Name())
			}
			continue
		}
		for e := range p1.SlotToken {
			for s := range p1.SlotToken[e] {
				if p1.SlotToken[e][s] != p2.SlotToken[e][s] || p1.SlotWeight[e][s] != p2.SlotWeight[e][s] {
					t.Fatalf("%s: routing not deterministic", g.Name())
				}
			}
		}
	}
}

func TestTokenChoiceGatesRouteKChoices(t *testing.T) {
	rng := xrand.New(8)
	x := tensor.RandN(rng, 1, testN, testM)
	for _, g := range allGates(t, rng) {
		if g.Name() == "ec" || g.Name() == "softmoe" {
			continue // expert-choice / soft routing do not make per-token choices
		}
		plan, _, err := g.Route(x, false)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, testN)
		for e := range plan.SlotToken {
			for _, tok := range plan.SlotToken[e] {
				if tok >= 0 {
					counts[tok]++
				}
			}
		}
		for tok, c := range counts {
			if c != testK {
				t.Fatalf("%s: token %d routed to %d experts, want %d", g.Name(), tok, c, testK)
			}
		}
	}
}

func TestGShardWeightsSumToOne(t *testing.T) {
	rng := xrand.New(9)
	x := tensor.RandN(rng, 1, testN, testM)
	cfg := GateConfig{Experts: testE, TopK: testK, Factor: 0}
	g, _ := NewGShardGate(cfg, testM, rng)
	plan, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, testN)
	for e := range plan.SlotToken {
		for s, tok := range plan.SlotToken[e] {
			if tok >= 0 {
				sums[tok] += plan.SlotWeight[e][s]
			}
		}
	}
	for tok, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("token %d weights sum to %v", tok, s)
		}
	}
}

func TestGShardAuxLossPositive(t *testing.T) {
	rng := xrand.New(10)
	x := tensor.RandN(rng, 1, 64, testM)
	g, _ := NewGShardGate(GateConfig{Experts: testE, TopK: testK, Factor: 0}, testM, rng)
	plan, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	// E·Σ f_e p_e >= 1 with equality at perfect balance; must be >= ~1.
	if plan.AuxLoss < 0.99 {
		t.Fatalf("aux loss %v below the perfect-balance bound", plan.AuxLoss)
	}
}

func TestGShardNoisyRoutingDiffersFromClean(t *testing.T) {
	rng := xrand.New(11)
	x := tensor.RandN(rng, 0.01, 40, testM) // small margins: noise can flip choices
	g, _ := NewGShardGate(GateConfig{Experts: testE, TopK: 1, Factor: 0}, testM, rng)
	clean, _, _ := g.Route(x, false)
	noisy, _, _ := g.Route(x, true)
	same := true
	for e := range clean.SlotToken {
		for s := range clean.SlotToken[e] {
			if s < len(noisy.SlotToken[e]) && clean.SlotToken[e][s] != noisy.SlotToken[e][s] {
				same = false
			}
		}
	}
	if same {
		t.Log("noise did not flip any routing decision (possible but unlikely); not failing")
	}
}

func TestCapacityDropsApplied(t *testing.T) {
	rng := xrand.New(12)
	// Adversarial input: identical tokens all route to the same experts.
	x := tensor.New(32, testM)
	for i := 0; i < 32; i++ {
		for j := 0; j < testM; j++ {
			x.Set(1.0, i, j)
		}
	}
	g, _ := NewGShardGate(GateConfig{Experts: testE, TopK: 1, Factor: 1.0}, testM, rng)
	plan, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity = 1·1·32/4 = 8; all 32 identical tokens pick one expert, so
	// 24 must drop.
	if plan.Capacity != 8 {
		t.Fatalf("capacity = %d, want 8", plan.Capacity)
	}
	if plan.Dropped != 24 {
		t.Fatalf("dropped = %d, want 24", plan.Dropped)
	}
}

func TestECGateBalancedByConstruction(t *testing.T) {
	rng := xrand.New(13)
	x := tensor.RandN(rng, 1, 32, testM)
	g, _ := NewECGate(GateConfig{Experts: testE, TopK: testK, Factor: 1.0}, testM, rng)
	plan, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	// Every expert selects exactly its capacity of tokens: zero empty slots.
	for e := range plan.SlotToken {
		for s, tok := range plan.SlotToken[e] {
			if tok < 0 {
				t.Fatalf("EC expert %d slot %d empty", e, s)
			}
		}
	}
	if plan.Dropped != 0 {
		t.Fatalf("EC dropped %d", plan.Dropped)
	}
}

func TestSoftMoEPlanIsDense(t *testing.T) {
	rng := xrand.New(14)
	x := tensor.RandN(rng, 1, testN, testM)
	g, _ := NewSoftMoEGate(GateConfig{Experts: testE, TopK: 1, Factor: 0}, testM, 3, rng)
	plan, _, err := g.Route(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsDense() {
		t.Fatal("SoftMoE must produce a dense plan")
	}
	// Dispatch columns (per slot over tokens) and combine rows (per token
	// over slots) are softmaxes: they must sum to 1.
	slots := plan.Slots()
	for s := 0; s < slots; s++ {
		sum := 0.0
		for tok := 0; tok < testN; tok++ {
			sum += plan.DispatchW.At(s, tok)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dispatch slot %d sums to %v", s, sum)
		}
	}
	for tok := 0; tok < testN; tok++ {
		sum := 0.0
		for s := 0; s < slots; s++ {
			sum += plan.CombineW.At(tok, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("combine token %d sums to %v", tok, sum)
		}
	}
}

func TestGateRejectsBadInput(t *testing.T) {
	rng := xrand.New(15)
	for _, g := range allGates(t, rng) {
		if _, _, err := g.Route(tensor.New(3, testM+1), false); err == nil {
			t.Errorf("%s: accepted wrong embedding size", g.Name())
		}
		if _, _, err := g.Route(tensor.New(2, 3, testM), false); err == nil {
			t.Errorf("%s: accepted rank-3 input", g.Name())
		}
	}
}

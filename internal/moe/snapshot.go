package moe

// Checkpointing: World.Snapshot captures everything a training run
// mutates — gate and per-expert parameters, the step and collective-op
// counters, and the private RNG state of noisy gates — and
// World.Restore writes it back. The tensors are copied both ways, so a
// snapshot taken before a fault is immune to the partial gradient and
// parameter writes an aborted plan may have left behind. Serialization,
// checksums and atomic file I/O live in internal/ckpt; this file is only
// the mapping between a live World and its ckpt.WorldState.

import (
	"fmt"

	"repro/internal/ckpt"
)

// RNGCarrier is implemented by gates holding private RNG state that
// training mutates (GShard's noisy gating). Snapshot/Restore round-trip
// it so a restored run replays the identical noise stream; stateless
// gates simply don't implement it.
type RNGCarrier interface {
	RNGState() (state, gamma uint64)
	SetRNGState(state, gamma uint64)
}

// snapTensor copies one parameter into its snapshot form.
func snapTensor(p *Param) ckpt.Tensor {
	return ckpt.Tensor{
		Name:  p.Name,
		Shape: append([]int(nil), p.W.Shape()...),
		Data:  append([]float64(nil), p.W.Data()...),
	}
}

// restoreTensor writes a snapshot tensor back into its parameter after
// verifying identity: the name and element count must match, so a
// snapshot is never silently applied to a differently-shaped layer.
func restoreTensor(p *Param, t ckpt.Tensor, where string) error {
	if p.Name != t.Name {
		return fmt.Errorf("moe: restore %s: parameter %q does not match snapshot %q", where, p.Name, t.Name)
	}
	if len(p.W.Data()) != len(t.Data) {
		return fmt.Errorf("moe: restore %s: parameter %q has %d elements, snapshot %d",
			where, p.Name, len(p.W.Data()), len(t.Data))
	}
	copy(p.W.Data(), t.Data)
	return nil
}

// Snapshot captures the world's full mutable training state. The world
// must not be mid-pass; parameters are deep-copied, so later steps never
// alias into the snapshot.
func (w *World) Snapshot() *ckpt.WorldState {
	ws := &ckpt.WorldState{Steps: w.steps, CollOps: w.collOps}
	for _, p := range w.layer.cfg.Gate.Params() {
		ws.Gate = append(ws.Gate, snapTensor(p))
	}
	ws.Experts = make([][]ckpt.Tensor, len(w.layer.cfg.Experts))
	for e, ex := range w.layer.cfg.Experts {
		for _, p := range ex.Params() {
			ws.Experts[e] = append(ws.Experts[e], snapTensor(p))
		}
	}
	if rc, ok := w.layer.cfg.Gate.(RNGCarrier); ok {
		s, g := rc.RNGState()
		ws.GateRNG = []ckpt.RNGState{{State: s, Gamma: g}}
	}
	return ws
}

// Restore writes a snapshot back into the world: every parameter, the
// step and collective-op counters, and the gate's RNG state. Restoring
// rolls the whole training state back to the snapshot point — partially
// accumulated gradients are zeroed, since they belong to the abandoned
// timeline. The world's topology (ranks, strategy, health) is untouched;
// elastic recovery layers on top (see recover.go).
func (w *World) Restore(ws *ckpt.WorldState) error {
	if w.closed {
		return fmt.Errorf("moe: restore: %w", ErrWorldClosed)
	}
	gate := w.layer.cfg.Gate.Params()
	if len(gate) != len(ws.Gate) {
		return fmt.Errorf("moe: restore: gate has %d parameters, snapshot %d", len(gate), len(ws.Gate))
	}
	if len(w.layer.cfg.Experts) != len(ws.Experts) {
		return fmt.Errorf("moe: restore: layer has %d experts, snapshot %d",
			len(w.layer.cfg.Experts), len(ws.Experts))
	}
	// Validate everything before writing anything, so a mismatched
	// snapshot never leaves the layer half-restored.
	for i, p := range gate {
		if p.Name != ws.Gate[i].Name || len(p.W.Data()) != len(ws.Gate[i].Data) {
			return fmt.Errorf("moe: restore: gate parameter %d is %q(%d), snapshot %q(%d)",
				i, p.Name, len(p.W.Data()), ws.Gate[i].Name, len(ws.Gate[i].Data))
		}
	}
	for e, ex := range w.layer.cfg.Experts {
		ps := ex.Params()
		if len(ps) != len(ws.Experts[e]) {
			return fmt.Errorf("moe: restore: expert %d has %d parameters, snapshot %d",
				e, len(ps), len(ws.Experts[e]))
		}
		for i, p := range ps {
			if p.Name != ws.Experts[e][i].Name || len(p.W.Data()) != len(ws.Experts[e][i].Data) {
				return fmt.Errorf("moe: restore: expert %d parameter %d is %q(%d), snapshot %q(%d)",
					e, i, p.Name, len(p.W.Data()), ws.Experts[e][i].Name, len(ws.Experts[e][i].Data))
			}
		}
	}
	for i, p := range gate {
		if err := restoreTensor(p, ws.Gate[i], "gate"); err != nil {
			return err
		}
	}
	for e, ex := range w.layer.cfg.Experts {
		for i, p := range ex.Params() {
			if err := restoreTensor(p, ws.Experts[e][i], fmt.Sprintf("expert %d", e)); err != nil {
				return err
			}
		}
	}
	if rc, ok := w.layer.cfg.Gate.(RNGCarrier); ok && len(ws.GateRNG) > 0 {
		rc.SetRNGState(ws.GateRNG[0].State, ws.GateRNG[0].Gamma)
	}
	w.steps = ws.Steps
	w.collOps = ws.CollOps
	w.layer.ZeroGrad()
	return nil
}

// SnapshotWorlds captures a whole stack: one WorldState per layer in
// stack order, stamped with the stack's completed-step count.
func SnapshotWorlds(worlds []*World) *ckpt.Snapshot {
	s := &ckpt.Snapshot{}
	if len(worlds) > 0 {
		s.Step = worlds[0].steps
	}
	for _, w := range worlds {
		s.Worlds = append(s.Worlds, *w.Snapshot())
	}
	return s
}

// RestoreWorlds writes a stack snapshot back, layer by layer.
func RestoreWorlds(worlds []*World, s *ckpt.Snapshot) error {
	if s == nil {
		return fmt.Errorf("moe: restore needs a snapshot")
	}
	if len(worlds) != len(s.Worlds) {
		return fmt.Errorf("moe: restore: stack has %d worlds, snapshot %d", len(worlds), len(s.Worlds))
	}
	for i, w := range worlds {
		if err := w.Restore(&s.Worlds[i]); err != nil {
			return fmt.Errorf("moe: restore layer %d: %w", i, err)
		}
	}
	return nil
}

package moe

// Benchmarks for the real-compute MoE hot path: a full layer forward and
// backward with real GPTFFN experts, at the issue's canonical sizes
// (capacity T=128, embedding M=256, E ∈ {8, 32}). `go test -bench MoELayer
// -benchmem ./internal/moe` shows both the parallel-expert speedup (on
// multi-core runners) and the pooled runtime's allocation profile.

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// benchLayer builds a GShard-gated, Tutel-ordered layer of E GPTFFN experts
// sized so every expert's block is (128, 256), plus a matching input.
func benchLayer(b *testing.B, experts int) (*MOELayer, *tensor.Tensor) {
	b.Helper()
	const m, topK = 256, 2
	tokens := experts * 128 / topK // capacity f·k·N/E = 128 at f=1
	rng := xrand.New(42)
	gate, err := NewGShardGate(GateConfig{Experts: experts, TopK: topK, Factor: 1}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	exps := make([]Expert, experts)
	for i := range exps {
		e, err := NewGPTFFN(m, 4*m, rng)
		if err != nil {
			b.Fatal(err)
		}
		exps[i] = e
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: gate, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		b.Fatal(err)
	}
	return layer, tensor.RandN(rng, 1, tokens, m)
}

func BenchmarkMoELayerForward(b *testing.B) {
	for _, e := range []int{8, 32} {
		b.Run(fmt.Sprintf("E=%d", e), func(b *testing.B) {
			layer, x := benchLayer(b, e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := layer.Forward(x, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMoELayerBackward(b *testing.B) {
	for _, e := range []int{8, 32} {
		b.Run(fmt.Sprintf("E=%d", e), func(b *testing.B) {
			layer, x := benchLayer(b, e)
			dy := tensor.RandN(xrand.New(7), 1, x.Dim(0), x.Dim(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, cache, err := layer.Forward(x, true)
				if err != nil {
					b.Fatal(err)
				}
				layer.ZeroGrad()
				b.StartTimer()
				if _, err := layer.Backward(cache, dy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMoELayerForwardSequential pins the baseline the parallel path is
// measured against: identical layer, worker pool forced to width 1.
func BenchmarkMoELayerForwardSequential(b *testing.B) {
	for _, e := range []int{8, 32} {
		b.Run(fmt.Sprintf("E=%d", e), func(b *testing.B) {
			layer, x := benchLayer(b, e)
			tensor.SetWorkers(1)
			defer tensor.SetWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := layer.Forward(x, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

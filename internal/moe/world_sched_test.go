package moe

import (
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// TestWorldScheduleOverlaps asserts the structural fix: on the inter
// stream, every dispatch chunk is issued before any combine chunk
// (forward) and every combine-gradient chunk before any dispatch-gradient
// chunk (backward), so chunk c+1 can be on the wire while chunk c
// computes — the Fig. 3c/d ordering. Verified on the DES interpretation
// of the executed plan, which shares its structure with the real run.
func TestWorldScheduleOverlaps(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(71), 1, 96, 32)
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	checkInterOrder := func(phase, first, second string) {
		t.Helper()
		tr := w.LastPlan().Simulate()
		lastFirst, firstSecond := -1.0, -1.0
		for _, iv := range tr.Intervals {
			if iv.Task.Stream != "inter" {
				continue
			}
			switch {
			case strings.HasPrefix(iv.Task.Label, first):
				if iv.Finish > lastFirst {
					lastFirst = iv.Finish
				}
			case strings.HasPrefix(iv.Task.Label, second):
				if firstSecond < 0 || iv.Start < firstSecond {
					firstSecond = iv.Start
				}
			}
		}
		if lastFirst < 0 || firstSecond < 0 {
			t.Fatalf("%s: missing %s/%s tasks on inter stream", phase, first, second)
		}
		if firstSecond < lastFirst {
			t.Fatalf("%s: first %s starts at %v before last %s finishes at %v — wire phases interleaved",
				phase, second, firstSecond, first, lastFirst)
		}
	}
	checkInterOrder("forward", "D", "C")
	if _, err := w.Backward(cache, tensor.RandN(xrand.New(72), 1, 96, 32)); err != nil {
		t.Fatal(err)
	}
	checkInterOrder("backward", "C", "D")

	// The pipelined makespan must beat the fully serialized sum of task
	// durations under the DES interpretation (structural overlap exists).
	tr := w.LastPlan().Simulate()
	sum := 0.0
	for _, iv := range tr.Intervals {
		sum += iv.Finish - iv.Start
	}
	if tr.Makespan >= sum {
		t.Fatalf("simulated makespan %v shows no overlap over serialized %v", tr.Makespan, sum)
	}
}

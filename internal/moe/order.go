package moe

import (
	"repro/internal/tensor"
)

// Order is the data-layout sub-module of §3.1: it transforms token-major
// (N, M) activations into the expert-major (E, T, M) layout the dispatch
// AlltoAll expects (Scatter), and back (Gather, the "I-Order"), applying the
// combine weights on the way back. Both implementations must produce
// bit-identical results; they differ only in how a GPU would execute them.
type Order interface {
	Name() string
	// Scatter lays out x (N, M) as (E, T, M) according to the plan.
	// Weights are NOT applied here; empty slots are zero.
	Scatter(x *tensor.Tensor, plan *DispatchPlan) *tensor.Tensor
	// Gather inverts Scatter on the experts' outputs (E, T, M), producing
	// (N, M) with each slot's contribution scaled by its combine weight.
	Gather(expertOut *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor
	// ScatterGrad back-propagates through Scatter: given the gradient of
	// the (E, T, M) layout it returns the gradient of x.
	ScatterGrad(dScattered *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor
	// GatherGrad back-propagates through Gather: given dY (N, M) it
	// returns the gradient of the experts' outputs (weights applied) and
	// the gradient of each slot weight.
	GatherGrad(dy, expertOut *tensor.Tensor, plan *DispatchPlan) (*tensor.Tensor, *PlanGrad)
}

// GShardOrder realizes the ordering as dense one-hot einsum/matmul, the
// GShard formulation (§2.1): a (E·T, N) selection matrix multiplies the
// token matrix. On a GPU this trades memory traffic for GEMM throughput.
type GShardOrder struct{}

// Name implements Order.
func (GShardOrder) Name() string { return "gshard-einsum" }

// selection builds the (E*T, N) 0/1 dispatch matrix for a hard plan. The
// matrix is transient — callers Put it back once the GEMM consumed it.
func selection(plan *DispatchPlan, tokens int) *tensor.Tensor {
	s := tensor.Get(plan.Slots(), tokens)
	for e := range plan.SlotToken {
		for slot, tok := range plan.SlotToken[e] {
			if tok >= 0 {
				s.Set(1, e*plan.Capacity+slot, tok)
			}
		}
	}
	return s
}

// weightedSelection builds the (N, E*T) combine matrix carrying weights,
// transient like selection.
func weightedSelection(plan *DispatchPlan, tokens int) *tensor.Tensor {
	c := tensor.Get(tokens, plan.Slots())
	for e := range plan.SlotToken {
		for slot, tok := range plan.SlotToken[e] {
			if tok >= 0 {
				c.Set(plan.SlotWeight[e][slot], tok, e*plan.Capacity+slot)
			}
		}
	}
	return c
}

// Scatter implements Order.
func (GShardOrder) Scatter(x *tensor.Tensor, plan *DispatchPlan) *tensor.Tensor {
	if plan.IsDense() {
		return tensor.MatMul(plan.DispatchW, x).Reshape(plan.Experts, plan.Capacity, x.Dim(1))
	}
	sel := selection(plan, x.Dim(0))
	out := tensor.MatMul(sel, x).Reshape(plan.Experts, plan.Capacity, x.Dim(1))
	tensor.Put(sel)
	return out
}

// Gather implements Order.
func (GShardOrder) Gather(expertOut *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor {
	m := expertOut.Dim(2)
	flat := expertOut.Reshape(plan.Slots(), m)
	if plan.IsDense() {
		return tensor.MatMul(plan.CombineW, flat)
	}
	w := weightedSelection(plan, tokens)
	out := tensor.MatMul(w, flat)
	tensor.Put(w)
	return out
}

// ScatterGrad implements Order.
func (GShardOrder) ScatterGrad(dScattered *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor {
	m := dScattered.Dim(2)
	flat := dScattered.Reshape(plan.Slots(), m)
	if plan.IsDense() {
		return tensor.MatMulT1(plan.DispatchW, flat)
	}
	sel := selection(plan, tokens)
	out := tensor.MatMulT1(sel, flat)
	tensor.Put(sel)
	return out
}

// GatherGrad implements Order.
func (GShardOrder) GatherGrad(dy, expertOut *tensor.Tensor, plan *DispatchPlan) (*tensor.Tensor, *PlanGrad) {
	tokens := dy.Dim(0)
	m := dy.Dim(1)
	flatOut := expertOut.Reshape(plan.Slots(), m)
	if plan.IsDense() {
		dFlat := tensor.MatMulT1(plan.CombineW, dy)
		dCombine := tensor.MatMulT2(dy, flatOut)
		return dFlat.Reshape(plan.Experts, plan.Capacity, m), &PlanGrad{CombineW: dCombine}
	}
	c := weightedSelection(plan, tokens)
	dFlat := tensor.MatMulT1(c, dy)
	tensor.Put(c)
	pg := &PlanGrad{SlotWeight: make([][]float64, plan.Experts)}
	for e := range plan.SlotToken {
		pg.SlotWeight[e] = make([]float64, plan.Capacity)
		for slot, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			// dWeight = <dy[token], expertOut[e,slot]>.
			dot := 0.0
			outRow := flatOut.Row(e*plan.Capacity + slot)
			dyRow := dy.Row(tok)
			for j := range dyRow {
				dot += dyRow[j] * outRow[j]
			}
			pg.SlotWeight[e][slot] = dot
		}
	}
	return dFlat.Reshape(plan.Experts, plan.Capacity, m), pg
}

// TutelOrder realizes the ordering as direct sparse scatter/gather loops —
// the SIMT-efficient kernels of Tutel (§2.1) — parallelized across experts.
type TutelOrder struct{}

// Name implements Order.
func (TutelOrder) Name() string { return "tutel-sparse" }

// Scatter implements Order.
func (TutelOrder) Scatter(x *tensor.Tensor, plan *DispatchPlan) *tensor.Tensor {
	if plan.IsDense() {
		// Dense routing has no sparse structure to exploit; both orders
		// share the matmul formulation.
		return GShardOrder{}.Scatter(x, plan)
	}
	m := x.Dim(1)
	out := tensor.New(plan.Experts, plan.Capacity, m)
	parallelExperts(plan.Experts, func(e int) {
		for slot, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			copy(out.Data()[(e*plan.Capacity+slot)*m:(e*plan.Capacity+slot+1)*m], x.Row(tok))
		}
	})
	return out
}

// Gather implements Order.
func (TutelOrder) Gather(expertOut *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor {
	if plan.IsDense() {
		return GShardOrder{}.Gather(expertOut, plan, tokens)
	}
	m := expertOut.Dim(2)
	out := tensor.New(tokens, m)
	// Token rows may receive from several experts; serialize on tokens by
	// iterating experts in one goroutine per output shard is unsafe, so
	// accumulate sequentially per expert (capacity × M copies are cheap).
	for e := range plan.SlotToken {
		for slot, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			w := plan.SlotWeight[e][slot]
			src := expertOut.Data()[(e*plan.Capacity+slot)*m : (e*plan.Capacity+slot+1)*m]
			dst := out.Row(tok)
			for j, v := range src {
				dst[j] += w * v
			}
		}
	}
	return out
}

// ScatterGrad implements Order.
func (TutelOrder) ScatterGrad(dScattered *tensor.Tensor, plan *DispatchPlan, tokens int) *tensor.Tensor {
	if plan.IsDense() {
		return GShardOrder{}.ScatterGrad(dScattered, plan, tokens)
	}
	m := dScattered.Dim(2)
	out := tensor.New(tokens, m)
	for e := range plan.SlotToken {
		for slot, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			src := dScattered.Data()[(e*plan.Capacity+slot)*m : (e*plan.Capacity+slot+1)*m]
			dst := out.Row(tok)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return out
}

// GatherGrad implements Order.
func (TutelOrder) GatherGrad(dy, expertOut *tensor.Tensor, plan *DispatchPlan) (*tensor.Tensor, *PlanGrad) {
	if plan.IsDense() {
		return GShardOrder{}.GatherGrad(dy, expertOut, plan)
	}
	m := dy.Dim(1)
	dOut := tensor.New(plan.Experts, plan.Capacity, m)
	pg := &PlanGrad{SlotWeight: make([][]float64, plan.Experts)}
	for e := range plan.SlotToken {
		pg.SlotWeight[e] = make([]float64, plan.Capacity)
	}
	parallelExperts(plan.Experts, func(e int) {
		for slot, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			w := plan.SlotWeight[e][slot]
			dyRow := dy.Row(tok)
			outRow := expertOut.Data()[(e*plan.Capacity+slot)*m : (e*plan.Capacity+slot+1)*m]
			dst := dOut.Data()[(e*plan.Capacity+slot)*m : (e*plan.Capacity+slot+1)*m]
			dot := 0.0
			for j := range dyRow {
				dst[j] = w * dyRow[j]
				dot += dyRow[j] * outRow[j]
			}
			pg.SlotWeight[e][slot] = dot
		}
	})
	return dOut, pg
}

// parallelExperts runs f(e) for each expert on the shared tensor worker
// pool; small counts run inline there, so no threshold is needed here.
func parallelExperts(experts int, f func(e int)) {
	tensor.ParallelFor(experts, f)
}

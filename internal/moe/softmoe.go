package moe

import (
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// SoftMoEGate is soft routing (§3.1, Puigcerver et al.): every expert slot
// receives a convex combination of all tokens instead of a hard assignment.
// With slot parameters Φ (M × E·T) and logits L = x·Φ:
//
//	D = softmax over tokens (columns of L)   — dispatch weights
//	C = softmax over slots  (rows of L)      — combine weights
//
// Slot inputs are Dᵀ·x and the layer output is C·slotOutputs. No token is
// ever dropped and the routing is fully differentiable, which is why this
// gate's backward pass is exact through both softmaxes.
type SoftMoEGate struct {
	cfg      GateConfig
	m        int
	slotsPer int // T, slots per expert
	phi      *Param
}

type softmoeCache struct {
	logits *tensor.Tensor // (N, E*T)
	d      *tensor.Tensor // (N, E*T) column-softmax
	c      *tensor.Tensor // (N, E*T) row-softmax
}

// NewSoftMoEGate constructs the gate with slotsPerExpert slots each.
func NewSoftMoEGate(cfg GateConfig, m, slotsPerExpert int, rng *xrand.RNG) (*SoftMoEGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if slotsPerExpert <= 0 {
		slotsPerExpert = 1
	}
	return &SoftMoEGate{
		cfg:      cfg,
		m:        m,
		slotsPer: slotsPerExpert,
		phi:      newParam("softmoe.phi", tensor.Xavier(rng, m, cfg.Experts*slotsPerExpert)),
	}, nil
}

// Name implements Gate.
func (g *SoftMoEGate) Name() string { return "softmoe" }

// Params implements Gate.
func (g *SoftMoEGate) Params() []*Param { return []*Param{g.phi} }

// Route implements Gate.
func (g *SoftMoEGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	logits := tensor.MatMul(x, g.phi.W) // (N, slots)
	d := tensor.SoftmaxCols(logits)
	c := tensor.SoftmaxRows(logits)
	plan := &DispatchPlan{
		Experts:   g.cfg.Experts,
		Capacity:  g.slotsPer,
		DispatchW: tensor.Transpose2D(d), // (slots, N)
		CombineW:  c,                     // (N, slots)
	}
	return plan, &RouteCache{X: x, Plan: plan, extra: &softmoeCache{logits: logits, d: d, c: c}}, nil
}

// Backward implements Gate: exact gradients through both softmaxes.
// grad.DispatchW is ∂L/∂(Dᵀ) and grad.CombineW is ∂L/∂C.
func (g *SoftMoEGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	cache := rc.extra.(*softmoeCache)
	x := rc.X
	n := x.Dim(0)
	slots := g.cfg.Experts * g.slotsPer
	dLogits := tensor.New(n, slots)
	if grad.CombineW != nil {
		// Row softmax backward: per token row.
		for t := 0; t < n; t++ {
			w := cache.c.Row(t)
			dw := grad.CombineW.Row(t)
			dl := maskedSoftmaxBackward(w, dw)
			row := dLogits.Row(t)
			for j := range row {
				row[j] += dl[j]
			}
		}
	}
	if grad.DispatchW != nil {
		// Column softmax backward: per slot column. grad.DispatchW is
		// (slots, N) = ∂L/∂Dᵀ, so column s of D has gradient row s of it.
		w := make([]float64, n)
		dw := make([]float64, n)
		for s := 0; s < slots; s++ {
			for t := 0; t < n; t++ {
				w[t] = cache.d.At(t, s)
				dw[t] = grad.DispatchW.At(s, t)
			}
			dl := maskedSoftmaxBackward(w, dw)
			for t := 0; t < n; t++ {
				dLogits.Set(dLogits.At(t, s)+dl[t], t, s)
			}
		}
	}
	tensor.AddInPlace(g.phi.G, tensor.MatMulT1(x, dLogits))
	return tensor.MatMulT2(dLogits, g.phi.W)
}

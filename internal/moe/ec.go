package moe

import (
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// ECGate is expert-choice routing (§2.1, Zhou et al.): instead of tokens
// picking experts, each expert independently selects its top-T tokens,
// G(x) = Softmax(KeepTopK((x·W_g)ᵀ, T)), guaranteeing perfect load balance
// by construction (no token is ever dropped for capacity; capacity IS the
// selection budget).
type ECGate struct {
	cfg GateConfig
	m   int
	wg  *Param
}

type ecCache struct {
	logits *tensor.Tensor // (N, E)
	selTok [][]int        // per expert: selected token ids
	selW   [][]float64    // per expert: masked-softmax weights over its tokens
}

// NewECGate constructs the gate for embedding size m. The per-expert token
// budget T is derived from the usual capacity formula T = k·f·N/E at route
// time, so the same GateConfig vocabulary drives all gates.
func NewECGate(cfg GateConfig, m int, rng *xrand.RNG) (*ECGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ECGate{cfg: cfg, m: m, wg: newParam("ec.wg", tensor.Xavier(rng, m, cfg.Experts))}, nil
}

// Name implements Gate.
func (g *ECGate) Name() string { return "ec" }

// Params implements Gate.
func (g *ECGate) Params() []*Param { return []*Param{g.wg} }

// Route implements Gate.
func (g *ECGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	n, e := x.Dim(0), g.cfg.Experts
	capacity := CapacityFor(n, e, g.cfg.TopK, g.cfg.Factor)
	if capacity <= 0 { // f=∗ degenerates to an even split for EC
		capacity = (g.cfg.TopK*n + e - 1) / e
	}
	if capacity > n {
		capacity = n
	}
	logits := tensor.MatMul(x, g.wg.W)
	p := &DispatchPlan{Experts: e, Capacity: capacity}
	p.SlotToken = make([][]int, e)
	p.SlotWeight = make([][]float64, e)
	cache := &ecCache{logits: logits, selTok: make([][]int, e), selW: make([][]float64, e)}
	col := make([]float64, n)
	for ei := 0; ei < e; ei++ {
		for t := 0; t < n; t++ {
			col[t] = logits.At(t, ei)
		}
		sel := tensor.TopK(col, capacity)
		kept := make([]float64, len(sel))
		for j, tok := range sel {
			kept[j] = col[tok]
		}
		w := softmaxVec(kept)
		p.SlotToken[ei] = append([]int(nil), sel...)
		p.SlotWeight[ei] = append([]float64(nil), w...)
		cache.selTok[ei] = p.SlotToken[ei]
		cache.selW[ei] = p.SlotWeight[ei]
	}
	return p, &RouteCache{X: x, Plan: p, extra: cache}, nil
}

// Backward implements Gate: per expert, the masked softmax over its
// selected tokens is differentiated, then the gradient flows through the
// shared linear scorer.
func (g *ECGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	cache := rc.extra.(*ecCache)
	x := rc.X
	n, e := x.Dim(0), g.cfg.Experts
	dLogits := tensor.New(n, e)
	for ei := 0; ei < e; ei++ {
		var dw []float64
		if grad.SlotWeight != nil {
			dw = grad.SlotWeight[ei]
		} else {
			dw = make([]float64, len(cache.selW[ei]))
		}
		dl := maskedSoftmaxBackward(cache.selW[ei], dw)
		for j, tok := range cache.selTok[ei] {
			dLogits.Set(dl[j], tok, ei)
		}
	}
	tensor.AddInPlace(g.wg.G, tensor.MatMulT1(x, dLogits))
	return tensor.MatMulT2(dLogits, g.wg.W)
}

package moe

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// lossOf is the scalar test loss <y, r> for gradient checking.
func lossOf(y, r *tensor.Tensor) float64 {
	return tensor.Sum(tensor.Mul(y, r))
}

// numGradInput estimates d loss/d x[i] by central differences, re-running
// forward.
func numGradInput(f func(x *tensor.Tensor) float64, x *tensor.Tensor, i int, eps float64) float64 {
	orig := x.Data()[i]
	x.Data()[i] = orig + eps
	up := f(x)
	x.Data()[i] = orig - eps
	down := f(x)
	x.Data()[i] = orig
	return (up - down) / (2 * eps)
}

func checkExpertGradients(t *testing.T, mk func(rng *xrand.RNG) Expert) {
	t.Helper()
	rng := xrand.New(42)
	exp := mk(rng)
	const n, m = 5, 6
	x := tensor.RandN(rng, 1, n, m)
	r := tensor.RandN(rng, 1, n, m)

	y, cache := exp.Forward(x)
	dx := exp.Backward(cache, r.Clone())
	_ = y

	f := func(xx *tensor.Tensor) float64 {
		yy, _ := exp.Forward(xx)
		return lossOf(yy, r)
	}
	const eps = 1e-6
	for i := 0; i < x.Size(); i += 7 {
		num := numGradInput(f, x, i, eps)
		ana := dx.Data()[i]
		if math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad[%d]: numeric %v vs analytic %v", exp.Name(), i, num, ana)
		}
	}

	// Parameter gradients: perturb a few entries of each parameter.
	for _, p := range exp.Params() {
		p.G.Zero()
	}
	y2, cache2 := exp.Forward(x)
	_ = y2
	exp.Backward(cache2, r.Clone())
	for _, p := range exp.Params() {
		stride := p.W.Size()/5 + 1
		for i := 0; i < p.W.Size(); i += stride {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			yu, _ := exp.Forward(x)
			p.W.Data()[i] = orig - eps
			yd, _ := exp.Forward(x)
			p.W.Data()[i] = orig
			num := (lossOf(yu, r) - lossOf(yd, r)) / (2 * eps)
			ana := p.G.Data()[i]
			if math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s: %s grad[%d]: numeric %v vs analytic %v", exp.Name(), p.Name, i, num, ana)
			}
		}
	}
}

func TestGPTFFNGradients(t *testing.T) {
	checkExpertGradients(t, func(rng *xrand.RNG) Expert {
		e, err := NewGPTFFN(6, 9, rng)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

func TestMixtralFFNGradients(t *testing.T) {
	checkExpertGradients(t, func(rng *xrand.RNG) Expert {
		e, err := NewMixtralFFN(6, 9, rng)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

func TestExpertShapes(t *testing.T) {
	rng := xrand.New(1)
	for _, mk := range []func() (Expert, error){
		func() (Expert, error) { return NewGPTFFN(8, 16, rng) },
		func() (Expert, error) { return NewMixtralFFN(8, 16, rng) },
	} {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.RandN(rng, 1, 3, 8)
		y, _ := e.Forward(x)
		if y.Dim(0) != 3 || y.Dim(1) != 8 {
			t.Fatalf("%s: output shape %v", e.Name(), y.Shape())
		}
	}
}

func TestExpertMACsAndBytes(t *testing.T) {
	rng := xrand.New(2)
	g, _ := NewGPTFFN(4, 10, rng)
	if g.FwdMACs(3) != 2*3*4*10 {
		t.Fatalf("GPT MACs = %v", g.FwdMACs(3))
	}
	if g.ParamBytes() != 4*float64(2*4*10+10+4) {
		t.Fatalf("GPT bytes = %v", g.ParamBytes())
	}
	m, _ := NewMixtralFFN(4, 10, rng)
	if m.FwdMACs(3) != 3*3*4*10 {
		t.Fatalf("Mixtral MACs = %v", m.FwdMACs(3))
	}
	if m.ParamBytes() != 4*float64(3*4*10) {
		t.Fatalf("Mixtral bytes = %v", m.ParamBytes())
	}
}

func TestExpertConstructorErrors(t *testing.T) {
	rng := xrand.New(3)
	if _, err := NewGPTFFN(0, 4, rng); err == nil {
		t.Fatal("expected error for M=0")
	}
	if _, err := NewMixtralFFN(4, -1, rng); err == nil {
		t.Fatal("expected error for H<0")
	}
}

package moe

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// onlyExpert hides the IntoExpert fast path, forcing the layer's copying
// fallback, so the two code paths can be compared.
type onlyExpert struct{ inner Expert }

func (o onlyExpert) Name() string     { return o.inner.Name() }
func (o onlyExpert) Params() []*Param { return o.inner.Params() }
func (o onlyExpert) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	return o.inner.Forward(x)
}
func (o onlyExpert) Backward(c ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	return o.inner.Backward(c, dy)
}
func (o onlyExpert) FwdMACs(n int) float64 { return o.inner.FwdMACs(n) }
func (o onlyExpert) ParamBytes() float64   { return o.inner.ParamBytes() }

func testLayer(t *testing.T, wrap bool) (*MOELayer, []*GPTFFN) {
	t.Helper()
	const m, e, topK = 32, 8, 2
	rng := xrand.New(5)
	gate, err := NewGShardGate(GateConfig{Experts: e, TopK: topK, Factor: 1.25}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	ffns := make([]*GPTFFN, e)
	exps := make([]Expert, e)
	for i := range exps {
		f, err := NewGPTFFN(m, 64, rng)
		if err != nil {
			t.Fatal(err)
		}
		ffns[i] = f
		if wrap {
			exps[i] = onlyExpert{f}
		} else {
			exps[i] = f
		}
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: gate, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	return layer, ffns
}

// TestParallelExpertsBitIdentical is the acceptance check for the parallel
// expert loop: forward outputs, input gradients and every parameter
// gradient must be bit-identical at any worker-pool width, because
// parallelism shards whole experts (and whole GEMM rows) without
// reordering any single element's accumulation.
func TestParallelExpertsBitIdentical(t *testing.T) {
	defer tensor.SetWorkers(0)
	x := tensor.RandN(xrand.New(9), 1, 64, 32)
	dy := tensor.RandN(xrand.New(10), 1, 64, 32)

	type snapshot struct {
		y, dx *tensor.Tensor
		grads []*tensor.Tensor
	}
	run := func(workers int) snapshot {
		tensor.SetWorkers(workers)
		layer, _ := testLayer(t, false)
		y, cache, err := layer.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		layer.ZeroGrad()
		dx, err := layer.Backward(cache, dy)
		if err != nil {
			t.Fatal(err)
		}
		var grads []*tensor.Tensor
		for _, p := range layer.Params() {
			grads = append(grads, p.G.Clone())
		}
		return snapshot{y: y, dx: dx, grads: grads}
	}

	seq := run(1)
	for _, w := range []int{2, 4, 8} {
		par := run(w)
		if par.y.MaxAbsDiff(seq.y) != 0 {
			t.Fatalf("workers=%d: forward output not bit-identical", w)
		}
		if par.dx.MaxAbsDiff(seq.dx) != 0 {
			t.Fatalf("workers=%d: input gradient not bit-identical", w)
		}
		for i := range seq.grads {
			if par.grads[i].MaxAbsDiff(seq.grads[i]) != 0 {
				t.Fatalf("workers=%d: param grad %d not bit-identical", w, i)
			}
		}
	}
}

// TestSharedExpertInstanceRunsSequentially pins the compatibility rule for
// legacy custom layers: the same Expert instance registered at several
// indices (weight tying) must not race — the layer detects the aliasing
// and serializes, so gradients accumulate exactly as in the sequential era.
func TestSharedExpertInstanceRunsSequentially(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(8)
	const m, e = 16, 4
	rng := xrand.New(2)
	gate, err := NewGShardGate(GateConfig{Experts: e, TopK: 1, Factor: 2}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewGPTFFN(m, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		exps[i] = shared
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: gate, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	if !layer.seqExperts {
		t.Fatal("aliased expert list not detected")
	}
	x := tensor.RandN(xrand.New(3), 1, 24, m)
	y, cache, err := layer.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	layer.ZeroGrad()
	if _, err := layer.Backward(cache, y); err != nil {
		t.Fatal(err)
	}
}

// TestIntoExpertMatchesCopyingFallback verifies the zero-copy view path and
// the copying fallback produce bit-identical results for identically
// initialized layers.
func TestIntoExpertMatchesCopyingFallback(t *testing.T) {
	x := tensor.RandN(xrand.New(9), 1, 64, 32)
	dy := tensor.RandN(xrand.New(10), 1, 64, 32)

	fast, fastF := testLayer(t, false)
	slow, slowF := testLayer(t, true)

	yf, cf, err := fast.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	ys, cs, err := slow.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if yf.MaxAbsDiff(ys) != 0 {
		t.Fatal("view path and copy path forward outputs differ")
	}
	fast.ZeroGrad()
	slow.ZeroGrad()
	dxf, err := fast.Backward(cf, dy)
	if err != nil {
		t.Fatal(err)
	}
	dxs, err := slow.Backward(cs, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dxf.MaxAbsDiff(dxs) != 0 {
		t.Fatal("view path and copy path input gradients differ")
	}
	for i := range fastF {
		for j, p := range fastF[i].Params() {
			if p.G.MaxAbsDiff(slowF[i].Params()[j].G) != 0 {
				t.Fatalf("expert %d param %s gradient differs between paths", i, p.Name)
			}
		}
	}
}

package moe

import (
	"fmt"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Strategy names a parallel execution scheme for World — the §4
// generalized MoE layer's configuration axis made a first-class API
// object.
type Strategy string

const (
	// StrategyEP is pure expert parallelism: experts are sharded E/R per
	// rank, tokens move to their experts over r-chunked dispatch/combine
	// AlltoAll collectives on the shared inter stream, and each rank
	// computes its expert shard whole. Hard-routing plans only.
	StrategyEP Strategy = "ep"
	// StrategyESP is expert-sharding parallelism: every rank participates
	// in every expert's compute over a shard of the work, with r-chunked
	// AllGather stages feeding the sharded GEMMs and a ReduceScatter
	// returning each rank's slot rows, all on the shared intra stream
	// (§4's intra-node collective stages). Hard-routing plans only;
	// experts must implement ShardedExpert.
	StrategyESP Strategy = "esp"
	// StrategyDenseSlots runs dense (SoftMoE) plans through the EP
	// pipeline chunked over expert slots instead of token rows: slots are
	// sharded across ranks, dispatch/combine AlltoAll moves slot rows, and
	// the convex token mixing stays in the replicated gate/order stages.
	// Dense plans only.
	StrategyDenseSlots Strategy = "dense-slots"
	// StrategyHybrid is the §4 generalized configuration between the two
	// pure endpoints: the R ranks split into R/g expert-parallel groups of
	// g expert-sharding members (g = WorldConfig.GroupSize). Dispatch and
	// combine AlltoAll route tokens *between* groups on the shared inter
	// stream while AllGather/ReduceScatter and the sharded GEMM stages run
	// *within* each group on per-group intra collective streams. GroupSize
	// 1 degenerates to EP-shaped plans and GroupSize R to ESP-shaped ones
	// (built by the specialized strategies, so the plans are exactly
	// theirs). Hard-routing plans only; experts must implement
	// ShardedExpert at every group size.
	StrategyHybrid Strategy = "hybrid"
)

// ParallelStrategy builds the executable stream plans of one parallel
// scheme. World owns everything scheme-independent (prolog/epilog, slot
// padding, execution, traces); a strategy owns everything between the
// padded (E, Tpad, M) scattered buffer and the padded combined buffer —
// wire packing, collective chains, expert compute, and the gradient-sync
// emit points of the backward plan. One strategy instance belongs to one
// World.
type ParallelStrategy interface {
	// Name identifies the scheme.
	Name() Strategy
	// Validate checks the layer/config pairing at NewWorld time and primes
	// per-world state. Errors name the strategy and the unsupported
	// combination.
	Validate(l *MOELayer, cfg WorldConfig) error
	// PlanCheck validates each routed dispatch plan before a pass runs.
	PlanCheck(plan *DispatchPlan) error
	// Chunked reports whether the fine-grained expert execution contract
	// (ChunkedExpert or ShardedExpert) is in effect, as opposed to a
	// whole-block fallback.
	Chunked() bool
	// BuildForward appends the forward schedule to p: everything that
	// turns the padded scattered buffer into the padded combined buffer.
	BuildForward(w *World, p *runtime.Plan, cache *WorldCache, scatPad, combinedPad *tensor.Tensor)
	// BuildBackward appends the backward schedule to p: everything that
	// turns the padded output gradient dpad into the padded dScattered
	// buffer, accumulates expert parameter gradients on their owner
	// ranks, and drives w.sync's emit points.
	BuildBackward(w *World, p *runtime.Plan, cache *WorldCache, dpad, dScatteredPad *tensor.Tensor)
}

// strategyFor resolves a Strategy name to a fresh instance.
func strategyFor(s Strategy) (ParallelStrategy, error) {
	switch s {
	case StrategyEP:
		return &epStrategy{}, nil
	case StrategyESP:
		return &espStrategy{}, nil
	case StrategyDenseSlots:
		return &denseSlotsStrategy{}, nil
	case StrategyHybrid:
		return &hybridStrategy{}, nil
	default:
		return nil, fmt.Errorf("moe: unknown parallel strategy %q (valid: %s, %s, %s, %s)",
			s, StrategyEP, StrategyESP, StrategyDenseSlots, StrategyHybrid)
	}
}

// Strategies lists every built-in parallel strategy.
func Strategies() []Strategy {
	return []Strategy{StrategyEP, StrategyESP, StrategyDenseSlots, StrategyHybrid}
}

// DenseRouter marks gates whose plans use dense (SoftMoE-style) routing.
// Strategy auto-selection uses it to choose StrategyDenseSlots without
// running a routing pass; custom dense gates should implement it.
type DenseRouter interface {
	DenseRouting() bool
}

// DenseRouting implements DenseRouter for the built-in SoftMoE gate.
func (g *SoftMoEGate) DenseRouting() bool { return true }

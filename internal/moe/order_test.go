package moe

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// randomHardPlan builds a random but valid hard plan for property tests.
func randomHardPlan(r *xrand.RNG, tokens, experts, k int) *DispatchPlan {
	var asg []assignment
	for t := 0; t < tokens; t++ {
		perm := r.Perm(experts)
		for j := 0; j < k && j < experts; j++ {
			asg = append(asg, assignment{token: t, expert: perm[j], weight: 0.1 + r.Float64()})
		}
	}
	return buildHardPlan(tokens, experts, 0, asg)
}

// TestOrdersProduceIdenticalLayouts is the §3.1 interchangeability claim:
// the GShard einsum ordering and the Tutel sparse ordering must be
// bit-compatible in both directions.
func TestOrdersProduceIdenticalLayouts(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tokens := 1 + r.Intn(16)
		experts := 1 + r.Intn(6)
		k := 1 + r.Intn(experts)
		m := 1 + r.Intn(8)
		plan := randomHardPlan(r, tokens, experts, k)
		x := tensor.RandN(r, 1, tokens, m)

		sg := GShardOrder{}.Scatter(x, plan)
		st := TutelOrder{}.Scatter(x, plan)
		if !sg.AllClose(st, 1e-12) {
			return false
		}
		out := tensor.RandN(r, 1, experts, plan.Capacity, m)
		gg := GShardOrder{}.Gather(out, plan, tokens)
		gt := TutelOrder{}.Gather(out, plan, tokens)
		return gg.AllClose(gt, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderInverse is the I-Order property: gathering the scattered layout
// with unit weights restores the original tokens (for plans where every
// token occupies exactly one slot).
func TestOrderInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tokens := 1 + r.Intn(16)
		experts := 1 + r.Intn(6)
		m := 1 + r.Intn(8)
		plan := randomHardPlan(r, tokens, experts, 1) // k=1: one slot per token
		// Force unit weights so gather is an exact inverse.
		for e := range plan.SlotWeight {
			for s := range plan.SlotWeight[e] {
				if plan.SlotToken[e][s] >= 0 {
					plan.SlotWeight[e][s] = 1
				}
			}
		}
		x := tensor.RandN(r, 1, tokens, m)
		for _, ord := range []Order{GShardOrder{}, TutelOrder{}} {
			y := ord.Gather(ord.Scatter(x, plan), plan, tokens)
			if !y.AllClose(x, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterDroppedTokensZero(t *testing.T) {
	// Token 1's assignment is dropped (capacity 1); its slot must not exist
	// and the gathered output for it must be zero.
	asg := []assignment{
		{token: 0, expert: 0, weight: 1},
		{token: 1, expert: 0, weight: 1},
	}
	plan := buildHardPlan(2, 1, 1, asg)
	if plan.Dropped != 1 {
		t.Fatalf("dropped = %d", plan.Dropped)
	}
	r := xrand.New(5)
	x := tensor.RandN(r, 1, 2, 4)
	for _, ord := range []Order{GShardOrder{}, TutelOrder{}} {
		s := ord.Scatter(x, plan)
		y := ord.Gather(s, plan, 2)
		for j := 0; j < 4; j++ {
			if y.At(1, j) != 0 {
				t.Fatalf("%s: dropped token got output %v", ord.Name(), y.Row(1))
			}
		}
	}
}

func TestScatterGradIsAdjoint(t *testing.T) {
	// <Scatter(x), G> == <x, ScatterGrad(G)> for all x, G — the defining
	// property of a correct linear-operator backward.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tokens := 1 + r.Intn(10)
		experts := 1 + r.Intn(4)
		m := 1 + r.Intn(6)
		plan := randomHardPlan(r, tokens, experts, 1+r.Intn(experts))
		x := tensor.RandN(r, 1, tokens, m)
		g := tensor.RandN(r, 1, experts, plan.Capacity, m)
		for _, ord := range []Order{GShardOrder{}, TutelOrder{}} {
			lhs := tensor.Sum(tensor.Mul(ord.Scatter(x, plan), g))
			rhs := tensor.Sum(tensor.Mul(x, ord.ScatterGrad(g, plan, tokens)))
			if math.Abs(lhs-rhs) > 1e-8*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherGradMatchesNumeric(t *testing.T) {
	r := xrand.New(11)
	tokens, experts, m := 6, 3, 4
	plan := randomHardPlan(r, tokens, experts, 2)
	out := tensor.RandN(r, 1, experts, plan.Capacity, m)
	dy := tensor.RandN(r, 1, tokens, m)

	for _, ord := range []Order{GShardOrder{}, TutelOrder{}} {
		dOut, pg := ord.GatherGrad(dy, out, plan)
		// Adjoint on the data path: <Gather(out), dy> == <out, dOut>.
		lhs := tensor.Sum(tensor.Mul(ord.Gather(out, plan, tokens), dy))
		rhs := tensor.Sum(tensor.Mul(out, dOut))
		if math.Abs(lhs-rhs) > 1e-8 {
			t.Fatalf("%s: gather adjoint broken: %v vs %v", ord.Name(), lhs, rhs)
		}
		// Weight gradient numerically.
		const eps = 1e-6
		for e := 0; e < experts; e++ {
			for s := 0; s < plan.Capacity; s++ {
				if plan.SlotToken[e][s] < 0 {
					continue
				}
				orig := plan.SlotWeight[e][s]
				plan.SlotWeight[e][s] = orig + eps
				up := tensor.Sum(tensor.Mul(ord.Gather(out, plan, tokens), dy))
				plan.SlotWeight[e][s] = orig - eps
				down := tensor.Sum(tensor.Mul(ord.Gather(out, plan, tokens), dy))
				plan.SlotWeight[e][s] = orig
				num := (up - down) / (2 * eps)
				if math.Abs(num-pg.SlotWeight[e][s]) > 1e-5*(1+math.Abs(num)) {
					t.Fatalf("%s: weight grad (%d,%d): numeric %v vs %v", ord.Name(), e, s, num, pg.SlotWeight[e][s])
				}
			}
		}
	}
}

func TestDensePlanOrderPaths(t *testing.T) {
	// Dense (SoftMoE) plans must route through the matmul formulation in
	// both orders identically.
	r := xrand.New(21)
	tokens, experts, capacity, m := 5, 2, 3, 4
	slots := experts * capacity
	plan := &DispatchPlan{
		Experts:   experts,
		Capacity:  capacity,
		DispatchW: tensor.RandN(r, 1, slots, tokens),
		CombineW:  tensor.RandN(r, 1, tokens, slots),
	}
	x := tensor.RandN(r, 1, tokens, m)
	sg := GShardOrder{}.Scatter(x, plan)
	st := TutelOrder{}.Scatter(x, plan)
	if !sg.AllClose(st, 1e-12) {
		t.Fatal("dense scatter differs between orders")
	}
	out := tensor.RandN(r, 1, experts, capacity, m)
	gg := GShardOrder{}.Gather(out, plan, tokens)
	gt := TutelOrder{}.Gather(out, plan, tokens)
	if !gg.AllClose(gt, 1e-12) {
		t.Fatal("dense gather differs between orders")
	}
}

package moe

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// hybridStrategy is the §4 generalized MoE configuration between pure EP
// and pure ESP: the R ranks split into nG = R/g expert-parallel groups of
// g expert-sharding members (g = WorldConfig.GroupSize). Group G owns the
// contiguous expert range [G·Egg, (G+1)·Egg), Egg = g·E/R, and its g
// members shard every group expert's compute the way ESP shards all of
// them. Per chunk c the plan is
//
//	D       dispatch AlltoAll between groups: lane m (member m of every
//	        group, global ranks {p·g+m}) runs an nG-participant AlltoAll
//	        on the shared inter stream, moving each rank's slot rows to
//	        the group owning their experts;
//	AG(x)   gather the g members' arrivals inside each group, on that
//	        group's own intra collective stream;
//	H       stage-1 GEMMs over every arrived row range, sharded over
//	        hidden COLUMNS g ways (ShardedExpert);
//	AG(h)   gather the hidden column shards to full width in-group;
//	O       stage-2 GEMMs, sharded over each member's own arrival ROWS;
//	RS(y)   in-group ReduceScatter of the row-disjoint partial outputs
//	        (one non-zero contributor per element, so the ring is exact);
//	C       combine AlltoAll between groups, back on the inter stream.
//
// Bit-identity leans on one invariant: a member lands every dispatched
// row at its canonical offset (p·g+m)·spad+t inside the group's
// (Egg, tpad, M) buffers, so the assembled blocks are ordered exactly as
// the sequential layer's and ESP's. The stage GEMMs then shard complete
// dot products (columns forward, rows backward), and each expert's
// full-block weight-gradient reduction runs once on its owner rank
// j = e·R/E (the RankGrads mapping; owner j is member j mod g of group
// j div g) from fully assembled buffers — the same one-contributor-exact
// argument as ESP, now with both stream families live in one plan.
//
// GroupSize 1 and R are built by the specialized strategies (EP and ESP
// respectively) through delegation, so the degenerate plans are exactly
// theirs — Name still reports "hybrid", and the ShardedExpert requirement
// holds at every g for a uniform contract. The genuine two-stream path
// runs for 1 < g < R.
type hybridStrategy struct {
	g, nG   int              // group size, group count
	eg, egg int              // experts per rank, experts per group
	inner   ParallelStrategy // degenerate delegate (g=1 EP, g=R ESP), else nil
	experts []ShardedExpert  // the layer's experts under the sharded contract
	groups  [][]int          // groups[G]: contiguous member ranks of group G
	lanes   [][]int          // lanes[m]: member m of every group, stride g
}

// hybridCache is the hybrid forward state Backward consumes.
type hybridCache struct {
	xFull   []*tensor.Tensor   // per rank (Egg, tpad, M) assembled group inputs
	outFull []*tensor.Tensor   // per rank (Egg, tpad, M) row-shard outputs
	hf      [][]*tensor.Tensor // [rank][group-local expert] exchange buffers
	scs     [][]ShardedCache   // [rank][group-local expert]
}

// Name implements ParallelStrategy. Degenerate group sizes still report
// the hybrid name: the delegate is a plan-construction detail.
func (s *hybridStrategy) Name() Strategy { return StrategyHybrid }

// Chunked implements ParallelStrategy.
func (s *hybridStrategy) Chunked() bool {
	if s.inner != nil {
		return s.inner.Chunked()
	}
	return true
}

// Validate implements ParallelStrategy: GroupSize must be a divisor of
// the rank count inside [1, R], and every expert must implement
// ShardedExpert — at every group size, so a layer that validates at one
// g validates at all of them (the Algorithm-1 grid sweeps g freely).
func (s *hybridStrategy) Validate(l *MOELayer, cfg WorldConfig) error {
	r, g := cfg.Ranks, cfg.GroupSize
	if g < 1 || g > r {
		return fmt.Errorf("moe: strategy %q needs GroupSize in [1, %d] (the rank count), got GroupSize=%d",
			StrategyHybrid, r, g)
	}
	if r%g != 0 {
		return fmt.Errorf("moe: strategy %q needs GroupSize dividing the rank count, got %d ranks over GroupSize=%d",
			StrategyHybrid, r, g)
	}
	s.experts = make([]ShardedExpert, len(l.cfg.Experts))
	for e, ex := range l.cfg.Experts {
		se, ok := ex.(ShardedExpert)
		if !ok {
			return fmt.Errorf("moe: strategy %q requires sharded expert compute at every GroupSize, but expert %d (%T) does not implement ShardedExpert; whole-block experts run under strategy %q",
				StrategyHybrid, e, ex, StrategyEP)
		}
		s.experts[e] = se
	}
	s.g, s.nG = g, r/g
	s.eg = len(l.cfg.Experts) / r
	s.egg = s.eg * g
	s.groups = make([][]int, s.nG)
	for gi := range s.groups {
		s.groups[gi] = make([]int, g)
		for m := 0; m < g; m++ {
			s.groups[gi][m] = gi*g + m
		}
	}
	s.lanes = make([][]int, g)
	for m := range s.lanes {
		s.lanes[m] = make([]int, s.nG)
		for p := 0; p < s.nG; p++ {
			s.lanes[m][p] = p*g + m
		}
	}
	switch g {
	case 1:
		s.inner = &epStrategy{}
	case r:
		s.inner = &espStrategy{}
	default:
		return nil
	}
	return s.inner.Validate(l, cfg)
}

// PlanCheck implements ParallelStrategy.
func (s *hybridStrategy) PlanCheck(plan *DispatchPlan) error {
	if plan.IsDense() {
		return fmt.Errorf("moe: strategy %q supports hard routing only (dense SoftMoE plans have no token rows to route between groups); dense plans run under strategy %q",
			StrategyHybrid, StrategyDenseSlots)
	}
	return nil
}

// groupCollStream is group G's intra collective stream: each group runs
// its AllGather/ReduceScatter chain on its own stream, so the nG chains
// genuinely co-execute (and all of them overlap the shared inter stream).
func groupCollStream(g int) string { return fmt.Sprintf("intra:g%d", g) }

// groupGpn models one contiguous member group's node shape for Stats and
// the ring groupings: consecutive global ranks, so a group either fits
// inside one node or spans whole nodes; anything irregular degrades to
// all-inter attribution.
func (s *hybridStrategy) groupGpn(w *World) int {
	gpn := w.cfg.GPUsPerNode
	if gpn >= s.g {
		return s.g
	}
	if s.g%gpn == 0 {
		return gpn
	}
	return 1
}

// laneGpn models one dispatch lane's node shape: lane members sit g apart,
// so consecutive lane members share a node only when each node holds whole
// groups (g divides GPUsPerNode); otherwise every lane hop is inter-node.
func (s *hybridStrategy) laneGpn(w *World) int {
	gpn := w.cfg.GPUsPerNode
	if gpn%s.g == 0 {
		if ln := gpn / s.g; ln >= 1 && s.nG%ln == 0 {
			return ln
		}
	}
	return 1
}

// groupEst is a structural duration estimate (MMACs) of group G's expert
// range over rows, the hybrid analog of World.allExpertEst.
func (s *hybridStrategy) groupEst(gi, rows int) float64 {
	macs := 0.0
	for _, ex := range s.experts[gi*s.egg : (gi+1)*s.egg] {
		macs += ex.FwdMACs(rows)
	}
	return macs / 1e6
}

// laneA2A wraps one chunk's dispatch (or combine) step: the g per-lane
// AlltoAll collectives issued back to back on the shared inter stream. One
// guard covers the whole step and runs before any lane moves a byte, so a
// transient guard failure retries bit-safely.
func (s *hybridStrategy) laneA2A(w *World, send, recv [][]float64, dims comm.BlockDims, rr comm.RowRange) func() error {
	guard := w.collGuard("inter", KindA2A)
	gpn := s.laneGpn(w)
	return func() error {
		// One guard invocation per attempt: lane 0 carries it, the
		// remaining lanes of the same step run unguarded behind it.
		lg := guard
		for _, lane := range s.lanes {
			st, err := comm.GroupAlltoAllRowsGuarded(lg, w.cfg.Algo, lane, send, recv, gpn, dims, rr)
			if err != nil {
				return err
			}
			lg = nil
			w.addStats(st)
		}
		return nil
	}
}

// xferMember copies chunk rows between member (G, m)'s (Egg, tpad, M)
// group buffer and its lane wire, whose per-peer blocks are keyed by peer
// group: block p holds global rank (p·g+m)'s slot rows, landed at their
// canonical offsets (p·g+m)·spad+t — the row-order invariant the
// weight-gradient reductions rely on. Peer groups shard over pool.
func (s *hybridStrategy) xferMember(pool *tensor.Pool, wire, block []float64, m, mdim, spad, tpad int, rr comm.RowRange, toWire bool) {
	g, egg := s.g, s.egg
	blk := spad * egg * mdim
	pool.ParallelFor(s.nG, func(p int) {
		wb := wire[p*blk : (p+1)*blk]
		base := (p*g + m) * spad
		for el := 0; el < egg; el++ {
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := wireOff(t, el, 0, egg, mdim)
				boff := (el*tpad + base + t) * mdim
				if toWire {
					copy(wb[woff:woff+mdim], block[boff:boff+mdim])
				} else {
					copy(block[boff:boff+mdim], wb[woff:woff+mdim])
				}
			}
		}
	})
}

// xferRows copies chunk rows between a member's (Egg, tpad, M) group
// buffer and the slot-major group wire the in-group AllGather and
// ReduceScatter tile: wire row t stacks every (expert, peer-group) pair of
// member m's strided slot rows side by side, width E·M, so the group
// collectives chunk by slot row exactly like ESP's. Experts shard over
// pool.
func (s *hybridStrategy) xferRows(pool *tensor.Pool, wire, block []float64, m, mdim, spad, tpad int, rr comm.RowRange, toWire bool) {
	g, nG, egg := s.g, s.nG, s.egg
	width := egg * nG // == E
	pool.ParallelFor(egg, func(el int) {
		for p := 0; p < nG; p++ {
			base := (p*g + m) * spad
			for t := rr.Lo; t < rr.Hi; t++ {
				woff := (t*width + el*nG + p) * mdim
				boff := (el*tpad + base + t) * mdim
				if toWire {
					copy(wire[woff:woff+mdim], block[boff:boff+mdim])
				} else {
					copy(block[boff:boff+mdim], wire[woff:woff+mdim])
				}
			}
		}
	})
}

// rowsExchange appends one chunk's in-group row AllGather to the plan:
// per-member packs of the member's canonical strided rows, one ring
// AllGather per group on that group's collective stream, and per-member
// scatter of the other members' rows into the (Egg, tpad, M) buffers.
// bufs[j] is rank j's group buffer (xFull forward, dyFull backward);
// deps[j] gates rank j's pack. Returns the per-rank unpack task ids.
func (s *hybridStrategy) rowsExchange(w *World, p *runtime.Plan, label string, bufs []*tensor.Tensor, data, out [][]float64, mdim, spad, tpad int, rr comm.RowRange, deps []int) []int {
	g := s.g
	r := s.nG * g
	e := s.egg * s.nG
	gdims := comm.BlockDims{Rows: spad, Width: e * mdim}
	blk := gdims.Elems()
	packIDs := make([]int, r)
	for j := 0; j < r; j++ {
		j := j
		m := j % g
		packIDs[j] = p.Add(fmt.Sprintf("G%s[%d]", label, j), KindPack, intraStream(j),
			estElems(e*rr.Len()*mdim), func() error {
				s.xferRows(w.stagingPool(), data[j], bufs[j].Data(), m, mdim, spad, tpad, rr, true)
				return nil
			}, deps[j])
	}
	unpackIDs := make([]int, r)
	for gi := 0; gi < s.nG; gi++ {
		gi := gi
		members := s.groups[gi]
		guard := w.collGuard(groupCollStream(gi), KindAG)
		gpn := s.groupGpn(w)
		agDeps := make([]int, g)
		for m := 0; m < g; m++ {
			agDeps[m] = packIDs[members[m]]
		}
		ag := p.Add(fmt.Sprintf("AG%s[g%d]", label, gi), KindAG, groupCollStream(gi),
			estElems((g-1)*g*e*rr.Len()*mdim), func() error {
				st, err := comm.GroupAllGatherRowsGuarded(guard, members, data, out, gpn, gdims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, agDeps...)
		for m := 0; m < g; m++ {
			j := members[m]
			m := m
			unpackIDs[j] = p.Add(fmt.Sprintf("U%s[%d]", label, j), KindPack, intraStream(j),
				estElems(g*e*rr.Len()*mdim), func() error {
					for src := 0; src < g; src++ {
						if src == m {
							continue // own rows already live in the buffer
						}
						s.xferRows(w.stagingPool(), out[j][src*blk:(src+1)*blk], bufs[j].Data(), src, mdim, spad, tpad, rr, false)
					}
					return nil
				}, ag)
		}
	}
	return unpackIDs
}

// hiddenBlock is the per-member wire block of one hidden exchange chunk
// for group gi: for every group expert, bands stacked planes of (R·rlen
// rows × ⌈W/g⌉ allotted columns) — all R arrival row ranges, columns
// sharded g ways.
func (s *hybridStrategy) hiddenBlock(gi, rlen int, fwd bool) int {
	rows := s.nG * s.g * rlen
	blk := 0
	for _, ex := range s.experts[gi*s.egg : (gi+1)*s.egg] {
		ccap := (ex.HiddenWidth() + s.g - 1) / s.g
		bands := ex.FwdBands()
		if !fwd {
			bands = ex.BwdBands()
		}
		blk += bands * rows * ccap
	}
	return blk
}

// xferHidden moves member's hidden-column shards for chunk rows between
// group gi's full-width per-expert buffers bufs and a dense wire block
// (the hybrid analog of ESP's xferHidden: columns shard g ways, rows span
// all R arrival ranges).
func (s *hybridStrategy) xferHidden(gi int, bufs []*tensor.Tensor, wire []float64, member, spad, tpad int, rr comm.RowRange, fwd, toWire bool) {
	off := 0
	rlen := rr.Len()
	r := s.nG * s.g
	rows := r * rlen
	for le, ex := range s.experts[gi*s.egg : (gi+1)*s.egg] {
		width := ex.HiddenWidth()
		ccap := (width + s.g - 1) / s.g
		bands := ex.FwdBands()
		if !fwd {
			bands = ex.BwdBands()
		}
		cl, ch := colShard(width, member, s.g)
		if ch > cl {
			for b := 0; b < bands; b++ {
				plane := off + b*rows*ccap
				for i := 0; i < r; i++ {
					for t := rr.Lo; t < rr.Hi; t++ {
						woff := plane + (i*rlen+(t-rr.Lo))*ccap
						row := bufs[le].Row(b*tpad + i*spad + t)[cl:ch]
						if toWire {
							copy(wire[woff:woff+ch-cl], row)
						} else {
							copy(row, wire[woff:woff+ch-cl])
						}
					}
				}
			}
		}
		off += bands * rows * ccap
	}
}

// hiddenExchange appends one chunk's in-group hidden AllGather to the
// plan: per-member packs of the member's computed columns (pooled wire
// blocks), one ring AllGather per group on that group's collective
// stream, and per-member scatter of every member's columns into the
// full-width buffers. bufs[j] is rank j's per-expert buffer list (hf
// forward, hb backward); deps[j] gates rank j's pack. Returns the
// per-rank unpack task ids.
func (s *hybridStrategy) hiddenExchange(w *World, p *runtime.Plan, label string, bufs [][]*tensor.Tensor, spad, tpad int, rr comm.RowRange, fwd bool, deps []int) []int {
	g := s.g
	r := s.nG * g
	sendT := make([]*tensor.Tensor, r)
	send := make([][]float64, r)
	outT := make([]*tensor.Tensor, r)
	outB := make([][]float64, r)
	packIDs := make([]int, r)
	for j := 0; j < r; j++ {
		j := j
		gi, m := j/g, j%g
		blk := s.hiddenBlock(gi, rr.Len(), fwd)
		packIDs[j] = p.Add(fmt.Sprintf("P%s[%d]", label, j), KindPack, intraStream(j),
			estElems(blk), func() error {
				t := tensor.GetUninit(blk)
				sendT[j], send[j] = t, t.Data()
				s.xferHidden(gi, bufs[j], send[j], m, spad, tpad, rr, fwd, true)
				return nil
			}, deps[j])
	}
	unpackIDs := make([]int, r)
	for gi := 0; gi < s.nG; gi++ {
		gi := gi
		blk := s.hiddenBlock(gi, rr.Len(), fwd)
		members := s.groups[gi]
		guard := w.collGuard(groupCollStream(gi), KindAG)
		gpn := s.groupGpn(w)
		agDeps := make([]int, g)
		for m := 0; m < g; m++ {
			agDeps[m] = packIDs[members[m]]
		}
		ag := p.Add(fmt.Sprintf("AG%s[g%d]", label, gi), KindAG, groupCollStream(gi),
			estElems((g-1)*g*blk), func() error {
				for _, mr := range members {
					t := tensor.GetUninit(g * blk)
					outT[mr], outB[mr] = t, t.Data()
				}
				st, err := comm.GroupRingAllGatherIntoGuarded(guard, members, outB, send, gpn)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, agDeps...)
		for m := 0; m < g; m++ {
			j := members[m]
			unpackIDs[j] = p.Add(fmt.Sprintf("U%s[%d]", label, j), KindPack, intraStream(j),
				estElems(g*blk), func() error {
					for src := 0; src < g; src++ {
						s.xferHidden(gi, bufs[j], outB[j][src*blk:(src+1)*blk], src, spad, tpad, rr, fwd, false)
					}
					tensor.Put(outT[j])
					tensor.Put(sendT[j])
					return nil
				}, ag)
		}
	}
	return unpackIDs
}

// reduceScatter appends one chunk's in-group output ReduceScatter: each
// member packs its computed canonical rows into its own segment of the
// g-segment wire (the other segments stay zero, so every summed element
// has exactly one non-zero contributor and the ring is exact), one
// ReduceScatter per group on that group's collective stream, and each
// member lands its returned rows back into bufs. deps[j] gates rank j's
// pack. Returns the per-rank landing task ids.
func (s *hybridStrategy) reduceScatter(w *World, p *runtime.Plan, label string, bufs []*tensor.Tensor, data, out [][]float64, mdim, spad, tpad int, rr comm.RowRange, deps []int) []int {
	g := s.g
	r := s.nG * g
	e := s.egg * s.nG
	gdims := comm.BlockDims{Rows: spad, Width: e * mdim}
	blk := gdims.Elems()
	packIDs := make([]int, r)
	for j := 0; j < r; j++ {
		j := j
		m := j % g
		packIDs[j] = p.Add(fmt.Sprintf("P%s[%d]", label, j), KindPack, intraStream(j),
			estElems(e*rr.Len()*mdim), func() error {
				s.xferRows(w.stagingPool(), data[j][m*blk:(m+1)*blk], bufs[j].Data(), m, mdim, spad, tpad, rr, true)
				return nil
			}, deps[j])
	}
	landIDs := make([]int, r)
	for gi := 0; gi < s.nG; gi++ {
		gi := gi
		members := s.groups[gi]
		guard := w.collGuard(groupCollStream(gi), KindRS)
		gpn := s.groupGpn(w)
		rsDeps := make([]int, g)
		for m := 0; m < g; m++ {
			rsDeps[m] = packIDs[members[m]]
		}
		rs := p.Add(fmt.Sprintf("RS%s[g%d]", label, gi), KindRS, groupCollStream(gi),
			estElems((g-1)*g*e*rr.Len()*mdim), func() error {
				st, err := comm.GroupReduceScatterRowsGuarded(guard, members, data, out, gpn, gdims, rr)
				if err != nil {
					return err
				}
				w.addStats(st)
				return nil
			}, rsDeps...)
		for m := 0; m < g; m++ {
			j := members[m]
			m := m
			landIDs[j] = p.Add(fmt.Sprintf("V%s[%d]", label, j), KindPack, intraStream(j),
				estElems(e*rr.Len()*mdim), func() error {
					s.xferRows(w.stagingPool(), out[j], bufs[j].Data(), m, mdim, spad, tpad, rr, false)
					return nil
				}, rs)
		}
	}
	return landIDs
}

// BuildForward implements ParallelStrategy.
func (s *hybridStrategy) BuildForward(w *World, p *runtime.Plan, cache *WorldCache, scatPad, combinedPad *tensor.Tensor) {
	if s.inner != nil {
		s.inner.BuildForward(w, p, cache, scatPad, combinedPad)
		return
	}
	r, mdim := w.cfg.Ranks, w.layer.cfg.M
	g, nG, egg := s.g, s.nG, s.egg
	e := len(s.experts)
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksFwd)
	dims := comm.BlockDims{Rows: spad, Width: egg * mdim}
	blk := dims.Elems()

	hc := &hybridCache{
		xFull:   make([]*tensor.Tensor, r),
		outFull: make([]*tensor.Tensor, r),
		hf:      make([][]*tensor.Tensor, r),
		scs:     make([][]ShardedCache, r),
	}
	cache.sc = hc
	for j := 0; j < r; j++ {
		gi, m := j/g, j%g
		hc.xFull[j] = tensor.New(egg, tpad, mdim)
		hc.outFull[j] = tensor.New(egg, tpad, mdim)
		hc.hf[j] = make([]*tensor.Tensor, egg)
		hc.scs[j] = make([]ShardedCache, egg)
		for le := 0; le < egg; le++ {
			ex := s.experts[gi*egg+le]
			hc.hf[j][le] = tensor.New(ex.FwdBands()*tpad, ex.HiddenWidth())
			cl, ch := colShard(ex.HiddenWidth(), m, g)
			hc.scs[j][le] = ex.BeginSharded(
				expertView(hc.xFull[j], le, tpad, mdim),
				expertView(hc.outFull[j], le, tpad, mdim),
				hc.hf[j][le], cl, ch, w.computePool(j))
		}
	}

	send := wireBuffers(r, nG*blk)
	recv := wireBuffers(r, nG*blk)
	csend := wireBuffers(r, nG*blk)
	crecv := wireBuffers(r, nG*blk)
	agData := wireBuffers(r, spad*e*mdim)
	agOut := wireBuffers(r, g*spad*e*mdim)
	rsData := wireBuffers(r, g*spad*e*mdim)
	rsOut := wireBuffers(r, spad*e*mdim)
	scatD := scatPad.Data()

	// Phase 1 — pack + dispatch for every chunk, issued back to back on
	// the inter stream (the Fig. 3c/d ordering): chunk c+1 is on the wire
	// while chunk c runs its in-group stages.
	dispIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, r)
		for i := 0; i < r; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(e*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), send[i], scatD, nG, egg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		dispIDs[c] = p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(r*r*s.eg*rr.Len()*mdim), s.laneA2A(w, send, recv, dims, rr), packIDs...)
	}

	// Phase 2 — per chunk: land the lane arrivals at canonical offsets,
	// share them in-group, run the sharded stages, reduce-scatter, and
	// combine back to the token side.
	for c, rr := range ranges {
		rr := rr
		rows := r * rr.Len()
		landIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			m := j % g
			landIDs[j] = p.Add(fmt.Sprintf("Ux%d[%d]", c, j), KindPack, intraStream(j),
				estElems(e*rr.Len()*mdim), func() error {
					s.xferMember(w.stagingPool(), recv[j], hc.xFull[j].Data(), m, mdim, spad, tpad, rr, false)
					return nil
				}, dispIDs[c])
		}
		unpackX := s.rowsExchange(w, p, fmt.Sprintf("x%d", c), hc.xFull, agData, agOut, mdim, spad, tpad, rr, landIDs)
		hIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			gi := j / g
			hIDs[j] = p.Add(fmt.Sprintf("H%d[%d]", c, j), KindExpert, computeStream(j),
				s.groupEst(gi, rows)/(2*float64(g)), func() error {
					for le := 0; le < egg; le++ {
						ex := s.experts[gi*egg+le]
						for i := 0; i < r; i++ {
							ex.ForwardHidden(hc.scs[j][le], i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpackX[j])
		}
		unpackH := s.hiddenExchange(w, p, fmt.Sprintf("h%d", c), hc.hf, spad, tpad, rr, true, hIDs)
		oIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			gi, m := j/g, j%g
			oIDs[j] = p.Add(fmt.Sprintf("O%d[%d]", c, j), KindExpert, computeStream(j),
				s.groupEst(gi, nG*rr.Len())/2, func() error {
					for le := 0; le < egg; le++ {
						ex := s.experts[gi*egg+le]
						for q := 0; q < nG; q++ {
							base := (q*g + m) * spad
							ex.ForwardOut(hc.scs[j][le], base+rr.Lo, base+rr.Hi)
						}
					}
					return nil
				}, unpackH[j])
		}
		landY := s.reduceScatter(w, p, fmt.Sprintf("y%d", c), hc.outFull, rsData, rsOut, mdim, spad, tpad, rr, oIDs)
		packIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			m := j % g
			packIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
				estElems(e*rr.Len()*mdim), func() error {
					s.xferMember(w.stagingPool(), csend[j], hc.outFull[j].Data(), m, mdim, spad, tpad, rr, true)
					return nil
				}, landY[j])
		}
		comb := p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
			estElems(r*r*s.eg*rr.Len()*mdim), s.laneA2A(w, csend, crecv, dims, rr), packIDs...)
		for i := 0; i < r; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(e*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), crecv[i], combinedPad.Data(), nG, egg, mdim, spad, tpad, i, rr, false)
					return nil
				}, comb)
		}
	}
}

// BuildBackward implements ParallelStrategy.
func (s *hybridStrategy) BuildBackward(w *World, p *runtime.Plan, cache *WorldCache, dpad, dScatteredPad *tensor.Tensor) {
	if s.inner != nil {
		s.inner.BuildBackward(w, p, cache, dpad, dScatteredPad)
		return
	}
	hc := cache.sc.(*hybridCache)
	r, mdim := w.cfg.Ranks, w.layer.cfg.M
	g, nG, egg := s.g, s.nG, s.egg
	e := len(s.experts)
	spad, tpad := cache.spad, cache.tpad
	ranges := comm.SplitRows(spad, w.cfg.ChunksBwd)
	dims := comm.BlockDims{Rows: spad, Width: egg * mdim}
	blk := dims.Elems()

	dyFull := make([]*tensor.Tensor, r)
	dxFull := make([]*tensor.Tensor, r)
	hb := make([][]*tensor.Tensor, r)
	for j := 0; j < r; j++ {
		gi := j / g
		dyFull[j] = tensor.New(egg, tpad, mdim)
		dxFull[j] = tensor.New(egg, tpad, mdim)
		hb[j] = make([]*tensor.Tensor, egg)
		for le := 0; le < egg; le++ {
			ex := s.experts[gi*egg+le]
			hb[j][le] = tensor.New(ex.BwdBands()*tpad, ex.HiddenWidth())
		}
	}

	gsend := wireBuffers(r, nG*blk)
	grecv := wireBuffers(r, nG*blk)
	dsend := wireBuffers(r, nG*blk)
	drecv := wireBuffers(r, nG*blk)
	agData := wireBuffers(r, spad*e*mdim)
	agOut := wireBuffers(r, g*spad*e*mdim)
	rsData := wireBuffers(r, g*spad*e*mdim)
	rsOut := wireBuffers(r, spad*e*mdim)
	dpd := dpad.Data()

	// Phase 1 — pack + combine-gradient lanes for every chunk (the adjoint
	// of the forward combine), back to back on the inter stream.
	combIDs := make([]int, len(ranges))
	for c, rr := range ranges {
		rr := rr
		packIDs := make([]int, r)
		for i := 0; i < r; i++ {
			i := i
			packIDs[i] = p.Add(fmt.Sprintf("P%d[%d]", c, i), KindPack, intraStream(i),
				estElems(e*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), gsend[i], dpd, nG, egg, mdim, spad, tpad, i, rr, true)
					return nil
				})
		}
		combIDs[c] = p.Add(fmt.Sprintf("C[%d]", c), KindA2A, "inter",
			estElems(r*r*s.eg*rr.Len()*mdim), s.laneA2A(w, gsend, grecv, dims, rr), packIDs...)
	}

	// Gradient-sync emit point 0: slices enqueued here trail the combine
	// chain on the inter stream, in the slack while the in-group stages run
	// on the per-group streams, before the first dispatch-gradient lanes.
	if w.sync != nil {
		w.sync.BeginLayer(len(ranges) + 1)
		w.sync.EmitAt(p, "inter", 0)
	}

	// Phase 2 — per chunk: land dy at canonical offsets, share it
	// in-group, adjoint stage 2 (column-sharded), hidden gradient
	// exchange, adjoint stage 1 (row-sharded), dX ReduceScatter, and the
	// dispatch-gradient lanes back to the token side.
	b2Last := make([]int, r)
	for c, rr := range ranges {
		rr := rr
		rows := r * rr.Len()
		landIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			m := j % g
			landIDs[j] = p.Add(fmt.Sprintf("Ud%d[%d]", c, j), KindPack, intraStream(j),
				estElems(e*rr.Len()*mdim), func() error {
					s.xferMember(w.stagingPool(), grecv[j], dyFull[j].Data(), m, mdim, spad, tpad, rr, false)
					return nil
				}, combIDs[c])
		}
		unpackD := s.rowsExchange(w, p, fmt.Sprintf("d%d", c), dyFull, agData, agOut, mdim, spad, tpad, rr, landIDs)
		b1IDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			gi := j / g
			b1IDs[j] = p.Add(fmt.Sprintf("B1%d[%d]", c, j), KindExpert, computeStream(j),
				s.groupEst(gi, rows)/float64(g), func() error {
					for le := 0; le < egg; le++ {
						ex := s.experts[gi*egg+le]
						dyv := expertView(dyFull[j], le, tpad, mdim)
						for i := 0; i < r; i++ {
							ex.BackwardHidden(hc.scs[j][le], dyv, hb[j][le], i*spad+rr.Lo, i*spad+rr.Hi)
						}
					}
					return nil
				}, unpackD[j])
		}
		unpackB := s.hiddenExchange(w, p, fmt.Sprintf("b%d", c), hb, spad, tpad, rr, false, b1IDs)
		for j := 0; j < r; j++ {
			j := j
			gi, m := j/g, j%g
			b2Last[j] = p.Add(fmt.Sprintf("B2%d[%d]", c, j), KindExpert, computeStream(j),
				s.groupEst(gi, nG*rr.Len()), func() error {
					for le := 0; le < egg; le++ {
						ex := s.experts[gi*egg+le]
						dyv := expertView(dyFull[j], le, tpad, mdim)
						dxv := expertView(dxFull[j], le, tpad, mdim)
						for q := 0; q < nG; q++ {
							base := (q*g + m) * spad
							ex.BackwardIn(hc.scs[j][le], dyv, dxv, hb[j][le], base+rr.Lo, base+rr.Hi)
						}
					}
					return nil
				}, unpackB[j])
		}
		landDx := s.reduceScatter(w, p, fmt.Sprintf("d%d", c), dxFull, rsData, rsOut, mdim, spad, tpad, rr, b2Last)
		packIDs := make([]int, r)
		for j := 0; j < r; j++ {
			j := j
			m := j % g
			packIDs[j] = p.Add(fmt.Sprintf("R%d[%d]", c, j), KindPack, intraStream(j),
				estElems(e*rr.Len()*mdim), func() error {
					s.xferMember(w.stagingPool(), dsend[j], dxFull[j].Data(), m, mdim, spad, tpad, rr, true)
					return nil
				}, landDx[j])
		}
		dgrad := p.Add(fmt.Sprintf("D[%d]", c), KindA2A, "inter",
			estElems(r*r*s.eg*rr.Len()*mdim), s.laneA2A(w, dsend, drecv, dims, rr), packIDs...)
		// Emit point c+1: slices here trail the c-th dispatch-gradient
		// lanes, overlapping the landing packs and later chunks.
		if w.sync != nil {
			w.sync.EmitAt(p, "inter", c+1)
		}
		for i := 0; i < r; i++ {
			i := i
			p.Add(fmt.Sprintf("V%d[%d]", c, i), KindPack, intraStream(i),
				estElems(e*rr.Len()*mdim), func() error {
					xferGlobal(w.stagingPool(), drecv[i], dScatteredPad.Data(), nG, egg, mdim, spad, tpad, i, rr, false)
					return nil
				}, dgrad)
		}
	}

	// Phase 3 — each expert's full-block parameter-gradient reduction on
	// its owner rank (the RankGrads mapping: expert e belongs to rank
	// e/eg, which is member (e/eg) mod g of group e/Egg), from the
	// assembled full-width buffers; the owner releases its group
	// co-members' shard state. Every rank's last adjoint task gates these:
	// the owner's hb and dy are complete, and no member state is in use.
	for j := 0; j < r; j++ {
		j := j
		gi, m := j/g, j%g
		p.Add(fmt.Sprintf("W[%d]", j), KindExpert, computeStream(j),
			w.expertEst(j, tpad), func() error {
				for k := 0; k < s.eg; k++ {
					le := m*s.eg + k
					ex := s.experts[gi*egg+le]
					ex.FinishSharded(hc.scs[j][le], expertView(dyFull[j], le, tpad, mdim), hb[j][le])
					for m2 := 0; m2 < g; m2++ {
						if m2 != m {
							ex.DropSharded(hc.scs[gi*g+m2][le])
						}
					}
				}
				return nil
			}, b2Last...)
	}
}

package moe

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Expert is the compute sub-module of §3.1: a small feed-forward network
// applied to the (T, M) token block routed to it. Implementations own their
// parameters and gradient accumulators and provide a manual backward pass.
type Expert interface {
	Name() string
	// Forward evaluates the expert on x (n, M) and returns the output
	// (n, M) plus an opaque cache for Backward.
	Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache)
	// Backward consumes dY (n, M), accumulates parameter gradients, and
	// returns dX (n, M).
	Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor
	// Params exposes the trainable parameters.
	Params() []*Param
	// FwdMACs returns the forward multiply-accumulate count for n tokens,
	// which drives the performance model (backward is modelled as 2×,
	// §4.4).
	FwdMACs(n int) float64
	// ParamBytes returns the parameter footprint in bytes (fp32), the
	// quantity Gradient-AllReduce must move.
	ParamBytes() float64
}

// ExpertCache is the opaque forward cache an expert hands to its backward.
type ExpertCache interface{}

// GPTFFN is the "simple" expert of Table 4: two dense layers with a GeLU,
// y = GeLU(x·W1 + b1)·W2 + b2, as in the GPT-2/GPT-3 feed-forward block.
type GPTFFN struct {
	m, h           int
	w1, b1, w2, b2 *Param
}

type gptCache struct {
	x *tensor.Tensor // input
	h *tensor.Tensor // pre-activation x·W1+b1
	a *tensor.Tensor // GeLU(h)
}

// NewGPTFFN constructs an expert with embedding m and hidden size h.
func NewGPTFFN(m, h int, rng *xrand.RNG) (*GPTFFN, error) {
	if m <= 0 || h <= 0 {
		return nil, fmt.Errorf("moe: GPTFFN sizes must be positive, got M=%d H=%d", m, h)
	}
	return &GPTFFN{
		m: m, h: h,
		w1: newParam("ffn.w1", tensor.Xavier(rng, m, h)),
		b1: newParam("ffn.b1", tensor.New(h)),
		w2: newParam("ffn.w2", tensor.Xavier(rng, h, m)),
		b2: newParam("ffn.b2", tensor.New(m)),
	}, nil
}

// Name implements Expert.
func (f *GPTFFN) Name() string { return "gpt-ffn" }

// Params implements Expert.
func (f *GPTFFN) Params() []*Param { return []*Param{f.w1, f.b1, f.w2, f.b2} }

// FwdMACs implements Expert: two GEMMs of n·M·H MACs each.
func (f *GPTFFN) FwdMACs(n int) float64 { return 2 * float64(n) * float64(f.m) * float64(f.h) }

// ParamBytes implements Expert (fp32).
func (f *GPTFFN) ParamBytes() float64 {
	return 4 * float64(2*f.m*f.h+f.h+f.m)
}

// Forward implements Expert.
func (f *GPTFFN) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	h := tensor.AddRowVector(tensor.MatMul(x, f.w1.W), f.b1.W)
	a := tensor.GeLU(h)
	y := tensor.AddRowVector(tensor.MatMul(a, f.w2.W), f.b2.W)
	return y, &gptCache{x: x, h: h, a: a}
}

// Backward implements Expert.
func (f *GPTFFN) Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	c := cache.(*gptCache)
	// y = a·W2 + b2.
	tensor.AddInPlace(f.w2.G, tensor.MatMulT1(c.a, dy))
	addColSum(f.b2.G, dy)
	da := tensor.MatMulT2(dy, f.w2.W)
	// a = GeLU(h).
	dh := da.Clone()
	hd := c.h.Data()
	dd := dh.Data()
	for i := range dd {
		dd[i] *= tensor.GeLUGrad(hd[i])
	}
	// h = x·W1 + b1.
	tensor.AddInPlace(f.w1.G, tensor.MatMulT1(c.x, dh))
	addColSum(f.b1.G, dh)
	return tensor.MatMulT2(dh, f.w1.W)
}

// MixtralFFN is the SwiGLU expert used by Mixtral (§3.1):
// y = (SiLU(x·W1) ⊙ (x·W3))·W2, three matrices and no biases.
type MixtralFFN struct {
	m, h       int
	w1, w2, w3 *Param
}

type mixtralCache struct {
	x *tensor.Tensor
	g *tensor.Tensor // x·W1 (pre-activation)
	u *tensor.Tensor // x·W3
	a *tensor.Tensor // SiLU(g)
}

// NewMixtralFFN constructs the expert with embedding m and hidden size h.
func NewMixtralFFN(m, h int, rng *xrand.RNG) (*MixtralFFN, error) {
	if m <= 0 || h <= 0 {
		return nil, fmt.Errorf("moe: MixtralFFN sizes must be positive, got M=%d H=%d", m, h)
	}
	return &MixtralFFN{
		m: m, h: h,
		w1: newParam("ffn.w1", tensor.Xavier(rng, m, h)),
		w2: newParam("ffn.w2", tensor.Xavier(rng, h, m)),
		w3: newParam("ffn.w3", tensor.Xavier(rng, m, h)),
	}, nil
}

// Name implements Expert.
func (f *MixtralFFN) Name() string { return "mixtral-ffn" }

// Params implements Expert.
func (f *MixtralFFN) Params() []*Param { return []*Param{f.w1, f.w2, f.w3} }

// FwdMACs implements Expert: three GEMMs of n·M·H MACs each.
func (f *MixtralFFN) FwdMACs(n int) float64 { return 3 * float64(n) * float64(f.m) * float64(f.h) }

// ParamBytes implements Expert (fp32).
func (f *MixtralFFN) ParamBytes() float64 { return 4 * float64(3*f.m*f.h) }

// Forward implements Expert.
func (f *MixtralFFN) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	g := tensor.MatMul(x, f.w1.W)
	u := tensor.MatMul(x, f.w3.W)
	a := tensor.SiLU(g)
	p := tensor.Mul(a, u)
	y := tensor.MatMul(p, f.w2.W)
	return y, &mixtralCache{x: x, g: g, u: u, a: a}
}

// Backward implements Expert.
func (f *MixtralFFN) Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	c := cache.(*mixtralCache)
	p := tensor.Mul(c.a, c.u)
	tensor.AddInPlace(f.w2.G, tensor.MatMulT1(p, dy))
	dp := tensor.MatMulT2(dy, f.w2.W)
	da := tensor.Mul(dp, c.u)
	du := tensor.Mul(dp, c.a)
	dg := da.Clone()
	gd := c.g.Data()
	dd := dg.Data()
	for i := range dd {
		dd[i] *= tensor.SiLUGrad(gd[i])
	}
	tensor.AddInPlace(f.w1.G, tensor.MatMulT1(c.x, dg))
	tensor.AddInPlace(f.w3.G, tensor.MatMulT1(c.x, du))
	dx := tensor.MatMulT2(dg, f.w1.W)
	tensor.AddInPlace(dx, tensor.MatMulT2(du, f.w3.W))
	return dx
}

// addColSum accumulates the column sums of m (n, d) into acc (d).
func addColSum(acc, m *tensor.Tensor) {
	d := m.Dim(1)
	for i := 0; i < m.Dim(0); i++ {
		row := m.Row(i)
		for j := 0; j < d; j++ {
			acc.Set(acc.At(j)+row[j], j)
		}
	}
}

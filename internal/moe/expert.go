package moe

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Expert is the compute sub-module of §3.1: a small feed-forward network
// applied to the (T, M) token block routed to it. Implementations own their
// parameters and gradient accumulators and provide a manual backward pass.
//
// Concurrency contract: MOELayer invokes Forward and Backward on *different*
// expert instances concurrently (never the same instance twice at once).
// An implementation therefore must not share mutable state — scratch
// buffers, RNGs, or Param tensors (e.g. tied weights) — with another
// expert instance in the same layer unless it synchronizes access. The
// layer detects the same instance registered at several indices and falls
// back to sequential execution for that case, but it cannot see state
// shared between distinct instances.
type Expert interface {
	Name() string
	// Forward evaluates the expert on x (n, M) and returns the output
	// (n, M) plus an opaque cache for Backward.
	Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache)
	// Backward consumes dY (n, M), accumulates parameter gradients, and
	// returns dX (n, M).
	Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor
	// Params exposes the trainable parameters.
	Params() []*Param
	// FwdMACs returns the forward multiply-accumulate count for n tokens,
	// which drives the performance model (backward is modelled as 2×,
	// §4.4).
	FwdMACs(n int) float64
	// ParamBytes returns the parameter footprint in bytes (fp32), the
	// quantity Gradient-AllReduce must move.
	ParamBytes() float64
}

// ExpertCache is the opaque forward cache an expert hands to its backward.
type ExpertCache interface{}

// IntoExpert is the zero-copy fast path an Expert may additionally
// implement. ForwardInto writes the output into out (a view of the layer's
// (E, T, M) buffer) and BackwardInto writes dX into dx, letting MOELayer
// skip the per-expert copy round-trips. Implementations may draw transient
// buffers from tensor.Get and must Put them by the end of BackwardInto;
// both built-in experts do. Custom experts that only implement Expert keep
// working through the copying fallback.
type IntoExpert interface {
	Expert
	ForwardInto(x, out *tensor.Tensor) ExpertCache
	BackwardInto(cache ExpertCache, dy, dx *tensor.Tensor)
}

// GPTFFN is the "simple" expert of Table 4: two dense layers with a GeLU,
// y = GeLU(x·W1 + b1)·W2 + b2, as in the GPT-2/GPT-3 feed-forward block.
type GPTFFN struct {
	m, h           int
	w1, b1, w2, b2 *Param
}

type gptCache struct {
	x *tensor.Tensor // input
	h *tensor.Tensor // pre-activation x·W1+b1
	a *tensor.Tensor // GeLU(h)
}

// NewGPTFFN constructs an expert with embedding m and hidden size h.
func NewGPTFFN(m, h int, rng *xrand.RNG) (*GPTFFN, error) {
	if m <= 0 || h <= 0 {
		return nil, fmt.Errorf("moe: GPTFFN sizes must be positive, got M=%d H=%d", m, h)
	}
	return &GPTFFN{
		m: m, h: h,
		w1: newParam("ffn.w1", tensor.Xavier(rng, m, h)),
		b1: newParam("ffn.b1", tensor.New(h)),
		w2: newParam("ffn.w2", tensor.Xavier(rng, h, m)),
		b2: newParam("ffn.b2", tensor.New(m)),
	}, nil
}

// Name implements Expert.
func (f *GPTFFN) Name() string { return "gpt-ffn" }

// Params implements Expert.
func (f *GPTFFN) Params() []*Param { return []*Param{f.w1, f.b1, f.w2, f.b2} }

// FwdMACs implements Expert: two GEMMs of n·M·H MACs each.
func (f *GPTFFN) FwdMACs(n int) float64 { return 2 * float64(n) * float64(f.m) * float64(f.h) }

// ParamBytes implements Expert (fp32).
func (f *GPTFFN) ParamBytes() float64 {
	return 4 * float64(2*f.m*f.h+f.h+f.m)
}

// Forward implements Expert.
func (f *GPTFFN) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	y := tensor.New(x.Dim(0), f.m)
	c := f.ForwardInto(x, y)
	return y, c
}

// ForwardInto implements IntoExpert. The cached h and a are pooled buffers
// that BackwardInto releases; forward-only callers may leak them to the GC.
func (f *GPTFFN) ForwardInto(x, out *tensor.Tensor) ExpertCache {
	n := x.Dim(0)
	h := tensor.GetUninit(n, f.h)
	tensor.MatMulInto(h, x, f.w1.W)
	tensor.AddRowVectorInPlace(h, f.b1.W)
	a := tensor.GetUninit(n, f.h)
	tensor.GeLUInto(a, h)
	tensor.MatMulInto(out, a, f.w2.W)
	tensor.AddRowVectorInPlace(out, f.b2.W)
	return &gptCache{x: x, h: h, a: a}
}

// Backward implements Expert.
func (f *GPTFFN) Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Dim(0), f.m)
	f.BackwardInto(cache, dy, dx)
	return dx
}

// BackwardInto implements IntoExpert.
func (f *GPTFFN) BackwardInto(cache ExpertCache, dy, dx *tensor.Tensor) {
	c := cache.(*gptCache)
	n := dy.Dim(0)
	// y = a·W2 + b2.
	gw2 := tensor.GetUninit(f.h, f.m)
	tensor.MatMulT1Into(gw2, c.a, dy)
	tensor.AddInPlace(f.w2.G, gw2)
	tensor.Put(gw2)
	addColSum(f.b2.G, dy)
	da := tensor.GetUninit(n, f.h)
	tensor.MatMulT2Into(da, dy, f.w2.W)
	// a = GeLU(h): fold the activation gradient into da in place.
	hd := c.h.Data()
	dd := da.Data()
	for i := range dd {
		dd[i] *= tensor.GeLUGrad(hd[i])
	}
	// h = x·W1 + b1.
	gw1 := tensor.GetUninit(f.m, f.h)
	tensor.MatMulT1Into(gw1, c.x, da)
	tensor.AddInPlace(f.w1.G, gw1)
	tensor.Put(gw1)
	addColSum(f.b1.G, da)
	tensor.MatMulT2Into(dx, da, f.w1.W)
	tensor.Put(da)
	tensor.Put(c.a)
	tensor.Put(c.h)
}

// MixtralFFN is the SwiGLU expert used by Mixtral (§3.1):
// y = (SiLU(x·W1) ⊙ (x·W3))·W2, three matrices and no biases.
type MixtralFFN struct {
	m, h       int
	w1, w2, w3 *Param
}

type mixtralCache struct {
	x *tensor.Tensor
	g *tensor.Tensor // x·W1 (pre-activation)
	u *tensor.Tensor // x·W3
	a *tensor.Tensor // SiLU(g)
}

// NewMixtralFFN constructs the expert with embedding m and hidden size h.
func NewMixtralFFN(m, h int, rng *xrand.RNG) (*MixtralFFN, error) {
	if m <= 0 || h <= 0 {
		return nil, fmt.Errorf("moe: MixtralFFN sizes must be positive, got M=%d H=%d", m, h)
	}
	return &MixtralFFN{
		m: m, h: h,
		w1: newParam("ffn.w1", tensor.Xavier(rng, m, h)),
		w2: newParam("ffn.w2", tensor.Xavier(rng, h, m)),
		w3: newParam("ffn.w3", tensor.Xavier(rng, m, h)),
	}, nil
}

// Name implements Expert.
func (f *MixtralFFN) Name() string { return "mixtral-ffn" }

// Params implements Expert.
func (f *MixtralFFN) Params() []*Param { return []*Param{f.w1, f.w2, f.w3} }

// FwdMACs implements Expert: three GEMMs of n·M·H MACs each.
func (f *MixtralFFN) FwdMACs(n int) float64 { return 3 * float64(n) * float64(f.m) * float64(f.h) }

// ParamBytes implements Expert (fp32).
func (f *MixtralFFN) ParamBytes() float64 { return 4 * float64(3*f.m*f.h) }

// Forward implements Expert.
func (f *MixtralFFN) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	y := tensor.New(x.Dim(0), f.m)
	c := f.ForwardInto(x, y)
	return y, c
}

// ForwardInto implements IntoExpert.
func (f *MixtralFFN) ForwardInto(x, out *tensor.Tensor) ExpertCache {
	n := x.Dim(0)
	g := tensor.GetUninit(n, f.h)
	tensor.MatMulInto(g, x, f.w1.W)
	u := tensor.GetUninit(n, f.h)
	tensor.MatMulInto(u, x, f.w3.W)
	a := tensor.GetUninit(n, f.h)
	tensor.SiLUInto(a, g)
	p := tensor.GetUninit(n, f.h)
	tensor.MulInto(p, a, u)
	tensor.MatMulInto(out, p, f.w2.W)
	tensor.Put(p)
	return &mixtralCache{x: x, g: g, u: u, a: a}
}

// Backward implements Expert.
func (f *MixtralFFN) Backward(cache ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Dim(0), f.m)
	f.BackwardInto(cache, dy, dx)
	return dx
}

// BackwardInto implements IntoExpert.
func (f *MixtralFFN) BackwardInto(cache ExpertCache, dy, dx *tensor.Tensor) {
	c := cache.(*mixtralCache)
	n := dy.Dim(0)
	p := tensor.GetUninit(n, f.h)
	tensor.MulInto(p, c.a, c.u)
	gw := tensor.GetUninit(f.h, f.m)
	tensor.MatMulT1Into(gw, p, dy)
	tensor.AddInPlace(f.w2.G, gw)
	tensor.Put(gw)
	dp := p // reuse: p is dead once the W2 gradient is accumulated
	tensor.MatMulT2Into(dp, dy, f.w2.W)
	da := tensor.GetUninit(n, f.h)
	tensor.MulInto(da, dp, c.u)
	du := tensor.GetUninit(n, f.h)
	tensor.MulInto(du, dp, c.a)
	tensor.Put(dp)
	// a = SiLU(g): fold the activation gradient into da in place.
	gd := c.g.Data()
	dd := da.Data()
	for i := range dd {
		dd[i] *= tensor.SiLUGrad(gd[i])
	}
	gw13 := tensor.GetUninit(f.m, f.h)
	tensor.MatMulT1Into(gw13, c.x, da)
	tensor.AddInPlace(f.w1.G, gw13)
	tensor.MatMulT1Into(gw13, c.x, du)
	tensor.AddInPlace(f.w3.G, gw13)
	tensor.Put(gw13)
	tensor.MatMulT2Into(dx, da, f.w1.W)
	dxu := tensor.GetUninit(n, f.m)
	tensor.MatMulT2Into(dxu, du, f.w3.W)
	tensor.AddInPlace(dx, dxu)
	tensor.Put(dxu)
	tensor.Put(da)
	tensor.Put(du)
	tensor.Put(c.a)
	tensor.Put(c.g)
	tensor.Put(c.u)
}

// addColSum accumulates the column sums of m (n, d) into acc (d). It works
// on the raw storage: the variadic At/Set accessors allocate their index
// slice, which on the per-token bias-gradient path dominated the backward
// pass's allocation profile.
func addColSum(acc, m *tensor.Tensor) {
	ad := acc.Data()
	for i := 0; i < m.Dim(0); i++ {
		for j, v := range m.Row(i) {
			ad[j] += v
		}
	}
}

package moe

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// softmoeLayer builds a SoftMoE (dense routing) layer for the DenseSlots
// strategy tests. slotsPer is chosen so E·slotsPer does not divide by
// R=4, exercising the slot padding path.
func softmoeLayer(t *testing.T, mixtral bool, slotsPer int) *MOELayer {
	t.Helper()
	const m, e, h = 32, 8, 48
	rng := xrand.New(19)
	g, err := NewSoftMoEGate(GateConfig{Experts: e, TopK: 1, Factor: 1}, m, slotsPer, rng)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		var ex Expert
		if mixtral {
			ex, err = NewMixtralFFN(m, h, rng)
		} else {
			ex, err = NewGPTFFN(m, h, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		exps[i] = ex
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: g, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	return layer
}

// strategyLayer builds the reference layer for one strategy: hard GShard
// routing for EP/ESP, SoftMoE for DenseSlots. The token count (96) and
// capacity factor are chosen so the per-rank slot shard pads at R=4.
func strategyLayer(t *testing.T, strat Strategy, mixtral bool) *MOELayer {
	t.Helper()
	if strat == StrategyDenseSlots {
		return softmoeLayer(t, mixtral, 3) // T=3 pads at R=4
	}
	return worldLayer(t, "gshard", TutelOrder{}, mixtral, false)
}

// TestWorldStrategiesBitIdentical is the strategy-interface acceptance
// test: every parallel strategy must produce bit-identical outputs, input
// gradients and parameter gradients to the sequential single-process
// MOELayer, across pipeline degrees r ∈ {1, 2, 4} and world sizes
// R ∈ {1, 4}, including the slot-padding path (capacities that do not
// divide by R).
func TestWorldStrategiesBitIdentical(t *testing.T) {
	x := tensor.RandN(xrand.New(61), 1, 4, 24, 32) // (B, L, M), N = 96
	dy := tensor.RandN(xrand.New(62), 1, 4, 24, 32)
	for _, strat := range Strategies() {
		layer := strategyLayer(t, strat, false)
		want := runSequentialLayer(t, layer, x, dy)
		for _, ranks := range []int{1, 4} {
			for _, r := range []int{1, 2, 4} {
				label := fmt.Sprintf("strategy=%s R=%d r=%d", strat, ranks, r)
				cfg := WorldConfig{Ranks: ranks, ChunksFwd: r, Strategy: strat}
				if strat == StrategyHybrid {
					// The genuine mixed path at R=4 (two groups of two);
					// R=1 only admits the degenerate g=1.
					cfg.GroupSize = max(ranks/2, 1)
				}
				got := runWorld(t, layer, cfg, x, dy, false)
				compareSnapshots(t, label, want, got)
			}
		}
	}
}

// TestWorldStrategiesBitIdenticalVariants covers the remaining strategy
// axes: Mixtral (two-band backward exchange under ESP), split
// forward/backward degrees, the sequential executor, hierarchical
// AlltoAll under DenseSlots, and a hidden width that does not divide by
// the rank count (ESP's ceiling column allocation).
func TestWorldStrategiesBitIdenticalVariants(t *testing.T) {
	x := tensor.RandN(xrand.New(63), 1, 96, 32)
	dy := tensor.RandN(xrand.New(64), 1, 96, 32)
	cases := []struct {
		name    string
		strat   Strategy
		mixtral bool
		cfg     WorldConfig
		seqExec bool
	}{
		{"esp-mixtral", StrategyESP, true, WorldConfig{Ranks: 4, ChunksFwd: 2}, false},
		{"esp-split-degrees", StrategyESP, false, WorldConfig{Ranks: 2, ChunksFwd: 4, ChunksBwd: 2}, false},
		{"esp-sequential-exec", StrategyESP, false, WorldConfig{Ranks: 4, ChunksFwd: 3}, true},
		{"esp-nodes", StrategyESP, false, WorldConfig{Ranks: 4, ChunksFwd: 2, GPUsPerNode: 2}, false},
		{"dense-mixtral", StrategyDenseSlots, true, WorldConfig{Ranks: 4, ChunksFwd: 2}, false},
		{"dense-sequential-exec", StrategyDenseSlots, false, WorldConfig{Ranks: 4, ChunksFwd: 4}, true},
	}
	for _, tc := range cases {
		tc.cfg.Strategy = tc.strat
		layer := strategyLayer(t, tc.strat, tc.mixtral)
		want := runSequentialLayer(t, layer, x, dy)
		got := runWorld(t, layer, tc.cfg, x, dy, tc.seqExec)
		compareSnapshots(t, tc.name, want, got)
	}
}

// TestWorldESPNarrowHidden: more ranks than hidden columns leaves trailing
// shard members with empty column ranges; the pass must still be exact.
func TestWorldESPNarrowHidden(t *testing.T) {
	const m, e, h = 16, 4, 2 // H=2 across R=4 members
	rng := xrand.New(23)
	g, err := NewGShardGate(GateConfig{Experts: e, TopK: 2, Factor: 1.25}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		if exps[i], err = NewGPTFFN(m, h, rng); err != nil {
			t.Fatal(err)
		}
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: g, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(24), 1, 32, m)
	dy := tensor.RandN(xrand.New(25), 1, 32, m)
	want := runSequentialLayer(t, layer, x, dy)
	got := runWorld(t, layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyESP}, x, dy, false)
	compareSnapshots(t, "esp-narrow-hidden", want, got)
}

// TestWorldDenseFallbackExperts: custom (non-chunked) experts run dense
// plans through the whole-block fallback and stay bit-identical — the
// DenseSlots counterpart of TestWorldFallbackExperts.
func TestWorldDenseFallbackExperts(t *testing.T) {
	layer := softmoeLayer(t, false, 3)
	for i, ex := range layer.cfg.Experts {
		layer.cfg.Experts[i] = onlyExpert{ex}
	}
	x := tensor.RandN(xrand.New(65), 1, 96, 32)
	dy := tensor.RandN(xrand.New(66), 1, 96, 32)
	want := runSequentialLayer(t, layer, x, dy)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 4, Strategy: StrategyDenseSlots})
	if err != nil {
		t.Fatal(err)
	}
	if w.Chunked() {
		t.Fatal("wrapped experts must route through the fallback path")
	}
	got := runWorld(t, layer, WorldConfig{Ranks: 4, ChunksFwd: 4, Strategy: StrategyDenseSlots}, x, dy, false)
	compareSnapshots(t, "dense-fallback", want, got)
}

// TestWorldStrategyValidation: strategy-aware validation names the
// strategy and the unsupported combination, at NewWorld and at Forward.
func TestWorldStrategyValidation(t *testing.T) {
	hard := worldLayer(t, "gshard", TutelOrder{}, false, false)
	dense := softmoeLayer(t, false, 2)
	wrapped := worldLayer(t, "gshard", TutelOrder{}, false, true)

	// Unknown strategy.
	if _, err := NewWorld(hard, WorldConfig{Ranks: 2, Strategy: "fancy"}); err == nil || !strings.Contains(err.Error(), "unknown parallel strategy") {
		t.Fatalf("unknown strategy: %v", err)
	}

	// ESP requires the sharded contract.
	_, err := NewWorld(wrapped, WorldConfig{Ranks: 2, Strategy: StrategyESP})
	if err == nil || !strings.Contains(err.Error(), string(StrategyESP)) || !strings.Contains(err.Error(), "ShardedExpert") {
		t.Fatalf("esp with plain experts: %v", err)
	}

	// EP rejects dense plans, naming the strategy that accepts them.
	w, err := NewWorld(dense, WorldConfig{Ranks: 2, Strategy: StrategyEP})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(5), 1, 16, 32)
	if _, _, err := w.Forward(x, false); err == nil ||
		!strings.Contains(err.Error(), string(StrategyEP)) || !strings.Contains(err.Error(), string(StrategyDenseSlots)) {
		t.Fatalf("ep on dense plan: %v", err)
	}

	// ESP rejects dense plans the same way.
	w, err = NewWorld(dense, WorldConfig{Ranks: 2, Strategy: StrategyESP})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Forward(x, false); err == nil || !strings.Contains(err.Error(), string(StrategyDenseSlots)) {
		t.Fatalf("esp on dense plan: %v", err)
	}

	// DenseSlots rejects hard plans, naming the hard-routing strategies.
	w, err = NewWorld(hard, WorldConfig{Ranks: 2, Strategy: StrategyDenseSlots})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Forward(tensor.RandN(xrand.New(6), 1, 16, 32), false); err == nil ||
		!strings.Contains(err.Error(), string(StrategyDenseSlots)) || !strings.Contains(err.Error(), string(StrategyEP)) {
		t.Fatalf("dense-slots on hard plan: %v", err)
	}
}

// TestWorldESPTraceShape: the ESP schedule's AllGather and ReduceScatter
// stages appear as measured tasks on the shared intra stream, and the
// inter stream carries no AlltoAll.
func TestWorldESPTraceShape(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyESP})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(51), 1, 64, 32)
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	counts := func() map[string]int {
		kinds := map[string]int{}
		for _, iv := range w.LastTrace().Intervals {
			kinds[iv.Task.Kind]++
			if iv.Task.Kind == KindAG || iv.Task.Kind == KindRS {
				if iv.Task.Stream != collStream {
					t.Fatalf("%s task on stream %q, want %q", iv.Task.Kind, iv.Task.Stream, collStream)
				}
			}
			if iv.Task.Kind == KindA2A {
				t.Fatalf("ESP plan contains an AlltoAll task %q", iv.Task.Label)
			}
		}
		return kinds
	}
	fwd := counts()
	// Two AllGather stages (input + hidden) and one ReduceScatter per chunk.
	if fwd[KindAG] != 4 || fwd[KindRS] != 2 {
		t.Fatalf("forward kinds = %v, want 4 AllGather + 2 ReduceScatter", fwd)
	}
	if _, err := w.Backward(cache, tensor.RandN(xrand.New(52), 1, 64, 32)); err != nil {
		t.Fatal(err)
	}
	bwd := counts()
	if bwd[KindAG] != 4 || bwd[KindRS] != 2 {
		t.Fatalf("backward kinds = %v, want 4 AllGather + 2 ReduceScatter", bwd)
	}
	if w.Stats().IntraVolume+w.Stats().InterVolume <= 0 {
		t.Fatal("no collective traffic recorded")
	}
	if w.Strategy() != StrategyESP {
		t.Fatalf("Strategy() = %q", w.Strategy())
	}
}

// TestWorldStepStrategies: the §5 gradient-sync emit points survive
// strategy plans. A stack of ESP worlds — and a mixed EP/ESP stack —
// steps to the same bit-identical parameters as the sequential reference,
// with the adaptive strategy's AllReduce slices genuinely embedded in the
// backward plans' inter stream (which under ESP carries nothing else).
func TestWorldStepStrategies(t *testing.T) {
	const layers, lr = 3, 0.05
	x := tensor.RandN(xrand.New(71), 1, 96, 32)
	dy := tensor.RandN(xrand.New(72), 1, 96, 32)

	refLayers := make([]*MOELayer, layers)
	for i := range refLayers {
		refLayers[i] = worldLayer(t, "gshard", TutelOrder{}, false, false)
	}
	want := refStep(t, refLayers, x, dy, lr)

	stacks := map[string][]Strategy{
		"esp":   {StrategyESP, StrategyESP, StrategyESP},
		"mixed": {StrategyEP, StrategyESP, StrategyEP},
	}
	for name, strats := range stacks {
		ws := make([]*World, layers)
		for i := 0; i < layers; i++ {
			l := worldLayer(t, "gshard", TutelOrder{}, false, false)
			w, err := NewWorld(l, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: strats[i]})
			if err != nil {
				t.Fatal(err)
			}
			ws[i] = w
		}
		res, err := StepWorlds(ws, x, dy, StepConfig{LR: lr})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := 0; r < 4; r++ {
			for k := range want {
				if res.RankParams[r][k] != want[k] {
					t.Fatalf("%s: rank %d param %d = %v, reference %v", name, r, k, res.RankParams[r][k], want[k])
				}
			}
		}
		if res.Report.HiddenBytes <= 0 {
			t.Fatalf("%s: adaptive step hid nothing: %+v", name, res.Report)
		}
		arInPlans := 0
		for _, tr := range res.Traces {
			for _, iv := range tr.Intervals {
				if iv.Task.Kind == "AllReduce" && iv.Task.Stream == "inter" {
					arInPlans++
				}
			}
		}
		if arInPlans == 0 {
			t.Fatalf("%s: no AllReduce slices embedded in backward plans", name)
		}
	}
}

// TestWorldResourceBindings pins the resource-governance contract: the
// measured trace of a scoped world reports exactly the planned worker
// split (pinned compute streams with the compute share, everything else
// the comm allotment); a global-pool world reports nothing; and a world
// stays bit-identical to the sequential layer with governance off (the
// scoped default is covered by every other bit-identity test).
func TestWorldResourceBindings(t *testing.T) {
	x := tensor.RandN(xrand.New(65), 1, 96, 32)
	dy := tensor.RandN(xrand.New(66), 1, 96, 32)
	for _, strat := range []Strategy{StrategyEP, StrategyESP} {
		layer := strategyLayer(t, strat, false)
		want := runSequentialLayer(t, layer, x, dy)

		w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.SetScopedPools(false)
		layer.ZeroGrad()
		y, cache, err := w.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := w.Backward(cache, dy)
		if err != nil {
			t.Fatal(err)
		}
		compareSnapshots(t, fmt.Sprintf("%s global pools", strat), want,
			worldSnapshot{y: y, dx: dx, grads: snapGrads(layer)})
		if res := w.LastTrace().Resources; len(res) != 0 {
			t.Fatalf("%s: global-pool trace reports bindings: %v", strat, res)
		}

		w.SetScopedPools(true)
		layer.ZeroGrad()
		if _, cache, err = w.Forward(x, false); err != nil {
			t.Fatal(err)
		}
		if _, err = w.Backward(cache, dy); err != nil {
			t.Fatal(err)
		}
		cw, mw := w.ResourcePlan()
		if cw < 1 || mw < 1 {
			t.Fatalf("%s: degenerate resource plan (%d, %d)", strat, cw, mw)
		}
		res := w.LastTrace().Resources
		if len(res) == 0 {
			t.Fatalf("%s: scoped trace carries no resource report", strat)
		}
		for s, r := range res {
			if strings.HasPrefix(s, "compute:") {
				if r.Workers != cw || !r.Pinned {
					t.Fatalf("%s: compute stream %s bound %+v, want workers=%d pinned", strat, s, r, cw)
				}
			} else if r.Workers != mw || r.Pinned {
				t.Fatalf("%s: comm stream %s bound %+v, want workers=%d unpinned", strat, s, r, mw)
			}
		}
		for _, s := range w.LastPlan().Streams() {
			if _, ok := res[s]; !ok {
				t.Fatalf("%s: live stream %s missing from the resource report", strat, s)
			}
		}
	}
}

// BenchmarkWorldStrategies measures one fwd+bwd pass per strategy at R=4,
// r=2 — the strategy sweep the CI smoke step executes with -benchtime=1x.
// Each strategy runs twice: with resource governance (per-stream scoped
// pools + pinned compute streams, the default) and against the
// global-pool baseline every stream used to share; on a multi-core runner
// the scoped variant must not lose to the baseline.
func BenchmarkWorldStrategies(b *testing.B) {
	const m, e, h, tokens = 64, 8, 128, 512
	for _, strat := range Strategies() {
		for _, pools := range []struct {
			name   string
			scoped bool
		}{{"scoped", true}, {"global", false}} {
			b.Run(string(strat)+"/pools="+pools.name, func(b *testing.B) {
				rng := xrand.New(91)
				var g Gate
				var err error
				if strat == StrategyDenseSlots {
					g, err = NewSoftMoEGate(GateConfig{Experts: e, TopK: 1, Factor: 1}, m, tokens/e, rng)
				} else {
					g, err = NewGShardGate(GateConfig{Experts: e, TopK: 2, Factor: 1.2}, m, rng)
				}
				if err != nil {
					b.Fatal(err)
				}
				exps := make([]Expert, e)
				for i := range exps {
					if exps[i], err = NewGPTFFN(m, h, rng); err != nil {
						b.Fatal(err)
					}
				}
				layer, err := NewMOELayer(LayerConfig{M: m, Gate: g, Order: TutelOrder{}, Experts: exps})
				if err != nil {
					b.Fatal(err)
				}
				cfg := WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: strat}
				if strat == StrategyHybrid {
					cfg.GroupSize = 2
				}
				w, err := NewWorld(layer, cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				w.SetScopedPools(pools.scoped)
				x := tensor.RandN(xrand.New(92), 1, tokens, m)
				dy := tensor.RandN(xrand.New(93), 1, tokens, m)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					layer.ZeroGrad()
					_, cache, err := w.Forward(x, false)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := w.Backward(cache, dy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

package moe

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one trainable weight with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// RouteCache carries what a gate needs to run its backward pass.
type RouteCache struct {
	X     *tensor.Tensor // (N, M) gate input
	Plan  *DispatchPlan
	extra any // gate-specific intermediates
}

// PlanGrad is the gradient of the loss with respect to a plan's routing
// weights, produced by the layer's backward pass and consumed by
// Gate.Backward.
type PlanGrad struct {
	// SlotWeight[e][s] gradient for hard plans.
	SlotWeight [][]float64
	// Dense gradients for SoftMoE plans.
	DispatchW *tensor.Tensor // (E*T, N)
	CombineW  *tensor.Tensor // (N, E*T)
}

// Gate is the routing sub-module of §3.1. Implementations must be
// deterministic given their RNG state so experiments reproduce.
type Gate interface {
	// Name identifies the gating function ("gshard", "xmoe", ...).
	Name() string
	// Route assigns the N tokens of x (N, M) to experts. train enables
	// training-only behaviour (GShard's noisy gating).
	Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error)
	// Backward accumulates parameter gradients from the routing-weight
	// gradient and returns the gradient contribution to x. It may be
	// called at most once per RouteCache.
	Backward(cache *RouteCache, grad *PlanGrad) *tensor.Tensor
	// Params exposes the gate's trainable parameters.
	Params() []*Param
}

// GateConfig carries the routing hyperparameters shared by all gates.
type GateConfig struct {
	Experts int     // E
	TopK    int     // k experts per token (token-choice gates)
	Factor  float64 // capacity factor f; <= 0 means f=∗ (no dropping)
}

// Validate reports configuration errors.
func (c GateConfig) Validate() error {
	if c.Experts <= 0 {
		return fmt.Errorf("moe: gate needs at least one expert, got %d", c.Experts)
	}
	if c.TopK <= 0 || c.TopK > c.Experts {
		return fmt.Errorf("moe: top-k %d invalid for %d experts", c.TopK, c.Experts)
	}
	return nil
}

// maskedSoftmaxBackward computes, for one token, the gradient of the
// masked softmax (softmax restricted to the selected index set) given the
// gradient of the softmax outputs. sel holds the selected logit indices,
// w the softmax outputs at those indices, dw their gradients; the result is
// the gradient at each selected logit.
func maskedSoftmaxBackward(w, dw []float64) []float64 {
	// dlogit_i = w_i * (dw_i - sum_j dw_j w_j)
	dot := 0.0
	for j := range w {
		dot += dw[j] * w[j]
	}
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i] * (dw[i] - dot)
	}
	return out
}

// zeroGrads clears the gradient accumulators of params.
func zeroGrads(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}

// checkGateInput validates the gate input shape.
func checkGateInput(x *tensor.Tensor, m int) error {
	if x.Rank() != 2 {
		return fmt.Errorf("moe: gate input must be (tokens, M), got %v", x.Shape())
	}
	if x.Dim(1) != m {
		return fmt.Errorf("moe: gate input embedding %d, want %d", x.Dim(1), m)
	}
	return nil
}

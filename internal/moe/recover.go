package moe

// Elastic recovery: the other half of PR 6's fault tolerance. Degraded
// mode keeps a pass alive when a rank dies, but the world then degrades
// monotonically — lost expert state is gone and the dead experts stay
// frozen until a manual ResetHealth. Recover instead rebuilds: the
// training state rolls back to a checkpoint, the dead rank's experts are
// re-assigned across the surviving ranks (shrink) or onto a replacement
// rank (rejoin), the restored weights of every re-placed expert travel a
// guarded Broadcast to their new owner (the FastMoE "shadowing" /
// FlexMoE re-placement move, driven by failure instead of routing skew),
// and the active strategy re-emits its collective chains for the new
// placement on the next pass — plan construction derives entirely from
// the world config, so no wire layout is patched in place.
//
// Strategy support: EP and DenseSlots recover as themselves. ESP and
// Hybrid conservatively fall back to EP — their shard-group chains are
// rebuilt most simply as pure expert parallelism, and the fallback is
// bit-identical like every other strategy.
//
// Recovery is rollback-based: parameters, step counter, collective-op
// counter and gate RNG state all return to the snapshot point, so a
// recovered run is bit-identical to a fresh run restarted from the same
// checkpoint on the same surviving topology (the headline contract,
// asserted by TestWorldRecoverBitIdentical).

import (
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/fault"
)

// RecoveryMode selects how the world is rebuilt around the dead rank.
type RecoveryMode string

const (
	// RecoverShrink rebuilds on the surviving ranks: the new rank count is
	// the largest R' < R dividing the expert count, and the contiguous
	// owner mapping (expert e → rank e·R'/E) re-distributes every expert
	// across the survivors.
	RecoverShrink RecoveryMode = "shrink"
	// RecoverRejoin keeps the rank count: the dead rank is replaced by a
	// fresh worker that receives its expert shard from the checkpoint —
	// the "failed worker replaced" transition, now with restored state
	// instead of frozen parameters.
	RecoverRejoin RecoveryMode = "rejoin"
)

// RecoveryPolicy configures Recover; the zero value shrinks.
type RecoveryPolicy struct {
	Mode RecoveryMode // default RecoverShrink
}

// recoverStream labels the recovery broadcasts for fault injection; it is
// not a per-rank stream, so injected guard failures attribute to no rank.
const recoverStream = "recover"

// KindBcast is the task kind of the recovery weight re-placement
// broadcasts (comm.BroadcastGuarded).
const KindBcast = "Broadcast"

// RecoveryReport describes one world's completed recovery.
type RecoveryReport struct {
	Mode     RecoveryMode
	DownRank int // the rank whose loss triggered recovery

	OldRanks, NewRanks       int
	OldStrategy, NewStrategy Strategy

	// RestoredStep is the step counter the world rolled back to.
	RestoredStep int

	// MovedExperts lists every expert whose owner rank changed — the
	// experts whose restored weights travelled a recovery Broadcast.
	MovedExperts []int

	// Traffic is the weight re-placement broadcast volume; Retries counts
	// transient guard failures absorbed while moving it.
	Traffic comm.Stats
	Retries int

	// RecoveryMS is the wall time of the whole rebuild — the MTTR of this
	// failure.
	RecoveryMS float64
}

// Recover rebuilds this world around its permanently failed rank from a
// snapshot. Most callers drive a whole stack through RecoverWorlds
// instead; a single-layer world may recover directly.
func (w *World) Recover(ws *ckpt.WorldState, pol RecoveryPolicy) (*RecoveryReport, error) {
	if w.down < 0 {
		return nil, fmt.Errorf("moe: recover: no rank is down (recovery follows a permanent failure)")
	}
	return w.recoverTo(ws, pol, w.down)
}

// RecoverWorlds rebuilds a stack around its permanently failed rank: the
// down rank is located on whichever world saw the failure, and every
// world — degraded or not — is rebuilt to the same surviving topology,
// since a stack steps only at a uniform rank count.
func RecoverWorlds(worlds []*World, s *ckpt.Snapshot, pol RecoveryPolicy) ([]*RecoveryReport, error) {
	if s == nil {
		return nil, fmt.Errorf("moe: recover needs a snapshot")
	}
	if len(worlds) == 0 {
		return nil, fmt.Errorf("moe: recover needs at least one world")
	}
	if len(worlds) != len(s.Worlds) {
		return nil, fmt.Errorf("moe: recover: stack has %d worlds, snapshot %d", len(worlds), len(s.Worlds))
	}
	down := -1
	for _, w := range worlds {
		if w.down >= 0 {
			down = w.down
		}
	}
	if down < 0 {
		return nil, fmt.Errorf("moe: recover: no rank is down anywhere in the stack")
	}
	reports := make([]*RecoveryReport, len(worlds))
	for i, w := range worlds {
		rep, err := w.recoverTo(&s.Worlds[i], pol, down)
		if err != nil {
			return nil, fmt.Errorf("moe: recover layer %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}

// recoverTo is the per-world rebuild. downRank is the failed rank the
// stack is recovering around (this world itself may have been healthy).
func (w *World) recoverTo(ws *ckpt.WorldState, pol RecoveryPolicy, downRank int) (*RecoveryReport, error) {
	if w.closed {
		return nil, fmt.Errorf("moe: recover: %w", ErrWorldClosed)
	}
	t0 := time.Now()
	mode := pol.Mode
	if mode == "" {
		mode = RecoverShrink
	}
	e := len(w.layer.cfg.Experts)
	oldR, oldEgrp := w.cfg.Ranks, w.egrp
	newR := oldR
	switch mode {
	case RecoverRejoin:
	case RecoverShrink:
		newR = 0
		for r := oldR - 1; r >= 1; r-- {
			if e%r == 0 {
				newR = r
				break
			}
		}
		if newR == 0 {
			return nil, fmt.Errorf("moe: recover: no rank count below %d divides %d experts", oldR, e)
		}
	default:
		return nil, fmt.Errorf("moe: recover: unknown mode %q (valid: %s, %s)", mode, RecoverShrink, RecoverRejoin)
	}

	// Conservative strategy fallback: shard-group strategies rebuild as EP.
	newStrat, newGroup := w.cfg.Strategy, w.cfg.GroupSize
	if newStrat == StrategyESP || newStrat == StrategyHybrid {
		newStrat, newGroup = StrategyEP, 0
	}
	// The node shape must divide the new rank count; keep the largest
	// valid width not exceeding the old one.
	gpn := 1
	for d := 1; d <= w.cfg.GPUsPerNode && d <= newR; d++ {
		if newR%d == 0 {
			gpn = d
		}
	}
	newCfg := w.cfg
	newCfg.Ranks, newCfg.Strategy, newCfg.GroupSize, newCfg.GPUsPerNode = newR, newStrat, newGroup, gpn
	strat, err := strategyFor(newStrat)
	if err != nil {
		return nil, err
	}
	if err := strat.Validate(w.layer, newCfg); err != nil {
		return nil, fmt.Errorf("moe: recover: %w", err)
	}

	rep := &RecoveryReport{
		Mode:         mode,
		DownRank:     downRank,
		OldRanks:     oldR,
		NewRanks:     newR,
		OldStrategy:  w.cfg.Strategy,
		NewStrategy:  newStrat,
		RestoredStep: ws.Steps,
	}

	// Roll the full training state back to the snapshot: parameters, step
	// counter, collective-op counter, gate RNG. Aborted-plan residue
	// (partial gradients, partial parameter writes) dies here.
	if err := w.Restore(ws); err != nil {
		return nil, err
	}

	// Re-place weights: every expert whose owner changed under the new
	// contiguous mapping — including the dead rank's whole shard in rejoin
	// mode — receives its restored parameters over a guarded Broadcast
	// from rank 0 (the checkpoint reader), so the recovery traffic is
	// measured and chaos injection reaches it like any other collective.
	newEgrp := e / newR
	for ex := 0; ex < e; ex++ {
		if ex/oldEgrp != ex/newEgrp || ex/oldEgrp == downRank {
			rep.MovedExperts = append(rep.MovedExperts, ex)
		}
	}
	attempts := w.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for _, ex := range rep.MovedExperts {
		params := w.layer.cfg.Experts[ex].Params()
		n := 0
		for _, p := range params {
			n += len(p.W.Data())
		}
		bufs := wireBuffers(newR, n)
		off := 0
		for _, p := range params {
			copy(bufs[0][off:], p.W.Data())
			off += len(p.W.Data())
		}
		guard := w.collGuard(recoverStream, KindBcast)
		var st comm.Stats
		for a := 0; ; a++ {
			s, err := comm.BroadcastGuarded(guard, bufs, 0, gpn)
			if err == nil {
				st = s
				break
			}
			if !fault.IsTransient(err) || a+1 >= attempts {
				return nil, fmt.Errorf("moe: recover: broadcast expert %d weights: %w", ex, err)
			}
			rep.Retries++
		}
		rep.Traffic.Merge(st)
		// The new owner's received copy is authoritative.
		owner := ex / newEgrp
		off = 0
		for _, p := range params {
			copy(p.W.Data(), bufs[owner][off:off+len(p.W.Data())])
			off += len(p.W.Data())
		}
	}
	w.addStats(rep.Traffic)

	// Commit the new topology: swap the scoped pools to the new stream
	// count, install the fresh strategy, strip the injector's down trigger
	// (the dead rank no longer exists in the rebuilt world), and clear the
	// health state exactly as a manual ResetHealth would.
	for _, p := range w.computePools {
		p.Close()
	}
	w.commPool.Close()
	w.cfg = newCfg
	w.egrp = newEgrp
	w.strat = strat
	w.planResources()
	w.faults = w.faults.WithoutDown()
	w.ResetHealth()

	rep.RecoveryMS = time.Since(t0).Seconds() * 1e3
	w.recov = append(w.recov, rep)
	return rep, nil
}

// LastRecovery returns the most recent recovery report on this world, or
// nil if it never recovered (pending reports are drained into step
// telemetry by the next completed step).
func (w *World) LastRecovery() *RecoveryReport {
	if len(w.recov) == 0 {
		return nil
	}
	return w.recov[len(w.recov)-1]
}

// drainRecoveries returns and clears the recovery reports accumulated
// since the previous completed step — the step-telemetry feed.
func (w *World) drainRecoveries() []*RecoveryReport {
	r := w.recov
	w.recov = nil
	return r
}

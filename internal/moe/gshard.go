package moe

import (
	"math"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// GShardGate is the noisy top-k gate of GShard (§2.1):
//
//	H(x)_i = (x·W_g)_i + N(0,1)·Softplus((x·W_noise)_i)   (training only)
//	G(x)   = Softmax(KeepTopK(H(x), k))
//
// Combine weights are the masked-softmax values over the selected experts.
// The auxiliary load-balancing loss is the standard GShard/Switch form
// E·Σ_e f_e·p_e, with f_e the fraction of tokens whose first choice is e
// and p_e the mean (full) softmax probability of e.
type GShardGate struct {
	cfg    GateConfig
	m      int
	wg     *Param
	wnoise *Param
	rng    *xrand.RNG

	// fixedNoise, when non-nil, replaces sampling; tests use it to make
	// the noisy path differentiable-checkable.
	fixedNoise *tensor.Tensor
}

type gshardCache struct {
	logits *tensor.Tensor // H(x), (N, E)
	noise  *tensor.Tensor // sampled N(0,1), nil in eval mode
	spPre  *tensor.Tensor // x·W_noise, nil in eval mode
	selIdx [][]int        // selected expert ids per token (descending score)
	selW   [][]float64    // masked-softmax weights per token
	probs  *tensor.Tensor // full softmax over logits, for the aux loss
	firstC []int          // first-choice counts per expert
}

// NewGShardGate constructs the gate for embedding size m.
func NewGShardGate(cfg GateConfig, m int, rng *xrand.RNG) (*GShardGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GShardGate{
		cfg:    cfg,
		m:      m,
		wg:     newParam("gshard.wg", tensor.Xavier(rng, m, cfg.Experts)),
		wnoise: newParam("gshard.wnoise", tensor.Xavier(rng, m, cfg.Experts)),
		rng:    rng.Split(),
	}, nil
}

// Name implements Gate.
func (g *GShardGate) Name() string { return "gshard" }

// Params implements Gate.
func (g *GShardGate) Params() []*Param { return []*Param{g.wg, g.wnoise} }

// SetFixedNoise pins the noise matrix for the next Route calls; tests use
// this to verify the noisy-path gradients numerically.
func (g *GShardGate) SetFixedNoise(n *tensor.Tensor) { g.fixedNoise = n }

// RNGState and SetRNGState implement RNGCarrier: the private noise
// generator is the gate's only mutable non-parameter state, so
// checkpointing it makes a restored training run replay the identical
// noisy-gating stream.
func (g *GShardGate) RNGState() (state, gamma uint64) { return g.rng.State() }
func (g *GShardGate) SetRNGState(state, gamma uint64) { g.rng.SetState(state, gamma) }

// Route implements Gate.
func (g *GShardGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	n := x.Dim(0)
	e := g.cfg.Experts
	logits := tensor.MatMul(x, g.wg.W)
	cache := &gshardCache{}
	if train {
		spPre := tensor.MatMul(x, g.wnoise.W)
		sp := tensor.Softplus(spPre)
		var noise *tensor.Tensor
		if g.fixedNoise != nil {
			noise = g.fixedNoise
		} else {
			noise = tensor.RandN(g.rng, 1, n, e)
		}
		logits = tensor.Add(logits, tensor.Mul(noise, sp))
		cache.noise = noise
		cache.spPre = spPre
	}
	cache.logits = logits

	probs := tensor.SoftmaxRows(logits) // full softmax for the aux loss
	cache.probs = probs
	var asg []assignment
	cache.selIdx = make([][]int, n)
	cache.selW = make([][]float64, n)
	firstChoice := make([]int, e)
	for t := 0; t < n; t++ {
		row := logits.Row(t)
		sel := tensor.TopK(row, g.cfg.TopK)
		// Masked softmax over the selected logits.
		w := make([]float64, len(sel))
		kept := make([]float64, len(sel))
		for j, idx := range sel {
			kept[j] = row[idx]
		}
		copy(w, softmaxVec(kept))
		cache.selIdx[t] = sel
		cache.selW[t] = w
		firstChoice[sel[0]]++
		for j, idx := range sel {
			asg = append(asg, assignment{token: t, expert: idx, weight: w[j], choice: j})
		}
	}
	capacity := CapacityFor(n, e, g.cfg.TopK, g.cfg.Factor)
	plan := buildHardPlan(n, e, capacity, asg)
	// Load balancing loss: E * sum_e f_e * p_e.
	aux := 0.0
	for ei := 0; ei < e; ei++ {
		f := float64(firstChoice[ei]) / float64(n)
		p := 0.0
		for t := 0; t < n; t++ {
			p += probs.At(t, ei)
		}
		p /= float64(n)
		aux += f * p
	}
	plan.AuxLoss = aux * float64(e)
	cache.firstC = firstChoice
	return plan, &RouteCache{X: x, Plan: plan, extra: cache}, nil
}

// AuxBackward accumulates scale · ∂AuxLoss/∂θ into the gate parameters and
// returns the corresponding input gradient. The loss is E·Σ_e f_e·p̄_e
// (§2.1's load-balancing term): f_e, the first-choice fraction, is
// piecewise constant, so the gradient flows through the mean softmax
// probabilities p̄_e exactly as in GShard/Switch training. Call it after
// Route (typically alongside the layer's Backward) with the coefficient
// the training loss puts on the auxiliary term.
func (g *GShardGate) AuxBackward(rc *RouteCache, scale float64) *tensor.Tensor {
	cache := rc.extra.(*gshardCache)
	x := rc.X
	n, e := x.Dim(0), g.cfg.Experts
	if scale == 0 || n == 0 {
		return tensor.New(n, g.m)
	}
	// AuxLoss = (E/n²)·Σ_e c_e·Σ_t p_te with c_e the first-choice count.
	// dL/dp_te = scale·E·c_e/n²; back through each row's softmax.
	dLogits := tensor.New(n, e)
	coeff := scale * float64(e) / (float64(n) * float64(n))
	dp := make([]float64, e)
	for ei := 0; ei < e; ei++ {
		dp[ei] = coeff * float64(cache.firstC[ei])
	}
	for t := 0; t < n; t++ {
		p := cache.probs.Row(t)
		dl := maskedSoftmaxBackward(p, dp)
		copy(dLogits.Row(t), dl)
	}
	tensor.AddInPlace(g.wg.G, tensor.MatMulT1(x, dLogits))
	dx := tensor.MatMulT2(dLogits, g.wg.W)
	if cache.noise != nil {
		dsp := tensor.Mul(dLogits, cache.noise)
		dpre := tensor.Mul(dsp, tensor.Sigmoid(cache.spPre))
		tensor.AddInPlace(g.wnoise.G, tensor.MatMulT1(x, dpre))
		tensor.AddInPlace(dx, tensor.MatMulT2(dpre, g.wnoise.W))
	}
	return dx
}

// Backward implements Gate. Dropped assignments contribute no gradient
// (their combine weight never reached the output).
func (g *GShardGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	cache := rc.extra.(*gshardCache)
	x := rc.X
	n, e := x.Dim(0), g.cfg.Experts
	// Collect dWeight per (token, selected expert) from the slot grads.
	dW := slotGradToTokenGrad(rc.Plan, cache.selIdx, grad.SlotWeight, n)
	dLogits := tensor.Get(n, e) // transient; released below
	for t := 0; t < n; t++ {
		dl := maskedSoftmaxBackward(cache.selW[t], dW[t])
		for j, idx := range cache.selIdx[t] {
			dLogits.Set(dl[j], t, idx)
		}
	}
	// dWg += xᵀ dLogits ; dx = dLogits Wgᵀ.
	gw := tensor.GetUninit(g.m, e)
	tensor.MatMulT1Into(gw, x, dLogits)
	tensor.AddInPlace(g.wg.G, gw)
	dx := tensor.MatMulT2(dLogits, g.wg.W)
	if cache.noise != nil {
		// Noise path: logits += noise * softplus(x·W_noise).
		dpre := tensor.GetUninit(n, e)
		tensor.MulInto(dpre, dLogits, cache.noise)
		spd := cache.spPre.Data()
		dd := dpre.Data()
		for i := range dd {
			dd[i] *= sigmoidScalar(spd[i]) // softplus' = sigmoid
		}
		tensor.MatMulT1Into(gw, x, dpre)
		tensor.AddInPlace(g.wnoise.G, gw)
		dxn := tensor.GetUninit(n, g.m)
		tensor.MatMulT2Into(dxn, dpre, g.wnoise.W)
		tensor.AddInPlace(dx, dxn)
		tensor.Put(dxn)
		tensor.Put(dpre)
	}
	tensor.Put(gw)
	tensor.Put(dLogits)
	return dx
}

// sigmoidScalar mirrors tensor.Sigmoid for a single value, letting the
// noise-path backward fold softplus' in place instead of materializing a
// sigmoid tensor.
func sigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// softmaxVec is a stable softmax over a small dense vector.
func softmaxVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	row := tensor.FromData(out, 1, len(out))
	return tensor.SoftmaxRows(row).Row(0)
}

// slotGradToTokenGrad reorganizes per-slot weight gradients into the
// per-token, per-selected-choice layout gates compute jacobians in.
// Assignments that were dropped (never given a slot) get zero gradient.
func slotGradToTokenGrad(plan *DispatchPlan, selIdx [][]int, slotGrad [][]float64, tokens int) [][]float64 {
	out := make([][]float64, tokens)
	for t := range out {
		out[t] = make([]float64, len(selIdx[t]))
	}
	if slotGrad == nil {
		return out
	}
	// Walk slots; for each occupied slot find which choice of the token it
	// satisfies (the first selected expert matching the slot's expert that
	// has not been consumed). Token-order packing guarantees one slot per
	// (token, expert) pair.
	for e := range plan.SlotToken {
		for s, tok := range plan.SlotToken[e] {
			if tok < 0 {
				continue
			}
			for j, idx := range selIdx[tok] {
				if idx == e {
					out[tok][j] = slotGrad[e][s]
					break
				}
			}
		}
	}
	return out
}

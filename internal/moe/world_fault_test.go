package moe

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// fastRetry keeps the chaos sweeps quick: collective-kind retry with
// microsecond backoffs instead of the World default's milliseconds.
func fastRetry() runtime.RetryPolicy {
	return runtime.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Jitter:      0.1,
		Kinds:       []string{KindA2A, KindAG, KindRS},
	}
}

// runFaultWorld runs one forward/backward pass under an injector and
// returns the snapshot plus the fault/retry/straggler event counts
// accumulated over both plans.
func runFaultWorld(t *testing.T, l *MOELayer, cfg WorldConfig, fp *fault.Plan, x, dy *tensor.Tensor) (worldSnapshot, map[string]int) {
	t.Helper()
	w, err := NewWorld(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultPlan(fp)
	w.SetRetry(fastRetry())
	events := map[string]int{}
	count := func() {
		if tr := w.LastTrace(); tr != nil {
			for _, typ := range []string{sim.EventFault, sim.EventRetry, sim.EventStraggler} {
				events[typ] += tr.EventCount(typ)
			}
		}
	}
	l.ZeroGrad()
	y, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	count()
	dx, err := w.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	count()
	return worldSnapshot{y: y, dx: dx, grads: snapGrads(l)}, events
}

// TestWorldZeroSpecInjector: an installed injector with the zero Spec is
// inert — results stay bit-identical to the sequential reference and no
// fault events reach the trace.
func TestWorldZeroSpecInjector(t *testing.T) {
	x := tensor.RandN(xrand.New(71), 1, 96, 32)
	dy := tensor.RandN(xrand.New(72), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)
	got, ev := runFaultWorld(t, layer, WorldConfig{Ranks: 4, ChunksFwd: 2}, fault.New(fault.Spec{Seed: 1}), x, dy)
	compareSnapshots(t, "zero-spec", want, got)
	for typ, n := range ev {
		if n != 0 {
			t.Fatalf("zero-spec injector produced %d %s events", n, typ)
		}
	}
}

// TestWorldTransientBitIdentical is the chaos acceptance matrix:
// transient faults injected into every collective kind — at the task
// level (KindProb) and inside the collectives themselves
// (CollectiveProb) — are retried until the pass completes bit-identically
// to the sequential reference, across strategy × R × r. The transient cap
// (2) stays below the retry budget (4 attempts) so recovery is
// guaranteed; the fault events must still be visible on the traces.
func TestWorldTransientBitIdentical(t *testing.T) {
	x := tensor.RandN(xrand.New(73), 1, 96, 32)
	dy := tensor.RandN(xrand.New(74), 1, 96, 32)
	spec := fault.Spec{
		Seed: 99,
		KindProb: map[string]float64{
			KindA2A: 0.4, KindAG: 0.4, KindRS: 0.4,
		},
		CollectiveProb:       0.3,
		MaxTransientsPerTask: 2,
	}
	totalFaults, totalRetries := 0, 0
	for _, strat := range []Strategy{StrategyEP, StrategyESP} {
		layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
		want := runSequentialLayer(t, layer, x, dy)
		for _, ranks := range []int{1, 4} {
			for _, r := range []int{1, 2} {
				label := fmt.Sprintf("strategy=%s R=%d r=%d", strat, ranks, r)
				cfg := WorldConfig{Ranks: ranks, ChunksFwd: r, Strategy: strat}
				got, ev := runFaultWorld(t, layer, cfg, fault.New(spec), x, dy)
				compareSnapshots(t, label, want, got)
				totalFaults += ev[sim.EventFault]
				totalRetries += ev[sim.EventRetry]
			}
		}
	}
	if totalFaults == 0 || totalRetries == 0 {
		t.Fatalf("chaos sweep observed %d faults / %d retries; injection never fired", totalFaults, totalRetries)
	}
}

// TestWorldStragglerBitIdentical: straggler delays stretch the schedule
// but never change bytes.
func TestWorldStragglerBitIdentical(t *testing.T) {
	x := tensor.RandN(xrand.New(75), 1, 96, 32)
	dy := tensor.RandN(xrand.New(76), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)
	fp := fault.New(fault.Spec{Seed: 5, StragglerProb: 0.3, StragglerDelay: 20 * time.Microsecond})
	got, ev := runFaultWorld(t, layer, WorldConfig{Ranks: 4, ChunksFwd: 2}, fp, x, dy)
	compareSnapshots(t, "stragglers", want, got)
	if ev[sim.EventStraggler] == 0 {
		t.Fatal("straggler injection never fired")
	}
}

// TestWorldTransientBitIdenticalHybrid extends the chaos matrix to the
// hybrid EP×ESP strategy: transient faults at the task level and inside
// the group-scoped collectives themselves are retried until the pass
// completes bit-identically, across group widths g ∈ {2, 4}.
func TestWorldTransientBitIdenticalHybrid(t *testing.T) {
	x := tensor.RandN(xrand.New(95), 1, 96, 32)
	dy := tensor.RandN(xrand.New(96), 1, 96, 32)
	spec := fault.Spec{
		Seed: 99,
		KindProb: map[string]float64{
			KindA2A: 0.4, KindAG: 0.4, KindRS: 0.4,
		},
		CollectiveProb:       0.3,
		MaxTransientsPerTask: 2,
	}
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)
	totalFaults, totalRetries := 0, 0
	for _, g := range []int{2, 4} {
		for _, r := range []int{1, 2} {
			label := fmt.Sprintf("strategy=hybrid g=%d r=%d", g, r)
			cfg := WorldConfig{Ranks: 4, ChunksFwd: r, Strategy: StrategyHybrid, GroupSize: g}
			got, ev := runFaultWorld(t, layer, cfg, fault.New(spec), x, dy)
			compareSnapshots(t, label, want, got)
			totalFaults += ev[sim.EventFault]
			totalRetries += ev[sim.EventRetry]
		}
	}
	if totalFaults == 0 || totalRetries == 0 {
		t.Fatalf("hybrid chaos sweep observed %d faults / %d retries; injection never fired", totalFaults, totalRetries)
	}
}

// TestWorldStragglerBitIdenticalHybrid: straggler delays inside the
// hybrid group-scoped schedule stretch the makespan but never the bytes.
func TestWorldStragglerBitIdenticalHybrid(t *testing.T) {
	x := tensor.RandN(xrand.New(97), 1, 96, 32)
	dy := tensor.RandN(xrand.New(98), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)
	fp := fault.New(fault.Spec{Seed: 5, StragglerProb: 0.3, StragglerDelay: 20 * time.Microsecond})
	cfg := WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2}
	got, ev := runFaultWorld(t, layer, cfg, fp, x, dy)
	compareSnapshots(t, "hybrid stragglers", want, got)
	if ev[sim.EventStraggler] == 0 {
		t.Fatal("hybrid straggler injection never fired")
	}
}

// TestWorldDegradedHybrid: a permanent rank loss inside the hybrid
// strategy's group-scoped schedule completes on the degraded path
// deterministically, with the dead group members' experts frozen.
func TestWorldDegradedHybrid(t *testing.T) {
	x := tensor.RandN(xrand.New(99), 1, 96, 32)
	dy := tensor.RandN(xrand.New(100), 1, 96, 32)
	run := func() (worldSnapshot, *DegradedResult) {
		layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
		w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaultPlan(fault.New(fault.Spec{Seed: 9, Down: &fault.Down{Rank: 2, Kind: KindExpert}}))
		layer.ZeroGrad()
		_, cache, err := w.Forward(x, false)
		if err != nil {
			t.Fatalf("hybrid degraded forward must complete, got %v", err)
		}
		if _, err := w.Backward(cache, dy); err != nil {
			t.Fatalf("hybrid degraded backward must complete, got %v", err)
		}
		deg := w.LastDegraded()
		if deg == nil {
			t.Fatal("no DegradedResult after hybrid rank loss")
		}
		expectZeroGrads(t, layer, deg.LostExperts, "hybrid-degraded")
		expectZeroGateGrads(t, layer, "hybrid-degraded")
		return worldSnapshot{dx: x, y: x, grads: snapGrads(layer)}, deg
	}
	snap, deg := run()
	if deg.Rank != 2 {
		t.Fatalf("degraded rank = %d, want 2", deg.Rank)
	}
	if len(deg.LostExperts) == 0 {
		t.Fatal("no experts reported lost")
	}
	snap2, deg2 := run()
	compareSnapshots(t, "hybrid degraded determinism", snap, snap2)
	if deg2.ReroutedTokens != deg.ReroutedTokens || deg2.DroppedTokens != deg.DroppedTokens {
		t.Fatalf("hybrid degraded rerouting not deterministic: %d/%d vs %d/%d",
			deg.ReroutedTokens, deg.DroppedTokens, deg2.ReroutedTokens, deg2.DroppedTokens)
	}
}

// expectZeroGrads asserts every parameter gradient of the given experts
// is exactly zero (dead experts are frozen in degraded mode).
func expectZeroGrads(t *testing.T, l *MOELayer, experts []int, label string) {
	t.Helper()
	for _, e := range experts {
		for pi, p := range l.cfg.Experts[e].Params() {
			for _, v := range p.G.Data() {
				if v != 0 {
					t.Fatalf("%s: dead expert %d param %d has non-zero gradient", label, e, pi)
				}
			}
		}
	}
}

func expectZeroGateGrads(t *testing.T, l *MOELayer, label string) {
	t.Helper()
	for pi, p := range l.cfg.Gate.Params() {
		for _, v := range p.G.Data() {
			if v != 0 {
				t.Fatalf("%s: frozen router gate param %d has non-zero gradient", label, pi)
			}
		}
	}
}

// TestWorldDegradedForward: a permanent rank failure during the forward
// plan completes the step degraded instead of aborting — the dead rank's
// tokens are re-routed into surviving experts' capacity, the backward
// pairs with the degraded routing, dead experts and the router accumulate
// no gradient, and the whole degraded pass is deterministic.
func TestWorldDegradedForward(t *testing.T) {
	x := tensor.RandN(xrand.New(81), 1, 96, 32)
	dy := tensor.RandN(xrand.New(82), 1, 96, 32)
	const ranks = 4
	run := func() (worldSnapshot, *DegradedResult, []bool) {
		layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
		w, err := NewWorld(layer, WorldConfig{Ranks: ranks, ChunksFwd: 2})
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
		layer.ZeroGrad()
		y, cache, err := w.Forward(x, false)
		if err != nil {
			t.Fatalf("degraded forward must complete, got %v", err)
		}
		deg := w.LastDegraded()
		if deg == nil {
			t.Fatal("no DegradedResult after permanent rank failure")
		}
		dx, err := w.Backward(cache, dy)
		if err != nil {
			t.Fatalf("degraded backward must complete, got %v", err)
		}
		return worldSnapshot{y: y, dx: dx, grads: snapGrads(layer)}, w.LastDegraded(), w.Health()
	}

	snap, deg, health := run()
	if deg.Rank != 1 || deg.Phase != "forward" {
		t.Fatalf("DegradedResult rank/phase = %d/%q, want 1/forward", deg.Rank, deg.Phase)
	}
	egrp := 8 / ranks
	wantLost := lostList(1*egrp, 2*egrp)
	if fmt.Sprint(deg.LostExperts) != fmt.Sprint(wantLost) {
		t.Fatalf("LostExperts = %v, want %v", deg.LostExperts, wantLost)
	}
	if deg.ReroutedTokens+deg.DroppedTokens == 0 {
		t.Fatal("dead rank held no tokens; rerouting never exercised")
	}
	if deg.RecoveryMS <= 0 {
		t.Fatal("RecoveryMS not measured")
	}
	if !strings.Contains(deg.Cause, "permanent") && deg.Cause == "" {
		t.Fatalf("Cause not recorded: %q", deg.Cause)
	}
	for r, ok := range health {
		if want := r != 1; ok != want {
			t.Fatalf("Health()[%d] = %v, want %v", r, ok, want)
		}
	}

	// Determinism: a fresh identically-seeded run reproduces the degraded
	// pass bit-for-bit.
	snap2, deg2, _ := run()
	compareSnapshots(t, "degraded determinism", snap, snap2)
	if deg2.ReroutedTokens != deg.ReroutedTokens || deg2.DroppedTokens != deg.DroppedTokens {
		t.Fatalf("degraded rerouting not deterministic: %d/%d vs %d/%d",
			deg.ReroutedTokens, deg.DroppedTokens, deg2.ReroutedTokens, deg2.DroppedTokens)
	}
}

// TestWorldDegradedForwardFreezes runs the degraded pass on one layer
// instance and asserts the freeze contract: dead experts and the router
// accumulate exactly zero gradient, surviving experts accumulate some.
func TestWorldDegradedForwardFreezes(t *testing.T) {
	x := tensor.RandN(xrand.New(83), 1, 96, 32)
	dy := tensor.RandN(xrand.New(84), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultPlan(fault.New(fault.Spec{Seed: 3, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	deg := w.LastDegraded()
	expectZeroGrads(t, layer, deg.LostExperts, "degraded-forward")
	expectZeroGateGrads(t, layer, "degraded-forward")
	nonzero := false
	for e := 0; e < len(layer.cfg.Experts) && !nonzero; e++ {
		if e >= deg.LostExperts[0] && e <= deg.LostExperts[len(deg.LostExperts)-1] {
			continue
		}
		for _, p := range layer.cfg.Experts[e].Params() {
			for _, v := range p.G.Data() {
				if v != 0 {
					nonzero = true
					break
				}
			}
		}
	}
	if !nonzero {
		t.Fatal("surviving experts accumulated no gradient at all")
	}

	// The rank stays down: the next forward goes straight to the degraded
	// path without building a plan.
	_, cache2, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	deg2 := w.LastDegraded()
	if deg2 == nil || !strings.Contains(deg2.Cause, "still down") {
		t.Fatalf("second forward did not report the standing failure: %+v", deg2)
	}
	if _, err := w.Backward(cache2, dy); err != nil {
		t.Fatal(err)
	}
}

// TestWorldDegradedBackward: a permanent failure during the backward plan
// keeps the full-strength routing, clears the dead experts' gradient
// slots, and completes; ResetHealth then restores bit-identical
// full-strength stepping.
func TestWorldDegradedBackward(t *testing.T) {
	x := tensor.RandN(xrand.New(85), 1, 96, 32)
	dy := tensor.RandN(xrand.New(86), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)

	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false) // clean forward at full strength
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultPlan(fault.New(fault.Spec{Seed: 4, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))
	dx, err := w.Backward(cache, dy)
	if err != nil {
		t.Fatalf("degraded backward recovery must complete, got %v", err)
	}
	if dx == nil {
		t.Fatal("nil input gradient from degraded backward")
	}
	deg := w.LastDegraded()
	if deg == nil || deg.Phase != "backward" || deg.Rank != 1 {
		t.Fatalf("DegradedResult = %+v, want backward-phase rank 1", deg)
	}
	if deg.DroppedTokens == 0 {
		t.Fatal("backward-time failure cleared no slots")
	}
	if deg.ReroutedTokens != 0 {
		t.Fatalf("backward-time failure re-routed %d tokens; routing must be kept", deg.ReroutedTokens)
	}
	expectZeroGrads(t, layer, deg.LostExperts, "degraded-backward")
	expectZeroGateGrads(t, layer, "degraded-backward")

	// Recovery: clear the injector and the health mark, and the world is
	// bit-identical to the sequential reference again.
	w.SetFaultPlan(nil)
	w.ResetHealth()
	layer.ZeroGrad()
	y2, cache2, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.LastDegraded() != nil {
		t.Fatal("ResetHealth did not clear degraded state")
	}
	dx2, err := w.Backward(cache2, dy)
	if err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "post-reset", want, worldSnapshot{y: y2, dx: dx2, grads: snapGrads(layer)})
}

// TestWorldCloseGuard: Close is idempotent-checked and stepping a closed
// world fails with the typed error.
func TestWorldCloseGuard(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(87), 1, 96, 32)
	if err := w.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("double Close error = %v, want ErrWorldClosed", err)
	}
	if _, _, err := w.Forward(x, false); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("Forward after Close error = %v, want ErrWorldClosed", err)
	}
	if _, err := w.Backward(&WorldCache{}, x); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("Backward after Close error = %v, want ErrWorldClosed", err)
	}
}

// TestWorldDeadline: an expired per-plan deadline aborts the pass with
// context.DeadlineExceeded; clearing the deadline restores normal
// bit-identical stepping on the same world.
func TestWorldDeadline(t *testing.T) {
	x := tensor.RandN(xrand.New(88), 1, 96, 32)
	dy := tensor.RandN(xrand.New(89), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	want := runSequentialLayer(t, layer, x, dy)

	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.SetSequential(true) // the sequential executor polls ctx before every task: deterministic abort
	w.SetDeadline(time.Nanosecond)
	layer.ZeroGrad()
	if _, _, err := w.Forward(x, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Forward under expired deadline = %v, want DeadlineExceeded", err)
	}

	w.SetDeadline(0)
	layer.ZeroGrad()
	y, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := w.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "post-deadline", want, worldSnapshot{y: y, dx: dx, grads: snapGrads(layer)})
}

// TestWorldStepDegraded: a permanent rank failure inside a multi-layer
// §5 training step does not abort it — the degraded layer completes on
// the fallback path, the Gradient-AllReduce still synchronizes every
// layer's gradients (slices parked for the degraded layer's never-built
// plan return to the pool), and the post-step parameter replicas stay
// bit-identical on every rank.
func TestWorldStepDegraded(t *testing.T) {
	const layers, ranks, lr = 2, 4, 0.05
	x := tensor.RandN(xrand.New(91), 1, 96, 32)
	dy := tensor.RandN(xrand.New(92), 1, 96, 32)
	ws := stepStack(t, layers, ranks, 2, false)
	ws[0].SetFaultPlan(fault.New(fault.Spec{Seed: 6, Down: &fault.Down{Rank: 1, Kind: KindExpert}}))

	res, err := StepWorlds(ws, x, dy, StepConfig{LR: lr, ChunkBytes: 64 << 10, Slices: 3})
	if err != nil {
		t.Fatalf("degraded step must complete, got %v", err)
	}
	if len(res.Degraded) != 1 {
		t.Fatalf("res.Degraded has %d entries, want 1", len(res.Degraded))
	}
	deg := res.Degraded[0]
	if deg.Rank != 1 || deg.Phase != "forward" {
		t.Fatalf("DegradedResult rank/phase = %d/%q, want 1/forward", deg.Rank, deg.Phase)
	}
	if deg.RecoveryMS <= 0 || res.BackwardMS < deg.RecoveryMS {
		t.Fatalf("RecoveryMS %v not charged into BackwardMS %v", deg.RecoveryMS, res.BackwardMS)
	}
	if len(res.RankParams) != ranks {
		t.Fatalf("%d replicas, want %d", len(res.RankParams), ranks)
	}
	for r := 1; r < ranks; r++ {
		for k := range res.RankParams[0] {
			if res.RankParams[r][k] != res.RankParams[0][k] {
				t.Fatalf("rank %d param %d diverges from rank 0 after degraded step", r, k)
			}
		}
	}
	if total := res.Report.HiddenBytes + res.Report.TailBytes; total != res.Report.TotalBytes {
		t.Fatalf("synced %v of %v bytes across the degraded step", total, res.Report.TotalBytes)
	}

	// The healthy layer must still have stepped its dead-rank-free
	// parameters with real gradients; the degraded layer's dead experts
	// must be frozen (stepped by exactly zero).
	if hs := ws[0].Health(); hs[1] {
		t.Fatal("rank 1 still reported healthy after the degraded step")
	}
}

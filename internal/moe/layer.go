package moe

import (
	"fmt"
	"reflect"

	"repro/internal/tensor"
)

// LayerConfig assembles an MOELayer from sub-modules (§3.3's front-end).
type LayerConfig struct {
	M          int // token embedding size
	Gate       Gate
	Order      Order
	Dispatcher Dispatcher // nil means LocalDispatcher
	Experts    []Expert
	Hooks      []Hooks
}

// MOELayer is the full MoE layer of Fig. 1: gate → order → dispatch →
// expert → combine → I-order, with the six hook points of §3.1 threaded
// through. It can be used like any other layer: Forward produces the output
// and a cache, Backward consumes the cache and the output gradient.
type MOELayer struct {
	cfg   LayerConfig
	hooks hookChain
	disp  Dispatcher
	// seqExperts disables concurrent expert execution when the expert list
	// provably or possibly aliases itself (see distinctExperts).
	seqExperts bool
}

// LayerCache holds everything Backward needs.
type LayerCache struct {
	shape     []int // original input shape
	x         *tensor.Tensor
	routeC    *RouteCache
	plan      *DispatchPlan
	dispatchd *tensor.Tensor // expert inputs after dispatch, (E, T, M)
	expertOut *tensor.Tensor // (E, T, M)
	expCaches []ExpertCache
	train     bool
}

// NewMOELayer validates the configuration and assembles the layer.
func NewMOELayer(cfg LayerConfig) (*MOELayer, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("moe: M must be positive, got %d", cfg.M)
	}
	if cfg.Gate == nil {
		return nil, fmt.Errorf("moe: layer needs a gate")
	}
	if cfg.Order == nil {
		return nil, fmt.Errorf("moe: layer needs an order function")
	}
	if len(cfg.Experts) == 0 {
		return nil, fmt.Errorf("moe: layer needs at least one expert")
	}
	d := cfg.Dispatcher
	if d == nil {
		d = LocalDispatcher{}
	}
	return &MOELayer{
		cfg:        cfg,
		hooks:      hookChain(cfg.Hooks),
		disp:       d,
		seqExperts: !distinctExperts(cfg.Experts),
	}, nil
}

// distinctExperts reports whether every expert is a provably distinct
// instance. Experts of non-comparable dynamic types cannot be told apart,
// so they count as possibly aliased — the layer then runs them
// sequentially, preserving the pre-parallelism contract for legacy custom
// experts (e.g. the same instance registered at several indices for weight
// tying).
func distinctExperts(exps []Expert) bool {
	seen := make(map[Expert]bool, len(exps))
	for _, e := range exps {
		if !reflect.TypeOf(e).Comparable() {
			return false
		}
		if seen[e] {
			return false
		}
		seen[e] = true
	}
	return true
}

// forEachExpert runs f(e) for every expert, concurrently on the shared
// worker pool unless the expert list requires sequential execution.
func (l *MOELayer) forEachExpert(f func(e int)) {
	if l.seqExperts {
		for e := 0; e < len(l.cfg.Experts); e++ {
			f(e)
		}
		return
	}
	tensor.ParallelFor(len(l.cfg.Experts), f)
}

// Experts returns the layer's expert list.
func (l *MOELayer) Experts() []Expert { return l.cfg.Experts }

// Gate returns the layer's gate.
func (l *MOELayer) Gate() Gate { return l.cfg.Gate }

// Params returns all trainable parameters (gate + experts).
func (l *MOELayer) Params() []*Param {
	out := append([]*Param(nil), l.cfg.Gate.Params()...)
	for _, e := range l.cfg.Experts {
		out = append(out, e.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (l *MOELayer) ZeroGrad() { zeroGrads(l.Params()) }

// forwardProlog is the gate/order stage every forward pass — sequential or
// multi-rank — runs exactly once before any dispatch chunk moves (§4.1's
// "gate and order, then pipeline").
type forwardProlog struct {
	shape     []int          // original input shape
	flat      *tensor.Tensor // (N, M)
	plan      *DispatchPlan
	rc        *RouteCache
	scattered *tensor.Tensor // (E, T, M)
}

// prolog flattens and validates the input, routes it, and materializes the
// expert-major layout. Hooks up to BeforeDispatch are applied.
func (l *MOELayer) prolog(x *tensor.Tensor, train bool) (*forwardProlog, error) {
	shape := append([]int(nil), x.Shape()...)
	var flat *tensor.Tensor
	switch x.Rank() {
	case 2:
		flat = x
	case 3:
		flat = x.Reshape(x.Dim(0)*x.Dim(1), x.Dim(2))
	default:
		return nil, fmt.Errorf("moe: input must be (B,L,M) or (N,M), got %v", x.Shape())
	}
	if flat.Dim(1) != l.cfg.M {
		return nil, fmt.Errorf("moe: input embedding %d, want %d", flat.Dim(1), l.cfg.M)
	}
	flat = l.hooks.beforeMoeStart(flat)
	n := flat.Dim(0)

	plan, rc, err := l.cfg.Gate.Route(flat, train)
	if err != nil {
		return nil, err
	}
	if plan.Experts != len(l.cfg.Experts) {
		return nil, fmt.Errorf("moe: gate routed to %d experts but layer has %d", plan.Experts, len(l.cfg.Experts))
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}

	scattered := l.cfg.Order.Scatter(flat, plan) // (E, T, M)
	scattered = l.hooks.beforeDispatch(scattered)
	return &forwardProlog{shape: shape, flat: flat, plan: plan, rc: rc, scattered: scattered}, nil
}

// epilog is the I-Order stage after the combine: gather the expert outputs
// back to token order and restore the caller's shape.
func (l *MOELayer) epilog(combined *tensor.Tensor, plan *DispatchPlan, tokens int, shape []int) *tensor.Tensor {
	y := l.cfg.Order.Gather(combined, plan, tokens)
	y = l.hooks.beforeMoeEnd(y)
	if len(shape) == 3 {
		y = y.Reshape(shape...)
	}
	return y
}

// Forward runs the layer on x, shaped (B, L, M) or (N, M). train enables
// training-only gate behaviour.
func (l *MOELayer) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, *LayerCache, error) {
	pr, err := l.prolog(x, train)
	if err != nil {
		return nil, nil, err
	}
	plan, shape := pr.plan, pr.shape
	dispatched := l.disp.Dispatch(pr.scattered)
	dispatched = l.hooks.afterDispatch(dispatched)

	// Experts run concurrently on the shared worker pool, each reading and
	// writing its own (T, M) block of the (E, T, M) buffers through
	// zero-copy views. Blocks are disjoint and each expert's GEMMs
	// accumulate in a fixed order, so the result is bit-identical to the
	// sequential loop.
	expertOut := tensor.New(plan.Experts, plan.Capacity, l.cfg.M)
	caches := make([]ExpertCache, plan.Experts)
	blk := plan.Capacity * l.cfg.M
	l.forEachExpert(func(e int) {
		in := dispatched.View(e*blk, plan.Capacity, l.cfg.M)
		if ie, ok := l.cfg.Experts[e].(IntoExpert); ok {
			caches[e] = ie.ForwardInto(in, expertOut.View(e*blk, plan.Capacity, l.cfg.M))
			return
		}
		out, c := l.cfg.Experts[e].Forward(in)
		caches[e] = c
		copy(expertOut.Data()[e*blk:(e+1)*blk], out.Data())
	})

	combinedIn := l.hooks.beforeCombine(expertOut)
	combined := l.disp.Combine(combinedIn)
	combined = l.hooks.afterCombine(combined)

	y := l.epilog(combined, plan, pr.flat.Dim(0), shape)

	cache := &LayerCache{
		shape:     shape,
		x:         pr.flat,
		routeC:    pr.rc,
		plan:      plan,
		dispatchd: dispatched,
		expertOut: combined,
		expCaches: caches,
		train:     train,
	}
	return y, cache, nil
}

// Backward propagates dy (same shape as the forward output) through the
// layer, accumulating gradients into every gate and expert parameter, and
// returns the gradient with respect to the input.
//
// The routing path is differentiated exactly: the combine-weight gradients
// flow into the gate (softmax/sigmoid/cosine jacobians), and the data path
// flows through I-order → experts → order. Hard top-k selection itself is
// piecewise constant, so its "gradient" is zero almost everywhere, exactly
// as in the PyTorch implementations the paper builds on.
func (l *MOELayer) Backward(cache *LayerCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	// Through Gather (I-Order): gradient of expert outputs and of the
	// combine weights.
	dExpertOut, planGrad, err := l.backwardProlog(cache.expertOut, cache.plan, dy)
	if err != nil {
		return nil, err
	}
	plan := cache.plan

	// Through Combine (adjoint of the collective).
	dExpertOut = l.disp.CombineGrad(dExpertOut)

	// Through each expert, concurrently; every expert accumulates only its
	// own parameter gradients and writes its own block of dDispatched, so
	// the shards never race.
	dDispatched := tensor.New(plan.Experts, plan.Capacity, l.cfg.M)
	blk := plan.Capacity * l.cfg.M
	l.forEachExpert(func(e int) {
		dOut := dExpertOut.View(e*blk, plan.Capacity, l.cfg.M)
		if ie, ok := l.cfg.Experts[e].(IntoExpert); ok {
			ie.BackwardInto(cache.expCaches[e], dOut, dDispatched.View(e*blk, plan.Capacity, l.cfg.M))
			return
		}
		dIn := l.cfg.Experts[e].Backward(cache.expCaches[e], dOut)
		copy(dDispatched.Data()[e*blk:(e+1)*blk], dIn.Data())
	})

	// Through Dispatch.
	dScattered := l.disp.DispatchGrad(dDispatched)

	return l.backwardFinish(dScattered, planGrad, cache.x, cache.routeC, plan, cache.shape), nil
}

// backwardProlog is the shared entry of every backward pass: flatten dy
// and differentiate through Gather (I-Order).
func (l *MOELayer) backwardProlog(expertOut *tensor.Tensor, plan *DispatchPlan, dy *tensor.Tensor) (*tensor.Tensor, *PlanGrad, error) {
	var dflat *tensor.Tensor
	switch dy.Rank() {
	case 2:
		dflat = dy
	case 3:
		dflat = dy.Reshape(dy.Dim(0)*dy.Dim(1), dy.Dim(2))
	default:
		return nil, nil, fmt.Errorf("moe: dy must be (B,L,M) or (N,M), got %v", dy.Shape())
	}
	dExpertOut, planGrad := l.cfg.Order.GatherGrad(dflat, expertOut, plan)
	return dExpertOut, planGrad, nil
}

// backwardFinish is the shared exit of every backward pass: differentiate
// through Scatter (Order) back to tokens, feed the routing gradients to
// the gate, and restore the caller's shape.
func (l *MOELayer) backwardFinish(dScattered *tensor.Tensor, planGrad *PlanGrad, x *tensor.Tensor, rc *RouteCache, plan *DispatchPlan, shape []int) *tensor.Tensor {
	dx := l.cfg.Order.ScatterGrad(dScattered, plan, x.Dim(0))

	// Dense plans additionally need the dispatch-weight gradient
	// dD = dScattered_flat · xᵀ for the gate's backward.
	if plan.IsDense() {
		flatD := dScattered.Reshape(plan.Slots(), l.cfg.M)
		planGrad.DispatchW = tensor.MatMulT2(flatD, x)
	}

	// Routing path into the gate.
	dxGate := l.cfg.Gate.Backward(rc, planGrad)
	tensor.AddInPlace(dx, dxGate)

	if len(shape) == 3 {
		dx = dx.Reshape(shape...)
	}
	return dx
}

package moe

import (
	"math"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func exp(x float64) float64 { return math.Exp(x) }

// XMoEGate is the routing of X-MoE (§2.1): a low-rank projection
// u = W_proj·x is compared against learned expert embeddings by cosine
// similarity, s_e = cos(u, w_e), which mitigates representation collapse.
// The scores are sharpened by a temperature τ and the combine weights are
// the softmax over the selected experts' scores.
type XMoEGate struct {
	cfg  GateConfig
	m    int
	dim  int     // low-rank dimension
	tau  float64 // temperature
	proj *Param  // (M, dim)
	emb  *Param  // (E, dim) expert embeddings
}

type xmoeCache struct {
	u      *tensor.Tensor // x·W_proj, (N, dim)
	cos    *tensor.Tensor // cosine scores, (N, E)
	selIdx [][]int
	selW   [][]float64
}

// NewXMoEGate constructs the gate. lowRank is the projection dimension
// (the X-MoE paper uses a small value such as M/8); tau is the softmax
// temperature (0 selects the X-MoE default of 0.3).
func NewXMoEGate(cfg GateConfig, m, lowRank int, tau float64, rng *xrand.RNG) (*XMoEGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lowRank <= 0 {
		lowRank = m / 8
		if lowRank < 2 {
			lowRank = 2
		}
	}
	if tau <= 0 {
		tau = 0.3
	}
	return &XMoEGate{
		cfg:  cfg,
		m:    m,
		dim:  lowRank,
		tau:  tau,
		proj: newParam("xmoe.proj", tensor.Xavier(rng, m, lowRank)),
		emb:  newParam("xmoe.emb", tensor.Xavier(rng, cfg.Experts, lowRank)),
	}, nil
}

// Name implements Gate.
func (g *XMoEGate) Name() string { return "xmoe" }

// Params implements Gate.
func (g *XMoEGate) Params() []*Param { return []*Param{g.proj, g.emb} }

// Route implements Gate.
func (g *XMoEGate) Route(x *tensor.Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	if err := checkGateInput(x, g.m); err != nil {
		return nil, nil, err
	}
	n, e := x.Dim(0), g.cfg.Experts
	u := tensor.MatMul(x, g.proj.W)
	cos := tensor.CosineRows(u, g.emb.W)
	cache := &xmoeCache{u: u, cos: cos, selIdx: make([][]int, n), selW: make([][]float64, n)}
	var asg []assignment
	for t := 0; t < n; t++ {
		row := cos.Row(t)
		sel := tensor.TopK(row, g.cfg.TopK)
		kept := make([]float64, len(sel))
		for j, idx := range sel {
			kept[j] = row[idx] / g.tau
		}
		w := softmaxVec(kept)
		cache.selIdx[t] = sel
		cache.selW[t] = w
		for j, idx := range sel {
			asg = append(asg, assignment{token: t, expert: idx, weight: w[j], choice: j})
		}
	}
	capacity := CapacityFor(n, e, g.cfg.TopK, g.cfg.Factor)
	plan := buildHardPlan(n, e, capacity, asg)
	return plan, &RouteCache{X: x, Plan: plan, extra: cache}, nil
}

// Backward implements Gate. The gradient flows through the selected-set
// softmax, the temperature, and the full cosine similarity (both the inner
// product and the two norms), into the projection, the expert embeddings,
// and the input.
func (g *XMoEGate) Backward(rc *RouteCache, grad *PlanGrad) *tensor.Tensor {
	cache := rc.extra.(*xmoeCache)
	x := rc.X
	n := x.Dim(0)
	dW := slotGradToTokenGrad(rc.Plan, cache.selIdx, grad.SlotWeight, n)
	dU := tensor.New(n, g.dim)
	for t := 0; t < n; t++ {
		dscore := maskedSoftmaxBackward(cache.selW[t], dW[t])
		urow := cache.u.Row(t)
		un := norm(urow)
		if un == 0 {
			continue
		}
		for j, eIdx := range cache.selIdx[t] {
			ds := dscore[j] / g.tau
			if ds == 0 {
				continue
			}
			vrow := g.emb.W.Row(eIdx)
			vn := norm(vrow)
			if vn == 0 {
				continue
			}
			s := cache.cos.At(t, eIdx)
			// d cos(u,v)/du = v/(|u||v|) - s·u/|u|²  (and symmetrically for v).
			for d := 0; d < g.dim; d++ {
				dU.Set(dU.At(t, d)+ds*(vrow[d]/(un*vn)-s*urow[d]/(un*un)), t, d)
				g.emb.G.Set(g.emb.G.At(eIdx, d)+ds*(urow[d]/(un*vn)-s*vrow[d]/(vn*vn)), eIdx, d)
			}
		}
	}
	tensor.AddInPlace(g.proj.G, tensor.MatMulT1(x, dU))
	return tensor.MatMulT2(dU, g.proj.W)
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

package moe

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// worldLayer builds one layer per gate kind with real experts, plus the
// expert list so tests can wrap it.
func worldLayer(t *testing.T, gate string, order Order, mixtral, wrap bool) *MOELayer {
	t.Helper()
	const m, e, topK, h = 32, 8, 2, 48
	rng := xrand.New(17)
	gcfg := GateConfig{Experts: e, TopK: topK, Factor: 1.25}
	var g Gate
	var err error
	switch gate {
	case "gshard":
		g, err = NewGShardGate(gcfg, m, rng)
	case "sigmoid":
		g, err = NewSigmoidGate(gcfg, m, rng)
	case "xmoe":
		g, err = NewXMoEGate(gcfg, m, 8, 0.3, rng)
	case "ec":
		g, err = NewECGate(gcfg, m, rng)
	default:
		t.Fatalf("unknown gate %q", gate)
	}
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, e)
	for i := range exps {
		var ex Expert
		if mixtral {
			ex, err = NewMixtralFFN(m, h, rng)
		} else {
			ex, err = NewGPTFFN(m, h, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		if wrap {
			ex = onlyExpert{ex}
		}
		exps[i] = ex
	}
	layer, err := NewMOELayer(LayerConfig{M: m, Gate: g, Order: order, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	return layer
}

// snapshot captures everything a pass produces.
type worldSnapshot struct {
	y, dx *tensor.Tensor
	grads []*tensor.Tensor
}

func snapGrads(l *MOELayer) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range l.Params() {
		out = append(out, p.G.Clone())
	}
	return out
}

func runSequentialLayer(t *testing.T, l *MOELayer, x, dy *tensor.Tensor) worldSnapshot {
	t.Helper()
	l.ZeroGrad()
	y, cache, err := l.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	return worldSnapshot{y: y, dx: dx, grads: snapGrads(l)}
}

func runWorld(t *testing.T, l *MOELayer, cfg WorldConfig, x, dy *tensor.Tensor, sequentialExec bool) worldSnapshot {
	t.Helper()
	w, err := NewWorld(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSequential(sequentialExec)
	l.ZeroGrad()
	y, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := w.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	return worldSnapshot{y: y, dx: dx, grads: snapGrads(l)}
}

func compareSnapshots(t *testing.T, label string, want, got worldSnapshot) {
	t.Helper()
	if got.y.MaxAbsDiff(want.y) != 0 {
		t.Fatalf("%s: forward output not bit-identical (max diff %v)", label, got.y.MaxAbsDiff(want.y))
	}
	if got.dx.MaxAbsDiff(want.dx) != 0 {
		t.Fatalf("%s: input gradient not bit-identical (max diff %v)", label, got.dx.MaxAbsDiff(want.dx))
	}
	if len(want.grads) != len(got.grads) {
		t.Fatalf("%s: %d vs %d parameter gradients", label, len(want.grads), len(got.grads))
	}
	for i := range want.grads {
		if got.grads[i].MaxAbsDiff(want.grads[i]) != 0 {
			t.Fatalf("%s: param grad %d not bit-identical (max diff %v)", label, i, got.grads[i].MaxAbsDiff(want.grads[i]))
		}
	}
}

// TestWorldBitIdentical is the tentpole acceptance test: the pipelined
// multi-rank pass must produce bit-identical outputs, input gradients and
// parameter gradients to the sequential single-rank MOELayer for every
// hard-routing gate, across pipeline degrees r ∈ {1, 2, 4} and world
// sizes R ∈ {1, 4}. The token count is chosen so the per-expert capacity
// (30) does not divide by R=4, exercising the slot padding path.
func TestWorldBitIdentical(t *testing.T) {
	x := tensor.RandN(xrand.New(21), 1, 4, 24, 32) // (B, L, M), N = 96
	dy := tensor.RandN(xrand.New(22), 1, 4, 24, 32)
	for _, gate := range []string{"gshard", "sigmoid", "xmoe", "ec"} {
		layer := worldLayer(t, gate, TutelOrder{}, false, false)
		want := runSequentialLayer(t, layer, x, dy)
		for _, ranks := range []int{1, 4} {
			for _, r := range []int{1, 2, 4} {
				label := fmt.Sprintf("gate=%s R=%d r=%d", gate, ranks, r)
				got := runWorld(t, layer, WorldConfig{Ranks: ranks, ChunksFwd: r}, x, dy, false)
				compareSnapshots(t, label, want, got)
			}
		}
	}
}

// TestWorldBitIdenticalVariants covers the remaining axes: the GShard
// einsum order, both hierarchical AlltoAll algorithms, Mixtral experts,
// split forward/backward degrees, and the sequential executor mode.
func TestWorldBitIdenticalVariants(t *testing.T) {
	x := tensor.RandN(xrand.New(31), 1, 96, 32)
	dy := tensor.RandN(xrand.New(32), 1, 96, 32)
	cases := []struct {
		name    string
		order   Order
		mixtral bool
		cfg     WorldConfig
		seqExec bool
	}{
		{"gshard-order", GShardOrder{}, false, WorldConfig{Ranks: 4, ChunksFwd: 3}, false},
		{"1dh", TutelOrder{}, false, WorldConfig{Ranks: 4, ChunksFwd: 2, Algo: comm.A2A1DH, GPUsPerNode: 2}, false},
		{"2dh", TutelOrder{}, false, WorldConfig{Ranks: 4, ChunksFwd: 4, Algo: comm.A2A2DH, GPUsPerNode: 2}, false},
		{"mixtral", TutelOrder{}, true, WorldConfig{Ranks: 4, ChunksFwd: 2}, false},
		{"fwd-bwd-degrees", TutelOrder{}, false, WorldConfig{Ranks: 2, ChunksFwd: 4, ChunksBwd: 2}, false},
		{"sequential-exec", TutelOrder{}, false, WorldConfig{Ranks: 4, ChunksFwd: 4}, true},
	}
	for _, tc := range cases {
		layer := worldLayer(t, "gshard", tc.order, tc.mixtral, false)
		want := runSequentialLayer(t, layer, x, dy)
		got := runWorld(t, layer, tc.cfg, x, dy, tc.seqExec)
		compareSnapshots(t, tc.name, want, got)
	}
}

// TestWorldFallbackExperts: custom experts that do not implement
// ChunkedExpert run through the whole-block fallback (chunked
// communication, monolithic compute) and stay bit-identical.
func TestWorldFallbackExperts(t *testing.T) {
	x := tensor.RandN(xrand.New(41), 1, 96, 32)
	dy := tensor.RandN(xrand.New(42), 1, 96, 32)
	layer := worldLayer(t, "gshard", TutelOrder{}, false, true)
	want := runSequentialLayer(t, layer, x, dy)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w.Chunked() {
		t.Fatal("wrapped experts must route through the fallback path")
	}
	got := runWorld(t, layer, WorldConfig{Ranks: 4, ChunksFwd: 4}, x, dy, false)
	compareSnapshots(t, "fallback", want, got)
}

// TestWorldRejects covers the configuration errors.
func TestWorldRejects(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	if _, err := NewWorld(layer, WorldConfig{Ranks: 3}); err == nil {
		t.Fatal("8 experts across 3 ranks must fail")
	}
	if _, err := NewWorld(layer, WorldConfig{Ranks: 4, GPUsPerNode: 3}); err == nil {
		t.Fatal("4 ranks in nodes of 3 must fail")
	}
	if _, err := NewWorld(nil, WorldConfig{Ranks: 1}); err == nil {
		t.Fatal("nil layer must fail")
	}

	// Aliased experts cannot be sharded across ranks.
	rng := xrand.New(3)
	shared, err := NewGPTFFN(32, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := NewGShardGate(GateConfig{Experts: 2, TopK: 1, Factor: 1.0}, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := NewMOELayer(LayerConfig{M: 32, Gate: gate, Order: TutelOrder{}, Experts: []Expert{shared, shared}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(aliased, WorldConfig{Ranks: 2}); err == nil {
		t.Fatal("aliased experts must fail")
	}

	// Dense (SoftMoE) routing has no token dimension to chunk.
	soft, err := NewSoftMoEGate(GateConfig{Experts: 4, TopK: 1, Factor: 1}, 32, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]Expert, 4)
	for i := range exps {
		if exps[i], err = NewGPTFFN(32, 16, rng); err != nil {
			t.Fatal(err)
		}
	}
	denseLayer, err := NewMOELayer(LayerConfig{M: 32, Gate: soft, Order: TutelOrder{}, Experts: exps})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := NewWorld(denseLayer, WorldConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dw.Forward(tensor.RandN(xrand.New(5), 1, 16, 32), false); err == nil {
		t.Fatal("dense plan must be rejected at Forward")
	}
}

// TestWorldTraceShape: the measured trace of a pipelined pass exposes the
// expected streams and a positive makespan, and the recorded plan can
// re-simulate with measured durations.
func TestWorldTraceShape(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(xrand.New(51), 1, 64, 32)
	if _, _, err := w.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	tr := w.LastTrace()
	if tr == nil || tr.Makespan <= 0 {
		t.Fatalf("missing or empty forward trace: %+v", tr)
	}
	streams := map[string]bool{}
	for _, iv := range tr.Intervals {
		streams[iv.Task.Stream] = true
	}
	for _, want := range []string{"inter", "compute:0", "compute:3", "intra:0"} {
		if !streams[want] {
			t.Fatalf("trace missing stream %q (have %v)", want, streams)
		}
	}
	if w.LastPlan() == nil {
		t.Fatal("missing recorded plan")
	}
	if pred := w.LastPlan().Simulate(); pred.Makespan <= 0 {
		t.Fatalf("structural simulation returned %v", pred.Makespan)
	}
	if w.Stats().IntraVolume+w.Stats().InterVolume <= 0 {
		t.Fatal("no AlltoAll traffic recorded")
	}
}

package moe

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// shardedOnly hides every expert fast path except the ShardedExpert
// contract the hybrid strategy requires: no ChunkedExpert, no IntoExpert.
// At g=1 the hybrid's EP delegate then routes through the whole-block
// fallback — the hybrid counterpart of TestWorldFallbackExperts.
type shardedOnly struct{ inner ShardedExpert }

func (o shardedOnly) Name() string     { return o.inner.Name() }
func (o shardedOnly) Params() []*Param { return o.inner.Params() }
func (o shardedOnly) Forward(x *tensor.Tensor) (*tensor.Tensor, ExpertCache) {
	return o.inner.Forward(x)
}
func (o shardedOnly) Backward(c ExpertCache, dy *tensor.Tensor) *tensor.Tensor {
	return o.inner.Backward(c, dy)
}
func (o shardedOnly) FwdMACs(n int) float64 { return o.inner.FwdMACs(n) }
func (o shardedOnly) ParamBytes() float64   { return o.inner.ParamBytes() }
func (o shardedOnly) HiddenWidth() int      { return o.inner.HiddenWidth() }
func (o shardedOnly) FwdBands() int         { return o.inner.FwdBands() }
func (o shardedOnly) BwdBands() int         { return o.inner.BwdBands() }
func (o shardedOnly) BeginSharded(x, out, hf *tensor.Tensor, cl, ch int, pool *tensor.Pool) ShardedCache {
	return o.inner.BeginSharded(x, out, hf, cl, ch, pool)
}
func (o shardedOnly) ForwardHidden(sc ShardedCache, lo, hi int) { o.inner.ForwardHidden(sc, lo, hi) }
func (o shardedOnly) ForwardOut(sc ShardedCache, lo, hi int)    { o.inner.ForwardOut(sc, lo, hi) }
func (o shardedOnly) BackwardHidden(sc ShardedCache, dy, hb *tensor.Tensor, lo, hi int) {
	o.inner.BackwardHidden(sc, dy, hb, lo, hi)
}
func (o shardedOnly) BackwardIn(sc ShardedCache, dy, dx, hb *tensor.Tensor, lo, hi int) {
	o.inner.BackwardIn(sc, dy, dx, hb, lo, hi)
}
func (o shardedOnly) FinishSharded(sc ShardedCache, dy, hb *tensor.Tensor) {
	o.inner.FinishSharded(sc, dy, hb)
}
func (o shardedOnly) DropSharded(sc ShardedCache) { o.inner.DropSharded(sc) }

// wrapShardedOnly wraps every expert of layer in shardedOnly.
func wrapShardedOnly(t *testing.T, layer *MOELayer) {
	t.Helper()
	for i, ex := range layer.cfg.Experts {
		se, ok := ex.(ShardedExpert)
		if !ok {
			t.Fatalf("expert %d is not sharded", i)
		}
		layer.cfg.Experts[i] = shardedOnly{se}
	}
}

// TestWorldHybridBitIdentical is the hybrid acceptance test: forward and
// backward bit-identical to the sequential layer across the full
// (GroupSize, degree) grid g ∈ {1, 2, R} × r ∈ {1, 2, 4} at R=4, for
// every hard-routing gate. The token count (96, capacity 30) does not
// divide by R=4, exercising the slot padding path throughout.
func TestWorldHybridBitIdentical(t *testing.T) {
	x := tensor.RandN(xrand.New(21), 1, 4, 24, 32) // (B, L, M), N = 96
	dy := tensor.RandN(xrand.New(22), 1, 4, 24, 32)
	for _, gate := range []string{"gshard", "sigmoid", "xmoe", "ec"} {
		layer := worldLayer(t, gate, TutelOrder{}, false, false)
		want := runSequentialLayer(t, layer, x, dy)
		for _, g := range []int{1, 2, 4} {
			for _, r := range []int{1, 2, 4} {
				label := fmt.Sprintf("gate=%s g=%d r=%d", gate, g, r)
				got := runWorld(t, layer, WorldConfig{
					Ranks: 4, ChunksFwd: r, Strategy: StrategyHybrid, GroupSize: g,
				}, x, dy, false)
				compareSnapshots(t, label, want, got)
			}
		}
	}
}

// TestWorldHybridBitIdenticalVariants covers the remaining hybrid axes:
// Mixtral experts (two-band backward exchange), split forward/backward
// degrees, the sequential executor, hierarchical AlltoAll lanes with a
// node shape that splits the groups, a larger world (R=8: one expert per
// rank, four groups), and sharded-only experts — which at g=1 route the
// EP delegate through its whole-block fallback.
func TestWorldHybridBitIdenticalVariants(t *testing.T) {
	x := tensor.RandN(xrand.New(31), 1, 96, 32)
	dy := tensor.RandN(xrand.New(32), 1, 96, 32)
	cases := []struct {
		name        string
		mixtral     bool
		shardedOnly bool
		cfg         WorldConfig
		seqExec     bool
	}{
		{"mixtral", true, false, WorldConfig{Ranks: 4, ChunksFwd: 2, GroupSize: 2}, false},
		{"split-degrees", false, false, WorldConfig{Ranks: 4, ChunksFwd: 4, ChunksBwd: 2, GroupSize: 2}, false},
		{"sequential-exec", false, false, WorldConfig{Ranks: 4, ChunksFwd: 3, GroupSize: 2}, true},
		{"1dh-lanes", false, false, WorldConfig{Ranks: 4, ChunksFwd: 2, GroupSize: 2, Algo: comm.A2A1DH, GPUsPerNode: 2}, false},
		{"nodes-split-groups", false, false, WorldConfig{Ranks: 4, ChunksFwd: 2, GroupSize: 4, GPUsPerNode: 2}, false},
		{"r8-g2", false, false, WorldConfig{Ranks: 8, ChunksFwd: 2, GroupSize: 2}, false},
		{"r8-g4", false, false, WorldConfig{Ranks: 8, ChunksFwd: 3, GroupSize: 4}, false},
		{"sharded-only-g2", false, true, WorldConfig{Ranks: 4, ChunksFwd: 2, GroupSize: 2}, false},
		{"sharded-only-fallback-g1", false, true, WorldConfig{Ranks: 4, ChunksFwd: 2, GroupSize: 1}, false},
	}
	for _, tc := range cases {
		tc.cfg.Strategy = StrategyHybrid
		layer := worldLayer(t, "gshard", TutelOrder{}, tc.mixtral, false)
		if tc.shardedOnly {
			wrapShardedOnly(t, layer)
		}
		want := runSequentialLayer(t, layer, x, dy)
		if tc.shardedOnly && tc.cfg.GroupSize == 1 {
			w, err := NewWorld(layer, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if w.Chunked() {
				t.Fatal("sharded-only experts at g=1 must route through the EP whole-block fallback")
			}
		}
		got := runWorld(t, layer, tc.cfg, x, dy, tc.seqExec)
		compareSnapshots(t, tc.name, want, got)
	}
}

// planShape runs one forward+backward pass and returns the two plans'
// task lists.
func planShape(t *testing.T, l *MOELayer, cfg WorldConfig, x, dy *tensor.Tensor) (fwd, bwd []string, snap worldSnapshot) {
	t.Helper()
	w, err := NewWorld(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.ZeroGrad()
	y, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	fwd = taskLines(w)
	dx, err := w.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	bwd = taskLines(w)
	return fwd, bwd, worldSnapshot{y: y, dx: dx, grads: snapGrads(l)}
}

func taskLines(w *World) []string {
	var out []string
	for _, ti := range w.LastPlan().Tasks() {
		out = append(out, fmt.Sprintf("%d %s %s %s %.6g %v", ti.ID, ti.Label, ti.Kind, ti.Stream, ti.Est, ti.Deps))
	}
	return out
}

// TestWorldHybridDegenerateTraces is the degenerate-case regression test:
// hybrid plans at GroupSize 1 and R must be task-for-task identical
// (label, kind, stream, estimate, dependencies) to the pure EP and ESP
// plans, and produce identical outputs — the delegate builds exactly the
// specialized schedule, so the 2-D grid's edges coincide with the 1-D
// strategies by construction, not by approximation.
func TestWorldHybridDegenerateTraces(t *testing.T) {
	x := tensor.RandN(xrand.New(33), 1, 96, 32)
	dy := tensor.RandN(xrand.New(34), 1, 96, 32)
	for _, tc := range []struct {
		name string
		g    int
		pure Strategy
	}{
		{"g1-ep", 1, StrategyEP},
		{"gR-esp", 4, StrategyESP},
	} {
		layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
		pureFwd, pureBwd, pureSnap := planShape(t, layer,
			WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: tc.pure}, x, dy)
		hybFwd, hybBwd, hybSnap := planShape(t, layer,
			WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: tc.g}, x, dy)
		comparePlanLines(t, tc.name+" forward", pureFwd, hybFwd)
		comparePlanLines(t, tc.name+" backward", pureBwd, hybBwd)
		compareSnapshots(t, tc.name, pureSnap, hybSnap)
	}
}

func comparePlanLines(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d tasks", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: task %d differs:\npure:   %s\nhybrid: %s", label, i, want[i], got[i])
		}
	}
}

// TestWorldHybridValidation: hybrid misconfiguration fails at NewWorld
// with errors naming the strategy and the offending field.
func TestWorldHybridValidation(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	for _, g := range []int{0, -1, 5} {
		_, err := NewWorld(layer, WorldConfig{Ranks: 4, Strategy: StrategyHybrid, GroupSize: g})
		if err == nil || !strings.Contains(err.Error(), string(StrategyHybrid)) || !strings.Contains(err.Error(), "GroupSize") {
			t.Fatalf("GroupSize=%d: %v", g, err)
		}
	}
	_, err := NewWorld(layer, WorldConfig{Ranks: 4, Strategy: StrategyHybrid, GroupSize: 3})
	if err == nil || !strings.Contains(err.Error(), string(StrategyHybrid)) ||
		!strings.Contains(err.Error(), "GroupSize") || !strings.Contains(err.Error(), "dividing") {
		t.Fatalf("GroupSize=3 over 4 ranks: %v", err)
	}

	// The sharded contract is required at every group size, g=1 included.
	wrapped := worldLayer(t, "gshard", TutelOrder{}, false, true)
	for _, g := range []int{1, 2} {
		_, err := NewWorld(wrapped, WorldConfig{Ranks: 4, Strategy: StrategyHybrid, GroupSize: g})
		if err == nil || !strings.Contains(err.Error(), string(StrategyHybrid)) || !strings.Contains(err.Error(), "ShardedExpert") {
			t.Fatalf("plain experts at g=%d: %v", g, err)
		}
	}

	// Dense plans are rejected at Forward, naming both strategies.
	dense := softmoeLayer(t, false, 2)
	w, err := NewWorld(dense, WorldConfig{Ranks: 2, Strategy: StrategyHybrid, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Forward(tensor.RandN(xrand.New(5), 1, 16, 32), false); err == nil ||
		!strings.Contains(err.Error(), string(StrategyHybrid)) || !strings.Contains(err.Error(), string(StrategyDenseSlots)) {
		t.Fatalf("hybrid on dense plan: %v", err)
	}
}

// TestWorldHybridTraceShape pins the two-stream schedule: dispatch and
// combine AlltoAll run on the shared inter stream while every AllGather
// and ReduceScatter runs on a per-group intra collective stream — both
// collective families live in one plan, which neither EP nor ESP ever has.
func TestWorldHybridTraceShape(t *testing.T) {
	layer := worldLayer(t, "gshard", TutelOrder{}, false, false)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy() != StrategyHybrid {
		t.Fatalf("Strategy() = %q", w.Strategy())
	}
	x := tensor.RandN(xrand.New(51), 1, 64, 32)
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	counts := func() map[string]int {
		kinds := map[string]int{}
		groupStreams := map[string]bool{}
		for _, iv := range w.LastTrace().Intervals {
			kinds[iv.Task.Kind]++
			switch iv.Task.Kind {
			case KindA2A:
				if iv.Task.Stream != "inter" {
					t.Fatalf("AlltoAll %q on stream %q, want inter", iv.Task.Label, iv.Task.Stream)
				}
			case KindAG, KindRS:
				if !strings.HasPrefix(iv.Task.Stream, "intra:g") {
					t.Fatalf("%s %q on stream %q, want a per-group intra:g<G> stream", iv.Task.Kind, iv.Task.Label, iv.Task.Stream)
				}
				groupStreams[iv.Task.Stream] = true
			}
		}
		if len(groupStreams) != 2 {
			t.Fatalf("group collective streams = %v, want both groups live", groupStreams)
		}
		return kinds
	}
	fwd := counts()
	// Per chunk: one dispatch + one combine AlltoAll step on inter; per
	// chunk and group: input AllGather, hidden AllGather, ReduceScatter.
	if fwd[KindA2A] != 4 || fwd[KindAG] != 8 || fwd[KindRS] != 4 {
		t.Fatalf("forward kinds = %v, want 4 AlltoAll + 8 AllGather + 4 ReduceScatter", fwd)
	}
	if _, err := w.Backward(cache, tensor.RandN(xrand.New(52), 1, 64, 32)); err != nil {
		t.Fatal(err)
	}
	bwd := counts()
	if bwd[KindA2A] != 4 || bwd[KindAG] != 8 || bwd[KindRS] != 4 {
		t.Fatalf("backward kinds = %v, want 4 AlltoAll + 8 AllGather + 4 ReduceScatter", bwd)
	}
	st := w.Stats()
	if st.IntraVolume+st.InterVolume <= 0 {
		t.Fatal("no collective traffic recorded")
	}
}

// TestWorldStepHybrid: a StepWorlds stack of hybrid layers — and a mixed
// EP/hybrid/ESP stack — steps to bit-identical parameters with the §5
// AllReduce slices genuinely embedded in the backward plans' inter stream
// (where under hybrid they contend with the dispatch-gradient lanes,
// exactly as the emit-point budget assumes).
func TestWorldStepHybrid(t *testing.T) {
	const layers, lr = 3, 0.05
	x := tensor.RandN(xrand.New(71), 1, 96, 32)
	dy := tensor.RandN(xrand.New(72), 1, 96, 32)

	refLayers := make([]*MOELayer, layers)
	for i := range refLayers {
		refLayers[i] = worldLayer(t, "gshard", TutelOrder{}, false, false)
	}
	want := refStep(t, refLayers, x, dy, lr)

	stacks := map[string][]WorldConfig{
		"hybrid": {
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2},
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2},
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2},
		},
		"mixed": {
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyEP},
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyHybrid, GroupSize: 2},
			{Ranks: 4, ChunksFwd: 2, Strategy: StrategyESP},
		},
	}
	for name, cfgs := range stacks {
		ws := make([]*World, layers)
		for i := 0; i < layers; i++ {
			l := worldLayer(t, "gshard", TutelOrder{}, false, false)
			w, err := NewWorld(l, cfgs[i])
			if err != nil {
				t.Fatal(err)
			}
			ws[i] = w
		}
		res, err := StepWorlds(ws, x, dy, StepConfig{LR: lr})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := 0; r < 4; r++ {
			for k := range want {
				if res.RankParams[r][k] != want[k] {
					t.Fatalf("%s: rank %d param %d = %v, reference %v", name, r, k, res.RankParams[r][k], want[k])
				}
			}
		}
		arInPlans := 0
		for _, tr := range res.Traces {
			for _, iv := range tr.Intervals {
				if iv.Task.Kind == "AllReduce" && iv.Task.Stream == "inter" {
					arInPlans++
				}
			}
		}
		if arInPlans == 0 {
			t.Fatalf("%s: no AllReduce slices embedded in backward plans", name)
		}
	}
}

// BenchmarkWorldHybridGrid measures one fwd+bwd pass per (GroupSize,
// degree) cell of the 2-D grid at R=4 — the hybrid counterpart of the
// strategy sweep, and the CI grid smoke (-benchtime=1x).
func BenchmarkWorldHybridGrid(b *testing.B) {
	const m, e, h, tokens = 64, 8, 128, 512
	for _, g := range []int{1, 2, 4} {
		for _, r := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("g=%d/r=%d", g, r), func(b *testing.B) {
				rng := xrand.New(91)
				gate, err := NewGShardGate(GateConfig{Experts: e, TopK: 2, Factor: 1.2}, m, rng)
				if err != nil {
					b.Fatal(err)
				}
				exps := make([]Expert, e)
				for i := range exps {
					if exps[i], err = NewGPTFFN(m, h, rng); err != nil {
						b.Fatal(err)
					}
				}
				layer, err := NewMOELayer(LayerConfig{M: m, Gate: gate, Order: TutelOrder{}, Experts: exps})
				if err != nil {
					b.Fatal(err)
				}
				w, err := NewWorld(layer, WorldConfig{
					Ranks: 4, ChunksFwd: r, Strategy: StrategyHybrid, GroupSize: g,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				x := tensor.RandN(xrand.New(92), 1, tokens, m)
				dy := tensor.RandN(xrand.New(93), 1, tokens, m)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					layer.ZeroGrad()
					_, cache, err := w.Forward(x, false)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := w.Backward(cache, dy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

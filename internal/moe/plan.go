// Package moe implements the MoE layer itself: the six sub-modules of §3.1
// (Gate, Order, I-Order, Dispatch, Combine, Expert) plus the hook points,
// all running real math on CPU tensors.
//
// The package is the "flexible framework" half of the paper: every
// sub-module is an interface with multiple interchangeable implementations
// (five gating functions, two ordering functions, two expert types, three
// AlltoAll algorithms via internal/comm), and the layer itself is assembled
// from them without invasive changes — the modularization claim of §3.1.
package moe

import (
	"fmt"

	"repro/internal/tensor"
)

// DispatchPlan is the normalized routing decision every gate produces: an
// assignment of tokens to (expert, slot) positions in the (E, T, M) layout
// that the Order sub-module materializes.
//
// Hard-routing gates (GShard, Sigmoid, X-MoE, EC) fill SlotToken and
// SlotWeight. SoftMoE routes densely: every slot is a convex combination of
// all tokens, expressed by DispatchW/CombineW, and SlotToken is nil.
type DispatchPlan struct {
	Experts  int // E
	Capacity int // T, slots per expert

	// SlotToken[e][s] is the token occupying slot s of expert e, or -1 for
	// an empty (padded) slot. SlotWeight[e][s] is the combine weight the
	// expert's output is scaled by (§2.1).
	SlotToken  [][]int
	SlotWeight [][]float64

	// Dropped counts (token, choice) assignments discarded because the
	// target expert's capacity T = k·f·B·L/E was exhausted (§2.1).
	Dropped int

	// AuxLoss is the gate's load-balancing auxiliary loss, when defined.
	AuxLoss float64

	// Dense routing (SoftMoE): DispatchW is (E*T, N) — slot inputs are
	// DispatchW @ x — and CombineW is (N, E*T) — outputs are
	// CombineW @ slotOutputs.
	DispatchW *tensor.Tensor
	CombineW  *tensor.Tensor
}

// IsDense reports whether the plan uses soft (dense) routing.
func (p *DispatchPlan) IsDense() bool { return p.DispatchW != nil }

// ExpertLoad returns the number of real tokens routed to each expert —
// occupied slots for hard plans (capacity padding excluded), Capacity for
// every expert of a dense plan (each slot is a convex combination of all
// tokens, so every slot carries load). This is the per-expert utilization
// signal FlexMoE-style dynamic placement watches.
func (p *DispatchPlan) ExpertLoad() []int {
	load := make([]int, p.Experts)
	if p.IsDense() {
		for e := range load {
			load[e] = p.Capacity
		}
		return load
	}
	for e := range p.SlotToken {
		for _, tok := range p.SlotToken[e] {
			if tok >= 0 {
				load[e]++
			}
		}
	}
	return load
}

// Slots returns E*T.
func (p *DispatchPlan) Slots() int { return p.Experts * p.Capacity }

// Validate checks structural invariants; tests and the layer call it.
func (p *DispatchPlan) Validate(tokens int) error {
	if p.Experts <= 0 || p.Capacity < 0 {
		return fmt.Errorf("moe: plan with E=%d T=%d", p.Experts, p.Capacity)
	}
	if p.IsDense() {
		if p.DispatchW.Dim(0) != p.Slots() || p.DispatchW.Dim(1) != tokens {
			return fmt.Errorf("moe: dense dispatch shape %v, want (%d,%d)", p.DispatchW.Shape(), p.Slots(), tokens)
		}
		if p.CombineW.Dim(0) != tokens || p.CombineW.Dim(1) != p.Slots() {
			return fmt.Errorf("moe: dense combine shape %v, want (%d,%d)", p.CombineW.Shape(), tokens, p.Slots())
		}
		return nil
	}
	if len(p.SlotToken) != p.Experts || len(p.SlotWeight) != p.Experts {
		return fmt.Errorf("moe: plan has %d/%d expert rows, want %d", len(p.SlotToken), len(p.SlotWeight), p.Experts)
	}
	for e := range p.SlotToken {
		if len(p.SlotToken[e]) != p.Capacity || len(p.SlotWeight[e]) != p.Capacity {
			return fmt.Errorf("moe: expert %d has %d slots, want %d", e, len(p.SlotToken[e]), p.Capacity)
		}
		for s, tok := range p.SlotToken[e] {
			if tok < -1 || tok >= tokens {
				return fmt.Errorf("moe: expert %d slot %d references token %d of %d", e, s, tok, tokens)
			}
			if tok == -1 && p.SlotWeight[e][s] != 0 {
				return fmt.Errorf("moe: empty slot (%d,%d) has weight %v", e, s, p.SlotWeight[e][s])
			}
		}
	}
	return nil
}

// Capacity computes T = k·f·(tokens)/E rounded up (§2.1). A factor of 0
// encodes the paper's f=∗ ("tokens will not be dropped"), for which the
// caller must size capacity to the realized maximum load via CapacityNoDrop.
func CapacityFor(tokens, e, k int, factor float64) int {
	if factor <= 0 {
		return 0
	}
	t := int(factor * float64(k) * float64(tokens) / float64(e))
	if t < 1 {
		t = 1
	}
	return t
}

// assignment is one (token, choice) routing decision prior to capacity
// resolution.
type assignment struct {
	token  int
	expert int
	weight float64
	choice int // rank of this choice for the token (0 = best)
}

// buildHardPlan packs assignments into slots in token order, dropping
// over-capacity assignments, which is the standard GShard capacity
// semantics. capacity <= 0 means f=∗: the capacity becomes the realized
// maximum expert load (no drops).
func buildHardPlan(tokens, experts, capacity int, asg []assignment) *DispatchPlan {
	load := make([]int, experts)
	for _, a := range asg {
		load[a.expert]++
	}
	if capacity <= 0 {
		capacity = 1
		for _, l := range load {
			if l > capacity {
				capacity = l
			}
		}
	}
	p := &DispatchPlan{Experts: experts, Capacity: capacity}
	p.SlotToken = make([][]int, experts)
	p.SlotWeight = make([][]float64, experts)
	next := make([]int, experts)
	for e := 0; e < experts; e++ {
		p.SlotToken[e] = make([]int, capacity)
		for s := range p.SlotToken[e] {
			p.SlotToken[e][s] = -1
		}
		p.SlotWeight[e] = make([]float64, capacity)
	}
	for _, a := range asg {
		e := a.expert
		if next[e] >= capacity {
			p.Dropped++
			continue
		}
		p.SlotToken[e][next[e]] = a.token
		p.SlotWeight[e][next[e]] = a.weight
		next[e]++
	}
	return p
}

// slotsOf returns, for each token, the (expert, slot) positions it was
// assigned to — the reverse index gates need in their backward pass.
func (p *DispatchPlan) slotsOf(tokens int) [][][2]int {
	out := make([][][2]int, tokens)
	for e := range p.SlotToken {
		for s, tok := range p.SlotToken[e] {
			if tok >= 0 {
				out[tok] = append(out[tok], [2]int{e, s})
			}
		}
	}
	return out
}

package topology

import "repro/internal/sim"

// OpKind identifies a modelled operation for costing and breakdown
// aggregation. The names mirror the paper's task legend in Fig. 3 and
// alias the canonical sim vocabulary (sim/vocab.go) where they coincide.
type OpKind string

const (
	OpA2A     OpKind = sim.KindAlltoAll      // hierarchical (2DH) AlltoAll, inter-node
	OpA2AFlat OpKind = "AlltoAll-flat"       // direct NCCL AlltoAll (DeepSpeed-MoE)
	OpAG      OpKind = sim.KindAllGather     // ESP-AllGather, intra-node
	OpRS      OpKind = sim.KindReduceScatter // ESP-ReduceScatter, intra-node
	OpAR      OpKind = sim.KindAllReduce     // Gradient-AllReduce, inter-node
	OpGEMM    OpKind = "GEMM"                // expert / attention compute
)

// Cost returns the ground-truth duration in milliseconds for an operation
// of the given size (bytes for collectives, MACs for GEMM) under the
// cluster's linear model. Zero-sized operations cost nothing: the schedule
// builders rely on that to elide absent tasks rather than paying startup
// for them.
func (c *Cluster) Cost(kind OpKind, n float64) float64 {
	if n <= 0 {
		return 0
	}
	switch kind {
	case OpA2A:
		return c.AlphaA2A + n*c.BetaA2A
	case OpAG:
		return c.AlphaAG + n*c.BetaAG
	case OpRS:
		return c.AlphaRS + n*c.BetaRS
	case OpAR:
		return c.AlphaAR + n*c.BetaAR
	case OpGEMM:
		return c.AlphaGEMM + n*c.BetaGEMM
	case OpA2AFlat:
		// Callers should use CostFlatA2A to supply the peer count; with no
		// information, assume the full inter-node span.
		return c.CostFlatA2A(n, c.Nodes)
	default:
		panic("topology: unknown op kind " + string(kind))
	}
}

// CostFlatA2A models the direct (single-phase) AlltoAll used by
// DeepSpeed-MoE: every rank opens a send to each of the peers-1 others, so
// startup grows linearly with the group size, and link utilization is worse
// than the hierarchical algorithm by FlatA2ABWPenalty. Tutel's 2DH
// algorithm (our OpA2A) replaces this with two node-local phases, which is
// why the paper's DS-MoE gap widens with cluster size (Figs. 6–7).
func (c *Cluster) CostFlatA2A(n float64, peers int) float64 {
	if n <= 0 {
		return 0
	}
	if peers < 1 {
		peers = 1
	}
	penalty := c.FlatA2ABWPenalty * (1 + c.FlatA2ACongestion*float64(peers-1))
	return c.AlphaA2A + float64(peers-1)*c.FlatA2AAlphaPeer + n*c.BetaA2A*penalty
}

// Measured returns Cost with a small deterministic pseudo-noise applied,
// standing in for run-to-run jitter of a real microbenchmark. The noise is
// a pure function of (cluster, kind, n), so experiments are reproducible.
func (c *Cluster) Measured(kind OpKind, n float64) float64 {
	t := c.Cost(kind, n)
	return t * (1 + c.noise(kind, n))
}

// MeasuredFlatA2A is the noisy counterpart of CostFlatA2A.
func (c *Cluster) MeasuredFlatA2A(n float64, peers int) float64 {
	t := c.CostFlatA2A(n, peers)
	return t * (1 + c.noise(OpA2AFlat, n+float64(peers)))
}

// noise returns a deterministic value in [-NoiseAmp, +NoiseAmp].
func (c *Cluster) noise(kind OpKind, n float64) float64 {
	if c.NoiseAmp == 0 {
		return 0
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, b := range []byte(c.Name) {
		mix(b)
	}
	for _, b := range []byte(kind) {
		mix(b)
	}
	u := uint64(n)
	for i := 0; i < 8; i++ {
		mix(byte(u >> (8 * i)))
	}
	// Map to [0,1) then to [-amp, +amp].
	f := float64(h>>11) / (1 << 53)
	return c.NoiseAmp * (2*f - 1)
}

package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []*Cluster{TestbedA(), TestbedB()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestPresetGeometry(t *testing.T) {
	a := TestbedA()
	if a.TotalGPUs() != 48 || a.Nodes != 6 || a.GPUsPerNode != 8 {
		t.Fatalf("Testbed A geometry wrong: %d nodes × %d", a.Nodes, a.GPUsPerNode)
	}
	b := TestbedB()
	if b.TotalGPUs() != 32 || b.Nodes != 8 || b.GPUsPerNode != 4 {
		t.Fatalf("Testbed B geometry wrong: %d nodes × %d", b.Nodes, b.GPUsPerNode)
	}
}

func TestCostLinearity(t *testing.T) {
	c := TestbedA()
	for _, kind := range []OpKind{OpA2A, OpAG, OpRS, OpAR, OpGEMM} {
		t1 := c.Cost(kind, 1e6)
		t2 := c.Cost(kind, 2e6)
		alpha := 2*t1 - t2 // for a linear model, 2(α+βn) - (α+2βn) = α
		var wantAlpha float64
		switch kind {
		case OpA2A:
			wantAlpha = c.AlphaA2A
		case OpAG:
			wantAlpha = c.AlphaAG
		case OpRS:
			wantAlpha = c.AlphaRS
		case OpAR:
			wantAlpha = c.AlphaAR
		case OpGEMM:
			wantAlpha = c.AlphaGEMM
		}
		if math.Abs(alpha-wantAlpha) > 1e-9 {
			t.Errorf("%s: recovered alpha %v, want %v", kind, alpha, wantAlpha)
		}
	}
}

func TestZeroSizeCostsNothing(t *testing.T) {
	c := TestbedB()
	for _, kind := range []OpKind{OpA2A, OpAG, OpRS, OpAR, OpGEMM, OpA2AFlat} {
		if got := c.Cost(kind, 0); got != 0 {
			t.Errorf("Cost(%s, 0) = %v, want 0", kind, got)
		}
	}
	if c.CostFlatA2A(0, 8) != 0 {
		t.Error("CostFlatA2A(0) should be 0")
	}
}

func TestFlatA2ASlowerThanHierarchical(t *testing.T) {
	for _, c := range []*Cluster{TestbedA(), TestbedB()} {
		for _, n := range []float64{1e5, 1e6, 1e7} {
			flat := c.CostFlatA2A(n, c.Nodes)
			hier := c.Cost(OpA2A, n)
			if flat <= hier {
				t.Errorf("%s n=%g: flat %v should exceed hierarchical %v", c.Name, n, flat, hier)
			}
		}
	}
}

func TestFlatA2AGrowsWithPeers(t *testing.T) {
	c := TestbedA()
	prev := 0.0
	for peers := 1; peers <= 8; peers++ {
		cur := c.CostFlatA2A(1e6, peers)
		if cur < prev {
			t.Fatalf("flat A2A not monotone in peers at %d", peers)
		}
		prev = cur
	}
}

func TestMeasuredNoiseBoundedAndDeterministic(t *testing.T) {
	c := TestbedA()
	f := func(raw uint64) bool {
		n := float64(raw%1_000_000_000) + 1
		for _, kind := range []OpKind{OpA2A, OpAG, OpRS, OpAR, OpGEMM} {
			ideal := c.Cost(kind, n)
			m1 := c.Measured(kind, n)
			m2 := c.Measured(kind, n)
			if m1 != m2 {
				return false // must be deterministic
			}
			if math.Abs(m1-ideal) > ideal*c.NoiseAmp*1.0001 {
				return false // must be bounded
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseVaries(t *testing.T) {
	c := TestbedA()
	// Not all noise draws should be identical; check a spread exists.
	distinct := map[float64]bool{}
	for i := 1; i <= 50; i++ {
		n := float64(i) * 1e5
		distinct[c.Measured(OpA2A, n)/c.Cost(OpA2A, n)] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("noise looks degenerate: %d distinct ratios", len(distinct))
	}
}

func TestIntraVsInterOrdering(t *testing.T) {
	// The premise of §4: per byte, intra-node collectives are faster than
	// inter-node ones on both testbeds (NVLink or PCIe vs the NIC).
	for _, c := range []*Cluster{TestbedA(), TestbedB()} {
		if c.BetaAG >= c.BetaA2A {
			t.Errorf("%s: beta_ag %v should undercut beta_a2a %v", c.Name, c.BetaAG, c.BetaA2A)
		}
		if c.BetaRS >= c.BetaA2A {
			t.Errorf("%s: beta_rs %v should undercut beta_a2a %v", c.Name, c.BetaRS, c.BetaA2A)
		}
		if c.BetaAR < c.BetaA2A {
			t.Errorf("%s: allreduce should be the most expensive per byte", c.Name)
		}
		if c.IIOContention < 0 || c.IIOContention > 1 {
			t.Errorf("%s: contention %v outside [0,1]", c.Name, c.IIOContention)
		}
	}
}

func TestWithGPUs(t *testing.T) {
	a := TestbedA()
	small := a.WithGPUs(16)
	if small.Nodes != 2 || small.GPUsPerNode != 8 || small.TotalGPUs() != 16 {
		t.Fatalf("WithGPUs(16): %+v", small)
	}
	if a.Nodes != 6 {
		t.Fatal("WithGPUs must not mutate the receiver")
	}
}

func TestWithGPUsPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TestbedA().WithGPUs(17)
}

func TestCanonicalScenario(t *testing.T) {
	s, err := CanonicalScenario(TestbedA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NMP != 8 || s.NESP != 8 || s.NEP != 6 || s.NPP != 1 {
		t.Fatalf("scenario = %+v", s)
	}
	if !s.IntraNode(s.NESP) {
		t.Error("ESP group must be intra-node in the canonical scenario")
	}
	if s.IntraNode(s.NEP * s.Cluster.GPUsPerNode) {
		t.Error("EP span must be inter-node")
	}
}

func TestCanonicalScenarioWithPP(t *testing.T) {
	s, err := CanonicalScenario(TestbedA(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NPP != 2 || s.NEP != 3 {
		t.Fatalf("scenario with PP = %+v", s)
	}
	if _, err := CanonicalScenario(TestbedA(), 5); err == nil {
		t.Fatal("6 nodes with NPP=5 should error")
	}
}

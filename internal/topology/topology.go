// Package topology describes the GPU clusters the paper evaluates on
// (Table 3) as cost-model presets for the discrete-event simulator.
//
// The paper's scheduler never sees hardware directly: it sees linear
// performance models t = α + β·n fitted from microbenchmarks (§4.1, Fig. 5).
// We therefore define each testbed by exactly those coefficients — taken
// from the paper's own fitted values in the Fig. 5 caption — and let the
// simulator draw "measured" durations from them (plus small deterministic
// noise, so that the profiling/fitting pipeline in internal/perfmodel has
// real work to do).
//
// Units everywhere: milliseconds and bytes. GEMM workload is measured in
// multiply-accumulate operations (MACs).
package topology

import "fmt"

// Cluster is a testbed preset.
type Cluster struct {
	Name        string
	Nodes       int
	GPUsPerNode int

	// GEMM cost: t = AlphaGEMM + macs*BetaGEMM (ms, MACs).
	AlphaGEMM, BetaGEMM float64

	// Collective costs for the canonical placement of §4 (MP and ESP
	// groups sized to one node; EP and DP spanning nodes):
	//   AlltoAll (inter-node), AllGather / ReduceScatter (intra-node),
	//   AllReduce (inter-node gradient sync).
	// t = Alpha + bytes*Beta (ms, bytes). These are the Fig. 5 fits.
	AlphaA2A, BetaA2A float64
	AlphaAG, BetaAG   float64
	AlphaRS, BetaRS   float64
	AlphaAR, BetaAR   float64

	// Flat (single-phase, per-peer) AlltoAll penalty, used to model the
	// NCCL direct algorithm DeepSpeed-MoE runs versus the hierarchical
	// 2DH algorithm of Tutel/FSMoE. Each extra peer adds FlatA2AAlphaPeer
	// of startup; bandwidth utilization drops by FlatA2ABWPenalty and
	// degrades further by FlatA2ACongestion per extra peer (many small
	// concurrent flows underutilize the NICs — the effect behind the
	// paper's widening DS-MoE gap at larger P and L, Figs. 6–7).
	FlatA2AAlphaPeer  float64
	FlatA2ABWPenalty  float64
	FlatA2ACongestion float64

	// IIOContention is the fractional slowdown intra-node collectives
	// suffer when deliberately overlapped with inter-node traffic (FSMoE's
	// IIO schedule): NCCL kernels contend for SMs, and on PCIe-only hosts
	// (Testbed B) the NIC shares the PCIe fabric with GPU peer-to-peer
	// traffic. Calibrated so the IIO ablation gap matches Table 5
	// (FSMoE-No-IIO → FSMoE ≈ +5%).
	IIOContention float64

	// NoiseAmp is the relative amplitude of the deterministic measurement
	// noise applied by the simulator (e.g. 0.02 = ±2%).
	NoiseAmp float64
}

// TotalGPUs returns Nodes*GPUsPerNode.
func (c *Cluster) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// Validate reports configuration errors.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("topology: cluster %q must have positive nodes and gpus per node", c.Name)
	}
	if c.BetaGEMM <= 0 || c.BetaA2A <= 0 || c.BetaAG <= 0 || c.BetaRS <= 0 || c.BetaAR <= 0 {
		return fmt.Errorf("topology: cluster %q has non-positive beta coefficients", c.Name)
	}
	return nil
}

// TestbedA models the paper's 48-GPU cluster: 6 nodes × 8 RTX A6000,
// NVLink intra-node, 200 Gb/s InfiniBand inter-node (Table 3). GEMM,
// AlltoAll and AllReduce coefficients are the paper's own Fig. 5(a)/(b)
// fits. The intra-node AllGather/ReduceScatter β is calibrated to NVLink
// (~50 GB/s effective per GPU) so that a GPT2-XL layer reproduces the
// Table 2 breakdown — the Fig. 5 caption's cluster-wide AG/RS fits are
// mutually inconsistent with Table 2 and with §4.2's t_ag ≈ t_rs
// assumption (see DESIGN.md).
func TestbedA() *Cluster {
	return &Cluster{
		Name:        "A",
		Nodes:       6,
		GPUsPerNode: 8,
		AlphaGEMM:   4.26e-2, BetaGEMM: 2.29e-11,
		AlphaA2A: 2.87e-1, BetaA2A: 2.21e-7,
		AlphaAG: 3.37e-1, BetaAG: 2.00e-8,
		AlphaRS: 3.95e-1, BetaRS: 2.05e-8,
		AlphaAR: 5.11e-1, BetaAR: 4.95e-7,
		FlatA2AAlphaPeer:  2.0e-2,
		FlatA2ABWPenalty:  1.8,
		FlatA2ACongestion: 0.08,
		IIOContention:     0.9,
		NoiseAmp:          0.02,
	}
}

// TestbedB models the paper's 32-GPU cluster: 8 nodes × 4 RTX 2080Ti, PCIe
// 3.0 intra-node (no NVLink), 100 Gb/s InfiniBand inter-node (Table 3),
// with the Fig. 5(c)/(d) fitted coefficients.
func TestbedB() *Cluster {
	return &Cluster{
		Name:        "B",
		Nodes:       8,
		GPUsPerNode: 4,
		AlphaGEMM:   9.24e-2, BetaGEMM: 4.42e-11,
		AlphaA2A: 1.75e-1, BetaA2A: 3.06e-7,
		AlphaAG: 3.20e-2, BetaAG: 1.68e-7,
		AlphaRS: 3.91e-2, BetaRS: 1.67e-7,
		AlphaAR: 8.37e-2, BetaAR: 5.99e-7,
		FlatA2AAlphaPeer:  1.5e-2,
		FlatA2ABWPenalty:  1.8,
		FlatA2ACongestion: 0.08,
		IIOContention:     0.80, // NIC and GPU p2p share the PCIe fabric on 2080Ti hosts
		NoiseAmp:          0.02,
	}
}

// Note on TestbedA's AlphaAR/BetaAR: the paper prints α_ar=5.11e-1,
// β_ar=4.95e-6 for Testbed A. A β_ar ten times β_a2a is inconsistent with
// both the Fig. 5(a) plot (AllReduce stays inside a 25 ms axis at 1.5e7
// bytes) and with Testbed B, where β_ar/β_a2a ≈ 2. We keep the ratio
// observed on Testbed B (≈2.2×) and use 4.95e-7; DESIGN.md records the
// substitution.

// WithGPUs returns a copy of c resized to total GPUs, keeping GPUsPerNode.
// It is used by the Fig. 7 sweep (P ∈ {16, 32, 48} on Testbed A).
func (c *Cluster) WithGPUs(total int) *Cluster {
	if total%c.GPUsPerNode != 0 {
		panic(fmt.Sprintf("topology: %d GPUs not divisible by %d per node", total, c.GPUsPerNode))
	}
	out := *c
	out.Nodes = total / c.GPUsPerNode
	out.Name = fmt.Sprintf("%s-%dGPU", c.Name, total)
	return &out
}

// Scenario describes a parallelism layout on a cluster in the terms of §4:
// MP and ESP groups aligned to a node, EP across nodes, DP across the rest.
type Scenario struct {
	Cluster *Cluster
	NMP     int // workers per model-parallel group
	NESP    int // workers per expert-sharding group
	NEP     int // workers per expert-parallel group
	NDP     int // workers per data-parallel group
	NPP     int // pipeline-parallel stages
}

// CanonicalScenario builds the common case the paper optimizes
// (§4: N_MP = N_ESP = GPUs per node, N_EP = number of nodes) for the given
// cluster, with optional pipeline parallelism.
func CanonicalScenario(c *Cluster, npp int) (*Scenario, error) {
	if npp <= 0 {
		npp = 1
	}
	if c.Nodes%npp != 0 {
		return nil, fmt.Errorf("topology: %d nodes not divisible by NPP=%d", c.Nodes, npp)
	}
	nodesPerStage := c.Nodes / npp
	s := &Scenario{
		Cluster: c,
		NMP:     c.GPUsPerNode,
		NESP:    c.GPUsPerNode,
		NEP:     nodesPerStage,
		NDP:     nodesPerStage, // every node holds one DP replica of each expert shard group
		NPP:     npp,
	}
	return s, nil
}

// IntraNode reports whether a group of size g fits inside one node, which
// is what makes its collectives intra-node traffic (§2.2).
func (s *Scenario) IntraNode(g int) bool { return g <= s.Cluster.GPUsPerNode }

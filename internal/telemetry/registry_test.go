package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("steps") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("overlap")
	g.Set(1.75)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge = %v, want 1.75", got)
	}

	h := r.Histogram("lat", []float64{10, 1, 5}) // unsorted on purpose
	for _, v := range []float64{0.5, 1, 3, 5, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("hist count = %d, want 6", got)
	}
	if got, want := h.Sum(), 116.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("hist sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	// Buckets: <=1 (0.5, 1), <=5 (3, 5), <=10 (7), overflow (100).
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if hs.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], n, hs.Counts)
		}
	}
	if snap.Counters["steps"] != 5 || snap.Gauges["overlap"] != 1.75 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

// TestRegistryConcurrent hammers one instrument set from many goroutines
// under -race, with concurrent snapshots.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h", StepMSBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 100))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}

// TestInstrumentsZeroAlloc is the hot-path contract: once handles are
// resolved, Add/Set/Observe allocate nothing.
func TestInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", StepMSBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.2)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("instrument ops allocated %v times per run, want 0", n)
	}
}

// TestRegistrySinkZeroAlloc: OnStep with pre-resolved handles must not
// allocate either — it runs once per training step on the stepping
// goroutine.
func TestRegistrySinkZeroAlloc(t *testing.T) {
	r := NewRegistry()
	s := NewRegistrySink(r)
	m := &StepMetrics{
		ForwardMS: 3, BackwardMS: 5, TailMS: 1,
		Retries: 2, Faults: 1,
		OverlapRatio: 1.5, ExpertEntropy: 0.9, ExpertImbalance: 1.3,
		ExpertTokens: [][]int{{10, 20, 30, 40}},
	}
	if n := testing.AllocsPerRun(100, func() { s.OnStep(m) }); n != 0 {
		t.Fatalf("RegistrySink.OnStep allocated %v times per run, want 0", n)
	}
	if got := r.Counter("step_total").Value(); got < 100 {
		t.Fatalf("steps counter = %d, want >= 100", got)
	}
}

func TestRegistryExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(0.5)
	var snap Snapshot
	if err := json.Unmarshal([]byte(r.String()), &snap); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if snap.Counters["a"] != 2 || snap.Gauges["b"] != 0.5 {
		t.Fatalf("round-tripped snapshot mismatch: %+v", snap)
	}
}

func TestLoadStats(t *testing.T) {
	// Uniform load: entropy 1, imbalance 1.
	e, im := LoadStats([][]int{{5, 5, 5, 5}})
	if math.Abs(e-1) > 1e-12 || math.Abs(im-1) > 1e-12 {
		t.Fatalf("uniform: entropy=%v imbalance=%v, want 1, 1", e, im)
	}
	// Fully skewed: entropy 0, imbalance = n.
	e, im = LoadStats([][]int{{12, 0, 0, 0}})
	if math.Abs(e) > 1e-12 || math.Abs(im-4) > 1e-12 {
		t.Fatalf("skewed: entropy=%v imbalance=%v, want 0, 4", e, im)
	}
	// Skew must rank below uniform, above degenerate.
	mid, _ := LoadStats([][]int{{8, 2, 1, 1}})
	if !(mid > 0 && mid < 1) {
		t.Fatalf("mid entropy = %v, want in (0,1)", mid)
	}
	// Empty and all-zero distributions are defined as (0, 0).
	if e, im = LoadStats(nil); e != 0 || im != 0 {
		t.Fatalf("empty: got (%v, %v)", e, im)
	}
	if e, im = LoadStats([][]int{{0, 0}}); e != 0 || im != 0 {
		t.Fatalf("zeros: got (%v, %v)", e, im)
	}
	// Single expert: entropy defined as 1 (trivially balanced).
	if e, im = LoadStats([][]int{{7}}); e != 1 || im != 1 {
		t.Fatalf("single: got (%v, %v)", e, im)
	}
}

func TestStepMetricsFinalize(t *testing.T) {
	m := &StepMetrics{ForwardMS: 4, BackwardMS: 6}
	m.SerialMS = 15
	m.StreamBusyMS = map[string]float64{"compute:0": 10, "inter": 5}
	m.AddExpertLoad([]int{3, 1})
	m.Finalize()
	if math.Abs(m.OverlapRatio-1.5) > 1e-12 {
		t.Fatalf("overlap = %v, want 1.5", m.OverlapRatio)
	}
	if math.Abs(m.StreamBusyFrac["compute:0"]-1.0) > 1e-12 {
		t.Fatalf("busy frac = %v, want 1.0", m.StreamBusyFrac["compute:0"])
	}
	if m.ExpertImbalance <= 1 {
		t.Fatalf("imbalance = %v, want > 1", m.ExpertImbalance)
	}
	if m.WallMS() != 10 {
		t.Fatalf("wall = %v, want 10", m.WallMS())
	}
}

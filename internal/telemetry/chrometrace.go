package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Chrome trace-event export: any sim.Trace — DES-simulated or measured by
// runtime.Plan.Execute — serializes to the trace_event JSON format that
// chrome://tracing and Perfetto load directly. Each added trace becomes
// one "process" (named track group), each stream one named "thread" row,
// each task a complete ("X") duration event with its kind as the
// category, fault/retry/straggler/skip incidents instant ("i") events on
// the failing task's row, and per-stream resource bindings thread
// metadata — so the measured plan, its contention structure and its
// incidents travel in one standard artifact instead of an ASCII Gantt.
//
// Times: sim traces are in milliseconds; trace_event wants microseconds.
// All timestamps are scaled by 1000 on export.

// chromeEvent is one trace_event entry. Only the fields the format
// requires are emitted; zero-valued optionals are dropped.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the format (the array flavor is
// its TraceEvents field alone); the object flavor lets us pin the display
// unit.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceBuilder accumulates traces for one export. The zero value is
// ready to use.
type ChromeTraceBuilder struct {
	events []chromeEvent
	pids   int
}

// Len returns the number of events accumulated so far.
func (b *ChromeTraceBuilder) Len() int { return len(b.events) }

// AddTrace appends one trace as a new process named name. Streams become
// threads in sorted-name order; tasks carry their kind as the category
// and their label as the event name; trace events (fault/retry/straggler/
// skip incidents) become thread-scoped instant events at their recorded
// time; resource bindings annotate the owning thread's name and args.
func (b *ChromeTraceBuilder) AddTrace(name string, tr *sim.Trace) {
	if tr == nil {
		return
	}
	pid := b.pids
	b.pids++
	b.events = append(b.events, chromeEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": name},
	})

	// Stable thread ids: streams in sorted order, starting at 1 (tid 0
	// renders oddly in some viewers).
	streams := map[string]bool{}
	for _, iv := range tr.Intervals {
		streams[iv.Task.Stream] = true
	}
	for _, ev := range tr.Events {
		streams[ev.Stream] = true
	}
	names := make([]string, 0, len(streams))
	for s := range streams {
		names = append(names, s)
	}
	sort.Strings(names)
	tids := make(map[string]int, len(names))
	for i, s := range names {
		tid := i + 1
		tids[s] = tid
		threadName := s
		args := map[string]any{}
		if r, ok := tr.Resources[s]; ok {
			threadName = fmt.Sprintf("%s (workers=%d", s, r.Workers)
			if r.Pinned {
				threadName += ", pinned"
			}
			threadName += ")"
			args["workers"] = r.Workers
			args["pinned"] = r.Pinned
		}
		b.events = append(b.events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": threadName},
		})
		if len(args) > 0 {
			b.events = append(b.events, chromeEvent{
				Name: "stream resources", Phase: "i", TS: 0, PID: pid, TID: tid,
				Scope: "t", Args: args,
			})
		}
	}

	for _, iv := range tr.Intervals {
		dur := (iv.Finish - iv.Start) * 1e3
		ev := chromeEvent{
			Name:  iv.Task.Label,
			Cat:   iv.Task.Kind,
			Phase: "X",
			TS:    iv.Start * 1e3,
			Dur:   &dur,
			PID:   pid,
			TID:   tids[iv.Task.Stream],
		}
		if ev.Name == "" {
			ev.Name = fmt.Sprintf("task %d", iv.Task.ID)
		}
		if len(iv.Task.Deps) > 0 {
			ev.Args = map[string]any{"task_id": iv.Task.ID, "deps": iv.Task.Deps}
		} else {
			ev.Args = map[string]any{"task_id": iv.Task.ID}
		}
		b.events = append(b.events, ev)
	}

	for _, ev := range tr.Events {
		b.events = append(b.events, chromeEvent{
			Name:  fmt.Sprintf("%s: %s", ev.Type, ev.Label),
			Cat:   ev.Type,
			Phase: "i",
			TS:    ev.AtMS * 1e3,
			PID:   pid,
			TID:   tids[ev.Stream],
			Scope: "t",
			Args:  map[string]any{"kind": ev.Kind, "attempt": ev.Attempt, "detail": ev.Detail},
		})
	}
}

// MarshalJSON serializes the accumulated traces as a trace_event document
// (object flavor, displayTimeUnit=ms).
func (b *ChromeTraceBuilder) MarshalJSON() ([]byte, error) {
	doc := chromeDoc{TraceEvents: b.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	return json.MarshalIndent(doc, "", " ")
}

// WriteTo serializes the accumulated traces to w. It implements
// io.WriterTo.
func (b *ChromeTraceBuilder) WriteTo(w io.Writer) (int64, error) {
	data, err := b.MarshalJSON()
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ChromeTraceJSON is the one-shot convenience: a single trace exported
// under the given track name.
func ChromeTraceJSON(name string, tr *sim.Trace) ([]byte, error) {
	var b ChromeTraceBuilder
	b.AddTrace(name, tr)
	return b.MarshalJSON()
}

package telemetry

import (
	"math"

	"repro/internal/sim"
)

// StepMetrics is the structured record of one training step over a World
// stack — the machine-readable counterpart of the bench tables, emitted
// to the configured Sink after every step and attached to the step
// result. Every field derives from quantities the step already measured
// (traces, routing plans, sync report, resource plan); nothing here adds
// instrumentation to the execution hot path.
type StepMetrics struct {
	// Identity of the executing configuration.
	Step      int    `json:"step"`   // 0-based step ordinal on this stack
	Ranks     int    `json:"ranks"`  // R
	Layers    int    `json:"layers"` // stack depth
	Strategy  string `json:"strategy"`
	GroupSize int    `json:"group_size,omitempty"` // hybrid g (0 otherwise)
	DegreeFwd int    `json:"degree_fwd"`           // forward pipeline degree r
	DegreeBwd int    `json:"degree_bwd"`

	// Wall-time decomposition (ms, measured).
	ForwardMS  float64 `json:"forward_ms"`  // summed forward-plan makespans
	BackwardMS float64 `json:"backward_ms"` // summed backward-plan makespans (hidden AllReduce included)
	TailMS     float64 `json:"tail_ms"`     // exposed Gradient-AllReduce tail (§5)

	// Overlap: SerialMS is the summed duration of every measured task
	// interval across the step's stream plans — what a no-overlap executor
	// would have spent — and OverlapRatio is SerialMS over the pipelined
	// wall (ForwardMS+BackwardMS): 1.0 means no overlap was realized,
	// values above 1 count how many streams' worth of work ran
	// concurrently on average.
	SerialMS     float64 `json:"serial_ms"`
	OverlapRatio float64 `json:"overlap_ratio"`

	// Per-stream busy time (ms) summed across the step's measured traces,
	// and the busy fraction of the pipelined wall.
	StreamBusyMS   map[string]float64 `json:"stream_busy_ms,omitempty"`
	StreamBusyFrac map[string]float64 `json:"stream_busy_frac,omitempty"`

	// Routing load (the FlexMoE signal): ExpertTokens[l][e] is the number
	// of real tokens the forward pass routed to layer l's expert e
	// (capacity-padded slots excluded), ExpertEntropy the normalized
	// utilization entropy of the pooled distribution in [0,1] (1 =
	// perfectly balanced), ExpertImbalance the max/mean load factor
	// (1 = balanced; FlexMoE's re-placement trigger), and DroppedTokens
	// the (token, choice) assignments lost to capacity overflow.
	ExpertTokens    [][]int `json:"expert_tokens,omitempty"`
	ExpertEntropy   float64 `json:"expert_entropy"`
	ExpertImbalance float64 `json:"expert_imbalance"`
	DroppedTokens   int     `json:"dropped_tokens"`

	// Fault-tolerance incidents observed across the step's measured
	// traces, plus degraded-mode passes (internal/fault, PR 6).
	Faults         int `json:"faults"`
	Retries        int `json:"retries"`
	Stragglers     int `json:"stragglers"`
	Skips          int `json:"skips"`
	DegradedPasses int `json:"degraded_passes"`

	// Elastic-recovery events completed since the previous step (PR 10):
	// how many worlds rebuilt around a permanent rank loss, and the summed
	// rebuild wall time — the step-level MTTR signal.
	Recoveries int     `json:"recoveries,omitempty"`
	RecoveryMS float64 `json:"recovery_ms,omitempty"`

	// Resource plan occupancy (PR 5): the planned per-compute-stream
	// worker share and the shared communication staging allotment.
	ComputeWorkers int `json:"compute_workers"`
	CommWorkers    int `json:"comm_workers"`

	// Gradient-sync accounting (§5): bytes hidden inside backward plans
	// vs bytes left to the exposed tail.
	SyncHiddenBytes float64 `json:"sync_hidden_bytes"`
	SyncTailBytes   float64 `json:"sync_tail_bytes"`
}

// WallMS is the step's full measured wall time: backward plus the exposed
// tail plus forward (forward is reported separately in the §5 tables
// because gradient synchronization never touches it, but the wall a user
// waits for includes it).
func (m *StepMetrics) WallMS() float64 { return m.ForwardMS + m.BackwardMS + m.TailMS }

// AddTrace folds one measured trace's intervals and incident events into
// the serial-time, per-stream-busy and fault tallies. Call once per
// stream plan the step executed, then Finalize.
func (m *StepMetrics) AddTrace(tr *sim.Trace) {
	if tr == nil {
		return
	}
	if m.StreamBusyMS == nil {
		m.StreamBusyMS = make(map[string]float64)
	}
	for _, iv := range tr.Intervals {
		d := iv.Finish - iv.Start
		m.SerialMS += d
		m.StreamBusyMS[iv.Task.Stream] += d
	}
	for _, ev := range tr.Events {
		switch ev.Type {
		case sim.EventFault:
			m.Faults++
		case sim.EventRetry:
			m.Retries++
		case sim.EventStraggler:
			m.Stragglers++
		case sim.EventSkip:
			m.Skips++
		}
	}
}

// AddExpertLoad appends one layer's per-expert routed token counts.
func (m *StepMetrics) AddExpertLoad(tokens []int) {
	m.ExpertTokens = append(m.ExpertTokens, tokens)
}

// Finalize computes the derived statistics — overlap ratio, busy
// fractions, load entropy and imbalance — from the accumulated raw
// tallies. Call after every AddTrace/AddExpertLoad.
func (m *StepMetrics) Finalize() {
	if wall := m.ForwardMS + m.BackwardMS; wall > 0 {
		m.OverlapRatio = m.SerialMS / wall
		m.StreamBusyFrac = make(map[string]float64, len(m.StreamBusyMS))
		for s, busy := range m.StreamBusyMS {
			m.StreamBusyFrac[s] = busy / wall
		}
	}
	m.ExpertEntropy, m.ExpertImbalance = LoadStats(m.ExpertTokens)
}

// LoadStats computes the normalized utilization entropy (in [0,1], 1 =
// uniform) and the max/mean imbalance factor (>= 1, 1 = balanced) of a
// pooled per-expert load distribution. Empty or all-zero loads report
// (0, 0) — there is no distribution to measure.
func LoadStats(layers [][]int) (entropy, imbalance float64) {
	total, n, maxLoad := 0.0, 0, 0.0
	for _, layer := range layers {
		for _, c := range layer {
			if c < 0 {
				c = 0
			}
			total += float64(c)
			n++
			if float64(c) > maxLoad {
				maxLoad = float64(c)
			}
		}
	}
	if n == 0 || total == 0 {
		return 0, 0
	}
	h := 0.0
	for _, layer := range layers {
		for _, c := range layer {
			if c <= 0 {
				continue
			}
			p := float64(c) / total
			h -= p * math.Log(p)
		}
	}
	if n > 1 {
		entropy = h / math.Log(float64(n))
	} else {
		entropy = 1
	}
	mean := total / float64(n)
	imbalance = maxLoad / mean
	return entropy, imbalance
}

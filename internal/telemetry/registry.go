package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument. All methods
// are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be any non-negative amount;
// negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value instrument. All methods are safe for concurrent
// use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently set value (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution instrument: bounds are the
// inclusive upper edges of the first len(bounds) buckets, with one
// implicit overflow bucket above the last bound. Observe is lock-free and
// allocation-free; bucket counts and the running sum are each atomically
// consistent (a concurrent Snapshot may see a count without its sum
// contribution — acceptable for monitoring, never corrupting).
type Histogram struct {
	bounds []float64 // sorted inclusive upper edges
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Registry is a named collection of instruments. Lookups take a mutex
// (call them at setup time, hold the returned handles on the hot path);
// the instruments themselves are lock-free.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper edges on first use (bounds are sorted defensively; later
// calls for an existing name ignore bounds). Empty bounds make a
// single-bucket histogram that still tracks count and sum.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnap is one histogram's point-in-time state: Counts[i] pairs
// with Bounds[i] for i < len(Bounds); the final entry is the overflow
// bucket.
type HistogramSnap struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument, sorted map keys —
// the JSON document the expvar export publishes.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot copies the current state of every instrument. It may run
// concurrently with writers; each instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.ctrs) > 0 {
		s.Counters = make(map[string]int64, len(r.ctrs))
		for name, c := range r.ctrs {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnap, len(r.hists))
		for name, h := range r.hists {
			counts := make([]int64, len(h.counts))
			for i := range h.counts {
				counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = HistogramSnap{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: counts,
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
		}
	}
	return s
}

// String renders the current snapshot as JSON, which makes *Registry an
// expvar.Var: expvar.Publish("fsmoe", registry) exposes the live registry
// on /debug/vars without this package importing net/http.
func (r *Registry) String() string {
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}

// StepMSBuckets is the default step-latency histogram edge set (ms).
var StepMSBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// LoadBuckets is the default per-expert token-load histogram edge set.
var LoadBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// RegistrySink records every StepMetrics into a Registry: step/retry/fault
// counters, last-step gauges (overlap ratio, entropy, imbalance, tail),
// a step-latency histogram and the FlexMoE per-expert load histogram
// (one Observe per expert per step). Handles are resolved once at
// construction, so OnStep itself is allocation-free.
type RegistrySink struct {
	steps, retries, faults, stragglers, skips, degraded, dropped *Counter
	overlap, entropy, imbalance, tail, wall                      *Gauge
	stepMS, load                                                 *Histogram
}

// NewRegistrySink wires a sink to r under the "step_"/"expert_" name
// prefix convention.
func NewRegistrySink(r *Registry) *RegistrySink {
	return &RegistrySink{
		steps:      r.Counter("step_total"),
		retries:    r.Counter("step_retries_total"),
		faults:     r.Counter("step_faults_total"),
		stragglers: r.Counter("step_stragglers_total"),
		skips:      r.Counter("step_skips_total"),
		degraded:   r.Counter("step_degraded_passes_total"),
		dropped:    r.Counter("step_dropped_tokens_total"),
		overlap:    r.Gauge("step_overlap_ratio"),
		entropy:    r.Gauge("expert_load_entropy"),
		imbalance:  r.Gauge("expert_load_imbalance"),
		tail:       r.Gauge("step_tail_ms"),
		wall:       r.Gauge("step_wall_ms"),
		stepMS:     r.Histogram("step_ms", StepMSBuckets),
		load:       r.Histogram("expert_load_tokens", LoadBuckets),
	}
}

// OnStep implements Sink.
func (s *RegistrySink) OnStep(m *StepMetrics) {
	s.steps.Inc()
	s.retries.Add(int64(m.Retries))
	s.faults.Add(int64(m.Faults))
	s.stragglers.Add(int64(m.Stragglers))
	s.skips.Add(int64(m.Skips))
	s.degraded.Add(int64(m.DegradedPasses))
	s.dropped.Add(int64(m.DroppedTokens))
	s.overlap.Set(m.OverlapRatio)
	s.entropy.Set(m.ExpertEntropy)
	s.imbalance.Set(m.ExpertImbalance)
	s.tail.Set(m.TailMS)
	s.wall.Set(m.WallMS())
	s.stepMS.Observe(m.WallMS())
	for _, layer := range m.ExpertTokens {
		for _, n := range layer {
			s.load.Observe(float64(n))
		}
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func testTrace() *sim.Trace {
	t0 := sim.NewTask(0, "expert 0", sim.KindExperts, sim.StreamCompute, nil)
	t1 := sim.NewTask(1, "dispatch", sim.KindAlltoAll, sim.StreamInter, []int{0})
	t2 := sim.NewTask(2, "gather", sim.KindAllGather, sim.StreamIntra, []int{0})
	tr := sim.NewTrace([]sim.Interval{
		{Task: t0, Start: 0, Finish: 2},
		{Task: t1, Start: 2, Finish: 5},
		{Task: t2, Start: 2, Finish: 4},
	}, []string{sim.StreamCompute, sim.StreamInter, sim.StreamIntra})
	tr.Resources = map[string]sim.StreamResources{
		sim.StreamCompute: {Workers: 4, Pinned: true},
		sim.StreamInter:   {Workers: 2},
	}
	tr.Events = append(tr.Events, sim.Event{
		Type: sim.EventFault, TaskID: 1, Label: "dispatch", Kind: sim.KindAlltoAll,
		Stream: sim.StreamInter, Attempt: 1, AtMS: 3.5, Detail: "injected",
	}, sim.Event{
		Type: sim.EventRetry, TaskID: 1, Label: "dispatch", Kind: sim.KindAlltoAll,
		Stream: sim.StreamInter, Attempt: 2, AtMS: 3.6, Detail: "backoff 0.1ms",
	})
	return tr
}

func TestChromeTraceExport(t *testing.T) {
	data, err := ChromeTraceJSON("realpipe rank 0", testTrace())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	threads := map[int]string{}
	var complete, instants, faults int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.TID] = ev.Args["name"].(string)
			}
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %v", ev.Name, ev.Dur)
			}
			if ev.Cat == "" {
				t.Fatalf("complete event %q has no category", ev.Name)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Fatalf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			if ev.Cat == sim.EventFault || ev.Cat == sim.EventRetry {
				faults++
			}
		}
	}
	// One thread row per stream.
	if len(threads) != 3 {
		t.Fatalf("thread rows = %d (%v), want 3 (one per stream)", len(threads), threads)
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if faults != 2 {
		t.Fatalf("fault/retry instants = %d, want 2", faults)
	}
	// Resource bindings surface in the thread name.
	found := false
	for _, name := range threads {
		if name == sim.StreamCompute+" (workers=4, pinned)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no thread carries the compute resource binding: %v", threads)
	}

	// Timestamps are µs: the 2ms task must export dur 2000.
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Name == "expert 0" && ev.Dur != 2000 {
			t.Fatalf("expert 0 dur = %v µs, want 2000", ev.Dur)
		}
	}
}

func TestChromeTraceBuilderMultiProcess(t *testing.T) {
	var b ChromeTraceBuilder
	b.AddTrace("rank 0", testTrace())
	b.AddTrace("rank 1", testTrace())
	b.AddTrace("nil is ignored", nil)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteTo output is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 processes", pids)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var b ChromeTraceBuilder
	data, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents must be an array even when empty: %s", data)
	}
}

// Package telemetry is the measurement substrate of the executable
// runtime: a lightweight metrics registry (counters, gauges, fixed-bucket
// histograms — race-safe and allocation-free on the hot path), structured
// per-step metrics emitted by the training loop, and a Chrome trace-event
// exporter that turns any sim.Trace — DES-simulated or measured — into a
// Perfetto/chrome://tracing-loadable timeline.
//
// The paper's whole argument (§3.2, §6.2) rests on measuring where a
// step's time goes; this package makes those measurements machine-readable
// per step instead of ad-hoc ASCII tables, and adds the per-expert routing
// load signal (FlexMoE) that dynamic expert placement needs.
//
// Threading and ownership: instruments returned by a Registry are shared
// handles — any goroutine may Add/Set/Observe concurrently, and Snapshot
// may run concurrently with writers (it reads atomically, not
// transactionally). A Sink is invoked synchronously from the goroutine
// that finished the step, never concurrently with itself for one World
// stack; implementations that fan out to files or sockets must do their
// own buffering. The caller owns the Sink's lifetime: nothing in this
// package retains it past the step that emitted to it.
package telemetry

// Sink consumes one structured StepMetrics record per completed training
// step. OnStep is called synchronously after the step's SGD update, from
// the stepping goroutine; the metrics value is fully formed and owned by
// the sink (the runtime never mutates it afterwards). A nil Sink on the
// World disables per-step emission entirely — the guard is a single nil
// check, so unconfigured telemetry adds no allocations to the step path.
type Sink interface {
	OnStep(m *StepMetrics)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(m *StepMetrics)

// OnStep implements Sink.
func (f SinkFunc) OnStep(m *StepMetrics) { f(m) }

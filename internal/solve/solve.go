// Package solve provides the numerical optimization routines the paper
// delegates to SciPy: a 1-D minimizer for the pipeline-degree objectives of
// §4.2 (the role SLSQP plays in Algorithm 1) and a differential-evolution
// optimizer for the gradient-partitioning problem of §5.3.
//
// All four case objectives in §4.2 have the form f(r) = a·r + b/r + c with
// a, b ≥ 0, whose unconstrained minimum over r > 0 is at r* = sqrt(b/a);
// MinimizeRational exploits that. GoldenSection handles anything unimodal,
// and Minimize1D combines both with a coarse scan so that non-unimodal
// feasibility-restricted objectives are still handled robustly.
package solve

import (
	"math"

	"repro/internal/xrand"
)

// MinimizeRational returns the r in [lo, hi] minimizing a·r + b/r + c,
// assuming a, b >= 0 and 0 < lo <= hi. The minimizer is the projection of
// sqrt(b/a) onto the interval.
func MinimizeRational(a, b, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	if a <= 0 {
		// Monotone decreasing in r (plus the b/r term): largest r wins.
		if b <= 0 {
			return lo
		}
		return hi
	}
	if b <= 0 {
		return lo
	}
	r := math.Sqrt(b / a)
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

const goldenRatio = 0.6180339887498949 // (sqrt(5)-1)/2

// GoldenSection minimizes a unimodal f over [lo, hi] to within tol and
// returns the minimizing x.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-9
	}
	a, b := lo, hi
	x1 := b - goldenRatio*(b-a)
	x2 := a + goldenRatio*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - goldenRatio*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + goldenRatio*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Minimize1D minimizes an arbitrary (possibly non-unimodal) f over
// [lo, hi]: it scans gridN points to bracket the best region, then refines
// with golden section. Returns (argmin, min).
func Minimize1D(f func(float64) float64, lo, hi float64, gridN int) (float64, float64) {
	if gridN < 3 {
		gridN = 3
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	bestX, bestF := lo, f(lo)
	step := (hi - lo) / float64(gridN-1)
	for i := 1; i < gridN; i++ {
		x := lo + float64(i)*step
		if v := f(x); v < bestF {
			bestX, bestF = x, v
		}
	}
	a := math.Max(lo, bestX-step)
	b := math.Min(hi, bestX+step)
	x := GoldenSection(f, a, b, 1e-6*(hi-lo+1))
	if v := f(x); v < bestF {
		bestX, bestF = x, v
	}
	return bestX, bestF
}

// DEOptions configures DifferentialEvolution.
type DEOptions struct {
	PopSize    int     // population size; default 15 per dimension, capped
	Gens       int     // generations; default 200
	F          float64 // differential weight; default 0.7
	CR         float64 // crossover probability; default 0.9
	Seed       uint64  // RNG seed; default 1
	TolStall   int     // stop after this many generations without improvement; 0 = never
	InitCenter []float64
}

// DifferentialEvolution minimizes obj over the box given by bounds
// (bounds[i] = {lo, hi}) using the classic DE/rand/1/bin strategy — the
// algorithm the paper adopts for gradient-partition optimization (§5.3,
// citing Price). It returns the best vector and its objective value. The
// search is fully deterministic for a fixed seed.
func DifferentialEvolution(obj func([]float64) float64, bounds [][2]float64, opt DEOptions) ([]float64, float64) {
	dim := len(bounds)
	if dim == 0 {
		return nil, obj(nil)
	}
	if opt.PopSize == 0 {
		opt.PopSize = 15 * dim
		if opt.PopSize > 120 {
			opt.PopSize = 120
		}
		if opt.PopSize < 8 {
			opt.PopSize = 8
		}
	}
	if opt.Gens == 0 {
		opt.Gens = 200
	}
	if opt.F == 0 {
		opt.F = 0.7
	}
	if opt.CR == 0 {
		opt.CR = 0.9
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	rng := xrand.New(opt.Seed)

	clamp := func(v float64, d int) float64 {
		if v < bounds[d][0] {
			return bounds[d][0]
		}
		if v > bounds[d][1] {
			return bounds[d][1]
		}
		return v
	}

	pop := make([][]float64, opt.PopSize)
	fit := make([]float64, opt.PopSize)
	for i := range pop {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.Range(bounds[d][0], bounds[d][1])
		}
		if i == 0 && opt.InitCenter != nil {
			for d := range v {
				v[d] = clamp(opt.InitCenter[d], d)
			}
		}
		pop[i] = v
		fit[i] = obj(v)
	}
	bestI := 0
	for i := 1; i < opt.PopSize; i++ {
		if fit[i] < fit[bestI] {
			bestI = i
		}
	}
	stall := 0
	trial := make([]float64, dim)
	for g := 0; g < opt.Gens; g++ {
		improved := false
		for i := 0; i < opt.PopSize; i++ {
			// Pick three distinct peers != i.
			var a, b, c int
			for {
				a = rng.Intn(opt.PopSize)
				if a != i {
					break
				}
			}
			for {
				b = rng.Intn(opt.PopSize)
				if b != i && b != a {
					break
				}
			}
			for {
				c = rng.Intn(opt.PopSize)
				if c != i && c != a && c != b {
					break
				}
			}
			jrand := rng.Intn(dim)
			for d := 0; d < dim; d++ {
				if d == jrand || rng.Float64() < opt.CR {
					trial[d] = clamp(pop[a][d]+opt.F*(pop[b][d]-pop[c][d]), d)
				} else {
					trial[d] = pop[i][d]
				}
			}
			tv := obj(trial)
			if tv <= fit[i] {
				copy(pop[i], trial)
				fit[i] = tv
				if tv < fit[bestI] {
					bestI = i
					improved = true
				}
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
			if opt.TolStall > 0 && stall >= opt.TolStall {
				break
			}
		}
	}
	best := make([]float64, dim)
	copy(best, pop[bestI])
	return best, fit[bestI]
}

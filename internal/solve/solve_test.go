package solve

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMinimizeRationalInterior(t *testing.T) {
	// f(r) = 2r + 8/r: minimum at r = 2.
	r := MinimizeRational(2, 8, 1, 10)
	if math.Abs(r-2) > 1e-12 {
		t.Fatalf("r = %v, want 2", r)
	}
}

func TestMinimizeRationalClamping(t *testing.T) {
	if r := MinimizeRational(2, 8, 3, 10); r != 3 {
		t.Fatalf("clamp low: %v", r)
	}
	if r := MinimizeRational(2, 8, 0.5, 1); r != 1 {
		t.Fatalf("clamp to hi when r* above interval: %v", r)
	}
}

func TestMinimizeRationalClampHigh(t *testing.T) {
	if r := MinimizeRational(2, 800, 1, 5); r != 5 {
		t.Fatalf("clamp high: %v", r)
	}
}

func TestMinimizeRationalDegenerate(t *testing.T) {
	if r := MinimizeRational(0, 8, 1, 5); r != 5 {
		t.Fatalf("a=0 should push to hi: %v", r)
	}
	if r := MinimizeRational(2, 0, 1, 5); r != 1 {
		t.Fatalf("b=0 should push to lo: %v", r)
	}
	if r := MinimizeRational(0, 0, 1, 5); r != 1 {
		t.Fatalf("a=b=0: %v", r)
	}
}

func TestMinimizeRationalMatchesGrid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := rng.Range(0.01, 5)
		b := rng.Range(0.01, 100)
		lo, hi := 1.0, 64.0
		r := MinimizeRational(a, b, lo, hi)
		fr := a*r + b/r
		// No grid point may beat the analytic minimum.
		for x := lo; x <= hi; x += 0.25 {
			if a*x+b/x < fr-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 3.7) * (x - 3.7) }, 0, 10, 1e-9)
	if math.Abs(x-3.7) > 1e-6 {
		t.Fatalf("x = %v, want 3.7", x)
	}
}

func TestGoldenSectionReversedBounds(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return math.Abs(x - 1) }, 5, -5, 1e-9)
	if math.Abs(x-1) > 1e-6 {
		t.Fatalf("x = %v, want 1", x)
	}
}

func TestMinimize1DNonUnimodal(t *testing.T) {
	// Two basins; global min at x = 8.
	f := func(x float64) float64 {
		return math.Min((x-2)*(x-2)+1, (x-8)*(x-8))
	}
	x, v := Minimize1D(f, 0, 10, 50)
	if math.Abs(x-8) > 1e-3 || v > 1e-6 {
		t.Fatalf("x = %v v = %v, want x=8 v=0", x, v)
	}
}

func TestDESphere(t *testing.T) {
	obj := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	}
	bounds := [][2]float64{{-5, 5}, {-5, 5}, {-5, 5}}
	best, v := DifferentialEvolution(obj, bounds, DEOptions{Seed: 3})
	if v > 1e-4 {
		t.Fatalf("DE failed on sphere: best %v value %v", best, v)
	}
}

func TestDERosenbrock(t *testing.T) {
	obj := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	best, v := DifferentialEvolution(obj, [][2]float64{{-2, 2}, {-2, 2}},
		DEOptions{Seed: 7, Gens: 400})
	if v > 1e-3 {
		t.Fatalf("DE failed on rosenbrock: best %v value %v", best, v)
	}
	if math.Abs(best[0]-1) > 0.05 || math.Abs(best[1]-1) > 0.1 {
		t.Fatalf("DE argmin %v, want (1,1)", best)
	}
}

func TestDERespectsBounds(t *testing.T) {
	obj := func(x []float64) float64 { return -x[0] - x[1] } // push to upper bounds
	best, _ := DifferentialEvolution(obj, [][2]float64{{0, 3}, {0, 7}}, DEOptions{Seed: 2})
	if best[0] > 3+1e-12 || best[1] > 7+1e-12 {
		t.Fatalf("bounds violated: %v", best)
	}
	if math.Abs(best[0]-3) > 1e-6 || math.Abs(best[1]-7) > 1e-6 {
		t.Fatalf("DE should reach the corner: %v", best)
	}
}

func TestDEDeterministic(t *testing.T) {
	obj := func(x []float64) float64 { return math.Abs(x[0] - 0.25) }
	b := [][2]float64{{0, 1}}
	x1, v1 := DifferentialEvolution(obj, b, DEOptions{Seed: 9})
	x2, v2 := DifferentialEvolution(obj, b, DEOptions{Seed: 9})
	if x1[0] != x2[0] || v1 != v2 {
		t.Fatal("DE must be deterministic for a fixed seed")
	}
}

func TestDEInitCenterUsed(t *testing.T) {
	// With a tiny budget, seeding the population with the optimum must win.
	obj := func(x []float64) float64 { return math.Abs(x[0]-0.123) + math.Abs(x[1]-0.456) }
	best, v := DifferentialEvolution(obj, [][2]float64{{0, 1}, {0, 1}},
		DEOptions{Seed: 1, Gens: 1, PopSize: 8, InitCenter: []float64{0.123, 0.456}})
	if v > 1e-12 {
		t.Fatalf("init center ignored: best %v value %v", best, v)
	}
}

func TestDEEmptyDims(t *testing.T) {
	_, v := DifferentialEvolution(func(x []float64) float64 { return 42 }, nil, DEOptions{})
	if v != 42 {
		t.Fatalf("v = %v", v)
	}
}

func TestDEStall(t *testing.T) {
	calls := 0
	obj := func(x []float64) float64 { calls++; return 1 } // flat: stalls immediately
	DifferentialEvolution(obj, [][2]float64{{0, 1}}, DEOptions{Seed: 1, TolStall: 3, Gens: 10000, PopSize: 8})
	if calls > 8+8*200 {
		t.Fatalf("stall did not stop early: %d calls", calls)
	}
}

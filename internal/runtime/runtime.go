// Package runtime executes stream-based schedules for real.
//
// It is the executable twin of internal/sim: the same mental model — a set
// of serialized streams, tasks enqueued per stream in program order, a task
// starting once its stream is free and its dependencies finished — but the
// tasks here carry closures that move real bytes and run real GEMMs, and
// the trace that comes back holds *measured* wall-clock intervals instead
// of modelled durations.
//
// A Plan is built exactly like a sim.Graph and is one artifact with two
// interpretations:
//
//   - Simulate() feeds the tasks' estimated durations through the
//     discrete-event engine and returns the predicted trace;
//   - Execute() backs every stream with a goroutine, runs the closures
//     under the enqueue-order + dependency discipline, and returns the
//     measured trace;
//   - ExecuteSequential() runs the same closures one after another on a
//     single goroutine — the no-overlap baseline that turns "pipelining
//     helps" from a simulator claim into a wall-clock measurement.
//
// Because a task's closure mutates real buffers (and parameter-gradient
// accumulators), a Plan is single-shot: build a fresh Plan per execution.
package runtime

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/sim"
)

// task is one schedulable operation: reporting metadata shared with the
// simulator plus the closure that does the real work.
type task struct {
	id     int
	label  string
	kind   string
	stream string
	est    float64 // modelled duration (ms) for Simulate
	fn     func() error
	deps   []int

	done chan struct{} // closed when the task finished (Execute only)
}

// Binding is the planned execution-resource assignment of one stream: the
// tensor-pool worker share its tasks' kernels fan out onto, and whether the
// stream's executor goroutine is pinned to an OS thread for the duration of
// Execute. The binding itself is declarative — the pool that realizes the
// worker share is threaded into the task closures by whoever builds the
// plan — but it is what the measured trace reports, so the planned split
// and the measured intervals travel together.
type Binding struct {
	// Workers is the planned tensor-pool worker share: the fan-out budget
	// of the kernels this stream's tasks run, not a cap on how many bound
	// streams execute concurrently (each stream always has its own
	// executor goroutine). 0 = unbound, shared default pool.
	Workers int
	PinOS   bool // pin the stream's executor goroutine via runtime.LockOSThread
}

// Plan is a schedule under construction: a DAG of executable tasks with
// stream assignments. Enqueue order per stream is the execution order, as
// on a CUDA stream and exactly as in sim.Graph.
type Plan struct {
	tasks    []*task
	streams  map[string][]int
	order    []string // stream names in first-use order
	bindings map[string]Binding
	executed bool
}

// NewPlan returns an empty schedule.
func NewPlan() *Plan {
	return &Plan{streams: make(map[string][]int)}
}

// BindStream records the resource binding of a stream. Execute pins bound
// streams' goroutines when requested and attaches every binding to the
// measured trace. Binding a stream that ends up with no tasks is allowed
// and reported; the last binding for a name wins.
func (p *Plan) BindStream(stream string, b Binding) {
	if p.bindings == nil {
		p.bindings = make(map[string]Binding)
	}
	p.bindings[stream] = b
}

// Bindings returns a copy of the stream resource bindings.
func (p *Plan) Bindings() map[string]Binding {
	out := make(map[string]Binding, len(p.bindings))
	for s, b := range p.bindings {
		out[s] = b
	}
	return out
}

// TaskInfo is the reporting view of one planned task.
type TaskInfo struct {
	ID     int
	Label  string
	Kind   string
	Stream string
	Est    float64 // modelled duration/volume estimate (Simulate units)
	Deps   []int
}

// Tasks returns the planned tasks in id order — the structural view
// calibration uses to pair each task's volume estimate with its measured
// duration (trace intervals expose kind and timing but not the estimate).
func (p *Plan) Tasks() []TaskInfo {
	out := make([]TaskInfo, len(p.tasks))
	for i, t := range p.tasks {
		out[i] = TaskInfo{ID: t.id, Label: t.label, Kind: t.kind, Stream: t.stream, Est: t.est, Deps: append([]int(nil), t.deps...)}
	}
	return out
}

// resources converts the bindings into the trace-attached report.
func (p *Plan) resources() map[string]sim.StreamResources {
	if len(p.bindings) == 0 {
		return nil
	}
	out := make(map[string]sim.StreamResources, len(p.bindings))
	for s, b := range p.bindings {
		out[s] = sim.StreamResources{Workers: b.Workers, Pinned: b.PinOS}
	}
	return out
}

// Add enqueues a task on a stream and returns its id. est is the modelled
// duration (ms) Simulate uses; fn is the real work Execute runs (nil is a
// zero-work marker). deps may reference only previously added tasks.
func (p *Plan) Add(label, kind, stream string, est float64, fn func() error, deps ...int) int {
	if est < 0 {
		panic(fmt.Sprintf("runtime: negative estimate for %q", label))
	}
	id := len(p.tasks)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("runtime: task %q depends on unknown task %d", label, d))
		}
	}
	t := &task{id: id, label: label, kind: kind, stream: stream, est: est, fn: fn, deps: append([]int(nil), deps...)}
	p.tasks = append(p.tasks, t)
	if _, ok := p.streams[stream]; !ok {
		p.order = append(p.order, stream)
	}
	p.streams[stream] = append(p.streams[stream], id)
	return id
}

// Len returns the number of tasks.
func (p *Plan) Len() int { return len(p.tasks) }

// Streams returns the stream names in first-use order.
func (p *Plan) Streams() []string { return append([]string(nil), p.order...) }

// Simulate runs the plan's structure through the discrete-event engine
// using the tasks' estimated durations and returns the predicted trace.
// It does not touch the closures and may be called any number of times.
func (p *Plan) Simulate() *sim.Trace {
	return p.SimulateWith(nil)
}

// SimulateWith is Simulate with per-task durations overriding the
// estimates — the hook for "predict the pipelined makespan from measured
// sequential stage times". durations[i] replaces task i's estimate; a nil
// slice keeps every estimate, and NaN-free callers may mix (negative
// entries keep the estimate).
func (p *Plan) SimulateWith(durations []float64) *sim.Trace {
	g := sim.NewGraph()
	for _, t := range p.tasks {
		d := t.est
		if durations != nil && t.id < len(durations) && durations[t.id] >= 0 {
			d = durations[t.id]
		}
		g.Add(t.label, t.kind, t.stream, d, t.deps...)
	}
	return g.Run()
}

// markExecuted guards the single-shot contract.
func (p *Plan) markExecuted() error {
	if p.executed {
		return fmt.Errorf("runtime: plan already executed (plans are single-shot: closures mutate real buffers)")
	}
	p.executed = true
	return nil
}

// Execute runs the plan for real: one goroutine per stream, tasks issued
// in enqueue order, each waiting for its dependencies before running. The
// returned trace holds measured wall-clock intervals in milliseconds
// relative to the execution start. The first task error aborts nothing —
// streams drain fully so no goroutine leaks — but the error is returned
// and downstream tasks still run (their inputs may be garbage, which the
// caller must treat as fatal).
func (p *Plan) Execute() (*sim.Trace, error) {
	if err := p.markExecuted(); err != nil {
		return nil, err
	}
	for _, t := range p.tasks {
		t.done = make(chan struct{})
	}
	type timing struct {
		start, finish time.Duration
		err           error
	}
	timings := make([]timing, len(p.tasks))
	t0 := time.Now()
	var wg sync.WaitGroup
	for _, s := range p.order {
		queue := p.streams[s]
		pin := p.bindings[s].PinOS
		wg.Add(1)
		go func(queue []int) {
			defer wg.Done()
			if pin {
				// Pin the stream's executor to an OS thread for its whole
				// queue — the CPU analogue of issuing a CUDA stream from a
				// dedicated, affinity-stable host thread. The scheduler
				// keeps the thread's cache and NUMA placement stable
				// instead of migrating the goroutine mid-pipeline.
				goruntime.LockOSThread()
				defer goruntime.UnlockOSThread()
			}
			for _, id := range queue {
				t := p.tasks[id]
				// A dependency was enqueued earlier on this or another
				// stream; waiting on its done channel realizes the same
				// start rule as the simulator.
				for _, d := range t.deps {
					<-p.tasks[d].done
				}
				timings[id].start = time.Since(t0)
				if t.fn != nil {
					timings[id].err = t.fn()
				}
				timings[id].finish = time.Since(t0)
				close(t.done)
			}
		}(queue)
	}
	wg.Wait()
	var firstErr error
	intervals := make([]sim.Interval, len(p.tasks))
	for i, t := range p.tasks {
		if timings[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("runtime: task %q: %w", t.label, timings[i].err)
		}
		intervals[i] = sim.Interval{
			Task:   sim.NewTask(t.id, t.label, t.kind, t.stream, t.deps),
			Start:  timings[i].start.Seconds() * 1e3,
			Finish: timings[i].finish.Seconds() * 1e3,
		}
	}
	tr := sim.NewTrace(intervals, p.order)
	tr.Resources = p.resources()
	return tr, firstErr
}

// ExecuteSequential runs every closure one after another in task-id order
// (ids are topological: deps always precede their dependents) on the
// calling goroutine, with no cross-stream overlap — the measured baseline
// a pipelined Execute is compared against. The trace attributes each task
// to its declared stream so breakdowns stay comparable.
func (p *Plan) ExecuteSequential() (*sim.Trace, error) {
	if err := p.markExecuted(); err != nil {
		return nil, err
	}
	var firstErr error
	intervals := make([]sim.Interval, len(p.tasks))
	t0 := time.Now()
	for i, t := range p.tasks {
		start := time.Since(t0)
		if t.fn != nil {
			if err := t.fn(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("runtime: task %q: %w", t.label, err)
			}
		}
		intervals[i] = sim.Interval{
			Task:   sim.NewTask(t.id, t.label, t.kind, t.stream, t.deps),
			Start:  start.Seconds() * 1e3,
			Finish: time.Since(t0).Seconds() * 1e3,
		}
	}
	// No resource report: a trace documents the binding the execution ran
	// under, and the sequential baseline runs everything on one unpinned
	// goroutine regardless of what the plan declared.
	return sim.NewTrace(intervals, p.order), firstErr
}

// Durations extracts per-task durations (ms) from a trace indexed by task
// id — the glue between a measured ExecuteSequential trace and
// SimulateWith.
func Durations(tr *sim.Trace) []float64 {
	max := -1
	for _, iv := range tr.Intervals {
		if iv.Task.ID > max {
			max = iv.Task.ID
		}
	}
	out := make([]float64, max+1)
	for _, iv := range tr.Intervals {
		out[iv.Task.ID] = iv.Finish - iv.Start
	}
	return out
}

// Package runtime executes stream-based schedules for real.
//
// It is the executable twin of internal/sim: the same mental model — a set
// of serialized streams, tasks enqueued per stream in program order, a task
// starting once its stream is free and its dependencies finished — but the
// tasks here carry closures that move real bytes and run real GEMMs, and
// the trace that comes back holds *measured* wall-clock intervals instead
// of modelled durations.
//
// A Plan is built exactly like a sim.Graph and is one artifact with two
// interpretations:
//
//   - Simulate() feeds the tasks' estimated durations through the
//     discrete-event engine and returns the predicted trace;
//   - Execute() backs every stream with a goroutine, runs the closures
//     under the enqueue-order + dependency discipline, and returns the
//     measured trace;
//   - ExecuteSequential() runs the same closures one after another on a
//     single goroutine — the no-overlap baseline that turns "pipelining
//     helps" from a simulator claim into a wall-clock measurement.
//
// Because a task's closure mutates real buffers (and parameter-gradient
// accumulators), a Plan is single-shot: build a fresh Plan per execution.
package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// task is one schedulable operation: reporting metadata shared with the
// simulator plus the closure that does the real work.
type task struct {
	id     int
	label  string
	kind   string
	stream string
	est    float64 // modelled duration (ms) for Simulate
	fn     func() error
	deps   []int

	done chan struct{} // closed when the task finished (Execute only)
}

// Binding is the planned execution-resource assignment of one stream: the
// tensor-pool worker share its tasks' kernels fan out onto, and whether the
// stream's executor goroutine is pinned to an OS thread for the duration of
// Execute. The binding itself is declarative — the pool that realizes the
// worker share is threaded into the task closures by whoever builds the
// plan — but it is what the measured trace reports, so the planned split
// and the measured intervals travel together.
type Binding struct {
	// Workers is the planned tensor-pool worker share: the fan-out budget
	// of the kernels this stream's tasks run, not a cap on how many bound
	// streams execute concurrently (each stream always has its own
	// executor goroutine). 0 = unbound, shared default pool.
	Workers int
	PinOS   bool // pin the stream's executor goroutine via runtime.LockOSThread
}

// RetryPolicy bounds the re-execution of tasks that fail with a
// retry-safe (fault.Transient) error: injected faults fire before the
// task body runs, and guarded collectives fail before their first byte
// moves, so a retried task always replays from clean buffers and the
// final result stays bit-identical to a fault-free run. Errors that are
// not classified transient — real task failures whose side effects are
// unknown — are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per task (1 or less
	// disables retry).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Zero values default to 100µs and
	// 5ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter adds a deterministic per-(task, attempt) fraction of the
	// backoff in [0, Jitter], decorrelating retries without introducing
	// run-to-run nondeterminism.
	Jitter float64
	// Kinds restricts retry to these task kinds (nil means every kind) —
	// the collective kinds in practice, whose closures are pure transfers.
	Kinds []string
	// Seed feeds the deterministic jitter.
	Seed uint64
}

func (r RetryPolicy) attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

func (r RetryPolicy) retryable(kind string) bool {
	if r.Kinds == nil {
		return true
	}
	for _, k := range r.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// backoff returns the exponential, capped, deterministically jittered
// sleep before retrying attempt (0-based: the attempt that just failed).
func (r RetryPolicy) backoff(taskID, attempt int) time.Duration {
	base := r.BaseBackoff
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	maxB := r.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > maxB || d <= 0 {
		d = maxB
	}
	if r.Jitter > 0 {
		// splitmix64 finalizer over (seed, task, attempt): stable across
		// runs, uncorrelated across tasks.
		x := r.Seed ^ (uint64(taskID)+1)*0x9E3779B97F4A7C15 ^ (uint64(attempt)+1)*0xD1B54A32D192ED03
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		frac := float64((x^(x>>31))>>11) / (1 << 53)
		d += time.Duration(float64(d) * r.Jitter * frac)
	}
	return d
}

// Plan is a schedule under construction: a DAG of executable tasks with
// stream assignments. Enqueue order per stream is the execution order, as
// on a CUDA stream and exactly as in sim.Graph.
type Plan struct {
	tasks    []*task
	streams  map[string][]int
	order    []string // stream names in first-use order
	bindings map[string]Binding
	injector *fault.Plan
	retry    RetryPolicy
	executed bool
}

// SetFaultPlan installs a deterministic fault injector consulted before
// every task attempt (nil removes it). Injection happens strictly before
// the task body runs, so transient faults never leave half-mutated
// buffers behind.
func (p *Plan) SetFaultPlan(fp *fault.Plan) { p.injector = fp }

// SetRetry installs the retry policy for transient task failures. The
// zero policy (the default) disables retry.
func (p *Plan) SetRetry(rp RetryPolicy) { p.retry = rp }

// NewPlan returns an empty schedule.
func NewPlan() *Plan {
	return &Plan{streams: make(map[string][]int)}
}

// BindStream records the resource binding of a stream. Execute pins bound
// streams' goroutines when requested and attaches every binding to the
// measured trace. Binding a stream that ends up with no tasks is allowed
// and reported; the last binding for a name wins.
func (p *Plan) BindStream(stream string, b Binding) {
	if p.bindings == nil {
		p.bindings = make(map[string]Binding)
	}
	p.bindings[stream] = b
}

// Bindings returns a copy of the stream resource bindings.
func (p *Plan) Bindings() map[string]Binding {
	out := make(map[string]Binding, len(p.bindings))
	for s, b := range p.bindings {
		out[s] = b
	}
	return out
}

// TaskInfo is the reporting view of one planned task.
type TaskInfo struct {
	ID     int
	Label  string
	Kind   string
	Stream string
	Est    float64 // modelled duration/volume estimate (Simulate units)
	Deps   []int
}

// Tasks returns the planned tasks in id order — the structural view
// calibration uses to pair each task's volume estimate with its measured
// duration (trace intervals expose kind and timing but not the estimate).
func (p *Plan) Tasks() []TaskInfo {
	out := make([]TaskInfo, len(p.tasks))
	for i, t := range p.tasks {
		out[i] = TaskInfo{ID: t.id, Label: t.label, Kind: t.kind, Stream: t.stream, Est: t.est, Deps: append([]int(nil), t.deps...)}
	}
	return out
}

// resources converts the bindings into the trace-attached report.
func (p *Plan) resources() map[string]sim.StreamResources {
	if len(p.bindings) == 0 {
		return nil
	}
	out := make(map[string]sim.StreamResources, len(p.bindings))
	for s, b := range p.bindings {
		out[s] = sim.StreamResources{Workers: b.Workers, Pinned: b.PinOS}
	}
	return out
}

// Add enqueues a task on a stream and returns its id. est is the modelled
// duration (ms) Simulate uses; fn is the real work Execute runs (nil is a
// zero-work marker). deps may reference only previously added tasks.
func (p *Plan) Add(label, kind, stream string, est float64, fn func() error, deps ...int) int {
	if est < 0 {
		panic(fmt.Sprintf("runtime: negative estimate for %q", label))
	}
	id := len(p.tasks)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("runtime: task %q depends on unknown task %d", label, d))
		}
	}
	t := &task{id: id, label: label, kind: kind, stream: stream, est: est, fn: fn, deps: append([]int(nil), deps...)}
	p.tasks = append(p.tasks, t)
	if _, ok := p.streams[stream]; !ok {
		p.order = append(p.order, stream)
	}
	p.streams[stream] = append(p.streams[stream], id)
	return id
}

// Len returns the number of tasks.
func (p *Plan) Len() int { return len(p.tasks) }

// Streams returns the stream names in first-use order.
func (p *Plan) Streams() []string { return append([]string(nil), p.order...) }

// Simulate runs the plan's structure through the discrete-event engine
// using the tasks' estimated durations and returns the predicted trace.
// It does not touch the closures and may be called any number of times.
func (p *Plan) Simulate() *sim.Trace {
	return p.SimulateWith(nil)
}

// SimulateWith is Simulate with per-task durations overriding the
// estimates — the hook for "predict the pipelined makespan from measured
// sequential stage times". durations[i] replaces task i's estimate; a nil
// slice keeps every estimate, and NaN-free callers may mix (negative
// entries keep the estimate).
func (p *Plan) SimulateWith(durations []float64) *sim.Trace {
	g := sim.NewGraph()
	for _, t := range p.tasks {
		d := t.est
		if durations != nil && t.id < len(durations) && durations[t.id] >= 0 {
			d = durations[t.id]
		}
		g.Add(t.label, t.kind, t.stream, d, t.deps...)
	}
	return g.Run()
}

// markExecuted guards the single-shot contract.
func (p *Plan) markExecuted() error {
	if p.executed {
		return fmt.Errorf("runtime: plan already executed (plans are single-shot: closures mutate real buffers)")
	}
	p.executed = true
	return nil
}

// execState is the cancellation and incident-recording state shared by
// every stream goroutine of one execution.
type execState struct {
	ctx      context.Context
	t0       time.Time
	stop     chan struct{} // closed on cooperative cancellation
	stopOnce sync.Once
	mu       sync.Mutex
	events   []sim.Event
}

// cancel requests cooperative cancellation: streams stop issuing new task
// bodies (in-flight closures finish naturally) but keep draining their
// queues and closing done channels, so every waiter unblocks and no
// goroutine leaks.
func (e *execState) cancel() { e.stopOnce.Do(func() { close(e.stop) }) }

func (e *execState) canceled() bool {
	select {
	case <-e.stop:
		return true
	default:
	}
	// The watcher goroutine propagates external cancellation into the
	// stop channel asynchronously; consulting the context here as well
	// makes cancellation synchronous from the canceller's side — once
	// ctx.Err() is non-nil, no stream issues another task body no matter
	// how the watcher is scheduled.
	if e.ctx != nil && e.ctx.Err() != nil {
		e.cancel()
		return true
	}
	return false
}

func (e *execState) record(ev sim.Event) {
	ev.AtMS = time.Since(e.t0).Seconds() * 1e3
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

// sleep pauses for d unless cancellation arrives first; it reports
// whether the full pause completed.
func (e *execState) sleep(d time.Duration) bool {
	if d <= 0 {
		return !e.canceled()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-e.stop:
		return false
	}
}

// taskEvent pre-fills the identity fields of an incident on task t.
func taskEvent(typ string, t *task, attempt int, detail string) sim.Event {
	return sim.Event{Type: typ, TaskID: t.id, Label: t.label, Kind: t.kind, Stream: t.stream, Attempt: attempt, Detail: detail}
}

// runAttempts drives one task through injection, execution and bounded
// retry-with-backoff. Each attempt consults the injector BEFORE the task
// body, so injected transients never see mutated buffers; body errors are
// retried only when classified fault-transient (guarded collectives fail
// before their first byte moves, so they qualify). A permanent fault
// triggers cooperative cancellation of the whole plan.
func (p *Plan) runAttempts(e *execState, t *task) error {
	maxAttempts := p.retry.attempts()
	for attempt := 0; ; attempt++ {
		var err error
		if p.injector != nil {
			d := p.injector.Check(t.stream, t.kind, t.label, t.id, attempt)
			if d.Delay > 0 {
				e.record(taskEvent(sim.EventStraggler, t, attempt, d.Delay.String()))
				if !e.sleep(d.Delay) {
					return nil // canceled mid-delay; caller drains
				}
			}
			err = d.Err
		}
		if err == nil && t.fn != nil {
			err = t.fn()
		}
		if err == nil {
			return nil
		}
		wrapped := fmt.Errorf("runtime: task %q: %w", t.label, err)
		if fault.IsPermanent(err) {
			e.record(taskEvent(sim.EventFault, t, attempt, "permanent: "+err.Error()))
			e.cancel()
			return wrapped
		}
		if !fault.IsTransient(err) {
			return wrapped // real failure: side effects unknown, never retried
		}
		e.record(taskEvent(sim.EventFault, t, attempt, err.Error()))
		if attempt+1 >= maxAttempts || !p.retry.retryable(t.kind) || e.canceled() {
			return fmt.Errorf("%w (after %d attempts)", wrapped, attempt+1)
		}
		backoff := p.retry.backoff(t.id, attempt)
		e.record(taskEvent(sim.EventRetry, t, attempt+1, "backoff "+backoff.String()))
		if !e.sleep(backoff) {
			return nil // canceled mid-backoff; caller drains
		}
	}
}

// timing is one task's measured outcome.
type timing struct {
	start, finish time.Duration
	err           error
}

// skipTask marks a task dropped by cooperative cancellation.
func (p *Plan) skipTask(e *execState, tm *timing, t *task) {
	now := time.Since(e.t0)
	tm.start, tm.finish = now, now
	e.record(taskEvent(sim.EventSkip, t, 0, "canceled"))
}

// finishTrace assembles the measured trace and the joined error set.
func (p *Plan) finishTrace(e *execState, timings []timing, withResources bool) (*sim.Trace, error) {
	var errs []error
	intervals := make([]sim.Interval, len(p.tasks))
	for i, t := range p.tasks {
		if timings[i].err != nil {
			errs = append(errs, timings[i].err)
		}
		intervals[i] = sim.Interval{
			Task:   sim.NewTask(t.id, t.label, t.kind, t.stream, t.deps),
			Start:  timings[i].start.Seconds() * 1e3,
			Finish: timings[i].finish.Seconds() * 1e3,
		}
	}
	if err := e.ctx.Err(); err != nil {
		errs = append(errs, fmt.Errorf("runtime: execution canceled: %w", err))
	}
	tr := sim.NewTrace(intervals, p.order)
	tr.Events = e.events
	if withResources {
		tr.Resources = p.resources()
	}
	return tr, errors.Join(errs...)
}

// Execute runs the plan for real with no deadline; see ExecuteCtx.
func (p *Plan) Execute() (*sim.Trace, error) {
	return p.ExecuteCtx(context.Background())
}

// ExecuteCtx runs the plan for real: one goroutine per stream, tasks
// issued in enqueue order, each waiting for its dependencies before
// running. The returned trace holds measured wall-clock intervals in
// milliseconds relative to the execution start.
//
// Failure semantics: an ordinary task error aborts nothing — streams
// drain fully and downstream tasks still run (their inputs may be
// garbage, which the caller must treat as fatal). A transient injected
// fault is retried under the plan's RetryPolicy with exponential backoff.
// A permanent fault, a ctx cancellation or an expired ctx deadline
// triggers cooperative cancellation instead: no further task bodies are
// issued, but every stream still drains its queue and closes every done
// channel, so the call always returns with zero leaked goroutines. All
// task errors are collected and returned via errors.Join (plus the ctx
// error when cancellation came from outside).
func (p *Plan) ExecuteCtx(ctx context.Context) (*sim.Trace, error) {
	if err := p.markExecuted(); err != nil {
		return nil, err
	}
	for _, t := range p.tasks {
		t.done = make(chan struct{})
	}
	timings := make([]timing, len(p.tasks))
	e := &execState{ctx: ctx, t0: time.Now(), stop: make(chan struct{})}

	// The ctx watcher translates external cancellation into the shared
	// cooperative stop; fin retires it on normal completion so it never
	// outlives the call. With a background ctx (nil Done) the watcher is
	// skipped entirely — the zero-fault fast path spawns exactly the
	// stream goroutines it always did.
	var fin chan struct{}
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		fin = make(chan struct{})
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				e.cancel()
			case <-fin:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, s := range p.order {
		queue := p.streams[s]
		pin := p.bindings[s].PinOS
		wg.Add(1)
		go func(queue []int) {
			defer wg.Done()
			if pin {
				// Pin the stream's executor to an OS thread for its whole
				// queue — the CPU analogue of issuing a CUDA stream from a
				// dedicated, affinity-stable host thread. The scheduler
				// keeps the thread's cache and NUMA placement stable
				// instead of migrating the goroutine mid-pipeline.
				goruntime.LockOSThread()
				defer goruntime.UnlockOSThread()
			}
			for _, id := range queue {
				t := p.tasks[id]
				// A dependency was enqueued earlier on this or another
				// stream; waiting on its done channel realizes the same
				// start rule as the simulator. Done channels close even
				// for skipped tasks, so draining never deadlocks.
				for _, d := range t.deps {
					<-p.tasks[d].done
				}
				if e.canceled() {
					p.skipTask(e, &timings[id], t)
					close(t.done)
					continue
				}
				timings[id].start = time.Since(e.t0)
				timings[id].err = p.runAttempts(e, t)
				timings[id].finish = time.Since(e.t0)
				close(t.done)
			}
		}(queue)
	}
	wg.Wait()
	if fin != nil {
		close(fin)
		watcher.Wait()
	}
	return p.finishTrace(e, timings, true)
}

// ExecuteSequential runs every closure one after another with no
// deadline; see ExecuteSequentialCtx.
func (p *Plan) ExecuteSequential() (*sim.Trace, error) {
	return p.ExecuteSequentialCtx(context.Background())
}

// ExecuteSequentialCtx runs every closure one after another in task-id
// order (ids are topological: deps always precede their dependents) on
// the calling goroutine, with no cross-stream overlap — the measured
// baseline a pipelined Execute is compared against. The trace attributes
// each task to its declared stream so breakdowns stay comparable.
// Injection, retry, cancellation and error collection follow ExecuteCtx
// exactly (the fault decisions are keyed on task ids, so the same faults
// fire in both modes); remaining tasks after a permanent fault or ctx
// cancellation are skipped.
func (p *Plan) ExecuteSequentialCtx(ctx context.Context) (*sim.Trace, error) {
	if err := p.markExecuted(); err != nil {
		return nil, err
	}
	timings := make([]timing, len(p.tasks))
	e := &execState{ctx: ctx, t0: time.Now(), stop: make(chan struct{})}
	stop := ctx.Done()
	for i, t := range p.tasks {
		if !e.canceled() && stop != nil {
			select {
			case <-stop:
				e.cancel()
			default:
			}
		}
		if e.canceled() {
			p.skipTask(e, &timings[i], t)
			continue
		}
		timings[i].start = time.Since(e.t0)
		timings[i].err = p.runAttempts(e, t)
		timings[i].finish = time.Since(e.t0)
	}
	// No resource report: a trace documents the binding the execution ran
	// under, and the sequential baseline runs everything on one unpinned
	// goroutine regardless of what the plan declared.
	return p.finishTrace(e, timings, false)
}

// Durations extracts per-task durations (ms) from a trace indexed by task
// id — the glue between a measured ExecuteSequential trace and
// SimulateWith.
func Durations(tr *sim.Trace) []float64 {
	max := -1
	for _, iv := range tr.Intervals {
		if iv.Task.ID > max {
			max = iv.Task.ID
		}
	}
	out := make([]float64, max+1)
	for _, iv := range tr.Intervals {
		out[iv.Task.ID] = iv.Finish - iv.Start
	}
	return out
}

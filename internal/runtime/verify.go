package runtime

// Static plan verification. A Plan is built by strategy code at runtime,
// so a malformed schedule — a dependency on a task that does not exist, a
// cycle that would deadlock Execute's stream goroutines, a task kind the
// breakdown tables cannot aggregate — surfaces only when (and if) the
// broken path executes. Verify is the build-time twin: a pure structural
// check over the finished Plan that rejects every malformed shape with a
// named error before any closure runs. internal/moe wires it into World
// plan construction behind the SetVerifyPlans debug flag, and tests run
// every strategy's plans through it.

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Sentinel verification errors. Verify wraps each violation with position
// detail via fmt.Errorf("%w: ...") and joins all of them, so errors.Is
// reports every class of defect found.
var (
	// ErrDepOutOfRange: a task lists a dependency id that is negative, not
	// yet added at Add time, or beyond the task table.
	ErrDepOutOfRange = errors.New("plan verify: dependency out of range")
	// ErrDepCycle: the dependency edges plus the per-stream enqueue-order
	// edges admit no topological order — Execute would deadlock.
	ErrDepCycle = errors.New("plan verify: dependency cycle")
	// ErrStreamUndeclared: a task's stream is missing from the stream
	// table, or the stream's queue does not list the task.
	ErrStreamUndeclared = errors.New("plan verify: task stream undeclared")
	// ErrUnknownBindStream: a BindStream binding references a stream no
	// task runs on.
	ErrUnknownBindStream = errors.New("plan verify: binding references unknown stream")
	// ErrUnknownKind: a task kind outside the canonical sim vocabulary —
	// breakdowns, fault filters and retry allowlists key on exact strings.
	ErrUnknownKind = errors.New("plan verify: unknown task kind")
	// ErrNegativeEst: a negative modelled duration (Simulate would walk
	// time backwards).
	ErrNegativeEst = errors.New("plan verify: negative estimate")
)

// Verify checks the plan's structural invariants and returns every
// violation joined into one error (nil if the plan is well-formed):
//
//   - every dependency id names an earlier task (in range, no forward or
//     self references);
//   - the DAG of dependency edges plus per-stream enqueue-order edges is
//     acyclic;
//   - every task's stream is declared and queues the task;
//   - every BindStream binding references a stream some task runs on;
//   - every task kind is canonical (sim.Kinds());
//   - every estimate is non-negative.
//
// Verify is read-only and may be called at any point after plan
// construction, including on executed plans.
func (p *Plan) Verify() error {
	var errs []error

	kinds := make(map[string]bool, len(sim.Kinds()))
	for _, k := range sim.Kinds() {
		kinds[k] = true
	}

	for _, t := range p.tasks {
		for _, d := range t.deps {
			if d < 0 || d >= len(p.tasks) || d >= t.id {
				errs = append(errs, fmt.Errorf("%w: task %d %q depends on %d (have %d tasks)",
					ErrDepOutOfRange, t.id, t.label, d, len(p.tasks)))
			}
		}
		ids, ok := p.streams[t.stream]
		declared := ok && containsID(ids, t.id)
		if !declared {
			errs = append(errs, fmt.Errorf("%w: task %d %q on stream %q",
				ErrStreamUndeclared, t.id, t.label, t.stream))
		}
		if !kinds[t.kind] {
			errs = append(errs, fmt.Errorf("%w: task %d %q has kind %q (canonical kinds: %v)",
				ErrUnknownKind, t.id, t.label, t.kind, sim.Kinds()))
		}
		if t.est < 0 {
			errs = append(errs, fmt.Errorf("%w: task %d %q est %v",
				ErrNegativeEst, t.id, t.label, t.est))
		}
	}

	for s := range p.bindings {
		if _, ok := p.streams[s]; !ok {
			errs = append(errs, fmt.Errorf("%w: binding for stream %q", ErrUnknownBindStream, s))
		}
	}

	if cyc := p.findCycle(); cyc != nil {
		errs = append(errs, fmt.Errorf("%w: tasks %v", ErrDepCycle, cyc))
	}

	return errors.Join(errs...)
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// findCycle runs a DFS over the execution edges — explicit dependencies
// plus the implicit predecessor edge within each stream's queue — and
// returns the task ids of one cycle, or nil. Out-of-range dependency edges
// are skipped here (reported separately by ErrDepOutOfRange).
func (p *Plan) findCycle() []int {
	n := len(p.tasks)
	edges := make([][]int, n) // edges[i] = tasks i waits on
	for _, t := range p.tasks {
		for _, d := range t.deps {
			if d >= 0 && d < n {
				edges[t.id] = append(edges[t.id], d)
			}
		}
	}
	for _, ids := range p.streams {
		for i := 1; i < len(ids); i++ {
			if ids[i] >= 0 && ids[i] < n && ids[i-1] >= 0 && ids[i-1] < n {
				edges[ids[i]] = append(edges[ids[i]], ids[i-1])
			}
		}
	}

	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, n)
	var stack []int
	var dfs func(v int) []int
	dfs = func(v int) []int {
		state[v] = inStack
		stack = append(stack, v)
		for _, w := range edges[v] {
			switch state[w] {
			case inStack:
				// Slice the current stack from w's position: that suffix is
				// the cycle.
				for i, u := range stack {
					if u == w {
						return append([]int(nil), stack[i:]...)
					}
				}
				return []int{w, v}
			case unvisited:
				if c := dfs(w); c != nil {
					return c
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[v] = done
		return nil
	}
	for v := 0; v < n; v++ {
		if state[v] == unvisited {
			if c := dfs(v); c != nil {
				return c
			}
		}
	}
	return nil
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// leakCheck returns a func that asserts the goroutine count settled back
// to its starting value — the satellite goroutine-leak coverage for the
// error, cancellation and deadline paths.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := goruntime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if goruntime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("goroutine leak: %d before, %d after", before, goruntime.NumGoroutine())
	}
}

// TestExecuteJoinsAllErrors: errors from independent streams are all
// collected (satellite 1 — the old executor kept only the first).
func TestExecuteJoinsAllErrors(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	errA := errors.New("stream a broke")
	errB := errors.New("stream b broke")
	p.Add("A", "K", "s1", 1, func() error { return errA })
	p.Add("B", "K", "s2", 1, func() error { return errB })
	p.Add("C", "K", "s3", 1, nil)
	_, err := p.Execute()
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error lost a stream failure: %v", err)
	}
}

// TestRetryTransient: a transient injected fault with prob 1 and cap 1
// fails every task's first attempt; one retry each completes the plan
// cleanly with the retries on the trace.
func TestRetryTransient(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	runs := make([]int32, 4)
	for i := 0; i < 4; i++ {
		i := i
		p.Add(fmt.Sprintf("T%d", i), "AlltoAll", fmt.Sprintf("s%d", i%2), 1, func() error {
			atomic.AddInt32(&runs[i], 1)
			return nil
		})
	}
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 1, TransientProb: 1, MaxTransientsPerTask: 1}))
	p.SetRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond})
	tr, err := p.Execute()
	if err != nil {
		t.Fatalf("retried plan failed: %v", err)
	}
	for i, n := range runs {
		if n != 1 {
			t.Fatalf("task %d body ran %d times (fault fires before the body; retry runs it once)", i, n)
		}
	}
	if got := tr.EventCount(sim.EventRetry); got != 4 {
		t.Fatalf("trace records %d retries, want 4", got)
	}
	if got := tr.EventCount(sim.EventFault); got != 4 {
		t.Fatalf("trace records %d faults, want 4", got)
	}
}

// TestRetryBudgetExhausted: uncapped transient injection at prob 1 burns
// the whole retry budget and fails with the attempt count attached.
func TestRetryBudgetExhausted(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	p.Add("T", "AlltoAll", "s", 1, nil)
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 2, TransientProb: 1}))
	p.SetRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond})
	tr, err := p.Execute()
	if !fault.IsTransient(err) {
		t.Fatalf("want transient failure after budget, got %v", err)
	}
	if got := tr.EventCount(sim.EventFault); got != 3 {
		t.Fatalf("%d faults recorded, want 3 (one per attempt)", got)
	}
	if got := tr.EventCount(sim.EventRetry); got != 2 {
		t.Fatalf("%d retries recorded, want 2", got)
	}
}

// TestRetryKindFilter: the policy retries only listed kinds.
func TestRetryKindFilter(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	p.Add("E", "Experts", "s", 1, nil)
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 3, TransientProb: 1, MaxTransientsPerTask: 1}))
	p.SetRetry(RetryPolicy{MaxAttempts: 3, Kinds: []string{"AlltoAll"}})
	if _, err := p.Execute(); !fault.IsTransient(err) {
		t.Fatalf("unlisted kind was retried: %v", err)
	}
}

// TestRealErrorsNeverRetried: only injected transients are retried; an
// ordinary task error returns immediately even under a retry policy.
func TestRealErrorsNeverRetried(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	var runs int32
	boom := errors.New("real failure")
	p.Add("T", "AlltoAll", "s", 1, func() error {
		atomic.AddInt32(&runs, 1)
		return boom
	})
	p.SetRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Microsecond})
	if _, err := p.Execute(); !errors.Is(err, boom) {
		t.Fatalf("real error lost: %v", err)
	}
	if runs != 1 {
		t.Fatalf("real error retried %d times", runs)
	}
}

// TestPermanentCancelsAndDrains: a permanent fault cancels the rest of the
// plan cooperatively — downstream tasks are skipped (recorded as skip
// events), every done channel closes, and no goroutine leaks.
func TestPermanentCancelsAndDrains(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	var after int32
	gate := make(chan struct{})
	first := p.Add("E0[1]", "Experts", "compute:1", 1, func() error {
		<-gate
		return nil
	})
	p.Add("E1[1]", "Experts", "compute:1", 1, func() error {
		atomic.AddInt32(&after, 1)
		return nil
	}, first)
	boom := p.Add("X", "Experts", "compute:2", 1, nil)
	p.Add("Y", "Experts", "compute:2", 1, func() error {
		atomic.AddInt32(&after, 1)
		return nil
	}, boom)
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 4, Down: &fault.Down{Rank: 2}}))
	// The permanent fault fires on compute:2 while compute:1 is parked on
	// the gate; releasing the gate after lets us observe that E1[1] —
	// dependent on a task that finished before cancellation reached it or
	// after — never runs once the stop is set, or runs if it slipped in
	// first. Either is legal; what must hold: plan returns, rank-2's Y is
	// skipped, and the error carries the permanent fault.
	close(gate)
	tr, err := p.Execute()
	if rank, ok := fault.PermanentRank(err); !ok || rank != 2 {
		t.Fatalf("permanent fault not surfaced: %v", err)
	}
	skipped := tr.EventCount(sim.EventSkip)
	if skipped < 1 {
		t.Fatalf("no tasks skipped after permanent fault (events: %+v)", tr.Events)
	}
	if len(tr.Intervals) != p.Len() {
		t.Fatalf("trace has %d intervals for %d tasks (streams must drain)", len(tr.Intervals), p.Len())
	}
}

// TestExecuteCtxCancel: external cancellation skips pending work, drains
// the streams, reports the ctx error, and leaks nothing.
func TestExecuteCtxCancel(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	started := make(chan struct{})
	release := make(chan struct{})
	var late int32
	first := p.Add("slow", "K", "s", 1, func() error {
		close(started)
		<-release
		return nil
	})
	p.Add("next", "K", "s", 1, func() error {
		atomic.AddInt32(&late, 1)
		return nil
	}, first)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var tr *sim.Trace
	var err error
	go func() {
		tr, err = p.ExecuteCtx(ctx)
		close(done)
	}()
	<-started
	cancel()
	// The in-flight closure finishes naturally; cancellation only stops
	// new task bodies from being issued.
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx error not joined: %v", err)
	}
	if late != 0 {
		t.Fatal("task issued after cancellation")
	}
	if tr.EventCount(sim.EventSkip) != 1 {
		t.Fatalf("want 1 skip event, got %d", tr.EventCount(sim.EventSkip))
	}
}

// TestExecuteCtxDeadline: an expired deadline cancels the plan with
// context.DeadlineExceeded; backoff sleeps are interruptible so retries
// never outlive the deadline.
func TestExecuteCtxDeadline(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	p.Add("slow", "AlltoAll", "s", 1, func() error {
		time.Sleep(30 * time.Millisecond)
		return nil
	})
	p.Add("tail", "AlltoAll", "s2", 1, nil)
	// A retry loop with huge backoff on the second stream: the deadline
	// must cut the backoff sleep short instead of waiting it out.
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 5, StreamProb: map[string]float64{"s2": 1}}))
	p.SetRetry(RetryPolicy{MaxAttempts: 100, BaseBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.ExecuteCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not surfaced: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not interrupt backoff sleep (took %v)", elapsed)
	}
}

// TestSequentialCtxMatchesFaults: the sequential executor sees the same
// injected faults (decisions key on task ids) and the same retry
// semantics.
func TestSequentialCtxMatchesFaults(t *testing.T) {
	build := func() *Plan {
		p := NewPlan()
		for i := 0; i < 6; i++ {
			p.Add(fmt.Sprintf("T%d", i), "AlltoAll", fmt.Sprintf("s%d", i%3), 1, nil)
		}
		p.SetFaultPlan(fault.New(fault.Spec{Seed: 9, TransientProb: 0.8, MaxTransientsPerTask: 2}))
		p.SetRetry(RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Microsecond})
		return p
	}
	trPar, err := build().Execute()
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	trSeq, err := build().ExecuteSequential()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if trPar.EventCount(sim.EventFault) != trSeq.EventCount(sim.EventFault) {
		t.Fatalf("fault counts differ: parallel %d, sequential %d",
			trPar.EventCount(sim.EventFault), trSeq.EventCount(sim.EventFault))
	}
}

// TestStragglerDelays: straggler injection stalls the task and records the
// event without failing anything.
func TestStragglerDelays(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	p.Add("T", "K", "s", 1, nil)
	p.SetFaultPlan(fault.New(fault.Spec{Seed: 6, StragglerProb: 1, StragglerDelay: 5 * time.Millisecond}))
	start := time.Now()
	tr, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("straggler delay not applied")
	}
	if tr.EventCount(sim.EventStraggler) != 1 {
		t.Fatalf("straggler not recorded: %+v", tr.Events)
	}
}

// TestZeroFaultPathUnchanged: with no injector and a background ctx the
// executor behaves exactly as before — no events, full resources report,
// bitwise-identical task effects.
func TestZeroFaultPathUnchanged(t *testing.T) {
	defer leakCheck(t)()
	p := NewPlan()
	sum := 0
	a := p.Add("A", "K", "s1", 1, func() error { sum += 1; return nil })
	p.Add("B", "K", "s1", 1, func() error { sum += 2; return nil }, a)
	tr, err := p.Execute()
	if err != nil || sum != 3 {
		t.Fatalf("err=%v sum=%d", err, sum)
	}
	if len(tr.Events) != 0 {
		t.Fatalf("fault-free run recorded events: %+v", tr.Events)
	}
}

package runtime

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// wellFormedPlan builds a small two-stream DAG using only canonical kinds.
func wellFormedPlan() *Plan {
	p := NewPlan()
	a := p.Add("pack", sim.KindPack, "compute:0", 1, nil)
	b := p.Add("a2a", sim.KindAlltoAll, "inter", 2, nil, a)
	p.Add("experts", sim.KindExperts, "compute:0", 3, nil, b)
	p.Add("ar", sim.KindAllReduce, "inter", 1, nil, b)
	p.BindStream("inter", Binding{Workers: 1})
	return p
}

func TestPlanVerifyWellFormed(t *testing.T) {
	if err := wellFormedPlan().Verify(); err != nil {
		t.Fatalf("well-formed plan rejected: %v", err)
	}
}

// TestPlanVerify feeds five distinct malformed-plan shapes through Verify
// and checks each is rejected with its named sentinel. The shapes that
// Plan.Add already panics on (forward deps, negative estimates) are built
// by mutating the task table directly — exactly the corruption Verify
// exists to catch when a builder bypasses or outgrows Add's checks.
func TestPlanVerify(t *testing.T) {
	cases := []struct {
		name string
		plan func() *Plan
		want error
	}{
		{"dep out of range", func() *Plan {
			p := wellFormedPlan()
			p.tasks[2].deps = []int{99}
			return p
		}, ErrDepOutOfRange},
		{"dependency cycle", func() *Plan {
			// Backward-only deps cannot form a cycle on their own (Add
			// numbers tasks in topological order), so the cycle enters
			// through a corrupted stream queue: the dep edge says 1 waits
			// on 0, the reversed enqueue order says 0 waits on 1.
			p := NewPlan()
			a := p.Add("x", sim.KindPack, "A", 1, nil)
			p.Add("y", sim.KindPack, "A", 1, nil, a)
			p.streams["A"] = []int{1, 0}
			return p
		}, ErrDepCycle},
		{"stream undeclared", func() *Plan {
			p := wellFormedPlan()
			p.tasks[1].stream = "ghost"
			return p
		}, ErrStreamUndeclared},
		{"unknown bind stream", func() *Plan {
			p := wellFormedPlan()
			p.BindStream("ghost", Binding{Workers: 2})
			return p
		}, ErrUnknownBindStream},
		{"unknown kind", func() *Plan {
			p := wellFormedPlan()
			p.Add("mystery", "Mystery", "inter", 1, nil)
			return p
		}, ErrUnknownKind},
		{"negative estimate", func() *Plan {
			p := wellFormedPlan()
			p.tasks[3].est = -1
			return p
		}, ErrNegativeEst},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan().Verify()
			if err == nil {
				t.Fatalf("malformed plan accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// The named sentinel is the only defect class reported (the
			// cycle shape may also trip nothing else).
			for _, other := range []error{ErrDepOutOfRange, ErrDepCycle, ErrStreamUndeclared,
				ErrUnknownBindStream, ErrUnknownKind, ErrNegativeEst} {
				if other != tc.want && errors.Is(err, other) {
					t.Fatalf("unexpected extra defect %v in %v", other, err)
				}
			}
		})
	}
}

// TestPlanVerifyJoinsAllDefects corrupts two independent invariants and
// checks both sentinels surface through the joined error.
func TestPlanVerifyJoinsAllDefects(t *testing.T) {
	p := wellFormedPlan()
	p.tasks[3].est = -5
	p.BindStream("ghost", Binding{})
	err := p.Verify()
	if !errors.Is(err, ErrNegativeEst) || !errors.Is(err, ErrUnknownBindStream) {
		t.Fatalf("joined error missing a defect: %v", err)
	}
}

// TestPlanVerifyStreamCycle exercises the implicit enqueue-order edges: a
// dependency from an earlier task on stream A to a later task on stream B
// whose predecessor depends back on A's earlier work — a deadlock Execute
// could not resolve — must be reported as a cycle.
func TestPlanVerifyStreamCycle(t *testing.T) {
	p := NewPlan()
	a0 := p.Add("a0", sim.KindPack, "A", 1, nil)
	p.Add("b0", sim.KindPack, "B", 1, nil, a0)
	b1 := p.Add("b1", sim.KindPack, "B", 1, nil)
	// Corrupt a0 to wait on b1: stream B forces b0 before b1, b0 waits on
	// a0, a0 waits on b1 — a cycle through the stream edge. The forward
	// reference is itself a defect, so both sentinels must surface.
	p.tasks[a0].deps = []int{b1}
	err := p.Verify()
	if !errors.Is(err, ErrDepCycle) {
		t.Fatalf("stream-order cycle not detected: %v", err)
	}
	if !errors.Is(err, ErrDepOutOfRange) {
		t.Fatalf("forward reference not reported: %v", err)
	}
}

package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tensor"
)

// TestExecuteRespectsDeps builds a diamond A -> {B, C} -> D across three
// streams and checks the recorded completion order: no task may start
// before its dependencies finished.
func TestExecuteRespectsDeps(t *testing.T) {
	p := NewPlan()
	var order []int32
	var mu atomic.Int32
	record := func(id int32) func() error {
		return func() error {
			// mu serializes appends; contention is negligible here.
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, id)
			mu.Store(0)
			return nil
		}
	}
	a := p.Add("A", "k", "s1", 1, record(0))
	b := p.Add("B", "k", "s2", 1, record(1), a)
	c := p.Add("C", "k", "s3", 1, record(2), a)
	d := p.Add("D", "k", "s1", 1, record(3), b, c)
	_ = d
	tr, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d tasks, want 4", len(order))
	}
	pos := map[int32]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[0] != 0 || pos[3] != 3 {
		t.Fatalf("dependency order violated: %v", order)
	}
	// Trace start/finish must be consistent with deps too.
	byID := map[int]sim.Interval{}
	for _, iv := range tr.Intervals {
		byID[iv.Task.ID] = iv
	}
	for _, iv := range tr.Intervals {
		for _, dep := range iv.Task.Deps {
			if byID[dep].Finish > iv.Start+1e-6 {
				t.Fatalf("task %d started at %.4f before dep %d finished at %.4f",
					iv.Task.ID, iv.Start, dep, byID[dep].Finish)
			}
		}
	}
}

// TestExecuteStreamSerialization checks that two tasks on the same stream
// never overlap even without an explicit dependency, while independent
// tasks on different streams genuinely run concurrently.
func TestExecuteStreamSerialization(t *testing.T) {
	p := NewPlan()
	var inflight, maxInflight, sameStreamInflight atomic.Int32
	busy := func(stream *atomic.Int32) func() error {
		return func() error {
			if stream != nil {
				if stream.Add(1) > 1 {
					t.Error("two tasks on one stream ran concurrently")
				}
			}
			n := inflight.Add(1)
			for {
				m := maxInflight.Load()
				if n <= m || maxInflight.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inflight.Add(-1)
			if stream != nil {
				stream.Add(-1)
			}
			return nil
		}
	}
	for i := 0; i < 3; i++ {
		p.Add("S", "k", "serial", 1, busy(&sameStreamInflight))
	}
	for i := 0; i < 3; i++ {
		p.Add("P", "k", "other", 1, busy(nil))
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if maxInflight.Load() < 2 {
		t.Fatalf("independent streams never overlapped (max inflight %d)", maxInflight.Load())
	}
}

// TestExecuteContentionResourceReport drives Execute with more live
// streams than pool workers: six streams whose tasks all hammer one
// width-2 scoped tensor pool, a chain dependency per stream and a
// cross-stream barrier task. Under -race this pins that (a) stream
// serialization and dependency discipline survive worker contention —
// tasks blocked on the shared pool must not let a later task on their
// stream start — and (b) the measured trace's resource report matches the
// declared bindings exactly, including a bound-but-empty stream.
func TestExecuteContentionResourceReport(t *testing.T) {
	const streams = 6
	pool := tensor.NewPool(2) // deliberately fewer workers than live streams
	defer pool.Close()

	p := NewPlan()
	var perStream [streams]atomic.Int32
	cells := make([][]float64, streams)
	work := func(s int) func() error {
		return func() error {
			if perStream[s].Add(1) > 1 {
				t.Errorf("stream %d ran two tasks concurrently", s)
			}
			defer perStream[s].Add(-1)
			pool.ParallelFor(32, func(i int) {
				cells[s][i]++
			})
			return nil
		}
	}
	lasts := make([]int, streams)
	for s := 0; s < streams; s++ {
		cells[s] = make([]float64, 32)
		name := fmt.Sprintf("st:%d", s)
		p.BindStream(name, Binding{Workers: 1, PinOS: s%2 == 0})
		id := p.Add("A", "k", name, 1, work(s))
		lasts[s] = p.Add("B", "k", name, 1, work(s), id)
	}
	p.BindStream("idle", Binding{Workers: 1}) // bound, never used by a task
	barrier := p.Add("X", "k", "st:0", 1, work(0), lasts...)
	_ = barrier

	tr, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		want := 2.0
		if s == 0 {
			want = 3 // the barrier task runs on stream 0
		}
		for i, v := range cells[s] {
			if v != want {
				t.Fatalf("stream %d cell %d = %v, want %v", s, i, v, want)
			}
		}
	}
	if len(tr.Resources) != streams+1 {
		t.Fatalf("resource report has %d streams, want %d", len(tr.Resources), streams+1)
	}
	for s := 0; s < streams; s++ {
		r, ok := tr.Resources[fmt.Sprintf("st:%d", s)]
		if !ok || r.Workers != 1 || r.Pinned != (s%2 == 0) {
			t.Fatalf("stream %d resource report %+v does not match binding", s, r)
		}
	}
	if r := tr.Resources["idle"]; r.Workers != 1 || r.Pinned {
		t.Fatalf("idle stream resource report %+v does not match binding", r)
	}
	if tr.ResourceSummary() == "" {
		t.Fatal("ResourceSummary empty for a bound trace")
	}
}

// TestSimulateMatchesSimGraph: the Plan's Simulate must agree exactly with
// a hand-built sim.Graph of the same structure.
func TestSimulateMatchesSimGraph(t *testing.T) {
	p := NewPlan()
	a := p.Add("A", "k", "compute", 3, nil)
	b := p.Add("B", "k", "inter", 2, nil, a)
	p.Add("C", "k", "compute", 4, nil)
	p.Add("D", "k", "inter", 1, nil, b)

	g := sim.NewGraph()
	ga := g.Add("A", "k", "compute", 3)
	gb := g.Add("B", "k", "inter", 2, ga)
	g.Add("C", "k", "compute", 4)
	g.Add("D", "k", "inter", 1, gb)

	if got, want := p.Simulate().Makespan, g.Run().Makespan; got != want {
		t.Fatalf("Simulate makespan %v, sim.Graph %v", got, want)
	}
}

// TestSimulateWithOverrides: per-task duration overrides replace the
// estimates; negative entries keep them.
func TestSimulateWithOverrides(t *testing.T) {
	p := NewPlan()
	a := p.Add("A", "k", "s", 3, nil)
	p.Add("B", "k", "s", 2, nil, a)
	if got := p.SimulateWith([]float64{10, -1}).Makespan; got != 12 {
		t.Fatalf("override makespan %v, want 12", got)
	}
	if got := p.Simulate().Makespan; got != 5 {
		t.Fatalf("estimate makespan %v, want 5", got)
	}
}

// TestExecuteSequentialRunsAllAndSingleShot: sequential execution runs
// every closure exactly once in id order, and a Plan refuses re-execution.
func TestExecuteSequentialRunsAllAndSingleShot(t *testing.T) {
	p := NewPlan()
	var calls atomic.Int32
	for i := 0; i < 5; i++ {
		p.Add("T", "k", "s", 1, func() error { calls.Add(1); return nil })
	}
	tr, err := p.ExecuteSequential()
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("ran %d closures, want 5", calls.Load())
	}
	if len(Durations(tr)) != 5 {
		t.Fatalf("durations len %d, want 5", len(Durations(tr)))
	}
	if _, err := p.Execute(); err == nil {
		t.Fatal("re-executing a plan must fail")
	}
}

// TestExecuteErrorPropagates: the first task error comes back with the
// task's label; all streams still drain.
func TestExecuteErrorPropagates(t *testing.T) {
	p := NewPlan()
	boom := errors.New("boom")
	var after atomic.Bool
	a := p.Add("bad", "k", "s", 1, func() error { return boom })
	p.Add("after", "k", "s", 1, func() error { after.Store(true); return nil }, a)
	_, err := p.Execute()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error %v, want wrapped boom", err)
	}
	if !after.Load() {
		t.Fatal("stream did not drain after the failing task")
	}
}

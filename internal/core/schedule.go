package core

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// System identifies one of the scheduling systems the paper evaluates.
type System string

// Systems of §6.
const (
	SystemDSMoE         System = "dsmoe"          // DeepSpeed-MoE: sequential, flat AlltoAll (Fig. 3a)
	SystemTutel         System = "tutel"          // Tutel + PipeMoE adaptive overlap
	SystemTutelImproved System = "tutel-improved" // + Gradient-AllReduce over dense parts (Fig. 3b)
	SystemLina          System = "pipemoe-lina"   // + Lina's fixed 30 MB gradient chunks
	SystemFSMoENoIIO    System = "fsmoe-no-iio"   // FSMoE without inter/intra-node overlap
	SystemFSMoE         System = "fsmoe"          // full FSMoE (Fig. 3d)
)

// AllSystems lists every scheduler in evaluation order.
func AllSystems() []System {
	return []System{SystemDSMoE, SystemTutel, SystemTutelImproved, SystemLina, SystemFSMoENoIIO, SystemFSMoE}
}

// DSMoEKernelOverhead is the compute-side slowdown applied to the
// DeepSpeed-MoE baseline relative to the shared kernel implementations,
// calibrated to the Table 6 gap between DS-MoE and FSMoE iterations.
const DSMoEKernelOverhead = 1.25

// BuildOptions tunes schedule construction.
type BuildOptions struct {
	RMax           int     // maximum pipeline degree considered (default 16)
	LinaChunkBytes float64 // Lina's fixed chunk size (default 30 MB, §6.4)
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.RMax <= 0 {
		o.RMax = 16
	}
	if o.LinaChunkBytes <= 0 {
		o.LinaChunkBytes = 30e6
	}
	return o
}

// IterationResult is one simulated training iteration.
type IterationResult struct {
	System System
	Total  float64 // makespan, ms
	Trace  *sim.Trace
	DegFwd []int // pipeline degree per layer, forward
	DegBwd []int // pipeline degree per layer, backward
	Gar    *GarPlan
}

// streamSet maps logical streams to DES resources for a system.
type streamSet struct{ inter, intra, compute string }

func streamsFor(sys System) streamSet {
	switch sys {
	case SystemDSMoE:
		return streamSet{inter: "seq", intra: "seq", compute: "seq"}
	case SystemFSMoE:
		return streamSet{inter: sim.StreamInter, intra: sim.StreamIntra, compute: sim.StreamCompute}
	default: // one communication stream, one compute stream
		return streamSet{inter: "comm", intra: "comm", compute: sim.StreamCompute}
	}
}

func (m Models) a2aFor(sys System) perfmodel.Linear {
	if sys == SystemDSMoE {
		return m.A2AFlat
	}
	return m.A2A
}

// Task kinds used for breakdown reporting (Table 2 vocabulary) — aliases
// of the canonical sim vocabulary (sim/vocab.go).
const (
	KindA2A    = sim.KindAlltoAll
	KindAG     = sim.KindAllGather
	KindRS     = sim.KindReduceScatter
	KindAR     = sim.KindAllReduce
	KindExpert = sim.KindExperts
	KindOthers = sim.KindOthers
)

// buildForwardLayer emits one generalized layer's forward tasks and returns
// the id its successor must depend on. dep < 0 means no dependency.
func (m Models) buildForwardLayer(g *sim.Graph, v Volumes, r int, ss streamSet, a2a perfmodel.Linear, iio bool, dep int) int {
	deps := func(ids ...int) []int {
		var out []int
		for _, id := range ids {
			if id >= 0 {
				out = append(out, id)
			}
		}
		return out
	}
	rf := float64(r)
	ta2a := a2a.ChunkTime(v.NA2A, rf)
	tag := m.TAG(v, rf)
	trs := m.TRS(v, rf)
	texp := m.TExp(v, rf, Forward)

	others := g.Add("O-fwd", KindOthers, ss.compute, v.DenseFwd, deps(dep)...)
	disp := make([]int, r)
	ags := make([]int, r)
	exps := make([]int, r)
	rss := make([]int, r)
	comb := make([]int, r)
	if iio {
		// Inter stream: all dispatches, then all combines; intra stream:
		// all allgathers, then all reduce-scatters (Fig. 3c/d ordering).
		for i := 0; i < r; i++ {
			disp[i] = g.Add("D", KindA2A, ss.inter, ta2a, others)
		}
		for i := 0; i < r; i++ {
			ags[i] = g.Add("G", KindAG, ss.intra, tag, disp[i])
		}
		for i := 0; i < r; i++ {
			exps[i] = g.Add("E", KindExpert, ss.compute, texp, ags[i])
		}
		for i := 0; i < r; i++ {
			rss[i] = g.Add("R", KindRS, ss.intra, trs, exps[i])
		}
		for i := 0; i < r; i++ {
			comb[i] = g.Add("C", KindA2A, ss.inter, ta2a, rss[i])
		}
		return comb[r-1]
	}
	// Single comm stream (Tutel/PipeMoE): interleave so chunk i+1's inputs
	// are in flight while chunk i computes — the classic double buffer.
	for i := 0; i < r; i++ {
		disp[i] = g.Add("D", KindA2A, ss.inter, ta2a, others)
		ags[i] = g.Add("G", KindAG, ss.intra, tag, disp[i])
		exps[i] = g.Add("E", KindExpert, ss.compute, texp, ags[i])
		if i > 0 {
			rss[i-1] = g.Add("R", KindRS, ss.intra, trs, exps[i-1])
			comb[i-1] = g.Add("C", KindA2A, ss.inter, ta2a, rss[i-1])
		}
	}
	rss[r-1] = g.Add("R", KindRS, ss.intra, trs, exps[r-1])
	comb[r-1] = g.Add("C", KindA2A, ss.inter, ta2a, rss[r-1])
	return comb[r-1]
}

// buildBackwardLayer emits one generalized layer's backward tasks plus its
// Gradient-AllReduce slices, returning the id the previous layer's backward
// must depend on. garMoE/garDense are byte volumes from the GarPlan;
// linaChunk > 0 realizes the dense slice as fixed-size chunks.
func (m Models) buildBackwardLayer(g *sim.Graph, v Volumes, r int, ss streamSet, a2a perfmodel.Linear, iio bool, dep int, garMoE, garDense, linaChunk float64) int {
	deps := func(ids ...int) []int {
		var out []int
		for _, id := range ids {
			if id >= 0 {
				out = append(out, id)
			}
		}
		return out
	}
	rf := float64(r)
	ta2a := a2a.ChunkTime(v.NA2A, rf)
	// Backward adjoints: the first intra collective is the AllGather-shaped
	// adjoint of the forward ReduceScatter and vice versa; volumes match
	// their forward counterparts.
	tag := m.AG.ChunkTime(v.NRS, rf)
	trs := m.RS.ChunkTime(v.NAG, rf)
	texp := m.TExp(v, rf, Backward)

	first := make([]int, r) // combine-gradient AlltoAll
	agb := make([]int, r)
	exps := make([]int, r)
	rsb := make([]int, r)
	second := make([]int, r) // dispatch-gradient AlltoAll
	if iio {
		for i := 0; i < r; i++ {
			first[i] = g.Add("C", KindA2A, ss.inter, ta2a, deps(dep)...)
		}
		// The MoE-window gradient slice rides the inter stream between the
		// two AlltoAll groups (§4, Fig. 3d).
		if garMoE > 0 {
			g.Add("A", KindAR, ss.inter, m.TAR(garMoE))
		}
		for i := 0; i < r; i++ {
			agb[i] = g.Add("G", KindAG, ss.intra, tag, first[i])
		}
		for i := 0; i < r; i++ {
			exps[i] = g.Add("E", KindExpert, ss.compute, texp, agb[i])
		}
		for i := 0; i < r; i++ {
			rsb[i] = g.Add("R", KindRS, ss.intra, trs, exps[i])
		}
		for i := 0; i < r; i++ {
			second[i] = g.Add("D", KindA2A, ss.inter, ta2a, rsb[i])
		}
	} else {
		for i := 0; i < r; i++ {
			first[i] = g.Add("C", KindA2A, ss.inter, ta2a, deps(dep)...)
			agb[i] = g.Add("G", KindAG, ss.intra, tag, first[i])
			exps[i] = g.Add("E", KindExpert, ss.compute, texp, agb[i])
			if i > 0 {
				rsb[i-1] = g.Add("R", KindRS, ss.intra, trs, exps[i-1])
				second[i-1] = g.Add("D", KindA2A, ss.inter, ta2a, rsb[i-1])
			}
		}
		if garMoE > 0 {
			g.Add("A", KindAR, ss.inter, m.TAR(garMoE))
		}
		rsb[r-1] = g.Add("R", KindRS, ss.intra, trs, exps[r-1])
		second[r-1] = g.Add("D", KindA2A, ss.inter, ta2a, rsb[r-1])
	}

	// Dense backward ("Others") runs after the MoE block; its gradient
	// slice rides the communication stream in parallel.
	others := g.Add("O-bwd", KindOthers, ss.compute, v.DenseBwd, second[r-1])
	if garDense > 0 {
		if linaChunk > 0 {
			for rem := garDense; rem > 1e-9; rem -= linaChunk {
				n := math.Min(linaChunk, rem)
				g.Add("A", KindAR, ss.inter, m.TAR(n))
			}
		} else {
			g.Add("A", KindAR, ss.inter, m.TAR(garDense))
		}
	}
	return others
}

// SimulateIteration builds and executes one training iteration (forward +
// backward + gradient synchronization) of the given layers under a system.
//
// For SystemFSMoE the scheduler is contention-aware: overlapping intra-
// with inter-node collectives costs IIOContention (kernel/fabric
// interference), so on intra-dominated layouts the overlap can lose more
// than it hides. FSMoE therefore evaluates both its IIO schedule and the
// no-IIO fallback against the performance models and keeps the faster —
// the same adaptive, model-driven spirit as Algorithm 1.
func (m Models) SimulateIteration(layers []LayerSpec, sys System, opt BuildOptions) (*IterationResult, error) {
	if sys == SystemFSMoE {
		iio, err := m.simulateOnce(layers, SystemFSMoE, opt)
		if err != nil {
			return nil, err
		}
		flat, err := m.simulateOnce(layers, SystemFSMoENoIIO, opt)
		if err != nil {
			return nil, err
		}
		if flat.Total < iio.Total {
			flat.System = SystemFSMoE
			return flat, nil
		}
		return iio, nil
	}
	return m.simulateOnce(layers, sys, opt)
}

func (m Models) simulateOnce(layers []LayerSpec, sys System, opt BuildOptions) (*IterationResult, error) {
	opt = opt.withDefaults()
	if len(layers) == 0 {
		return nil, fmt.Errorf("core: no layers to schedule")
	}
	for i, l := range layers {
		if err := l.V.Validate(); err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", i, err)
		}
	}
	ss := streamsFor(sys)
	a2a := m.a2aFor(sys)
	iio := sys == SystemFSMoE
	if iio {
		// FSMoE pays the contention cost of co-executing intra- and
		// inter-node collectives, in both its plans and its execution.
		m = m.InflateIntra()
	}
	if sys == SystemDSMoE {
		// DeepSpeed-MoE's own gating/ordering/expert kernels are slower
		// than the reimplementations every other system here shares
		// (Table 6 measures its full iterations 1.33–1.42× behind FSMoE's
		// on identical schedules-free configs); model that as a uniform
		// compute-side overhead.
		m.GEMM = m.GEMM.Scale(DSMoEKernelOverhead)
		adj := make([]LayerSpec, len(layers))
		for i, l := range layers {
			adj[i] = l
			adj[i].V.DenseFwd *= DSMoEKernelOverhead
			adj[i].V.DenseBwd *= DSMoEKernelOverhead
		}
		layers = adj
	}

	// Gradient plan per system (§5 / §6.4 baselines).
	var gar *GarPlan
	switch sys {
	case SystemFSMoE:
		gar = m.PartitionGradients(layers, opt.RMax)
	case SystemFSMoENoIIO:
		gar = m.PartitionGradientsNoIIO(layers, opt.RMax)
	case SystemLina:
		gar = m.FixedChunkGarPlan(layers, opt.LinaChunkBytes)
	case SystemTutelImproved:
		gar = &GarPlan{MoEBytes: make([]float64, len(layers)), DenseBytes: make([]float64, len(layers))}
		for i, l := range layers {
			gar.DenseBytes[i] = l.V.GradBytes
			gar.TotalBytes += l.V.GradBytes
		}
	default: // DSMoE, Tutel: fully exposed at the end
		gar = &GarPlan{MoEBytes: make([]float64, len(layers)), DenseBytes: make([]float64, len(layers))}
		for _, l := range layers {
			gar.TotalBytes += l.V.GradBytes
		}
		gar.TailBytes = gar.TotalBytes
	}

	// Pipeline degrees.
	degF := make([]int, len(layers))
	degB := make([]int, len(layers))
	for i, l := range layers {
		switch sys {
		case SystemDSMoE:
			degF[i], degB[i] = 1, 1
		case SystemFSMoE:
			degF[i] = m.FindOptimalPipelineDegree(l.V, 0, Forward, opt.RMax).R
			degB[i] = m.FindOptimalPipelineDegree(l.V, m.TAR(gar.MoEBytes[i]), Backward, opt.RMax).R
		case SystemFSMoENoIIO:
			// Same scheduler discipline as FSMoE (per-phase adaptive
			// degrees) but tuned on the single-comm-stream pipeline it
			// actually runs.
			degF[i] = m.searchDegreeDES(l.V, ss, a2a, false, Forward, opt.RMax)
			degB[i] = m.searchDegreeDES(l.V, ss, a2a, false, Backward, opt.RMax)
		default: // Tutel family: one degree, tuned on the forward pipeline
			r := m.searchDegreeDES(l.V, ss, a2a, false, Forward, opt.RMax)
			degF[i], degB[i] = r, r
		}
	}

	g := sim.NewGraph()
	dep := -1
	for i, l := range layers {
		dep = m.buildForwardLayer(g, l.V, degF[i], ss, a2a, iio, dep)
	}
	for i := len(layers) - 1; i >= 0; i-- {
		lina := 0.0
		if sys == SystemLina {
			lina = opt.LinaChunkBytes
		}
		dep = m.buildBackwardLayer(g, layers[i].V, degB[i], ss, a2a, iio, dep,
			gar.MoEBytes[i], gar.DenseBytes[i], lina)
	}
	if gar.TailBytes > 0 {
		g.Add("A-tail", KindAR, ss.inter, m.TAR(gar.TailBytes), dep)
	}
	tr := g.Run()
	return &IterationResult{
		System: sys,
		Total:  tr.Makespan,
		Trace:  tr,
		DegFwd: degF,
		DegBwd: degB,
		Gar:    gar,
	}, nil
}

// searchDegreeDES picks the pipeline degree minimizing the DES makespan of
// a single layer in the given phase — the adaptive search PipeMoE
// performs, used for the Tutel-family baselines and the No-IIO ablation.
func (m Models) searchDegreeDES(v Volumes, ss streamSet, a2a perfmodel.Linear, iio bool, phase Phase, rMax int) int {
	bestR, bestT := 1, math.Inf(1)
	for r := 1; r <= rMax; r++ {
		g := sim.NewGraph()
		if phase == Forward {
			m.buildForwardLayer(g, v, r, ss, a2a, iio, -1)
		} else {
			m.buildBackwardLayer(g, v, r, ss, a2a, iio, -1, 0, 0, 0)
		}
		if t := g.Run().Makespan; t < bestT {
			bestR, bestT = r, t
		}
	}
	return bestR
}

// SimulateSingleLayer is a convenience wrapper for the Table 5 experiments
// (one configured generalized layer with its gradient aggregation).
func (m Models) SimulateSingleLayer(v Volumes, sys System, opt BuildOptions) (*IterationResult, error) {
	return m.SimulateIteration([]LayerSpec{{V: v}}, sys, opt)
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randLayers(r *xrand.RNG, n int) []LayerSpec {
	layers := make([]LayerSpec, n)
	for i := range layers {
		layers[i] = LayerSpec{V: randVols(r)}
	}
	return layers
}

// TestPartitionConservesBytes: Step 1 + Step 2 + tail must account for
// every gradient byte, with nothing negative.
func TestPartitionConservesBytes(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		layers := randLayers(r, 1+r.Intn(6))
		plan := m.PartitionGradients(layers, 8)
		sum := plan.TailBytes
		if plan.TailBytes < -1e-6 {
			return false
		}
		for i := range plan.MoEBytes {
			if plan.MoEBytes[i] < -1e-6 || plan.DenseBytes[i] < -1e-6 {
				return false
			}
			sum += plan.MoEBytes[i] + plan.DenseBytes[i]
		}
		return abs(sum-plan.TotalBytes) < 1e-3*plan.TotalBytes+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPartitionEmptyGradients(t *testing.T) {
	m := testModels()
	layers := randLayers(xrand.New(1), 3)
	for i := range layers {
		layers[i].V.GradBytes = 0
	}
	plan := m.PartitionGradients(layers, 8)
	if plan.TotalBytes != 0 || plan.TailBytes != 0 || plan.Overlapped() != 0 {
		t.Fatalf("empty-gradient plan: %+v", plan)
	}
}

// TestPartitionDenseWindowRespected: the dense slice of a layer must fit
// its backward window.
func TestPartitionDenseWindowRespected(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		layers := randLayers(r, 1+r.Intn(5))
		plan := m.PartitionGradients(layers, 8)
		for i, l := range layers {
			if plan.DenseBytes[i] > 0 && m.TAR(plan.DenseBytes[i]) > l.V.DenseBwd+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionBeatsNoPartition: overlapping gradients must not make the
// schedule slower than leaving them all in the tail.
func TestPartitionBeatsNoPartition(t *testing.T) {
	m := testModels()
	r := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		layers := randLayers(r, 2+r.Intn(4))
		fs, err := m.SimulateIteration(layers, SystemFSMoE, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild with a plan that exposes everything, by zeroing grad
		// volumes and appending an explicit tail of the same size.
		total := 0.0
		stripped := make([]LayerSpec, len(layers))
		for i, l := range layers {
			total += l.V.GradBytes
			stripped[i] = l
			stripped[i].V.GradBytes = 0
		}
		bare, err := m.SimulateIteration(stripped, SystemFSMoE, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		noOverlap := bare.Total + m.TAR(total)
		if fs.Total > noOverlap*1.02+1e-6 {
			t.Fatalf("partitioned %v slower than exposed tail %v", fs.Total, noOverlap)
		}
	}
}

// TestStep2ActivatesWhenWindowsAreSmall: when windows cannot absorb the
// gradient, Step 2 must still assign extra budget into MoE layers whenever
// that beats the exposed tail.
func TestStep2ActivatesWhenWindowsAreSmall(t *testing.T) {
	m := testModels()
	// Tiny dense windows and a big gradient; the MoE pipeline has slack on
	// the inter stream in the compute-bound regime.
	v := Volumes{NA2A: 1e6, NAG: 8e5, NRS: 8e5, ExpMACs: 4e11, ExpGEMMs: 2,
		DenseFwd: 0.1, DenseBwd: 0.2, GradBytes: 2e8}
	layers := []LayerSpec{{V: v}, {V: v}}
	plan := m.PartitionGradients(layers, 8)
	if plan.Overlapped() == 0 {
		t.Fatal("partitioning hid nothing despite compute-bound slack")
	}
	if plan.TailBytes >= plan.TotalBytes {
		t.Fatal("tail was not reduced")
	}
}

func TestFixedChunkPlanSemantics(t *testing.T) {
	m := testModels()
	// Lina launches each layer's gradients eagerly from its own backward
	// position, chunked; the plan itself carries the full volume per layer
	// and the chunking is realized at schedule-build time.
	v := Volumes{NA2A: 1e6, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2,
		DenseFwd: 1, DenseBwd: 3, GradBytes: 100e6}
	plan := m.FixedChunkGarPlan([]LayerSpec{{V: v}, {V: v}}, 30e6)
	if plan.DenseBytes[0] != 100e6 || plan.DenseBytes[1] != 100e6 {
		t.Fatalf("eager plan: %v", plan.DenseBytes)
	}
	if plan.TailBytes != 0 || plan.TotalBytes != 200e6 {
		t.Fatalf("plan accounting: tail=%v total=%v", plan.TailBytes, plan.TotalBytes)
	}
	// Degenerate chunk size: everything stays in the tail.
	plan0 := m.FixedChunkGarPlan([]LayerSpec{{V: v}}, 0)
	if plan0.TailBytes != 100e6 || plan0.DenseBytes[0] != 0 {
		t.Fatalf("zero chunk size should expose all: %+v", plan0)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// hybridVolsFor builds a physically-shaped volsFor for a hybrid sweep:
// the dispatch/combine AlltoAll volume is independent of the group size,
// while the in-group AllGather/ReduceScatter traffic scales with the
// (g-1)/g ring factor plus a hidden-activation exchange term growing with
// the group size.
func hybridVolsFor(r *xrand.RNG) func(g int) Volumes {
	base := randVols(r)
	hidden := r.Range(1e5, 3e7)
	return func(g int) Volumes {
		v := base
		f := float64(g-1) / float64(g)
		v.NAG = base.NAG*f + hidden*f
		v.NRS = base.NRS * f
		return v
	}
}

// TestGridMatchesExhaustive: the 2-D search must agree with a brute-force
// scan of every (g, r) cell on the predicted time (ties on distinct cells
// with equal t_moe are acceptable).
func TestGridMatchesExhaustive(t *testing.T) {
	m := testModels()
	groups := []int{1, 2, 4, 8}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		volsFor := hybridVolsFor(r)
		tgar := 0.0
		if r.Float64() < 0.5 {
			tgar = r.Range(0, 20)
		}
		phase := Forward
		if r.Float64() < 0.5 {
			phase = Backward
		}
		alg := m.FindOptimalPipelineGrid(groups, volsFor, tgar, phase, 16)
		ref := m.BestGridExhaustive(groups, volsFor, tgar, phase, 16)
		// Algorithm 1's per-g rounding can differ from the global scan by
		// the same tolerance the 1-D test allows; require the predicted
		// times to be within 2%.
		return alg.TMoE <= ref.TMoE*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGridDegenerateEdges: with a single candidate group size the grid
// search collapses to the 1-D Algorithm 1 for that size's volumes.
func TestGridDegenerateEdges(t *testing.T) {
	m := testModels()
	for _, g := range []int{1, 4} {
		volsFor := hybridVolsFor(xrand.New(uint64(g) + 7))
		grid := m.FindOptimalPipelineGrid([]int{g}, volsFor, 3, Backward, 16)
		oneD := m.FindOptimalPipelineDegree(volsFor(g), 3, Backward, 16)
		if grid.G != g || grid.R != oneD.R || grid.TMoE != oneD.TMoE {
			t.Fatalf("g=%d: grid %+v vs 1-D %+v", g, grid, oneD)
		}
	}
}

// TestGridPrefersCheaperGroup: when one group size strictly dominates
// (zero in-group traffic vs. heavy in-group traffic at equal AlltoAll
// cost), the grid must pick it.
func TestGridPrefersCheaperGroup(t *testing.T) {
	m := testModels()
	base := randVols(xrand.New(3))
	volsFor := func(g int) Volumes {
		v := base
		if g == 1 {
			v.NAG, v.NRS = 0, 0
		} else {
			v.NAG, v.NRS = base.NAG*10, base.NRS*10
		}
		return v
	}
	got := m.FindOptimalPipelineGrid([]int{1, 4}, volsFor, 0, Forward, 16)
	if got.G != 1 {
		t.Fatalf("grid picked g=%d over the strictly cheaper g=1", got.G)
	}
}

// TestGridSkipsInvalidAndFallsBack: invalid candidate volumes are skipped;
// an entirely invalid set falls back to g=1.
func TestGridSkipsInvalidAndFallsBack(t *testing.T) {
	m := testModels()
	base := randVols(xrand.New(4))
	volsFor := func(g int) Volumes {
		v := base
		if g == 2 {
			v.NA2A = -1 // invalid
		}
		return v
	}
	got := m.FindOptimalPipelineGrid([]int{2, 4}, volsFor, 0, Forward, 16)
	if got.G != 4 {
		t.Fatalf("grid should skip the invalid g=2 cell, picked g=%d", got.G)
	}

	allBad := func(g int) Volumes { v := base; v.ExpGEMMs = 0; return v }
	fb := m.FindOptimalPipelineGrid([]int{2, 4}, allBad, 0, Forward, 16)
	if fb.G != 1 {
		t.Fatalf("fully-invalid grid should fall back to g=1, got g=%d", fb.G)
	}
	empty := m.FindOptimalPipelineGrid(nil, func(int) Volumes { return base }, 0, Forward, 16)
	if empty.G != 1 || empty.R < 1 {
		t.Fatalf("empty candidate set should fall back to g=1: %+v", empty)
	}
}

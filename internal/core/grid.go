package core

import "math"

// GridResult is the outcome of the 2-D Algorithm-1 search over
// (group size × pipeline degree). G is the chosen EP-group size; the
// embedded DegreeResult carries the optimal degree and predicted MoE time
// for that group size.
type GridResult struct {
	G int // chosen hybrid group size (1 ≡ pure EP, ranks ≡ pure ESP)
	DegreeResult
}

// FindOptimalPipelineGrid extends Algorithm 1 to the hybrid EP×ESP
// strategy: the group size g changes the per-layer collective volumes
// (larger groups shrink the AlltoAll peer set but grow the in-group
// AllGather/ReduceScatter), so each candidate g induces its own Volumes
// via volsFor and its own 1-D degree optimum. The grid optimum is the
// (g, r) cell minimizing the closed-form t_moe — the outer loop is exact
// because group sizes are the few divisors of the rank count, so no
// continuous relaxation over g is needed.
//
// groups lists the candidate group sizes (typically the divisors of the
// EP world size); volsFor maps a group size to that configuration's
// per-GPU volumes. Group sizes whose volumes fail Validate are skipped.
// An empty or fully-invalid candidate set falls back to g=1 with its
// 1-D result.
func (m Models) FindOptimalPipelineGrid(groups []int, volsFor func(g int) Volumes, tgar float64, phase Phase, rMax int) GridResult {
	best := GridResult{G: 0, DegreeResult: DegreeResult{R: 1, TMoE: math.Inf(1), Case: CaseUnknown}}
	for _, g := range groups {
		if g < 1 {
			continue
		}
		v := volsFor(g)
		if v.Validate() != nil {
			continue
		}
		dr := m.FindOptimalPipelineDegree(v, tgar, phase, rMax)
		if dr.TMoE < best.TMoE {
			best = GridResult{G: g, DegreeResult: dr}
		}
	}
	if best.G == 0 {
		v := volsFor(1)
		return GridResult{G: 1, DegreeResult: m.FindOptimalPipelineDegree(v, tgar, phase, rMax)}
	}
	return best
}

// BestGridExhaustive scans every (g, r) cell of the grid under the
// piecewise closed form — the brute-force reference the 2-D search is
// tested against.
func (m Models) BestGridExhaustive(groups []int, volsFor func(g int) Volumes, tgar float64, phase Phase, rMax int) GridResult {
	best := GridResult{G: 1, DegreeResult: DegreeResult{R: 1, TMoE: math.Inf(1), Case: CaseUnknown}}
	for _, g := range groups {
		if g < 1 {
			continue
		}
		v := volsFor(g)
		if v.Validate() != nil {
			continue
		}
		for r := 1; r <= rMax; r++ {
			if t := m.PipelineTime(v, tgar, phase, float64(r)); t < best.TMoE {
				best = GridResult{G: g, DegreeResult: DegreeResult{
					R: r, TMoE: t, Case: m.Classify(v, tgar, phase, float64(r)), TRCon: float64(r),
				}}
			}
		}
	}
	return best
}

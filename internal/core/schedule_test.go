package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/xrand"
)

func newGraphForward(m Models, v Volumes, r int, ss streamSet) *sim.Graph {
	g := sim.NewGraph()
	m.buildForwardLayer(g, v, r, ss, m.A2A, ss.inter != ss.intra, -1)
	return g
}

func TestSimulateIterationSmoke(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(1))
	for _, sys := range AllSystems() {
		res, err := m.SimulateSingleLayer(v, sys, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Total <= 0 || math.IsNaN(res.Total) {
			t.Fatalf("%s: makespan %v", sys, res.Total)
		}
		if len(res.DegFwd) != 1 || len(res.DegBwd) != 1 {
			t.Fatalf("%s: degree vectors %v %v", sys, res.DegFwd, res.DegBwd)
		}
	}
}

func TestSimulateIterationErrors(t *testing.T) {
	m := testModels()
	if _, err := m.SimulateIteration(nil, SystemFSMoE, BuildOptions{}); err == nil {
		t.Fatal("no layers should error")
	}
	bad := Volumes{NA2A: -1, ExpGEMMs: 2}
	if _, err := m.SimulateIteration([]LayerSpec{{V: bad}}, SystemFSMoE, BuildOptions{}); err == nil {
		t.Fatal("negative volume should error")
	}
}

// TestDSMoEIsSequential: with every task on one stream, the makespan must
// equal the sum of all durations (Fig. 3a).
func TestDSMoEIsSequential(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(2))
	res, err := m.SimulateSingleLayer(v, SystemDSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, iv := range res.Trace.Intervals {
		sum += iv.Finish - iv.Start
	}
	if math.Abs(res.Total-sum) > 1e-9 {
		t.Fatalf("DS-MoE makespan %v != serial sum %v", res.Total, sum)
	}
	if res.DegFwd[0] != 1 || res.DegBwd[0] != 1 {
		t.Fatal("DS-MoE must not pipeline")
	}
}

// TestSystemOrdering is the Table 5 ordering: on the canonical volume
// distribution each refinement must not lose to its predecessor (small
// solver tolerance allowed).
func TestSystemOrdering(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		v := randVols(r)
		get := func(sys System) float64 {
			res, err := m.SimulateSingleLayer(v, sys, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Total
		}
		dsmoe := get(SystemDSMoE)
		tutel := get(SystemTutel)
		improved := get(SystemTutelImproved)
		noiio := get(SystemFSMoENoIIO)
		fsmoe := get(SystemFSMoE)
		const tol = 1.03
		if tutel > dsmoe*tol {
			return false
		}
		if improved > tutel*tol {
			return false
		}
		if noiio > improved*tol {
			return false
		}
		return fsmoe <= noiio*tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFSMoEUsesThreeStreams(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(3))
	res, err := m.SimulateSingleLayer(v, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	busy := res.Trace.StreamBusy()
	for _, s := range []string{sim.StreamInter, sim.StreamIntra, sim.StreamCompute} {
		if busy[s] <= 0 {
			t.Fatalf("stream %s unused: %v", s, busy)
		}
	}
}

func TestTutelFamilyUsesTwoStreams(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(4))
	res, err := m.SimulateSingleLayer(v, SystemTutel, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	busy := res.Trace.StreamBusy()
	if len(busy) != 2 {
		t.Fatalf("tutel streams: %v", busy)
	}
}

// TestInterNodeNeverOverlapsItself: on FSMoE's inter stream, AlltoAll and
// Gradient-AllReduce intervals must not overlap — the §2.3 constraint that
// motivates the whole co-design.
func TestInterNodeNeverOverlapsItself(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(5))
	v.GradBytes = 1e8
	res, err := m.SimulateSingleLayer(v, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var inter []sim.Interval
	for _, iv := range res.Trace.Intervals {
		if iv.Task.Stream == sim.StreamInter {
			inter = append(inter, iv)
		}
	}
	for i := 0; i < len(inter); i++ {
		for j := i + 1; j < len(inter); j++ {
			a, b := inter[i], inter[j]
			if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
				t.Fatalf("inter-node tasks overlap: %q and %q", a.Task.Label, b.Task.Label)
			}
		}
	}
}

// TestFSMoEOverlapsInterWithIntra reproduces the Fig. 3c/d effect: some
// AlltoAll interval must overlap some AllGather/ReduceScatter interval.
func TestFSMoEOverlapsInterWithIntra(t *testing.T) {
	m := testModels()
	v := Volumes{NA2A: 3e7, NAG: 2.5e7, NRS: 2.5e7, ExpMACs: 5e10, ExpGEMMs: 2,
		DenseFwd: 2, DenseBwd: 4, GradBytes: 1e7}
	res, err := m.SimulateSingleLayer(v, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	overlap := false
	for _, a := range res.Trace.Intervals {
		if a.Task.Stream != sim.StreamInter || a.Task.Kind != KindA2A {
			continue
		}
		for _, b := range res.Trace.Intervals {
			if b.Task.Stream != sim.StreamIntra {
				continue
			}
			if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("FSMoE produced no inter/intra overlap on an overlap-friendly config")
	}
	// And the no-IIO ablation must indeed serialize them.
	res2, err := m.SimulateSingleLayer(v, SystemFSMoENoIIO, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total < res.Total-1e-9 {
		t.Fatalf("no-IIO (%v) beat FSMoE (%v)", res2.Total, res.Total)
	}
}

// TestFigure3ScheduleShapes renders the four Fig. 3 schedules and checks
// their qualitative structure via the Gantt text.
func TestFigure3ScheduleShapes(t *testing.T) {
	m := testModels()
	v := Volumes{NA2A: 3e7, NAG: 2e7, NRS: 2e7, ExpMACs: 1e11, ExpGEMMs: 2,
		DenseFwd: 2, DenseBwd: 4, GradBytes: 5e7}
	for _, sys := range []System{SystemDSMoE, SystemTutelImproved, SystemFSMoENoIIO, SystemFSMoE} {
		res, err := m.SimulateSingleLayer(v, sys, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gantt := res.Trace.Gantt(100)
		if !strings.Contains(gantt, "makespan") {
			t.Fatalf("%s: bad gantt", sys)
		}
	}
}

// TestGradientPartitioningHidesTail: with enough overlappable room, FSMoE
// must hide gradient synchronization that Tutel leaves exposed.
func TestGradientPartitioningHidesTail(t *testing.T) {
	m := testModels()
	v := Volumes{NA2A: 5e6, NAG: 4e6, NRS: 4e6, ExpMACs: 3e11, ExpGEMMs: 2,
		DenseFwd: 3, DenseBwd: 6, GradBytes: 3e7}
	layers := []LayerSpec{{V: v}, {V: v}, {V: v}, {V: v}}
	fs, err := m.SimulateIteration(layers, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := m.SimulateIteration(layers, SystemTutel, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Gar.TailBytes >= fs.Gar.TotalBytes/2 {
		t.Fatalf("FSMoE left %v of %v bytes exposed", fs.Gar.TailBytes, fs.Gar.TotalBytes)
	}
	if fs.Total >= tu.Total {
		t.Fatalf("FSMoE %v did not beat Tutel %v on overlap-friendly layers", fs.Total, tu.Total)
	}
}

// TestLinaChunkingCanLose: Lina's fixed 30 MB chunks are "hit or miss"
// (§6.4) — chunks larger than the local slack block the shared inter-node
// stream and each chunk pays a startup α, so Lina must not beat
// Tutel-Improved and must lose to FSMoE's adaptive slicing on a
// chunk-hostile configuration.
func TestLinaChunkingCanLose(t *testing.T) {
	m := testModels()
	v := Volumes{NA2A: 2e7, NAG: 1.5e7, NRS: 1.5e7, ExpMACs: 1e11, ExpGEMMs: 2,
		DenseFwd: 1, DenseBwd: 2, GradBytes: 2.5e8} // many chunks, tiny windows
	layers := []LayerSpec{{V: v}, {V: v}, {V: v}}
	lina, err := m.SimulateIteration(layers, SystemLina, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := m.SimulateIteration(layers, SystemTutelImproved, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := m.SimulateIteration(layers, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lina.Total < improved.Total-1e-9 {
		t.Fatalf("Lina %v beat Tutel-Improved %v despite per-chunk startup costs", lina.Total, improved.Total)
	}
	if fs.Total >= lina.Total {
		t.Fatalf("FSMoE %v should beat Lina %v here", fs.Total, lina.Total)
	}
}

func TestBreakdownContainsAllKinds(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(6))
	res, err := m.SimulateSingleLayer(v, SystemDSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Trace.Breakdown()
	for _, k := range []string{KindA2A, KindAG, KindRS, KindAR, KindExpert, KindOthers} {
		if bd[k] <= 0 {
			t.Fatalf("breakdown missing %s: %v", k, bd)
		}
	}
}

func TestMultiLayerDependencies(t *testing.T) {
	// Two layers: the second layer's forward must start after the first's
	// combine; total must exceed a single layer's.
	m := testModels()
	v := randVols(xrand.New(7))
	one, err := m.SimulateIteration([]LayerSpec{{V: v}}, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := m.SimulateIteration([]LayerSpec{{V: v}, {V: v}}, SystemFSMoE, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if two.Total <= one.Total {
		t.Fatalf("two layers (%v) not slower than one (%v)", two.Total, one.Total)
	}
}

package core

import (
	"testing"

	"repro/internal/xrand"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// pits an FSMoE mechanism against its naive replacement on the same
// workload, so `go test -bench=Ablation` quantifies what each piece buys.

// benchVols is a fixed, representative Table-4-like volume set.
func benchVols(n int) []Volumes {
	r := xrand.New(12345)
	out := make([]Volumes, n)
	for i := range out {
		out[i] = randVols(r)
	}
	return out
}

// BenchmarkAblationAdaptiveDegree compares Algorithm 1's adaptive degree
// against the fixed r=4 that a manually tuned system would hardcode.
func BenchmarkAblationAdaptiveDegree(b *testing.B) {
	m := testModels()
	vols := benchVols(50)
	var adaptive, fixed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adaptive, fixed = 0, 0
		for _, v := range vols {
			adaptive += m.FindOptimalPipelineDegree(v, 0, Backward, 16).TMoE
			fixed += m.PipelineTime(v, 0, Backward, 4)
		}
	}
	b.ReportMetric(fixed/adaptive, "fixed/adaptive-time-ratio")
}

// BenchmarkAblationPerPhaseDegree compares per-phase degrees (§4.4)
// against reusing the forward degree for backward (the Tutel/DeepSpeed
// behaviour §2.3 criticizes).
func BenchmarkAblationPerPhaseDegree(b *testing.B) {
	m := testModels()
	vols := benchVols(50)
	var perPhase, shared float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perPhase, shared = 0, 0
		for _, v := range vols {
			fwd := m.FindOptimalPipelineDegree(v, 0, Forward, 16)
			bwd := m.FindOptimalPipelineDegree(v, 0, Backward, 16)
			perPhase += fwd.TMoE + bwd.TMoE
			shared += fwd.TMoE + m.PipelineTime(v, 0, Backward, float64(fwd.R))
		}
	}
	b.ReportMetric(shared/perPhase, "shared/per-phase-time-ratio")
}

// BenchmarkAblationGradientPartitioning compares the §5 adaptive plan
// against a fully exposed tail across a 16-layer model.
func BenchmarkAblationGradientPartitioning(b *testing.B) {
	m := testModels()
	r := xrand.New(99)
	layers := make([]LayerSpec, 16)
	for i := range layers {
		layers[i] = LayerSpec{V: randVols(r)}
	}
	var withPlan, exposed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SimulateIteration(layers, SystemFSMoE, BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		withPlan = res.Total
		stripped := make([]LayerSpec, len(layers))
		total := 0.0
		for j, l := range layers {
			stripped[j] = l
			total += l.V.GradBytes
			stripped[j].V.GradBytes = 0
		}
		bare, err := m.SimulateIteration(stripped, SystemFSMoE, BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		exposed = bare.Total + m.TAR(total)
	}
	b.ReportMetric(exposed/withPlan, "exposed/partitioned-time-ratio")
}

// TestAblationRatiosSane pins the ablation directions: each FSMoE
// mechanism must not lose to its naive replacement on the benchmark
// volume set.
func TestAblationRatiosSane(t *testing.T) {
	m := testModels()
	vols := benchVols(60)
	var adaptive, fixed, perPhaseB, sharedB float64
	for _, v := range vols {
		adaptive += m.FindOptimalPipelineDegree(v, 0, Backward, 16).TMoE
		fixed += m.PipelineTime(v, 0, Backward, 4)
		fwd := m.FindOptimalPipelineDegree(v, 0, Forward, 16)
		perPhaseB += m.FindOptimalPipelineDegree(v, 0, Backward, 16).TMoE
		sharedB += m.PipelineTime(v, 0, Backward, float64(fwd.R))
	}
	if adaptive > fixed+1e-9 {
		t.Fatalf("adaptive degrees (%v) lost to fixed r=4 (%v)", adaptive, fixed)
	}
	if perPhaseB > sharedB+1e-9 {
		t.Fatalf("per-phase degrees (%v) lost to shared degrees (%v)", perPhaseB, sharedB)
	}
	if fixed/adaptive < 1.005 {
		t.Logf("note: fixed r=4 nearly optimal on this volume set (ratio %.4f)", fixed/adaptive)
	}
}

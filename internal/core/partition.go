package core

import (
	"repro/internal/solve"
)

// LayerSpec is one generalized layer of the model being scheduled.
type LayerSpec struct {
	V Volumes
}

// GarPlan is the outcome of the adaptive gradient partitioning (§5):
// how many Gradient-AllReduce bytes each generalized layer hides, and the
// tail that remains exposed at the end of the backward pass.
type GarPlan struct {
	// MoEBytes[i] is the gradient volume overlapped inside layer i's MoE
	// pipeline; the schedule passes t_ar(MoEBytes[i]) to Algorithm 1 as
	// tgar (Step 1 fill plus the Step 2 assignment).
	MoEBytes []float64
	// DenseBytes[i] is the gradient volume overlapped with layer i's dense
	// ("Others") backward window.
	DenseBytes []float64
	// TailBytes is the remainder synchronized sequentially after backward.
	TailBytes float64
	// TotalBytes is the model's full gradient volume (invariant: the plan
	// conserves it).
	TotalBytes float64
}

// HiddenBytes returns the bytes the plan hides around layer i's backward:
// the MoE-pipeline window plus the dense-backward window. This is the
// per-layer budget the executable gradsync.Syncer materializes as
// AllReduce slices in that layer's backward stream plan.
func (g *GarPlan) HiddenBytes(i int) float64 { return g.MoEBytes[i] + g.DenseBytes[i] }

// Overlapped returns the total bytes hidden by the plan.
func (g *GarPlan) Overlapped() float64 {
	s := 0.0
	for i := range g.MoEBytes {
		s += g.MoEBytes[i] + g.DenseBytes[i]
	}
	return s
}

// PartitionGradients runs the two-step partitioning of §5 over the model's
// layers (index 0 = first layer; backward visits them in reverse).
//
// Step 1 (§5.2): walk layers in backward-execution order; the gradients
// produced by already-finished layers form a pending pool that greedily
// fills each layer's overlappable windows — the MoE pipeline slack
// t_olp_moe (at the tgar=0 optimal degree) and the dense backward block.
//
// Step 2 (§5.3): the pool remaining after Step 1 is assigned to the MoE
// layers as extra tgar budget by differential evolution, minimizing
// Σ_i f_moe^i(t_ar(x_i)) + t_ar(tail) exactly as Eq. 5 formulates (the
// extra budget stretches a layer per its case objective, which can still
// beat paying a fully exposed tail).
func (m Models) PartitionGradients(layers []LayerSpec, rMax int) *GarPlan {
	return m.partition(layers, rMax, m.TOlpMoE, true)
}

// PartitionGradientsNoIIO is the partitioning used by the FSMoE-No-IIO
// ablation: the MoE window formula accounts for intra-node collectives
// sharing the inter-node stream, and the Step 2 stretch assignment is
// disabled (its case objectives assume the three-stream schedule).
func (m Models) PartitionGradientsNoIIO(layers []LayerSpec, rMax int) *GarPlan {
	return m.partition(layers, rMax, m.TOlpMoENoIIO, false)
}

func (m Models) partition(layers []LayerSpec, rMax int, window func(Volumes, Phase, float64) float64, step2 bool) *GarPlan {
	n := len(layers)
	plan := &GarPlan{
		MoEBytes:   make([]float64, n),
		DenseBytes: make([]float64, n),
	}
	for _, l := range layers {
		plan.TotalBytes += l.V.GradBytes
	}
	if plan.TotalBytes == 0 {
		return plan
	}

	// Step 1: greedy fill in backward order (layer n-1 first). Gradients
	// become available progressively: earlier-finished layers' gradients
	// can fill layer i's MoE window, and layer i's own (expert-dominated)
	// gradients are produced by its expert backward, in time for its own
	// dense window.
	pending := 0.0
	for i := n - 1; i >= 0; i-- {
		v := layers[i].V
		if pending > 0 {
			deg := m.FindOptimalPipelineDegree(v, 0, Backward, rMax)
			moeWindow := window(v, Backward, float64(deg.R))
			fit := m.ARInverse(min2(m.TAR(pending), moeWindow))
			if fit > pending {
				fit = pending
			}
			plan.MoEBytes[i] = fit
			pending -= fit
		}
		pending += v.GradBytes
		if pending > 0 && v.DenseBwd > 0 {
			fit := m.ARInverse(min2(m.TAR(pending), v.DenseBwd))
			if fit > pending {
				fit = pending
			}
			plan.DenseBytes[i] = fit
			pending -= fit
		}
	}
	remaining := pending
	if remaining <= 0 || !step2 {
		plan.TailBytes = remaining
		if plan.TailBytes < 0 {
			plan.TailBytes = 0
		}
		return plan
	}

	// Step 2: distribute the remainder as extra MoE tgar budget via
	// differential evolution (Eq. 5). Variables are per-layer extra bytes;
	// any unassigned remainder becomes the tail.
	if n > 0 {
		obj := func(x []float64) float64 {
			used := 0.0
			total := 0.0
			for i := range x {
				xi := x[i]
				if used+xi > remaining {
					xi = remaining - used
					if xi < 0 {
						xi = 0
					}
				}
				used += xi
				tg := m.TAR(plan.MoEBytes[i] + xi)
				deg := m.FindOptimalPipelineDegree(layers[i].V, tg, Backward, rMax)
				total += deg.TMoE
			}
			tail := remaining - used
			if tail > 0 {
				total += m.TAR(tail)
			}
			return total
		}
		bounds := make([][2]float64, n)
		for i := range bounds {
			bounds[i] = [2]float64{0, remaining}
		}
		even := make([]float64, n)
		for i := range even {
			even[i] = remaining / float64(n)
		}
		best, _ := solve.DifferentialEvolution(obj, bounds, solve.DEOptions{
			Seed: 7, Gens: 60, PopSize: minInt(10*n, 60), TolStall: 12, InitCenter: even,
		})
		used := 0.0
		for i := range best {
			xi := best[i]
			if used+xi > remaining {
				xi = remaining - used
				if xi < 0 {
					xi = 0
				}
			}
			plan.MoEBytes[i] += xi
			used += xi
		}
		remaining -= used
	}
	plan.TailBytes = remaining
	return plan
}

// FixedChunkGarPlan is the Lina baseline (§6.4): each layer's gradients
// are synchronized as fixed-size chunks (30 MB in the paper) launched as
// soon as the layer's backward produces them, regardless of how much slack
// the schedule actually has at that point. Chunks that exceed the local
// dense window block the next layer's AlltoAll on the shared inter-node
// stream — the "hit or miss" behaviour §6.4 describes — and every chunk
// pays a collective startup α that FSMoE's adaptive slicing avoids.
func (m Models) FixedChunkGarPlan(layers []LayerSpec, chunkBytes float64) *GarPlan {
	n := len(layers)
	plan := &GarPlan{
		MoEBytes:   make([]float64, n),
		DenseBytes: make([]float64, n),
	}
	for i, l := range layers {
		plan.TotalBytes += l.V.GradBytes
		plan.DenseBytes[i] = l.V.GradBytes
	}
	if chunkBytes <= 0 {
		// Degenerate chunking: nothing can launch early; everything
		// synchronizes at the end.
		for i := range plan.DenseBytes {
			plan.DenseBytes[i] = 0
		}
		plan.TailBytes = plan.TotalBytes
	}
	return plan
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

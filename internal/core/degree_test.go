package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func testModels() Models { return ModelsFromCluster(topology.TestbedA()) }

// randVols draws volumes in the range the Table 4 grid induces on the two
// testbeds. NAG ≈ NRS, as for real ESP collectives — the assumption §4.2
// states ("AllGather and ReduceScatter require similar durations") and the
// closed forms rely on.
func randVols(r *xrand.RNG) Volumes {
	gemms := 2
	if r.Float64() < 0.5 {
		gemms = 3
	}
	esp := r.Range(5e5, 6e7)
	return Volumes{
		NA2A:      r.Range(5e5, 6e7),
		NAG:       esp,
		NRS:       esp * r.Range(0.95, 1.05),
		ExpMACs:   r.Range(1e8, 4e11),
		ExpGEMMs:  gemms,
		DenseFwd:  r.Range(0.2, 6),
		DenseBwd:  r.Range(0.4, 12),
		GradBytes: r.Range(1e5, 2e8),
	}
}

func TestCaseClassificationExhaustive(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		v := randVols(r)
		tgar := r.Range(0, 30)
		for ri := 1; ri <= 16; ri++ {
			if m.Classify(v, tgar, Backward, float64(ri)) == CaseUnknown {
				return false
			}
			if m.Classify(v, tgar, Forward, float64(ri)) == CaseUnknown {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCaseTimeUnknownIsInf(t *testing.T) {
	m := testModels()
	v := randVols(xrand.New(1))
	if !math.IsInf(m.CaseTime(CaseUnknown, v, 0, Forward, 1), 1) {
		t.Fatal("unknown case should cost +Inf")
	}
}

// TestAlgorithm1MatchesExhaustive: the closed-form solver of Algorithm 1
// must match a brute-force scan of the piecewise objective.
func TestAlgorithm1MatchesExhaustive(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		v := randVols(r)
		tgar := 0.0
		if r.Float64() < 0.5 {
			tgar = r.Range(0, 20)
		}
		phase := Forward
		if r.Float64() < 0.5 {
			phase = Backward
		}
		alg := m.FindOptimalPipelineDegree(v, tgar, phase, 16)
		exh := m.BestDegreeExhaustive(v, tgar, phase, 16)
		// The algorithm may pick a different degree with near-equal cost;
		// what matters is the predicted time.
		return alg.TMoE <= exh.TMoE*1.02+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithm1DegreeNearDESOptimal: the degree Algorithm 1 picks must be
// near-optimal on the actual discrete-event schedule, not just on its own
// closed form — the end-to-end soundness check.
func TestAlgorithm1DegreeNearDESOptimal(t *testing.T) {
	m := testModels()
	ss := streamsFor(SystemFSMoE)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		v := randVols(r)
		alg := m.FindOptimalPipelineDegree(v, 0, Forward, 16)
		desAt := func(ri int) float64 {
			g := newGraphForward(m, v, ri, ss)
			return g.Run().Makespan
		}
		tAlg := desAt(alg.R)
		best := math.Inf(1)
		for ri := 1; ri <= 16; ri++ {
			if tb := desAt(ri); tb < best {
				best = tb
			}
		}
		return tAlg <= best*1.10+1e-9 // within 10% of the DES optimum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOlpMoENonNegative(t *testing.T) {
	m := testModels()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		v := randVols(r)
		for ri := 1; ri <= 16; ri++ {
			if m.TOlpMoE(v, Backward, float64(ri)) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFig4CasesReachable drives one hand-built configuration into each of
// the four regimes of Fig. 4.
func TestFig4CasesReachable(t *testing.T) {
	m := testModels()
	cases := []struct {
		name string
		v    Volumes
		tgar float64
		want ScheduleCase
	}{
		{
			// Huge gradient: inter-node communication dominates.
			name: "case1",
			v:    Volumes{NA2A: 2e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2},
			tgar: 200,
			want: Case1,
		},
		{
			// Massive experts, modest comm: compute dominates.
			name: "case2",
			v:    Volumes{NA2A: 2e6, NAG: 1e6, NRS: 1e6, ExpMACs: 8e11, ExpGEMMs: 2},
			tgar: 0,
			want: Case2,
		},
		{
			// Big AlltoAll, small everything else.
			name: "case3",
			v:    Volumes{NA2A: 6e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2},
			tgar: 0,
			want: Case3,
		},
		{
			// Intra-node collectives dominate (slow PCIe regime).
			name: "case4",
			v:    Volumes{NA2A: 1e6, NAG: 8e7, NRS: 8e7, ExpMACs: 1e9, ExpGEMMs: 2},
			tgar: 0,
			want: Case4,
		},
	}
	// Classify at the paper's illustrative degree r=2 (Fig. 4); at r=1 the
	// 2(r-1) pipeline terms vanish and every config degenerates to
	// Case 1/2.
	for _, c := range cases {
		got := m.Classify(c.v, c.tgar, Backward, 2)
		if got != c.want {
			t.Errorf("%s: classified %v at r=2, want %v", c.name, got, c.want)
		}
	}
}

// TestForwardBackwardDegreesCanDiffer reproduces the §2.3 motivation: the
// backward pass doubles expert compute, so its optimal degree differs for
// many configurations.
func TestForwardBackwardDegreesCanDiffer(t *testing.T) {
	m := testModels()
	r := xrand.New(99)
	differ := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := randVols(r)
		f := m.FindOptimalPipelineDegree(v, 0, Forward, 16)
		b := m.FindOptimalPipelineDegree(v, 0, Backward, 16)
		if f.R != b.R {
			differ++
		}
	}
	// The paper found 912/1458 ≈ 63% differ; our volume distribution need
	// not match exactly, but a substantial fraction must.
	if differ < trials/5 {
		t.Fatalf("only %d/%d configurations have phase-dependent degrees", differ, trials)
	}
}

func TestDegreeBounds(t *testing.T) {
	m := testModels()
	r := xrand.New(5)
	for i := 0; i < 50; i++ {
		v := randVols(r)
		res := m.FindOptimalPipelineDegree(v, 0, Forward, 8)
		if res.R < 1 || res.R > 8 {
			t.Fatalf("degree %d outside [1,8]", res.R)
		}
	}
}

func TestDegreeDegenerateVolumes(t *testing.T) {
	m := testModels()
	v := Volumes{ExpGEMMs: 2} // everything zero
	res := m.FindOptimalPipelineDegree(v, 0, Forward, 16)
	if res.R != 1 {
		t.Fatalf("zero volumes should pick r=1, got %d", res.R)
	}
}

func TestBackwardExpertTimeDoubles(t *testing.T) {
	m := testModels()
	v := Volumes{NA2A: 1e6, NAG: 1e6, NRS: 1e6, ExpMACs: 1e10, ExpGEMMs: 2}
	fw := m.TExp(v, 1, Forward)
	bw := m.TExp(v, 1, Backward)
	if math.Abs(bw-2*fw) > 1e-9 {
		t.Fatalf("backward expert time %v, want 2×%v", bw, fw)
	}
}

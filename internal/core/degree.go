package core

import (
	"math"

	"repro/internal/solve"
)

// ScheduleCase identifies which of the four Fig. 4 regimes a pipeline
// degree falls into.
type ScheduleCase int

// Cases of §4.2.
const (
	CaseUnknown ScheduleCase = iota
	Case1                    // inter-node comm (AlltoAll + Gradient-AllReduce) dominates
	Case2                    // expert computation dominates
	Case3                    // AlltoAll dominates, Gradient-AllReduce negligible
	Case4                    // intra-node comm (AllGather/ReduceScatter) dominates
)

func (c ScheduleCase) String() string {
	switch c {
	case Case1:
		return "case1-internode"
	case Case2:
		return "case2-compute"
	case Case3:
		return "case3-alltoall"
	case Case4:
		return "case4-intranode"
	default:
		return "case-unknown"
	}
}

// predicates evaluates Q1–Q7 of §4.2 at degree r.
type predicates struct {
	q1, q2, q3, q4, q5, q6, q7 bool
}

func (m Models) preds(v Volumes, tgar float64, phase Phase, r float64) predicates {
	ta2a := m.TA2A(v, r)
	tag := m.TAG(v, r)
	trs := m.TRS(v, r)
	texp := m.TExp(v, r, phase)
	var p predicates
	p.q1 = ta2a > tag
	p.q2 = r*texp > 2*(r-1)*ta2a
	p.q3 = r*texp > (r-1)*(tag+trs)
	p.q4 = tgar > tag+trs
	p.q5 = tgar > r*texp-2*(r-1)*ta2a+tag+trs
	p.q6 = tgar > r*tag+r*trs-2*(r-1)*ta2a
	p.q7 = tgar > tag+trs+r*texp-2*(r-1)*ta2a
	return p
}

// Classify maps a degree to its schedule case. The four cases are
// exhaustive and mutually exclusive (§4.2).
func (m Models) Classify(v Volumes, tgar float64, phase Phase, r float64) ScheduleCase {
	p := m.preds(v, tgar, phase, r)
	switch {
	case (p.q1 && !p.q2 && p.q4) || (p.q1 && p.q2 && p.q5) ||
		(!p.q1 && !p.q3 && p.q6) || (!p.q1 && p.q3 && p.q7):
		return Case1
	case (p.q1 && p.q2 && !p.q5) || (!p.q1 && p.q3 && !p.q7):
		return Case2
	case p.q1 && !p.q2 && !p.q4:
		return Case3
	case !p.q1 && !p.q3 && !p.q6:
		return Case4
	}
	return CaseUnknown
}

// CaseTime evaluates the closed-form t_moe of the given case at degree r
// (Eq. 2 and the t_moe_2..4 formulas of §4.2).
func (m Models) CaseTime(c ScheduleCase, v Volumes, tgar float64, phase Phase, r float64) float64 {
	ta2a := m.TA2A(v, r)
	tag := m.TAG(v, r)
	trs := m.TRS(v, r)
	texp := m.TExp(v, r, phase)
	switch c {
	case Case1:
		return 2*r*ta2a + tgar
	case Case2:
		return 2*ta2a + tag + trs + r*texp
	case Case3:
		return 2*r*ta2a + tag + trs
	case Case4:
		return 2*ta2a + r*tag + r*trs
	default:
		return math.Inf(1)
	}
}

// PipelineTime evaluates the piecewise closed-form t_moe(r): the case the
// degree falls into decides the formula.
func (m Models) PipelineTime(v Volumes, tgar float64, phase Phase, r float64) float64 {
	return m.CaseTime(m.Classify(v, tgar, phase, r), v, tgar, phase, r)
}

// DegreeResult is the outcome of the pipeline-degree optimization.
type DegreeResult struct {
	R     int          // chosen pipeline degree
	TMoE  float64      // predicted MoE-block time at R (closed form)
	Case  ScheduleCase // regime at R
	TRCon float64      // continuous minimizer before rounding (diagnostics)
}

// FindOptimalPipelineDegree is Algorithm 1: for each of the four case
// objectives, find the continuous minimizer of its a·r + b/r + c form over
// the case's feasible region, then take the best across cases and round to
// the best feasible integer in [1, rMax]. tgar is 0 in the forward phase
// and the assigned Gradient-AllReduce budget in the backward phase (§4.4,
// §5).
func (m Models) FindOptimalPipelineDegree(v Volumes, tgar float64, phase Phase, rMax int) DegreeResult {
	if rMax < 1 {
		rMax = 32
	}
	lo, hi := 1.0, float64(rMax)

	type cand struct {
		r float64
		t float64
		c ScheduleCase
	}
	var cands []cand

	// Decompose each case objective into a·r + b/r + c using the chunked
	// models (t_*,r = α + βn/r):
	//   f1 = 2rα_a2a + 2nβ_a2a + tgar                     → a=2α_a2a, b=0
	//   f2 = rα_exp + (βn)_exp + 2t_a2a,r + t_ag,r + t_rs,r
	//        → a=α_exp', b=2nβ_a2a + nβ_ag + nβ_rs
	//   f3 = 2rα_a2a + 2nβ_a2a + t_ag,r + t_rs,r          → a=2α_a2a, b=nβ_ag+nβ_rs
	//   f4 = r(α_ag+α_rs) + nβ_ag+nβ_rs + 2t_a2a,r        → a=α_ag+α_rs, b=2nβ_a2a
	expLin, expN := m.expertModel(v, phase)
	ab := [5][2]float64{
		Case1: {2 * m.A2A.Alpha, 0},
		Case2: {expLin.Alpha, 2*v.NA2A*m.A2A.Beta + v.NAG*m.AG.Beta + v.NRS*m.RS.Beta},
		Case3: {2 * m.A2A.Alpha, v.NAG*m.AG.Beta + v.NRS*m.RS.Beta},
		Case4: {m.AG.Alpha + m.RS.Alpha, 2 * v.NA2A * m.A2A.Beta},
	}
	_ = expN
	for _, c := range []ScheduleCase{Case1, Case2, Case3, Case4} {
		a, b := ab[c][0], ab[c][1]
		rCont := solve.MinimizeRational(a, b, lo, hi)
		// The analytic minimizer may be infeasible for this case; project
		// onto the feasible set by scanning (the SLSQP role). Constraint
		// sets here are unions of intervals in r, so a grid+refine search
		// is robust.
		feasObj := func(r float64) float64 {
			if m.Classify(v, tgar, phase, r) != c {
				return math.Inf(1)
			}
			return m.CaseTime(c, v, tgar, phase, r)
		}
		if m.Classify(v, tgar, phase, rCont) == c {
			cands = append(cands, cand{rCont, m.CaseTime(c, v, tgar, phase, rCont), c})
			continue
		}
		rFeas, tFeas := solve.Minimize1D(feasObj, lo, hi, 4*rMax)
		if !math.IsInf(tFeas, 1) {
			cands = append(cands, cand{rFeas, tFeas, c})
		}
	}

	best := cand{r: 1, t: math.Inf(1), c: CaseUnknown}
	for _, c := range cands {
		if c.t < best.t {
			best = c
		}
	}
	if math.IsInf(best.t, 1) {
		// Pathological volumes (e.g. everything zero): fall back to r=1.
		return DegreeResult{R: 1, TMoE: m.PipelineTime(v, tgar, phase, 1), Case: m.Classify(v, tgar, phase, 1), TRCon: 1}
	}
	// Round to the best integer neighbourhood under the true piecewise
	// objective.
	bestR, bestT := 1, math.Inf(1)
	for _, ri := range []int{int(math.Floor(best.r)), int(math.Ceil(best.r)), int(math.Floor(best.r)) - 1, int(math.Ceil(best.r)) + 1} {
		if ri < 1 || ri > rMax {
			continue
		}
		if t := m.PipelineTime(v, tgar, phase, float64(ri)); t < bestT {
			bestR, bestT = ri, t
		}
	}
	return DegreeResult{
		R:     bestR,
		TMoE:  bestT,
		Case:  m.Classify(v, tgar, phase, float64(bestR)),
		TRCon: best.r,
	}
}

// BestDegreeExhaustive scans every integer degree in [1, rMax] under the
// piecewise closed form — the brute-force reference Algorithm 1 is tested
// against.
func (m Models) BestDegreeExhaustive(v Volumes, tgar float64, phase Phase, rMax int) DegreeResult {
	bestR, bestT := 1, math.Inf(1)
	for r := 1; r <= rMax; r++ {
		if t := m.PipelineTime(v, tgar, phase, float64(r)); t < bestT {
			bestR, bestT = r, t
		}
	}
	return DegreeResult{R: bestR, TMoE: bestT, Case: m.Classify(v, tgar, phase, float64(bestR)), TRCon: float64(bestR)}
}

// TOlpMoE is the overlappable time inside the MoE pipeline when tgar=0
// (§5.2): the slack on the inter-node stream that gradient slices can fill
// without extending the schedule.
func (m Models) TOlpMoE(v Volumes, phase Phase, r float64) float64 {
	ta2a := m.TA2A(v, r)
	tag := m.TAG(v, r)
	trs := m.TRS(v, r)
	texp := m.TExp(v, r, phase)
	switch m.Classify(v, 0, phase, r) {
	case Case2:
		return r*texp + tag + trs - 2*(r-1)*ta2a
	case Case3:
		return tag + trs
	case Case4:
		return r*tag + r*trs - 2*(r-1)*ta2a
	default:
		// With tgar=0, Case 1 requires one of Q4..Q7 with tgar > (non-
		// negative term); only possible when the term is negative, meaning
		// the stream is saturated: no overlappable slack.
		return 0
	}
}

// TOlpMoENoIIO is the overlappable slack when intra- and inter-node
// collectives share one communication stream (the FSMoE-No-IIO ablation):
// the stream's idle time in the compute-bound regime, r·t_exp minus the
// pipelined communication it must interleave.
func (m Models) TOlpMoENoIIO(v Volumes, phase Phase, r float64) float64 {
	ta2a := m.TA2A(v, r)
	tag := m.TAG(v, r)
	trs := m.TRS(v, r)
	texp := m.TExp(v, r, phase)
	slack := r*texp - 2*(r-1)*ta2a - (r-1)*(tag+trs)
	if slack < 0 {
		return 0
	}
	return slack
}

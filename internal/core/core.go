// Package core implements the paper's primary contribution: performance-
// model-driven task scheduling for MoE training.
//
// It contains
//
//   - the linear task-duration models of §4.1 (thin wrappers over
//     internal/perfmodel) and the per-layer volume description;
//   - the pipeline-degree optimizer of §4.2–4.3: predicates Q1–Q7, the four
//     schedule cases of Fig. 4, the closed-form case objectives, and
//     Algorithm 1 (FindOptimalPipelineDegree), solved per phase (§4.4);
//   - the adaptive gradient-partitioning method of §5 (greedy Step 1 over
//     overlappable windows, differential-evolution Step 2);
//   - schedule builders that emit discrete-event graphs (internal/sim) for
//     FSMoE and for every baseline the paper compares against:
//     DeepSpeed-MoE, Tutel (PipeMoE), Tutel-Improved, PipeMoE+Lina, and
//     FSMoE-No-IIO.
//
// All durations are milliseconds; volumes are bytes (collectives) or
// multiply-accumulates (compute).
package core

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/topology"
)

// Models bundles the fitted linear performance models the scheduler
// consumes (§4.1).
type Models struct {
	A2A     perfmodel.Linear // hierarchical AlltoAll (2DH) — inter-node
	A2AFlat perfmodel.Linear // direct AlltoAll (DeepSpeed-MoE) — inter-node
	AG      perfmodel.Linear // ESP-AllGather — intra-node
	RS      perfmodel.Linear // ESP-ReduceScatter — intra-node
	AR      perfmodel.Linear // Gradient-AllReduce — inter-node
	GEMM    perfmodel.Linear // per-GEMM compute

	// IIOContention is the fractional intra-node slowdown paid when the
	// schedule deliberately overlaps intra- with inter-node collectives
	// (kernel/fabric contention; see topology.Cluster.IIOContention).
	// Only the FSMoE system pays it — it is the only schedule that
	// co-executes the two.
	IIOContention float64
}

// InflateIntra returns a copy of the models with intra-node collective
// costs raised by the IIO contention factor. FSMoE plans and executes
// against these costs; all other systems run intra-node collectives alone
// and use the base models.
func (m Models) InflateIntra() Models {
	out := m
	out.AG = perfmodel.Linear{Alpha: m.AG.Alpha, Beta: m.AG.Beta * (1 + m.IIOContention)}
	out.RS = perfmodel.Linear{Alpha: m.RS.Alpha, Beta: m.RS.Beta * (1 + m.IIOContention)}
	return out
}

// ModelsFromCluster derives exact models from a testbed's ground-truth
// coefficients (what a perfect profiling run would recover).
func ModelsFromCluster(c *topology.Cluster) Models {
	flatAlpha := c.AlphaA2A + float64(c.Nodes-1)*c.FlatA2AAlphaPeer
	flatBeta := c.BetaA2A * c.FlatA2ABWPenalty * (1 + c.FlatA2ACongestion*float64(c.Nodes-1))
	return Models{
		A2A:     perfmodel.Linear{Alpha: c.AlphaA2A, Beta: c.BetaA2A},
		A2AFlat: perfmodel.Linear{Alpha: flatAlpha, Beta: flatBeta},
		AG:      perfmodel.Linear{Alpha: c.AlphaAG, Beta: c.BetaAG},
		RS:      perfmodel.Linear{Alpha: c.AlphaRS, Beta: c.BetaRS},
		AR:      perfmodel.Linear{Alpha: c.AlphaAR, Beta: c.BetaAR},
		GEMM:    perfmodel.Linear{Alpha: c.AlphaGEMM, Beta: c.BetaGEMM},

		IIOContention: c.IIOContention,
	}
}

// ModelsFromFits adapts a profiled model set (the paper's actual workflow:
// microbenchmark, then fit).
func ModelsFromFits(cm *perfmodel.ClusterModels) Models {
	return Models{
		A2A:     cm.A2A.Linear,
		A2AFlat: cm.A2AFlat.Linear,
		AG:      cm.AG.Linear,
		RS:      cm.RS.Linear,
		AR:      cm.AR.Linear,
		GEMM:    cm.GEMM.Linear,

		IIOContention: cm.Cluster.IIOContention,
	}
}

// Volumes describes one generalized layer's work (§5.2's "MoE layer and
// other operations before the next MoE layer"), per GPU.
type Volumes struct {
	NA2A float64 // bytes moved by each AlltoAll (dispatch = combine)
	NAG  float64 // bytes received by the ESP-AllGather
	NRS  float64 // bytes of the ESP-ReduceScatter

	ExpMACs  float64 // forward expert MACs
	ExpGEMMs int     // GEMMs per expert forward (2 simple, 3 Mixtral); scales α_exp

	DenseFwd float64 // "Others" forward duration, ms (attention, MP comms, gate, order)
	DenseBwd float64 // "Others" backward duration, ms

	GradBytes float64 // gradient bytes this generalized layer contributes to Gradient-AllReduce
}

// Validate reports impossible volumes.
func (v Volumes) Validate() error {
	if v.NA2A < 0 || v.NAG < 0 || v.NRS < 0 || v.ExpMACs < 0 || v.GradBytes < 0 {
		return fmt.Errorf("core: negative volume in %+v", v)
	}
	if v.ExpGEMMs <= 0 {
		return fmt.Errorf("core: ExpGEMMs must be positive, got %d", v.ExpGEMMs)
	}
	return nil
}

// Phase selects forward or backward task durations (§4.4).
type Phase int

// Phases.
const (
	Forward Phase = iota
	Backward
)

func (p Phase) String() string {
	if p == Backward {
		return "backward"
	}
	return "forward"
}

// expertModel returns the per-chunk expert-computation model for the phase.
// The α of a single GEMM is paid once per constituent GEMM (§4.1); the
// backward pass computes gradients of both weights and inputs, doubling the
// work (§4.4: modelled as 2× the forward α and volume).
func (m Models) expertModel(v Volumes, phase Phase) (perfmodel.Linear, float64) {
	lin := perfmodel.Linear{
		Alpha: m.GEMM.Alpha * float64(v.ExpGEMMs),
		Beta:  m.GEMM.Beta,
	}
	n := v.ExpMACs
	if phase == Backward {
		lin.Alpha *= 2
		n *= 2
	}
	return lin, n
}

// TA2A returns t_a2a,r — the per-chunk AlltoAll duration at pipeline degree r.
func (m Models) TA2A(v Volumes, r float64) float64 { return m.A2A.ChunkTime(v.NA2A, r) }

// TAG returns t_ag,r.
func (m Models) TAG(v Volumes, r float64) float64 { return m.AG.ChunkTime(v.NAG, r) }

// TRS returns t_rs,r.
func (m Models) TRS(v Volumes, r float64) float64 { return m.RS.ChunkTime(v.NRS, r) }

// TExp returns t_exp,r for the given phase.
func (m Models) TExp(v Volumes, r float64, phase Phase) float64 {
	lin, n := m.expertModel(v, phase)
	return lin.ChunkTime(n, r)
}

// TAR returns the Gradient-AllReduce duration for n bytes.
func (m Models) TAR(n float64) float64 { return m.AR.Time(n) }

// ARInverse returns the byte budget that fits in a window of t ms.
func (m Models) ARInverse(t float64) float64 { return m.AR.Inverse(t) }

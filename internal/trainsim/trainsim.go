// Package trainsim simulates end-to-end training iterations of whole MoE
// models under each scheduling system — the machinery behind Figs. 6–8 and
// Table 6.
//
// Without pipeline parallelism an iteration is one pass over all layers
// (core.SimulateIteration). With PP enabled, iterations follow GPipe
// (§6.4): m microbatches flow through s stages, the steady-state cost is
// (m + s − 1) stage-slots of forward+backward work, and gradients
// synchronize once, overlapping only with the final microbatch's backward
// — which is modelled by pricing one microbatch with the full gradient
// volume attached and the remaining m+s−2 slots without it.
package trainsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Result is one simulated configuration × system.
type Result struct {
	System  core.System
	TimeMS  float64
	Degrees *core.IterationResult
}

// Iteration simulates one non-PP training iteration of the model.
func Iteration(m core.Models, spec workload.ModelSpec, s *topology.Scenario, sys core.System, opt core.BuildOptions) (*Result, error) {
	layers := spec.LayerSpecs(s)
	res, err := m.SimulateIteration(layers, sys, opt)
	if err != nil {
		return nil, fmt.Errorf("trainsim: %s on %s: %w", sys, spec.Name, err)
	}
	return &Result{System: sys, TimeMS: res.Total, Degrees: res}, nil
}

// IterationPP simulates one GPipe iteration with npp stages and the given
// microbatch count (the paper enables N_PP = 2; GPipe convention is
// m ≥ 4·s microbatches).
func IterationPP(m core.Models, spec workload.ModelSpec, s *topology.Scenario, sys core.System, npp, microbatches int, opt core.BuildOptions) (*Result, error) {
	stages, err := spec.StageSpecs(s, npp, microbatches)
	if err != nil {
		return nil, err
	}
	// The pipeline clock is set by the slowest stage.
	slotNoGar := 0.0   // one microbatch, gradient sync invisible
	slotWithGar := 0.0 // final microbatch, carrying the iteration's sync
	for _, stage := range stages {
		bare := make([]core.LayerSpec, len(stage))
		for i, l := range stage {
			bare[i] = l
			bare[i].V.GradBytes = 0
		}
		resBare, err := m.SimulateIteration(bare, sys, opt)
		if err != nil {
			return nil, err
		}
		if resBare.Total > slotNoGar {
			slotNoGar = resBare.Total
		}
		resFull, err := m.SimulateIteration(stage, sys, opt)
		if err != nil {
			return nil, err
		}
		if resFull.Total > slotWithGar {
			slotWithGar = resFull.Total
		}
	}
	total := float64(microbatches+npp-2)*slotNoGar + slotWithGar
	return &Result{System: sys, TimeMS: total}, nil
}

// Compare runs every system on the model and returns times keyed by
// system, plus speedups over the reference system (DS-MoE in Figs. 6–8).
func Compare(m core.Models, spec workload.ModelSpec, s *topology.Scenario, opt core.BuildOptions) (map[core.System]float64, error) {
	out := make(map[core.System]float64, len(core.AllSystems()))
	for _, sys := range core.AllSystems() {
		r, err := Iteration(m, spec, s, sys, opt)
		if err != nil {
			return nil, err
		}
		out[sys] = r.TimeMS
	}
	return out, nil
}

// ComparePP is Compare with pipeline parallelism enabled.
func ComparePP(m core.Models, spec workload.ModelSpec, s *topology.Scenario, npp, microbatches int, opt core.BuildOptions) (map[core.System]float64, error) {
	out := make(map[core.System]float64, len(core.AllSystems()))
	for _, sys := range core.AllSystems() {
		r, err := IterationPP(m, spec, s, sys, npp, microbatches, opt)
		if err != nil {
			return nil, err
		}
		out[sys] = r.TimeMS
	}
	return out, nil
}

// Speedups converts absolute times into ratios over a baseline system.
func Speedups(times map[core.System]float64, base core.System) map[core.System]float64 {
	out := make(map[core.System]float64, len(times))
	ref := times[base]
	for sys, t := range times {
		if t > 0 {
			out[sys] = ref / t
		}
	}
	return out
}

package trainsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

func setupA(t *testing.T) (core.Models, *topology.Scenario) {
	t.Helper()
	s, err := topology.CanonicalScenario(topology.TestbedA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return core.ModelsFromCluster(s.Cluster), s
}

func TestIterationSmoke(t *testing.T) {
	m, s := setupA(t)
	spec := workload.GPT2XLMoE(s.Cluster)
	for _, sys := range core.AllSystems() {
		r, err := Iteration(m, spec, s, sys, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeMS <= 0 {
			t.Fatalf("%s: non-positive iteration time", sys)
		}
	}
}

// TestFig6Ordering: FSMoE must beat Tutel, which must beat DS-MoE, on the
// real-model workloads (the Fig. 6 ranking).
func TestFig6Ordering(t *testing.T) {
	m, s := setupA(t)
	for _, spec := range []workload.ModelSpec{
		workload.GPT2XLMoE(s.Cluster),
		workload.Mixtral7B(s.Cluster),
	} {
		times, err := Compare(m, spec, s, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !(times[core.SystemFSMoE] < times[core.SystemTutel]) {
			t.Errorf("%s: FSMoE %.1f not faster than Tutel %.1f", spec.Name,
				times[core.SystemFSMoE], times[core.SystemTutel])
		}
		if !(times[core.SystemTutel] < times[core.SystemDSMoE]) {
			t.Errorf("%s: Tutel %.1f not faster than DS-MoE %.1f", spec.Name,
				times[core.SystemTutel], times[core.SystemDSMoE])
		}
		sp := Speedups(times, core.SystemDSMoE)
		if sp[core.SystemFSMoE] < 1.15 {
			t.Errorf("%s: FSMoE speedup over DS-MoE %.2f below the paper's 1.19 floor",
				spec.Name, sp[core.SystemFSMoE])
		}
	}
}

func TestSpeedupsMath(t *testing.T) {
	times := map[core.System]float64{core.SystemDSMoE: 100, core.SystemFSMoE: 50}
	sp := Speedups(times, core.SystemDSMoE)
	if sp[core.SystemFSMoE] != 2.0 || sp[core.SystemDSMoE] != 1.0 {
		t.Fatalf("speedups = %v", sp)
	}
}

func TestIterationPP(t *testing.T) {
	m, s := setupA(t)
	spec := workload.Mixtral7B(s.Cluster)
	noPP, err := Iteration(m, spec, s, core.SystemFSMoE, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := IterationPP(m, spec, s, core.SystemFSMoE, 2, 8, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pp.TimeMS <= 0 {
		t.Fatal("PP time must be positive")
	}
	// GPipe with 2 stages and 8 microbatches has a (m+s-1)/m = 9/8 bubble
	// over half-depth stages; the result must be within sane bounds of the
	// non-PP iteration (not 10× off in either direction).
	if pp.TimeMS > noPP.TimeMS*3 || pp.TimeMS < noPP.TimeMS/3 {
		t.Fatalf("PP time %.1f implausible vs non-PP %.1f", pp.TimeMS, noPP.TimeMS)
	}
	if _, err := IterationPP(m, spec, s, core.SystemFSMoE, 0, 8, core.BuildOptions{}); err == nil {
		t.Fatal("NPP=0 must error")
	}
}

// TestFig8OrderingWithPP: the system ranking must survive PP (Fig. 8).
func TestFig8OrderingWithPP(t *testing.T) {
	m, s := setupA(t)
	spec := workload.Mixtral7B(s.Cluster)
	times, err := ComparePP(m, spec, s, 2, 8, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(times[core.SystemFSMoE] < times[core.SystemTutel] && times[core.SystemTutel] < times[core.SystemDSMoE]) {
		t.Fatalf("PP ordering broken: %v", times)
	}
}

// TestFig7GapWidensWithL: the DS-MoE gap must grow with sequence length,
// the Fig. 7 trend.
func TestFig7GapWidensWithL(t *testing.T) {
	m, s := setupA(t)
	base := workload.Mixtral7B(s.Cluster)
	var prev float64
	for i, l := range []int{512, 1024, 2048} {
		times, err := Compare(m, base.WithSeqLen(l), s, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedups(times, core.SystemDSMoE)[core.SystemFSMoE]
		if i > 0 && sp < prev*0.97 {
			t.Fatalf("speedup shrank with L: %.2f after %.2f", sp, prev)
		}
		prev = sp
	}
}

// Package tensor implements the dense CPU tensor math that stands in for
// the paper's CUDA/cuBLAS substrate.
//
// The MoE gating, ordering and expert computations in this repository are
// executed for real on these tensors (float64, row-major), so functional
// claims — four gating types, order/I-order inversion, capacity-factor
// token dropping — are validated on actual data rather than mocked.
// Timing, by contrast, is the job of internal/sim; nothing here pretends to
// be fast enough to train an LLM.
//
// # Views and aliasing
//
// Reshape, View, Slice and Row return views: tensors (or slices) that share
// the receiver's backing array. Writing through a view writes the original.
// Views are how the MoE hot path avoids copies — each expert reads its
// (T, M) block of the dispatched (E, T, M) tensor and writes its block of
// the output through views. Two views of the same tensor may be used
// concurrently only if their element ranges are disjoint.
//
// # Buffer pool ownership
//
// Get/GetUninit/Put (pool.go) recycle backing arrays through a free-list.
// The single-owner rule: only the code that obtained a tensor from Get may
// Put it, at most once, and only when no view of it is still live — after
// Put, the backing array may be handed to an unrelated Get. Tensors from
// New/FromData and all views are outside the pool; Put ignores them, so
// defensively Put-ing a value of unknown origin is safe.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major tensor of float64 values.
type Tensor struct {
	shape []int
	data  []float64

	// shapeBuf backs shape for ranks ≤ 4, so reshaping a pooled tensor
	// allocates nothing.
	shapeBuf [4]int
	// poolable marks tensors owned by the Get/Put free-list (pool.go).
	// Views and plain New/FromData tensors are never poolable.
	poolable bool
	// view marks tensors that alias another tensor's backing array
	// (View/Slice/Reshape results). Put uses it to distinguish the
	// always-a-bug "Put on a view" from the tolerated "Put on a plain
	// non-pooled tensor" (see SetPoolDebug).
	view bool
}

// setShape installs shape without allocating when the rank fits shapeBuf.
func (t *Tensor) setShape(shape []int) {
	if len(shape) <= len(t.shapeBuf) {
		t.shape = t.shapeBuf[:len(shape)]
	} else {
		t.shape = make([]int, len(shape))
	}
	copy(t.shape, shape)
}

// New allocates a zero-filled tensor with the given shape. Every dimension
// must be non-negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromData wraps data (not copied) in a tensor of the given shape. The
// length of data must equal the shape's element count.
func FromData(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the multi-index idx.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the multi-index idx.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view sharing storage with t but with a new shape of the
// same total size. A single dimension may be -1, meaning "infer".
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := make([]int, len(shape))
	copy(s, shape)
	infer := -1
	n := 1
	for i, d := range s {
		if d == -1 {
			if infer != -1 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		s[infer] = len(t.data) / n
		n *= s[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: s, data: t.data, view: true}
}

// View returns a zero-copy view of the given shape over t's storage
// starting at flat offset off. The view shares t's backing array: writes
// through either are visible to both, and the view must not outlive a Put
// of t.
func (t *Tensor) View(off int, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in View shape %v", shape))
		}
		n *= d
	}
	if off < 0 || off+n > len(t.data) {
		panic(fmt.Sprintf("tensor: View [%d, %d) out of range for %d elements", off, off+n, len(t.data)))
	}
	v := &Tensor{data: t.data[off : off+n : off+n], view: true}
	v.setShape(shape)
	return v
}

// Slice returns a zero-copy view of rows [lo, hi) along the leading
// dimension, with the remaining dimensions unchanged. For an (E, T, M)
// tensor, Slice(e, e+1).Reshape(T, M) is expert e's block without a copy.
func (t *Tensor) Slice(lo, hi int) *Tensor {
	if t.Rank() == 0 {
		panic("tensor: Slice requires rank ≥ 1")
	}
	if lo < 0 || hi < lo || hi > t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice [%d, %d) out of range for shape %v", lo, hi, t.shape))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int{hi - lo}, t.shape[1:]...)
	return t.View(lo*stride, shape...)
}

// Row returns a view of row i of a 2-D tensor as a slice.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		d := t.data[i] - o.data[i]
		if math.Abs(d) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum elementwise absolute difference between
// t and o, which must share a shape.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.SameShape(o) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	m := 0.0
	for i := range t.data {
		if d := math.Abs(t.data[i] - o.data[i]); d > m {
			m = d
		}
	}
	return m
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

package tensor

import (
	"math"

	"repro/internal/xrand"
)

// RandN fills a new tensor of the given shape with N(0, std²) values drawn
// from rng.
func RandN(rng *xrand.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with uniform values in [lo, hi).
func RandUniform(rng *xrand.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Range(lo, hi)
	}
	return t
}

// Xavier returns a (fanIn, fanOut) weight matrix initialized with the
// Glorot-uniform scheme, the default for the paper's linear gates and
// expert feed-forward layers.
func Xavier(rng *xrand.RNG, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, fanIn, fanOut)
}

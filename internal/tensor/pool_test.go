package tensor

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestViewSharesStorage(t *testing.T) {
	a := New(4, 3, 2)
	v := a.View(6, 3, 2) // second (3, 2) block
	v.Set(7, 1, 1)
	if got := a.At(1, 1, 1); got != 7 {
		t.Fatalf("write through view not visible: got %v", got)
	}
	a.Set(9, 1, 0, 0)
	if got := v.At(0, 0); got != 9 {
		t.Fatalf("write through base not visible in view: got %v", got)
	}
	if v.Size() != 6 || v.Rank() != 2 {
		t.Fatalf("view shape wrong: %v", v.Shape())
	}
}

func TestViewBounds(t *testing.T) {
	a := New(2, 3)
	for _, f := range []func(){
		func() { a.View(1, 2, 3) },
		func() { a.View(-1, 1) },
		func() { a.Slice(1, 3) },
		func() { a.Slice(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range view")
				}
			}()
			f()
		}()
	}
}

func TestSliceMatchesView(t *testing.T) {
	a := RandN(xrand.New(1), 1, 5, 4, 3)
	s := a.Slice(2, 4)
	v := a.View(2*12, 2, 4, 3)
	if !s.AllClose(v, 0) {
		t.Fatal("Slice and View disagree")
	}
	if &s.Data()[0] != &a.Data()[2*12] {
		t.Fatal("Slice copied instead of viewing")
	}
}

func TestGetPutRecycles(t *testing.T) {
	a := GetUninit(16, 16)
	ptr := &a.Data()[0]
	Put(a)
	b := GetUninit(200) // 200 ≤ 256 = cap bucket of 16×16: may or may not hit
	_ = b
	c := GetUninit(16, 16)
	// sync.Pool gives no hard guarantee, but single-goroutine put/get of the
	// same size class should round-trip; tolerate a miss by only checking
	// shape/zeroing invariants when it does hit.
	if &c.Data()[0] == ptr && c.Size() != 256 {
		t.Fatal("recycled buffer has wrong size")
	}
	Put(b)
	Put(c)

	z := Get(8, 8)
	for i, v := range z.Data() {
		if v != 0 {
			t.Fatalf("Get returned dirty buffer at %d: %v", i, v)
		}
	}
	Put(z)
}

func TestPutIgnoresNonPoolTensors(t *testing.T) {
	a := New(4, 4)
	Put(a) // no-op
	if a.Data() == nil {
		t.Fatal("Put mutated a non-pool tensor")
	}
	g := GetUninit(4, 4)
	v := g.View(0, 2, 2)
	Put(v) // views are never poolable
	if v.Size() != 4 {
		t.Fatal("Put mutated a view")
	}
	Put(g)
	Put(g) // second Put before any re-issuing Get: ignored
}

// TestNestedParallelOversubscribed pins the deadlock regression: when the
// requested width exceeds the pool's goroutine count, every pool worker can
// be blocked inside a nested ParallelRange at once; waiters must help drain
// the queue or the nest hangs forever.
func TestNestedParallelOversubscribed(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(64) // well past maxPoolGoroutines
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total [64][64]int32
		ParallelFor(64, func(i int) {
			ParallelRange(64, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					total[i][j]++
				}
			})
		})
		for i := range total {
			for j := range total[i] {
				if total[i][j] != 1 {
					t.Errorf("cell (%d,%d) ran %d times", i, j, total[i][j])
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested ParallelFor/ParallelRange deadlocked")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			ParallelFor(n, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
				}
			}
		}
	}
}

// TestMatMulDeterministicAcrossWorkers pins the acceptance requirement that
// parallelism never reorders a single output element's accumulation: the
// same product must be bit-identical at any worker count.
func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	defer SetWorkers(0)
	rng := xrand.New(7)
	a := RandN(rng, 1, 97, 131)
	b := RandN(rng, 1, 131, 89)
	SetWorkers(1)
	want := MatMul(a, b)
	wantT2 := MatMulT2(a, Transpose2D(b))
	for _, w := range []int{2, 4, 9} {
		SetWorkers(w)
		if got := MatMul(a, b); got.MaxAbsDiff(want) != 0 {
			t.Fatalf("workers=%d: MatMul not bit-identical", w)
		}
		if got := MatMulT2(a, Transpose2D(b)); got.MaxAbsDiff(wantT2) != 0 {
			t.Fatalf("workers=%d: MatMulT2 not bit-identical", w)
		}
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := xrand.New(3)
	a := RandN(rng, 1, 33, 17)
	b := RandN(rng, 1, 17, 21)
	want := MatMul(a, b)
	dst := GetUninit(33, 21)
	MatMulInto(dst, a, b)
	if dst.MaxAbsDiff(want) != 0 {
		t.Fatal("MatMulInto differs from MatMul")
	}
	Put(dst)

	wantT1 := MatMulT1(a, a)
	d1 := GetUninit(17, 17)
	MatMulT1Into(d1, a, a)
	if d1.MaxAbsDiff(wantT1) != 0 {
		t.Fatal("MatMulT1Into differs from MatMulT1")
	}
	Put(d1)
}

func TestBatchedMatMulSmallAndLarge(t *testing.T) {
	rng := xrand.New(11)
	for _, dims := range [][4]int{{3, 4, 5, 6}, {8, 32, 48, 40}} {
		bs, m, k, n := dims[0], dims[1], dims[2], dims[3]
		a := RandN(rng, 1, bs, m, k)
		b := RandN(rng, 1, bs, k, n)
		got := BatchedMatMul(a, b)
		for i := 0; i < bs; i++ {
			ai := a.Slice(i, i+1).Reshape(m, k)
			bi := b.Slice(i, i+1).Reshape(k, n)
			want := MatMul(ai, bi)
			if got.Slice(i, i+1).Reshape(m, n).MaxAbsDiff(want) != 0 {
				t.Fatalf("batch %d differs", i)
			}
		}
	}
}

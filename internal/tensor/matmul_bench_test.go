package tensor

// The MatMul size sweep demanded by the pooled runtime: the plain entry
// points allocate their destination per call, the pooled variants draw it
// from the free-list. b.ReportAllocs makes the difference visible in
// `go test -bench MatMul ./internal/tensor`.

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

var benchSizes = []int{128, 512, 1024}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			x := RandN(rng, 1, n, n)
			y := RandN(rng, 1, n, n)
			b.ReportAllocs()
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := MatMul(x, y)
				_ = out
			}
		})
	}
}

func BenchmarkMatMulPooled(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			x := RandN(rng, 1, n, n)
			y := RandN(rng, 1, n, n)
			b.ReportAllocs()
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := GetUninit(n, n)
				MatMulInto(out, x, y)
				Put(out)
			}
		})
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			x := RandN(rng, 1, n, n)
			y := RandN(rng, 1, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := GetUninit(n, n)
				MatMulT2Into(out, x, y)
				Put(out)
			}
		})
	}
}

func BenchmarkBatchedMatMul(b *testing.B) {
	rng := xrand.New(1)
	x := RandN(rng, 1, 16, 128, 64)
	y := RandN(rng, 1, 16, 64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BatchedMatMul(x, y)
	}
}

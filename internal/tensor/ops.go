package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.data {
		a.data[i] += v
	}
}

// AddScaledInPlace accumulates s*b into a.
func AddScaledInPlace(a *Tensor, s float64, b *Tensor) {
	checkSameShape("AddScaledInPlace", a, b)
	for i, v := range b.data {
		a.data[i] += s * v
	}
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// MulInto stores a * b (Hadamard) into dst; all three must share a shape.
func MulInto(dst, a, b *Tensor) {
	checkSameShape("MulInto", a, b)
	checkSameShape("MulInto", dst, a)
	for i, v := range a.data {
		dst.data[i] = v * b.data[i]
	}
}

// AddRowVectorInPlace adds a length-n vector v to every row of a 2-D (m,n)
// tensor in place — the allocation-free bias add of the pooled FFN path.
func AddRowVectorInPlace(a *Tensor, v *Tensor) {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic("tensor: AddRowVectorInPlace shape mismatch")
	}
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.data[j]
		}
	}
}

// AddRowVector adds a length-n vector v to every row of a 2-D (m,n) tensor,
// as a bias term does.
func AddRowVector(a *Tensor, v *Tensor) *Tensor {
	if a.Rank() != 2 || v.Rank() != 1 || a.shape[1] != v.shape[0] {
		panic("tensor: AddRowVector shape mismatch")
	}
	out := a.Clone()
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := out.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.data[j]
		}
	}
	return out
}

func checkSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := a.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInto stores f applied elementwise to a into dst (same shape; dst may
// be a). Callers pair it with GetUninit for allocation-free activations.
func ApplyInto(dst, a *Tensor, f func(float64) float64) {
	checkSameShape("ApplyInto", dst, a)
	for i, v := range a.data {
		dst.data[i] = f(v)
	}
}

// GeLUInto stores GeLU(a) into dst.
func GeLUInto(dst, a *Tensor) { ApplyInto(dst, a, gelu) }

// SiLUInto stores SiLU(a) into dst.
func SiLUInto(dst, a *Tensor) { ApplyInto(dst, a, silu) }

// Sum returns the sum of all elements.
func Sum(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for empty tensors.
func Mean(a *Tensor) float64 {
	if len(a.data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.data))
}

// Sigmoid returns 1/(1+e^-x) elementwise.
func Sigmoid(a *Tensor) *Tensor { return Apply(a, sigmoid) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SigmoidGrad returns the derivative of sigmoid given its output y.
func SigmoidGrad(y float64) float64 { return y * (1 - y) }

// Softplus returns log(1+e^x) elementwise, computed stably.
func Softplus(a *Tensor) *Tensor { return Apply(a, softplus) }

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

// GeLU applies the Gaussian error linear unit (tanh approximation, as used
// by GPT-2) elementwise.
func GeLU(a *Tensor) *Tensor { return Apply(a, gelu) }

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

// GeLUGrad returns d gelu(x)/dx at x.
func GeLUGrad(x float64) float64 {
	inner := geluC * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dinner := geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dinner
}

// SiLU applies x*sigmoid(x) (the activation used by Mixtral) elementwise.
func SiLU(a *Tensor) *Tensor { return Apply(a, silu) }

func silu(x float64) float64 { return x * sigmoid(x) }

// SiLUGrad returns d silu(x)/dx at x.
func SiLUGrad(x float64) float64 {
	s := sigmoid(x)
	return s + x*s*(1-s)
}

// ReLU applies max(0,x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return Apply(a, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	})
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor { return Apply(a, math.Tanh) }

// Exp applies e^x elementwise.
func Exp(a *Tensor) *Tensor { return Apply(a, math.Exp) }

package tensor

import (
	"math"
	"sort"
)

// SoftmaxRows applies a numerically stable softmax along the last dimension
// of a 2-D tensor.
func SoftmaxRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SoftmaxRows requires a 2-D tensor")
	}
	out := a.Clone()
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := out.data[i*n : (i+1)*n]
		softmaxInPlace(row)
	}
	return out
}

// SoftmaxCols applies softmax along the first dimension of a 2-D tensor
// (each column sums to 1). Expert-choice and SoftMoE routing normalize over
// tokens, which is a column softmax of the (token, expert) score matrix.
func SoftmaxCols(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SoftmaxCols requires a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := a.Clone()
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			col[i] = out.data[i*n+j]
		}
		softmaxInPlace(col)
		for i := 0; i < m; i++ {
			out.data[i*n+j] = col[i]
		}
	}
	return out
}

func softmaxInPlace(row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	// A row of all -Inf (every entry masked out) softmaxes to all zeros
	// rather than NaN; KeepTopK produces such rows when k = 0.
	if math.IsInf(maxV, -1) {
		for i := range row {
			row[i] = 0
		}
		return
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - maxV)
		row[i] = e
		sum += e
	}
	for i := range row {
		row[i] /= sum
	}
}

// TopK returns the indices of the k largest values of v in descending value
// order. Ties break toward the lower index, matching a stable sort. It
// panics if k > len(v).
func TopK(v []float64, k int) []int {
	if k > len(v) {
		panic("tensor: TopK k exceeds length")
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx[:k]
}

// KeepTopK returns a copy of v with every entry outside the top k set to
// -Inf, matching the GShard formulation.
func KeepTopK(v []float64, k int) []float64 {
	out := make([]float64, len(v))
	for i := range out {
		out[i] = math.Inf(-1)
	}
	for _, i := range TopK(v, k) {
		out[i] = v[i]
	}
	return out
}

// ArgMax returns the index of the maximum value (lowest index wins ties).
func ArgMax(v []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// L2NormalizeRows scales each row of a 2-D tensor to unit Euclidean norm.
// Zero rows are left as zeros.
func L2NormalizeRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: L2NormalizeRows requires a 2-D tensor")
	}
	out := a.Clone()
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := out.data[i*n : (i+1)*n]
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// CosineRows returns the (m,e) matrix of cosine similarities between each
// row of a (m,d) and each row of b (e,d). This is the X-MoE routing score
// s_i = cos(W_proj x, w_g_i).
func CosineRows(a, b *Tensor) *Tensor {
	an := L2NormalizeRows(a)
	bn := L2NormalizeRows(b)
	return MatMulT2(an, bn)
}

// OneHot returns an (n, classes) matrix with row i set to 1 at idx[i].
// Negative indices produce an all-zero row (used for dropped tokens).
func OneHot(idx []int, classes int) *Tensor {
	out := New(len(idx), classes)
	for i, c := range idx {
		if c < 0 {
			continue
		}
		out.data[i*classes+c] = 1
	}
	return out
}

package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := RandN(r, 3, m, n)
		s := SoftmaxRows(a)
		for i := 0; i < m; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsStability(t *testing.T) {
	// Huge logits must not overflow.
	a := FromData([]float64{1000, 1001, 1002}, 1, 3)
	s := SoftmaxRows(a)
	sum := s.At(0, 0) + s.At(0, 1) + s.At(0, 2)
	if math.IsNaN(sum) || math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax unstable: %v", s.Data())
	}
	if s.At(0, 2) <= s.At(0, 1) {
		t.Fatal("ordering not preserved")
	}
}

func TestSoftmaxAllMaskedRow(t *testing.T) {
	inf := math.Inf(-1)
	a := FromData([]float64{inf, inf}, 1, 2)
	s := SoftmaxRows(a)
	if s.At(0, 0) != 0 || s.At(0, 1) != 0 {
		t.Fatalf("all-masked row should softmax to zeros, got %v", s.Data())
	}
}

func TestSoftmaxColsSumToOne(t *testing.T) {
	r := xrand.New(9)
	a := RandN(r, 2, 6, 4)
	s := SoftmaxCols(a)
	for j := 0; j < 4; j++ {
		sum := 0.0
		for i := 0; i < 6; i++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", j, sum)
		}
	}
}

func TestSoftmaxColsMatchesTransposedRows(t *testing.T) {
	r := xrand.New(10)
	a := RandN(r, 1, 5, 3)
	viaCols := SoftmaxCols(a)
	viaRows := Transpose2D(SoftmaxRows(Transpose2D(a)))
	if !viaCols.AllClose(viaRows, 1e-12) {
		t.Fatal("SoftmaxCols inconsistent with row softmax of transpose")
	}
}

func TestTopKBasic(t *testing.T) {
	v := []float64{1, 9, 3, 7, 5}
	got := TopK(v, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
}

func TestTopKTieBreaksLowIndex(t *testing.T) {
	v := []float64{5, 5, 5}
	got := TopK(v, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("TopK tie = %v, want [0 1]", got)
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(30)
		k := 1 + r.Intn(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		idx := TopK(v, k)
		if len(idx) != k {
			return false
		}
		// Every selected value must be >= every unselected value.
		sel := map[int]bool{}
		minSel := math.Inf(1)
		for _, i := range idx {
			sel[i] = true
			if v[i] < minSel {
				minSel = v[i]
			}
		}
		for i, x := range v {
			if !sel[i] && x > minSel {
				return false
			}
		}
		// Descending order.
		for i := 1; i < k; i++ {
			if v[idx[i]] > v[idx[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeepTopK(t *testing.T) {
	v := []float64{1, 9, 3}
	out := KeepTopK(v, 1)
	if out[1] != 9 || !math.IsInf(out[0], -1) || !math.IsInf(out[2], -1) {
		t.Fatalf("KeepTopK = %v", out)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{3, 1, 3}) != 0 {
		t.Fatal("ArgMax tie should pick lowest index")
	}
	if ArgMax([]float64{-5, -1, -9}) != 1 {
		t.Fatal("ArgMax wrong")
	}
}

func TestL2NormalizeRows(t *testing.T) {
	a := FromData([]float64{3, 4, 0, 0}, 2, 2)
	n := L2NormalizeRows(a)
	if math.Abs(n.At(0, 0)-0.6) > 1e-12 || math.Abs(n.At(0, 1)-0.8) > 1e-12 {
		t.Fatalf("normalize = %v", n.Data())
	}
	if n.At(1, 0) != 0 || n.At(1, 1) != 0 {
		t.Fatal("zero row must stay zero")
	}
}

func TestCosineRowsSelfIsOne(t *testing.T) {
	r := xrand.New(12)
	a := RandN(r, 1, 4, 8)
	c := CosineRows(a, a)
	for i := 0; i < 4; i++ {
		if math.Abs(c.At(i, i)-1) > 1e-9 {
			t.Fatalf("cos(a,a) = %v", c.At(i, i))
		}
	}
}

func TestCosineRowsBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m, e, d := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(10)
		a := RandN(r, 1, m, d)
		b := RandN(r, 1, e, d)
		c := CosineRows(a, b)
		for _, v := range c.Data() {
			if v > 1+1e-9 || v < -1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOneHot(t *testing.T) {
	h := OneHot([]int{2, 0, -1}, 3)
	want := FromData([]float64{0, 0, 1, 1, 0, 0, 0, 0, 0}, 3, 3)
	if !h.AllClose(want, 0) {
		t.Fatalf("OneHot = %v", h.Data())
	}
}

func TestActivationGradientsNumerically(t *testing.T) {
	const eps = 1e-6
	check := func(name string, f, g func(float64) float64) {
		for _, x := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
			num := (f(x+eps) - f(x-eps)) / (2 * eps)
			ana := g(x)
			if math.Abs(num-ana) > 1e-5 {
				t.Errorf("%s grad at %v: numeric %v vs analytic %v", name, x, num, ana)
			}
		}
	}
	check("gelu", gelu, GeLUGrad)
	check("silu", silu, SiLUGrad)
	check("sigmoid", sigmoid, func(x float64) float64 { return SigmoidGrad(sigmoid(x)) })
}

func TestSoftplusStability(t *testing.T) {
	a := FromData([]float64{-50, 0, 50}, 3)
	s := Softplus(a)
	if s.At(0) < 0 || s.At(0) > 1e-20 {
		t.Fatalf("softplus(-50) = %v", s.At(0))
	}
	if math.Abs(s.At(1)-math.Log(2)) > 1e-12 {
		t.Fatalf("softplus(0) = %v", s.At(1))
	}
	if math.Abs(s.At(2)-50) > 1e-9 {
		t.Fatalf("softplus(50) = %v", s.At(2))
	}
}

func TestXavierBounds(t *testing.T) {
	r := xrand.New(77)
	w := Xavier(r, 100, 50)
	limit := math.Sqrt(6.0 / 150.0)
	for _, v := range w.Data() {
		if v < -limit || v >= limit {
			t.Fatalf("xavier value %v outside ±%v", v, limit)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := xrand.New(1)
	x := RandN(r, 1, 128, 128)
	y := RandN(r, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

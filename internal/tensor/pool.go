package tensor

// This file is the shared compute-and-memory runtime behind the real tensor
// path: a lazily-started worker pool that every parallel kernel (MatMul,
// BatchedMatMul, the per-expert loops in internal/moe, the per-head loops in
// internal/attention) shards work onto, and a size-bucketed free-list of
// tensor buffers that eliminates per-op allocations on the hot path.
//
// Worker pool
//
// ParallelFor and ParallelRange split an index space into at most Workers()
// contiguous chunks. Chunk boundaries never split a single output element's
// accumulation across goroutines, so a kernel that partitions rows this way
// produces bit-identical results whether it runs on one worker or many.
// Submission is non-blocking: when the queue is full (including when a
// worker itself calls ParallelFor, which nested kernels do), the chunk runs
// inline on the caller, so nesting can never deadlock.
//
// Buffer free-list
//
// Get/GetUninit hand out tensors whose backing arrays are recycled through
// per-size-class sync.Pools; Put returns them. Ownership rules (violations
// corrupt unrelated tensors, so they are strict):
//
//   - Only the holder of a tensor obtained from Get/GetUninit may Put it,
//     and at most once. Put on a tensor from New/FromData or on any view is
//     a safe no-op.
//   - A tensor must not be Put while any view of it (View/Slice/Reshape/Row)
//     is still reachable: views alias the backing array, and Put hands that
//     array to the next Get.
//   - GetUninit returns garbage contents; use it only for destinations that
//     are fully overwritten (e.g. MatMulInto).

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount is the configured parallel width; 0 means "use GOMAXPROCS".
var workerCount atomic.Int64

// Workers returns the parallel width kernels shard to.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the parallel width (tests use it to exercise the
// concurrent paths regardless of GOMAXPROCS). n <= 0 restores the default.
func SetWorkers(n int) { workerCount.Store(int64(n)) }

const maxPoolGoroutines = 32

var (
	startOnce sync.Once
	workQueue chan func()
)

func startPool() {
	startOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 4 {
			n = 4
		}
		if n > maxPoolGoroutines {
			n = maxPoolGoroutines
		}
		workQueue = make(chan func(), 4*maxPoolGoroutines)
		for i := 0; i < n; i++ {
			go func() {
				for task := range workQueue {
					task()
				}
			}()
		}
	})
}

// submit hands task to a pool worker, or runs it inline when the queue is
// full. Inline fallback keeps nested ParallelFor calls deadlock-free.
func submit(task func()) {
	select {
	case workQueue <- task:
	default:
		task()
	}
}

// ParallelRange splits [0, n) into at most Workers() contiguous chunks and
// runs fn(lo, hi) on each, returning when all complete. The caller executes
// the first chunk itself, then helps drain the work queue until its chunks
// finish — so even if every pool worker is itself blocked in a nested
// ParallelRange, queued tasks always have someone running them and nesting
// can never deadlock, regardless of how Workers() compares to the pool's
// goroutine count.
func ParallelRange(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	startPool()
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	fn(0, chunk)
	helpWait(&wg)
}

// helpWait drains the work queue until it is momentarily empty, then
// blocks on wg. Waiters doubling as workers is what makes nested parallel
// calls starvation-free: a region's chunks are all submitted before its
// waiter arrives here, so once the queue reads empty every remaining chunk
// is already running on some goroutine (whose own nested chunks that
// goroutine will likewise drain), and wg.Wait must terminate. Draining
// first costs no allocation and blocks the waiter behind at most the tasks
// it chose to execute.
func helpWait(wg *sync.WaitGroup) {
	for {
		select {
		case task := <-workQueue:
			task()
		default:
			wg.Wait()
			return
		}
	}
}

// ParallelFor runs fn(i) for every i in [0, n), sharding the index space
// over the worker pool. Iterations must be independent: they may run
// concurrently and in any order across chunks.
func ParallelFor(n int, fn func(i int)) {
	ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// maxPoolBucket caps pooled buffers at 2^26 elements (512 MiB of float64);
// anything larger allocates directly and is never recycled.
const maxPoolBucket = 26

// freeLists[b] holds *Tensor whose backing arrays have capacity exactly 2^b.
var freeLists [maxPoolBucket + 1]sync.Pool

// bucketFor returns the free-list class for n elements: the smallest b with
// 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetUninit returns a tensor of the given shape from the free-list without
// clearing it: the contents are whatever the previous owner left behind.
// Use only when every element will be overwritten.
func GetUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Get")
		}
		n *= d
	}
	b := bucketFor(n)
	if b > maxPoolBucket {
		// Too big to recycle; allocate directly (and never Put it back).
		// Built inline so the shape slice never escapes on the hot path.
		t := &Tensor{data: make([]float64, n)}
		t.setShape(shape)
		return t
	}
	t, _ := freeLists[b].Get().(*Tensor)
	if t == nil {
		t = &Tensor{data: make([]float64, 1<<b)}
	}
	t.data = t.data[:n]
	t.setShape(shape)
	t.poolable = true
	return t
}

// Get returns a zero-filled tensor of the given shape from the free-list.
func Get(shape ...int) *Tensor {
	t := GetUninit(shape...)
	clear(t.data)
	return t
}

// Put returns a tensor obtained from Get/GetUninit to the free-list. The
// caller must not retain t, its Data(), or any view of it afterwards — and
// must not Put the same tensor twice. Put is a no-op for tensors the pool
// does not own (New/FromData results, views), so releasing a tensor of
// unknown origin is safe; but an erroneous second Put of a pooled tensor is
// only ignored until a Get re-issues the object, after which it would
// return someone else's live buffer. "At most once" is the rule, not a
// best-effort guard.
func Put(t *Tensor) {
	if t == nil || !t.poolable {
		return
	}
	t.poolable = false
	c := cap(t.data)
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-shaped buffer; drop it
	}
	b := bits.Len(uint(c)) - 1
	if b > maxPoolBucket {
		return
	}
	t.data = t.data[:c]
	t.shape = nil
	freeLists[b].Put(t)
}

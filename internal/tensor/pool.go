package tensor

// This file is the shared compute-and-memory runtime behind the real tensor
// path: worker pools that every parallel kernel (MatMul, BatchedMatMul, the
// per-expert loops in internal/moe, the per-head loops in
// internal/attention) shards work onto, and a size-bucketed free-list of
// tensor buffers that eliminates per-op allocations on the hot path.
//
// Worker pools
//
// There are two kinds of pool. The process-wide default pool backs the
// package-level ParallelFor/ParallelRange and the plain MatMul* kernels; its
// width follows Workers(). Scoped pools (NewPool) carve a fixed worker
// budget out of the machine so that independent execution streams — the
// per-rank compute streams of internal/runtime plans — stop oversubscribing
// one shared queue: each stream's kernels fan out only onto that stream's
// allotment. Pool-bound kernels are methods on *Pool; a nil *Pool designates
// the default pool, so call sites can thread an optional pool without
// branching.
//
// ParallelFor and ParallelRange split an index space into at most Workers()
// contiguous chunks. Chunk boundaries never split a single output element's
// accumulation across goroutines, so a kernel that partitions rows this way
// produces bit-identical results whether it runs on one worker or many.
// Submission is non-blocking: when the queue is full (including when a
// worker itself calls ParallelFor, which nested kernels do), the chunk runs
// inline on the caller, so nesting can never deadlock. Index spaces of at
// most serialCutoff items run serially on the caller: at that size the
// fan-out costs more than it can save even for moderately sized items, and
// heavy items regain their parallelism through the nested kernels they call
// (see BenchmarkParallelRangeTiny for the measurement behind the cutoff).
//
// Buffer free-list
//
// Get/GetUninit hand out tensors whose backing arrays are recycled through
// per-size-class sync.Pools; Put returns them. Ownership rules (violations
// corrupt unrelated tensors, so they are strict):
//
//   - Only the holder of a tensor obtained from Get/GetUninit may Put it,
//     and at most once. Put on a tensor from New/FromData or on any view is
//     a safe no-op (SetPoolDebug(true) turns the view case into a panic,
//     because a view aliases a parent whose backing array must not reach
//     the free-list through it).
//   - A tensor must not be Put while any view of it (View/Slice/Reshape/Row)
//     is still reachable: views alias the backing array, and Put hands that
//     array to the next Get.
//   - GetUninit returns garbage contents; use it only for destinations that
//     are fully overwritten (e.g. MatMulInto).

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount is the configured parallel width of the default pool;
// 0 means "use GOMAXPROCS".
var workerCount atomic.Int64

// Workers returns the parallel width kernels shard to on the default pool.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default pool's parallel width (tests use it to
// exercise the concurrent paths regardless of GOMAXPROCS). n <= 0 restores
// the default. Scoped pools (NewPool) are unaffected.
func SetWorkers(n int) { workerCount.Store(int64(n)) }

const maxPoolGoroutines = 32

// serialCutoff is the index-space size at or below which ParallelRange and
// ParallelFor run serially on the caller instead of fanning out. Measured
// by BenchmarkParallelRangeTiny: at n=2 the fan-out (one queued chunk, a
// WaitGroup hand-off and the helper drain) costs ~0.7µs over the free
// serial loop, several times the total of light items; from n=4 upward
// medium-weight items amortize the overhead, so the cutoff stops there.
// Heavy per-item work loses nothing at n≤2 because the kernels it calls
// (MatMulInto and friends) shard their own rows across the pool.
const serialCutoff = 2

// Pool is a worker pool kernels shard onto. The zero value is not usable;
// use NewPool for a scoped pool or a nil *Pool for the process default.
// A scoped pool caps the parallel width of every kernel bound to it at its
// fixed budget, independent of Workers() — the resource-partitioning lever
// that keeps concurrent compute streams from oversubscribing one queue.
type Pool struct {
	width  int // fixed parallel width; 0 = the default pool (tracks Workers())
	start  sync.Once
	queue  chan func()
	closed atomic.Bool
}

// defaultPool backs the package-level functions and nil *Pool methods.
var defaultPool Pool

// NewPool returns a scoped pool with a fixed parallel width of n (clamped
// to at least 1). Its worker goroutines start lazily on first parallel use;
// a pool of width 1 never starts any. Call Close when the pool is no longer
// needed to release them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{width: n}
}

// self resolves the nil-receiver convention: a nil *Pool is the default
// pool.
func (p *Pool) self() *Pool {
	if p == nil {
		return &defaultPool
	}
	return p
}

// Workers returns the pool's parallel width.
func (p *Pool) Workers() int {
	p = p.self()
	if p.width > 0 {
		return p.width
	}
	return Workers()
}

// startWorkers launches the pool's goroutines once. The caller of a
// parallel region always executes chunks itself, so width-1 extra
// goroutines realize a parallel width of width.
func (p *Pool) startWorkers() {
	p.start.Do(func() {
		n := p.width - 1
		if p.width == 0 { // default pool: size to the machine
			n = runtime.GOMAXPROCS(0)
			if n < 4 {
				n = 4
			}
		}
		if n > maxPoolGoroutines {
			n = maxPoolGoroutines
		}
		if n < 1 {
			n = 1
		}
		p.queue = make(chan func(), 4*maxPoolGoroutines)
		for i := 0; i < n; i++ {
			go func() {
				for task := range p.queue {
					task()
				}
			}()
		}
	})
}

// Close releases a scoped pool's worker goroutines. The pool must be idle:
// no parallel region may be running or started afterwards (later parallel
// calls degrade to inline execution rather than crash, but that is a
// misuse, not a feature). Close on the default pool panics.
func (p *Pool) Close() {
	if p == nil || p.width == 0 {
		panic("tensor: Close on the default pool")
	}
	if p.closed.CompareAndSwap(false, true) {
		// Start-then-close handles the never-used pool without tracking
		// extra state; the goroutines exit immediately.
		p.startWorkers()
		close(p.queue)
	}
}

// submit hands task to a pool worker, or runs it inline when the queue is
// full (or the pool was closed). Inline fallback keeps nested ParallelFor
// calls deadlock-free.
func (p *Pool) submit(task func()) {
	if p.closed.Load() {
		task()
		return
	}
	select {
	case p.queue <- task:
	default:
		task()
	}
}

// ParallelRange splits [0, n) into at most p.Workers() contiguous chunks
// and runs fn(lo, hi) on each, returning when all complete. The caller
// executes the first chunk itself, then helps drain the work queue until
// its chunks finish — so even if every pool worker is itself blocked in a
// nested ParallelRange, queued tasks always have someone running them and
// nesting can never deadlock, regardless of how the width compares to the
// pool's goroutine count.
func (p *Pool) ParallelRange(n int, fn func(lo, hi int)) {
	p = p.self()
	if n <= serialCutoff {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	p.startWorkers()
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.submit(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	fn(0, chunk)
	p.helpWait(&wg)
}

// ParallelFor runs fn(i) for every i in [0, n), sharding the index space
// over the pool. Iterations must be independent: they may run concurrently
// and in any order across chunks.
func (p *Pool) ParallelFor(n int, fn func(i int)) {
	p.ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// helpWait drains the work queue until it is momentarily empty, then
// blocks on wg. Waiters doubling as workers is what makes nested parallel
// calls starvation-free: a region's chunks are all submitted before its
// waiter arrives here, so once the queue reads empty every remaining chunk
// is already running on some goroutine (whose own nested chunks that
// goroutine will likewise drain), and wg.Wait must terminate. Draining
// first costs no allocation and blocks the waiter behind at most the tasks
// it chose to execute.
func (p *Pool) helpWait(wg *sync.WaitGroup) {
	for {
		select {
		case task, ok := <-p.queue:
			if !ok {
				wg.Wait()
				return
			}
			task()
		default:
			wg.Wait()
			return
		}
	}
}

// ParallelRange splits [0, n) over the default pool; see Pool.ParallelRange.
func ParallelRange(n int, fn func(lo, hi int)) { defaultPool.ParallelRange(n, fn) }

// ParallelFor runs fn(i) for every i in [0, n) over the default pool; see
// Pool.ParallelFor.
func ParallelFor(n int, fn func(i int)) { defaultPool.ParallelFor(n, fn) }

// maxPoolBucket caps pooled buffers at 2^26 elements (512 MiB of float64);
// anything larger allocates directly and is never recycled.
const maxPoolBucket = 26

// freeLists[b] holds *Tensor whose backing arrays have capacity exactly 2^b.
var freeLists [maxPoolBucket + 1]sync.Pool

// poolDebug turns free-list misuse that Put normally tolerates into a
// panic; see SetPoolDebug.
var poolDebug atomic.Bool

// SetPoolDebug toggles debug mode for the buffer free-list. When on, Put on
// a view (View/Slice/Reshape result) panics instead of no-oping: a view
// aliases its parent's backing array, so a Put through it is always a bug —
// either a leak (the caller meant to Put the parent) or, if the parent is
// pooled, a latent double-free. Tests enable it to pin the ownership rules.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// bucketFor returns the free-list class for n elements: the smallest b with
// 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetUninit returns a tensor of the given shape from the free-list without
// clearing it: the contents are whatever the previous owner left behind.
// Use only when every element will be overwritten.
func GetUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Get")
		}
		n *= d
	}
	b := bucketFor(n)
	if b > maxPoolBucket {
		// Too big to recycle; allocate directly (and never Put it back).
		// Built inline so the shape slice never escapes on the hot path.
		t := &Tensor{data: make([]float64, n)}
		t.setShape(shape)
		return t
	}
	t, _ := freeLists[b].Get().(*Tensor)
	if t == nil {
		t = &Tensor{data: make([]float64, 1<<b)}
	}
	t.data = t.data[:n]
	t.setShape(shape)
	t.poolable = true
	return t
}

// Get returns a zero-filled tensor of the given shape from the free-list.
func Get(shape ...int) *Tensor {
	t := GetUninit(shape...)
	clear(t.data)
	return t
}

// Put returns a tensor obtained from Get/GetUninit to the free-list. The
// caller must not retain t, its Data(), or any view of it afterwards — and
// must not Put the same tensor twice. Put is a no-op for tensors the pool
// does not own (New/FromData results, views), so releasing a tensor of
// unknown origin is safe; under SetPoolDebug the view case panics instead,
// because a view aliases a parent buffer Put must never capture. An
// erroneous second Put of a pooled tensor is only ignored until a Get
// re-issues the object, after which it would return someone else's live
// buffer. "At most once" is the rule, not a best-effort guard.
func Put(t *Tensor) {
	if t == nil {
		return
	}
	if !t.poolable {
		if t.view && poolDebug.Load() {
			panic("tensor: Put on a view (views alias their parent's backing array and are never pool-owned)")
		}
		return
	}
	t.poolable = false
	c := cap(t.data)
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-shaped buffer; drop it
	}
	b := bits.Len(uint(c)) - 1
	if b > maxPoolBucket {
		return
	}
	t.data = t.data[:c]
	t.shape = nil
	freeLists[b].Put(t)
}

package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4)
	if a.Size() != 12 {
		t.Fatalf("Size = %d, want 12", a.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if a.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, a.At(i, j))
			}
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major flat offset: ((1*3)+2)*4+3 = 23.
	if a.Data()[23] != 7.5 {
		t.Fatalf("flat layout wrong: %v", a.Data())
	}
}

func TestFromDataLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromData([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeView(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 1)
	if a.At(0, 1) != 99 {
		t.Fatal("Reshape must share storage")
	}
	c := a.Reshape(-1, 2)
	if c.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Dim(0))
	}
}

func TestReshapeBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestRowView(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 40
	if a.At(1, 0) != 40 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromData([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromData([]float64{58, 64, 139, 154}, 2, 2)
	if !c.AllClose(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

// naiveMatMul is the reference implementation for property testing.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := RandN(r, 1, m, k)
		b := RandN(r, 1, k, n)
		return MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestMatMulParallelLarge(t *testing.T) {
	r := xrand.New(2)
	a := RandN(r, 1, 200, 64)
	b := RandN(r, 1, 64, 150)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !got.AllClose(want, 1e-9) {
		t.Fatalf("parallel MatMul differs, max diff %v", got.MaxAbsDiff(want))
	}
}

func TestMatMulT1EqualsTransposedMatMul(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k, m, n := 1+r.Intn(15), 1+r.Intn(15), 1+r.Intn(15)
		a := RandN(r, 1, k, m)
		b := RandN(r, 1, k, n)
		return MatMulT1(a, b).AllClose(MatMul(Transpose2D(a), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulT2EqualsMatMulTransposed(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m, k, n := 1+r.Intn(15), 1+r.Intn(15), 1+r.Intn(15)
		a := RandN(r, 1, m, k)
		b := RandN(r, 1, n, k)
		return MatMulT2(a, b).AllClose(MatMul(a, Transpose2D(b)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := xrand.New(3)
	a := RandN(r, 1, 7, 5)
	if !Transpose2D(Transpose2D(a)).AllClose(a, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

func TestBatchedMatMul(t *testing.T) {
	r := xrand.New(4)
	a := RandN(r, 1, 3, 4, 5)
	b := RandN(r, 1, 3, 5, 6)
	out := BatchedMatMul(a, b)
	for i := 0; i < 3; i++ {
		ai := FromData(a.Data()[i*20:(i+1)*20], 4, 5)
		bi := FromData(b.Data()[i*30:(i+1)*30], 5, 6)
		want := MatMul(ai, bi)
		got := FromData(out.Data()[i*24:(i+1)*24], 4, 6)
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestAddSubMul(t *testing.T) {
	a := FromData([]float64{1, 2, 3}, 3)
	b := FromData([]float64{4, 5, 6}, 3)
	if got := Add(a, b); !got.AllClose(FromData([]float64{5, 7, 9}, 3), 0) {
		t.Fatalf("Add = %v", got.Data())
	}
	if got := Sub(b, a); !got.AllClose(FromData([]float64{3, 3, 3}, 3), 0) {
		t.Fatalf("Sub = %v", got.Data())
	}
	if got := Mul(a, b); !got.AllClose(FromData([]float64{4, 10, 18}, 3), 0) {
		t.Fatalf("Mul = %v", got.Data())
	}
	if got := Scale(a, 2); !got.AllClose(FromData([]float64{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", got.Data())
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	v := FromData([]float64{10, 20}, 2)
	got := AddRowVector(a, v)
	want := FromData([]float64{11, 22, 13, 24}, 2, 2)
	if !got.AllClose(want, 0) {
		t.Fatalf("AddRowVector = %v", got.Data())
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	AddInPlace(a, FromData([]float64{3, 4}, 2))
	if !a.AllClose(FromData([]float64{4, 6}, 2), 0) {
		t.Fatalf("AddInPlace = %v", a.Data())
	}
	AddScaledInPlace(a, 0.5, FromData([]float64{2, 2}, 2))
	if !a.AllClose(FromData([]float64{5, 7}, 2), 0) {
		t.Fatalf("AddScaledInPlace = %v", a.Data())
	}
}

func TestSumMean(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 4)
	if Sum(a) != 10 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 2.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Mean(New(0)) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

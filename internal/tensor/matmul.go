package tensor

// matmulParallelThreshold is the FLOP count above which the GEMM kernels
// shard rows across the shared worker pool (pool.go). Below it, scheduling
// costs more than it saves.
const matmulParallelThreshold = 1 << 18

// MatMul returns a @ b for 2-D tensors with shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(mmShape(a, b, "MatMul"), b.shape[1])
	defaultPool.matmulInto(out.data, a.data, b.data, a.shape[0], a.shape[1], b.shape[1])
	return out
}

// MatMulInto computes dst = a @ b, overwriting dst, which must be (m,n).
// With a pooled dst (GetUninit) this is the allocation-free GEMM the hot
// path uses. Rows shard over the default pool; see Pool.MatMulInto for the
// scoped variant.
func MatMulInto(dst, a, b *Tensor) { defaultPool.MatMulInto(dst, a, b) }

// MatMulInto computes dst = a @ b with the row sharding bound to p's
// worker budget instead of the default pool — the GEMM entry point for
// code running on a scoped compute stream. A nil receiver uses the default
// pool. Results are bit-identical at any width.
func (p *Pool) MatMulInto(dst, a, b *Tensor) {
	m := mmShape(a, b, "MatMulInto")
	n := b.shape[1]
	checkDst(dst, m, n, "MatMulInto")
	p.self().matmulInto(dst.data, a.data, b.data, m, a.shape[1], n)
}

// mmShape validates a 2-D pair with matching inner dimension and returns m.
func mmShape(a, b *Tensor, op string) int {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	if a.shape[1] != b.shape[0] {
		panic("tensor: " + op + " inner dimension mismatch")
	}
	return a.shape[0]
}

func checkDst(dst *Tensor, m, n int, op string) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: " + op + " destination shape mismatch")
	}
}

// matmulInto computes dst = A @ B where A is (m,k), B is (k,n), all
// row-major. Rows of dst are sharded over the pool; each output element is
// accumulated entirely by one goroutine in a fixed order, so the result is
// identical at any parallel width.
func (p *Pool) matmulInto(dst, a, b []float64, m, k, n int) {
	// The Workers()==1 check precedes the closure so the single-threaded
	// path stays allocation-free.
	if m*k*n < matmulParallelThreshold || m == 1 || p.Workers() == 1 {
		matmulRows(dst, a, b, 0, m, k, n)
		return
	}
	p.ParallelRange(m, func(lo, hi int) {
		matmulRows(dst, a, b, lo, hi, k, n)
	})
}

// matmulRows is the register-blocked i-k-j kernel: the k-loop is unrolled
// 4× so each pass streams four rows of B against four scalars of A held in
// registers, quartering the traffic on dst.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		di := dst[i*n : (i+1)*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b[p*n : p*n+n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n : (p+3)*n+n]
			for j := range di {
				di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT1 returns aᵀ @ b where a is (k,m) and b is (k,n); the result is
// (m,n). This is the shape needed for weight gradients (xᵀ @ dy) without
// materializing the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 requires 2-D tensors")
	}
	out := New(a.shape[1], b.shape[1])
	MatMulT1Into(out, a, b)
	return out
}

// MatMulT1Into computes dst = aᵀ @ b with the pool convention of
// Pool.MatMulInto. The kernel itself is inherently sequential (every rank-1
// update touches all of dst), so the pool only documents intent; it exists
// so a stream's GEMM calls are uniformly pool-bound.
func (p *Pool) MatMulT1Into(dst, a, b *Tensor) { MatMulT1Into(dst, a, b) }

// MatMulT1Into computes dst = aᵀ @ b, overwriting dst, which must be (m,n)
// for a (k,m) and b (k,n).
func MatMulT1Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1Into requires 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT1Into inner dimension mismatch")
	}
	checkDst(dst, m, n, "MatMulT1Into")
	clear(dst.data)
	// dst[i,j] = sum_p a[p,i]*b[p,j]: accumulate rank-1 updates row by row.
	// Rows of dst cannot be sharded without also sharding the p-loop (every
	// update touches all of dst), so this kernel stays sequential; callers
	// parallelize across experts/heads instead.
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := dst.data[i*n : (i+1)*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT2 returns a @ bᵀ where a is (m,k) and b is (n,k); the result is
// (m,n). This is the shape needed for input gradients (dy @ Wᵀ) without
// materializing the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 requires 2-D tensors")
	}
	out := New(a.shape[0], b.shape[0])
	MatMulT2Into(out, a, b)
	return out
}

// MatMulT2Into computes dst = a @ bᵀ, overwriting dst, which must be (m,n)
// for a (m,k) and b (n,k). Rows shard over the default pool; see
// Pool.MatMulT2Into for the scoped variant.
func MatMulT2Into(dst, a, b *Tensor) { defaultPool.MatMulT2Into(dst, a, b) }

// MatMulT2Into computes dst = a @ bᵀ with the row sharding bound to p's
// worker budget (nil = default pool). Both operands stream row-major, so
// the inner loops are pure dot products; they are blocked four-wide over
// rows of b to reuse each load of a's row.
func (p *Pool) MatMulT2Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2Into requires 2-D tensors")
	}
	p = p.self()
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT2Into inner dimension mismatch")
	}
	checkDst(dst, m, n, "MatMulT2Into")
	if m*k*n < matmulParallelThreshold || m == 1 || p.Workers() == 1 {
		matmulT2Rows(dst.data, a.data, b.data, 0, m, k, n)
		return
	}
	ad, bd, dd := a.data, b.data, dst.data
	p.ParallelRange(m, func(lo, hi int) {
		matmulT2Rows(dd, ad, bd, lo, hi, k, n)
	})
}

// matmulT2Rows computes rows [lo, hi) of dst = a @ bᵀ. The j-loop is
// blocked four-wide: four dot products share each streamed load of a's row,
// and each dot accumulates over p in a fixed order (so results don't depend
// on the blocking).
func matmulT2Rows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k : (i+1)*k]
		di := dst[i*n : (i+1)*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			bj := b[j*k : (j+1)*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// BatchedMatMul multiplies two 3-D tensors batch-wise: (b,m,k)@(b,k,n) →
// (b,m,n). Batches shard over the shared worker pool when the total work
// clears the parallel threshold; small batched products run sequentially
// instead of paying one goroutine per batch.
func BatchedMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic("tensor: BatchedMatMul requires 3-D tensors")
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	bs2, k2, n := b.shape[0], b.shape[1], b.shape[2]
	if bs != bs2 || k != k2 {
		panic("tensor: BatchedMatMul shape mismatch")
	}
	out := New(bs, m, n)
	if bs*m*k*n < matmulParallelThreshold || Workers() == 1 {
		for i := 0; i < bs; i++ {
			matmulRows(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], 0, m, k, n)
		}
		return out
	}
	if bs <= serialCutoff {
		// Too few batches to fan out over; recover the parallelism inside
		// each product instead (row sharding), which the per-batch leaf
		// kernel above deliberately skips.
		for i := 0; i < bs; i++ {
			defaultPool.matmulInto(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], m, k, n)
		}
		return out
	}
	ParallelFor(bs, func(i int) {
		matmulRows(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], 0, m, k, n)
	})
	return out
}

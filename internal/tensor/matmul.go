package tensor

import (
	"runtime"
	"sync"
)

// matmulParallelThreshold is the FLOP count above which MatMul shards rows
// across goroutines. Below it, goroutine startup costs more than it saves.
const matmulParallelThreshold = 1 << 18

// MatMul returns a @ b for 2-D tensors with shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// matmulInto computes dst = A @ B where A is (m,k), B is (k,n), all
// row-major. The i-k-j loop order keeps the inner loop streaming through
// contiguous rows of B and dst, which is the standard cache-friendly layout
// for row-major GEMM.
func matmulInto(dst, a, b []float64, m, k, n int) {
	flops := m * k * n
	if flops < matmulParallelThreshold || m == 1 {
		matmulRows(dst, a, b, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		di := dst[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT1 returns aᵀ @ b where a is (k,m) and b is (k,n); the result is
// (m,n). This is the shape needed for weight gradients (xᵀ @ dy) without
// materializing the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 requires 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT1 inner dimension mismatch")
	}
	out := New(m, n)
	// dst[i,j] = sum_p a[p,i]*b[p,j]: accumulate rank-1 updates row by row.
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := out.data[i*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT2 returns a @ bᵀ where a is (m,k) and b is (n,k); the result is
// (m,n). This is the shape needed for input gradients (dy @ Wᵀ) without
// materializing the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMulT2 inner dimension mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// BatchedMatMul multiplies two 3-D tensors batch-wise: (b,m,k)@(b,k,n) →
// (b,m,n). Batches run in parallel when large enough.
func BatchedMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic("tensor: BatchedMatMul requires 3-D tensors")
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	bs2, k2, n := b.shape[0], b.shape[1], b.shape[2]
	if bs != bs2 || k != k2 {
		panic("tensor: BatchedMatMul shape mismatch")
	}
	out := New(bs, m, n)
	var wg sync.WaitGroup
	for i := 0; i < bs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			matmulRows(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], 0, m, k, n)
		}(i)
	}
	wg.Wait()
	return out
}

package tensor

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// TestScopedPoolMatchesDefault pins the scoped-pool contract: a kernel
// bound to a NewPool produces bit-identical results to the default-pool
// kernel at every width, including width 1 (which must never start a
// goroutine) and nil (which designates the default pool).
func TestScopedPoolMatchesDefault(t *testing.T) {
	rng := xrand.New(21)
	a := RandN(rng, 1, 97, 131)
	b := RandN(rng, 1, 131, 89)
	want := MatMul(a, b)
	bt := Transpose2D(b)
	wantT2 := MatMulT2(a, bt)
	for _, w := range []int{1, 2, 7} {
		p := NewPool(w)
		got := GetUninit(97, 89)
		p.MatMulInto(got, a, b)
		if got.MaxAbsDiff(want) != 0 {
			t.Fatalf("width %d: pool MatMulInto not bit-identical", w)
		}
		p.MatMulT2Into(got, a, bt)
		if got.MaxAbsDiff(wantT2) != 0 {
			t.Fatalf("width %d: pool MatMulT2Into not bit-identical", w)
		}
		Put(got)
		p.Close()
	}
	var nilPool *Pool
	got := GetUninit(97, 89)
	nilPool.MatMulInto(got, a, b)
	if got.MaxAbsDiff(want) != 0 {
		t.Fatal("nil pool MatMulInto not bit-identical to default")
	}
	Put(got)
}

// TestScopedPoolWidthCap checks that a scoped pool never runs more than
// its fixed width concurrently, regardless of the machine or the global
// Workers() setting.
func TestScopedPoolWidthCap(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(16)
	p := NewPool(2)
	defer p.Close()
	var cur, peak atomic.Int64
	var mu sync.Mutex
	p.ParallelFor(64, func(i int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		for j := 0; j < 2000; j++ {
			_ = j * j
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Fatalf("pool of width 2 ran %d iterations concurrently", got)
	}
}

// TestScopedPoolNested checks that nested parallel regions on one scoped
// pool complete (the inline-fallback + help-drain discipline of the
// default pool applies per pool).
func TestScopedPoolNested(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total [16][16]int32
	p.ParallelFor(16, func(i int) {
		p.ParallelRange(16, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				atomic.AddInt32(&total[i][j], 1)
			}
		})
	})
	for i := range total {
		for j := range total[i] {
			if total[i][j] != 1 {
				t.Fatalf("cell (%d,%d) ran %d times", i, j, total[i][j])
			}
		}
	}
}

// TestScopedPoolCloseDegrades checks that parallel calls after Close run
// inline rather than hanging or crashing (documented misuse tolerance).
func TestScopedPoolCloseDegrades(t *testing.T) {
	p := NewPool(4)
	p.ParallelFor(8, func(int) {})
	p.Close()
	hits := make([]int32, 8)
	p.ParallelFor(8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times after Close", i, h)
		}
	}
}

// TestSerialFastPathCoversAllIndices pins the tiny-n serial path: sizes at
// and below the cutoff still visit every index exactly once (and do so on
// the calling goroutine, though only coverage is asserted here).
func TestSerialFastPathCoversAllIndices(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(8)
	for n := 0; n <= serialCutoff+2; n++ {
		hits := make([]int32, n)
		ParallelFor(n, func(i int) { hits[i]++ })
		ranges := make([]int32, n)
		ParallelRange(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ranges[i]++
			}
		})
		for i := 0; i < n; i++ {
			if hits[i] != 1 || ranges[i] != 1 {
				t.Fatalf("n=%d index %d: for=%d range=%d", n, i, hits[i], ranges[i])
			}
		}
	}
}

// TestPutViewGuard is the free-list aliasing regression: Put on a view of
// a pooled tensor must never capture the parent's backing array, the
// parent must remain Put-able exactly once afterwards, and debug mode must
// turn the misuse into a panic.
func TestPutViewGuard(t *testing.T) {
	parent := GetUninit(32)
	parent.Fill(3)
	for _, v := range []*Tensor{
		parent.View(0, 32), // full-extent view: cap is even pool-shaped
		parent.Slice(0, 16),
		parent.Reshape(4, 8),
	} {
		Put(v)
	}
	// If any Put above leaked the backing array to the free-list, this Get
	// of the same size class would alias the still-live parent.
	fresh := GetUninit(32)
	if &fresh.Data()[0] == &parent.Data()[0] {
		t.Fatal("Put on a view recycled the parent's live backing array")
	}
	fresh.Fill(9)
	for i, x := range parent.Data() {
		if x != 3 {
			t.Fatalf("parent corrupted at %d: %v", i, x)
		}
	}
	Put(fresh)
	Put(parent) // single legitimate Put still works

	SetPoolDebug(true)
	defer SetPoolDebug(false)
	g := GetUninit(8)
	defer Put(g)
	defer func() {
		if recover() == nil {
			t.Fatal("debug mode: Put on a view did not panic")
		}
	}()
	Put(g.View(0, 4))
}

// TestPutDebugToleratesPlainTensors: debug mode targets views only; a
// defensive Put of a New/FromData tensor stays a silent no-op because
// callers legitimately release tensors of unknown origin.
func TestPutDebugToleratesPlainTensors(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	Put(New(4, 4))
	Put(FromData([]float64{1, 2}, 2))
	Put(nil)
}

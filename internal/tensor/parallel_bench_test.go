package tensor

// BenchmarkParallelRangeTiny is the measurement behind serialCutoff: it
// compares the serial loop against the pool fan-out for tiny index spaces
// at two per-item weights. The "fanout" rows bypass the cutoff by calling
// the sharding machinery directly, so the crossover stays visible even
// after the fast path exists. On the machines this was tuned on, fan-out
// at n=2 costs ~0.3–0.5µs over the serial loop — more than light items do
// in total — while from n=4 upward medium items start winning. Heavy items
// at n≤2 lose nothing to the serial path because the kernels they call
// shard their own rows (see BatchedMatMul's small-batch branch).

import (
	"fmt"
	"sync"
	"testing"
)

// fanoutRange is ParallelRange without the serial cutoff: the benchmark
// baseline that shows what tiny index spaces used to pay.
func fanoutRange(n int, fn func(lo, hi int)) {
	p := &defaultPool
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	p.startWorkers()
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.submit(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	fn(0, chunk)
	p.helpWait(&wg)
}

func BenchmarkParallelRangeTiny(b *testing.B) {
	// Pin the width so the fan-out rows exercise real chunk submission even
	// when GOMAXPROCS is small (the point is the scheduling overhead, which
	// a width-1 fallback would hide).
	SetWorkers(8)
	defer SetWorkers(0)
	work := func(iters int) func(lo, hi int) {
		return func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				for j := 0; j < iters; j++ {
					s += float64(j ^ i)
				}
			}
			sink = s
		}
	}
	for _, n := range []int{2, 4, 8} {
		for _, item := range []struct {
			name  string
			iters int
		}{{"light100", 100}, {"medium5k", 5000}} {
			b.Run(fmt.Sprintf("n=%d/%s/serial", n, item.name), func(b *testing.B) {
				fn := work(item.iters)
				for i := 0; i < b.N; i++ {
					fn(0, n)
				}
			})
			b.Run(fmt.Sprintf("n=%d/%s/fanout", n, item.name), func(b *testing.B) {
				fn := work(item.iters)
				for i := 0; i < b.N; i++ {
					fanoutRange(n, fn)
				}
			})
		}
	}
}

// sink defeats dead-code elimination in the benchmark loops.
var sink float64

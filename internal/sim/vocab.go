package sim

// This file is the canonical vocabulary of stream schedules: the task-kind
// strings that key every breakdown, cost model, fault-injection filter and
// retry allowlist, and the event-type strings measured traces record
// incidents under. Every other package (internal/core's simulated
// schedules, internal/moe's executable plans, internal/gradsync's
// AllReduce slices, internal/fault's triggers, internal/telemetry's trace
// exporter) aliases these constants instead of redeclaring the literals,
// so a trace produced anywhere aggregates identically everywhere.
//
// Task kinds (Task.Kind — the aggregation key of Breakdown and the
// Table 2 columns):
//
//	AlltoAll       dispatch/combine token exchange (EP, hybrid inter-group)
//	AllGather      ESP input/hidden gather stages (intra-node ring)
//	ReduceScatter  ESP output reduction (intra-node ring)
//	AllReduce      §5 Gradient-AllReduce slices (inter-node ring)
//	Experts        expert GEMMs (chunked, sharded or whole-block)
//	Pack           wire-layout (un)packing, the local Order work
//	Others         residual dense work in full-iteration models
//
// Event types (Event.Type — fault/recovery incidents on measured traces):
//
//	fault      an injected failure fired (transient or permanent)
//	retry      a transient failure is being retried after backoff
//	straggler  an injected delay stalled the task
//	skip       the task was skipped by cooperative cancellation

// Canonical task-kind strings.
const (
	KindAlltoAll      = "AlltoAll"
	KindAllGather     = "AllGather"
	KindReduceScatter = "ReduceScatter"
	KindAllReduce     = "AllReduce"
	KindExperts       = "Experts"
	KindPack          = "Pack"
	KindOthers        = "Others"
)

// Kinds returns the canonical task-kind strings in presentation order —
// the closed set exporters and breakdown tables iterate.
func Kinds() []string {
	return []string{KindAlltoAll, KindAllGather, KindReduceScatter, KindAllReduce, KindExperts, KindPack, KindOthers}
}

// Canonical event-type strings recorded on measured traces.
const (
	EventFault     = "fault"     // an injected failure fired (transient or permanent)
	EventRetry     = "retry"     // a transient failure is being retried after backoff
	EventStraggler = "straggler" // an injected delay stalled the task
	EventSkip      = "skip"      // the task was skipped by cooperative cancellation
)

// EventTypes returns the canonical event-type strings in presentation
// order.
func EventTypes() []string {
	return []string{EventFault, EventRetry, EventStraggler, EventSkip}
}

// Package sim is a deterministic discrete-event simulator for stream-based
// schedules.
//
// It models exactly the execution substrate the paper reasons about in
// Figs. 3–4: each worker owns a small set of serialized resources ("streams"
// in CUDA terms — a compute stream, an intra-node communication stream and
// an inter-node NIC stream), tasks are enqueued on a stream in program
// order, and a task starts when both its stream is free and all of its
// dependencies have finished. Two inter-node operations can therefore never
// overlap each other (they share the NIC stream) while an inter-node and an
// intra-node operation can — the contention structure at the heart of
// FSMoE's inter/intra-node co-scheduling argument.
//
// The engine is exact and O(V·S) in the number of tasks V and streams S:
// because streams execute strictly in enqueue order, the makespan is the
// fixed point of start(t) = max(finish(prev on stream), max finish(deps)).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Task is one operation placed on a stream.
type Task struct {
	ID       int
	Label    string  // human-readable ("A2A-d[2]")
	Kind     string  // aggregation key for breakdowns ("AlltoAll")
	Stream   string  // resource name ("inter", "intra", "compute")
	Duration float64 // ms
	Deps     []int

	start, finish float64
	scheduled     bool
}

// Graph is a schedule under construction: a DAG of tasks with stream
// assignments. Enqueue order per stream is the execution order, as on a
// CUDA stream.
type Graph struct {
	tasks   []*Task
	streams map[string][]int // stream name -> task ids in enqueue order
	order   []string         // stream names in first-use order
}

// NewGraph returns an empty schedule.
func NewGraph() *Graph {
	return &Graph{streams: make(map[string][]int)}
}

// Add enqueues a task on a stream and returns its id. deps may reference
// only previously added tasks.
func (g *Graph) Add(label, kind, stream string, duration float64, deps ...int) int {
	if duration < 0 {
		panic(fmt.Sprintf("sim: negative duration for %q", label))
	}
	id := len(g.tasks)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("sim: task %q depends on unknown task %d", label, d))
		}
	}
	t := &Task{ID: id, Label: label, Kind: kind, Stream: stream, Duration: duration, Deps: append([]int(nil), deps...)}
	g.tasks = append(g.tasks, t)
	if _, ok := g.streams[stream]; !ok {
		g.order = append(g.order, stream)
	}
	g.streams[stream] = append(g.streams[stream], id)
	return id
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Interval is one executed task in a trace.
type Interval struct {
	Task   *Task
	Start  float64
	Finish float64
}

// StreamResources is the planned execution-resource binding of one stream:
// how many tensor-pool workers the schedule allotted it and whether its
// executor goroutine was pinned to an OS thread. Simulated traces carry
// none; measured traces report the binding the runtime executed under, so
// a trace documents not just when tasks ran but on what.
type StreamResources struct {
	Workers int
	Pinned  bool
}

// Event is one fault-injection or recovery incident observed during a
// measured execution: an injected failure, a retry of the failed task, an
// injected straggler delay, or a task skipped by cooperative cancellation.
// Simulated traces carry none; the runtime attaches them to measured
// traces so a chaos run's timeline and its incidents travel together.
type Event struct {
	Type    string // EventFault, EventRetry, EventStraggler, EventSkip
	TaskID  int
	Label   string
	Kind    string
	Stream  string
	Attempt int     // 0-based attempt the incident happened on
	AtMS    float64 // ms since execution start
	Detail  string
}

// Trace is the result of running a Graph.
type Trace struct {
	Intervals []Interval
	Makespan  float64
	// Resources maps stream names to their planned resource bindings for
	// measured executions (nil for simulated traces and unbound runs).
	Resources map[string]StreamResources
	// Events holds the fault/retry incidents of a measured execution in
	// occurrence order (empty for simulated traces and fault-free runs).
	Events  []Event
	streams []string
}

// EventCount returns how many recorded events have the given type.
func (tr *Trace) EventCount(typ string) int {
	n := 0
	for _, ev := range tr.Events {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// Run executes the schedule and returns its trace. It panics on dependency
// cycles (which would deadlock a real stream program too).
func (g *Graph) Run() *Trace {
	// Head index per stream.
	heads := make(map[string]int, len(g.streams))
	avail := make(map[string]float64, len(g.streams))
	remaining := len(g.tasks)
	for remaining > 0 {
		progressed := false
		for _, s := range g.order {
			queue := g.streams[s]
			for heads[s] < len(queue) {
				t := g.tasks[queue[heads[s]]]
				ready := true
				depMax := 0.0
				for _, d := range t.Deps {
					dt := g.tasks[d]
					if !dt.scheduled {
						ready = false
						break
					}
					if dt.finish > depMax {
						depMax = dt.finish
					}
				}
				if !ready {
					break
				}
				t.start = avail[s]
				if depMax > t.start {
					t.start = depMax
				}
				t.finish = t.start + t.Duration
				t.scheduled = true
				avail[s] = t.finish
				heads[s]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			panic("sim: schedule deadlocked (dependency cycle across streams)")
		}
	}
	tr := &Trace{streams: append([]string(nil), g.order...)}
	for _, t := range g.tasks {
		tr.Intervals = append(tr.Intervals, Interval{Task: t, Start: t.start, Finish: t.finish})
		if t.finish > tr.Makespan {
			tr.Makespan = t.finish
		}
	}
	return tr
}

// NewTrace assembles a Trace from externally produced intervals — the
// bridge internal/runtime uses to report *measured* stream executions in
// the same vocabulary as simulated ones, so Gantt, Breakdown and StreamBusy
// work on both. streams lists the stream names in first-use order; the
// makespan is derived from the intervals.
func NewTrace(intervals []Interval, streams []string) *Trace {
	tr := &Trace{Intervals: intervals, streams: append([]string(nil), streams...)}
	for _, iv := range intervals {
		if iv.Finish > tr.Makespan {
			tr.Makespan = iv.Finish
		}
	}
	return tr
}

// NewTask builds a standalone task for externally produced traces (see
// NewTrace). Tasks made this way carry reporting metadata only; they are
// not enqueued on any Graph.
func NewTask(id int, label, kind, stream string, deps []int) *Task {
	return &Task{ID: id, Label: label, Kind: kind, Stream: stream, Deps: append([]int(nil), deps...)}
}

// Breakdown returns total busy time per task kind, the per-operation view
// Table 2 reports.
func (tr *Trace) Breakdown() map[string]float64 {
	out := map[string]float64{}
	for _, iv := range tr.Intervals {
		out[iv.Task.Kind] += iv.Finish - iv.Start
	}
	return out
}

// StreamBusy returns total busy time per stream.
func (tr *Trace) StreamBusy() map[string]float64 {
	out := map[string]float64{}
	for _, iv := range tr.Intervals {
		out[iv.Task.Stream] += iv.Finish - iv.Start
	}
	return out
}

// ResourceSummary renders the per-stream resource bindings of a measured
// trace on one line per stream ("compute:0 workers=2 pinned"), sorted by
// stream name; it returns "" when the trace carries no bindings.
func (tr *Trace) ResourceSummary() string {
	if len(tr.Resources) == 0 {
		return ""
	}
	names := make([]string, 0, len(tr.Resources))
	for s := range tr.Resources {
		names = append(names, s)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, s := range names {
		r := tr.Resources[s]
		fmt.Fprintf(&b, "%s workers=%d", s, r.Workers)
		if r.Pinned {
			b.WriteString(" pinned")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CriticalPathLowerBound returns max over streams of busy time — a lower
// bound on any legal makespan for this task set, used by tests.
func (tr *Trace) CriticalPathLowerBound() float64 {
	lb := 0.0
	for _, busy := range tr.StreamBusy() {
		if busy > lb {
			lb = busy
		}
	}
	return lb
}

// Gantt renders an ASCII timeline, one row per stream, width columns wide.
// Each task paints its label's first rune across its interval; idle time is
// '.'. It is the textual analogue of the paper's Fig. 3 diagrams.
func (tr *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	if tr.Makespan == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / tr.Makespan
	var b strings.Builder
	byStream := map[string][]Interval{}
	for _, iv := range tr.Intervals {
		byStream[iv.Task.Stream] = append(byStream[iv.Task.Stream], iv)
	}
	names := append([]string(nil), tr.streams...)
	sort.Strings(names)
	nameW := 0
	for _, s := range names {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for _, s := range names {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range byStream[s] {
			lo := int(iv.Start * scale)
			hi := int(iv.Finish * scale)
			if hi >= width {
				hi = width - 1
			}
			mark := '?'
			if iv.Task.Label != "" {
				mark = rune(iv.Task.Label[0])
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, s, string(row))
	}
	fmt.Fprintf(&b, "%-*s  makespan %.3f ms\n", nameW, "", tr.Makespan)
	return b.String()
}

// Canonical stream names used by the schedule builders in internal/core.
const (
	StreamCompute = "compute" // expert / attention / gate math (stream b in Fig. 3)
	StreamIntra   = "intra"   // NVLink / PCIe collectives (stream c)
	StreamInter   = "inter"   // NIC collectives: AlltoAll + Gradient-AllReduce (stream a)
)

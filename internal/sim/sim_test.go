package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSequentialSingleStream(t *testing.T) {
	g := NewGraph()
	g.Add("a", "x", "s", 1.0)
	g.Add("b", "x", "s", 2.0)
	g.Add("c", "x", "s", 3.0)
	tr := g.Run()
	if tr.Makespan != 6.0 {
		t.Fatalf("makespan = %v, want 6", tr.Makespan)
	}
}

func TestIndependentStreamsOverlap(t *testing.T) {
	g := NewGraph()
	g.Add("a", "x", "s1", 5.0)
	g.Add("b", "x", "s2", 3.0)
	tr := g.Run()
	if tr.Makespan != 5.0 {
		t.Fatalf("makespan = %v, want 5 (full overlap)", tr.Makespan)
	}
}

func TestDependencyAcrossStreams(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "x", "s1", 5.0)
	g.Add("b", "x", "s2", 3.0, a)
	tr := g.Run()
	if tr.Makespan != 8.0 {
		t.Fatalf("makespan = %v, want 8", tr.Makespan)
	}
}

func TestStreamFIFOOrderEnforced(t *testing.T) {
	// Task "late" is enqueued first on the stream but depends on a slow
	// task; "early" is enqueued after and has no deps. A real CUDA stream
	// would block on "late" first — so must we.
	g := NewGraph()
	slow := g.Add("slow", "x", "other", 10.0)
	g.Add("late", "x", "s", 1.0, slow)
	g.Add("early", "x", "s", 1.0)
	tr := g.Run()
	if tr.Makespan != 12.0 {
		t.Fatalf("makespan = %v, want 12 (FIFO head-of-line blocking)", tr.Makespan)
	}
}

func TestDiamondDependency(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", "x", "s1", 1.0)
	b := g.Add("b", "x", "s2", 4.0, a)
	c := g.Add("c", "x", "s3", 2.0, a)
	g.Add("d", "x", "s1", 1.0, b, c)
	tr := g.Run()
	if tr.Makespan != 6.0 { // 1 + max(4,2) + 1
		t.Fatalf("makespan = %v, want 6", tr.Makespan)
	}
}

func TestPipelineOverlapMatchesClosedForm(t *testing.T) {
	// r chunks of (comm then compute) on two streams: classic software
	// pipeline. Makespan = comm + r*compute when compute >= comm.
	const r = 4
	const comm, compute = 1.0, 2.0
	g := NewGraph()
	prevComm := -1
	for i := 0; i < r; i++ {
		var deps []int
		c := g.Add("c", "comm", "comm", comm)
		if prevComm >= 0 {
			_ = prevComm // FIFO on the stream already serializes comm tasks
		}
		deps = append(deps, c)
		g.Add("e", "exp", "compute", compute, deps...)
		prevComm = c
	}
	tr := g.Run()
	want := comm + r*compute
	if math.Abs(tr.Makespan-want) > 1e-12 {
		t.Fatalf("makespan = %v, want %v", tr.Makespan, want)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph().Add("a", "x", "s", -1)
}

func TestUnknownDepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph().Add("a", "x", "s", 1, 5)
}

func TestBreakdownAggregation(t *testing.T) {
	g := NewGraph()
	g.Add("a", "comm", "s", 1.0)
	g.Add("b", "comm", "s", 2.0)
	g.Add("c", "gemm", "s", 3.0)
	tr := g.Run()
	bd := tr.Breakdown()
	if bd["comm"] != 3.0 || bd["gemm"] != 3.0 {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestStreamBusyAndLowerBound(t *testing.T) {
	g := NewGraph()
	g.Add("a", "x", "s1", 4.0)
	g.Add("b", "x", "s2", 7.0)
	tr := g.Run()
	if tr.CriticalPathLowerBound() != 7.0 {
		t.Fatalf("lower bound = %v", tr.CriticalPathLowerBound())
	}
	if tr.Makespan < tr.CriticalPathLowerBound() {
		t.Fatal("makespan below lower bound")
	}
}

// TestMakespanInvariantsProperty checks on random DAGs that (1) the
// makespan is at least the busiest stream, (2) at least the longest
// dependency chain, and (3) no two tasks on one stream overlap.
func TestMakespanInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		g := NewGraph()
		n := 2 + r.Intn(40)
		streams := []string{"s0", "s1", "s2"}
		chain := make([]float64, n) // longest path ending at task i
		longest := 0.0
		for i := 0; i < n; i++ {
			dur := r.Float64() * 5
			var deps []int
			depMax := 0.0
			for d := 0; d < i; d++ {
				if r.Float64() < 0.15 {
					deps = append(deps, d)
					if chain[d] > depMax {
						depMax = chain[d]
					}
				}
			}
			g.Add("t", "k", streams[r.Intn(len(streams))], dur, deps...)
			chain[i] = depMax + dur
			if chain[i] > longest {
				longest = chain[i]
			}
		}
		tr := g.Run()
		if tr.Makespan < tr.CriticalPathLowerBound()-1e-9 {
			return false
		}
		if tr.Makespan < longest-1e-9 {
			return false
		}
		// No overlap within a stream.
		byStream := map[string][]Interval{}
		for _, iv := range tr.Intervals {
			byStream[iv.Task.Stream] = append(byStream[iv.Task.Stream], iv)
		}
		for _, ivs := range byStream {
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 &&
						a.Finish-a.Start > 0 && b.Finish-b.Start > 0 {
						return false
					}
				}
			}
		}
		// Dependencies respected.
		for _, iv := range tr.Intervals {
			for _, d := range iv.Task.Deps {
				if tr.Intervals[d].Finish > iv.Start+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttRenders(t *testing.T) {
	g := NewGraph()
	a := g.Add("A2A", "a2a", StreamInter, 2.0)
	g.Add("EXP", "exp", StreamCompute, 3.0, a)
	tr := g.Run()
	out := tr.Gantt(40)
	if !strings.Contains(out, StreamInter) || !strings.Contains(out, StreamCompute) {
		t.Fatalf("gantt missing streams:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "E") {
		t.Fatalf("gantt missing task marks:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Fatalf("gantt missing makespan:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := NewGraph().Run()
	if !strings.Contains(tr.Gantt(10), "empty") {
		t.Fatal("empty gantt should say so")
	}
}

func BenchmarkRun100Tasks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		prev := -1
		for j := 0; j < 100; j++ {
			var deps []int
			if prev >= 0 {
				deps = append(deps, prev)
			}
			prev = g.Add("t", "k", []string{"a", "b", "c"}[j%3], 1.0, deps...)
		}
		g.Run()
	}
}

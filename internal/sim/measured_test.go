package sim

// Tests for the measured-trace surface: traces assembled with NewTrace from
// externally produced intervals (the runtime's bridge) rather than run
// through the simulator, carrying the resource bindings and fault events
// only measured executions have.

import (
	"strings"
	"testing"
)

// measuredTrace assembles a small two-stream measured trace:
//
//	compute |AA..BBBB|   A [0,2)  B [4,8)
//	inter   |..CC....|   C [2,4)
func measuredTrace() *Trace {
	a := NewTask(0, "expertsA", KindExperts, StreamCompute, nil)
	c := NewTask(1, "a2a", KindAlltoAll, StreamInter, []int{0})
	b := NewTask(2, "expertsB", KindExperts, StreamCompute, []int{1})
	return NewTrace([]Interval{
		{Task: a, Start: 0, Finish: 2},
		{Task: c, Start: 2, Finish: 4},
		{Task: b, Start: 4, Finish: 8},
	}, []string{StreamCompute, StreamInter})
}

func TestMeasuredTraceMakespanAndBusy(t *testing.T) {
	tr := measuredTrace()
	if tr.Makespan != 8 {
		t.Fatalf("makespan = %v, want 8 (derived from interval finishes)", tr.Makespan)
	}
	busy := tr.StreamBusy()
	if busy[StreamCompute] != 6 || busy[StreamInter] != 2 {
		t.Fatalf("StreamBusy = %v, want compute=6 inter=2", busy)
	}
	bd := tr.Breakdown()
	if bd[KindExperts] != 6 || bd[KindAlltoAll] != 2 {
		t.Fatalf("Breakdown = %v, want Experts=6 AlltoAll=2", bd)
	}
}

func TestCriticalPathLowerBoundMeasured(t *testing.T) {
	tr := measuredTrace()
	// The bound is the busiest stream (compute: 6ms), and the measured
	// makespan (8ms: the A2A serializes the two expert chunks) must respect
	// it.
	if lb := tr.CriticalPathLowerBound(); lb != 6 {
		t.Fatalf("CriticalPathLowerBound = %v, want 6", lb)
	}
	if tr.CriticalPathLowerBound() > tr.Makespan {
		t.Fatalf("lower bound %v exceeds makespan %v", tr.CriticalPathLowerBound(), tr.Makespan)
	}

	// An empty measured trace bounds to zero.
	empty := NewTrace(nil, nil)
	if lb := empty.CriticalPathLowerBound(); lb != 0 {
		t.Fatalf("empty trace lower bound = %v, want 0", lb)
	}

	// Perfectly overlapped streams: the bound is tight.
	x := NewTask(0, "x", KindExperts, StreamCompute, nil)
	y := NewTask(1, "y", KindAlltoAll, StreamInter, nil)
	par := NewTrace([]Interval{
		{Task: x, Start: 0, Finish: 5},
		{Task: y, Start: 0, Finish: 5},
	}, []string{StreamCompute, StreamInter})
	if lb := par.CriticalPathLowerBound(); lb != par.Makespan {
		t.Fatalf("overlapped trace: bound %v should equal makespan %v", lb, par.Makespan)
	}
}

func TestResourceSummaryMeasured(t *testing.T) {
	tr := measuredTrace()
	if got := tr.ResourceSummary(); got != "" {
		t.Fatalf("trace without bindings: ResourceSummary = %q, want empty", got)
	}

	tr.Resources = map[string]StreamResources{
		StreamInter:   {Workers: 2},
		StreamCompute: {Workers: 4, Pinned: true},
	}
	got := tr.ResourceSummary()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ResourceSummary = %q, want 2 lines", got)
	}
	// Sorted by stream name: compute before inter.
	if lines[0] != "compute workers=4 pinned" {
		t.Fatalf("line 0 = %q, want %q", lines[0], "compute workers=4 pinned")
	}
	if lines[1] != "inter workers=2" {
		t.Fatalf("line 1 = %q, want %q (unpinned stream must not say pinned)", lines[1], "inter workers=2")
	}
}

func TestMeasuredTraceEvents(t *testing.T) {
	tr := measuredTrace()
	tr.Events = []Event{
		{Type: EventFault, TaskID: 1, Kind: KindAlltoAll, Stream: StreamInter, AtMS: 2.5},
		{Type: EventRetry, TaskID: 1, Kind: KindAlltoAll, Stream: StreamInter, Attempt: 1, AtMS: 2.7},
		{Type: EventFault, TaskID: 2, Kind: KindExperts, Stream: StreamCompute, AtMS: 5},
	}
	if n := tr.EventCount(EventFault); n != 2 {
		t.Fatalf("EventCount(fault) = %d, want 2", n)
	}
	if n := tr.EventCount(EventRetry); n != 1 {
		t.Fatalf("EventCount(retry) = %d, want 1", n)
	}
	if n := tr.EventCount(EventSkip); n != 0 {
		t.Fatalf("EventCount(skip) = %d, want 0", n)
	}
}

func TestVocabCanonical(t *testing.T) {
	kinds := Kinds()
	if len(kinds) == 0 {
		t.Fatal("Kinds() is empty")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k == "" || seen[k] {
			t.Fatalf("Kinds() contains empty or duplicate entry: %v", kinds)
		}
		seen[k] = true
	}
	for _, want := range []string{KindAlltoAll, KindAllGather, KindReduceScatter, KindAllReduce, KindExperts} {
		if !seen[want] {
			t.Fatalf("Kinds() missing %q: %v", want, kinds)
		}
	}
	types := EventTypes()
	wantTypes := map[string]bool{EventFault: true, EventRetry: true, EventStraggler: true, EventSkip: true}
	for _, typ := range types {
		delete(wantTypes, typ)
	}
	if len(wantTypes) != 0 {
		t.Fatalf("EventTypes() missing %v (got %v)", wantTypes, types)
	}
}

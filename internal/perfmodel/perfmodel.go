// Package perfmodel implements the linear performance models of §4.1 and
// the profiling/fitting workflow of Fig. 5.
//
// Every time-consuming task — AlltoAll, AllGather, ReduceScatter,
// AllReduce, expert GEMMs — is modelled as t(n) = α + β·n, where n is the
// message volume in bytes (or the GEMM workload in MACs), α is startup time
// and β is per-unit time. When an input is split into r pipeline chunks the
// per-chunk time is t(n/r) = α + β·n/r (Eq. 1). The models are fitted from
// microbenchmark measurements by ordinary least squares, and the fit
// quality is reported as R², exactly as §6.2 does.
package perfmodel

import (
	"errors"
	"math"
	"time"

	"repro/internal/topology"
)

// Linear is t(n) = Alpha + Beta·n.
type Linear struct {
	Alpha float64 // ms
	Beta  float64 // ms per byte (or per MAC)
}

// Time returns the modelled duration for volume n. Non-positive volumes
// take zero time (the task does not exist).
func (m Linear) Time(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return m.Alpha + m.Beta*n
}

// ChunkTime returns the per-chunk duration when n is split into r chunks:
// α + (n/r)·β (Eq. 1).
func (m Linear) ChunkTime(n float64, r float64) float64 {
	if n <= 0 {
		return 0
	}
	if r < 1 {
		r = 1
	}
	return m.Alpha + m.Beta*n/r
}

// Inverse returns the volume that takes time t: (t-α)/β, clamped at 0.
// This is the g_inv function of §5.1 used to convert an overlappable time
// window into a gradient byte budget.
func (m Linear) Inverse(t float64) float64 {
	if m.Beta <= 0 {
		return 0
	}
	n := (t - m.Alpha) / m.Beta
	if n < 0 {
		return 0
	}
	return n
}

// Scale returns a model with both coefficients multiplied by s. §4.4 uses
// s=2 for the backward pass of expert computation (gradients of both the
// weights and the input must be produced).
func (m Linear) Scale(s float64) Linear {
	return Linear{Alpha: m.Alpha * s, Beta: m.Beta * s}
}

// Fitted is a Linear model plus its goodness of fit.
type Fitted struct {
	Linear
	R2 float64 // coefficient of determination
	N  int     // number of samples fitted
}

// Fit performs an ordinary least-squares fit of y = α + β·x and returns the
// model with R². It needs at least two distinct x values.
func Fit(xs, ys []float64) (Fitted, error) {
	if len(xs) != len(ys) {
		return Fitted{}, errors.New("perfmodel: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fitted{}, errors.New("perfmodel: need at least 2 samples")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fitted{}, errors.New("perfmodel: degenerate x values")
	}
	beta := (n*sxy - sx*sy) / den
	alpha := (sy - beta*sx) / n
	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := alpha + beta*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fitted{Linear: Linear{Alpha: alpha, Beta: beta}, R2: r2, N: len(xs)}, nil
}

// ClusterModels is the full set of fitted models the scheduler consumes.
type ClusterModels struct {
	Cluster *topology.Cluster
	A2A     Fitted // hierarchical AlltoAll (bytes)
	A2AFlat Fitted // direct AlltoAll at the cluster's full node span (bytes)
	AG      Fitted // ESP-AllGather (bytes)
	RS      Fitted // ESP-ReduceScatter (bytes)
	AR      Fitted // Gradient-AllReduce (bytes)
	GEMM    Fitted // expert/attention compute (MACs)
}

// CommSizes returns the message sizes (bytes) §6.2 benchmarks: float-type
// elements from 2^18 to 24·2^18 in 2^18 steps, 4 bytes each.
func CommSizes() []float64 {
	var out []float64
	for i := 1; i <= 24; i++ {
		out = append(out, float64(i)*float64(1<<18)*4)
	}
	return out
}

// GEMMSizes returns the GEMM workloads §6.2 benchmarks: elements from 2^19
// to 12·2^19 in 2^19 steps. The paper's Fig. 5 x-axis extends to ~3e10
// workload units; we scale each element count by a fixed per-element MAC
// factor to land in the same range.
func GEMMSizes() []float64 {
	const macsPerElement = 4096
	var out []float64
	for i := 1; i <= 12; i++ {
		out = append(out, float64(i)*float64(1<<19)*macsPerElement)
	}
	return out
}

// ProfileCluster reproduces the Fig. 5 workflow against a simulated
// cluster: measure each collective and GEMM across the benchmark sizes
// (with the cluster's deterministic noise standing in for run-to-run
// jitter), then fit linear models by least squares.
func ProfileCluster(c *topology.Cluster) (*ClusterModels, error) {
	fit := func(kind topology.OpKind, sizes []float64) (Fitted, error) {
		ys := make([]float64, len(sizes))
		for i, n := range sizes {
			ys[i] = c.Measured(kind, n)
		}
		return Fit(sizes, ys)
	}
	cm := &ClusterModels{Cluster: c}
	var err error
	if cm.A2A, err = fit(topology.OpA2A, CommSizes()); err != nil {
		return nil, err
	}
	if cm.AG, err = fit(topology.OpAG, CommSizes()); err != nil {
		return nil, err
	}
	if cm.RS, err = fit(topology.OpRS, CommSizes()); err != nil {
		return nil, err
	}
	if cm.AR, err = fit(topology.OpAR, CommSizes()); err != nil {
		return nil, err
	}
	if cm.GEMM, err = fit(topology.OpGEMM, GEMMSizes()); err != nil {
		return nil, err
	}
	// Flat AlltoAll at the cluster's node span (DeepSpeed-MoE's algorithm).
	sizes := CommSizes()
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		ys[i] = c.MeasuredFlatA2A(n, c.Nodes)
	}
	if cm.A2AFlat, err = Fit(sizes, ys); err != nil {
		return nil, err
	}
	return cm, nil
}

// ProfileFunc times a real Go implementation across workload sizes and fits
// a linear model — the "online profiling of MoE modules" of §3.2 applied to
// actual CPU kernels. run(n) must execute the module once at size n. Each
// size is repeated reps times and the minimum is kept (standard
// microbenchmark practice to shed scheduler noise).
func ProfileFunc(sizes []int, reps int, run func(n int)) (Fitted, error) {
	if reps < 1 {
		reps = 1
	}
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			run(n)
			if d := float64(time.Since(t0).Nanoseconds()) / 1e6; d < best {
				best = d
			}
		}
		xs[i] = float64(n)
		ys[i] = best
	}
	return Fit(xs, ys)
}

package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func TestLinearTime(t *testing.T) {
	m := Linear{Alpha: 1, Beta: 2}
	if m.Time(3) != 7 {
		t.Fatalf("Time(3) = %v", m.Time(3))
	}
	if m.Time(0) != 0 || m.Time(-5) != 0 {
		t.Fatal("non-positive volume must cost 0")
	}
}

func TestChunkTime(t *testing.T) {
	m := Linear{Alpha: 1, Beta: 2}
	if m.ChunkTime(8, 4) != 1+2*2 {
		t.Fatalf("ChunkTime = %v", m.ChunkTime(8, 4))
	}
	if m.ChunkTime(8, 0.5) != m.Time(8) {
		t.Fatal("r < 1 must clamp to 1")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := Linear{Alpha: r.Range(0, 2), Beta: r.Range(1e-9, 1e-5)}
		n := r.Range(1, 1e9)
		back := m.Inverse(m.Time(n))
		return math.Abs(back-n) < 1e-3*n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseClampsNegative(t *testing.T) {
	m := Linear{Alpha: 5, Beta: 1}
	if m.Inverse(1) != 0 {
		t.Fatalf("Inverse below alpha should clamp to 0, got %v", m.Inverse(1))
	}
	if (Linear{Alpha: 1, Beta: 0}).Inverse(10) != 0 {
		t.Fatal("zero beta must yield 0")
	}
}

func TestScale(t *testing.T) {
	m := Linear{Alpha: 1, Beta: 2}.Scale(2)
	if m.Alpha != 2 || m.Beta != 4 {
		t.Fatalf("Scale = %+v", m)
	}
}

func TestFitRecoversExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5 + 3*x
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-0.5) > 1e-12 || math.Abs(m.Beta-3) > 1e-12 {
		t.Fatalf("fit = %+v", m)
	}
	if m.R2 < 1-1e-12 {
		t.Fatalf("R2 = %v, want 1", m.R2)
	}
}

func TestFitRecoversPlantedLineProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		alpha := r.Range(0, 10)
		beta := r.Range(1e-8, 1e-3)
		var xs, ys []float64
		for i := 1; i <= 20; i++ {
			x := float64(i) * 1e5
			xs = append(xs, x)
			ys = append(ys, alpha+beta*x)
		}
		m, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(m.Alpha-alpha) < 1e-6 && math.Abs(m.Beta-beta) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitNoisyDataHighR2(t *testing.T) {
	r := xrand.New(4)
	var xs, ys []float64
	for i := 1; i <= 24; i++ {
		x := float64(i) * 1e6
		xs = append(xs, x)
		ys = append(ys, (1+0.02*(2*r.Float64()-1))*(0.3+2e-7*x))
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 < 0.99 {
		t.Fatalf("R2 = %v on 2%% noise, want > 0.99", m.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample should error")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Fit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

func TestBenchmarkSizesMatchPaper(t *testing.T) {
	cs := CommSizes()
	if len(cs) != 24 {
		t.Fatalf("CommSizes: %d entries, want 24", len(cs))
	}
	if cs[0] != float64(1<<18)*4 || cs[23] != 24*float64(1<<18)*4 {
		t.Fatalf("CommSizes endpoints: %v .. %v", cs[0], cs[23])
	}
	gs := GEMMSizes()
	if len(gs) != 12 {
		t.Fatalf("GEMMSizes: %d entries, want 12", len(gs))
	}
	if gs[1] != 2*gs[0] {
		t.Fatal("GEMM sizes should be linear in the step")
	}
}

// TestProfileClusterReproducesFig5 is the Fig. 5 reproduction at unit-test
// scale: fitting the simulator's measurements recovers the testbed's
// planted coefficients with R² comparable to the paper (>= 0.999 for
// communication, >= 0.9987 for GEMM).
func TestProfileClusterReproducesFig5(t *testing.T) {
	for _, c := range []*topology.Cluster{topology.TestbedA(), topology.TestbedB()} {
		cm, err := ProfileCluster(c)
		if err != nil {
			t.Fatal(err)
		}
		checks := []struct {
			name        string
			got         Fitted
			alpha, beta float64
		}{
			{"a2a", cm.A2A, c.AlphaA2A, c.BetaA2A},
			{"ag", cm.AG, c.AlphaAG, c.BetaAG},
			{"rs", cm.RS, c.AlphaRS, c.BetaRS},
			{"ar", cm.AR, c.AlphaAR, c.BetaAR},
			{"gemm", cm.GEMM, c.AlphaGEMM, c.BetaGEMM},
		}
		for _, ck := range checks {
			if ck.got.R2 < 0.995 {
				t.Errorf("%s/%s: R2 = %v, want >= 0.995", c.Name, ck.name, ck.got.R2)
			}
			if math.Abs(ck.got.Beta-ck.beta) > 0.05*ck.beta {
				t.Errorf("%s/%s: beta = %v, want ~%v", c.Name, ck.name, ck.got.Beta, ck.beta)
			}
		}
		if cm.A2AFlat.Beta <= cm.A2A.Beta {
			t.Errorf("%s: flat A2A should have worse bandwidth than 2DH", c.Name)
		}
	}
}

func TestProfileFuncFitsRealWork(t *testing.T) {
	// Profile a deliberately linear workload: a spin loop of n iterations.
	sink := 0.0
	m, err := ProfileFunc([]int{200000, 400000, 600000, 800000}, 3, func(n int) {
		s := 0.0
		for i := 0; i < n; i++ {
			s += float64(i)
		}
		sink = s
	})
	_ = sink
	if err != nil {
		t.Fatal(err)
	}
	if m.Beta <= 0 {
		t.Fatalf("profiled beta = %v, want positive", m.Beta)
	}
	if m.R2 < 0.5 {
		t.Logf("low R2 %v on wall-clock profile (noisy CI machine?)", m.R2)
	}
}

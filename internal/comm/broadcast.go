package comm

import "fmt"

// Broadcast copies root's buffer into every rank's buffer along the ring:
// step s moves the data from rank (root+s) to rank (root+s+1), so p-1
// messages of n elements each propagate the full buffer (NCCL's ring
// broadcast shape). Buffers are updated in place; root's is untouched.
// The elastic-recovery path uses it to re-place restored expert weights
// onto their new owner ranks after a permanent rank loss.
func Broadcast(data [][]float64, root, gpusPerNode int) (Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if root < 0 || root >= p {
		return st, fmt.Errorf("comm: broadcast root %d out of range [0, %d)", root, p)
	}
	w := world{g: gpusPerNode}
	for s := 0; s < p-1; s++ {
		src := (root + s) % p
		dst := (root + s + 1) % p
		copy(data[dst], data[src])
		st.add(w.sameNode(src, dst), n)
	}
	return st, nil
}

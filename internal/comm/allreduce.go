package comm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tensor"
)

// This file layers chunked, asynchronous Ring-AllReduce on top of the
// monolithic RingAllReduce — the communication half of the paper's §5
// adaptive gradient partitioning. A flat gradient buffer is split into
// contiguous element ranges; each range is reduced with the ring schedule
// of the *full* buffer restricted to that range, so any tiling of the
// buffer reproduces the monolithic collective byte for byte:
//
//   - the monolithic ring assigns element k to ring-chunk c by its
//     position in the full buffer, and the accumulation path of chunk c
//     (rank c → c+1 → … → c+p−1) is a function of c alone;
//   - RingAllReduceChunk keeps that full-buffer chunk assignment and only
//     restricts which elements move, and every ring operation is
//     element-wise — so each element sees exactly the monolithic sequence
//     of copies and additions no matter how the buffer is sliced.
//
// Staging copies are drawn from the shared tensor free-list, keeping
// allocation churn out of measured AllReduce intervals (the same
// measurement-fidelity treatment as the chunked AlltoAll staging).

// SplitFlat partitions a flat buffer of n elements into at most chunks
// contiguous, near-equal, non-empty ranges — SplitRows over elements
// instead of token rows. It is the slicing used to cut a gradient buffer
// into §5 AllReduce slices.
func SplitFlat(n, chunks int) []RowRange { return SplitRows(n, chunks) }

// RingAllReduceChunk sums elements [rr.Lo, rr.Hi) of the rank buffers
// elementwise into every rank, in place, using the monolithic ring
// schedule restricted to that range. Buffers must be full-length (every
// rank the same length); ranges from any tiling of [0, n) may be reduced
// in any order and the final contents are byte-identical to one
// RingAllReduce over the whole buffer.
func RingAllReduceChunk(data [][]float64, gpusPerNode int, rr RowRange) (Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return st, err
	}
	if rr.Lo < 0 || rr.Hi < rr.Lo || rr.Hi > n {
		return st, fmt.Errorf("comm: allreduce range [%d,%d) outside buffer of %d elements", rr.Lo, rr.Hi, n)
	}
	p := len(data)
	if p == 1 || rr.Len() == 0 {
		return st, nil
	}
	w := world{g: gpusPerNode}
	// Ring-chunk c of the FULL buffer covers [bounds[c], bounds[c+1]);
	// clip intersects it with the requested range.
	bounds := make([]int, p+1)
	for c := 0; c <= p; c++ {
		bounds[c] = c * n / p
	}
	clip := func(c int) (int, int) {
		lo, hi := bounds[c], bounds[c+1]
		if lo < rr.Lo {
			lo = rr.Lo
		}
		if hi > rr.Hi {
			hi = rr.Hi
		}
		return lo, hi
	}
	staged := make([]*tensor.Tensor, p)
	// Phase 1: reduce-scatter. At step s, rank r sends its slice of ring
	// chunk (r-s) mod p to rank r+1, which accumulates. All sends of one
	// step use pre-step data, so stage them first (pooled copies).
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			c := ((r-s)%p + p) % p
			lo, hi := clip(c)
			if lo >= hi {
				staged[r] = nil
				continue
			}
			cp := tensor.GetUninit(hi - lo)
			copy(cp.Data(), data[r][lo:hi])
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			if staged[r] == nil {
				continue
			}
			dst := (r + 1) % p
			c := ((r-s)%p + p) % p
			lo, _ := clip(c)
			sd := staged[r].Data()
			dchunk := data[dst][lo : lo+len(sd)]
			for i, v := range sd {
				dchunk[i] += v
			}
			st.add(w.sameNode(r, dst), len(sd))
			tensor.Put(staged[r])
		}
	}
	// After phase 1, rank r holds the fully reduced slice of ring chunk
	// (r+1) mod p. Phase 2: allgather the reduced slices around the ring.
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			c := ((r+1-s)%p + p) % p
			lo, hi := clip(c)
			if lo >= hi {
				staged[r] = nil
				continue
			}
			cp := tensor.GetUninit(hi - lo)
			copy(cp.Data(), data[r][lo:hi])
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			if staged[r] == nil {
				continue
			}
			dst := (r + 1) % p
			c := ((r+1-s)%p + p) % p
			lo, _ := clip(c)
			sd := staged[r].Data()
			copy(data[dst][lo:lo+len(sd)], sd)
			st.add(w.sameNode(r, dst), len(sd))
			tensor.Put(staged[r])
		}
	}
	return st, nil
}

// ChunkedRingAllReduce splits the rank buffers into chunks contiguous
// element ranges and performs one restricted ring per range, in order.
// The final contents and the summed per-element traffic are byte-identical
// to the monolithic RingAllReduce; onChunk, when non-nil, is invoked after
// each range completes — the per-chunk completion hook overlapped
// gradient-sync consumers build on.
func ChunkedRingAllReduce(data [][]float64, gpusPerNode, chunks int, onChunk func(c int, rr RowRange)) (Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return st, err
	}
	for c, rr := range SplitFlat(n, chunks) {
		cst, err := RingAllReduceChunk(data, gpusPerNode, rr)
		if err != nil {
			return st, err
		}
		st.Merge(cst)
		if onChunk != nil {
			onChunk(c, rr)
		}
	}
	return st, nil
}

// AsyncAR is an in-flight chunked Ring-AllReduce, the AllReduce analogue
// of AsyncA2A. Chunks complete in order; ChunkDone(c) unblocks as soon as
// chunk c's elements are fully reduced in place — or as soon as the
// collective fails, so consumers never hang. Landed(c) distinguishes the
// two once ChunkDone has unblocked; Wait blocks for the whole collective.
type AsyncAR struct {
	ranges []RowRange
	done   []chan struct{}
	landed atomic.Int32
	stats  Stats
	err    error
	fin    chan struct{}
}

// Chunks returns the number of chunks and Range the element range of
// chunk c.
func (a *AsyncAR) Chunks() int                     { return len(a.ranges) }
func (a *AsyncAR) Range(c int) RowRange            { return a.ranges[c] }
func (a *AsyncAR) ChunkDone(c int) <-chan struct{} { return a.done[c] }

// Landed reports whether chunk c's elements are fully reduced. Meaningful
// once ChunkDone(c) has unblocked: false there means the collective failed
// before chunk c completed.
func (a *AsyncAR) Landed(c int) bool { return int(a.landed.Load()) > c }

// Wait blocks until every chunk has completed and returns the summed Stats
// and the first error. The buffers hold the reduced sums in place.
func (a *AsyncAR) Wait() (Stats, error) {
	<-a.fin
	return a.stats, a.err
}

// AllReduceAsync validates the buffers synchronously, then starts a
// chunked Ring-AllReduce on a background goroutine, reducing in place with
// per-chunk completion channels. The caller must not touch data until the
// relevant ChunkDone has unblocked (for that chunk's elements) or Wait has
// returned (for the whole buffer).
func AllReduceAsync(data [][]float64, gpusPerNode, chunks int) (*AsyncAR, error) {
	n, err := checkUniform(data)
	if err != nil {
		return nil, err
	}
	ranges := SplitFlat(n, chunks)
	a := &AsyncAR{ranges: ranges, fin: make(chan struct{})}
	a.done = make([]chan struct{}, len(ranges))
	for c := range a.done {
		a.done[c] = make(chan struct{})
	}
	go func() {
		defer close(a.fin)
		completed := 0
		for c, rr := range ranges {
			cst, cerr := RingAllReduceChunk(data, gpusPerNode, rr)
			if cerr != nil {
				a.err = cerr
				break
			}
			a.stats.Merge(cst)
			a.landed.Store(int32(c + 1))
			close(a.done[c])
			completed = c + 1
		}
		for c := completed; c < len(a.done); c++ {
			close(a.done[c])
		}
	}()
	return a, nil
}

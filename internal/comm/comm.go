// Package comm implements the collective-communication algorithms the
// paper's systems rely on, with real data movement over in-memory rank
// buffers — the NCCL substitute of this reproduction.
//
// Implemented algorithms:
//
//   - Ring AllReduce, AllGather and ReduceScatter (NCCL's defaults), used
//     by Gradient-AllReduce, ESP-AllGather and ESP-ReduceScatter;
//   - Direct (flat) AlltoAll, the NCCL algorithm DeepSpeed-MoE issues;
//   - 1DH AlltoAll (Hetu): intra-node gather → leader exchange → scatter;
//   - 2DH AlltoAll (Tutel / DeepSpeed): intra-node regrouping phase
//     followed by an inter-node exchange between same-local-index GPUs.
//
// Every variant is tested to produce byte-identical results; they differ
// only in *how* data moves, which the Stats accounting captures (message
// counts and inter- vs intra-node volume). The scheduler's cost models in
// internal/topology are calibrated against exactly these step structures.
package comm

import (
	"fmt"
)

// Stats records the traffic an algorithm generated, used to compare
// algorithms and to sanity-check the cost models.
type Stats struct {
	IntraMessages int     // messages between GPUs of one node
	InterMessages int     // messages crossing nodes
	IntraVolume   float64 // elements moved intra-node
	InterVolume   float64 // elements moved inter-node
}

// Merge accumulates another run's traffic into s (chunked collectives sum
// their per-chunk stats this way).
func (s *Stats) Merge(o Stats) {
	s.IntraMessages += o.IntraMessages
	s.InterMessages += o.InterMessages
	s.IntraVolume += o.IntraVolume
	s.InterVolume += o.InterVolume
}

func (s *Stats) add(sameNode bool, n int) {
	if sameNode {
		s.IntraMessages++
		s.IntraVolume += float64(n)
	} else {
		s.InterMessages++
		s.InterVolume += float64(n)
	}
}

// world is a helper binding rank buffers to a node shape.
type world struct {
	g int // gpus per node; 0 disables node accounting (all inter)
}

func (w world) sameNode(a, b int) bool {
	if w.g <= 0 {
		return false
	}
	return a/w.g == b/w.g
}

// checkUniform validates that every rank buffer has the same length.
func checkUniform(data [][]float64) (int, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("comm: no ranks")
	}
	n := len(data[0])
	for r, d := range data {
		if len(d) != n {
			return 0, fmt.Errorf("comm: rank %d has %d elements, rank 0 has %d", r, len(d), n)
		}
	}
	return n, nil
}

// RingAllReduce sums the rank buffers elementwise into every rank, using
// the standard 2(p-1)-step ring: a reduce-scatter phase followed by an
// allgather phase, each moving ~n/p per step. Buffers are updated in
// place. gpusPerNode attributes traffic for Stats (pass 0 to count all
// traffic as inter-node). It is the single-chunk case of the restricted
// ring in allreduce.go, so the chunked collectives are byte-identical to
// it by construction.
func RingAllReduce(data [][]float64, gpusPerNode int) (Stats, error) {
	n, err := checkUniform(data)
	if err != nil {
		return Stats{}, err
	}
	return RingAllReduceChunk(data, gpusPerNode, RowRange{Lo: 0, Hi: n})
}

// RingAllGather concatenates every rank's buffer on every rank:
// out[r] = data[0] ‖ data[1] ‖ … ‖ data[p-1], moved in p-1 ring steps.
func RingAllGather(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	w := world{g: gpusPerNode}
	out := make([][]float64, p)
	for r := 0; r < p; r++ {
		out[r] = make([]float64, n*p)
		copy(out[r][r*n:(r+1)*n], data[r])
	}
	for s := 0; s < p-1; s++ {
		staged := make([][]float64, p)
		for r := 0; r < p; r++ {
			c := ((r-s)%p + p) % p
			cp := make([]float64, n)
			copy(cp, out[r][c*n:(c+1)*n])
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			dst := (r + 1) % p
			c := ((r-s)%p + p) % p
			copy(out[dst][c*n:(c+1)*n], staged[r])
			st.add(w.sameNode(r, dst), n)
		}
	}
	return out, st, nil
}

// RingReduceScatter sums the rank buffers elementwise and leaves segment r
// of the sum on rank r: out[r] = Σ_s data[s][r·n/p : (r+1)·n/p]. The input
// length must be divisible by p.
func RingReduceScatter(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	if n%p != 0 {
		return nil, st, fmt.Errorf("comm: reduce-scatter length %d not divisible by %d ranks", n, p)
	}
	w := world{g: gpusPerNode}
	seg := n / p
	// Work on copies so the caller's buffers survive.
	work := make([][]float64, p)
	for r := range data {
		work[r] = append([]float64(nil), data[r]...)
	}
	chunk := func(r, c int) []float64 { return work[r][c*seg : (c+1)*seg] }
	for s := 0; s < p-1; s++ {
		staged := make([][]float64, p)
		for r := 0; r < p; r++ {
			c := ((r-s)%p + p) % p
			cp := make([]float64, seg)
			copy(cp, chunk(r, c))
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			dst := (r + 1) % p
			c := ((r-s)%p + p) % p
			dchunk := chunk(dst, c)
			for i, v := range staged[r] {
				dchunk[i] += v
			}
			st.add(w.sameNode(r, dst), seg)
		}
	}
	out := make([][]float64, p)
	for r := 0; r < p; r++ {
		// After p-1 steps rank r holds the reduced chunk (r+1) mod p; the
		// conventional output is segment r, so shift.
		c := (r + 1) % p
		res := make([]float64, seg)
		copy(res, chunk(r, c))
		out[c] = res
	}
	return out, st, nil
}

package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func worldsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			return false
		}
		for j := range a[r] {
			if a[r][j] != b[r][j] {
				return false
			}
		}
	}
	return true
}

func TestDirectAlltoAllSemantics(t *testing.T) {
	// 2 ranks, 1 element per block: rank0=[a,b], rank1=[c,d] →
	// rank0=[a,c], rank1=[b,d].
	data := [][]float64{{1, 2}, {3, 4}}
	out, _, err := DirectAlltoAll(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !worldsEqual(out, [][]float64{{1, 3}, {2, 4}}) {
		t.Fatalf("out = %v", out)
	}
}

// TestHierarchicalAlltoAllsMatchDirect is the core interchangeability
// property of the Dispatch sub-module: all three algorithms move identical
// data.
func TestHierarchicalAlltoAllsMatchDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nodes := 1 + r.Intn(4)
		g := 1 + r.Intn(4)
		p := nodes * g
		b := 1 + r.Intn(5)
		data := randWorld(r, p, p*b)
		want, _, err := DirectAlltoAll(data, g)
		if err != nil {
			return false
		}
		got1, _, err := Hierarchical1DAlltoAll(data, g)
		if err != nil {
			return false
		}
		got2, _, err := Hierarchical2DAlltoAll(data, g)
		if err != nil {
			return false
		}
		return worldsEqual(want, got1) && worldsEqual(want, got2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestAlltoAllInvolution: applying an AlltoAll twice restores the input —
// which is exactly why EP Combine is "another AlltoAll" (§2.2).
func TestAlltoAllInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nodes := 1 + r.Intn(3)
		g := 1 + r.Intn(4)
		p := nodes * g
		b := 1 + r.Intn(4)
		data := randWorld(r, p, p*b)
		for _, algo := range []A2AAlgo{A2ADirect, A2A1DH, A2A2DH} {
			mid, _, err := AlltoAll(algo, data, g)
			if err != nil {
				return false
			}
			back, _, err := AlltoAll(algo, mid, g)
			if err != nil {
				return false
			}
			if !worldsEqual(back, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchicalReducesInterNodeMessages verifies the motivation for the
// 1DH/2DH algorithms: far fewer (larger) inter-node messages than the flat
// algorithm, at the cost of extra intra-node traffic.
func TestHierarchicalReducesInterNodeMessages(t *testing.T) {
	r := xrand.New(3)
	nodes, g, b := 4, 4, 8
	p := nodes * g
	data := randWorld(r, p, p*b)
	_, stDirect, err := DirectAlltoAll(data, g)
	if err != nil {
		t.Fatal(err)
	}
	_, st2DH, err := Hierarchical2DAlltoAll(data, g)
	if err != nil {
		t.Fatal(err)
	}
	_, st1DH, err := Hierarchical1DAlltoAll(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if st2DH.InterMessages >= stDirect.InterMessages {
		t.Fatalf("2DH inter messages %d should undercut direct %d", st2DH.InterMessages, stDirect.InterMessages)
	}
	if st1DH.InterMessages >= stDirect.InterMessages {
		t.Fatalf("1DH inter messages %d should undercut direct %d", st1DH.InterMessages, stDirect.InterMessages)
	}
	// Same inter-node payload has to cross the network either way.
	if st2DH.InterVolume != stDirect.InterVolume {
		t.Fatalf("2DH inter volume %v != direct %v", st2DH.InterVolume, stDirect.InterVolume)
	}
	// Hierarchical algorithms pay with intra-node traffic.
	if st2DH.IntraVolume <= stDirect.IntraVolume {
		t.Fatalf("2DH should add intra-node traffic (%v vs %v)", st2DH.IntraVolume, stDirect.IntraVolume)
	}
}

func TestAlltoAllSingleNodeIsAllIntra(t *testing.T) {
	r := xrand.New(4)
	data := randWorld(r, 4, 8)
	_, st, err := DirectAlltoAll(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.InterMessages != 0 || st.InterVolume != 0 {
		t.Fatalf("single-node A2A crossed nodes: %+v", st)
	}
}

func TestAlltoAllErrors(t *testing.T) {
	if _, _, err := DirectAlltoAll(randWorld(xrand.New(1), 3, 4), 0); err == nil {
		t.Fatal("expected error: 4 elements not divisible into 3 blocks")
	}
	if _, _, err := Hierarchical2DAlltoAll(randWorld(xrand.New(1), 4, 4), 3); err == nil {
		t.Fatal("expected error: 4 ranks not divisible into nodes of 3")
	}
	if _, _, err := AlltoAll("bogus", randWorld(xrand.New(1), 2, 2), 0); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func BenchmarkDirectAlltoAll16(b *testing.B) {
	data := randWorld(xrand.New(1), 16, 16*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DirectAlltoAll(data, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2DHAlltoAll16(b *testing.B) {
	data := randWorld(xrand.New(1), 16, 16*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hierarchical2DAlltoAll(data, 4); err != nil {
			b.Fatal(err)
		}
	}
}

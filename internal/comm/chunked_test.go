package comm

import (
	"testing"

	"repro/internal/xrand"
)

func randomBuffers(seed uint64, p int, dims BlockDims) [][]float64 {
	rng := xrand.New(seed)
	data := make([][]float64, p)
	for r := range data {
		data[r] = make([]float64, p*dims.Elems())
		for i := range data[r] {
			data[r][i] = rng.NormFloat64()
		}
	}
	return data
}

func sameBuffers(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d ranks", label, len(a), len(b))
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("%s: rank %d length %d vs %d", label, r, len(a[r]), len(b[r]))
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("%s: rank %d element %d: %v vs %v", label, r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestChunkedAlltoAllMatchesMonolithic: for every algorithm and a sweep of
// chunk counts (including ones that do not divide the row count and ones
// exceeding it), the reassembled chunked result must be byte-identical to
// the monolithic collective, and the summed traffic volumes must match.
func TestChunkedAlltoAllMatchesMonolithic(t *testing.T) {
	cases := []struct {
		p, g int
		dims BlockDims
	}{
		{p: 4, g: 2, dims: BlockDims{Rows: 8, Width: 3}},
		{p: 4, g: 4, dims: BlockDims{Rows: 7, Width: 5}},
		{p: 8, g: 4, dims: BlockDims{Rows: 5, Width: 2}},
	}
	for _, algo := range []A2AAlgo{A2ADirect, A2A1DH, A2A2DH} {
		for _, tc := range cases {
			data := randomBuffers(11, tc.p, tc.dims)
			want, wantSt, err := AlltoAll(algo, data, tc.g)
			if err != nil {
				t.Fatalf("%s: monolithic: %v", algo, err)
			}
			for _, chunks := range []int{1, 2, 3, 4, 100} {
				got, gotSt, err := ChunkedAlltoAll(algo, data, tc.g, tc.dims, chunks, nil)
				if err != nil {
					t.Fatalf("%s chunks=%d: %v", algo, chunks, err)
				}
				sameBuffers(t, string(algo), want, got)
				if gotSt.IntraVolume != wantSt.IntraVolume || gotSt.InterVolume != wantSt.InterVolume {
					t.Fatalf("%s chunks=%d: volume intra %v inter %v, want %v / %v",
						algo, chunks, gotSt.IntraVolume, gotSt.InterVolume, wantSt.IntraVolume, wantSt.InterVolume)
				}
			}
		}
	}
}

// TestChunkedAlltoAllCallback: the completion callback fires once per
// chunk, in order, with ranges that exactly tile the rows.
func TestChunkedAlltoAllCallback(t *testing.T) {
	dims := BlockDims{Rows: 10, Width: 2}
	data := randomBuffers(3, 4, dims)
	var got []RowRange
	if _, _, err := ChunkedAlltoAll(A2ADirect, data, 2, dims, 4, func(c int, rr RowRange) {
		if c != len(got) {
			t.Fatalf("chunk %d completed out of order", c)
		}
		got = append(got, rr)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d chunk completions, want 4", len(got))
	}
	next := 0
	for _, rr := range got {
		if rr.Lo != next || rr.Hi < rr.Lo {
			t.Fatalf("ranges do not tile: %v", got)
		}
		next = rr.Hi
	}
	if next != dims.Rows {
		t.Fatalf("ranges cover %d rows, want %d", next, dims.Rows)
	}
}

// TestAlltoAllAsync: per-chunk channels unblock in order and the final
// result is byte-identical to the monolithic collective.
func TestAlltoAllAsync(t *testing.T) {
	dims := BlockDims{Rows: 9, Width: 4}
	data := randomBuffers(7, 4, dims)
	want, _, err := AlltoAll(A2A2DH, data, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AlltoAllAsync(A2A2DH, data, 2, dims, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < a.Chunks(); c++ {
		<-a.ChunkDone(c)
		if !a.Landed(c) {
			t.Fatalf("chunk %d done but not landed", c)
		}
		// Per-chunk consumption: the landed rows must already equal the
		// monolithic result, before Wait.
		rr := a.Range(c)
		out := a.Out()
		for d := range want {
			for s := range want {
				for i := rr.Lo * dims.Width; i < rr.Hi*dims.Width; i++ {
					off := s*dims.Elems() + i
					if out[d][off] != want[d][off] {
						t.Fatalf("chunk %d rank %d offset %d: %v != %v", c, d, off, out[d][off], want[d][off])
					}
				}
			}
		}
	}
	got, _, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sameBuffers(t, "async", want, got)
}

// TestAlltoAllAsyncError: a malformed layout fails synchronously at the
// constructor, before any goroutine or channel exists to leak.
func TestAlltoAllAsyncError(t *testing.T) {
	data := randomBuffers(1, 4, BlockDims{Rows: 2, Width: 2})
	if _, err := AlltoAllAsync(A2ADirect, data, 2, BlockDims{Rows: 3, Width: 2}, 2); err == nil {
		t.Fatal("expected a layout error")
	}
}

// TestSplitRows covers the splitting contract.
func TestSplitRows(t *testing.T) {
	for _, tc := range []struct {
		rows, chunks, want int
	}{
		{10, 4, 4}, {3, 8, 3}, {0, 4, 1}, {5, 1, 1}, {7, 0, 1},
	} {
		rs := SplitRows(tc.rows, tc.chunks)
		if len(rs) != tc.want {
			t.Fatalf("SplitRows(%d,%d) gave %d ranges, want %d", tc.rows, tc.chunks, len(rs), tc.want)
		}
		next := 0
		for _, r := range rs {
			if r.Lo != next || r.Hi < r.Lo {
				t.Fatalf("SplitRows(%d,%d) ranges do not tile: %v", tc.rows, tc.chunks, rs)
			}
			if tc.rows > 0 && r.Len() == 0 {
				t.Fatalf("SplitRows(%d,%d) produced an empty range: %v", tc.rows, tc.chunks, rs)
			}
			next = r.Hi
		}
		if next != tc.rows {
			t.Fatalf("SplitRows(%d,%d) covers %d rows", tc.rows, tc.chunks, next)
		}
	}
}

package comm

import (
	"errors"
	"testing"

	"repro/internal/xrand"
)

// groupShapes enumerates the rank subsets the byte-identity tests sweep:
// a singleton, a contiguous block, a strided lane, and the full world —
// the group shapes the hybrid strategy actually uses (intra-group
// collectives on contiguous blocks, inter-group AlltoAll on strided
// lanes) plus both degenerate sizes.
func groupShapes(n int) [][]int {
	shapes := [][]int{{n / 2}}
	contig := make([]int, 0, n/2)
	for r := 0; r < n/2; r++ {
		contig = append(contig, r)
	}
	if len(contig) > 0 {
		shapes = append(shapes, contig)
	}
	strided := make([]int, 0, n/2)
	for r := 1; r < n; r += 2 {
		strided = append(strided, r)
	}
	if len(strided) > 0 {
		shapes = append(shapes, strided)
	}
	full := make([]int, n)
	for r := range full {
		full[r] = r
	}
	return append(shapes, full)
}

// TestGroupCollectivesMatchMonolithic: every group-scoped collective is
// byte-identical to the monolithic collective run on standalone copies of
// the members' buffers, across group shapes, chunk tilings and uneven row
// splits — and never touches a non-member buffer.
func TestGroupCollectivesMatchMonolithic(t *testing.T) {
	r := xrand.New(41)
	const n = 8 // global ranks
	for _, group := range groupShapes(n) {
		p := len(group)
		for _, dims := range []BlockDims{
			{Rows: 6, Width: 3}, // rows not divisible by most chunk counts
			{Rows: 4, Width: 5},
		} {
			blk := dims.Elems()
			member := make(map[int]bool, p)
			for _, g := range group {
				member[g] = true
			}
			checkOthers := func(label string, before, after [][]float64) {
				t.Helper()
				for g := 0; g < n; g++ {
					if !member[g] && !worldsEqual([][]float64{before[g]}, [][]float64{after[g]}) {
						t.Fatalf("%s: group %v touched non-member rank %d", label, group, g)
					}
				}
			}
			sub := func(all [][]float64) [][]float64 {
				s := make([][]float64, p)
				for k, g := range group {
					s[k] = all[g]
				}
				return s
			}

			for _, chunks := range []int{1, 2, 3} {
				// AlltoAll over the subset, every algorithm, tiled.
				for _, algo := range []A2AAlgo{A2ADirect, A2A1DH, A2A2DH} {
					if p%2 != 0 && algo != A2ADirect {
						continue // hierarchical algos need an even node split
					}
					gpn := p
					if algo != A2ADirect {
						gpn = p / 2
					}
					data := randWorld(r, n, p*blk)
					snap := cloneWorld(data)
					out := randWorld(r, n, p*blk)
					outSnap := cloneWorld(out)
					wantOut := cloneWorld(sub(outSnap))
					for _, rr := range SplitRows(dims.Rows, chunks) {
						if _, err := GroupAlltoAllRows(algo, group, data, out, gpn, dims, rr); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := AlltoAllRows(algo, cloneWorld(sub(snap)), wantOut, gpn, dims, RowRange{0, dims.Rows}); err != nil {
						t.Fatal(err)
					}
					if !worldsEqual(sub(out), wantOut) {
						t.Fatalf("GroupAlltoAllRows(%s) group %v chunks %d differs from monolithic", algo, group, chunks)
					}
					checkOthers("GroupAlltoAllRows", snap, data)
					checkOthers("GroupAlltoAllRows(out)", outSnap, out)
				}

				// AllGatherRows over the subset, tiled.
				{
					data := randWorld(r, n, blk)
					snap := cloneWorld(data)
					out := randWorld(r, n, p*blk)
					wantOut := cloneWorld(sub(out))
					for _, rr := range SplitRows(dims.Rows, chunks) {
						if _, err := GroupAllGatherRows(group, data, out, p, dims, rr); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := AllGatherRows(cloneWorld(sub(snap)), wantOut, p, dims, RowRange{0, dims.Rows}); err != nil {
						t.Fatal(err)
					}
					if !worldsEqual(sub(out), wantOut) {
						t.Fatalf("GroupAllGatherRows group %v chunks %d differs from monolithic", group, chunks)
					}
					checkOthers("GroupAllGatherRows", snap, data)
				}

				// ReduceScatterRows over the subset, tiled. Summation order
				// must match the monolithic ring exactly (bitwise, not just
				// numerically).
				{
					data := randWorld(r, n, p*blk)
					snap := cloneWorld(data)
					out := randWorld(r, n, blk)
					wantOut := cloneWorld(sub(out))
					for _, rr := range SplitRows(dims.Rows, chunks) {
						if _, err := GroupReduceScatterRows(group, data, out, p, dims, rr); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := ReduceScatterRows(cloneWorld(sub(snap)), wantOut, p, dims, RowRange{0, dims.Rows}); err != nil {
						t.Fatal(err)
					}
					if !worldsEqual(sub(out), wantOut) {
						t.Fatalf("GroupReduceScatterRows group %v chunks %d differs from monolithic", group, chunks)
					}
					checkOthers("GroupReduceScatterRows", snap, data)
				}
			}

			// Ring Into variants over the subset (the hidden-exchange path).
			{
				data := randWorld(r, n, p*blk)
				snap := cloneWorld(data)
				out := randWorld(r, n, p*p*blk)
				if _, err := GroupRingAllGatherInto(group, out, data, p); err != nil {
					t.Fatal(err)
				}
				want := make([][]float64, p)
				for i := range want {
					want[i] = make([]float64, p*p*blk)
				}
				if _, err := RingAllGatherInto(want, cloneWorld(sub(snap)), p); err != nil {
					t.Fatal(err)
				}
				if !worldsEqual(sub(out), want) {
					t.Fatalf("GroupRingAllGatherInto group %v differs from monolithic", group)
				}
				checkOthers("GroupRingAllGatherInto", snap, data)

				rsOut := randWorld(r, n, blk)
				if _, err := GroupRingReduceScatterInto(group, rsOut, data, p); err != nil {
					t.Fatal(err)
				}
				wantRS := make([][]float64, p)
				for i := range wantRS {
					wantRS[i] = make([]float64, blk)
				}
				if _, err := RingReduceScatterInto(wantRS, cloneWorld(sub(snap)), p); err != nil {
					t.Fatal(err)
				}
				if !worldsEqual(sub(rsOut), wantRS) {
					t.Fatalf("GroupRingReduceScatterInto group %v differs from monolithic", group)
				}
			}
		}
	}
}

// TestGroupValidation: malformed groups fail fast with buffers untouched.
func TestGroupValidation(t *testing.T) {
	r := xrand.New(43)
	data := randWorld(r, 4, 8)
	out := randWorld(r, 4, 8)
	dims := BlockDims{Rows: 2, Width: 2}
	for _, bad := range [][]int{{}, {-1}, {4}, {0, 0}, {1, 3, 1}} {
		if _, err := GroupAlltoAllRows(A2ADirect, bad, data, out, 4, dims, RowRange{0, 2}); err == nil {
			t.Fatalf("group %v must be rejected", bad)
		}
		if _, err := GroupRingAllGatherInto(bad, out, data, 4); err == nil {
			t.Fatalf("group %v must be rejected", bad)
		}
	}
}

// TestGroupGuarded: guard errors abort before any byte moves.
func TestGroupGuarded(t *testing.T) {
	r := xrand.New(47)
	data := randWorld(r, 4, 8)
	out := randWorld(r, 4, 8)
	snap := cloneWorld(out)
	boom := func() error { return errors.New("boom") }
	group := []int{0, 2}
	if _, err := GroupAlltoAllRowsGuarded(boom, A2ADirect, group, data, out, 4, BlockDims{Rows: 2, Width: 2}, RowRange{0, 2}); err == nil {
		t.Fatal("guard error must propagate")
	}
	if _, err := GroupRingAllGatherIntoGuarded(boom, group, out, data, 4); err == nil {
		t.Fatal("guard error must propagate")
	}
	if _, err := GroupRingReduceScatterIntoGuarded(boom, group, out, data, 4); err == nil {
		t.Fatal("guard error must propagate")
	}
	if !worldsEqual(out, snap) {
		t.Fatal("guarded failure touched the output buffers")
	}
}

package comm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tensor"
)

// This file layers chunked, asynchronous AlltoAll on top of the monolithic
// Direct/1DH/2DH algorithms — the communication half of the paper's §4
// fine-grained task scheduling. The token dimension of every per-destination
// block is split into r contiguous row chunks; each chunk is a complete
// (smaller) AlltoAll with its own completion, so a stream runtime can start
// expert computation on chunk c while chunk c+1 is still in flight. Because
// chunking only restricts the same permutation to disjoint row sets, the
// reassembled result is byte-identical to the monolithic collective for
// every algorithm.

// BlockDims describes the shape of each per-destination block of an
// AlltoAll buffer: Rows token rows of Width elements. Every rank's buffer
// is p consecutive such blocks (block d destined to rank d), exactly the
// layout DirectAlltoAll &co. validate via blockView.
type BlockDims struct {
	Rows  int // tokens per destination block (the chunked dimension)
	Width int // elements per token row
}

// Elems returns the per-block element count.
func (d BlockDims) Elems() int { return d.Rows * d.Width }

// validate checks data against the layout.
func (d BlockDims) validate(data [][]float64) (int, error) {
	b, err := blockView(data)
	if err != nil {
		return 0, err
	}
	if d.Rows <= 0 || d.Width <= 0 {
		return 0, fmt.Errorf("comm: invalid block dims %dx%d", d.Rows, d.Width)
	}
	if b != d.Elems() {
		return 0, fmt.Errorf("comm: block has %d elements, dims say %dx%d=%d", b, d.Rows, d.Width, d.Elems())
	}
	return b, nil
}

// RowRange is one contiguous chunk [Lo, Hi) of a block's token rows.
type RowRange struct{ Lo, Hi int }

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.Hi - r.Lo }

// SplitRows partitions rows into at most chunks contiguous, near-equal,
// non-empty ranges — the r-way token split of §4.1. Fewer ranges come back
// when rows < chunks; rows <= 0 yields a single empty range (note the
// AlltoAll entry points require BlockDims.Rows >= 1, so an empty range is
// only useful to callers managing their own buffers).
func SplitRows(rows, chunks int) []RowRange {
	if chunks < 1 {
		chunks = 1
	}
	if rows <= 0 {
		return []RowRange{{0, 0}}
	}
	if chunks > rows {
		chunks = rows
	}
	out := make([]RowRange, chunks)
	for c := 0; c < chunks; c++ {
		out[c] = RowRange{Lo: c * rows / chunks, Hi: (c + 1) * rows / chunks}
	}
	return out
}

// AlltoAllRows runs the AlltoAll restricted to rows [rr.Lo, rr.Hi) of every
// destination block, writing the exchanged rows into the same positions of
// out (out[d] must be b*p elements like a monolithic result buffer; rows
// outside the range are untouched). It packs the sub-rows into dense
// per-rank buffers, runs the chosen monolithic algorithm on them, and
// scatters the arrivals — so the data movement inherits the algorithm's
// step structure and the per-row bytes are exactly the monolithic ones.
func AlltoAllRows(algo A2AAlgo, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	var st Stats
	b, err := dims.validate(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if len(out) != p {
		return st, fmt.Errorf("comm: chunked alltoall has %d output ranks, want %d", len(out), p)
	}
	for r := range out {
		if len(out[r]) != b*p {
			return st, fmt.Errorf("comm: output rank %d has %d elements, want %d", r, len(out[r]), b*p)
		}
	}
	if rr.Lo < 0 || rr.Hi < rr.Lo || rr.Hi > dims.Rows {
		return st, fmt.Errorf("comm: row range [%d,%d) outside block of %d rows", rr.Lo, rr.Hi, dims.Rows)
	}
	rows := rr.Len()
	if rows == 0 {
		return st, nil
	}
	// Staging and result buffers come from the shared tensor free-list:
	// per-chunk pack/unpack (and result) allocations would otherwise sit
	// inside measured AlltoAll intervals (GC churn lands identically in
	// baseline and pipelined runs, but pooling tightens the absolute
	// numbers). The Into algorithm variants keep their internal regrouping
	// arenas pooled too.
	w := dims.Width
	sub := make([][]float64, p)
	res := make([][]float64, p)
	staged := make([]*tensor.Tensor, 0, 2*p)
	defer func() {
		for _, t := range staged {
			tensor.Put(t)
		}
	}()
	for r := 0; r < p; r++ {
		in := tensor.GetUninit(rows * w * p)
		staged = append(staged, in)
		sub[r] = in.Data()
		for d := 0; d < p; d++ {
			src := data[r][d*b+rr.Lo*w : d*b+rr.Hi*w]
			copy(sub[r][d*rows*w:(d+1)*rows*w], src)
		}
		rt := tensor.GetUninit(rows * w * p)
		staged = append(staged, rt)
		res[r] = rt.Data()
	}
	st, err = AlltoAllInto(algo, res, sub, gpusPerNode)
	if err != nil {
		return st, err
	}
	for d := 0; d < p; d++ {
		for s := 0; s < p; s++ {
			copy(out[d][s*b+rr.Lo*w:s*b+rr.Hi*w], res[d][s*rows*w:(s+1)*rows*w])
		}
	}
	return st, nil
}

// ChunkedAlltoAll splits each destination block's token rows into chunks
// contiguous ranges and performs one AlltoAll per chunk. The reassembled
// output and the summed Stats are byte-identical in content to the
// monolithic AlltoAll(algo, data, gpusPerNode); onChunk, when non-nil, is
// invoked after each chunk completes with its range — the per-chunk
// completion hook pipelined consumers build on.
func ChunkedAlltoAll(algo A2AAlgo, data [][]float64, gpusPerNode int, dims BlockDims, chunks int, onChunk func(c int, rr RowRange)) ([][]float64, Stats, error) {
	var st Stats
	b, err := dims.validate(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	out := make([][]float64, p)
	for d := 0; d < p; d++ {
		out[d] = make([]float64, b*p)
	}
	for c, rr := range SplitRows(dims.Rows, chunks) {
		cst, err := AlltoAllRows(algo, data, out, gpusPerNode, dims, rr)
		if err != nil {
			return nil, st, err
		}
		st.Merge(cst)
		if onChunk != nil {
			onChunk(c, rr)
		}
	}
	return out, st, nil
}

// AsyncA2A is an in-flight chunked AlltoAll. Chunks complete in order;
// ChunkDone(c) unblocks as soon as chunk c's rows have landed in the
// output buffer — or as soon as the collective fails, so consumers never
// hang. After a ChunkDone unblocks, Landed(c) distinguishes "rows are
// valid" from "the collective aborted first"; Wait blocks for the whole
// collective and reports the error.
type AsyncA2A struct {
	ranges []RowRange
	done   []chan struct{}
	landed atomic.Int32 // chunks whose rows are valid in out
	out    [][]float64
	stats  Stats
	err    error
	fin    chan struct{}
}

// Chunks returns the number of chunks (≤ the requested degree when blocks
// are short) and Range the row range of chunk c.
func (a *AsyncA2A) Chunks() int                     { return len(a.ranges) }
func (a *AsyncA2A) Range(c int) RowRange            { return a.ranges[c] }
func (a *AsyncA2A) ChunkDone(c int) <-chan struct{} { return a.done[c] }

// Out returns the per-rank output buffers. The rows of chunk c are valid
// once ChunkDone(c) has unblocked with Landed(c) true — this is what lets
// a consumer start computing on chunk c while chunk c+1 is still in
// flight. The full buffer is valid after Wait.
func (a *AsyncA2A) Out() [][]float64 { return a.out }

// Landed reports whether chunk c's rows are valid in the output buffer.
// Meaningful once ChunkDone(c) has unblocked: false there means the
// collective failed before chunk c moved.
func (a *AsyncA2A) Landed(c int) bool { return int(a.landed.Load()) > c }

// Wait blocks until every chunk has completed and returns the reassembled
// per-rank buffers (byte-identical to the monolithic AlltoAll), the summed
// Stats, and the first error.
func (a *AsyncA2A) Wait() ([][]float64, Stats, error) {
	<-a.fin
	return a.out, a.stats, a.err
}

// AlltoAllAsync validates the layout synchronously, then starts a chunked
// AlltoAll on a background goroutine and returns with per-chunk
// completion channels; Out()'s chunk-c rows are readable as soon as
// ChunkDone(c) unblocks. The caller must not mutate data until Wait
// returns.
func AlltoAllAsync(algo A2AAlgo, data [][]float64, gpusPerNode int, dims BlockDims, chunks int) (*AsyncA2A, error) {
	b, err := dims.validate(data)
	if err != nil {
		return nil, err
	}
	ranges := SplitRows(dims.Rows, chunks)
	a := &AsyncA2A{ranges: ranges, fin: make(chan struct{})}
	a.done = make([]chan struct{}, len(ranges))
	for c := range a.done {
		a.done[c] = make(chan struct{})
	}
	p := len(data)
	a.out = make([][]float64, p)
	for d := 0; d < p; d++ {
		a.out[d] = make([]float64, b*p)
	}
	go func() {
		defer close(a.fin)
		completed := 0
		for c, rr := range ranges {
			cst, cerr := AlltoAllRows(algo, data, a.out, gpusPerNode, dims, rr)
			if cerr != nil {
				a.err = cerr
				break
			}
			a.stats.Merge(cst)
			a.landed.Store(int32(c + 1))
			close(a.done[c])
			completed = c + 1
		}
		// Failure: unblock the remaining waiters (Landed stays false for
		// these chunks) so nobody hangs on a chunk that will never move.
		for c := completed; c < len(a.done); c++ {
			close(a.done[c])
		}
	}()
	return a, nil
}

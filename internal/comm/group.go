package comm

import "fmt"

// This file adds group-scoped entry points to the collectives: the same
// algorithms restricted to an arbitrary subset of the global ranks — the
// communication substrate of the hybrid EP×ESP strategy (§4's generalized
// MoE layer), where dispatch AlltoAll runs *between* expert-sharding
// groups while AllGather/ReduceScatter run *within* each group.
//
// A group is a list of distinct global rank ids. Buffers are passed as the
// full per-global-rank slices; a group call touches only the members'
// entries and is byte-identical to running the monolithic collective on
// just those ranks (the sub-slices alias the caller's buffers, so nothing
// is copied to restrict the scope). Stats locality is evaluated on
// group-local indices against gpusPerNode — callers model the subset's
// node shape, exactly as the monolithic collectives model the global one.

// checkGroup validates a rank subset against the buffer count n: at least
// one member, every id in [0, n), no duplicates.
func checkGroup(group []int, n int) error {
	if len(group) == 0 {
		return fmt.Errorf("comm: empty rank group")
	}
	seen := make(map[int]bool, len(group))
	for _, r := range group {
		if r < 0 || r >= n {
			return fmt.Errorf("comm: group rank %d outside [0, %d)", r, n)
		}
		if seen[r] {
			return fmt.Errorf("comm: duplicate rank %d in group", r)
		}
		seen[r] = true
	}
	return nil
}

// groupSlices selects the members' buffers. The sub-slices alias the
// caller's data, so collective writes land in the global buffers.
func groupSlices(all [][]float64, group []int) ([][]float64, error) {
	if err := checkGroup(group, len(all)); err != nil {
		return nil, err
	}
	sub := make([][]float64, len(group))
	for k, r := range group {
		sub[k] = all[r]
	}
	return sub, nil
}

// GroupAlltoAllRows runs AlltoAllRows among the ranks of group: member k
// of the group plays rank k of a len(group)-rank AlltoAll over
// data[group[k]] / out[group[k]] (per-destination blocks keyed by group
// position). Non-member buffers are never touched. Byte-identical to the
// monolithic AlltoAllRows on the members' buffers under any grouping and
// any tiling of the row range.
func GroupAlltoAllRows(algo A2AAlgo, group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	sub, err := groupSlices(data, group)
	if err != nil {
		return Stats{}, err
	}
	subOut, err := groupSlices(out, group)
	if err != nil {
		return Stats{}, err
	}
	return AlltoAllRows(algo, sub, subOut, gpusPerNode, dims, rr)
}

// GroupAllGatherRows runs AllGatherRows among the ranks of group, with the
// same full-result-buffer convention: out[group[k]] holds len(group)
// stacked blocks, source group[s]'s block at offset s·dims.Elems().
func GroupAllGatherRows(group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	sub, err := groupSlices(data, group)
	if err != nil {
		return Stats{}, err
	}
	subOut, err := groupSlices(out, group)
	if err != nil {
		return Stats{}, err
	}
	return AllGatherRows(sub, subOut, gpusPerNode, dims, rr)
}

// GroupReduceScatterRows runs ReduceScatterRows among the ranks of group:
// data[group[k]] carries len(group) partial segments and out[group[k]]
// receives rows rr of the elementwise-summed segment k.
func GroupReduceScatterRows(group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	sub, err := groupSlices(data, group)
	if err != nil {
		return Stats{}, err
	}
	subOut, err := groupSlices(out, group)
	if err != nil {
		return Stats{}, err
	}
	return ReduceScatterRows(sub, subOut, gpusPerNode, dims, rr)
}

// GroupRingAllGatherInto runs RingAllGatherInto among the ranks of group:
// out[group[k]] (len(group)·n elements) receives the members'
// concatenated blocks in group order.
func GroupRingAllGatherInto(group []int, out, data [][]float64, gpusPerNode int) (Stats, error) {
	sub, err := groupSlices(data, group)
	if err != nil {
		return Stats{}, err
	}
	subOut, err := groupSlices(out, group)
	if err != nil {
		return Stats{}, err
	}
	return RingAllGatherInto(subOut, sub, gpusPerNode)
}

// GroupRingReduceScatterInto runs RingReduceScatterInto among the ranks of
// group: out[group[k]] (n/len(group) elements) receives segment k of the
// members' elementwise sum, with exactly the monolithic ring's addition
// order per element.
func GroupRingReduceScatterInto(group []int, out, data [][]float64, gpusPerNode int) (Stats, error) {
	sub, err := groupSlices(data, group)
	if err != nil {
		return Stats{}, err
	}
	subOut, err := groupSlices(out, group)
	if err != nil {
		return Stats{}, err
	}
	return RingReduceScatterInto(subOut, sub, gpusPerNode)
}

package comm

import "fmt"

// blockView validates and returns the per-destination block size of an
// AlltoAll input: each rank's buffer is p equal blocks, block d destined to
// rank d.
func blockView(data [][]float64) (int, error) {
	n, err := checkUniform(data)
	if err != nil {
		return 0, err
	}
	p := len(data)
	if n%p != 0 {
		return 0, fmt.Errorf("comm: alltoall length %d not divisible by %d ranks", n, p)
	}
	return n / p, nil
}

// DirectAlltoAll is the flat NCCL algorithm: every rank sends block d
// straight to rank d — p·(p-1) point-to-point messages.
// out[d] = data[0][d] ‖ data[1][d] ‖ … (blocks ordered by source).
func DirectAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	w := world{g: gpusPerNode}
	out := make([][]float64, p)
	for d := 0; d < p; d++ {
		out[d] = make([]float64, b*p)
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			copy(out[d][s*b:(s+1)*b], data[s][d*b:(d+1)*b])
			if s != d {
				st.add(w.sameNode(s, d), b)
			}
		}
	}
	return out, st, nil
}

// Hierarchical1DAlltoAll is Hetu's 1DH algorithm: GPUs in a node first
// gather their traffic onto the node leader (local index 0), leaders
// exchange aggregated messages across nodes, and each leader scatters the
// arrivals within its node. It trades 2 extra intra-node hops for
// nodes·(nodes-1) instead of p·(p-1) inter-node messages.
func Hierarchical1DAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	g := gpusPerNode
	if g <= 0 || p%g != 0 {
		return nil, st, fmt.Errorf("comm: %d ranks not divisible into nodes of %d", p, g)
	}
	nodes := p / g
	// leaderBuf[node][src][dst] = block from src to dst, gathered on the
	// node leader. src is a global rank in the node; dst any global rank.
	leader := make([][][]float64, nodes)
	for nd := 0; nd < nodes; nd++ {
		leader[nd] = make([][]float64, p*p)
	}
	at := func(src, dst int) int { return src*p + dst }
	// Phase 1: gather to leader.
	for s := 0; s < p; s++ {
		nd := s / g
		lead := nd * g
		for d := 0; d < p; d++ {
			blk := make([]float64, b)
			copy(blk, data[s][d*b:(d+1)*b])
			leader[nd][at(s, d)] = blk
			if s != lead {
				st.add(true, b)
			}
		}
	}
	// Phase 2: leaders exchange across nodes. Leader nd sends to leader nd'
	// everything destined to ranks of node nd'.
	arrived := make([][][]float64, nodes)
	for nd := 0; nd < nodes; nd++ {
		arrived[nd] = make([][]float64, p*p)
	}
	for nd := 0; nd < nodes; nd++ {
		for nd2 := 0; nd2 < nodes; nd2++ {
			moved := 0
			for s := nd * g; s < (nd+1)*g; s++ {
				for d := nd2 * g; d < (nd2+1)*g; d++ {
					arrived[nd2][at(s, d)] = leader[nd][at(s, d)]
					moved += b
				}
			}
			if nd != nd2 && moved > 0 {
				st.add(false, moved)
			}
		}
	}
	// Phase 3: leaders scatter to their node's GPUs.
	out := make([][]float64, p)
	for d := 0; d < p; d++ {
		nd := d / g
		lead := nd * g
		out[d] = make([]float64, b*p)
		for s := 0; s < p; s++ {
			copy(out[d][s*b:(s+1)*b], arrived[nd][at(s, d)])
			if d != lead {
				st.add(true, b)
			}
		}
	}
	return out, st, nil
}

// Hierarchical2DAlltoAll is the 2DH algorithm of Tutel/DeepSpeed-MoE:
//
//	phase 1 (intra-node): rank (node, l) hands each block destined to a
//	  rank with local index l' to its node sibling (node, l'); afterwards
//	  sibling l' holds every block of its node whose destination has local
//	  index l';
//	phase 2 (inter-node): same-local-index ranks across nodes exchange the
//	  aggregated per-node messages — nodes·(nodes-1) large messages per
//	  local index instead of p·(p-1) small ones.
func Hierarchical2DAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return nil, st, err
	}
	p := len(data)
	g := gpusPerNode
	if g <= 0 || p%g != 0 {
		return nil, st, fmt.Errorf("comm: %d ranks not divisible into nodes of %d", p, g)
	}
	// mid[r][src*p+dst]: after phase 1, rank r=(node,l) holds blocks from
	// every source in its node destined to any rank with local index l.
	mid := make([][][]float64, p)
	for r := 0; r < p; r++ {
		mid[r] = make([][]float64, p*p)
	}
	at := func(src, dst int) int { return src*p + dst }
	for s := 0; s < p; s++ {
		nd := s / g
		for d := 0; d < p; d++ {
			l := d % g
			holder := nd*g + l
			blk := make([]float64, b)
			copy(blk, data[s][d*b:(d+1)*b])
			mid[holder][at(s, d)] = blk
			if holder != s {
				st.add(true, b)
			}
		}
	}
	// Phase 2: rank (node, l) sends to (node', l) all held blocks destined
	// to node'.
	fin := make([][][]float64, p)
	for r := 0; r < p; r++ {
		fin[r] = make([]([]float64), p*p)
	}
	for nd := 0; nd < p/g; nd++ {
		for l := 0; l < g; l++ {
			r := nd*g + l
			for nd2 := 0; nd2 < p/g; nd2++ {
				peer := nd2*g + l
				moved := 0
				for s := 0; s < p; s++ {
					for d := nd2 * g; d < (nd2+1)*g; d++ {
						if blk := mid[r][at(s, d)]; blk != nil {
							fin[peer][at(s, d)] = blk
							moved += b
						}
					}
				}
				if nd != nd2 && moved > 0 {
					st.add(false, moved)
				}
			}
		}
	}
	// Every block destined to d now sits on d (local index and node both
	// match); order by source.
	out := make([][]float64, p)
	for d := 0; d < p; d++ {
		out[d] = make([]float64, b*p)
		for s := 0; s < p; s++ {
			blk := fin[d][at(s, d)]
			if blk == nil {
				return nil, st, fmt.Errorf("comm: 2DH lost block %d→%d", s, d)
			}
			copy(out[d][s*b:(s+1)*b], blk)
		}
	}
	return out, st, nil
}

// A2AAlgo names an AlltoAll implementation, the §3.1 Dispatch sub-module's
// pluggable algorithm choice.
type A2AAlgo string

const (
	A2ADirect A2AAlgo = "nccl-direct"
	A2A1DH    A2AAlgo = "1dh-hetu"
	A2A2DH    A2AAlgo = "2dh-tutel"
)

// AlltoAll dispatches to the named algorithm.
func AlltoAll(algo A2AAlgo, data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	switch algo {
	case A2ADirect:
		return DirectAlltoAll(data, gpusPerNode)
	case A2A1DH:
		return Hierarchical1DAlltoAll(data, gpusPerNode)
	case A2A2DH:
		return Hierarchical2DAlltoAll(data, gpusPerNode)
	default:
		return nil, Stats{}, fmt.Errorf("comm: unknown alltoall algorithm %q", algo)
	}
}

package comm

import (
	"fmt"

	"repro/internal/tensor"
)

// blockView validates and returns the per-destination block size of an
// AlltoAll input: each rank's buffer is p equal blocks, block d destined to
// rank d.
func blockView(data [][]float64) (int, error) {
	n, err := checkUniform(data)
	if err != nil {
		return 0, err
	}
	p := len(data)
	if n%p != 0 {
		return 0, fmt.Errorf("comm: alltoall length %d not divisible by %d ranks", n, p)
	}
	return n / p, nil
}

// checkInto validates an Into-style destination: p rank buffers of b·p
// elements each (the same layout the allocating entry points return).
func checkInto(out [][]float64, p, b int) error {
	if len(out) != p {
		return fmt.Errorf("comm: alltoall destination has %d ranks, want %d", len(out), p)
	}
	for r := range out {
		if len(out[r]) != b*p {
			return fmt.Errorf("comm: alltoall destination rank %d has %d elements, want %d", r, len(out[r]), b*p)
		}
	}
	return nil
}

// allocRanks returns p freshly allocated rank buffers of n elements.
func allocRanks(p, n int) [][]float64 {
	out := make([][]float64, p)
	for r := range out {
		out[r] = make([]float64, n)
	}
	return out
}

// DirectAlltoAll is the flat NCCL algorithm: every rank sends block d
// straight to rank d — p·(p-1) point-to-point messages.
// out[d] = data[0][d] ‖ data[1][d] ‖ … (blocks ordered by source).
func DirectAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	b, err := blockView(data)
	if err != nil {
		return nil, Stats{}, err
	}
	out := allocRanks(len(data), b*len(data))
	st, err := DirectAlltoAllInto(out, data, gpusPerNode)
	return out, st, err
}

// DirectAlltoAllInto is DirectAlltoAll writing into caller-owned result
// buffers (out[d] must be b·p elements), so pipelined callers can draw
// them from the tensor free-list instead of allocating inside measured
// collective intervals.
func DirectAlltoAllInto(out, data [][]float64, gpusPerNode int) (Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if err := checkInto(out, p, b); err != nil {
		return st, err
	}
	w := world{g: gpusPerNode}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			copy(out[d][s*b:(s+1)*b], data[s][d*b:(d+1)*b])
			if s != d {
				st.add(w.sameNode(s, d), b)
			}
		}
	}
	return st, nil
}

// Hierarchical1DAlltoAll is Hetu's 1DH algorithm: GPUs in a node first
// gather their traffic onto the node leader (local index 0), leaders
// exchange aggregated messages across nodes, and each leader scatters the
// arrivals within its node. It trades 2 extra intra-node hops for
// nodes·(nodes-1) instead of p·(p-1) inter-node messages.
func Hierarchical1DAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	b, err := blockView(data)
	if err != nil {
		return nil, Stats{}, err
	}
	out := allocRanks(len(data), b*len(data))
	st, err := Hierarchical1DAlltoAllInto(out, data, gpusPerNode)
	return out, st, err
}

// Hierarchical1DAlltoAllInto is Hierarchical1DAlltoAll with caller-owned
// result buffers. The leader and arrival staging arenas come from the
// shared tensor free-list (one dense arena per node instead of p² block
// allocations), keeping GC churn out of measured intervals; the byte
// movement and Stats are identical to the allocating variant.
func Hierarchical1DAlltoAllInto(out, data [][]float64, gpusPerNode int) (Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if err := checkInto(out, p, b); err != nil {
		return st, err
	}
	g := gpusPerNode
	if g <= 0 || p%g != 0 {
		return st, fmt.Errorf("comm: %d ranks not divisible into nodes of %d", p, g)
	}
	nodes := p / g
	// leader[nd] holds, on the node leader, every block of node nd's g
	// sources: slot ((s - nd·g)·p + d) is the block from source s to
	// destination d. arrived[nd] holds, after the leader exchange, every
	// block destined to node nd's g ranks: slot (s·g + (d - nd·g)).
	leader := make([]*tensor.Tensor, nodes)
	arrived := make([]*tensor.Tensor, nodes)
	for nd := 0; nd < nodes; nd++ {
		leader[nd] = tensor.GetUninit(g * p * b)
		arrived[nd] = tensor.GetUninit(p * g * b)
	}
	defer func() {
		for nd := 0; nd < nodes; nd++ {
			tensor.Put(leader[nd])
			tensor.Put(arrived[nd])
		}
	}()
	// Phase 1: gather to leader.
	for s := 0; s < p; s++ {
		nd := s / g
		lead := nd * g
		ld := leader[nd].Data()
		for d := 0; d < p; d++ {
			off := ((s-nd*g)*p + d) * b
			copy(ld[off:off+b], data[s][d*b:(d+1)*b])
			if s != lead {
				st.add(true, b)
			}
		}
	}
	// Phase 2: leaders exchange across nodes. Leader nd sends to leader nd'
	// everything destined to ranks of node nd'.
	for nd := 0; nd < nodes; nd++ {
		ld := leader[nd].Data()
		for nd2 := 0; nd2 < nodes; nd2++ {
			ad := arrived[nd2].Data()
			moved := 0
			for s := nd * g; s < (nd+1)*g; s++ {
				for d := nd2 * g; d < (nd2+1)*g; d++ {
					src := ((s-nd*g)*p + d) * b
					dst := (s*g + (d - nd2*g)) * b
					copy(ad[dst:dst+b], ld[src:src+b])
					moved += b
				}
			}
			if nd != nd2 && moved > 0 {
				st.add(false, moved)
			}
		}
	}
	// Phase 3: leaders scatter to their node's GPUs, ordered by source.
	for d := 0; d < p; d++ {
		nd := d / g
		lead := nd * g
		ad := arrived[nd].Data()
		for s := 0; s < p; s++ {
			off := (s*g + (d - nd*g)) * b
			copy(out[d][s*b:(s+1)*b], ad[off:off+b])
			if d != lead {
				st.add(true, b)
			}
		}
	}
	return st, nil
}

// Hierarchical2DAlltoAll is the 2DH algorithm of Tutel/DeepSpeed-MoE:
//
//	phase 1 (intra-node): rank (node, l) hands each block destined to a
//	  rank with local index l' to its node sibling (node, l'); afterwards
//	  sibling l' holds every block of its node whose destination has local
//	  index l';
//	phase 2 (inter-node): same-local-index ranks across nodes exchange the
//	  aggregated per-node messages — nodes·(nodes-1) large messages per
//	  local index instead of p·(p-1) small ones.
func Hierarchical2DAlltoAll(data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	b, err := blockView(data)
	if err != nil {
		return nil, Stats{}, err
	}
	out := allocRanks(len(data), b*len(data))
	st, err := Hierarchical2DAlltoAllInto(out, data, gpusPerNode)
	return out, st, err
}

// Hierarchical2DAlltoAllInto is Hierarchical2DAlltoAll with caller-owned
// result buffers and pooled regrouping arenas (one dense arena per rank
// instead of p² block allocations); byte movement and Stats are identical
// to the allocating variant.
func Hierarchical2DAlltoAllInto(out, data [][]float64, gpusPerNode int) (Stats, error) {
	var st Stats
	b, err := blockView(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if err := checkInto(out, p, b); err != nil {
		return st, err
	}
	g := gpusPerNode
	if g <= 0 || p%g != 0 {
		return st, fmt.Errorf("comm: %d ranks not divisible into nodes of %d", p, g)
	}
	nodes := p / g
	// mid[r] for r = (nd, l) holds, after phase 1, every block from node
	// nd's g sources destined to a rank with local index l: slot
	// ((s - nd·g)·nodes + d/g) is the block from source s to destination d
	// (d ≡ l mod g, so d/g identifies it).
	mid := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		mid[r] = tensor.GetUninit(g * nodes * b)
	}
	defer func() {
		for r := 0; r < p; r++ {
			tensor.Put(mid[r])
		}
	}()
	for s := 0; s < p; s++ {
		nd := s / g
		for d := 0; d < p; d++ {
			l := d % g
			holder := nd*g + l
			md := mid[holder].Data()
			off := ((s-nd*g)*nodes + d/g) * b
			copy(md[off:off+b], data[s][d*b:(d+1)*b])
			if holder != s {
				st.add(true, b)
			}
		}
	}
	// Phase 2: rank (node, l) sends to (node', l) all held blocks destined
	// to node'. Because every held block's destination has local index l,
	// the only in-node' destination is rank (node', l) itself, so the
	// arrivals land directly in the source-ordered output layout.
	for nd := 0; nd < nodes; nd++ {
		for l := 0; l < g; l++ {
			r := nd*g + l
			md := mid[r].Data()
			for nd2 := 0; nd2 < nodes; nd2++ {
				peer := nd2*g + l
				moved := 0
				for s := nd * g; s < (nd+1)*g; s++ {
					off := ((s-nd*g)*nodes + nd2) * b
					copy(out[peer][s*b:(s+1)*b], md[off:off+b])
					moved += b
				}
				if nd != nd2 && moved > 0 {
					st.add(false, moved)
				}
			}
		}
	}
	return st, nil
}

// A2AAlgo names an AlltoAll implementation, the §3.1 Dispatch sub-module's
// pluggable algorithm choice.
type A2AAlgo string

const (
	A2ADirect A2AAlgo = "nccl-direct"
	A2A1DH    A2AAlgo = "1dh-hetu"
	A2A2DH    A2AAlgo = "2dh-tutel"
)

// AlltoAll dispatches to the named algorithm, allocating the result.
func AlltoAll(algo A2AAlgo, data [][]float64, gpusPerNode int) ([][]float64, Stats, error) {
	switch algo {
	case A2ADirect:
		return DirectAlltoAll(data, gpusPerNode)
	case A2A1DH:
		return Hierarchical1DAlltoAll(data, gpusPerNode)
	case A2A2DH:
		return Hierarchical2DAlltoAll(data, gpusPerNode)
	default:
		return nil, Stats{}, fmt.Errorf("comm: unknown alltoall algorithm %q", algo)
	}
}

// AlltoAllInto dispatches to the named algorithm's Into variant, writing
// into caller-owned (typically pooled) result buffers.
func AlltoAllInto(algo A2AAlgo, out, data [][]float64, gpusPerNode int) (Stats, error) {
	switch algo {
	case A2ADirect:
		return DirectAlltoAllInto(out, data, gpusPerNode)
	case A2A1DH:
		return Hierarchical1DAlltoAllInto(out, data, gpusPerNode)
	case A2A2DH:
		return Hierarchical2DAlltoAllInto(out, data, gpusPerNode)
	default:
		return Stats{}, fmt.Errorf("comm: unknown alltoall algorithm %q", algo)
	}
}

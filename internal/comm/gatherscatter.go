package comm

import (
	"fmt"

	"repro/internal/tensor"
)

// This file layers chunked AllGather and ReduceScatter on top of the ring
// primitives in comm.go — the intra-node collectives of the paper's
// expert-sharding parallelism (ESP, §4), made executable for the stream
// runtime. As with the chunked AlltoAll, the token dimension of every
// rank's block is split into contiguous row ranges; each range is a
// complete (smaller) collective with its own completion, so AllGather
// chunk c+1 can be on the wire while the sharded expert GEMMs consume
// chunk c. Chunking only restricts the same ring schedule to disjoint row
// sets, so the reassembled result is byte-identical to the monolithic
// collective. Staging and working buffers come from the shared tensor
// free-list, keeping allocation churn out of measured intervals.

// RingAllGatherInto is RingAllGather writing into caller-owned result
// buffers: out[r] must be n·p elements and receives
// data[0] ‖ data[1] ‖ … ‖ data[p-1], moved in p-1 ring steps with pooled
// per-step staging.
func RingAllGatherInto(out, data [][]float64, gpusPerNode int) (Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if len(out) != p {
		return st, fmt.Errorf("comm: allgather destination has %d ranks, want %d", len(out), p)
	}
	for r := range out {
		if len(out[r]) != n*p {
			return st, fmt.Errorf("comm: allgather destination rank %d has %d elements, want %d", r, len(out[r]), n*p)
		}
	}
	w := world{g: gpusPerNode}
	for r := 0; r < p; r++ {
		copy(out[r][r*n:(r+1)*n], data[r])
	}
	staged := make([]*tensor.Tensor, p)
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			c := ((r-s)%p + p) % p
			cp := tensor.GetUninit(n)
			copy(cp.Data(), out[r][c*n:(c+1)*n])
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			dst := (r + 1) % p
			c := ((r-s)%p + p) % p
			copy(out[dst][c*n:(c+1)*n], staged[r].Data())
			st.add(w.sameNode(r, dst), n)
			tensor.Put(staged[r])
		}
	}
	return st, nil
}

// RingReduceScatterInto is RingReduceScatter writing into caller-owned
// result buffers: out[r] must be n/p elements and receives segment r of
// the elementwise sum. The ring's working copies are pooled; the addition
// order per element is exactly RingReduceScatter's, so the results are
// byte-identical.
func RingReduceScatterInto(out, data [][]float64, gpusPerNode int) (Stats, error) {
	var st Stats
	n, err := checkUniform(data)
	if err != nil {
		return st, err
	}
	p := len(data)
	if n%p != 0 {
		return st, fmt.Errorf("comm: reduce-scatter length %d not divisible by %d ranks", n, p)
	}
	seg := n / p
	if len(out) != p {
		return st, fmt.Errorf("comm: reduce-scatter destination has %d ranks, want %d", len(out), p)
	}
	for r := range out {
		if len(out[r]) != seg {
			return st, fmt.Errorf("comm: reduce-scatter destination rank %d has %d elements, want %d", r, len(out[r]), seg)
		}
	}
	w := world{g: gpusPerNode}
	// Work on pooled copies so the caller's buffers survive.
	work := make([]*tensor.Tensor, p)
	for r := range data {
		work[r] = tensor.GetUninit(n)
		copy(work[r].Data(), data[r])
	}
	defer func() {
		for _, t := range work {
			tensor.Put(t)
		}
	}()
	chunk := func(r, c int) []float64 { return work[r].Data()[c*seg : (c+1)*seg] }
	staged := make([]*tensor.Tensor, p)
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			c := ((r-s)%p + p) % p
			cp := tensor.GetUninit(seg)
			copy(cp.Data(), chunk(r, c))
			staged[r] = cp
		}
		for r := 0; r < p; r++ {
			dst := (r + 1) % p
			c := ((r-s)%p + p) % p
			dchunk := chunk(dst, c)
			for i, v := range staged[r].Data() {
				dchunk[i] += v
			}
			st.add(w.sameNode(r, dst), seg)
			tensor.Put(staged[r])
		}
	}
	for r := 0; r < p; r++ {
		// After p-1 steps rank r holds the reduced chunk (r+1) mod p; the
		// conventional output is segment r, so shift.
		c := (r + 1) % p
		copy(out[c], chunk(r, c))
	}
	return st, nil
}

// AllGatherRows runs the AllGather restricted to rows [rr.Lo, rr.Hi) of
// every rank's (Rows × Width) block, writing the gathered rows into the
// same positions of out (out[r] must be p·Rows·Width elements like a
// monolithic result buffer, source s's block at offset s·Rows·Width; rows
// outside the range are untouched). It packs the sub-rows into dense
// pooled buffers, rings them, and scatters the arrivals — so the data
// movement inherits the ring's step structure and any tiling of [0, Rows)
// reproduces the monolithic RingAllGather byte for byte.
func AllGatherRows(data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	var st Stats
	b, err := checkRowsArgs(data, out, dims, rr, 1)
	if err != nil {
		return st, err
	}
	rows := rr.Len()
	if rows == 0 {
		return st, nil
	}
	p := len(data)
	w := dims.Width
	sub := make([][]float64, p)
	res := make([][]float64, p)
	staged := make([]*tensor.Tensor, 0, 2*p)
	defer func() {
		for _, t := range staged {
			tensor.Put(t)
		}
	}()
	for r := 0; r < p; r++ {
		in := tensor.GetUninit(rows * w)
		staged = append(staged, in)
		sub[r] = in.Data()
		copy(sub[r], data[r][rr.Lo*w:rr.Hi*w])
		rt := tensor.GetUninit(rows * w * p)
		staged = append(staged, rt)
		res[r] = rt.Data()
	}
	st, err = RingAllGatherInto(res, sub, gpusPerNode)
	if err != nil {
		return st, err
	}
	for d := 0; d < p; d++ {
		for s := 0; s < p; s++ {
			copy(out[d][s*b+rr.Lo*w:s*b+rr.Hi*w], res[d][s*rows*w:(s+1)*rows*w])
		}
	}
	return st, nil
}

// ReduceScatterRows runs the ReduceScatter restricted to rows
// [rr.Lo, rr.Hi) of every segment: data[r] is a full partial buffer of p
// (Rows × Width) segments, and out[r] (a single Rows × Width block)
// receives rows rr of the elementwise-summed segment r; rows outside the
// range are untouched. The packed sub-buffers keep the ring-chunk ↔
// segment correspondence of RingReduceScatter, so every element sees the
// monolithic sequence of additions and any tiling of [0, Rows) reproduces
// the monolithic collective byte for byte.
func ReduceScatterRows(data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	var st Stats
	b, err := checkRowsArgs(data, out, dims, rr, -1)
	if err != nil {
		return st, err
	}
	rows := rr.Len()
	if rows == 0 {
		return st, nil
	}
	p := len(data)
	w := dims.Width
	sub := make([][]float64, p)
	res := make([][]float64, p)
	staged := make([]*tensor.Tensor, 0, 2*p)
	defer func() {
		for _, t := range staged {
			tensor.Put(t)
		}
	}()
	for r := 0; r < p; r++ {
		in := tensor.GetUninit(rows * w * p)
		staged = append(staged, in)
		sub[r] = in.Data()
		for seg := 0; seg < p; seg++ {
			copy(sub[r][seg*rows*w:(seg+1)*rows*w], data[r][seg*b+rr.Lo*w:seg*b+rr.Hi*w])
		}
		rt := tensor.GetUninit(rows * w)
		staged = append(staged, rt)
		res[r] = rt.Data()
	}
	st, err = RingReduceScatterInto(res, sub, gpusPerNode)
	if err != nil {
		return st, err
	}
	for r := 0; r < p; r++ {
		copy(out[r][rr.Lo*w:rr.Hi*w], res[r])
	}
	return st, nil
}

// checkRowsArgs validates the shared argument structure of AllGatherRows
// (dir=1: data blocks are Rows, out buffers p·Rows) and ReduceScatterRows
// (dir=-1: data buffers p·Rows, out blocks Rows), returning the
// per-segment element count Rows·Width.
func checkRowsArgs(data, out [][]float64, dims BlockDims, rr RowRange, dir int) (int, error) {
	if dims.Rows <= 0 || dims.Width <= 0 {
		return 0, fmt.Errorf("comm: invalid block dims %dx%d", dims.Rows, dims.Width)
	}
	b := dims.Elems()
	p := len(data)
	if p == 0 {
		return 0, fmt.Errorf("comm: no ranks")
	}
	if len(out) != p {
		return 0, fmt.Errorf("comm: %d output ranks, want %d", len(out), p)
	}
	small, big := b, b*p
	dataLen, outLen := small, big
	if dir < 0 {
		dataLen, outLen = big, small
	}
	for r := 0; r < p; r++ {
		if len(data[r]) != dataLen {
			return 0, fmt.Errorf("comm: input rank %d has %d elements, want %d", r, len(data[r]), dataLen)
		}
		if len(out[r]) != outLen {
			return 0, fmt.Errorf("comm: output rank %d has %d elements, want %d", r, len(out[r]), outLen)
		}
	}
	if rr.Lo < 0 || rr.Hi < rr.Lo || rr.Hi > dims.Rows {
		return 0, fmt.Errorf("comm: row range [%d,%d) outside block of %d rows", rr.Lo, rr.Hi, dims.Rows)
	}
	return b, nil
}

// ChunkedAllGather splits each rank's block rows into chunks contiguous
// ranges and performs one AllGather per chunk, reassembling the monolithic
// result; onChunk, when non-nil, is invoked after each chunk completes —
// the per-chunk completion hook pipelined ESP consumers build on.
func ChunkedAllGather(data [][]float64, gpusPerNode int, dims BlockDims, chunks int, onChunk func(c int, rr RowRange)) ([][]float64, Stats, error) {
	var st Stats
	p := len(data)
	if p == 0 {
		return nil, st, fmt.Errorf("comm: no ranks")
	}
	out := allocRanks(p, dims.Elems()*p)
	for c, rr := range SplitRows(dims.Rows, chunks) {
		cst, err := AllGatherRows(data, out, gpusPerNode, dims, rr)
		if err != nil {
			return nil, st, err
		}
		st.Merge(cst)
		if onChunk != nil {
			onChunk(c, rr)
		}
	}
	return out, st, nil
}

// ChunkedReduceScatter splits every segment's rows into chunks contiguous
// ranges and performs one ReduceScatter per chunk; the reassembled per-rank
// segments are byte-identical to the monolithic RingReduceScatter.
func ChunkedReduceScatter(data [][]float64, gpusPerNode int, dims BlockDims, chunks int, onChunk func(c int, rr RowRange)) ([][]float64, Stats, error) {
	var st Stats
	p := len(data)
	if p == 0 {
		return nil, st, fmt.Errorf("comm: no ranks")
	}
	out := allocRanks(p, dims.Elems())
	for c, rr := range SplitRows(dims.Rows, chunks) {
		cst, err := ReduceScatterRows(data, out, gpusPerNode, dims, rr)
		if err != nil {
			return nil, st, err
		}
		st.Merge(cst)
		if onChunk != nil {
			onChunk(c, rr)
		}
	}
	return out, st, nil
}

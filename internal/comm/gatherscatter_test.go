package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// TestRingIntoVariantsMatchAllocating: the Into variants of the ring
// AllGather/ReduceScatter and of the three AlltoAll algorithms move the
// same bytes and report the same Stats as their allocating originals.
func TestRingIntoVariantsMatchAllocating(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nodes := 1 + r.Intn(3)
		g := 1 + r.Intn(3)
		p := nodes * g
		n := p * (1 + r.Intn(4))
		data := randWorld(r, p, n)

		wantAG, stAG, err := RingAllGather(data, g)
		if err != nil {
			return false
		}
		gotAG := make([][]float64, p)
		for i := range gotAG {
			gotAG[i] = make([]float64, n*p)
		}
		stAG2, err := RingAllGatherInto(gotAG, data, g)
		if err != nil || stAG != stAG2 || !worldsEqual(wantAG, gotAG) {
			return false
		}

		wantRS, stRS, err := RingReduceScatter(data, g)
		if err != nil {
			return false
		}
		gotRS := make([][]float64, p)
		for i := range gotRS {
			gotRS[i] = make([]float64, n/p)
		}
		stRS2, err := RingReduceScatterInto(gotRS, data, g)
		if err != nil || stRS != stRS2 || !worldsEqual(wantRS, gotRS) {
			return false
		}

		for _, algo := range []A2AAlgo{A2ADirect, A2A1DH, A2A2DH} {
			want, st, err := AlltoAll(algo, data, g)
			if err != nil {
				return false
			}
			got := make([][]float64, p)
			for i := range got {
				got[i] = make([]float64, n)
			}
			st2, err := AlltoAllInto(algo, got, data, g)
			if err != nil || st != st2 || !worldsEqual(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedAllGatherBitIdentical: any chunking of the row dimension
// reassembles the monolithic RingAllGather byte for byte, with the same
// total traffic.
func TestChunkedAllGatherBitIdentical(t *testing.T) {
	r := xrand.New(7)
	const p, rows, width = 4, 6, 3
	data := randWorld(r, p, rows*width)
	want, wantSt, err := RingAllGather(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	dims := BlockDims{Rows: rows, Width: width}
	for _, chunks := range []int{1, 2, 3, 4, 6, 9} {
		got, st, err := ChunkedAllGather(data, 2, dims, chunks, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !worldsEqual(want, got) {
			t.Fatalf("chunks=%d: chunked allgather differs from monolithic", chunks)
		}
		if st.IntraVolume+st.InterVolume != wantSt.IntraVolume+wantSt.InterVolume {
			t.Fatalf("chunks=%d: volume %v+%v, want %v+%v", chunks,
				st.IntraVolume, st.InterVolume, wantSt.IntraVolume, wantSt.InterVolume)
		}
	}
}

// TestChunkedReduceScatterBitIdentical: the restricted ReduceScatter keeps
// the monolithic ring's per-element addition order, so any tiling is
// byte-identical to RingReduceScatter.
func TestChunkedReduceScatterBitIdentical(t *testing.T) {
	r := xrand.New(11)
	const p, rows, width = 4, 5, 3
	data := randWorld(r, p, p*rows*width)
	want, wantSt, err := RingReduceScatter(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	dims := BlockDims{Rows: rows, Width: width}
	for _, chunks := range []int{1, 2, 3, 5, 8} {
		got, st, err := ChunkedReduceScatter(data, 2, dims, chunks, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !worldsEqual(want, got) {
			t.Fatalf("chunks=%d: chunked reduce-scatter differs from monolithic", chunks)
		}
		if st.IntraVolume+st.InterVolume != wantSt.IntraVolume+wantSt.InterVolume {
			t.Fatalf("chunks=%d: traffic volume mismatch", chunks)
		}
	}
}

// TestGatherScatterRowsPartial: a restricted collective touches only the
// requested rows of the output.
func TestGatherScatterRowsPartial(t *testing.T) {
	r := xrand.New(13)
	const p, rows, width = 2, 4, 2
	dims := BlockDims{Rows: rows, Width: width}
	data := randWorld(r, p, rows*width)
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, p*rows*width)
		for j := range out[i] {
			out[i][j] = -99
		}
	}
	rr := RowRange{Lo: 1, Hi: 3}
	if _, err := AllGatherRows(data, out, p, dims, rr); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < p; d++ {
		for s := 0; s < p; s++ {
			for row := 0; row < rows; row++ {
				off := s*rows*width + row*width
				inRange := row >= rr.Lo && row < rr.Hi
				for j := 0; j < width; j++ {
					got := out[d][off+j]
					if inRange && got != data[s][row*width+j] {
						t.Fatalf("dst %d src %d row %d: got %v", d, s, row, got)
					}
					if !inRange && got != -99 {
						t.Fatalf("dst %d src %d row %d touched outside range", d, s, row)
					}
				}
			}
		}
	}

	partials := randWorld(r, p, p*rows*width)
	rsOut := make([][]float64, p)
	for i := range rsOut {
		rsOut[i] = make([]float64, rows*width)
		for j := range rsOut[i] {
			rsOut[i][j] = -99
		}
	}
	if _, err := ReduceScatterRows(partials, rsOut, p, dims, rr); err != nil {
		t.Fatal(err)
	}
	full, _, err := RingReduceScatter(partials, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		for row := 0; row < rows; row++ {
			inRange := row >= rr.Lo && row < rr.Hi
			for j := 0; j < width; j++ {
				got := rsOut[i][row*width+j]
				if inRange && got != full[i][row*width+j] {
					t.Fatalf("rank %d row %d: got %v want %v", i, row, got, full[i][row*width+j])
				}
				if !inRange && got != -99 {
					t.Fatalf("rank %d row %d touched outside range", i, row)
				}
			}
		}
	}
}

// TestGatherScatterRowsErrors covers the argument validation.
func TestGatherScatterRowsErrors(t *testing.T) {
	dims := BlockDims{Rows: 2, Width: 2}
	good := [][]float64{make([]float64, 4), make([]float64, 4)}
	big := [][]float64{make([]float64, 8), make([]float64, 8)}
	rr := RowRange{Lo: 0, Hi: 2}
	if _, err := AllGatherRows(good, good, 0, dims, rr); err == nil {
		t.Fatal("undersized allgather destination must fail")
	}
	if _, err := AllGatherRows(good, big, 0, dims, RowRange{Lo: 0, Hi: 3}); err == nil {
		t.Fatal("out-of-range rows must fail")
	}
	if _, err := ReduceScatterRows(big, big, 0, dims, rr); err == nil {
		t.Fatal("oversized reduce-scatter destination must fail")
	}
	if _, err := ReduceScatterRows(nil, nil, 0, dims, rr); err == nil {
		t.Fatal("empty world must fail")
	}
	if _, err := RingAllGatherInto(good, good, 0); err == nil {
		t.Fatal("undersized RingAllGatherInto destination must fail")
	}
	if _, err := RingReduceScatterInto(good, good, 0); err == nil {
		t.Fatal("oversized RingReduceScatterInto destination must fail")
	}
}

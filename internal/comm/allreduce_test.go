package comm

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func randRanks(seed uint64, p, n int) [][]float64 {
	rng := xrand.New(seed)
	out := make([][]float64, p)
	for r := range out {
		out[r] = make([]float64, n)
		for i := range out[r] {
			out[r][i] = rng.NormFloat64()
		}
	}
	return out
}

func cloneRanks(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for r := range data {
		out[r] = append([]float64(nil), data[r]...)
	}
	return out
}

// TestChunkedRingAllReduceBitIdentical: reducing any tiling of the buffer
// chunk by chunk must reproduce the monolithic RingAllReduce byte for
// byte — the §5 slicing must never change a gradient bit.
func TestChunkedRingAllReduceBitIdentical(t *testing.T) {
	for _, p := range []int{2, 4, 5} {
		for _, n := range []int{1, 7, 64, 129} {
			ref := randRanks(uint64(100*p+n), p, n)
			want := cloneRanks(ref)
			wantSt, err := RingAllReduce(want, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunks := range []int{1, 2, 3, 5, 8, n + 3} {
				got := cloneRanks(ref)
				st, err := ChunkedRingAllReduce(got, 2, chunks, nil)
				if err != nil {
					t.Fatal(err)
				}
				for r := range got {
					for i := range got[r] {
						if got[r][i] != want[r][i] {
							t.Fatalf("p=%d n=%d chunks=%d: rank %d elem %d: %v != %v",
								p, n, chunks, r, i, got[r][i], want[r][i])
						}
					}
				}
				if st.IntraVolume+st.InterVolume != wantSt.IntraVolume+wantSt.InterVolume {
					t.Fatalf("p=%d n=%d chunks=%d: chunked volume %v, monolithic %v",
						p, n, chunks, st.IntraVolume+st.InterVolume, wantSt.IntraVolume+wantSt.InterVolume)
				}
			}
		}
	}
}

// TestRingAllReduceChunkTilingOrder: disjoint ranges may be reduced in any
// order (the overlapped schedule interleaves slices of different layers)
// and still tile to the monolithic result.
func TestRingAllReduceChunkTilingOrder(t *testing.T) {
	const p, n = 4, 101
	ref := randRanks(7, p, n)
	want := cloneRanks(ref)
	if _, err := RingAllReduce(want, 0); err != nil {
		t.Fatal(err)
	}
	got := cloneRanks(ref)
	ranges := SplitFlat(n, 5)
	// Reverse order, then a middle-out shuffle.
	order := []int{4, 2, 0, 3, 1}
	for _, c := range order {
		if _, err := RingAllReduceChunk(got, 0, ranges[c]); err != nil {
			t.Fatal(err)
		}
	}
	for r := range got {
		for i := range got[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d elem %d: %v != %v", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestRingAllReduceChunkExactWithDisjointPartials: when every element has
// exactly one non-zero contributor (the executable gradient-sync layout:
// expert grads live on their owner rank, dense shards are disjoint), the
// ring sum is exact — adding zeros never rounds — and every rank ends with
// identical bytes. This is the property World.Step's parameter-equality
// assertion rests on.
func TestRingAllReduceChunkExactWithDisjointPartials(t *testing.T) {
	const p, n = 4, 57
	truth := make([]float64, n)
	rng := xrand.New(9)
	data := make([][]float64, p)
	for r := range data {
		data[r] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		truth[i] = rng.NormFloat64()
		data[i%p][i] = truth[i]
	}
	if _, err := ChunkedRingAllReduce(data, 2, 3, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for i := 0; i < n; i++ {
			if data[r][i] != truth[i] {
				t.Fatalf("rank %d elem %d: %v != %v", r, i, data[r][i], truth[i])
			}
		}
	}
}

// TestAllReduceAsync: chunks land in order, each ChunkDone gates a fully
// reduced range, and Wait returns the monolithic result.
func TestAllReduceAsync(t *testing.T) {
	const p, n, chunks = 4, 200, 4
	ref := randRanks(11, p, n)
	want := cloneRanks(ref)
	if _, err := RingAllReduce(want, 2); err != nil {
		t.Fatal(err)
	}
	data := cloneRanks(ref)
	a, err := AllReduceAsync(data, 2, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chunks() != chunks {
		t.Fatalf("chunks = %d, want %d", a.Chunks(), chunks)
	}
	for c := 0; c < a.Chunks(); c++ {
		<-a.ChunkDone(c)
		if !a.Landed(c) {
			t.Fatalf("chunk %d unblocked without landing", c)
		}
		rr := a.Range(c)
		for r := 0; r < p; r++ {
			for i := rr.Lo; i < rr.Hi; i++ {
				if data[r][i] != want[r][i] {
					t.Fatalf("chunk %d rank %d elem %d not reduced", c, r, i)
				}
			}
		}
	}
	st, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.IntraVolume+st.InterVolume <= 0 {
		t.Fatal("async allreduce recorded no traffic")
	}
}

// TestRingAllReduceChunkErrors covers the validation paths.
func TestRingAllReduceChunkErrors(t *testing.T) {
	ok := [][]float64{{1, 2}, {3, 4}}
	if _, err := RingAllReduceChunk([][]float64{{1}, {2, 3}}, 0, RowRange{0, 1}); err == nil {
		t.Fatal("ragged buffers must fail")
	}
	if _, err := RingAllReduceChunk(ok, 0, RowRange{-1, 1}); err == nil {
		t.Fatal("negative range must fail")
	}
	if _, err := RingAllReduceChunk(ok, 0, RowRange{0, 3}); err == nil {
		t.Fatal("range past the buffer must fail")
	}
	if _, err := AllReduceAsync([][]float64{{1}, {2, 3}}, 0, 2); err == nil {
		t.Fatal("async with ragged buffers must fail")
	}
	// Empty range and single rank are no-ops.
	if st, err := RingAllReduceChunk(ok, 0, RowRange{1, 1}); err != nil || st.InterVolume != 0 {
		t.Fatalf("empty range: %v %+v", err, st)
	}
	one := [][]float64{{5, math.Pi}}
	if _, err := RingAllReduceChunk(one, 0, RowRange{0, 2}); err != nil {
		t.Fatal(err)
	}
	if one[0][0] != 5 || one[0][1] != math.Pi {
		t.Fatal("single-rank allreduce must leave the buffer untouched")
	}
}

// TestSplitFlat pins the flat-slicing contract gradsync relies on: ranges
// tile [0, n), are non-empty, and cap at n.
func TestSplitFlat(t *testing.T) {
	for _, tc := range []struct{ n, chunks, want int }{
		{10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {1, 1, 1},
	} {
		got := SplitFlat(tc.n, tc.chunks)
		if len(got) != tc.want {
			t.Fatalf("SplitFlat(%d,%d) = %d ranges, want %d", tc.n, tc.chunks, len(got), tc.want)
		}
		next := 0
		for _, rr := range got {
			if rr.Lo != next || rr.Len() <= 0 {
				t.Fatalf("SplitFlat(%d,%d) = %v does not tile", tc.n, tc.chunks, got)
			}
			next = rr.Hi
		}
		if next != tc.n {
			t.Fatalf("SplitFlat(%d,%d) ends at %d", tc.n, tc.chunks, next)
		}
	}
}

package comm

import (
	"errors"
	"testing"
)

func bcastBuffers(p, n int, root int) [][]float64 {
	data := make([][]float64, p)
	for r := range data {
		data[r] = make([]float64, n)
		for i := range data[r] {
			if r == root {
				data[r][i] = float64(root*1000 + i)
			} else {
				data[r][i] = -1 // sentinel: must be overwritten
			}
		}
	}
	return data
}

func TestBroadcast(t *testing.T) {
	const p, n = 4, 6
	for root := 0; root < p; root++ {
		data := bcastBuffers(p, n, root)
		st, err := Broadcast(data, root, 2)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if want := float64(root*1000 + i); data[r][i] != want {
					t.Fatalf("root %d: rank %d elem %d = %v, want %v", root, r, i, data[r][i], want)
				}
			}
		}
		if got := st.IntraMessages + st.InterMessages; got != p-1 {
			t.Fatalf("root %d: %d messages, want %d", root, got, p-1)
		}
		if got := st.IntraVolume + st.InterVolume; got != float64((p-1)*n) {
			t.Fatalf("root %d: volume %v, want %v", root, got, float64((p-1)*n))
		}
	}
}

func TestBroadcastNodeAccounting(t *testing.T) {
	// p=4, g=2, root=0: ring hops 0→1 (intra), 1→2 (inter), 2→3 (intra).
	data := bcastBuffers(4, 3, 0)
	st, err := Broadcast(data, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.IntraMessages != 2 || st.InterMessages != 1 {
		t.Fatalf("intra/inter = %d/%d, want 2/1", st.IntraMessages, st.InterMessages)
	}
}

func TestBroadcastErrors(t *testing.T) {
	if _, err := Broadcast(nil, 0, 1); err == nil {
		t.Fatal("no ranks must error")
	}
	if _, err := Broadcast([][]float64{{1}, {2, 3}}, 0, 1); err == nil {
		t.Fatal("ragged buffers must error")
	}
	if _, err := Broadcast([][]float64{{1}, {2}}, 2, 1); err == nil {
		t.Fatal("out-of-range root must error")
	}
}

// TestBroadcastGuarded: a failing guard aborts before any byte moves, so
// a retry starts from pristine buffers; a nil guard checks nothing.
func TestBroadcastGuarded(t *testing.T) {
	boom := errors.New("injected")
	data := bcastBuffers(3, 2, 0)
	if _, err := BroadcastGuarded(func() error { return boom }, data, 0, 1); !errors.Is(err, boom) {
		t.Fatalf("guard error not propagated: %v", err)
	}
	for r := 1; r < 3; r++ {
		for i, v := range data[r] {
			if v != -1 {
				t.Fatalf("guard failure mutated rank %d elem %d: %v", r, i, v)
			}
		}
	}
	if _, err := BroadcastGuarded(nil, data, 0, 1); err != nil {
		t.Fatal(err)
	}
	if data[2][1] != float64(1) {
		t.Fatalf("retry after guard failure did not complete: %v", data[2])
	}
}

package comm

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestGuardedAbortsBeforeMutation: a failing guard aborts the collective
// with every buffer untouched — the property that makes retrying guarded
// collectives bit-safe, including the in-place ring AllReduce.
func TestGuardedAbortsBeforeMutation(t *testing.T) {
	boom := errors.New("boom")
	fail := Guard(func() error { return boom })

	data := randRanks(1, 4, 8)
	snap := cloneRanks(data)
	if _, err := RingAllReduceChunkGuarded(fail, data, 2, RowRange{Lo: 0, Hi: 8}); !errors.Is(err, boom) {
		t.Fatalf("guard error not surfaced: %v", err)
	}
	for r := range data {
		for i := range data[r] {
			if data[r][i] != snap[r][i] {
				t.Fatalf("rank %d elem %d mutated despite guard abort", r, i)
			}
		}
	}

	const p, rows, width = 4, 2, 3
	dims := BlockDims{Rows: rows, Width: width}
	b := dims.Elems()
	a2a := randRanks(2, p, p*b)
	out := make([][]float64, p)
	for r := range out {
		out[r] = make([]float64, p*b)
	}
	if _, err := AlltoAllRowsGuarded(fail, A2ADirect, a2a, out, 2, dims, RowRange{Lo: 0, Hi: rows}); !errors.Is(err, boom) {
		t.Fatalf("A2A guard error not surfaced: %v", err)
	}
	for r := range out {
		for i := range out[r] {
			if out[r][i] != 0 {
				t.Fatal("A2A out buffer written despite guard abort")
			}
		}
	}
}

// TestGuardedNilAndPass: nil guards and passing guards are transparent —
// the guarded entry points produce the exact bytes of the unguarded ones.
func TestGuardedNilAndPass(t *testing.T) {
	pass := Guard(func() error { return nil })
	const p, rows, width = 4, 2, 3
	dims := BlockDims{Rows: rows, Width: width}
	b := dims.Elems()
	rr := RowRange{Lo: 0, Hi: rows}

	agWant := make([][]float64, p)
	agData := randRanks(3, p, b)
	for r := range agWant {
		agWant[r] = make([]float64, p*b)
	}
	if _, err := AllGatherRows(agData, agWant, 2, dims, rr); err != nil {
		t.Fatal(err)
	}
	for _, g := range []Guard{nil, pass} {
		got := make([][]float64, p)
		for r := range got {
			got[r] = make([]float64, p*b)
		}
		if _, err := AllGatherRowsGuarded(g, agData, got, 2, dims, rr); err != nil {
			t.Fatal(err)
		}
		for r := range got {
			for i := range got[r] {
				if got[r][i] != agWant[r][i] {
					t.Fatalf("guarded AllGather diverged at rank %d elem %d", r, i)
				}
			}
		}
	}

	rsData := randRanks(5, p, p*b)
	rsWant := make([][]float64, p)
	rsGot := make([][]float64, p)
	for r := 0; r < p; r++ {
		rsWant[r] = make([]float64, b)
		rsGot[r] = make([]float64, b)
	}
	if _, err := ReduceScatterRows(rsData, rsWant, 2, dims, rr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceScatterRowsGuarded(pass, rsData, rsGot, 2, dims, rr); err != nil {
		t.Fatal(err)
	}
	for r := range rsGot {
		for i := range rsGot[r] {
			if rsGot[r][i] != rsWant[r][i] {
				t.Fatalf("guarded ReduceScatter diverged at rank %d elem %d", r, i)
			}
		}
	}
}

// TestGuardFromFaultPlan: a fault.Plan guard composes with the guarded
// collectives — transient until the cap, then clean.
func TestGuardFromFaultPlan(t *testing.T) {
	fp := fault.New(fault.Spec{Seed: 5, CollectiveProb: 1, MaxTransientsPerTask: 1})
	g := Guard(fp.Guard("intra", "AllGather", 0))
	data := randRanks(4, 4, 8)
	if _, err := RingAllReduceChunkGuarded(g, data, 2, RowRange{Lo: 0, Hi: 8}); !fault.IsTransient(err) {
		t.Fatalf("first attempt not transient: %v", err)
	}
	if _, err := RingAllReduceChunkGuarded(g, data, 2, RowRange{Lo: 0, Hi: 8}); err != nil {
		t.Fatalf("retry past cap failed: %v", err)
	}
}

package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randWorld(r *xrand.RNG, p, n int) [][]float64 {
	data := make([][]float64, p)
	for i := range data {
		data[i] = make([]float64, n)
		for j := range data[i] {
			data[i][j] = r.NormFloat64()
		}
	}
	return data
}

func cloneWorld(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for i := range data {
		out[i] = append([]float64(nil), data[i]...)
	}
	return out
}

func TestRingAllReduceEqualsSum(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := 2 + r.Intn(7)
		n := 1 + r.Intn(40)
		data := randWorld(r, p, n)
		want := make([]float64, n)
		for _, d := range data {
			for j, v := range d {
				want[j] += v
			}
		}
		if _, err := RingAllReduce(data, 0); err != nil {
			return false
		}
		for _, d := range data {
			for j := range d {
				if math.Abs(d[j]-want[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllReduceSingleRank(t *testing.T) {
	data := [][]float64{{1, 2, 3}}
	st, err := RingAllReduce(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.InterMessages+st.IntraMessages != 0 {
		t.Fatal("single rank should not communicate")
	}
}

func TestRingAllReduceVolume(t *testing.T) {
	// Ring allreduce moves ~2(p-1)/p · n per rank; total ≈ 2(p-1)·n.
	p, n := 4, 64
	r := xrand.New(1)
	data := randWorld(r, p, n)
	st, err := RingAllReduce(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := st.InterVolume + st.IntraVolume
	want := float64(2 * (p - 1) * n)
	if math.Abs(total-want) > float64(2*p*p) { // chunk rounding slack
		t.Fatalf("total volume %v, want ~%v", total, want)
	}
}

func TestRingAllGather(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := 2 + r.Intn(7)
		n := 1 + r.Intn(20)
		data := randWorld(r, p, n)
		out, _, err := RingAllGather(data, 0)
		if err != nil {
			return false
		}
		for rr := 0; rr < p; rr++ {
			for s := 0; s < p; s++ {
				for j := 0; j < n; j++ {
					if out[rr][s*n+j] != data[s][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingReduceScatter(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := 2 + r.Intn(7)
		seg := 1 + r.Intn(10)
		n := p * seg
		data := randWorld(r, p, n)
		orig := cloneWorld(data)
		out, _, err := RingReduceScatter(data, 0)
		if err != nil {
			return false
		}
		for rr := 0; rr < p; rr++ {
			for j := 0; j < seg; j++ {
				want := 0.0
				for s := 0; s < p; s++ {
					want += orig[s][rr*seg+j]
				}
				if math.Abs(out[rr][j]-want) > 1e-9 {
					return false
				}
			}
		}
		// Inputs must be preserved.
		for rr := range data {
			for j := range data[rr] {
				if data[rr][j] != orig[rr][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterRejectsIndivisible(t *testing.T) {
	if _, _, err := RingReduceScatter(randWorld(xrand.New(1), 3, 4), 0); err == nil {
		t.Fatal("expected error for 4 elements over 3 ranks")
	}
}

func TestAllGatherReduceScatterDuality(t *testing.T) {
	// ReduceScatter(AllGather(x)) over identical inputs recovers p·x.
	r := xrand.New(5)
	p, n := 4, 8
	data := randWorld(r, p, n)
	gathered, _, err := RingAllGather(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := RingReduceScatter(gathered, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rr := 0; rr < p; rr++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for s := 0; s < p; s++ {
				want += gathered[s][rr*n+j]
			}
			if math.Abs(out[rr][j]-want) > 1e-9 {
				t.Fatalf("duality broken at rank %d elem %d", rr, j)
			}
		}
	}
}

func TestErrorsOnRaggedWorld(t *testing.T) {
	data := [][]float64{{1, 2}, {1}}
	if _, err := RingAllReduce(data, 0); err == nil {
		t.Fatal("expected error for ragged buffers")
	}
	if _, _, err := RingAllGather(data, 0); err == nil {
		t.Fatal("expected error for ragged buffers")
	}
}

func TestEmptyWorld(t *testing.T) {
	if _, err := RingAllReduce(nil, 0); err == nil {
		t.Fatal("expected error for no ranks")
	}
}

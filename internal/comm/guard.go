package comm

// Guard is a fault-injection hook invoked by the *Guarded collective entry
// points immediately before the collective moves its first byte. A non-nil
// error aborts the call with every buffer untouched, so a transient guard
// failure may be retried bit-safely — including for the in-place ring
// AllReduce, which could not survive a mid-flight replay. A nil Guard is
// always allowed and checks nothing.
type Guard func() error

// AlltoAllRowsGuarded is AlltoAllRows behind a pre-transfer Guard.
func AlltoAllRowsGuarded(g Guard, algo A2AAlgo, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return AlltoAllRows(algo, data, out, gpusPerNode, dims, rr)
}

// AllGatherRowsGuarded is AllGatherRows behind a pre-transfer Guard.
func AllGatherRowsGuarded(g Guard, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return AllGatherRows(data, out, gpusPerNode, dims, rr)
}

// ReduceScatterRowsGuarded is ReduceScatterRows behind a pre-transfer Guard.
func ReduceScatterRowsGuarded(g Guard, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return ReduceScatterRows(data, out, gpusPerNode, dims, rr)
}

// RingAllReduceChunkGuarded is RingAllReduceChunk behind a pre-transfer
// Guard. The guard runs before the first in-place accumulation, so a guard
// failure leaves data exactly as passed.
func RingAllReduceChunkGuarded(g Guard, data [][]float64, gpusPerNode int, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return RingAllReduceChunk(data, gpusPerNode, rr)
}

// GroupAlltoAllRowsGuarded is GroupAlltoAllRows behind a pre-transfer Guard.
func GroupAlltoAllRowsGuarded(g Guard, algo A2AAlgo, group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return GroupAlltoAllRows(algo, group, data, out, gpusPerNode, dims, rr)
}

// GroupAllGatherRowsGuarded is GroupAllGatherRows behind a pre-transfer
// Guard.
func GroupAllGatherRowsGuarded(g Guard, group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return GroupAllGatherRows(group, data, out, gpusPerNode, dims, rr)
}

// GroupReduceScatterRowsGuarded is GroupReduceScatterRows behind a
// pre-transfer Guard.
func GroupReduceScatterRowsGuarded(g Guard, group []int, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return GroupReduceScatterRows(group, data, out, gpusPerNode, dims, rr)
}

// RingAllGatherIntoGuarded is RingAllGatherInto behind a pre-transfer
// Guard. The guard runs before any out buffer is written, so a guard
// failure leaves the staging tensors untouched for a bit-safe retry.
func RingAllGatherIntoGuarded(g Guard, out, data [][]float64, gpusPerNode int) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return RingAllGatherInto(out, data, gpusPerNode)
}

// RingReduceScatterIntoGuarded is RingReduceScatterInto behind a
// pre-transfer Guard.
func RingReduceScatterIntoGuarded(g Guard, out, data [][]float64, gpusPerNode int) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return RingReduceScatterInto(out, data, gpusPerNode)
}

// BroadcastGuarded is Broadcast behind a pre-transfer Guard. The guard
// runs before the first ring copy, so a guard failure leaves every
// buffer untouched and the broadcast may be retried bit-safely — the
// contract the recovery path's weight re-placement relies on.
func BroadcastGuarded(g Guard, data [][]float64, root, gpusPerNode int) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return Broadcast(data, root, gpusPerNode)
}

// GroupRingAllGatherIntoGuarded is GroupRingAllGatherInto behind a
// pre-transfer Guard.
func GroupRingAllGatherIntoGuarded(g Guard, group []int, out, data [][]float64, gpusPerNode int) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return GroupRingAllGatherInto(group, out, data, gpusPerNode)
}

// GroupRingReduceScatterIntoGuarded is GroupRingReduceScatterInto behind a
// pre-transfer Guard.
func GroupRingReduceScatterIntoGuarded(g Guard, group []int, out, data [][]float64, gpusPerNode int) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return GroupRingReduceScatterInto(group, out, data, gpusPerNode)
}

package comm

// Guard is a fault-injection hook invoked by the *Guarded collective entry
// points immediately before the collective moves its first byte. A non-nil
// error aborts the call with every buffer untouched, so a transient guard
// failure may be retried bit-safely — including for the in-place ring
// AllReduce, which could not survive a mid-flight replay. A nil Guard is
// always allowed and checks nothing.
type Guard func() error

// AlltoAllRowsGuarded is AlltoAllRows behind a pre-transfer Guard.
func AlltoAllRowsGuarded(g Guard, algo A2AAlgo, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return AlltoAllRows(algo, data, out, gpusPerNode, dims, rr)
}

// AllGatherRowsGuarded is AllGatherRows behind a pre-transfer Guard.
func AllGatherRowsGuarded(g Guard, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return AllGatherRows(data, out, gpusPerNode, dims, rr)
}

// ReduceScatterRowsGuarded is ReduceScatterRows behind a pre-transfer Guard.
func ReduceScatterRowsGuarded(g Guard, data, out [][]float64, gpusPerNode int, dims BlockDims, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return ReduceScatterRows(data, out, gpusPerNode, dims, rr)
}

// RingAllReduceChunkGuarded is RingAllReduceChunk behind a pre-transfer
// Guard. The guard runs before the first in-place accumulation, so a guard
// failure leaves data exactly as passed.
func RingAllReduceChunkGuarded(g Guard, data [][]float64, gpusPerNode int, rr RowRange) (Stats, error) {
	if g != nil {
		if err := g(); err != nil {
			return Stats{}, err
		}
	}
	return RingAllReduceChunk(data, gpusPerNode, rr)
}

package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestClassification: typed errors keep their class through wrapping and
// errors.Join, which is how the runtime sees them.
func TestClassification(t *testing.T) {
	tr := NewTransient(2, "D[0]", "flaky link")
	pe := NewPermanent(3, "E0[3]", "rank died")
	if !IsTransient(tr) || IsPermanent(tr) {
		t.Fatal("transient misclassified")
	}
	if !IsPermanent(pe) || IsTransient(pe) {
		t.Fatal("permanent misclassified")
	}
	wrapped := fmt.Errorf("runtime: task %q: %w", "E0[3]", pe)
	joined := errors.Join(errors.New("unrelated"), wrapped)
	if rank, ok := PermanentRank(joined); !ok || rank != 3 {
		t.Fatalf("PermanentRank(joined) = %d,%v; want 3,true", rank, ok)
	}
	if rank, ok := PermanentRank(tr); ok || rank != -1 {
		t.Fatalf("PermanentRank(transient) = %d,%v; want -1,false", rank, ok)
	}
	if _, ok := PermanentRank(errors.New("plain")); ok {
		t.Fatal("plain error reported a permanent rank")
	}
}

// TestStreamRank: per-rank streams attribute, shared streams do not.
func TestStreamRank(t *testing.T) {
	cases := map[string]int{
		"compute:3": 3, "intra:0": 0, "inter": -1, "intra": -1, "st:12": 12, "odd:x": -1, "": -1,
	}
	for s, want := range cases {
		if got := StreamRank(s); got != want {
			t.Errorf("StreamRank(%q) = %d, want %d", s, got, want)
		}
	}
}

// TestCheckDeterministic: the same spec produces the same decisions for
// the same (task, attempt), independent of call order — the property that
// keeps chaos runs reproducible under parallel streams.
func TestCheckDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, TransientProb: 0.3, StragglerProb: 0.2}
	a, b := New(spec), New(spec)
	// Query b in reverse order to prove order-independence.
	type key struct{ id, attempt int }
	got := map[key]Decision{}
	for id := 0; id < 50; id++ {
		for at := 0; at < 3; at++ {
			got[key{id, at}] = a.Check("intra:1", "AlltoAll", "D", id, at)
		}
	}
	for id := 49; id >= 0; id-- {
		for at := 2; at >= 0; at-- {
			d := b.Check("intra:1", "AlltoAll", "D", id, at)
			w := got[key{id, at}]
			if (d.Err == nil) != (w.Err == nil) || d.Delay != w.Delay {
				t.Fatalf("decision for (%d,%d) differs across plans", id, at)
			}
		}
	}
}

// TestTransientCap: with probability 1 and a cap of 1, every task fails
// exactly its first attempt and passes the second — the deterministic
// building block the retry tests lean on.
func TestTransientCap(t *testing.T) {
	p := New(Spec{Seed: 1, TransientProb: 1, MaxTransientsPerTask: 1})
	for id := 0; id < 10; id++ {
		if d := p.Check("inter", "AlltoAll", "D", id, 0); !IsTransient(d.Err) {
			t.Fatalf("task %d attempt 0 not failed", id)
		}
		if d := p.Check("inter", "AlltoAll", "D", id, 1); d.Err != nil {
			t.Fatalf("task %d attempt 1 failed past the cap: %v", id, d.Err)
		}
	}
}

// TestRates: the realized injection rate tracks the configured
// probability, and kind/stream overrides win when higher.
func TestRates(t *testing.T) {
	p := New(Spec{
		Seed:          42,
		TransientProb: 0.05,
		KindProb:      map[string]float64{"AlltoAll": 0.5},
	})
	hits := func(kind string) int {
		n := 0
		for id := 0; id < 2000; id++ {
			if p.Check("inter", kind, "T", id, 0).Err != nil {
				n++
			}
		}
		return n
	}
	base, boosted := hits("Experts"), hits("AlltoAll")
	if base < 50 || base > 200 {
		t.Fatalf("base rate 0.05 realized %d/2000", base)
	}
	if boosted < 800 || boosted > 1200 {
		t.Fatalf("kind-boosted rate 0.5 realized %d/2000", boosted)
	}
}

// TestDown: the rank-down trigger fires only on the configured rank's
// streams (and kind), beats every other decision, and never fires for
// other ranks.
func TestDown(t *testing.T) {
	p := New(Spec{Seed: 3, Down: &Down{Rank: 2, Kind: "Experts"}})
	if d := p.Check("compute:2", "Experts", "E0[2]", 7, 0); !IsPermanent(d.Err) {
		t.Fatalf("down rank did not fail: %v", d.Err)
	} else if r, _ := PermanentRank(d.Err); r != 2 {
		t.Fatalf("down rank attributed to %d", r)
	}
	if d := p.Check("compute:1", "Experts", "E0[1]", 7, 0); d.Err != nil {
		t.Fatalf("healthy rank failed: %v", d.Err)
	}
	if d := p.Check("compute:2", "Pack", "U0[2]", 7, 0); d.Err != nil {
		t.Fatalf("down trigger ignored the kind filter: %v", d.Err)
	}
}

// TestNilAndZero: a nil plan and a zero spec both inject nothing, and the
// zero-delay straggler default is applied.
func TestNilAndZero(t *testing.T) {
	var nilPlan *Plan
	if d := nilPlan.Check("inter", "AlltoAll", "D", 0, 0); d.Err != nil || d.Delay != 0 {
		t.Fatal("nil plan injected")
	}
	if g := nilPlan.Guard("inter", "AlltoAll", 0); g != nil {
		t.Fatal("nil plan produced a guard")
	}
	p := New(Spec{})
	for id := 0; id < 100; id++ {
		if d := p.Check("compute:0", "Experts", "E", id, 0); d.Err != nil || d.Delay != 0 {
			t.Fatal("zero spec injected")
		}
	}
	if New(Spec{StragglerProb: 1}).Spec().StragglerDelay != 200*time.Microsecond {
		t.Fatal("zero straggler delay not defaulted")
	}
}

// TestGuard: guards inject at the collective rate, count their own
// attempts so a capped guard deterministically passes, and distinct opIDs
// see independent decisions.
func TestGuard(t *testing.T) {
	p := New(Spec{Seed: 9, CollectiveProb: 1, MaxTransientsPerTask: 2})
	g := p.Guard("intra", "AllGather", 4)
	if err := g(); !IsTransient(err) {
		t.Fatalf("attempt 0 not failed: %v", err)
	}
	if err := g(); !IsTransient(err) {
		t.Fatalf("attempt 1 not failed: %v", err)
	}
	if err := g(); err != nil {
		t.Fatalf("attempt 2 failed past the cap: %v", err)
	}
	if p2 := New(Spec{Seed: 9}); p2.Guard("intra", "AllGather", 4) != nil {
		t.Fatal("guard produced with CollectiveProb=0")
	}
}

// TestWithoutDown: the recovery path strips only the permanent rank-down
// trigger; transient and straggler injection carry over, and the original
// plan is untouched. Nil and down-free plans pass through unchanged.
func TestWithoutDown(t *testing.T) {
	p := New(Spec{Seed: 3, TransientProb: 0.5, StragglerProb: 0.25,
		Down: &Down{Rank: 1, Kind: "Experts"}})
	q := p.WithoutDown()
	if q == p {
		t.Fatal("WithoutDown returned the same plan despite a Down")
	}
	if p.Spec().Down == nil {
		t.Fatal("WithoutDown mutated the original plan")
	}
	if s := q.Spec(); s.Down != nil || s.TransientProb != 0.5 || s.StragglerProb != 0.25 || s.Seed != 3 {
		t.Fatalf("stripped spec = %+v", s)
	}
	if d := q.Check("compute:1", "Experts", "E", 0, 0); IsPermanent(d.Err) {
		t.Fatal("stripped plan still downs the rank")
	}
	if d := p.Check("compute:1", "Experts", "E", 0, 0); !IsPermanent(d.Err) {
		t.Fatal("original plan lost its Down")
	}
	var nilPlan *Plan
	if nilPlan.WithoutDown() != nil {
		t.Fatal("nil plan must stay nil")
	}
	noDown := New(Spec{Seed: 1})
	if noDown.WithoutDown() != noDown {
		t.Fatal("down-free plan must pass through unchanged")
	}
}

// Package fault is a deterministic, seeded fault injector for the stream
// runtime — the chaos-testing half of making the executable pipelines
// production-shaped. Real MoE training fleets treat stragglers, flaky
// links and dead workers as first-class events (FastMoE's shadowing,
// FlexMoE's dynamic placement); this package lets the in-process runtime
// rehearse exactly those events, reproducibly.
//
// Two design rules keep injection compatible with the repo's bit-identity
// contract:
//
//   - Faults fire BEFORE the faulted operation moves a single byte. A
//     Transient error therefore always leaves buffers untouched, so a
//     retry re-runs the operation from clean state and the final result
//     is byte-identical to a fault-free run. (This matters most for the
//     ring AllReduce, which accumulates in place and would not survive a
//     mid-flight replay.)
//
//   - Every decision is a pure function of (seed, task id, attempt) — no
//     wall clock, no RNG stream shared across goroutines — so the same
//     Spec produces the same faults no matter how the streams interleave,
//     under the parallel executor and the sequential baseline alike.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Class separates recoverable from fatal injected failures.
type Class int

const (
	// ClassTransient marks a failure injected before any buffer mutation:
	// retrying the failed operation is always safe and bit-exact.
	ClassTransient Class = iota
	// ClassPermanent marks a rank-down event: no retry can help; the
	// executor cancels cooperatively and the world flips into degraded
	// mode.
	ClassPermanent
)

func (c Class) String() string {
	if c == ClassPermanent {
		return "permanent"
	}
	return "transient"
}

// Error is a typed injected failure. The runtime classifies errors by
// unwrapping to *Error, so injected faults survive fmt.Errorf("%w")
// wrapping and errors.Join aggregation.
type Error struct {
	Class Class
	Rank  int    // failing rank, -1 when not attributable to one rank
	Op    string // label of the faulted task or collective
	Msg   string
}

// Error implements error.
func (e *Error) Error() string {
	r := "?"
	if e.Rank >= 0 {
		r = strconv.Itoa(e.Rank)
	}
	return fmt.Sprintf("fault: %s failure in %q (rank %s): %s", e.Class, e.Op, r, e.Msg)
}

// NewTransient builds a retry-safe injected failure attributed to rank
// (-1 when unattributable).
func NewTransient(rank int, op, msg string) error {
	return &Error{Class: ClassTransient, Rank: rank, Op: op, Msg: msg}
}

// NewPermanent builds a rank-down failure.
func NewPermanent(rank int, op, msg string) error {
	return &Error{Class: ClassPermanent, Rank: rank, Op: op, Msg: msg}
}

// IsTransient reports whether err carries (possibly wrapped) a transient
// injected fault. Transient faults fire before any buffer mutation, so
// the failed operation may be retried bit-safely.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == ClassTransient
}

// IsPermanent reports whether err carries a permanent (rank-down) fault.
func IsPermanent(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == ClassPermanent
}

// PermanentRank extracts the failed rank of a permanent fault wrapped
// anywhere inside err (including errors.Join trees); ok is false when err
// carries no permanent fault.
func PermanentRank(err error) (rank int, ok bool) {
	var fe *Error
	if errors.As(err, &fe) && fe.Class == ClassPermanent {
		return fe.Rank, true
	}
	return -1, false
}

// StreamRank extracts the rank a stream name is pinned to: the runtime's
// per-rank streams are named "<role>:<rank>" ("compute:3", "intra:0"), so
// the suffix is the rank. Shared streams ("inter", the collective "intra"
// chain) return -1.
func StreamRank(stream string) int {
	i := strings.LastIndexByte(stream, ':')
	if i < 0 {
		return -1
	}
	r, err := strconv.Atoi(stream[i+1:])
	if err != nil || r < 0 {
		return -1
	}
	return r
}

// Down describes a permanent rank-down event: the first task that matches
// (a stream of Rank, and Kind when non-empty) fails permanently, and every
// later task on that rank's streams fails too — the rank is gone.
type Down struct {
	Rank int
	// Kind restricts the trigger to one task kind ("Experts", "AlltoAll",
	// ...); empty means any task on the rank's streams. Kinds that run on
	// a single stream ("Experts" → "compute:<rank>") make the failing task
	// fully deterministic; broader triggers still down the same rank, but
	// which of its streams reports first depends on timing.
	Kind string
}

// Spec configures a deterministic injector. The zero value injects
// nothing; probabilities are clamped to [0, 1] by New.
type Spec struct {
	Seed uint64

	// TransientProb is the per-attempt probability that a task fails with
	// a retry-safe transient error before its body runs. KindProb and
	// StreamProb raise it for specific task kinds / streams (the highest
	// applicable rate wins), so chaos can target, say, only the AlltoAll
	// chain or only one rank's streams.
	TransientProb float64
	KindProb      map[string]float64
	StreamProb    map[string]float64

	// MaxTransientsPerTask caps injection by attempt index: attempts at or
	// beyond the cap are never failed, so a retried task deterministically
	// passes once it has absorbed the cap. 0 means uncapped (a task can
	// still exhaust its retry budget and fail the plan).
	MaxTransientsPerTask int

	// StragglerProb delays a task attempt by StragglerDelay before it
	// runs — the slow-rank tail the paper's co-scheduling argument is
	// really about. A zero delay defaults to 200µs.
	StragglerProb  float64
	StragglerDelay time.Duration

	// CollectiveProb is the transient-failure rate of the in-collective
	// Guard hook (comm.*Guarded): the failure fires inside the collective
	// call, immediately before its first byte moves. It is independent of
	// TransientProb so task-level and comm-level injection compose.
	CollectiveProb float64

	// Down, when non-nil, permanently fails one rank mid-step.
	Down *Down
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Plan is a compiled injector. A nil *Plan injects nothing, so callers
// thread it unconditionally. Plans are stateless and goroutine-safe:
// every decision is a pure function of the spec and the call arguments.
type Plan struct {
	spec Spec
}

// New compiles a Spec, clamping probabilities into [0, 1].
func New(s Spec) *Plan {
	s.TransientProb = clamp01(s.TransientProb)
	s.StragglerProb = clamp01(s.StragglerProb)
	s.CollectiveProb = clamp01(s.CollectiveProb)
	for k, v := range s.KindProb {
		s.KindProb[k] = clamp01(v)
	}
	for k, v := range s.StreamProb {
		s.StreamProb[k] = clamp01(v)
	}
	if s.StragglerDelay <= 0 {
		s.StragglerDelay = 200 * time.Microsecond
	}
	return &Plan{spec: s}
}

// Spec returns the compiled specification.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// WithoutDown returns a plan identical to p with the permanent rank-down
// trigger removed — the injector the recovered world keeps running under
// after elastic recovery: the dead rank was re-placed, so replaying its
// down event against the rebuilt topology would re-kill a healthy rank.
// Transient, straggler and in-collective injection carry over unchanged.
// Safe on a nil Plan (stays nil), and a no-op when no Down is configured.
func (p *Plan) WithoutDown() *Plan {
	if p == nil || p.spec.Down == nil {
		return p
	}
	s := p.spec
	s.Down = nil
	return &Plan{spec: s}
}

// Decision is the injector's verdict for one task attempt, produced
// before the task body runs: an optional straggler delay, then an
// optional injected error.
type Decision struct {
	Delay time.Duration
	Err   error
}

// Check decides the fate of one task attempt. attempt counts from 0 and
// increments across retries of the same task, so a capped spec eventually
// lets every task through. Safe on a nil Plan.
func (p *Plan) Check(stream, kind, label string, taskID, attempt int) Decision {
	if p == nil {
		return Decision{}
	}
	var d Decision
	s := &p.spec
	rank := StreamRank(stream)
	if s.Down != nil && rank == s.Down.Rank && (s.Down.Kind == "" || s.Down.Kind == kind) {
		d.Err = NewPermanent(rank, label, "injected rank-down")
		return d
	}
	if s.StragglerProb > 0 && p.roll(saltStraggler, taskID, attempt) < s.StragglerProb {
		d.Delay = s.StragglerDelay
	}
	prob := s.TransientProb
	if v, ok := s.KindProb[kind]; ok && v > prob {
		prob = v
	}
	if v, ok := s.StreamProb[stream]; ok && v > prob {
		prob = v
	}
	if prob > 0 && p.underCap(attempt) && p.roll(saltTransient, taskID, attempt) < prob {
		d.Err = NewTransient(rank, label, "injected transient failure")
	}
	return d
}

// Guard returns a comm-level guard for one collective operation, or nil
// when in-collective injection is off. The guard is invoked by the
// comm.*Guarded entry points immediately before the collective moves its
// first byte; a returned transient error therefore aborts the collective
// with every buffer untouched, and a retry replays it bit-safely. Each
// invocation counts as one attempt of operation opID (callers must create
// one guard per planned collective — the closure carries the attempt
// counter and is driven from that collective's single stream goroutine,
// so it needs no locking).
func (p *Plan) Guard(stream, kind string, opID int) func() error {
	if p == nil || p.spec.CollectiveProb <= 0 {
		return nil
	}
	attempt := 0
	return func() error {
		a := attempt
		attempt++
		if p.underCap(a) && p.roll(saltGuard, opID, a) < p.spec.CollectiveProb {
			return NewTransient(StreamRank(stream), kind, "injected collective failure")
		}
		return nil
	}
}

func (p *Plan) underCap(attempt int) bool {
	return p.spec.MaxTransientsPerTask <= 0 || attempt < p.spec.MaxTransientsPerTask
}

// Decision salts keep the straggler, transient and guard decision spaces
// independent for one (taskID, attempt).
const (
	saltTransient = 0x7472616E7369656E // "transien"
	saltStraggler = 0x7374726167676C65 // "straggle"
	saltGuard     = 0x636F6C6C67756172 // "collguar"
)

// roll maps (seed, salt, id, attempt) to a uniform float in [0, 1) via a
// splitmix64 finalizer — deterministic, order-free, allocation-free.
func (p *Plan) roll(salt uint64, id, attempt int) float64 {
	x := p.spec.Seed ^ salt
	x ^= (uint64(id) + 1) * 0x9E3779B97F4A7C15
	x ^= (uint64(attempt) + 1) * 0xD1B54A32D192ED03
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

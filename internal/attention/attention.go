// Package attention implements the multi-head self-attention and layer
// normalization that surround every MoE layer in the paper's models
// (Fig. 1: "Attention → MoE"). Like internal/moe, everything runs for real
// on CPU tensors with exact manual backward passes, so the full
// transformer block of internal/transformer trains end to end.
package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Param mirrors moe.Param: a trainable weight and its gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// MultiHead is standard multi-head self-attention: four square
// projections (Q, K, V, output) and scaled dot-product attention per head,
// optionally causally masked.
type MultiHead struct {
	m, heads, dh   int
	causal         bool
	wq, wk, wv, wo *Param
}

// Cache holds the forward intermediates Backward needs.
type Cache struct {
	x       *tensor.Tensor // (B·L, M)
	b, l    int
	q, k, v *tensor.Tensor   // (B·L, M)
	att     []*tensor.Tensor // per (batch, head): (L, L) softmax weights
	ctx     *tensor.Tensor   // (B·L, M) concatenated head outputs
}

// NewMultiHead constructs the module. m must be divisible by heads.
func NewMultiHead(m, heads int, causal bool, rng *xrand.RNG) (*MultiHead, error) {
	if m <= 0 || heads <= 0 || m%heads != 0 {
		return nil, fmt.Errorf("attention: M=%d must be positive and divisible by heads=%d", m, heads)
	}
	return &MultiHead{
		m: m, heads: heads, dh: m / heads, causal: causal,
		wq: newParam("attn.wq", tensor.Xavier(rng, m, m)),
		wk: newParam("attn.wk", tensor.Xavier(rng, m, m)),
		wv: newParam("attn.wv", tensor.Xavier(rng, m, m)),
		wo: newParam("attn.wo", tensor.Xavier(rng, m, m)),
	}, nil
}

// Params returns the four projection matrices.
func (a *MultiHead) Params() []*Param { return []*Param{a.wq, a.wk, a.wv, a.wo} }

// ZeroGrad clears the gradient accumulators.
func (a *MultiHead) ZeroGrad() {
	for _, p := range a.Params() {
		p.G.Zero()
	}
}

// FwdMACs returns the forward multiply-accumulate count for the given
// batch shape: four projections plus the two (L×L) attention GEMMs.
func (a *MultiHead) FwdMACs(b, l int) float64 {
	n := float64(b * l)
	proj := 4 * n * float64(a.m) * float64(a.m)
	scores := 2 * float64(b) * float64(l) * float64(l) * float64(a.m)
	return proj + scores
}

// headSlice gathers rows of a (B·L, M) tensor for batch bi restricted to
// head h into a pooled (L, dh) tensor (copied; heads are strided in
// memory). Callers Put the result when done with it.
func (a *MultiHead) headSlice(t *tensor.Tensor, bi, h, l int) *tensor.Tensor {
	out := tensor.GetUninit(l, a.dh)
	for i := 0; i < l; i++ {
		src := t.Row(bi*l + i)[h*a.dh : (h+1)*a.dh]
		copy(out.Row(i), src)
	}
	return out
}

func (a *MultiHead) headScatter(dst *tensor.Tensor, src *tensor.Tensor, bi, h, l int) {
	for i := 0; i < l; i++ {
		copy(dst.Row(bi*l + i)[h*a.dh:(h+1)*a.dh], src.Row(i))
	}
}

// Forward runs attention over x shaped (B, L, M) and returns (B, L, M).
func (a *MultiHead) Forward(x *tensor.Tensor) (*tensor.Tensor, *Cache, error) {
	if x.Rank() != 3 || x.Dim(2) != a.m {
		return nil, nil, fmt.Errorf("attention: input must be (B, L, %d), got %v", a.m, x.Shape())
	}
	b, l := x.Dim(0), x.Dim(1)
	flat := x.Reshape(b*l, a.m)
	q := tensor.MatMul(flat, a.wq.W)
	k := tensor.MatMul(flat, a.wk.W)
	v := tensor.MatMul(flat, a.wv.W)
	ctx := tensor.New(b*l, a.m)
	cache := &Cache{x: flat, b: b, l: l, q: q, k: k, v: v, ctx: ctx}
	cache.att = make([]*tensor.Tensor, b*a.heads)
	scale := 1 / math.Sqrt(float64(a.dh))
	// (batch, head) pairs are independent: each writes a disjoint column
	// stripe of disjoint row blocks of ctx, so they shard over the worker
	// pool with pooled transients.
	tensor.ParallelFor(b*a.heads, func(bh int) {
		bi, h := bh/a.heads, bh%a.heads
		qh := a.headSlice(q, bi, h, l)
		kh := a.headSlice(k, bi, h, l)
		vh := a.headSlice(v, bi, h, l)
		scores := tensor.GetUninit(l, l)
		tensor.MatMulT2Into(scores, qh, kh)
		tensor.ScaleInPlace(scores, scale)
		if a.causal {
			maskCausal(scores)
		}
		att := tensor.SoftmaxRows(scores)
		cache.att[bh] = att
		ctxh := tensor.GetUninit(l, a.dh)
		tensor.MatMulInto(ctxh, att, vh)
		a.headScatter(ctx, ctxh, bi, h, l)
		tensor.Put(ctxh)
		tensor.Put(scores)
		tensor.Put(vh)
		tensor.Put(kh)
		tensor.Put(qh)
	})
	out := tensor.MatMul(ctx, a.wo.W)
	return out.Reshape(b, l, a.m), cache, nil
}

func maskCausal(scores *tensor.Tensor) {
	l := scores.Dim(0)
	ninf := math.Inf(-1)
	for i := 0; i < l; i++ {
		row := scores.Row(i)
		for j := i + 1; j < l; j++ {
			row[j] = ninf
		}
	}
}

// Backward propagates dy (B, L, M), accumulating all projection gradients,
// and returns dx (B, L, M).
func (a *MultiHead) Backward(cache *Cache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	b, l := cache.b, cache.l
	if dy.Rank() != 3 || dy.Dim(0) != b || dy.Dim(1) != l || dy.Dim(2) != a.m {
		return nil, fmt.Errorf("attention: dy shape %v", dy.Shape())
	}
	dflat := dy.Reshape(b*l, a.m)
	// out = ctx @ Wo.
	tensor.AddInPlace(a.wo.G, tensor.MatMulT1(cache.ctx, dflat))
	dctx := tensor.MatMulT2(dflat, a.wo.W)

	dq := tensor.New(b*l, a.m)
	dk := tensor.New(b*l, a.m)
	dv := tensor.New(b*l, a.m)
	scale := 1 / math.Sqrt(float64(a.dh))
	tensor.ParallelFor(b*a.heads, func(bh int) {
		bi, h := bh/a.heads, bh%a.heads
		att := cache.att[bh]
		qh := a.headSlice(cache.q, bi, h, l)
		kh := a.headSlice(cache.k, bi, h, l)
		vh := a.headSlice(cache.v, bi, h, l)
		dctxh := a.headSlice(dctx, bi, h, l)
		// ctx_h = att @ v_h.
		dAtt := tensor.GetUninit(l, l)
		tensor.MatMulT2Into(dAtt, dctxh, vh)
		dvh := tensor.GetUninit(l, a.dh)
		tensor.MatMulT1Into(dvh, att, dctxh)
		// att = softmax(scores): row-wise jacobian.
		dScores := tensor.GetUninit(l, l)
		for i := 0; i < l; i++ {
			w := att.Row(i)
			dw := dAtt.Row(i)
			dot := 0.0
			for j := range w {
				dot += w[j] * dw[j]
			}
			ds := dScores.Row(i)
			for j := range w {
				ds[j] = w[j] * (dw[j] - dot)
			}
		}
		// scores = scale · q_h k_hᵀ (masked entries have zero att and
		// therefore zero dScores — no special handling needed).
		dqh := tensor.GetUninit(l, a.dh)
		tensor.MatMulInto(dqh, dScores, kh)
		tensor.ScaleInPlace(dqh, scale)
		dkh := tensor.GetUninit(l, a.dh)
		tensor.MatMulT1Into(dkh, dScores, qh)
		tensor.ScaleInPlace(dkh, scale)
		a.headScatter(dq, dqh, bi, h, l)
		a.headScatter(dk, dkh, bi, h, l)
		a.headScatter(dv, dvh, bi, h, l)
		for _, t := range []*tensor.Tensor{dkh, dqh, dScores, dvh, dAtt, dctxh, vh, kh, qh} {
			tensor.Put(t)
		}
	})
	tensor.AddInPlace(a.wq.G, tensor.MatMulT1(cache.x, dq))
	tensor.AddInPlace(a.wk.G, tensor.MatMulT1(cache.x, dk))
	tensor.AddInPlace(a.wv.G, tensor.MatMulT1(cache.x, dv))
	dx := tensor.MatMulT2(dq, a.wq.W)
	tensor.AddInPlace(dx, tensor.MatMulT2(dk, a.wk.W))
	tensor.AddInPlace(dx, tensor.MatMulT2(dv, a.wv.W))
	return dx.Reshape(b, l, a.m), nil
}

// LayerNorm normalizes the last dimension with learned gain and bias.
type LayerNorm struct {
	m     int
	eps   float64
	gamma *Param
	beta  *Param
}

// LNCache holds the normalization intermediates.
type LNCache struct {
	xhat *tensor.Tensor // normalized inputs, same shape flattened (N, M)
	ivar []float64      // 1/sqrt(var+eps) per row
	rows int
}

// NewLayerNorm constructs a LayerNorm over feature size m.
func NewLayerNorm(m int) *LayerNorm {
	gamma := tensor.New(m)
	gamma.Fill(1)
	return &LayerNorm{m: m, eps: 1e-5, gamma: newParam("ln.gamma", gamma), beta: newParam("ln.beta", tensor.New(m))}
}

// Params returns gamma and beta.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.gamma, ln.beta} }

// ZeroGrad clears the gradient accumulators.
func (ln *LayerNorm) ZeroGrad() {
	ln.gamma.G.Zero()
	ln.beta.G.Zero()
}

// Forward normalizes x over its last dimension, preserving shape.
func (ln *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, *LNCache, error) {
	if x.Dim(x.Rank()-1) != ln.m {
		return nil, nil, fmt.Errorf("layernorm: feature dim %d, want %d", x.Dim(x.Rank()-1), ln.m)
	}
	shape := x.Shape()
	flat := x.Reshape(-1, ln.m)
	n := flat.Dim(0)
	out := tensor.New(n, ln.m)
	cache := &LNCache{xhat: tensor.New(n, ln.m), ivar: make([]float64, n), rows: n}
	for i := 0; i < n; i++ {
		row := flat.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(ln.m)
		variance := 0.0
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(ln.m)
		iv := 1 / math.Sqrt(variance+ln.eps)
		cache.ivar[i] = iv
		xh := cache.xhat.Row(i)
		o := out.Row(i)
		gw, bw := ln.gamma.W.Data(), ln.beta.W.Data()
		for j, v := range row {
			xh[j] = (v - mean) * iv
			o[j] = xh[j]*gw[j] + bw[j]
		}
	}
	outShaped := out.Reshape(shape...)
	return outShaped, cache, nil
}

// Backward propagates dy through the normalization, accumulating
// gamma/beta gradients, and returns dx with dy's shape.
func (ln *LayerNorm) Backward(cache *LNCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	shape := dy.Shape()
	dflat := dy.Reshape(-1, ln.m)
	if dflat.Dim(0) != cache.rows {
		return nil, fmt.Errorf("layernorm: dy rows %d, cached %d", dflat.Dim(0), cache.rows)
	}
	dx := tensor.New(cache.rows, ln.m)
	mf := float64(ln.m)
	gg, bg, gw := ln.gamma.G.Data(), ln.beta.G.Data(), ln.gamma.W.Data()
	dxhatT := tensor.GetUninit(ln.m)
	dxhat := dxhatT.Data()
	for i := 0; i < cache.rows; i++ {
		dyRow := dflat.Row(i)
		xh := cache.xhat.Row(i)
		iv := cache.ivar[i]
		// dxhat = dy * gamma; standard layernorm backward:
		// dx = (1/m)·iv·(m·dxhat − Σdxhat − xhat·Σ(dxhat·xhat)).
		var sum1, sum2 float64
		for j, d := range dyRow {
			gg[j] += d * xh[j]
			bg[j] += d
			dxhat[j] = d * gw[j]
			sum1 += dxhat[j]
			sum2 += dxhat[j] * xh[j]
		}
		dst := dx.Row(i)
		for j := range dst {
			dst[j] = iv / mf * (mf*dxhat[j] - sum1 - xh[j]*sum2)
		}
	}
	tensor.Put(dxhatT)
	return dx.Reshape(shape...), nil
}

package attention

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func lossOf(y, r *tensor.Tensor) float64 { return tensor.Sum(tensor.Mul(y, r)) }

func TestMultiHeadShapes(t *testing.T) {
	rng := xrand.New(1)
	a, err := NewMultiHead(8, 2, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(rng, 1, 3, 5, 8)
	y, _, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 3 || y.Dim(1) != 5 || y.Dim(2) != 8 {
		t.Fatalf("output shape %v", y.Shape())
	}
}

func TestMultiHeadValidation(t *testing.T) {
	rng := xrand.New(2)
	if _, err := NewMultiHead(7, 2, false, rng); err == nil {
		t.Fatal("M not divisible by heads accepted")
	}
	a, _ := NewMultiHead(8, 2, false, rng)
	if _, _, err := a.Forward(tensor.New(3, 8)); err == nil {
		t.Fatal("rank-2 input accepted")
	}
	if _, _, err := a.Forward(tensor.New(2, 3, 6)); err == nil {
		t.Fatal("wrong feature size accepted")
	}
}

func TestAttentionRowsAreConvex(t *testing.T) {
	rng := xrand.New(3)
	a, _ := NewMultiHead(8, 2, false, rng)
	x := tensor.RandN(rng, 1, 2, 4, 8)
	_, cache, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, att := range cache.att {
		for i := 0; i < att.Dim(0); i++ {
			sum := 0.0
			for _, v := range att.Row(i) {
				if v < 0 {
					t.Fatal("negative attention weight")
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("attention row sums to %v", sum)
			}
		}
	}
}

func TestCausalMasking(t *testing.T) {
	rng := xrand.New(4)
	a, _ := NewMultiHead(8, 2, true, rng)
	x := tensor.RandN(rng, 1, 1, 5, 8)
	_, cache, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, att := range cache.att {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				if att.At(i, j) != 0 {
					t.Fatalf("future position (%d,%d) attended: %v", i, j, att.At(i, j))
				}
			}
		}
	}
}

func TestCausalOutputIndependentOfFuture(t *testing.T) {
	// With causal masking, changing token 4 must not change outputs 0..3.
	rng := xrand.New(5)
	a, _ := NewMultiHead(8, 2, true, rng)
	x := tensor.RandN(rng, 1, 1, 5, 8)
	y1, _, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	x2 := x.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(99, 0, 4, j)
	}
	y2, _, err := a.Forward(x2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(y1.At(0, i, j)-y2.At(0, i, j)) > 1e-12 {
				t.Fatalf("causal leak at token %d", i)
			}
		}
	}
}

func TestMultiHeadGradients(t *testing.T) {
	for _, causal := range []bool{false, true} {
		rng := xrand.New(6)
		a, _ := NewMultiHead(6, 2, causal, rng)
		x := tensor.RandN(rng, 1, 2, 4, 6)
		r := tensor.RandN(rng, 1, 2, 4, 6)
		loss := func(xx *tensor.Tensor) float64 {
			y, _, err := a.Forward(xx)
			if err != nil {
				t.Fatal(err)
			}
			return lossOf(y, r)
		}
		a.ZeroGrad()
		_, cache, err := a.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := a.Backward(cache, r.Clone())
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-6
		for i := 0; i < x.Size(); i += 7 {
			orig := x.Data()[i]
			x.Data()[i] = orig + eps
			up := loss(x)
			x.Data()[i] = orig - eps
			down := loss(x)
			x.Data()[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-dx.Data()[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("causal=%v input grad[%d]: %v vs %v", causal, i, num, dx.Data()[i])
			}
		}
		for _, p := range a.Params() {
			stride := p.W.Size()/4 + 1
			for i := 0; i < p.W.Size(); i += stride {
				orig := p.W.Data()[i]
				p.W.Data()[i] = orig + eps
				up := loss(x)
				p.W.Data()[i] = orig - eps
				down := loss(x)
				p.W.Data()[i] = orig
				num := (up - down) / (2 * eps)
				if math.Abs(num-p.G.Data()[i]) > 1e-5*(1+math.Abs(num)) {
					t.Fatalf("causal=%v %s grad[%d]: %v vs %v", causal, p.Name, i, num, p.G.Data()[i])
				}
			}
		}
	}
}

func TestFwdMACs(t *testing.T) {
	rng := xrand.New(7)
	a, _ := NewMultiHead(8, 2, false, rng)
	want := 4.0*6*8*8 + 2.0*2*3*3*8 // B=2, L=3
	if got := a.FwdMACs(2, 3); got != want {
		t.Fatalf("FwdMACs = %v, want %v", got, want)
	}
}

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm(4)
	x := tensor.FromData([]float64{1, 2, 3, 4, -2, -2, 2, 2}, 2, 4)
	y, _, err := ln.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// Each output row must have ~zero mean and ~unit variance (gamma=1,
	// beta=0 initially).
	for i := 0; i < 2; i++ {
		mean, varia := 0.0, 0.0
		for j := 0; j < 4; j++ {
			mean += y.At(i, j)
		}
		mean /= 4
		for j := 0; j < 4; j++ {
			varia += (y.At(i, j) - mean) * (y.At(i, j) - mean)
		}
		varia /= 4
		if math.Abs(mean) > 1e-9 || math.Abs(varia-1) > 1e-3 {
			t.Fatalf("row %d: mean %v var %v", i, mean, varia)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	ln := NewLayerNorm(6)
	rng := xrand.New(8)
	// Non-trivial gamma/beta so their gradient paths are exercised.
	for j := 0; j < 6; j++ {
		ln.gamma.W.Set(0.5+0.1*float64(j), j)
		ln.beta.W.Set(-0.2*float64(j), j)
	}
	x := tensor.RandN(rng, 1, 5, 6)
	r := tensor.RandN(rng, 1, 5, 6)
	loss := func(xx *tensor.Tensor) float64 {
		y, _, err := ln.Forward(xx)
		if err != nil {
			t.Fatal(err)
		}
		return lossOf(y, r)
	}
	ln.ZeroGrad()
	_, cache, err := ln.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := ln.Backward(cache, r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for i := 0; i < x.Size(); i += 3 {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := loss(x)
		x.Data()[i] = orig - eps
		down := loss(x)
		x.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: %v vs %v", i, num, dx.Data()[i])
		}
	}
	for _, p := range ln.Params() {
		for i := 0; i < p.W.Size(); i += 2 {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			up := loss(x)
			p.W.Data()[i] = orig - eps
			down := loss(x)
			p.W.Data()[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.G.Data()[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: %v vs %v", p.Name, i, num, p.G.Data()[i])
			}
		}
	}
}

func TestLayerNormShapePreserved(t *testing.T) {
	ln := NewLayerNorm(4)
	x := tensor.RandN(xrand.New(9), 1, 2, 3, 4)
	y, cache, err := ln.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rank() != 3 || y.Dim(0) != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
	dx, err := ln.Backward(cache, y)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Rank() != 3 {
		t.Fatalf("dx shape %v", dx.Shape())
	}
}

func TestLayerNormValidation(t *testing.T) {
	ln := NewLayerNorm(4)
	if _, _, err := ln.Forward(tensor.New(2, 5)); err == nil {
		t.Fatal("wrong feature size accepted")
	}
}

package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
)

// ModelSpec is a real-world MoE model of §6.4: a stack of identical
// generalized layers (attention + MoE).
type ModelSpec struct {
	Name   string
	Layer  Config
	Layers int
}

// GPT2XLMoE is the paper's MoE model based on GPT-2 XL: M=1600, H=4·M,
// 25 heads, simple two-layer experts, B=1, k=2, f=1.2 (§6.4), with the
// sequence length of the testbed (1024 on A, 256 on B).
func GPT2XLMoE(c *topology.Cluster) ModelSpec {
	return ModelSpec{
		Name: "GPT2-XL",
		Layer: Config{
			B: 1, L: seqLenFor(c), M: 1600, NHScale: 4, NHeads: 25,
			K: 2, F: 1.2, FFN: FFNSimple,
		},
		Layers: 24, // every other GPT2-XL block carries an MoE layer
	}
}

// Mixtral7B follows Mixtral-8x7B geometry: M=4096, H=14336 (NHScale 3.5 is
// approximated by the closest integer grid value of 3 for Table 4
// compatibility; the preset overrides H via NHScale·M = 12288 ≈ 14336 to
// stay inside the Config vocabulary). The paper trains 7 layers on
// Testbed B (memory limit) and the full 32 elsewhere.
func Mixtral7B(c *topology.Cluster) ModelSpec {
	layers := 32
	if c.GPUsPerNode == 4 { // Testbed B
		layers = 7
	}
	return ModelSpec{
		Name: "Mixtral-7B",
		Layer: Config{
			B: 1, L: seqLenFor(c), M: 4096, NHScale: 3, NHeads: 32,
			K: 2, F: 1.2, FFN: FFNMixtral,
		},
		Layers: layers,
	}
}

// Mixtral22B follows Mixtral-8x22B geometry (M=6144), with 33 layers as in
// §6.4 (memory limit on Testbed A).
func Mixtral22B(c *topology.Cluster) ModelSpec {
	return ModelSpec{
		Name: "Mixtral-22B",
		Layer: Config{
			B: 1, L: seqLenFor(c), M: 6144, NHScale: 3, NHeads: 48,
			K: 2, F: 1.2, FFN: FFNMixtral,
		},
		Layers: 33,
	}
}

func seqLenFor(c *topology.Cluster) int {
	if c.GPUsPerNode == 4 { // Testbed B (2080Ti memory limit, §6.4)
		return 256
	}
	return 1024
}

// WithSeqLen returns a copy of the spec with a different sequence length
// (the Fig. 7 L sweep).
func (ms ModelSpec) WithSeqLen(l int) ModelSpec {
	ms.Layer.L = l
	ms.Name = fmt.Sprintf("%s-L%d", ms.Name, l)
	return ms
}

// LayerSpecs expands the model into scheduler input on a scenario.
func (ms ModelSpec) LayerSpecs(s *topology.Scenario) []core.LayerSpec {
	out := make([]core.LayerSpec, ms.Layers)
	v := VolumesFor(ms.Layer, s)
	for i := range out {
		out[i] = core.LayerSpec{V: v}
	}
	return out
}

// StageSpecs splits the model into npp contiguous pipeline stages and
// scales activations down to one microbatch of the given count —
// GPipe-style (§6.4, Fig. 8). Gradient bytes are not scaled: they
// synchronize once per iteration.
func (ms ModelSpec) StageSpecs(s *topology.Scenario, npp, microbatches int) ([][]core.LayerSpec, error) {
	if npp <= 0 || microbatches <= 0 {
		return nil, fmt.Errorf("workload: NPP and microbatches must be positive")
	}
	if ms.Layers < npp {
		return nil, fmt.Errorf("workload: %d layers cannot fill %d stages", ms.Layers, npp)
	}
	v := VolumesFor(ms.Layer, s)
	scale := 1.0 / float64(microbatches)
	mv := core.Volumes{
		NA2A:      v.NA2A * scale,
		NAG:       v.NAG * scale,
		NRS:       v.NRS * scale,
		ExpMACs:   v.ExpMACs * scale,
		ExpGEMMs:  v.ExpGEMMs,
		DenseFwd:  v.DenseFwd * scale,
		DenseBwd:  v.DenseBwd * scale,
		GradBytes: v.GradBytes,
	}
	stages := make([][]core.LayerSpec, npp)
	base := ms.Layers / npp
	extra := ms.Layers % npp
	for st := 0; st < npp; st++ {
		n := base
		if st < extra {
			n++
		}
		stages[st] = make([]core.LayerSpec, n)
		for i := range stages[st] {
			stages[st][i] = core.LayerSpec{V: mv}
		}
	}
	return stages, nil
}

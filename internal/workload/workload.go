// Package workload turns paper-level experiment descriptions — the Table 4
// configuration grid and the real-world models of §6.4 — into the
// per-layer volumes the scheduler consumes.
//
// All volume formulas follow §2: per GPU, with B samples of L tokens and
// embedding M, a top-k gate with capacity factor f dispatches up to
// k·f·B·L tokens of M half-precision elements through each AlltoAll, the
// ESP collectives move the (N_ESP−1)/N_ESP share of that among the node's
// GPUs, and each expert shard computes its 1/N_ESP slice of the FFN GEMMs.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
)

// Bytes per activation element (fp16 activations, as the testbeds train).
const ActivationBytes = 2

// Bytes per gradient element synchronized by Gradient-AllReduce (fp16
// gradients, DeepSpeed-style).
const GradientBytes = 2

// ExpertComputeFactor scales ideal expert GEMM MACs to account for
// capacity padding and the poor GEMM efficiency of many small per-expert
// matrices, calibrated against the Experts rows of Table 2 (~4× the naive
// MAC count on both testbeds).
const ExpertComputeFactor = 4.0

// AttnComputeFactor scales ideal attention MACs for softmax, layernorm,
// dropout and small-GEMM overheads, calibrated against the Attention rows
// of Table 2.
const AttnComputeFactor = 5.0

// FFNType selects the expert architecture (Table 4's ffn-type).
type FFNType string

// Expert types.
const (
	FFNSimple  FFNType = "simple"  // two dense layers (GPT-style)
	FFNMixtral FFNType = "mixtral" // SwiGLU, three matrices
)

// GEMMs returns the GEMM count of one expert forward pass.
func (f FFNType) GEMMs() int {
	if f == FFNMixtral {
		return 3
	}
	return 2
}

// GateKind selects the routing function, which changes the gate's compute
// footprint (Table 6 sweeps these on GPT2-XL).
type GateKind string

// Gate kinds, matching internal/moe's implementations.
const (
	GateGShard  GateKind = "gshard"
	GateSigmoid GateKind = "sigmoid"
	GateXMoE    GateKind = "xmoe"
	GateEC      GateKind = "ec"
	GateSoftMoE GateKind = "softmoe"
)

// RoutingMACs returns the gate's per-token score-computation cost for
// embedding m and e experts: GShard evaluates two projections (W_g and
// W_noise), Sigmoid and EC one, X-MoE a low-rank projection of rank m/8
// followed by cosine scoring (by far the heaviest — the Table 6 ordering),
// and SoftMoE scores every slot.
func (g GateKind) RoutingMACs(m, e int) float64 {
	mf, ef := float64(m), float64(e)
	switch g {
	case GateSigmoid, GateEC:
		return mf * ef
	case GateXMoE:
		low := mf / 8
		return mf*low + low*ef
	case GateSoftMoE:
		return mf * ef * 2 // e·slots columns with a couple of slots each
	default: // GShard
		return 2 * mf * ef
	}
}

// LaunchMS is the per-layer fixed cost of the gate's eager-mode kernel
// sequence (top-k, masking, normalization, cumsum — each a separate small
// kernel launch). This constant, not the MAC count, is what separates the
// gatings in Table 6: EC runs the fewest ops, X-MoE by far the most
// (projection, two normalizations, cosine, temperature softmax).
func (g GateKind) LaunchMS() float64 {
	switch g {
	case GateEC:
		return 0.7
	case GateSigmoid:
		return 1.15
	case GateXMoE:
		return 2.1
	case GateSoftMoE:
		return 1.3
	default: // GShard
		return 1.0
	}
}

// Config is one attention+MoE layer configuration (Table 4 vocabulary).
type Config struct {
	B       int     // samples per GPU
	L       int     // tokens per sample
	M       int     // embedding size
	NHScale int     // H = NHScale · M
	NHeads  int     // attention heads
	K       int     // top-k experts per token
	F       float64 // capacity factor; 0 encodes f=∗ (no drop)
	FFN     FFNType
	Gate    GateKind // empty selects GShard
}

// H returns the expert hidden size.
func (c Config) H() int { return c.NHScale * c.M }

// String is a compact identifier for reports.
func (c Config) String() string {
	f := "∗"
	if c.F > 0 {
		f = fmt.Sprintf("%.1f", c.F)
	}
	return fmt.Sprintf("B%d-L%d-M%d-hs%d-nh%d-f%s-%s", c.B, c.L, c.M, c.NHScale, c.NHeads, f, c.FFN)
}

// Grid generates the full Table 4 sweep for a testbed: 3·3·3·3·3·3·2 = 1458
// configurations. L candidates depend on the testbed (§6.1): {512, 1024,
// 2048} on Testbed A, {256, 512, 1024} on Testbed B.
func Grid(c *topology.Cluster) []Config {
	ls := []int{512, 1024, 2048}
	if c.Name == "B" || c.GPUsPerNode == 4 {
		ls = []int{256, 512, 1024}
	}
	var out []Config
	for _, b := range []int{1, 2, 4} {
		for _, nh := range []int{8, 16, 32} {
			for _, l := range ls {
				for _, m := range []int{1024, 2048, 4096} {
					for _, hs := range []int{2, 3, 4} {
						for _, f := range []float64{1.2, 2.4, 0} { // 0 = f=∗
							for _, ffn := range []FFNType{FFNSimple, FFNMixtral} {
								out = append(out, Config{
									B: b, L: l, M: m, NHScale: hs, NHeads: nh,
									K: 2, F: f, FFN: ffn,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// VolumesFor derives a generalized layer's scheduling volumes from a
// configuration on a scenario (the canonical §4 layout).
func VolumesFor(cfg Config, s *topology.Scenario) core.Volumes {
	m := core.ModelsFromCluster(s.Cluster)
	tokens := float64(cfg.B * cfg.L)
	effF := cfg.F
	if effF <= 0 {
		// f=∗ drops nothing; a balanced gate realizes ≈ the nominal load.
		effF = 1.0
	}
	dispatched := float64(cfg.K) * effF * tokens // tokens crossing the A2A
	nA2A := dispatched * float64(cfg.M) * ActivationBytes
	// ESP-AllGather must replicate onto each shard the tokens that every
	// other ESP rank received through its own AlltoAll rail: (N_ESP−1)
	// times one rail's volume (this is what Table 2's AG/RS rows measure).
	nESP := nA2A * float64(s.NESP-1)

	// Expert compute: each shard computes its 1/N_ESP slice of the FFN.
	gemms := cfg.FFN.GEMMs()
	expMACs := float64(gemms) * dispatched * float64(cfg.M) * float64(cfg.H()) /
		float64(s.NESP) * ExpertComputeFactor

	// Dense part ("Others"): attention + MP collectives + gate + order.
	attnMACs := (4*tokens*float64(cfg.M)*float64(cfg.M) +
		2*float64(cfg.B)*float64(cfg.L)*float64(cfg.L)*float64(cfg.M)) /
		float64(s.NMP) * AttnComputeFactor
	attnFwd := m.GEMM.Time(attnMACs)
	mpBytes := tokens * float64(cfg.M) * ActivationBytes * float64(s.NMP-1) / float64(s.NMP)
	mpComm := m.RS.Time(mpBytes) + m.AG.Time(mpBytes)
	gate := cfg.Gate
	if gate == "" {
		gate = GateGShard
	}
	gateMACs := tokens * gate.RoutingMACs(cfg.M, s.NEP)
	routing := m.GEMM.Time(gateMACs) + gate.LaunchMS()
	order := nA2A * 2e-8 // layout shuffle at ~50 GB/s on-device copy
	denseFwd := attnFwd + mpComm + routing + order
	denseBwd := 2*attnFwd + mpComm + routing + order

	// Gradients: expert shard + attention shard, synchronized across DP.
	expParams := float64(gemms) * float64(cfg.M) * float64(cfg.H()) / float64(s.NESP)
	attnParams := 4 * float64(cfg.M) * float64(cfg.M) / float64(s.NMP)
	gradBytes := (expParams + attnParams) * GradientBytes

	return core.Volumes{
		NA2A:      nA2A,
		NAG:       nESP,
		NRS:       nESP,
		ExpMACs:   expMACs,
		ExpGEMMs:  gemms,
		DenseFwd:  denseFwd,
		DenseBwd:  denseBwd,
		GradBytes: gradBytes,
	}
}

package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func scenarioA(t *testing.T) *topology.Scenario {
	t.Helper()
	s, err := topology.CanonicalScenario(topology.TestbedA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func scenarioB(t *testing.T) *topology.Scenario {
	t.Helper()
	s, err := topology.CanonicalScenario(topology.TestbedB(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGridSize(t *testing.T) {
	// Table 4: 3 B × 3 heads × 3 L × 3 M × 3 hscale × 3 f × 2 ffn = 1458.
	for _, c := range []*topology.Cluster{topology.TestbedA(), topology.TestbedB()} {
		g := Grid(c)
		if len(g) != 1458 {
			t.Fatalf("%s: grid has %d configs, want 1458", c.Name, len(g))
		}
	}
}

func TestGridUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, cfg := range Grid(topology.TestbedA()) {
		key := cfg.String()
		if seen[key] {
			t.Fatalf("duplicate config %s", key)
		}
		seen[key] = true
	}
}

func TestGridSeqLensPerTestbed(t *testing.T) {
	for _, cfg := range Grid(topology.TestbedA()) {
		if cfg.L != 512 && cfg.L != 1024 && cfg.L != 2048 {
			t.Fatalf("Testbed A grid has L=%d", cfg.L)
		}
	}
	for _, cfg := range Grid(topology.TestbedB()) {
		if cfg.L != 256 && cfg.L != 512 && cfg.L != 1024 {
			t.Fatalf("Testbed B grid has L=%d", cfg.L)
		}
	}
}

func TestVolumesForSanity(t *testing.T) {
	s := scenarioA(t)
	cfg := Config{B: 4, L: 1024, M: 1600, NHScale: 4, NHeads: 25, K: 2, F: 1.2, FFN: FFNSimple}
	v := VolumesFor(cfg, s)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// A2A volume = k·f·B·L·M·2 bytes ≈ 31.5 MB (the Table 2 calibration).
	want := 2.0 * 1.2 * 4 * 1024 * 1600 * 2
	if v.NA2A != want {
		t.Fatalf("NA2A = %v, want %v", v.NA2A, want)
	}
	if v.NAG != v.NRS {
		t.Fatal("ESP collectives must be symmetric")
	}
	if v.NAG != v.NA2A*float64(s.NESP-1) {
		t.Fatalf("ESP volume should be (NESP-1)× one rail: got %v for NA2A=%v", v.NAG, v.NA2A)
	}
	if v.DenseFwd <= 0 || v.DenseBwd <= v.DenseFwd {
		t.Fatalf("dense durations: fwd=%v bwd=%v", v.DenseFwd, v.DenseBwd)
	}
	if v.GradBytes <= 0 {
		t.Fatal("gradient bytes must be positive")
	}
}

// TestTable2Shape checks the headline calibration claim: on both testbeds,
// communication time of a GPT2-XL layer exceeds 50% of the sequential
// iteration time (Table 2's motivation), and AlltoAll is a leading term.
func TestTable2Shape(t *testing.T) {
	for _, tb := range []struct {
		s *topology.Scenario
	}{{scenarioA(t)}, {scenarioB(t)}} {
		s := tb.s
		m := core.ModelsFromCluster(s.Cluster)
		cfg := Config{B: 4, L: 1024, M: 1600, NHScale: 4, NHeads: 25, K: 2, F: 1.2, FFN: FFNSimple}
		v := VolumesFor(cfg, s)
		res, err := m.SimulateSingleLayer(v, core.SystemDSMoE, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bd := res.Trace.Breakdown()
		comm := bd[core.KindA2A] + bd[core.KindAG] + bd[core.KindRS] + bd[core.KindAR]
		if comm < 0.5*res.Total {
			t.Errorf("testbed %s: communication is %.0f%% of the layer, paper reports >50%%",
				s.Cluster.Name, 100*comm/res.Total)
		}
		if bd[core.KindA2A] <= 0 {
			t.Error("AlltoAll missing from breakdown")
		}
	}
}

func TestModelPresets(t *testing.T) {
	a := topology.TestbedA()
	b := topology.TestbedB()
	if GPT2XLMoE(a).Layer.L != 1024 || GPT2XLMoE(b).Layer.L != 256 {
		t.Fatal("GPT2-XL sequence lengths per testbed wrong")
	}
	if Mixtral7B(b).Layers != 7 {
		t.Fatalf("Mixtral-7B on B should have 7 layers, got %d", Mixtral7B(b).Layers)
	}
	if Mixtral7B(a).Layers != 32 {
		t.Fatalf("Mixtral-7B on A should have 32 layers, got %d", Mixtral7B(a).Layers)
	}
	if Mixtral22B(a).Layers != 33 {
		t.Fatal("Mixtral-22B should have 33 layers")
	}
	if Mixtral7B(a).Layer.FFN.GEMMs() != 3 {
		t.Fatal("Mixtral experts are SwiGLU (3 GEMMs)")
	}
}

func TestLayerSpecs(t *testing.T) {
	s := scenarioA(t)
	spec := GPT2XLMoE(s.Cluster)
	layers := spec.LayerSpecs(s)
	if len(layers) != spec.Layers {
		t.Fatalf("got %d layers", len(layers))
	}
	for _, l := range layers {
		if err := l.V.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStageSpecs(t *testing.T) {
	s := scenarioA(t)
	spec := Mixtral22B(s.Cluster) // 33 layers
	stages, err := spec.StageSpecs(s, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d stages", len(stages))
	}
	if len(stages[0])+len(stages[1]) != 33 {
		t.Fatalf("stages cover %d layers", len(stages[0])+len(stages[1]))
	}
	// Microbatch scaling: activations 1/8, gradients untouched.
	full := VolumesFor(spec.Layer, s)
	mb := stages[0][0].V
	if mb.NA2A*8 != full.NA2A {
		t.Fatalf("microbatch NA2A %v, want %v/8", mb.NA2A, full.NA2A)
	}
	if mb.GradBytes != full.GradBytes {
		t.Fatal("gradient bytes must not scale with microbatches")
	}
	if _, err := spec.StageSpecs(s, 0, 4); err == nil {
		t.Fatal("NPP=0 should error")
	}
	if _, err := spec.StageSpecs(s, 64, 4); err == nil {
		t.Fatal("more stages than layers should error")
	}
}

func TestWithSeqLen(t *testing.T) {
	s := Mixtral7B(topology.TestbedA()).WithSeqLen(2048)
	if s.Layer.L != 2048 {
		t.Fatal("WithSeqLen did not apply")
	}
}

func TestFFNTypeGEMMs(t *testing.T) {
	if FFNSimple.GEMMs() != 2 || FFNMixtral.GEMMs() != 3 {
		t.Fatal("GEMM counts wrong")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{B: 1, L: 512, M: 1024, NHScale: 2, NHeads: 8, K: 2, F: 0, FFN: FFNSimple}
	if got := c.String(); got == "" || got != "B1-L512-M1024-hs2-nh8-f∗-simple" {
		t.Fatalf("String = %q", got)
	}
}

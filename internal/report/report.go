// Package report renders the text tables and series the benchmark harness
// prints when regenerating the paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted cells, row by row — the machine-readable view
// of the table the -json emitters serialize. The returned slices are the
// table's own; callers must not mutate them.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < cols && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series renders "name: x=v" pairs on one line, for figure-style sweeps.
func Series(name string, xs []string, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", name)
	for i := range xs {
		fmt.Fprintf(&b, "  %s=%.2f", xs[i], ys[i])
	}
	return b.String()
}

// Bar renders a crude horizontal ASCII bar chart scaled to width.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.2f\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

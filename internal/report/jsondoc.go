package report

// Machine-readable experiment output: a Doc collects every table and note
// a command prints and serializes them to BENCH_<name>.json, so the perf
// trajectory across commits can be tracked by tooling instead of by
// scraping stdout. The JSON mirrors the printed tables cell for cell —
// one source of truth, two renderings.

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSONTable is one table of an experiment document.
type JSONTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Doc is the BENCH_<name>.json schema: the tables and notes of one
// experiment or command run.
type Doc struct {
	Experiment string      `json:"experiment"`
	Tables     []JSONTable `json:"tables"`
	Notes      []string    `json:"notes,omitempty"`
}

// NewDoc starts an empty document for the named experiment.
func NewDoc(experiment string) *Doc {
	return &Doc{Experiment: experiment}
}

// AddTable records a table cell for cell.
func (d *Doc) AddTable(tb *Table) {
	d.Tables = append(d.Tables, JSONTable{
		Title:   tb.Title,
		Columns: tb.Headers,
		Rows:    tb.Rows(),
	})
}

// AddNote records one free-form note line.
func (d *Doc) AddNote(line string) {
	d.Notes = append(d.Notes, line)
}

// WriteFile writes the document to BENCH_<experiment>.json in the working
// directory and returns the path written.
func (d *Doc) WriteFile() (string, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	path := fmt.Sprintf("BENCH_%s.json", d.Experiment)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1.234)
	tb.AddRow("beta-with-long-name", 56.7)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.23") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width for col 2.
	if !strings.Contains(lines[1], "name") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
}

func TestTableMixedTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow(1, "x", 2.5)
	out := tb.String()
	if !strings.Contains(out, "1") || !strings.Contains(out, "x") || !strings.Contains(out, "2.50") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := Series("fsmoe", []string{"L=512", "L=1024"}, []float64{1.5, 2.25})
	if !strings.Contains(s, "fsmoe:") || !strings.Contains(s, "L=512=1.50") || !strings.Contains(s, "L=1024=2.25") {
		t.Fatalf("series = %q", s)
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	if strings.Count(lines[1], "█") != 10 {
		t.Fatalf("max bar should fill width: %q", lines[1])
	}
	if strings.Count(lines[0], "█") != 5 {
		t.Fatalf("half bar should be half width: %q", lines[0])
	}
}

func TestBarZeroValues(t *testing.T) {
	out := Bar([]string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "0.00") {
		t.Fatalf("zero bar: %q", out)
	}
}

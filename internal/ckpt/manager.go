package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Ext is the snapshot file extension the Manager writes and scans for.
const Ext = ".fsmc"

// Manager owns a directory of step-numbered snapshots: Save writes
// "step-%012d.fsmc" atomically and prunes old files beyond Keep, Latest
// finds the highest-numbered snapshot, LoadLatest reads and verifies it.
// The zero Keep retains everything.
type Manager struct {
	Dir  string
	Keep int // snapshots to retain after each Save; <=0 keeps all
}

// pathFor is the canonical file name of a step's snapshot. Zero-padded
// fixed width keeps lexical order equal to numeric order.
func (m *Manager) pathFor(step int) string {
	return filepath.Join(m.Dir, fmt.Sprintf("step-%012d%s", step, Ext))
}

// Save persists s under its step number and prunes beyond Keep, returning
// the written path.
func (m *Manager) Save(s *Snapshot) (string, error) {
	if m.Dir == "" {
		return "", fmt.Errorf("ckpt: manager needs a directory")
	}
	if err := os.MkdirAll(m.Dir, 0o755); err != nil {
		return "", fmt.Errorf("ckpt: save: %w", err)
	}
	path := m.pathFor(s.Step)
	if err := Save(path, s); err != nil {
		return "", err
	}
	if err := m.prune(); err != nil {
		return "", err
	}
	return path, nil
}

// List returns every snapshot path in the directory, oldest first.
func (m *Manager) List() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(m.Dir, "step-*"+Ext))
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// Latest returns the newest snapshot path, or ErrNoCheckpoint when the
// directory holds none.
func (m *Manager) Latest() (string, error) {
	paths, err := m.List()
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("%w in %s", ErrNoCheckpoint, m.Dir)
	}
	return paths[len(paths)-1], nil
}

// LoadLatest reads and verifies the newest snapshot.
func (m *Manager) LoadLatest() (*Snapshot, error) {
	path, err := m.Latest()
	if err != nil {
		return nil, err
	}
	return Load(path)
}

// prune removes the oldest snapshots beyond Keep.
func (m *Manager) prune() error {
	if m.Keep <= 0 {
		return nil
	}
	paths, err := m.List()
	if err != nil {
		return err
	}
	for len(paths) > m.Keep {
		if err := os.Remove(paths[0]); err != nil {
			return fmt.Errorf("ckpt: prune: %w", err)
		}
		paths = paths[1:]
	}
	return nil
}

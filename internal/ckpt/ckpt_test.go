package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample builds a representative snapshot: two worlds, multi-parameter
// experts, a gate RNG state, non-trivial counters.
func sample() *Snapshot {
	mk := func(name string, vals ...float64) Tensor {
		return Tensor{Name: name, Shape: []int{1, len(vals)}, Data: vals}
	}
	return &Snapshot{
		Step: 7,
		Worlds: []WorldState{
			{
				Steps:   7,
				CollOps: 123,
				Gate:    []Tensor{mk("gshard.wg", 0.5, -1.25), mk("gshard.wnoise", 3.5)},
				Experts: [][]Tensor{
					{mk("ffn.w1", 1, 2, 3), mk("ffn.b1", 0)},
					{mk("ffn.w1", -4, 5e-300, 6), mk("ffn.b1", 1)},
				},
				GateRNG: []RNGState{{State: 0xdeadbeef, Gamma: 0x9e3779b97f4a7c15}},
			},
			{Steps: 7, CollOps: 88, Gate: []Tensor{mk("ec.wg", 9)}},
		},
	}
}

func TestCkptRoundTrip(t *testing.T) {
	want := sample()
	raw, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCkptSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap"+Ext)
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("save/load round trip mismatch")
	}
	// Atomicity: no temp residue survives a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after save", e.Name())
		}
	}
}

// TestCkptTruncation: every truncation point fails with ErrTruncated —
// inside the header, inside the payload, and inside the trailer CRC.
func TestCkptTruncation(t *testing.T) {
	raw, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, headerLen - 1, headerLen + 5, len(raw) - trailerLen - 1, len(raw) - 1} {
		if _, err := Decode(raw[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Decode of %d/%d bytes = %v, want ErrTruncated", n, len(raw), err)
		}
	}
}

// TestCkptBitFlip: flipping any single bit of the payload (or the stored
// CRC) is detected as ErrChecksum; flipping the length field reads as
// truncation; flipping the magic or version as their own typed errors.
func TestCkptBitFlip(t *testing.T) {
	raw, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int, bit uint) []byte {
		c := append([]byte(nil), raw...)
		c[off] ^= 1 << bit
		return c
	}
	// Payload corruption, sampled across the payload and the CRC trailer.
	for _, off := range []int{headerLen, headerLen + 7, len(raw)/2 | 1, len(raw) - trailerLen, len(raw) - 1} {
		if _, err := Decode(flip(off, 3)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip at %d = %v, want ErrChecksum", off, err)
		}
	}
	// Length-field corruption (grows the claimed payload) = truncation.
	if _, err := Decode(flip(8+7, 7)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("length-field flip = %v, want ErrTruncated", err)
	}
	if _, err := Decode(flip(0, 0)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic flip = %v, want ErrBadMagic", err)
	}
	if _, err := Decode(flip(4, 0)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version flip = %v, want ErrVersion", err)
	}
}

func TestCkptTruncatedFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap"+Ext)
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Load of truncated file = %v, want ErrTruncated", err)
	}
}

func TestCkptManager(t *testing.T) {
	m := &Manager{Dir: t.TempDir(), Keep: 2}
	if _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty dir = %v, want ErrNoCheckpoint", err)
	}
	for _, step := range []int{1, 2, 3} {
		s := sample()
		s.Step = step
		if _, err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("Keep=2 retained %d snapshots: %v", len(paths), paths)
	}
	got, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 3 {
		t.Fatalf("LoadLatest step = %d, want 3", got.Step)
	}
	// Pruned oldest, kept the two newest.
	if base := filepath.Base(paths[0]); !strings.Contains(base, "000000000002") {
		t.Fatalf("oldest retained snapshot = %s, want step 2", base)
	}
}

func TestCkptManagerKeepAll(t *testing.T) {
	m := &Manager{Dir: t.TempDir()}
	for step := 0; step < 4; step++ {
		s := sample()
		s.Step = step
		if _, err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("Keep=0 must retain all, got %d", len(paths))
	}
}

// Package ckpt implements crash-consistent, checksummed snapshots of the
// executable runtime's full training state — the durable half of the
// fault-tolerance story. PR 6 made a World *survive* a permanent rank
// loss (degraded stepping around the dead rank); this package makes the
// loss *recoverable*: a snapshot taken before the failure carries every
// byte a rebuilt world needs to resume bit-identically — per-expert and
// gate parameters, the step and collective-op counters, and the private
// RNG state of noisy gates.
//
// On-disk format (all integers little-endian):
//
//	offset 0   magic "FSMC" (4 bytes)
//	offset 4   format version, uint32
//	offset 8   payload length N, uint64
//	offset 16  payload: gob-encoded Snapshot (N bytes)
//	offset 16+N  CRC-64/ECMA of the payload, uint64
//
// Two guarantees hold by construction:
//
//   - Atomicity: Save writes to a temp file in the target directory,
//     fsyncs it, renames it over the final path and fsyncs the directory.
//     A crash at any point leaves either the old snapshot or the new one,
//     never a torn file under the final name.
//
//   - Loud corruption: Load verifies magic, version, length and checksum
//     before decoding. A truncated, bit-flipped or foreign file fails
//     with a typed sentinel error (ErrTruncated, ErrChecksum, ErrBadMagic,
//     ErrVersion) matchable with errors.Is — never silent wrong state.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
)

// Version is the current snapshot format version. Decoding rejects any
// other version with ErrVersion; readers never guess at unknown layouts.
const Version = 1

// magic identifies a snapshot file ("FSMoe Checkpoint").
var magic = [4]byte{'F', 'S', 'M', 'C'}

// headerLen is the fixed prefix before the payload; trailerLen the CRC.
const (
	headerLen  = 4 + 4 + 8
	trailerLen = 8
)

// Typed load failures, matchable with errors.Is. Every way a snapshot
// file can be bad maps to exactly one of them.
var (
	// ErrBadMagic reports a file that is not a snapshot at all.
	ErrBadMagic = errors.New("ckpt: not a checkpoint file (bad magic)")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
	// ErrTruncated reports a snapshot shorter than its own accounting —
	// a torn write or a truncated copy.
	ErrTruncated = errors.New("ckpt: truncated checkpoint")
	// ErrChecksum reports payload corruption: the stored CRC-64 does not
	// match the bytes on disk.
	ErrChecksum = errors.New("ckpt: checksum mismatch (corrupted checkpoint)")
	// ErrNoCheckpoint reports a Manager directory holding no snapshot.
	ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")
)

// crcTable is the CRC-64/ECMA table the payload checksum uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Tensor is one named parameter's snapshot: the shape and a copy of the
// flat data.
type Tensor struct {
	Name  string
	Shape []int
	Data  []float64
}

// RNGState is the full internal state of one xrand.RNG — the state word
// and the Weyl increment. Restoring it replays the identical stream.
type RNGState struct {
	State uint64
	Gamma uint64
}

// WorldState is one World's snapshot: its counters, every parameter of
// its layer (gate first, then each expert in index order — the GradElems
// layout), and the private RNG state of gates that hold one.
type WorldState struct {
	// Steps is the world's completed-step counter; CollOps the monotone
	// collective-operation counter that seeds deterministic fault-guard
	// ids. Restoring both makes a resumed run replay the same guard
	// decision space as the original.
	Steps   int
	CollOps int

	Gate    []Tensor   // gate parameters in Params() order
	Experts [][]Tensor // Experts[e] is expert e's parameters in Params() order

	// GateRNG holds the gate's private RNG state when the gate carries one
	// (GShard's noisy gating); empty otherwise.
	GateRNG []RNGState
}

// Snapshot is a full-stack training snapshot: one WorldState per layer,
// in stack order, plus the global step ordinal it was taken at.
type Snapshot struct {
	Step   int
	Worlds []WorldState
}

// Encode writes s in the versioned, checksummed wire format.
func Encode(s *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	p := payload.Bytes()
	out := make([]byte, 0, headerLen+len(p)+trailerLen)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p)))
	out = append(out, p...)
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(p, crcTable))
	return out, nil
}

// Decode parses a snapshot, verifying magic, version, length and checksum
// before the payload is interpreted. Failures return the typed sentinel
// errors above (wrapped with detail), so callers distinguish "not a
// checkpoint" from "corrupted checkpoint" from "future format".
func Decode(raw []byte) (*Snapshot, error) {
	if len(raw) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(raw), headerLen)
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader version %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	// Compare against what is actually present before allocating or
	// slicing, so a corrupted length field reads as truncation, not a
	// panic or an absurd allocation.
	if uint64(len(raw)) < headerLen+n+trailerLen {
		return nil, fmt.Errorf("%w: payload claims %d bytes, file holds %d past the header",
			ErrTruncated, n, len(raw)-headerLen)
	}
	p := raw[headerLen : headerLen+n]
	want := binary.LittleEndian.Uint64(raw[headerLen+n : headerLen+n+trailerLen])
	if got := crc64.Checksum(p, crcTable); got != want {
		return nil, fmt.Errorf("%w: stored %#x, computed %#x", ErrChecksum, want, got)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&s); err != nil {
		// The checksum passed, so the bytes are what was written — a gob
		// failure here is an encoder/decoder skew, not disk corruption.
		return nil, fmt.Errorf("ckpt: decode payload: %w", err)
	}
	return &s, nil
}

// Save writes s to path atomically: temp file in the same directory,
// fsync, rename over path, fsync the directory. A crash mid-save leaves
// path either absent/old or fully written, never torn.
func Save(path string, s *Snapshot) (err error) {
	raw, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(raw); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: save: fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: save: fsync dir: %w", err)
	}
	return nil
}

// Load reads and verifies a snapshot file.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	s, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// Package gradsync makes the paper's §5 Gradient-AllReduce executable: it
// takes the per-rank partial parameter gradients a multi-rank backward
// pass produces, plans how many bytes to hide inside each layer's
// backward pipeline (core.PartitionGradients — the FSMoE contribution —
// or the Lina fixed-chunk / no-overlap baselines), and materializes that
// plan as real chunked Ring-AllReduce tasks appended to the backward
// stream plans, so AllReduce slices genuinely run in the slack between
// dispatch/combine chunks on the shared inter-node stream.
//
// The package is deliberately ignorant of the MoE layer: a consumer
// registers one LayerSpec per generalized layer (element counts plus the
// §5 byte-accounting volumes), then drives the Syncer in backward order —
// StartLayer(i) before layer i's plan is built, EmitAt while it is built
// (the hook a stream-plan builder calls at inter-stream slack points),
// Collect(i) once layer i's gradients exist, and Finish() for the exposed
// tail. Because every element is reduced exactly once by a restricted
// ring that is byte-identical under any slicing (comm.RingAllReduceChunk),
// all strategies produce bit-identical synchronized gradients; only the
// wall-clock placement differs.
package gradsync

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// Strategy selects how gradient synchronization is scheduled relative to
// the backward pipeline.
type Strategy string

const (
	// StrategyFSMoE is §5's adaptive partitioning: per-layer hidden byte
	// budgets from core.PartitionGradients (greedy window fill plus the
	// differential-evolution stretch assignment).
	StrategyFSMoE Strategy = "fsmoe-adaptive"
	// StrategyFixedChunk is the Lina baseline (§6.4): every pending
	// gradient is launched as fixed-size chunks as soon as it exists,
	// regardless of how much slack the schedule actually has.
	StrategyFixedChunk Strategy = "lina-fixed-chunk"
	// StrategyNoOverlap synchronizes everything sequentially after the
	// whole backward pass — the fully exposed Tutel-style tail.
	StrategyNoOverlap Strategy = "no-overlap"
)

// KindAllReduce is the task kind of emitted AllReduce slices — an alias
// of the canonical sim vocabulary (sim/vocab.go), matching the Table 2
// strings used by the simulator's Gradient-AllReduce rows.
const KindAllReduce = sim.KindAllReduce

// LayerSpec registers one generalized layer with a Syncer.
type LayerSpec struct {
	// Elems is the layer's flattened gradient length (per rank).
	Elems int
	// DenseElems is the leading prefix attributed to the dense (gate)
	// sub-model; the remainder is expert gradient. It only steers the
	// byte accounting — slicing treats the buffer uniformly.
	DenseElems int
	// V is the §5 byte accounting PartitionGradients consumes. V.GradBytes
	// should equal Elems·ElemBytes for the plan to conserve volume.
	V core.Volumes
}

// Config tunes a Syncer.
type Config struct {
	Strategy    Strategy
	Models      core.Models // performance models driving the GarPlan and task estimates
	RMax        int         // Algorithm-1 degree cap (default 16)
	ChunkBytes  float64     // StrategyFixedChunk chunk size (default 30 MiB, the paper's Lina setting)
	Slices      int         // AllReduce slices per hidden window (default 4)
	ElemBytes   float64     // accounting bytes per gradient element (default 4, fp32 master grads)
	GPUsPerNode int         // node shape for ring Stats; <= 0 counts all traffic as inter-node (comm semantics)
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = StrategyFSMoE
	}
	if c.RMax < 1 {
		c.RMax = 16
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 30 << 20
	}
	if c.Slices < 1 {
		c.Slices = 4
	}
	if c.ElemBytes <= 0 {
		c.ElemBytes = 4
	}
	return c
}

// pendingRange is one not-yet-synchronized element range of one layer.
type pendingRange struct {
	layer int
	rr    comm.RowRange
}

// Report summarizes one synchronization round.
type Report struct {
	Strategy    Strategy
	TotalBytes  float64 // accounting bytes across all layers
	HiddenBytes float64 // bytes reduced inside backward stream plans
	TailBytes   float64 // bytes reduced sequentially by Finish
	TailMS      float64 // measured wall time of the exposed tail
	Slices      int     // AllReduce tasks emitted into plans
	TailSlices  int     // AllReduce slices run by Finish
	Stats       comm.Stats
	Gar         *core.GarPlan // the strategy's byte plan (nil for no-overlap)
}

// Syncer drives one backward pass's gradient synchronization. It is not
// safe for concurrent use; the stream runtime serializes the emitted
// tasks on the inter stream, and StartLayer/Collect/Finish are called
// from the goroutine that builds and awaits the plans, so no additional
// locking is needed.
type Syncer struct {
	cfg    Config
	specs  []LayerSpec
	plan   *core.GarPlan
	grads  [][][]float64 // [layer][rank][] partial gradients, set by Collect
	ranks  int
	seen   int // layers collected so far
	synced bool

	pending  []pendingRange
	emit     [][]pendingRange // slices bucketed per emit point for the current layer
	inflight []pendingRange   // slices handed to a plan by EmitAt but not yet reduced
	rep      Report
}

// New validates the layer specs and computes the strategy's byte plan.
func New(cfg Config, specs []LayerSpec) (*Syncer, error) {
	cfg = cfg.withDefaults()
	if len(specs) == 0 {
		return nil, fmt.Errorf("gradsync: no layers")
	}
	for i, sp := range specs {
		if sp.Elems <= 0 {
			return nil, fmt.Errorf("gradsync: layer %d has %d gradient elements", i, sp.Elems)
		}
		if sp.DenseElems < 0 || sp.DenseElems > sp.Elems {
			return nil, fmt.Errorf("gradsync: layer %d dense prefix %d outside [0,%d]", i, sp.DenseElems, sp.Elems)
		}
		if err := sp.V.Validate(); err != nil {
			return nil, err
		}
	}
	s := &Syncer{cfg: cfg, specs: specs, grads: make([][][]float64, len(specs))}
	cores := make([]core.LayerSpec, len(specs))
	total := 0.0
	for i, sp := range specs {
		cores[i] = core.LayerSpec{V: sp.V}
		total += float64(sp.Elems) * cfg.ElemBytes
	}
	s.rep = Report{Strategy: cfg.Strategy, TotalBytes: total}
	switch cfg.Strategy {
	case StrategyFSMoE:
		s.plan = cfg.Models.PartitionGradients(cores, cfg.RMax)
	case StrategyFixedChunk:
		s.plan = cfg.Models.FixedChunkGarPlan(cores, cfg.ChunkBytes)
	case StrategyNoOverlap:
		s.plan = nil
	default:
		return nil, fmt.Errorf("gradsync: unknown strategy %q (valid: %s, %s, %s)",
			cfg.Strategy, StrategyFSMoE, StrategyFixedChunk, StrategyNoOverlap)
	}
	s.rep.Gar = s.plan
	return s, nil
}

// Report returns the running synchronization summary (complete after
// Finish).
func (s *Syncer) Report() Report { return s.rep }

// LayerGrads returns layer i's per-rank gradient buffers as registered by
// Collect (nil before then). After Finish they hold the synchronized
// full gradient, identical on every rank.
func (s *Syncer) LayerGrads(i int) [][]float64 {
	if i < 0 || i >= len(s.grads) {
		return nil
	}
	return s.grads[i]
}

// budgetElems returns how many pending elements layer i's backward window
// may hide, per the strategy.
func (s *Syncer) budgetElems(i int) int {
	switch s.cfg.Strategy {
	case StrategyFSMoE:
		return int(s.plan.HiddenBytes(i) / s.cfg.ElemBytes)
	case StrategyFixedChunk:
		// Lina launches everything already produced, slack or not.
		n := 0
		for _, pr := range s.pending {
			n += pr.rr.Len()
		}
		return n
	default:
		return 0
	}
}

// sliceElems is the per-task slice size for layer i's window.
func (s *Syncer) sliceElems(taken int) int {
	var per int
	if s.cfg.Strategy == StrategyFixedChunk {
		per = int(s.cfg.ChunkBytes / s.cfg.ElemBytes)
	} else {
		per = (taken + s.cfg.Slices - 1) / s.cfg.Slices
	}
	if per < 1 {
		per = 1
	}
	return per
}

// StartLayer prepares the AllReduce slices layer i's backward plan will
// absorb: it drains up to the strategy's byte budget from the pending
// pool (gradients of layers whose backward already finished) and cuts the
// drained ranges into slice tasks. Call before the layer's plan is built.
func (s *Syncer) StartLayer(i int) {
	if i < 0 || i >= len(s.specs) {
		return
	}
	// Slices parked for a previous plan that never emitted them (a builder
	// announcing more points than it drives), and slices a previous plan
	// accepted but never reduced (the plan aborted on a fault or deadline
	// before its inter stream reached them), return to the pool rather
	// than being lost.
	for _, bucket := range s.emit {
		s.pending = append(s.pending, bucket...)
	}
	s.emit = nil
	s.pending = append(s.pending, s.inflight...)
	s.inflight = nil
	budget := s.budgetElems(i)
	var taken []pendingRange
	total := 0
	for budget > 0 && len(s.pending) > 0 {
		pr := s.pending[0]
		n := pr.rr.Len()
		if n <= budget {
			s.pending = s.pending[1:]
			taken = append(taken, pr)
			total += n
			budget -= n
			continue
		}
		cut := pendingRange{layer: pr.layer, rr: comm.RowRange{Lo: pr.rr.Lo, Hi: pr.rr.Lo + budget}}
		s.pending[0].rr.Lo = cut.rr.Hi
		taken = append(taken, cut)
		total += budget
		budget = 0
	}
	// Cut the drained ranges into per-task slices and park them until the
	// plan builder announces its emit points.
	per := s.sliceElems(total)
	var slices []pendingRange
	for _, pr := range taken {
		slices = append(slices, cutSlices(pr, per)...)
	}
	s.emit = [][]pendingRange{slices}
}

// cutSlices splits one pending range into per-sized slices — the single
// cutting rule shared by the hidden windows and the fixed-chunk tail.
func cutSlices(pr pendingRange, per int) []pendingRange {
	var out []pendingRange
	for lo := pr.rr.Lo; lo < pr.rr.Hi; lo += per {
		hi := lo + per
		if hi > pr.rr.Hi {
			hi = pr.rr.Hi
		}
		out = append(out, pendingRange{layer: pr.layer, rr: comm.RowRange{Lo: lo, Hi: hi}})
	}
	return out
}

// BeginLayer implements the plan-builder hook: the builder announces how
// many inter-stream emit points the plan has, and the prepared slices are
// spread across them round-robin so they fill successive slack windows
// instead of piling up in the first one.
func (s *Syncer) BeginLayer(points int) {
	if points < 1 {
		points = 1
	}
	var slices []pendingRange
	for _, bucket := range s.emit {
		slices = append(slices, bucket...)
	}
	s.emit = make([][]pendingRange, points)
	for t, sl := range slices {
		s.emit[t%points] = append(s.emit[t%points], sl)
	}
}

// EmitAt appends the AllReduce slice tasks assigned to emit point pt onto
// stream (the plan's shared inter stream). Tasks have no dependencies —
// their input gradients were produced by plans that already completed —
// so only stream order schedules them, which is exactly the inter-node
// link contention §5 budgets for.
func (s *Syncer) EmitAt(p *runtime.Plan, stream string, pt int) {
	if pt < 0 || pt >= len(s.emit) {
		return
	}
	for _, sl := range s.emit[pt] {
		sl := sl
		s.inflight = append(s.inflight, sl)
		bytes := float64(sl.rr.Len()) * s.cfg.ElemBytes
		// The estimate lives in the same arbitrary elements/1e6 unit space
		// as the host plan's other tasks (moe.World's estElems), so the
		// plan's structural Simulate stays internally consistent; the ring
		// moves ~2 passes over the slice.
		est := float64(2*sl.rr.Len()) / 1e6
		p.Add(fmt.Sprintf("AR%d[%d:%d)", sl.layer, sl.rr.Lo, sl.rr.Hi), KindAllReduce, stream, est,
			func() error { return s.reduce(sl) })
		s.rep.Slices++
		s.rep.HiddenBytes += bytes
	}
	s.emit[pt] = nil
}

// reduce runs one restricted ring over a slice. Plans execute their inter
// stream serially and Finish runs after every plan has been awaited, so
// the stats accumulation never races.
func (s *Syncer) reduce(sl pendingRange) error {
	bufs := s.grads[sl.layer]
	if bufs == nil {
		return fmt.Errorf("gradsync: layer %d sliced before Collect", sl.layer)
	}
	// reduce serves both in-plan AR tasks (whose fault injection is
	// task-level: RetryPolicy.Kinds covers KindAllReduce) and the
	// sequential Finish tail, which runs outside any plan and has no guard
	// to carry — so the unguarded entry point is deliberate here.
	//fsmoe:allow guardcheck task-level injection covers in-plan slices; Finish tail runs outside any plan
	st, err := comm.RingAllReduceChunk(bufs, s.cfg.GPUsPerNode, sl.rr)
	if err != nil {
		return err
	}
	s.rep.Stats.Merge(st)
	// Mark the slice reduced so an aborted plan's reclamation re-pends
	// only the slices its skipped tasks left untouched. Plans drive their
	// inter stream serially and Finish runs after every plan has been
	// awaited, so this bookkeeping never races.
	for i, p := range s.inflight {
		if p.layer == sl.layer && p.rr == sl.rr {
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			break
		}
	}
	return nil
}

// Collect registers layer i's per-rank partial gradients: from now on
// they are pending and later windows (or the tail) will reduce them.
// Buffers must all have the registered element count; they are reduced in
// place (every rank ends with the elementwise sum).
func (s *Syncer) Collect(i int, grads [][]float64) error {
	if i < 0 || i >= len(s.specs) {
		return fmt.Errorf("gradsync: collect of unknown layer %d", i)
	}
	if s.grads[i] != nil {
		return fmt.Errorf("gradsync: layer %d collected twice", i)
	}
	if len(grads) == 0 {
		return fmt.Errorf("gradsync: layer %d collected no ranks", i)
	}
	if s.ranks != 0 && len(grads) != s.ranks {
		return fmt.Errorf("gradsync: layer %d has %d ranks, earlier layers %d", i, len(grads), s.ranks)
	}
	for r, g := range grads {
		if len(g) != s.specs[i].Elems {
			return fmt.Errorf("gradsync: layer %d rank %d has %d elements, spec says %d", i, r, len(g), s.specs[i].Elems)
		}
	}
	s.ranks = len(grads)
	s.grads[i] = grads
	s.pending = append(s.pending, pendingRange{layer: i, rr: comm.RowRange{Lo: 0, Hi: s.specs[i].Elems}})
	s.seen++
	return nil
}

// Finish synchronizes everything still pending — the exposed tail — on
// the calling goroutine, measuring its wall time, and returns the
// completed report. Every layer must have been collected.
func (s *Syncer) Finish() (Report, error) {
	if s.synced {
		return s.rep, fmt.Errorf("gradsync: Finish called twice")
	}
	if s.seen != len(s.specs) {
		return s.rep, fmt.Errorf("gradsync: %d of %d layers collected", s.seen, len(s.specs))
	}
	s.synced = true
	// Anything still parked for emission was never absorbed by a plan
	// (e.g. the budget outran the plan's emit points), and anything a plan
	// absorbed but never reduced (an aborted run's skipped tasks), joins
	// the tail.
	for _, bucket := range s.emit {
		s.pending = append(s.pending, bucket...)
	}
	s.emit = nil
	s.pending = append(s.pending, s.inflight...)
	s.inflight = nil
	t0 := time.Now()
	for _, pr := range s.pending {
		// The tail still moves in ChunkBytes-bounded slices for the fixed-
		// chunk baseline (each paying its collective startup); adaptive and
		// no-overlap tails go as whole remaining ranges.
		slices := []pendingRange{pr}
		if s.cfg.Strategy == StrategyFixedChunk {
			slices = cutSlices(pr, s.sliceElems(pr.rr.Len()))
		}
		for _, sl := range slices {
			if err := s.reduce(sl); err != nil {
				return s.rep, err
			}
			s.rep.TailSlices++
			s.rep.TailBytes += float64(sl.rr.Len()) * s.cfg.ElemBytes
		}
	}
	s.pending = nil
	s.rep.TailMS = float64(time.Since(t0)) / 1e6
	return s.rep, nil
}

package gradsync

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runtime"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// testSpecs builds L layers of n elements with simulator-consistent byte
// accounting on Testbed A's models.
func testSpecs(l, n, dense int) (Config, []LayerSpec) {
	cfg := Config{Models: core.ModelsFromCluster(topology.TestbedA()), ElemBytes: 4, Slices: 3}
	specs := make([]LayerSpec, l)
	for i := range specs {
		specs[i] = LayerSpec{
			Elems:      n,
			DenseElems: dense,
			V: core.Volumes{
				NA2A: 1e6, NAG: 1e5, NRS: 1e5, ExpMACs: 1e8, ExpGEMMs: 2,
				DenseFwd: 0.1, DenseBwd: 0.3,
				GradBytes: float64(n) * 4,
			},
		}
	}
	return cfg, specs
}

// disjointGrads builds per-rank partials where every element has exactly
// one non-zero owner, so the reduced value is exact and known.
func disjointGrads(seed uint64, ranks, n int) (bufs [][]float64, truth []float64) {
	rng := xrand.New(seed)
	truth = make([]float64, n)
	bufs = make([][]float64, ranks)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		truth[i] = rng.NormFloat64()
		bufs[i%ranks][i] = truth[i]
	}
	return bufs, truth
}

// driveBackward simulates the plan-builder protocol for one full backward
// pass in reverse layer order, executing each layer's plan for real.
func driveBackward(t *testing.T, s *Syncer, layers int, grads [][][]float64, points int) {
	t.Helper()
	for i := layers - 1; i >= 0; i-- {
		s.StartLayer(i)
		p := runtime.NewPlan()
		s.BeginLayer(points)
		for pt := 0; pt < points; pt++ {
			s.EmitAt(p, "inter", pt)
		}
		if p.Len() > 0 {
			if _, err := p.Execute(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Collect(i, grads[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSyncerStrategiesBitIdentical: all three strategies must reduce every
// layer's gradients to the identical bytes — only scheduling differs.
func TestSyncerStrategiesBitIdentical(t *testing.T) {
	const layers, ranks, n = 3, 4, 501
	for _, strat := range []Strategy{StrategyFSMoE, StrategyFixedChunk, StrategyNoOverlap} {
		cfg, specs := testSpecs(layers, n, 40)
		cfg.Strategy = strat
		cfg.ChunkBytes = 256 * 4 // small fixed chunks so Lina actually slices
		s, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		grads := make([][][]float64, layers)
		truths := make([][]float64, layers)
		for i := range grads {
			grads[i], truths[i] = disjointGrads(uint64(50+i), ranks, n)
		}
		driveBackward(t, s, layers, grads, 3)
		rep, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for i := range grads {
			for r := 0; r < ranks; r++ {
				for k := 0; k < n; k++ {
					if grads[i][r][k] != truths[i][k] {
						t.Fatalf("%s: layer %d rank %d elem %d = %v, want %v",
							strat, i, r, k, grads[i][r][k], truths[i][k])
					}
				}
			}
		}
		wantTotal := float64(layers*n) * cfg.ElemBytes
		if rep.HiddenBytes+rep.TailBytes != wantTotal {
			t.Fatalf("%s: hidden %v + tail %v != total %v", strat, rep.HiddenBytes, rep.TailBytes, wantTotal)
		}
		switch strat {
		case StrategyNoOverlap:
			if rep.HiddenBytes != 0 || rep.Slices != 0 {
				t.Fatalf("no-overlap hid %v bytes in %d slices", rep.HiddenBytes, rep.Slices)
			}
		case StrategyFixedChunk:
			// Layers 1 and 2 are pending when layers 1 and 0 build their
			// plans; Lina launches them all, so only layer 0's own
			// gradients remain exposed.
			if rep.HiddenBytes != float64(2*n)*cfg.ElemBytes {
				t.Fatalf("lina hid %v bytes, want %v", rep.HiddenBytes, float64(2*n)*cfg.ElemBytes)
			}
		case StrategyFSMoE:
			if rep.Gar == nil {
				t.Fatal("fsmoe strategy must carry a GarPlan")
			}
		}
	}
}

// TestSyncerFSMoEHidesBytes: with Testbed A models and comfortable
// windows, the adaptive plan must hide a positive share inside the plans.
func TestSyncerFSMoEHidesBytes(t *testing.T) {
	const layers, ranks, n = 4, 2, 2048
	cfg, specs := testSpecs(layers, n, 100)
	s, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	grads := make([][][]float64, layers)
	for i := range grads {
		grads[i], _ = disjointGrads(uint64(90+i), ranks, n)
	}
	driveBackward(t, s, layers, grads, 2)
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.HiddenBytes <= 0 {
		t.Fatalf("adaptive plan hid nothing (report %+v, gar %+v)", rep, rep.Gar)
	}
	if rep.Stats.IntraVolume+rep.Stats.InterVolume <= 0 {
		t.Fatal("no ring traffic recorded")
	}
}

// TestSyncerValidation covers construction and protocol errors.
func TestSyncerValidation(t *testing.T) {
	cfg, specs := testSpecs(2, 64, 8)
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("no layers must fail")
	}
	bad := append([]LayerSpec(nil), specs...)
	bad[0].DenseElems = 1000
	if _, err := New(cfg, bad); err == nil {
		t.Fatal("dense prefix past the layer must fail")
	}
	cfg.Strategy = "warp-drive"
	if _, err := New(cfg, specs); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	cfg.Strategy = StrategyNoOverlap
	s, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("Finish before Collect must fail")
	}
	g0, _ := disjointGrads(1, 2, 64)
	if err := s.Collect(5, g0); err == nil {
		t.Fatal("unknown layer must fail")
	}
	if err := s.Collect(0, [][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong element count must fail")
	}
	if err := s.Collect(0, g0); err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(0, g0); err == nil {
		t.Fatal("double collect must fail")
	}
	g1, _ := disjointGrads(2, 2, 64)
	if err := s.Collect(1, g1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("double Finish must fail")
	}
}

// TestSyncerAbortedPlanReclaimsSlices: a plan that absorbed AllReduce
// slices via EmitAt and then aborted mid-run (a permanent fault cancels
// the inter stream, skipping the remaining slice tasks) must not lose
// them — the skipped slices return to the pending pool and Finish reduces
// every byte, so the synchronized gradients stay exact.
func TestSyncerAbortedPlanReclaimsSlices(t *testing.T) {
	const layers, ranks, n = 2, 4, 800
	cfg, specs := testSpecs(layers, n, 40)
	cfg.Strategy = StrategyFSMoE
	s, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	grads := make([][][]float64, layers)
	truth := make([][]float64, layers)
	for i := range grads {
		grads[i], truth[i] = disjointGrads(uint64(900+i), ranks, n)
	}

	// Layer 1's backward plan: nothing pending yet, so its emits are empty.
	s.StartLayer(1)
	s.BeginLayer(1)
	p1 := runtime.NewPlan()
	s.EmitAt(p1, "inter", 0)
	if err := s.Collect(1, grads[1]); err != nil {
		t.Fatal(err)
	}

	// Layer 0's plan absorbs layer 1's pending slices across three emit
	// points, but a permanent fault lands between points 0 and 1: the
	// slices already run stay reduced, the rest are skipped when the plan
	// cancels — and must be reclaimed rather than lost.
	s.StartLayer(0)
	s.BeginLayer(3)
	p0 := runtime.NewPlan()
	s.EmitAt(p0, "inter", 0)
	p0.Add("poison", "Experts", "inter", 1, func() error {
		return fault.NewPermanent(0, "poison", "injected rank-down")
	})
	s.EmitAt(p0, "inter", 1)
	s.EmitAt(p0, "inter", 2)
	emitted := s.rep.Slices
	if emitted == 0 {
		t.Fatal("layer 0's plan absorbed no slices; the scenario never formed")
	}
	if _, err := p0.Execute(); err == nil {
		t.Fatal("poisoned plan must fail")
	}
	if err := s.Collect(0, grads[0]); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TailSlices == 0 {
		t.Fatal("aborted plan's skipped slices never reached the tail")
	}
	for i := range grads {
		for r := 0; r < ranks; r++ {
			for k := 0; k < n; k++ {
				if grads[i][r][k] != truth[i][k] {
					t.Fatalf("layer %d rank %d elem %d = %v, want %v (slices lost on abort)",
						i, r, k, grads[i][r][k], truth[i][k])
				}
			}
		}
	}
}

package repro

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark executes the experiment's full computation —
// schedule construction, optimization and discrete-event execution — so
// `go test -bench=.` both regenerates the results and tracks the cost of
// the scheduler itself. The human-readable tables are printed by
// cmd/fsmoe-bench.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/topology"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// BenchmarkTable2Breakdown regenerates the per-operation breakdown of a
// GPT2-XL and a Mixtral-7B transformer layer on both testbeds.
func BenchmarkTable2Breakdown(b *testing.B) {
	clusters := []*topology.Cluster{topology.TestbedA(), topology.TestbedB()}
	for i := 0; i < b.N; i++ {
		for _, c := range clusters {
			s, err := topology.CanonicalScenario(c, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := core.ModelsFromCluster(c)
			for _, spec := range []workload.ModelSpec{workload.GPT2XLMoE(c), workload.Mixtral7B(c)} {
				cfg := spec.Layer
				cfg.B, cfg.L = 4, 1024
				v := workload.VolumesFor(cfg, s)
				res, err := m.SimulateSingleLayer(v, core.SystemDSMoE, core.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if bd := res.Trace.Breakdown(); bd[core.KindA2A] <= 0 {
					b.Fatal("empty breakdown")
				}
			}
		}
	}
}

// BenchmarkFig4Cases classifies and schedules the four Fig. 4 regimes.
func BenchmarkFig4Cases(b *testing.B) {
	m := core.ModelsFromCluster(topology.TestbedA())
	vols := []core.Volumes{
		{NA2A: 2e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2, GradBytes: 4e8},
		{NA2A: 2e6, NAG: 1e6, NRS: 1e6, ExpMACs: 8e11, ExpGEMMs: 2},
		{NA2A: 6e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2},
		{NA2A: 1e6, NAG: 8e7, NRS: 8e7, ExpMACs: 1e9, ExpGEMMs: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vols {
			if m.Classify(v, 0, core.Backward, 2) == core.CaseUnknown {
				b.Fatal("unclassified")
			}
			if _, err := m.SimulateSingleLayer(v, core.SystemFSMoE, core.BuildOptions{RMax: 4}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5PerfModelFit runs the microbenchmark-and-fit workflow on
// both testbeds (24 communication sizes × 5 collectives + 12 GEMM sizes).
func BenchmarkFig5PerfModelFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range []*topology.Cluster{topology.TestbedA(), topology.TestbedB()} {
			cm, err := perfmodel.ProfileCluster(c)
			if err != nil {
				b.Fatal(err)
			}
			if cm.A2A.R2 < 0.99 {
				b.Fatalf("bad fit: %v", cm.A2A.R2)
			}
		}
	}
}

// BenchmarkTable5ConfiguredLayers runs the Table 4 sweep (subsampled to
// keep one iteration under a second; cmd/fsmoe-bench runs the full 1458)
// under the four Table 5 schedules on both testbeds.
func BenchmarkTable5ConfiguredLayers(b *testing.B) {
	systems := []core.System{core.SystemTutel, core.SystemTutelImproved, core.SystemFSMoENoIIO, core.SystemFSMoE}
	for i := 0; i < b.N; i++ {
		for _, c := range []*topology.Cluster{topology.TestbedA(), topology.TestbedB()} {
			s, err := topology.CanonicalScenario(c, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := core.ModelsFromCluster(c)
			grid := workload.Grid(c)
			var tutel, fsmoe float64
			for j := 0; j < len(grid); j += 81 {
				v := workload.VolumesFor(grid[j], s)
				for _, sys := range systems {
					res, err := m.SimulateSingleLayer(v, sys, core.BuildOptions{})
					if err != nil {
						b.Fatal(err)
					}
					switch sys {
					case core.SystemTutel:
						tutel += res.Total
					case core.SystemFSMoE:
						fsmoe += res.Total
					}
				}
			}
			if fsmoe >= tutel {
				b.Fatalf("testbed %s: FSMoE (%v) did not beat Tutel (%v)", c.Name, fsmoe, tutel)
			}
		}
	}
}

// BenchmarkFig6RealModels simulates full iterations of the three real
// models under all six systems on Testbed A.
func BenchmarkFig6RealModels(b *testing.B) {
	c := topology.TestbedA()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := core.ModelsFromCluster(c)
	specs := []workload.ModelSpec{workload.GPT2XLMoE(c), workload.Mixtral7B(c), workload.Mixtral22B(c)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			times, err := trainsim.Compare(m, spec, s, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !(times[core.SystemFSMoE] < times[core.SystemDSMoE]) {
				b.Fatal("ordering broken")
			}
		}
	}
}

// BenchmarkFig7VariedLP sweeps L ∈ {512, 1024, 2048} and P ∈ {16, 32, 48}.
func BenchmarkFig7VariedLP(b *testing.B) {
	base := topology.TestbedA()
	for i := 0; i < b.N; i++ {
		for _, l := range []int{512, 1024, 2048} {
			s, err := topology.CanonicalScenario(base, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := core.ModelsFromCluster(base)
			if _, err := trainsim.Compare(m, workload.Mixtral7B(base).WithSeqLen(l), s, core.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		for _, p := range []int{16, 32, 48} {
			c := base.WithGPUs(p)
			s, err := topology.CanonicalScenario(c, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := core.ModelsFromCluster(c)
			if _, err := trainsim.Compare(m, workload.Mixtral7B(c), s, core.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8PipelineParallel enables GPipe PP (NPP=2, 8 microbatches).
func BenchmarkFig8PipelineParallel(b *testing.B) {
	c := topology.TestbedA()
	s, err := topology.CanonicalScenario(c, 2)
	if err != nil {
		b.Fatal(err)
	}
	m := core.ModelsFromCluster(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		times, err := trainsim.ComparePP(m, workload.Mixtral7B(c), s, 2, 8, core.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !(times[core.SystemFSMoE] < times[core.SystemDSMoE]) {
			b.Fatal("ordering broken under PP")
		}
	}
}

// BenchmarkTable6Gatings sweeps the four gating functions on GPT2-XL,
// Testbed B, DS-MoE vs FSMoE.
func BenchmarkTable6Gatings(b *testing.B) {
	c := topology.TestbedB()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := core.ModelsFromCluster(c)
	gates := []workload.GateKind{workload.GateGShard, workload.GateXMoE, workload.GateSigmoid, workload.GateEC}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gates {
			spec := workload.GPT2XLMoE(c)
			spec.Layer.Gate = g
			for _, sys := range []core.System{core.SystemDSMoE, core.SystemFSMoE} {
				if _, err := trainsim.Iteration(m, spec, s, sys, core.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAlgorithm1 measures the pipeline-degree solver itself (the
// paper reports ~193 ms per SLSQP solve; this implementation is far
// cheaper).
func BenchmarkAlgorithm1(b *testing.B) {
	c := topology.TestbedA()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := core.ModelsFromCluster(c)
	v := workload.VolumesFor(workload.Grid(c)[700], s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FindOptimalPipelineDegree(v, 1.5, core.Backward, 16)
	}
}

// BenchmarkGradientPartitioning measures §5's two-step partitioning over a
// 32-layer model.
func BenchmarkGradientPartitioning(b *testing.B) {
	c := topology.TestbedA()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := core.ModelsFromCluster(c)
	layers := workload.Mixtral7B(c).LayerSpecs(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := m.PartitionGradients(layers, 16)
		if plan.TotalBytes <= 0 {
			b.Fatal("empty plan")
		}
	}
}

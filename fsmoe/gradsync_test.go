package fsmoe

import (
	"testing"
)

// syncTestStack builds L identically seeded layers wrapped in R-rank
// Worlds with a fixed pipeline degree.
func syncTestStack(t *testing.T, layers, ranks int) []*World {
	t.Helper()
	ws := make([]*World, layers)
	for i := range ws {
		l, err := NewLayer(LayerConfig{
			M: 32, H: 48, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: uint64(21 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(l, WorldConfig{Ranks: ranks, PipelineDegree: 2})
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return ws
}

// TestStepStackStrategiesAgree: the public API steps a 2-layer stack to
// bit-identical parameters on every rank under all three strategies, and
// the adaptive strategy actually hides bytes inside the backward plans.
func TestStepStackStrategiesAgree(t *testing.T) {
	x := RandTensor(101, 96, 32)
	dy := RandTensor(102, 96, 32)
	var ref []float64
	for _, strat := range []SyncStrategy{SyncFSMoE, SyncLinaFixed, SyncNoOverlap} {
		ws := syncTestStack(t, 2, 4)
		res, err := StepStack(ws, x, dy, StepConfig{LR: 0.02, Strategy: strat, ChunkBytes: 64 << 10})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for r := 1; r < len(res.RankParams); r++ {
			for k := range res.RankParams[0] {
				if res.RankParams[r][k] != res.RankParams[0][k] {
					t.Fatalf("%s: rank %d param %d diverges", strat, r, k)
				}
			}
		}
		if ref == nil {
			ref = res.RankParams[0]
		} else {
			for k := range ref {
				if res.RankParams[0][k] != ref[k] {
					t.Fatalf("%s: param %d differs across strategies", strat, k)
				}
			}
		}
		if strat == SyncFSMoE && res.Report.HiddenBytes <= 0 {
			t.Fatalf("adaptive strategy hid nothing: %+v", res.Report)
		}
		if strat == SyncNoOverlap && res.Report.HiddenBytes != 0 {
			t.Fatalf("no-overlap strategy hid bytes: %+v", res.Report)
		}
	}
}

// TestSyncGradientsBlocking: the blocking entry reconstructs the layer's
// accumulated gradient bit-exactly on every rank.
func TestSyncGradientsBlocking(t *testing.T) {
	layer, err := NewLayer(LayerConfig{
		M: 32, H: 48, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, PipelineDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := RandTensor(111, 96, 32)
	dy := RandTensor(112, 96, 32)
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, p := range layer.Params() {
		want = append(want, p.G.Data()...)
	}
	rep, err := SyncGradients([]*World{w}, StepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report.TailBytes != rep.Report.TotalBytes {
		t.Fatalf("blocking sync must be all tail: %+v", rep.Report)
	}
	for r, g := range rep.LayerGrads[0] {
		if len(g) != len(want) {
			t.Fatalf("rank %d grad length %d, want %d", r, len(g), len(want))
		}
		for k := range want {
			if g[k] != want[k] {
				t.Fatalf("rank %d grad %d = %v, accumulated %v", r, k, g[k], want[k])
			}
		}
	}
}

package fsmoe

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/moe"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Executable-runtime vocabulary.
type (
	// WorldCache carries a World forward pass's state to Backward.
	WorldCache = moe.WorldCache
	// StreamPlan is an executable stream schedule (simulate or execute).
	StreamPlan = runtime.Plan
	// Trace is a stream timeline, simulated or measured.
	Trace = sim.Trace
	// A2AKind names an AlltoAll algorithm for the executable world.
	A2AKind = comm.A2AAlgo
	// CommStats is cumulative collective traffic.
	CommStats = comm.Stats
)

// The three AlltoAll algorithms of §3.1's Dispatch sub-module.
const (
	A2ADirect = comm.A2ADirect
	A2A1DH    = comm.A2A1DH
	A2A2DH    = comm.A2A2DH
)

// WorldConfig configures multi-rank pipelined execution of a Layer.
//
// PipelineDegree selects the number of token chunks r each dispatch and
// combine AlltoAll is split into. Zero means automatic: Algorithm 1 (§4.4)
// runs on the testbed's fitted performance models with volumes derived
// from the layer's real shape and BatchTokens, separately per phase — the
// chosen degrees are what actually execute, closing the loop between the
// scheduler and the runtime.
type WorldConfig struct {
	Ranks             int     // R; the layer's experts are sharded E/R per rank
	PipelineDegree    int     // forward r; 0 = Algorithm 1
	PipelineDegreeBwd int     // backward r; 0 inherits (auto mode optimizes it separately)
	Algo              A2AKind // AlltoAll algorithm (default Direct)
	GPUsPerNode       int     // node shape for 1DH/2DH (default Ranks)

	// Auto-degree inputs, used only when PipelineDegree == 0.
	Cluster     *Cluster // testbed whose models drive Algorithm 1 (default TestbedA)
	BatchTokens int      // B·L tokens per iteration (default 4096)
}

// World executes a Layer expert-parallel across in-process ranks with
// chunked AlltoAll dispatch/combine pipelined on real streams. Forward and
// Backward are bit-identical to the Layer's single-rank path for every
// hard-routing gate.
type World struct {
	inner      *moe.World
	degF, degB core.DegreeResult
	auto       bool
}

// NewWorld builds the executable multi-rank runtime for a layer.
func NewWorld(l *Layer, cfg WorldConfig) (*World, error) {
	if l == nil {
		return nil, fmt.Errorf("fsmoe: NewWorld needs a layer")
	}
	w := &World{}
	degF, degB := cfg.PipelineDegree, cfg.PipelineDegreeBwd
	if degF == 0 {
		w.auto = true
		cluster := cfg.Cluster
		if cluster == nil {
			cluster = topology.TestbedA()
		}
		tokens := cfg.BatchTokens
		if tokens <= 0 {
			tokens = 4096
		}
		v := layerVolumes(l, tokens)
		m := core.ModelsFromCluster(cluster)
		w.degF = m.FindOptimalPipelineDegree(v, 0, core.Forward, 16)
		w.degB = m.FindOptimalPipelineDegree(v, 0, core.Backward, 16)
		degF = w.degF.R
		// An explicit backward degree overrides Algorithm 1's choice even
		// in auto mode.
		if degB == 0 {
			degB = w.degB.R
		}
	} else if degB == 0 {
		degB = degF
	}
	inner, err := moe.NewWorld(l.inner, moe.WorldConfig{
		Ranks:       cfg.Ranks,
		ChunksFwd:   degF,
		ChunksBwd:   degB,
		Algo:        cfg.Algo,
		GPUsPerNode: cfg.GPUsPerNode,
	})
	if err != nil {
		return nil, err
	}
	w.inner = inner
	return w, nil
}

// layerVolumes derives Algorithm-1 scheduling volumes from the real layer:
// AlltoAll bytes from the nominal dispatched token count, intra-stream
// bytes from the wire-layout (un)pack stages (which move the same volume),
// and expert MACs / gradient bytes from the live expert implementations —
// so custom experts steer the degree through their own FwdMACs/ParamBytes.
func layerVolumes(l *Layer, tokens int) Volumes {
	cfg := l.cfg
	effF := cfg.CapacityFactor
	if effF <= 0 {
		effF = 1.0
	}
	k := cfg.TopK
	if k < 1 {
		k = 1
	}
	dispatched := float64(k) * effF * float64(tokens)
	nA2A := dispatched * float64(cfg.M) * workload.ActivationBytes
	experts := l.inner.Experts()
	perExpert := int(dispatched) / len(experts)
	if perExpert < 1 {
		perExpert = 1
	}
	macs, gradBytes := 0.0, 0.0
	for _, e := range experts {
		macs += e.FwdMACs(perExpert)
		gradBytes += e.ParamBytes()
	}
	gemms := 2
	if cfg.Expert == ExpertMixtral {
		gemms = 3
	}
	return Volumes{
		NA2A:     nA2A,
		NAG:      nA2A,
		NRS:      nA2A,
		ExpMACs:  macs,
		ExpGEMMs: gemms,
		// The dense part is outside the World's pipeline; a nominal floor
		// keeps the volumes valid for full-iteration simulations.
		DenseFwd:  0.1,
		DenseBwd:  0.2,
		GradBytes: gradBytes,
	}
}

// Forward runs the pipelined multi-rank forward pass on x, shaped
// (B, L, M) or (N, M).
func (w *World) Forward(x *Tensor, train bool) (*Tensor, *WorldCache, error) {
	return w.inner.Forward(x, train)
}

// Backward runs the pipelined multi-rank backward pass.
func (w *World) Backward(cache *WorldCache, dy *Tensor) (*Tensor, error) {
	return w.inner.Backward(cache, dy)
}

// Ranks returns R; Chunked reports whether the chunk-granular expert path
// is active (custom experts without the chunked contract fall back to
// whole-block compute with chunked communication).
func (w *World) Ranks() int    { return w.inner.Ranks() }
func (w *World) Chunked() bool { return w.inner.Chunked() }

// PipelineDegrees returns the forward and backward chunk counts in effect.
func (w *World) PipelineDegrees() (fwd, bwd int) { return w.inner.Degrees() }

// DegreeResults returns Algorithm 1's full forward/backward outcomes when
// the degrees were chosen automatically (zero values otherwise).
func (w *World) DegreeResults() (fwd, bwd DegreeResult) { return w.degF, w.degB }

// AutoDegree reports whether Algorithm 1 chose the degrees.
func (w *World) AutoDegree() bool { return w.auto }

// SetSequential switches between the pipelined stream executor (default)
// and a single-goroutine no-overlap baseline; results are identical.
func (w *World) SetSequential(seq bool) { w.inner.SetSequential(seq) }

// Stats returns cumulative AlltoAll traffic across passes.
func (w *World) Stats() CommStats { return w.inner.Stats() }

// LastPlan and LastTrace expose the most recent pass's stream plan and
// measured timeline: LastTrace().Gantt(120) renders the measured Fig. 3,
// and LastPlan().SimulateWith(...) predicts alternative schedules from
// measured stage durations.
func (w *World) LastPlan() *StreamPlan { return w.inner.LastPlan() }
func (w *World) LastTrace() *Trace     { return w.inner.LastTrace() }
